package locsample

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"locsample/internal/chains"
	"locsample/internal/cluster"
	"locsample/internal/core"
	"locsample/internal/csp"
	"locsample/internal/diag"
	"locsample/internal/dist"
	"locsample/internal/localmodel"
	"locsample/internal/obs"
	"locsample/internal/partition"
)

// CSPModel is a weighted local CSP (factor graph, §2.2 of the paper):
// constraints (f_c, S_c) with per-vertex activities. It generalizes Model
// to multivariate constraints; both of the paper's chains extend to it
// (§3 and §4 remarks).
type CSPModel = csp.CSP

// CSPConstraint is one weighted constraint: a scope and a non-negative
// function over it.
type CSPConstraint = csp.Constraint

// NewDominatingSet returns the uniform distribution over dominating sets of
// g as a CSP (one cover constraint per inclusive neighborhood).
func NewDominatingSet(g *Graph) *CSPModel { return csp.DominatingSet(g) }

// NewWeightedDominatingSet weights dominating sets by λ^|S|.
func NewWeightedDominatingSet(g *Graph, lambda float64) *CSPModel {
	return csp.WeightedDominatingSet(g, lambda)
}

// NewCSP assembles a custom weighted local CSP; see csp.New for validation
// rules (constraint arities are enumerated to normalize — and compile — the
// factors, so keep them small).
func NewCSP(n, q int, vertexActivities [][]float64, cons []CSPConstraint) (*CSPModel, error) {
	return csp.New(n, q, vertexActivities, cons)
}

// CSPSampler is the compiled CSP batch engine — the CSP counterpart of
// Sampler. NewCSPSampler resolves the run parameters once (round budget,
// feasibility of the initial configuration, and, with WithShards, the
// constraint-scope partition plan); draws then reuse pooled chain scratch
// (or pooled sharded engines), so steady-state rounds allocate nothing.
//
// Determinism contract: chain i of SampleNFrom(seed, k) is bit-identical to
// a single SampleCSP draw with seed ChainSeed(seed, i), regardless of
// worker count, scheduling, shard count, partition strategy, or
// vertex-parallel worker count — WithShards and WithParallelRounds are
// purely latency knobs.
type CSPSampler struct {
	g      *Graph
	c      *CSPModel
	init   []int
	cfg    core.Config
	rounds int
	// capRounds is the worst-case budget a WithRoundsAuto measurement was
	// capped by (0 when the budget is fixed).
	capRounds int

	plan    *partition.CSPPlan
	engines sync.Pool // *cluster.CSPEngine, sharded mode
	scratch sync.Pool // *csp.Scratch, centralized mode
	// soaPool pools SoA batch blocks across SampleNFrom calls, grow-only
	// on width (see Sampler.soaPool).
	soaPool sync.Pool
	// remote is the cross-process coordinator (nil unless WithRemoteWorkers
	// placed the shards on lsharded processes).
	remote *remoteEngine

	// Metric series (nil without WithMetrics); see Sampler.
	mDraws   *obs.Counter
	mDrawNS  *obs.Histogram
	roundObs *obs.RoundMetrics
}

// NewCSPSampler compiles CSP c on network g with the given options into a
// reusable batch sampler. init must be feasible and WithRounds must supply
// a positive budget (CSPs have no theory budget). Honored options:
// WithRounds, WithSeed, WithWorkers, WithShards, WithShardStrategy,
// WithParallelRounds; Distributed draws go through SampleCSP instead.
func NewCSPSampler(g *Graph, c *CSPModel, init []int, opts ...Option) (*CSPSampler, error) {
	cfg := core.Config{Algorithm: chains.LubyGlauber}
	for _, opt := range opts {
		opt(&cfg)
	}
	if g != nil && g.N() != c.N {
		return nil, fmt.Errorf("locsample: CSP has %d vertices, network %d", c.N, g.N())
	}
	if cfg.Distributed {
		return nil, fmt.Errorf("locsample: the batch CSP sampler runs the centralized replay; use SampleCSP(..., distributed=true) for the LOCAL-model runtime")
	}
	cfg.Init = init
	rounds, err := core.CompileCSP(c, cfg)
	if err != nil {
		return nil, err
	}
	s := &CSPSampler{
		g:      g,
		c:      c,
		init:   append([]int(nil), init...),
		cfg:    cfg,
		rounds: rounds,
	}
	if cfg.RoundsAuto {
		// Measure the budget once at compile time: run a grand coupling
		// under the draw seed and stop at coalescence, capped by the
		// explicit budget. Draws then run the measured round count, so
		// they stay bit-identical to WithRounds(measured).
		d, err := diag.NewCoupledCSP(c, s.init, cfg.Seed,
			diag.Options{Chains: cfg.Coupling, MaxRounds: rounds})
		if err != nil {
			return nil, err
		}
		s.capRounds = rounds
		s.rounds = d.RunToCoalescence()
	}
	s.mDraws, s.mDrawNS, s.roundObs = newDrawMetrics(cfg.Obs, "csp")
	s.scratch.New = func() any { return csp.NewScratch(c) }
	if cfg.Shards > 1 {
		plan, err := partition.BuildCSP(c, cfg.Shards, cfg.ShardStrategy, cfg.Seed)
		if err != nil {
			return nil, err
		}
		s.plan = plan
		if len(cfg.WorkerAddrs) > 0 {
			sp := cfg.ModelSpec
			if sp == nil {
				sp, err = NewSpecFromCSP(g, c, s.init, rounds, "remote")
				if err != nil {
					return nil, fmt.Errorf("locsample: remote draws ship the CSP as a spec: %w", err)
				}
			}
			s.remote, err = newRemoteEngine(remoteJob{
				kind:     "csp",
				spec:     sp,
				shards:   cfg.Shards,
				strategy: cfg.ShardStrategy.String(),
				planSeed: cfg.Seed,
				init:     s.init,
				addrs:    cfg.WorkerAddrs,
			}, cspOwned(plan), c.N, resolveRetry(&cfg), cfg.StandbyAddrs)
			if err != nil {
				return nil, err
			}
			s.remote.setObs(cfg.Obs, cfg.Log)
			return s, nil
		}
		newEngine := func() (*cluster.CSPEngine, error) {
			var eng *cluster.CSPEngine
			var err error
			if cfg.Transport != nil {
				local := make([]int, plan.K)
				for i := range local {
					local[i] = i
				}
				eng, err = cluster.NewCSPWithTransport(c, plan, chains.LubyGlauber,
					local, cfg.Transport(plan.NeighborLists()))
			} else {
				eng, err = cluster.NewCSP(c, plan, chains.LubyGlauber)
			}
			if err == nil && s.roundObs != nil {
				eng.SetObserver(s.roundObs)
			}
			return eng, err
		}
		eng, err := newEngine()
		if err != nil {
			return nil, err
		}
		s.engines.New = func() any {
			e, err := newEngine()
			if err != nil {
				// Unreachable: the eager construction above vetted the
				// same arguments.
				panic(err)
			}
			return e
		}
		s.engines.Put(eng)
	}
	return s, nil
}

// Close releases the sampler's external resources — the coordinator's
// control connections when draws run on remote workers. Purely local
// samplers hold nothing that needs closing; Close is safe either way.
func (s *CSPSampler) Close() error {
	if s.remote != nil {
		return s.remote.Close()
	}
	return nil
}

// Rounds returns the per-chain round budget the sampler resolved.
func (s *CSPSampler) Rounds() int { return s.rounds }

// CapRounds returns the worst-case budget a WithRoundsAuto measurement
// was capped by, or 0 when the budget is fixed (no measurement ran).
func (s *CSPSampler) CapRounds() int { return s.capRounds }

// Shards returns the shard count draws run with (1 when unsharded).
func (s *CSPSampler) Shards() int {
	if s.plan == nil {
		return 1
	}
	return s.plan.K
}

// ParallelRounds returns the vertex-parallel worker count each chain's
// rounds run with (1 when rounds are sequential).
func (s *CSPSampler) ParallelRounds() int {
	if s.cfg.Parallel > 1 {
		return s.cfg.Parallel
	}
	return 1
}

// CSPBatch is the result of a CSP batch draw.
type CSPBatch struct {
	// Samples[i] is chain i's output configuration; all samples share one
	// flat backing array.
	Samples [][]int
	// Rounds is the number of chain iterations each chain executed.
	Rounds int
	// Shard aggregates the sharded runtime's profile across all chains
	// (zero for unsharded batches).
	Shard ShardStats
	// SoAWidth is the lane width of the SoA block engine the batch ran
	// through (0 when chains ran the per-chain reference path). Purely
	// informational: the samples are bit-identical either way.
	SoAWidth int
}

// runChain advances one centralized chain in place: sequential kernels, or
// vertex-parallel round phases when WithParallelRounds is set. A non-nil
// abort is polled between rounds (the cancellation seam — one atomic load
// per round); the caller decides what a stopped chain means.
func (s *CSPSampler) runChain(x []int, seed uint64, sc *csp.Scratch, abort *atomic.Bool) {
	if s.roundObs != nil {
		s.runChainObserved(x, seed, sc, s.roundObs, abort)
		return
	}
	if s.cfg.Parallel > 1 {
		for r := 0; r < s.rounds; r++ {
			if abort != nil && abort.Load() {
				return
			}
			csp.LubyGlauberRoundParallel(s.c, x, seed, r, sc, s.cfg.Parallel)
		}
		return
	}
	for r := 0; r < s.rounds; r++ {
		if abort != nil && abort.Load() {
			return
		}
		csp.LubyGlauberRoundPRF(s.c, x, seed, r, sc)
	}
}

// runChainObserved is runChain with a per-round observer: identical
// trajectory (the observer never touches the chain's randomness), two
// extra clock reads per round, zero allocations.
func (s *CSPSampler) runChainObserved(x []int, seed uint64, sc *csp.Scratch, o chains.RoundObserver, abort *atomic.Bool) {
	for r := 0; r < s.rounds; r++ {
		if abort != nil && abort.Load() {
			return
		}
		t0 := time.Now()
		if s.cfg.Parallel > 1 {
			csp.LubyGlauberRoundParallel(s.c, x, seed, r, sc, s.cfg.Parallel)
		} else {
			csp.LubyGlauberRoundPRF(s.c, x, seed, r, sc)
		}
		o.RoundDone(0, r, time.Since(t0).Nanoseconds(), 0, -1)
	}
}

// observeDraw meters one completed draw (no-op without WithMetrics).
func (s *CSPSampler) observeDraw(start time.Time) {
	if s.mDraws == nil {
		return
	}
	s.mDraws.Inc()
	s.mDrawNS.Observe(time.Since(start).Nanoseconds())
}

// Sample draws one configuration with the compiled settings and the master
// seed, exactly as the package-level SampleCSP would.
func (s *CSPSampler) Sample() ([]int, *ShardStats, error) {
	return s.SampleContext(context.Background())
}

// SampleContext is Sample under a context: a canceled ctx aborts the
// draw (coordinator connections are closed, sharded engines torn down,
// centralized chains stop at the next round boundary) and returns
// ctx.Err(). Cancellation never yields a partial sample.
func (s *CSPSampler) SampleContext(ctx context.Context) ([]int, *ShardStats, error) {
	start := time.Now()
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	out := make([]int, s.c.N)
	if s.remote != nil {
		st, err := s.remote.draw(ctx, s.cfg.Seed, s.rounds, out, nil)
		if err != nil {
			return nil, nil, err
		}
		s.observeDraw(start)
		return out, &st, nil
	}
	if s.plan != nil {
		eng := s.engines.Get().(*cluster.CSPEngine)
		// Cancellation closes the engine's transport: the lockstep
		// workers fail their next exchange and Run returns. The closed
		// engine is discarded, never re-pooled.
		stop := ctxWatch(ctx, func() { eng.Close() })
		st, err := eng.Run(s.init, s.cfg.Seed, s.rounds, out)
		stop()
		if cerr := ctxErr(ctx); cerr != nil {
			eng.Close()
			return nil, nil, cerr
		}
		if err != nil {
			// A failed engine is poisoned (its transport is closed); it
			// must not go back in the pool.
			eng.Close()
			return nil, nil, err
		}
		s.engines.Put(eng)
		s.observeDraw(start)
		return out, &st, nil
	}
	sc := s.scratch.Get().(*csp.Scratch)
	copy(out, s.init)
	var abort atomic.Bool
	stop := ctxWatch(ctx, func() { abort.Store(true) })
	s.runChain(out, s.cfg.Seed, sc, &abort)
	stop()
	s.scratch.Put(sc)
	if cerr := ctxErr(ctx); cerr != nil {
		return nil, nil, cerr
	}
	s.observeDraw(start)
	return out, nil, nil
}

// SampleTraced draws one configuration exactly like Sample while
// recording a timing trace; see Sampler.SampleTraced for the span
// layout. The sample is bit-identical to an untraced draw.
func (s *CSPSampler) SampleTraced() ([]int, *ShardStats, *Trace, error) {
	return s.SampleTracedFrom(s.cfg.Seed)
}

// SampleTracedFrom is SampleTraced with an explicit seed.
func (s *CSPSampler) SampleTracedFrom(seed uint64) ([]int, *ShardStats, *Trace, error) {
	return s.SampleTracedContext(context.Background(), seed)
}

// SampleTracedContext is SampleTracedFrom under a context; a canceled
// ctx aborts the draw exactly as in SampleContext and returns
// ctx.Err().
func (s *CSPSampler) SampleTracedContext(ctx context.Context, seed uint64) ([]int, *ShardStats, *Trace, error) {
	start := time.Now()
	if err := ctxErr(ctx); err != nil {
		return nil, nil, nil, err
	}
	tr := obs.NewTrace("csp draw")
	t0 := tr.Now()
	out := make([]int, s.c.N)
	if s.remote != nil {
		st, err := s.remote.draw(ctx, seed, s.rounds, out, tr)
		if err != nil {
			return nil, nil, nil, err
		}
		s.observeDraw(start)
		return out, &st, tr, nil
	}
	if s.plan != nil {
		eng := s.engines.Get().(*cluster.CSPEngine)
		rec := obs.NewRoundRecorder(s.plan.K, s.rounds)
		eng.SetObserver(&obs.TeeRounds{A: rec, B: s.roundObs})
		stop := ctxWatch(ctx, func() { eng.Close() })
		st, err := eng.Run(s.init, seed, s.rounds, out)
		stop()
		eng.SetObserver(s.engineObserver())
		if cerr := ctxErr(ctx); cerr != nil {
			eng.Close()
			return nil, nil, nil, cerr
		}
		if err != nil {
			eng.Close()
			return nil, nil, nil, err
		}
		s.engines.Put(eng)
		rec.FlushTo(tr, 0)
		s.addDrawSpan(tr, t0, seed, s.plan.K)
		s.observeDraw(start)
		return out, &st, tr, nil
	}
	sc := s.scratch.Get().(*csp.Scratch)
	rec := obs.NewRoundRecorder(1, s.rounds)
	copy(out, s.init)
	var abort atomic.Bool
	stop := ctxWatch(ctx, func() { abort.Store(true) })
	s.runChainObserved(out, seed, sc, &obs.TeeRounds{A: rec, B: s.roundObs}, &abort)
	stop()
	s.scratch.Put(sc)
	if cerr := ctxErr(ctx); cerr != nil {
		return nil, nil, nil, cerr
	}
	rec.FlushTo(tr, 0)
	s.addDrawSpan(tr, t0, seed, 1)
	s.observeDraw(start)
	return out, nil, tr, nil
}

// SampleDiagnosed draws one configuration exactly like Sample while
// running a grand coupling alongside it; see Sampler.SampleDiagnosed for
// the contract. The sample is bit-identical to an undiagnosed draw at
// the same seed. Diagnosed CSP draws run centralized and sequential.
func (s *CSPSampler) SampleDiagnosed() ([]int, *Diagnosis, error) {
	return s.sampleDiagnosed(s.cfg.Seed, nil)
}

// SampleDiagnosedFrom is SampleDiagnosed with an explicit master seed.
func (s *CSPSampler) SampleDiagnosedFrom(seed uint64) ([]int, *Diagnosis, error) {
	return s.sampleDiagnosed(seed, nil)
}

// SampleDiagnosedObserved is SampleDiagnosedFrom with a per-round probe —
// the live-streaming seam. The probe runs on the round hot path; see
// CouplingProbe for the contract.
func (s *CSPSampler) SampleDiagnosedObserved(seed uint64, probe CouplingProbe) ([]int, *Diagnosis, error) {
	return s.sampleDiagnosed(seed, probe)
}

func (s *CSPSampler) sampleDiagnosed(seed uint64, probe diag.Probe) ([]int, *Diagnosis, error) {
	start := time.Now()
	d, err := diag.NewCoupledCSP(s.c, s.init, seed,
		diag.Options{Chains: s.cfg.Coupling, MaxRounds: s.rounds, Probe: probe, Obs: s.engineObserver()})
	if err != nil {
		return nil, nil, err
	}
	d.Run(s.rounds)
	out := append([]int(nil), d.X()...)
	s.observeDraw(start)
	return out, d.Finish(), nil
}

// engineObserver is the observer pooled engines idle with (nil unless
// WithMetrics attached round metrics).
func (s *CSPSampler) engineObserver() chains.RoundObserver {
	if s.roundObs != nil {
		return s.roundObs
	}
	return nil
}

// addDrawSpan closes a traced local draw with its draw-level span.
func (s *CSPSampler) addDrawSpan(tr *obs.Trace, t0 int64, seed uint64, shards int) {
	span := obs.Span{Name: "draw", PID: 0, TID: 0, StartNS: t0, DurNS: tr.Now() - t0}
	span.SetArg("seed", int64(seed))
	span.SetArg("rounds", int64(s.rounds))
	span.SetArg("shards", int64(shards))
	tr.Add(span)
}

// SampleN draws k independent samples concurrently with the compiled master
// seed; see SampleNFrom.
func (s *CSPSampler) SampleN(k int) (*CSPBatch, error) {
	return s.SampleNFrom(s.cfg.Seed, k)
}

// SampleNFrom draws k independent samples concurrently; chain i runs with
// seed ChainSeed(seed, i). It does not mutate the sampler, so concurrent
// calls (the serving path) are safe.
func (s *CSPSampler) SampleNFrom(seed uint64, k int) (*CSPBatch, error) {
	return s.SampleNContext(context.Background(), seed, k)
}

// SampleNContext is SampleNFrom under a context: a canceled ctx stops
// workers from claiming further chains, aborts in-flight ones (sharded
// engines are closed and discarded; centralized chains stop at the next
// round boundary), and returns ctx.Err(). A canceled batch never
// returns partial samples.
func (s *CSPSampler) SampleNContext(ctx context.Context, seed uint64, k int) (*CSPBatch, error) {
	if k < 0 {
		return nil, fmt.Errorf("locsample: SampleN needs k >= 0, got %d", k)
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	batch := &CSPBatch{Samples: make([][]int, k), Rounds: s.rounds}
	if k == 0 {
		return batch, nil
	}
	n := s.c.N
	backing := make([]int, k*n)
	for i := 0; i < k; i++ {
		batch.Samples[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	if s.remote != nil {
		// Remote draws serialize on the coordinator's control connections;
		// each chain already fans out across the worker processes.
		for i := 0; i < k; i++ {
			chainStart := time.Now()
			st, err := s.remote.draw(ctx, core.ChainSeed(seed, uint64(i)), s.rounds, batch.Samples[i], nil)
			if err != nil {
				return nil, err
			}
			batch.Shard.Add(st)
			s.observeDraw(chainStart)
		}
		return batch, nil
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if s.plan != nil {
			// Each chain already runs plan.K goroutines; dividing the pool
			// keeps total parallelism near GOMAXPROCS.
			workers = max(1, workers/s.plan.K)
		} else if s.cfg.Parallel > 1 {
			workers = max(1, workers/s.cfg.Parallel)
		}
	}
	if s.plan == nil && s.cfg.Parallel <= 1 {
		if width := batchWidth(s.cfg.BatchWidth, k, workers); width > 0 {
			return s.sampleNSoA(ctx, seed, k, width, workers, batch)
		}
	}
	workers = batchWorkers(workers, k)
	var shardStats []ShardStats
	if s.plan != nil {
		shardStats = make([]ShardStats, k)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
		aborted atomic.Bool
	)
	// One shared abort flag serves both the claim loop (no worker takes
	// another chain) and the centralized chains (stop at the next round
	// boundary); sharded workers additionally close their engines so
	// in-flight lockstep rounds unblock.
	var chainAbort atomic.Bool
	stopWatch := ctxWatch(ctx, func() {
		aborted.Store(true)
		chainAbort.Store(true)
	})
	defer stopWatch()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc *csp.Scratch
			var eng *cluster.CSPEngine
			engDead := false
			if s.plan != nil {
				eng = s.engines.Get().(*cluster.CSPEngine)
				stopEng := ctxWatch(ctx, func() { eng.Close() })
				// A failed engine is poisoned (transport closed) and must
				// not be re-pooled for the next batch; neither may one a
				// cancellation closed (or is about to close).
				defer func() {
					stopEng()
					if engDead || ctxErr(ctx) != nil {
						eng.Close()
					} else {
						s.engines.Put(eng)
					}
				}()
			} else {
				sc = s.scratch.Get().(*csp.Scratch)
				defer s.scratch.Put(sc)
			}
			for {
				// Fail fast: once any chain errors, no worker claims
				// another chain.
				if aborted.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				chainSeed := core.ChainSeed(seed, uint64(i))
				chainStart := time.Now()
				if eng != nil {
					st, err := eng.Run(s.init, chainSeed, s.rounds, batch.Samples[i])
					if err != nil {
						engDead = true
						errOnce.Do(func() { runErr = err })
						aborted.Store(true)
						return
					}
					shardStats[i] = st
					s.observeDraw(chainStart)
					continue
				}
				x := batch.Samples[i]
				copy(x, s.init)
				s.runChain(x, chainSeed, sc, &chainAbort)
				s.observeDraw(chainStart)
			}
		}()
	}
	wg.Wait()
	if cerr := ctxErr(ctx); cerr != nil {
		// Cancellation wins over whatever secondary errors closing the
		// engines provoked — the caller asked for the abort it got.
		return nil, cerr
	}
	if runErr != nil {
		return nil, runErr
	}
	for _, st := range shardStats {
		batch.Shard.Add(st)
	}
	return batch, nil
}

// getSoABlock borrows a pooled SoA block at least `width` lanes wide,
// building one when the pool is empty or its block is too narrow.
func (s *CSPSampler) getSoABlock(width int) *csp.SoABlock {
	if b, _ := s.soaPool.Get().(*csp.SoABlock); b != nil && b.MaxWidth() >= width {
		return b
	}
	return csp.NewSoABlock(s.c, width)
}

// runBlock advances an SoA block by the compiled budget — the block
// counterpart of runChain: same abort polling at round boundaries, same
// per-round observation (one RoundDone per block round).
func (s *CSPSampler) runBlock(blk *csp.SoABlock, abort *atomic.Bool) {
	if s.roundObs != nil {
		for r := 0; r < s.rounds; r++ {
			if abort.Load() {
				return
			}
			t0 := time.Now()
			blk.Step()
			s.roundObs.RoundDone(0, r, time.Since(t0).Nanoseconds(), 0, -1)
		}
		return
	}
	for r := 0; r < s.rounds; r++ {
		if abort.Load() {
			return
		}
		blk.Step()
	}
}

// sampleNSoA runs a centralized CSP batch through the SoA block engine —
// the CSP counterpart of Sampler.sampleNSoA: ceil(k/width) lockstep
// blocks claimed by a pool clamped to the block count, the tail block
// running with its natural lane count. Chain i's lane is bit-identical
// to the per-chain path at ChainSeed(seed, i).
func (s *CSPSampler) sampleNSoA(ctx context.Context, seed uint64, k, width, workers int, batch *CSPBatch) (*CSPBatch, error) {
	batch.SoAWidth = width
	blocks := (k + width - 1) / width
	workers = batchWorkers(workers, blocks)
	var (
		next       atomic.Int64
		wg         sync.WaitGroup
		chainAbort atomic.Bool
	)
	stopWatch := ctxWatch(ctx, func() { chainAbort.Store(true) })
	defer stopWatch()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blk := s.getSoABlock(width)
			defer s.soaPool.Put(blk)
			seeds := make([]uint64, width)
			for {
				if chainAbort.Load() {
					return
				}
				bi := int(next.Add(1)) - 1
				if bi >= blocks {
					return
				}
				lo := bi * width
				lanes := min(width, k-lo)
				for c := 0; c < lanes; c++ {
					seeds[c] = core.ChainSeed(seed, uint64(lo+c))
				}
				blockStart := time.Now()
				blk.Reset(s.init, seeds[:lanes])
				s.runBlock(blk, &chainAbort)
				blk.Scatter(batch.Samples[lo : lo+lanes])
				s.observeDrawN(blockStart, lanes)
			}
		}()
	}
	wg.Wait()
	if cerr := ctxErr(ctx); cerr != nil {
		return nil, cerr
	}
	return batch, nil
}

// observeDrawN meters `lanes` draws that completed together as one SoA
// block (see Sampler.observeDrawN).
func (s *CSPSampler) observeDrawN(start time.Time, lanes int) {
	if s.mDraws == nil {
		return
	}
	s.mDraws.Add(int64(lanes))
	s.mDrawNS.Observe(time.Since(start).Nanoseconds())
}

// SampleCSP draws one configuration approximately distributed as the CSP's
// Gibbs distribution using the hypergraph LubyGlauber chain (§3 remark).
// When distributed is true the chain runs as a LOCAL protocol on network g
// (two communication rounds per chain iteration; constraints must have
// scope radius ≤ 1 on g, as cover constraints do). init must be feasible;
// rounds > 0 is required (no general theory budget exists for arbitrary
// CSPs). Options may select an in-chain runtime — WithShards(k) runs the
// chain as k lockstep shard workers over a constraint-scope partition,
// WithParallelRounds(n) fans each round's phases over n goroutines — both
// bit-identical to the sequential chain at the same seed, and both
// exclusive with distributed mode.
func SampleCSP(g *Graph, c *CSPModel, init []int, rounds int, seed uint64, distributed bool, opts ...Option) ([]int, Stats, error) {
	if rounds <= 0 {
		return nil, Stats{}, fmt.Errorf("locsample: SampleCSP needs rounds > 0")
	}
	cfg := core.Config{Algorithm: chains.LubyGlauber, Rounds: rounds, Seed: seed, Init: init}
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.Algorithm, cfg.Rounds, cfg.Seed, cfg.Init = chains.LubyGlauber, rounds, seed, init
	cfg.Distributed = cfg.Distributed || distributed
	if cfg.Distributed {
		// The sampler path below validates through NewCSPSampler; the
		// distributed path validates here (runtime exclusivity included).
		if _, err := core.CompileCSP(c, cfg); err != nil {
			return nil, Stats{}, err
		}
		return dist.RunCSPLubyGlauber(g, c, init, seed, rounds)
	}
	s, err := newCSPSamplerFromConfig(g, c, init, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	out, _, err := s.Sample()
	if err != nil {
		return nil, Stats{}, err
	}
	return out, localmodel.Stats{Rounds: rounds}, nil
}

// newCSPSamplerFromConfig builds a CSPSampler from an already-resolved
// Config (the option closures have run).
func newCSPSamplerFromConfig(g *Graph, c *CSPModel, init []int, cfg core.Config) (*CSPSampler, error) {
	opts := []Option{WithRounds(cfg.Rounds), WithSeed(cfg.Seed)}
	if cfg.Workers > 0 {
		opts = append(opts, WithWorkers(cfg.Workers))
	}
	if cfg.Shards > 1 {
		opts = append(opts, WithShards(cfg.Shards), WithShardStrategy(cfg.ShardStrategy))
	}
	if cfg.Parallel > 1 {
		opts = append(opts, WithParallelRounds(cfg.Parallel))
	}
	if cfg.BatchWidth != 0 {
		opts = append(opts, WithBatchWidth(cfg.BatchWidth))
	}
	if cfg.RoundsAuto {
		opts = append(opts, WithRoundsAuto())
	}
	if cfg.Coupling != 0 {
		opts = append(opts, WithCoupling(cfg.Coupling))
	}
	return NewCSPSampler(g, c, init, opts...)
}

// SampleCSPN draws k independent CSP samples over a worker pool — the CSP
// counterpart of Sampler.SampleN, with the same determinism contract:
// chain i is bit-identical to SampleCSP(g, c, init, rounds, ChainSeed(seed,
// i), false), regardless of k, worker count, or scheduling. Feasibility of
// init is validated once; workers <= 0 means GOMAXPROCS. All samples share
// one flat backing array, and each worker reuses one chain scratch, so the
// steady-state inner loops allocate nothing. Options as in SampleCSP
// (WithShards / WithParallelRounds; distributed batches are not supported).
func SampleCSPN(g *Graph, c *CSPModel, init []int, rounds int, seed uint64, k, workers int, opts ...Option) ([][]int, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("locsample: SampleCSPN needs rounds > 0")
	}
	if k < 0 {
		return nil, fmt.Errorf("locsample: SampleCSPN needs k >= 0, got %d", k)
	}
	cfg := core.Config{Algorithm: chains.LubyGlauber, Rounds: rounds, Seed: seed, Init: init, Workers: workers}
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.Algorithm, cfg.Rounds, cfg.Seed, cfg.Init = chains.LubyGlauber, rounds, seed, init
	if workers > 0 {
		cfg.Workers = workers
	}
	if cfg.Distributed {
		return nil, fmt.Errorf("locsample: SampleCSPN runs the centralized replay; Distributed batches are not supported")
	}
	s, err := newCSPSamplerFromConfig(g, c, init, cfg)
	if err != nil {
		return nil, err
	}
	batch, err := s.SampleNFrom(seed, k)
	if err != nil {
		return nil, err
	}
	return batch.Samples, nil
}
