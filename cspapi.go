package locsample

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"locsample/internal/core"
	"locsample/internal/csp"
	"locsample/internal/dist"
	"locsample/internal/localmodel"
)

// CSPModel is a weighted local CSP (factor graph, §2.2 of the paper):
// constraints (f_c, S_c) with per-vertex activities. It generalizes Model
// to multivariate constraints; both of the paper's chains extend to it
// (§3 and §4 remarks).
type CSPModel = csp.CSP

// CSPConstraint is one weighted constraint: a scope and a non-negative
// function over it.
type CSPConstraint = csp.Constraint

// NewDominatingSet returns the uniform distribution over dominating sets of
// g as a CSP (one cover constraint per inclusive neighborhood).
func NewDominatingSet(g *Graph) *CSPModel { return csp.DominatingSet(g) }

// NewWeightedDominatingSet weights dominating sets by λ^|S|.
func NewWeightedDominatingSet(g *Graph, lambda float64) *CSPModel {
	return csp.WeightedDominatingSet(g, lambda)
}

// NewCSP assembles a custom weighted local CSP; see csp.New for validation
// rules (constraint arities are enumerated to normalize the factors, so
// keep them small).
func NewCSP(n, q int, vertexActivities [][]float64, cons []CSPConstraint) (*CSPModel, error) {
	return csp.New(n, q, vertexActivities, cons)
}

// SampleCSP draws one configuration approximately distributed as the CSP's
// Gibbs distribution using the hypergraph LubyGlauber chain (§3 remark).
// When distributed is true the chain runs as a LOCAL protocol on network g
// (two communication rounds per chain iteration; constraints must have
// scope radius ≤ 1 on g, as cover constraints do). init must be feasible;
// rounds > 0 is required (no general theory budget exists for arbitrary
// CSPs).
func SampleCSP(g *Graph, c *CSPModel, init []int, rounds int, seed uint64, distributed bool) ([]int, Stats, error) {
	if rounds <= 0 {
		return nil, Stats{}, fmt.Errorf("locsample: SampleCSP needs rounds > 0")
	}
	if len(init) != c.N {
		return nil, Stats{}, fmt.Errorf("locsample: init length %d for %d vertices", len(init), c.N)
	}
	if !c.Feasible(init) {
		return nil, Stats{}, fmt.Errorf("locsample: initial configuration is infeasible")
	}
	if distributed {
		return dist.RunCSPLubyGlauber(g, c, init, seed, rounds)
	}
	x := append([]int(nil), init...)
	marg := make([]float64, c.Q)
	for k := 0; k < rounds; k++ {
		csp.LubyGlauberRoundPRF(c, x, seed, k, marg)
	}
	return x, localmodel.Stats{Rounds: rounds}, nil
}

// SampleCSPN draws k independent CSP samples over a worker pool — the CSP
// counterpart of Sampler.SampleN, with the same determinism contract:
// chain i is bit-identical to SampleCSP(g, c, init, rounds, ChainSeed(seed,
// i), false), regardless of k, worker count, or scheduling. Feasibility of
// init is validated once; workers <= 0 means GOMAXPROCS. All samples share
// one flat backing array, and each worker reuses one marginal scratch, so
// the steady-state inner loops allocate nothing.
func SampleCSPN(g *Graph, c *CSPModel, init []int, rounds int, seed uint64, k, workers int) ([][]int, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("locsample: SampleCSPN needs rounds > 0")
	}
	if len(init) != c.N {
		return nil, fmt.Errorf("locsample: init length %d for %d vertices", len(init), c.N)
	}
	if !c.Feasible(init) {
		return nil, fmt.Errorf("locsample: initial configuration is infeasible")
	}
	if k < 0 {
		return nil, fmt.Errorf("locsample: SampleCSPN needs k >= 0, got %d", k)
	}
	samples := make([][]int, k)
	if k == 0 {
		return samples, nil
	}
	n := c.N
	backing := make([]int, k*n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			marg := make([]float64, c.Q)
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				x := backing[i*n : (i+1)*n : (i+1)*n]
				copy(x, init)
				chainSeed := core.ChainSeed(seed, uint64(i))
				for r := 0; r < rounds; r++ {
					csp.LubyGlauberRoundPRF(c, x, chainSeed, r, marg)
				}
				samples[i] = x
			}
		}()
	}
	wg.Wait()
	return samples, nil
}
