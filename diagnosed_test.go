package locsample

import "testing"

// The diagnosed-draw pins: SampleDiagnosed is Sample plus a mixing
// report, never a different draw. Chain 0 of the coupling IS the chain
// that produces the sample, so at the same seed the two must be
// bit-identical — centralized, sharded, MRF and CSP alike.

func TestSampleDiagnosedBitIdentical(t *testing.T) {
	m := NewColoring(GridGraph(6, 6), 16)
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"centralized", []Option{WithSeed(42), WithRounds(80)}},
		{"sharded", []Option{WithSeed(42), WithRounds(80), WithShards(3)}},
		{"coupling-2", []Option{WithSeed(42), WithRounds(80), WithCoupling(2)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSampler(m, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			plain, err := s.Sample()
			if err != nil {
				t.Fatal(err)
			}
			res, diag, err := s.SampleDiagnosed()
			if err != nil {
				t.Fatal(err)
			}
			if diag == nil || diag.Chains < 2 || diag.Rounds != s.Rounds() {
				t.Fatalf("bad diagnosis: %+v", diag)
			}
			for v := range plain.Sample {
				if plain.Sample[v] != res.Sample[v] {
					t.Fatalf("diagnosed draw diverged from plain draw at vertex %d", v)
				}
			}
		})
	}
}

func TestRoundsAutoMeasuredBudget(t *testing.T) {
	// q=16 at Δ=4 is inside the LocalMetropolis proved regime, so the
	// coupling must coalesce well under the worst-case cap.
	m := NewColoring(GridGraph(8, 8), 16)
	auto, err := NewSampler(m, WithSeed(42), WithRoundsAuto())
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if auto.CapRounds() <= 0 {
		t.Fatalf("CapRounds = %d, want the worst-case cap", auto.CapRounds())
	}
	if auto.Rounds() <= 0 || auto.Rounds() > auto.CapRounds() {
		t.Fatalf("measured budget %d outside (0, cap %d]", auto.Rounds(), auto.CapRounds())
	}
	if auto.Rounds() == auto.CapRounds() {
		t.Fatalf("measured budget %d did not beat the cap — no coalescence in the proved regime", auto.Rounds())
	}
	// The pin: a draw under the measured budget is exactly a fixed-budget
	// draw with WithRounds(measured).
	fixed, err := NewSampler(m, WithSeed(42), WithRounds(auto.Rounds()))
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	a, err := auto.Sample()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fixed.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != auto.Rounds() {
		t.Fatalf("draw ran %d rounds, sampler resolved %d", a.Rounds, auto.Rounds())
	}
	for v := range a.Sample {
		if a.Sample[v] != f.Sample[v] {
			t.Fatalf("auto draw diverged from fixed-budget draw at vertex %d", v)
		}
	}
}

func TestRoundsAutoOneShotSample(t *testing.T) {
	m := NewColoring(GridGraph(6, 6), 16)
	res, err := Sample(m, WithSeed(7), WithRoundsAuto())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Sample(m, WithSeed(7), WithRounds(res.Rounds))
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Sample {
		if res.Sample[v] != want.Sample[v] {
			t.Fatalf("one-shot auto draw diverged at vertex %d", v)
		}
	}
}

func TestCSPSampleDiagnosedBitIdentical(t *testing.T) {
	g := GridGraph(5, 5)
	c := NewDominatingSet(g)
	init := make([]int, c.N)
	for v := range init {
		init[v] = 1
	}
	s, err := NewCSPSampler(g, c, init, WithSeed(13), WithRounds(100))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plain, _, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	out, diag, err := s.SampleDiagnosed()
	if err != nil {
		t.Fatal(err)
	}
	if diag == nil || diag.Rounds != s.Rounds() {
		t.Fatalf("bad diagnosis: %+v", diag)
	}
	for v := range plain {
		if plain[v] != out[v] {
			t.Fatalf("diagnosed CSP draw diverged at vertex %d", v)
		}
	}
}

func TestCSPRoundsAutoMeasuredBudget(t *testing.T) {
	g := GridGraph(5, 5)
	c := NewDominatingSet(g)
	init := make([]int, c.N)
	for v := range init {
		init[v] = 1
	}
	const cap = 2000
	auto, err := NewCSPSampler(g, c, init, WithSeed(13), WithRounds(cap), WithRoundsAuto())
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if auto.CapRounds() != cap {
		t.Fatalf("CapRounds = %d, want %d", auto.CapRounds(), cap)
	}
	if auto.Rounds() <= 0 || auto.Rounds() > cap {
		t.Fatalf("measured budget %d outside (0, %d]", auto.Rounds(), cap)
	}
	fixed, err := NewCSPSampler(g, c, init, WithSeed(13), WithRounds(auto.Rounds()))
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	a, _, err := auto.Sample()
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := fixed.Sample()
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != f[v] {
			t.Fatalf("auto CSP draw diverged from fixed-budget draw at vertex %d", v)
		}
	}
}
