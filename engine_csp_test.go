package locsample_test

import (
	"reflect"
	"testing"

	"locsample"
)

func cspTestWorkload(t *testing.T) (*locsample.Graph, *locsample.CSPModel, []int) {
	t.Helper()
	g := locsample.GridGraph(6, 6)
	c := locsample.NewDominatingSet(g)
	init := make([]int, g.N())
	for i := range init {
		init[i] = 1
	}
	return g, c, init
}

// TestWithShardsCSPBitIdentical: a CSP draw with WithShards(k) equals the
// centralized draw byte-for-byte at every tested shard count and strategy —
// the engine-level face of the cluster keystone invariant.
func TestWithShardsCSPBitIdentical(t *testing.T) {
	g, c, init := cspTestWorkload(t)
	const rounds, seed = 25, 1234
	want, _, err := locsample.SampleCSP(g, c, init, rounds, seed, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []locsample.ShardStrategy{locsample.ShardRange, locsample.ShardBFS} {
		for _, k := range []int{2, 3, 5, 8} {
			got, _, err := locsample.SampleCSP(g, c, init, rounds, seed, false,
				locsample.WithShards(k), locsample.WithShardStrategy(strat))
			if err != nil {
				t.Fatalf("shards=%d strategy=%v: %v", k, strat, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d strategy=%v: sharded CSP draw diverges from centralized", k, strat)
			}
		}
	}
	// The compiled sampler path reports shard stats.
	s, err := locsample.NewCSPSampler(g, c, init,
		locsample.WithRounds(rounds), locsample.WithSeed(seed), locsample.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Fatalf("sampler reports %d shards, want 4", s.Shards())
	}
	out, st, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatal("compiled sharded CSP sampler diverges from centralized draw")
	}
	if st == nil || st.Shards != 4 || st.BoundaryMessages == 0 {
		t.Fatalf("missing shard stats: %+v", st)
	}
}

// TestWithParallelRoundsCSPBitIdentical: vertex-parallel CSP rounds equal
// sequential rounds at every tested worker count.
func TestWithParallelRoundsCSPBitIdentical(t *testing.T) {
	g, c, init := cspTestWorkload(t)
	const rounds, seed = 25, 777
	want, _, err := locsample.SampleCSP(g, c, init, rounds, seed, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 3, 7} {
		got, _, err := locsample.SampleCSP(g, c, init, rounds, seed, false,
			locsample.WithParallelRounds(par))
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d: vertex-parallel CSP draw diverges from sequential", par)
		}
	}
	s, err := locsample.NewCSPSampler(g, c, init,
		locsample.WithRounds(rounds), locsample.WithSeed(seed), locsample.WithParallelRounds(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.ParallelRounds() != 3 {
		t.Fatalf("sampler reports %d parallel workers, want 3", s.ParallelRounds())
	}
	out, _, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatal("compiled parallel CSP sampler diverges from sequential draw")
	}
}

// TestCSPSamplerBatchDeterminism: chain i of a CSP batch equals a single
// draw at the derived chain seed, across runtimes and worker counts.
func TestCSPSamplerBatchDeterminism(t *testing.T) {
	g, c, init := cspTestWorkload(t)
	const rounds, seed, k = 15, 9, 6
	want := make([][]int, k)
	for i := range want {
		out, _, err := locsample.SampleCSP(g, c, init, rounds, locsample.ChainSeed(seed, i), false)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	for name, opts := range map[string][]locsample.Option{
		"centralized": nil,
		"workers1":    {locsample.WithWorkers(1)},
		"sharded":     {locsample.WithShards(3)},
		"parallel":    {locsample.WithParallelRounds(2)},
	} {
		all := append([]locsample.Option{locsample.WithRounds(rounds), locsample.WithSeed(seed)}, opts...)
		s, err := locsample.NewCSPSampler(g, c, init, all...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		batch, err := s.SampleNFrom(seed, k)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(batch.Samples, want) {
			t.Fatalf("%s: batch chains diverge from derived-seed singles", name)
		}
		// SampleCSPN carries the same contract through the convenience form.
		samples, err := locsample.SampleCSPN(g, c, init, rounds, seed, k, 0, opts...)
		if err != nil {
			t.Fatalf("%s: SampleCSPN: %v", name, err)
		}
		if !reflect.DeepEqual(samples, want) {
			t.Fatalf("%s: SampleCSPN diverges from derived-seed singles", name)
		}
	}
}

// TestCSPSamplerOptionErrors: conflicting or invalid runtime options are
// rejected with clear errors.
func TestCSPSamplerOptionErrors(t *testing.T) {
	g, c, init := cspTestWorkload(t)
	if _, err := locsample.NewCSPSampler(g, c, init); err == nil {
		t.Fatal("missing rounds accepted")
	}
	if _, err := locsample.NewCSPSampler(g, c, init,
		locsample.WithRounds(5), locsample.WithShards(2), locsample.WithParallelRounds(2)); err == nil {
		t.Fatal("shards+parallel accepted")
	}
	if _, err := locsample.NewCSPSampler(g, c, init,
		locsample.WithRounds(5), locsample.Distributed()); err == nil {
		t.Fatal("distributed batch sampler accepted")
	}
	if _, err := locsample.NewCSPSampler(g, c, init,
		locsample.WithRounds(5), locsample.WithAlgorithm(locsample.LocalMetropolis)); err == nil {
		t.Fatal("non-LubyGlauber algorithm accepted")
	}
	if _, _, err := locsample.SampleCSP(g, c, init, 5, 1, true, locsample.WithShards(2)); err == nil {
		t.Fatal("distributed sharded CSP draw accepted")
	}
	if _, _, err := locsample.SampleCSP(g, c, init, 5, 1, true, locsample.WithParallelRounds(2)); err == nil {
		t.Fatal("distributed parallel CSP draw accepted")
	}
	bad := make([]int, len(init)) // all zeros: not dominating
	if _, err := locsample.NewCSPSampler(g, c, bad, locsample.WithRounds(5)); err == nil {
		t.Fatal("infeasible init accepted")
	}
}
