GO ?= go

.PHONY: build test race bench-json bench-json-quick bit-identity fmt vet

build:
	$(GO) build ./...
	$(GO) build ./cmd/lsample ./cmd/lserved ./cmd/lsexp ./cmd/lsbench

test:
	$(GO) test ./...

# The sharded-runtime packages under the race detector, plus the CI gate:
# sharded draws must equal centralized draws byte-for-byte.
race:
	$(GO) test -race ./internal/cluster/... ./internal/partition/...

bit-identity:
	$(GO) test -count=1 -run 'TestShardedBitIdentical|TestWithShardsBitIdentical|TestServerShardedDrawBitIdentical' \
		./internal/cluster/ ./internal/service/ .

# Perf trajectory: run the core benchmark suite and write machine-readable
# results (ns/op, allocs/op, vertices/sec, shard speedups) to the repo root.
bench-json:
	$(GO) run ./cmd/lsbench -out BENCH_PR3.json

# CI smoke variant: small sizes, throwaway output.
bench-json-quick:
	$(GO) run ./cmd/lsbench -quick -out /tmp/locsample-bench.json

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
