GO ?= go

.PHONY: build test race chaos bench-json bench-json-quick bit-identity fmt vet

build:
	$(GO) build ./...
	$(GO) build ./cmd/lsample ./cmd/lserved ./cmd/lsexp ./cmd/lsbench ./cmd/lsharded

test:
	$(GO) test ./...

# The parallel runtimes under the race detector (GOMAXPROCS pinned > 1 so
# goroutines genuinely interleave), plus the CI gate: sharded and
# vertex-parallel draws — MRF and CSP alike — must equal centralized
# sequential draws byte-for-byte.
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/cluster/... ./internal/partition/... ./internal/transport/... ./internal/obs/...
	GOMAXPROCS=4 $(GO) test -race -run 'Parallel|CSP|Remote|Worker|Trace|Metrics|Drain|SoA' ./internal/chains/ ./internal/csp/ ./internal/service/ .

# The self-healing gate, under the race detector: real lsharded worker
# processes are SIGKILLed and SIGSTOPped in the middle of draws, and the
# draws must recover via standby replacement with byte-identical output
# (MRF and CSP, two shard counts each); a dead fleet with no standby
# must fail with a typed WorkerError, never a partial sample; a dead
# fleet behind lserved must degrade to the bit-identical local fallback
# and open the circuit breaker; and the transport dial/deadline paths
# must stay bounded against refused, late-accepting, and half-open
# peers.
chaos:
	GOMAXPROCS=4 $(GO) test -race -count=1 -timeout 10m \
		-run 'TestChaos|TestDialRetry|TestDialControl|TestPingHalfOpenPeerTimesOut|TestReadControlHalfOpenPeerTimesOut|TestPingLiveWorkerLoopback|TestBreakerStateMachine|TestDegradedFallbackBitIdentical|TestCentralizedDrawsBypassBreaker|TestProbeWorkersDeadFleet|TestSampleContext' \
		./internal/transport/ ./internal/service/ .

bit-identity:
	GOMAXPROCS=4 $(GO) test -count=1 -run 'TestShardedBitIdentical|TestWithShardsBitIdentical|TestServerShardedDrawBitIdentical|TestParallelRoundsMatchSequential|TestWithParallelRoundsBitIdentical|TestServerParallelDrawBitIdentical|TestTransportEngineBitIdentical|TestRemoteMRFBitIdentical|TestRegistryRemoteWorkers|TestCrossProcessShardedBitIdentical|TestSampleDiagnosedBitIdentical|TestRoundsAuto|TestSoARoundsMatchSequential|TestSampleNSoABitIdentical' \
		./internal/cluster/ ./internal/chains/ ./internal/service/ .
	GOMAXPROCS=4 $(GO) test -count=1 -run 'MatchesReference|TestCSPShardedBitIdentical|TestCSPParallelRoundsMatchSequential|TestWithShardsCSPBitIdentical|TestWithParallelRoundsCSPBitIdentical|TestCSPSamplerBatchDeterminism|TestServerCSPShardedDrawBitIdentical|TestServerCSPParallelDrawBitIdentical|TestRemoteCSPBitIdentical|TestCrossProcessCSPBitIdentical|TestCSPSampleDiagnosedBitIdentical|TestCSPRoundsAuto|TestCSPSoARoundsMatchSequential|TestSampleCSPNSoABitIdentical' \
		./internal/csp/ ./internal/cluster/ ./internal/service/ .

# Perf trajectory: run the core benchmark suite and write machine-readable
# results (ns/op, allocs/op, vertices/sec, shard/parallel speedups, the CSP
# chain suite, the observability-overhead suite, and speedup_vs the previous
# PR's report) to the repo root.
bench-json:
	GOMAXPROCS=4 $(GO) run ./cmd/lsbench -out BENCH_PR10.json -baseline BENCH_PR8.json

# CI smoke variant: small sizes, throwaway output. Fails if a benchmark
# matched in the checked-in baseline regresses >20% on the same host class
# (cross-class runs skip the comparison — see lsbench -baseline).
bench-json-quick:
	GOMAXPROCS=4 $(GO) run ./cmd/lsbench -quick -baseline BENCH_PR10.json -max-regress 0.20 -out /tmp/locsample-bench.json

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
