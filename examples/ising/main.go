// Ising: distributed Gibbs sampling of the Ising model on a torus across a
// temperature sweep, measuring the magnetization statistic. Demonstrates
// the library on a soft-constraint (all configurations feasible) MRF.
package main

import (
	"fmt"
	"log"
	"math"

	"locsample"
)

func main() {
	g := locsample.TorusGraph(12, 12)
	fmt.Println("Ising model on a 12x12 torus via distributed LubyGlauber")
	fmt.Println("(β > 1 ferromagnetic: spins align as β grows)")
	fmt.Println()
	fmt.Println("β       E[|magnetization|]")

	for _, beta := range []float64{0.8, 1.0, 1.2, 1.5, 2.0, 3.0} {
		model := locsample.NewIsing(g, beta, 1)
		const samples = 30
		sum := 0.0
		for s := 0; s < samples; s++ {
			res, err := locsample.Sample(model,
				locsample.WithAlgorithm(locsample.LubyGlauber),
				locsample.WithSeed(uint64(s)*997+1),
				locsample.WithRounds(600),
				locsample.Distributed())
			if err != nil {
				log.Fatal(err)
			}
			up := 0
			for _, x := range res.Sample {
				up += x
			}
			// Magnetization in [-1, 1]: (up - down)/n.
			mag := float64(2*up-g.N()) / float64(g.N())
			sum += math.Abs(mag)
		}
		fmt.Printf("%-7.2f %.3f\n", beta, sum/samples)
	}

	fmt.Println("\n|m| stays near 0 at small β (disorder) and approaches 1 at large β")
	fmt.Println("(ferromagnetic order) — the expected sigmoid shape.")
}
