// Coloring: the headline comparison of the paper — LubyGlauber needs
// Θ(Δ log n) rounds while LocalMetropolis needs O(log n) rounds regardless
// of Δ. This example sweeps the maximum degree on random regular graphs at
// fixed q/Δ and prints both the theory budgets and measured coalescence
// rounds.
package main

import (
	"fmt"
	"log"

	"locsample"
	"locsample/internal/chains"
	"locsample/internal/coupling"
	"locsample/internal/mrf"
)

func main() {
	const n = 96
	fmt.Println("random n=96 regular graphs, q = 4Δ (both algorithms in proved regimes)")
	fmt.Println("Δ    q    theory(LubyGlauber)  theory(LocalMetropolis)  measured(LG)  measured(LM)")

	for _, d := range []int{3, 4, 6, 8, 10} {
		g, err := locsample.RandomRegularGraph(n, d, uint64(d))
		if err != nil {
			log.Fatal(err)
		}
		q := 4 * d
		model := locsample.NewColoring(g, q)

		tLG, err := locsample.TheoryRounds(model, locsample.LubyGlauber, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		tLM, err := locsample.TheoryRounds(model, locsample.LocalMetropolis, 0.01)
		if err != nil {
			log.Fatal(err)
		}

		m := mrf.Coloring(g, q)
		mLG, _ := coupling.MixingEstimate(m, chains.LubyGlauber, 7, 100000, uint64(d)*11)
		mLM, _ := coupling.MixingEstimate(m, chains.LocalMetropolis, 7, 100000, uint64(d)*13)

		fmt.Printf("%-4d %-4d %-20d %-24d %-13d %d\n", d, q, tLG, tLM, mLG, mLM)
	}

	fmt.Println()
	fmt.Println("shape check (Theorems 1.1 vs 1.2): the LubyGlauber columns grow with Δ,")
	fmt.Println("the LocalMetropolis columns stay flat — full parallelism wins at scale.")
}
