// Quickstart: sample a uniform proper coloring of a grid with the
// LocalMetropolis algorithm running as a genuine LOCAL-model protocol, and
// verify the output.
package main

import (
	"fmt"
	"log"

	"locsample"
)

func main() {
	// A 16×16 grid network: 256 processors, Δ = 4.
	g := locsample.GridGraph(16, 16)

	// The model: uniform proper q-colorings with q = 4Δ (inside the
	// q > (2+√2)Δ regime of Theorem 1.2, so O(log n) rounds suffice).
	q := 4 * g.MaxDeg()
	model := locsample.NewColoring(g, q)

	res, err := locsample.Sample(model,
		locsample.WithAlgorithm(locsample.LocalMetropolis),
		locsample.WithEpsilon(0.01),
		locsample.WithSeed(2017), // PODC 2017
		locsample.Distributed(),  // run on the message-passing runtime
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sampled a %d-coloring of the %d-vertex grid in %d rounds\n",
		q, g.N(), res.Rounds)
	fmt.Printf("proper: %v\n", g.IsProperColoring(res.Sample))
	fmt.Printf("communication: %d messages, max message %d bytes (O(log n + log q) bits)\n",
		res.Stats.Messages, res.Stats.MaxMessageBytes)

	// Print a corner of the coloring.
	fmt.Println("top-left 8x8 corner:")
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			fmt.Printf("%3d", res.Sample[i*16+j])
		}
		fmt.Println()
	}
}
