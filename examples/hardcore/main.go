// Hardcore: sampling weighted independent sets across the uniqueness
// threshold λ_c(Δ) = (Δ−1)^(Δ−1)/(Δ−2)^Δ. Below λ_c local sampling is easy
// (this example does it); above λ_c Theorem 5.2 shows Ω(diam) rounds are
// required — run cmd/lsexp E7/E8 for that side.
package main

import (
	"fmt"
	"log"

	"locsample"
)

func main() {
	// 4-regular torus: λ_c(4) = 27/16 ≈ 1.6875.
	g := locsample.TorusGraph(10, 10)
	lambdaC := locsample.HardcoreUniquenessThreshold(g.MaxDeg())
	fmt.Printf("torus 10x10 (Δ=4): uniqueness threshold λ_c = %.4f\n\n", lambdaC)

	fmt.Println("λ       mean |I|   occupancy   regime")
	for _, lambda := range []float64{0.25, 0.5, 1.0, 1.5, 2.5} {
		model := locsample.NewHardcore(g, lambda)
		const samples = 40
		total := 0
		for s := 0; s < samples; s++ {
			res, err := locsample.Sample(model,
				locsample.WithAlgorithm(locsample.LubyGlauber),
				locsample.WithSeed(uint64(s)+1),
				locsample.WithRounds(800))
			if err != nil {
				log.Fatal(err)
			}
			if !g.IsIndependentSet(res.Sample) {
				log.Fatal("sample is not an independent set")
			}
			for _, x := range res.Sample {
				total += x
			}
		}
		mean := float64(total) / samples
		regime := "uniqueness (local sampling easy)"
		if lambda > lambdaC {
			regime = "NON-uniqueness (Ω(diam) in the LOCAL model, Thm 5.2)"
		}
		fmt.Printf("%-7.2f %-10.1f %-11.3f %s\n",
			lambda, mean, mean/float64(g.N()), regime)
	}

	fmt.Println("\noccupancy rises with λ; above λ_c the printed samples come from a chain")
	fmt.Println("that is no longer guaranteed to have mixed — the lower-bound experiments")
	fmt.Println("(lsexp E8) show no local algorithm can fix that.")
}
