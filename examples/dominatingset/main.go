// Dominatingset: sampling uniform dominating sets — a weighted local CSP
// beyond MRFs (§2.2 "Dominating sets" and the §3 remark) — with the
// hypergraph LubyGlauber chain running as a genuine LOCAL protocol. Because
// the "cover" constraints live on inclusive neighborhoods, the hypergraph
// neighborhood reaches distance 2 and each chain iteration costs two
// communication rounds.
package main

import (
	"fmt"
	"log"

	"locsample/internal/csp"
	"locsample/internal/dist"
	"locsample/internal/exact"
	"locsample/internal/graph"
)

func main() {
	// Sample on a 5x5 grid over the message-passing runtime.
	g := graph.Grid(5, 5)
	c := csp.DominatingSet(g)
	init := make([]int, g.N())
	for i := range init {
		init[i] = 1 // the full vertex set always dominates
	}

	out, stats, err := dist.RunCSPLubyGlauber(g, c, init, 2017, 400)
	if err != nil {
		log.Fatal(err)
	}
	size := 0
	for _, x := range out {
		size += x
	}
	fmt.Printf("5x5 grid: sampled dominating set of size %d (valid: %v)\n",
		size, g.IsDominatingSet(out))
	fmt.Printf("protocol: %d LOCAL rounds (2 per chain iteration), max message %d bytes\n\n",
		stats.Rounds, stats.MaxMessageBytes)

	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if out[i*5+j] == 1 {
				fmt.Print(" ■")
			} else {
				fmt.Print(" ·")
			}
		}
		fmt.Println()
	}

	// On a small instance, verify the sampler against exact enumeration.
	fmt.Println("\nvalidation on C5 against exact enumeration:")
	small := graph.Cycle(5)
	cs := csp.DominatingSet(small)
	mu, err := exact.Enumerate(cs.N, cs.Q, cs.Weight, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	counts := make([]float64, len(mu.P))
	const samples = 3000
	initSmall := []int{1, 1, 1, 1, 1}
	for s := 0; s < samples; s++ {
		conf, _, err := dist.RunCSPLubyGlauber(small, cs, initSmall, uint64(s)+1, 60)
		if err != nil {
			log.Fatal(err)
		}
		counts[exact.Index(cs.Q, conf)]++
	}
	for i := range counts {
		counts[i] /= samples
	}
	fmt.Printf("TV(empirical over %d distributed runs, exact uniform) = %.4f\n",
		samples, exact.TV(counts, mu.P))
	fmt.Println("(sampling noise for 16 feasible states at this sample size is ≈ 0.02)")
}
