// Lowerbound: a runnable demonstration of Theorem 5.2's Ω(diam) argument.
// We build the paper's lifted even cycle H^G from a random bipartite
// gadget, compute the exact antipodal phase correlation of the hardcore
// Gibbs distribution by transfer matrices, and compare it against what a
// t-round LOCAL protocol actually outputs.
package main

import (
	"fmt"
	"log"

	"locsample/internal/lowerbound"
)

func main() {
	// A Prop 5.3 gadget: n=5 per side, 2 terminals per side, Δ=3, λ=6 > λ_c(3)=4.
	gd, _, tries, err := lowerbound.FindGoodGadget(5, 2, 3, 6.0, 1.0, 100.0, 500, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gadget found after %d tries: %d vertices, Δ=%d terminals per side=%d\n",
		tries, gd.G.N(), gd.Delta, gd.K)

	const m = 6 // cycle length; m/2 = 3 odd, so antipodal max-cut phases differ
	lc, err := lowerbound.BuildLiftedCycle(gd, m)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := lowerbound.ComputeTransfer(gd, 6.0)
	if err != nil {
		log.Fatal(err)
	}

	diam := lc.G.Diameter()
	fmt.Printf("lifted cycle H^G: %d vertices, 3-regular, diameter %d\n\n", lc.G.N(), diam)

	p1, p2, total := tr.MaxCutMass(m)
	fmt.Printf("exact Gibbs phase-vector mass: max-cut #1 = %.4f, #2 = %.4f (sum %.4f)\n", p1, p2, total)

	joint, err := tr.PairPhaseProb(m, 0, m/2)
	if err != nil {
		log.Fatal(err)
	}
	gibbsCorr := lowerbound.PhaseCorrelation(joint)
	fmt.Printf("exact antipodal phase correlation under Gibbs: %+.4f (anti-correlated)\n\n", gibbsCorr)

	fmt.Println("LocalMetropolis protocol phase correlation after T rounds (4000 runs each):")
	for _, T := range []int{1, diam / 4, diam / 2, diam, 2 * diam} {
		if T < 1 {
			T = 1
		}
		pj := lowerbound.ProtocolPhaseJoint(lc, 6.0, T, 4000, uint64(T)*31+7, 0, m/2)
		corr := lowerbound.PhaseCorrelation(pj)
		note := ""
		if T < diam/2 {
			note = "  <- locality forces independence (Eq. 27)"
		}
		fmt.Printf("  T = %-4d corr = %+.4f%s\n", T, corr, note)
	}

	fmt.Println("\nany correct ε-sampler must reproduce the negative Gibbs correlation;")
	fmt.Println("a t-round protocol with t < 0.49·diam provably cannot — Theorem 5.2's Ω(diam).")
}
