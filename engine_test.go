package locsample_test

import (
	"testing"
	"time"

	"locsample"
)

// TestSampleNMatchesDerivedSeedSamples pins the batch determinism contract:
// chain i of SampleN(k) with master seed s is bit-identical to a single
// Sample with seed ChainSeed(s, i), for every algorithm the engine runs.
func TestSampleNMatchesDerivedSeedSamples(t *testing.T) {
	g := locsample.GridGraph(8, 8)
	for _, tc := range []struct {
		name  string
		model *locsample.Model
		alg   locsample.Algorithm
	}{
		{"localmetropolis-coloring", locsample.NewColoring(g, 3*g.MaxDeg()), locsample.LocalMetropolis},
		{"lubyglauber-coloring", locsample.NewColoring(g, 2*g.MaxDeg()+1), locsample.LubyGlauber},
		{"lubyglauber-hardcore", locsample.NewHardcore(g, 0.7), locsample.LubyGlauber},
		{"glauber-coloring", locsample.NewColoring(g, 3*g.MaxDeg()), locsample.Glauber},
		{"localmetropolis-ising", locsample.NewIsing(g, 0.9, 0.4), locsample.LocalMetropolis},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const seed, k = 42, 6
			opts := []locsample.Option{
				locsample.WithAlgorithm(tc.alg),
				locsample.WithRounds(40),
			}
			s, err := locsample.NewSampler(tc.model, append(opts, locsample.WithSeed(seed))...)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := s.SampleN(k)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch.Samples) != k || batch.Rounds != 40 {
				t.Fatalf("batch shape: %d samples, %d rounds", len(batch.Samples), batch.Rounds)
			}
			for i := 0; i < k; i++ {
				single, err := locsample.Sample(tc.model,
					append(opts, locsample.WithSeed(locsample.ChainSeed(seed, i)))...)
				if err != nil {
					t.Fatal(err)
				}
				for v := range single.Sample {
					if batch.Samples[i][v] != single.Sample[v] {
						t.Fatalf("chain %d diverges from derived-seed Sample at vertex %d", i, v)
					}
				}
			}
		})
	}
}

// TestSampleNWorkerCountInvariance: results are positionally stable no
// matter how the worker pool carves up the batch.
func TestSampleNWorkerCountInvariance(t *testing.T) {
	g := locsample.TorusGraph(6, 6)
	model := locsample.NewColoring(g, 3*g.MaxDeg())
	const seed, k = 11, 12
	var ref *locsample.Batch
	for _, workers := range []int{1, 3, 8} {
		s, err := locsample.NewSampler(model,
			locsample.WithSeed(seed),
			locsample.WithRounds(30),
			locsample.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := s.SampleN(k)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = batch
			continue
		}
		for i := range batch.Samples {
			for v := range batch.Samples[i] {
				if batch.Samples[i][v] != ref.Samples[i][v] {
					t.Fatalf("workers=%d changed chain %d at vertex %d", workers, i, v)
				}
			}
		}
	}
}

// TestSampleNDistributed: the engine's distributed mode keeps the same
// per-chain determinism, through the message-passing runtime.
func TestSampleNDistributed(t *testing.T) {
	g := locsample.CycleGraph(16)
	model := locsample.NewColoring(g, 8)
	opts := []locsample.Option{
		locsample.WithSeed(5),
		locsample.WithRounds(20),
	}
	central, err := locsample.NewSampler(model, opts...)
	if err != nil {
		t.Fatal(err)
	}
	distr, err := locsample.NewSampler(model, append(opts, locsample.Distributed())...)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	cb, err := central.SampleN(k)
	if err != nil {
		t.Fatal(err)
	}
	db, err := distr.SampleN(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		for v := range cb.Samples[i] {
			if cb.Samples[i][v] != db.Samples[i][v] {
				t.Fatalf("modes disagree on chain %d at vertex %d", i, v)
			}
		}
	}
}

// TestSamplerSampleMatchesPackageSample: the compiled sampler's single-draw
// path is the package-level Sample, bit for bit and field for field.
func TestSamplerSampleMatchesPackageSample(t *testing.T) {
	g := locsample.GridGraph(6, 6)
	model := locsample.NewColoring(g, 4*g.MaxDeg())
	opts := []locsample.Option{
		locsample.WithEpsilon(0.05),
		locsample.WithSeed(77),
	}
	s, err := locsample.NewSampler(model, opts...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	b, err := locsample.Sample(model, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.TheoryRounds != b.TheoryRounds {
		t.Fatalf("provenance differs: %+v vs %+v", a, b)
	}
	for v := range a.Sample {
		if a.Sample[v] != b.Sample[v] {
			t.Fatalf("samples differ at vertex %d", v)
		}
	}
	if s.Rounds() != a.Rounds || s.TheoryRounds() != a.TheoryRounds {
		t.Fatalf("engine reports rounds=%d theory=%d, sample says %d/%d",
			s.Rounds(), s.TheoryRounds(), a.Rounds, a.TheoryRounds)
	}
}

// TestSampleNValidity: every chain of a large batch is a proper sample of
// its model (exercises the worker pool under the race detector in CI).
func TestSampleNValidity(t *testing.T) {
	g := locsample.GridGraph(10, 10)
	model := locsample.NewColoring(g, 3*g.MaxDeg())
	s, err := locsample.NewSampler(model,
		locsample.WithSeed(1),
		locsample.WithRounds(60),
		locsample.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.SampleN(32)
	if err != nil {
		t.Fatal(err)
	}
	for i, sample := range batch.Samples {
		if !g.IsProperColoring(sample) {
			t.Fatalf("chain %d produced an improper coloring", i)
		}
	}
}

// TestSampleNEdgeCases: k = 0 is an empty batch, negative k is an error.
func TestSampleNEdgeCases(t *testing.T) {
	model := locsample.NewColoring(locsample.CycleGraph(6), 5)
	s, err := locsample.NewSampler(model, locsample.WithRounds(5))
	if err != nil {
		t.Fatal(err)
	}
	empty, err := s.SampleN(0)
	if err != nil || len(empty.Samples) != 0 {
		t.Fatalf("SampleN(0): %v, %d samples", err, len(empty.Samples))
	}
	if _, err := s.SampleN(-1); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := locsample.NewSampler(model, locsample.WithInitial([]int{0})); err == nil {
		t.Fatal("short init accepted")
	}
}

// TestChainSeedSplitting: derived seeds are deterministic and pairwise
// distinct over a realistic batch range.
func TestChainSeedSplitting(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		s := locsample.ChainSeed(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("chains %d and %d share a seed", i, j)
		}
		seen[s] = i
	}
	if locsample.ChainSeed(42, 0) != locsample.ChainSeed(42, 0) {
		t.Fatal("ChainSeed not deterministic")
	}
	if locsample.ChainSeed(42, 0) == locsample.ChainSeed(43, 0) {
		t.Fatal("master seed ignored")
	}
}

// TestSampleNFromReseedsWithoutRecompiling: SampleNFrom(seed, k) on one
// compiled sampler equals SampleN(k) on a sampler compiled with that seed —
// the serving path, where one compiled model answers many requests with
// per-request master seeds.
func TestSampleNFromReseedsWithoutRecompiling(t *testing.T) {
	g := locsample.GridGraph(8, 8)
	model := locsample.NewColoring(g, 3*g.MaxDeg())
	shared, err := locsample.NewSampler(model, locsample.WithRounds(40), locsample.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 0, 1 << 60} {
		got, err := shared.SampleNFrom(seed, 4)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := locsample.NewSampler(model, locsample.WithRounds(40), locsample.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.SampleN(4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Samples {
			for v := range want.Samples[i] {
				if got.Samples[i][v] != want.Samples[i][v] {
					t.Fatalf("seed %d chain %d diverges at vertex %d", seed, i, v)
				}
			}
		}
	}
}

// TestSampleNFailsFast: when chains error (here: an algorithm with no
// distributed implementation), the batch reports the error and the abort
// flag keeps the pool from draining the whole queue first.
func TestSampleNFailsFast(t *testing.T) {
	// Modest k*n: the batch backing array is allocated up front, so a huge
	// k would reserve real memory before the first chain even fails.
	model := locsample.NewColoring(locsample.GridGraph(32, 32), 13)
	s, err := locsample.NewSampler(model,
		locsample.WithAlgorithm(locsample.Glauber),
		locsample.WithRounds(1000000),
		locsample.Distributed(),
		locsample.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.SampleN(1 << 13); err == nil {
		t.Fatal("doomed batch reported no error")
	}
	// Every chain fails instantly; without the abort flag the pool would
	// still claim (and re-resolve a greedy init for) all 2^13 chains. With
	// it the batch dies within a few claims.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("doomed batch took %v; abort flag not effective", elapsed)
	}
}
