package locsample

import (
	"fmt"

	"locsample/internal/spec"
)

// Spec is the versioned JSON wire description of a sampling workload: a
// graph plus a model, serializable, strictly validated, and content-
// addressed. It is the format cmd/lserved serves and cmd/lsample's
// -model-file flag loads; see internal/spec for the canonical-form and
// hashing rules.
type Spec = spec.Spec

// GraphSpec is the graph part of a Spec: an explicit edge list or a named
// generator family.
type GraphSpec = spec.GraphSpec

// ModelSpec is the model part of a Spec.
type ModelSpec = spec.ModelSpec

// ConstraintSpec is one weighted local constraint of a CSP ModelSpec.
type ConstraintSpec = spec.ConstraintSpec

// SpecVersion is the wire-format version a Spec must declare.
const SpecVersion = spec.Version

// ParseSpec decodes and strictly validates a JSON spec: unknown fields,
// trailing data, wrong versions, oversized payloads, and semantically
// invalid workloads are all rejected.
func ParseSpec(data []byte) (*Spec, error) { return spec.Decode(data) }

// EncodeSpec returns the canonical JSON encoding of s — the exact bytes
// SpecHash is computed over.
func EncodeSpec(s *Spec) ([]byte, error) { return spec.Encode(s) }

// SpecHash returns the canonical content address of s
// ("sha256:" + 64 hex digits). Two specs hash equal iff they decode to the
// same workload; the serving layer keys its model registry and compiled-
// sampler cache by this value.
func SpecHash(s *Spec) (string, error) { return spec.Hash(s) }

// BuiltSpec is a spec realized as a live workload: the graph and exactly
// one of Model (every MRF kind) or CSP (kind "csp").
type BuiltSpec struct {
	// Hash is the spec's canonical content address.
	Hash string
	// Graph is the network.
	Graph *Graph
	// Model is non-nil for every kind except "csp".
	Model *Model
	// CSP is non-nil for kind "csp".
	CSP *CSPModel
	// Init is the resolved feasible starting configuration for CSP
	// workloads; nil for MRFs (Sample resolves theirs).
	Init []int
	// Rounds is the CSP spec's default chain-iteration budget (0 when the
	// spec leaves the budget to the caller); 0 for MRFs.
	Rounds int
	// Shards is the spec's default shard count for served draws (0 when
	// the spec leaves it to the caller); legal on MRF and CSP kinds alike.
	Shards int
	// Parallel is the spec's default vertex-parallel worker count for
	// served draws (0 when the spec leaves it to the caller); legal on MRF
	// and CSP kinds alike.
	Parallel int
}

// BuildSpec validates s and constructs the workload it describes. The same
// spec always builds the same workload: random graph families are seeded,
// and a CSP's default init is derived deterministically.
func BuildSpec(s *Spec) (*BuiltSpec, error) {
	b, err := spec.Build(s)
	if err != nil {
		return nil, err
	}
	return &BuiltSpec{
		Hash:     b.Hash,
		Graph:    b.Graph,
		Model:    b.MRF,
		CSP:      b.CSP,
		Init:     b.Init,
		Rounds:   b.Rounds,
		Shards:   b.Shards,
		Parallel: b.Parallel,
	}, nil
}

// NewSpecFromModel exports an in-memory MRF model to the wire format (an
// explicit edge list with kind "mrf" activity tables), so any model built
// in Go — including the package's named constructors — can be served or
// saved. Build(NewSpecFromModel(m, name)) defines the same Gibbs
// distribution as m.
func NewSpecFromModel(m *Model, name string) (*Spec, error) {
	s := spec.FromMRF(m, name)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("locsample: model does not fit the wire format: %w", err)
	}
	return s, nil
}

// NewSpecFromCSP exports an in-memory CSP to the wire format (kind "csp"
// with explicit table constraints), so any CSP built in Go can be served,
// saved, or shipped to remote workers. g is the network (nil for none);
// init must be feasible and rounds positive — they become the spec's
// pinned defaults. Build(NewSpecFromCSP(...)) reconstructs a CSP whose
// chains are bit-identical to c's at every seed.
func NewSpecFromCSP(g *Graph, c *CSPModel, init []int, rounds int, name string) (*Spec, error) {
	s, err := spec.FromCSP(c, g, init, rounds, name)
	if err != nil {
		return nil, fmt.Errorf("locsample: CSP does not fit the wire format: %w", err)
	}
	return s, nil
}
