package locsample

// The coordinator half of cross-process sharded draws. WithRemoteWorkers
// places a sampler's shard plan on lsharded worker processes: the
// coordinator ships each worker the model's wire spec plus the plan
// parameters (shard count, strategy, plan seed) over a control
// connection, the workers rebuild the model and plan deterministically,
// mesh up over TCP, and then run lockstep rounds on request. Because a
// sharded draw is bit-identical to the centralized chain at the same
// seed — shard boundaries only move PRF-keyed state around, never change
// it — the reassembled configuration is byte-for-byte the one a local
// draw would produce.
//
// The same purity is what makes the coordinator self-healing: nothing a
// worker holds is needed to recover from its death. A failed draw tears
// the session down, optionally swaps a standby worker into the dead
// worker's slot (WithStandbyWorkers), re-ships the job, and redraws
// under the RetryPolicy's attempt/backoff budget; the recovered draw is
// byte-identical to an undisturbed one.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"locsample/internal/core"
	"locsample/internal/obs"
	"locsample/internal/partition"
	"locsample/internal/transport"
)

// WorkerError reports which remote worker a cross-process draw failed
// on. Coordinator calls return it after the retry budget is spent; the
// draw never returns a partially-assembled configuration.
type WorkerError struct {
	// Worker is the process index in the WithRemoteWorkers list.
	Worker int
	// Addr is the worker's address.
	Addr string
	// Err is the underlying failure.
	Err error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("locsample: worker %d (%s): %v", e.Worker, e.Addr, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// remoteJob is everything a worker set needs to host one sampler's
// shards; it is resent verbatim on reconnect (with the current address
// list — replacement edits addrs between attempts).
type remoteJob struct {
	kind      string // "mrf" | "csp"
	spec      *Spec
	algorithm string
	dropRule3 bool
	shards    int
	strategy  string
	planSeed  uint64
	init      []int
	addrs     []string
}

// remoteEngine drives draws over the workers' control connections. One
// draw at a time: the mutex serializes callers, and within a draw the
// run request fans out to every worker before any result is awaited.
type remoteEngine struct {
	job     remoteJob
	policy  core.RetryPolicy
	rawSpec []byte
	// slots[w][i] is the global vertex that takes the i-th state of
	// worker w's result (the worker concatenates its local shards in
	// ascending shard order, each shard's owned band in ascending global
	// order — the same order AssignShards and the plan fix here). The
	// shard→worker assignment depends only on the worker *count*, which
	// replacement preserves, so slots survive any number of swaps.
	slots [][]int

	// log and the metric series below come from the sampler's Config
	// (WithMetrics / WithLogger); all tolerate their zero state.
	log *slog.Logger
	reg *obs.Registry
	// errs[stage] counts WorkerErrors by failure stage.
	errs map[string]*obs.Counter
	// replacements counts standby workers swapped in for failed ones.
	replacements *obs.Counter

	// addrMu guards the fleet view shared with the heartbeat
	// supervisor: the live address list (job.addrs), the standby pool,
	// and the per-address up gauges. Writers of job.addrs hold both mu
	// and addrMu, so a reader holding either lock sees a consistent
	// list.
	addrMu  sync.Mutex
	standby []string
	// up[addr] is the locsample_worker_up gauge for a worker address:
	// 1 while its session is established (or, with a heartbeat
	// supervisor running, while it answers pings).
	up map[string]*obs.Gauge

	// hbStop/hbDone bracket the heartbeat supervisor's lifetime; nil
	// when the policy has no heartbeat.
	hbStop    chan struct{}
	hbDone    chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	conns []net.Conn // nil until the first draw connects, nil again after teardown
}

// Coordinator-side WorkerError stages, the label values of
// locsample_worker_errors_total.
const (
	errStageDial   = "dial"
	errStageReady  = "ready"
	errStageReject = "reject"
	errStageRun    = "run"
	errStageResult = "result"
)

// setObs wires the coordinator's metrics and logger (both optional;
// reg may be nil — the obs accessors then return no-op metrics) and
// starts the heartbeat supervisor when the policy asks for one. Every
// fleet address — live and standby — gets its up gauge created here so
// the series exist (at 0) before the first draw.
func (r *remoteEngine) setObs(reg *obs.Registry, log *slog.Logger) {
	if log != nil {
		r.log = log
	}
	r.reg = reg
	r.addrMu.Lock()
	for _, addr := range r.job.addrs {
		r.upGaugeLocked(addr)
	}
	for _, addr := range r.standby {
		r.upGaugeLocked(addr)
	}
	r.addrMu.Unlock()
	r.errs = map[string]*obs.Counter{}
	for _, stage := range []string{errStageDial, errStageReady, errStageReject, errStageRun, errStageResult} {
		r.errs[stage] = reg.Counter("locsample_worker_errors_total", "coordinator-side worker failures by stage", "stage", stage)
	}
	r.replacements = reg.Counter("locsample_worker_replacements_total", "standby workers swapped in for failed ones")
	if r.policy.Heartbeat > 0 {
		r.hbStop = make(chan struct{})
		r.hbDone = make(chan struct{})
		go r.supervise()
	}
}

// upGaugeLocked returns (creating on first use) the up gauge for a
// worker address. Callers hold addrMu.
func (r *remoteEngine) upGaugeLocked(addr string) *obs.Gauge {
	if g, ok := r.up[addr]; ok {
		return g
	}
	g := r.reg.Gauge("locsample_worker_up", "1 while the worker session is established (or the worker answers heartbeats)", "addr", addr)
	if r.up == nil {
		r.up = map[string]*obs.Gauge{}
	}
	r.up[addr] = g
	return g
}

func (r *remoteEngine) upGauge(addr string) *obs.Gauge {
	r.addrMu.Lock()
	defer r.addrMu.Unlock()
	return r.upGaugeLocked(addr)
}

// supervise is the heartbeat loop: every policy.Heartbeat it pings the
// whole fleet — live workers and standbys — over short-lived control
// connections, keeping the up gauges honest between draws and logging
// state transitions. It is detection only; recovery belongs to the
// draw path's deadline/retry/replacement machinery, so a flapping
// heartbeat can never tear down a healthy session.
func (r *remoteEngine) supervise() {
	defer close(r.hbDone)
	tick := time.NewTicker(r.policy.Heartbeat)
	defer tick.Stop()
	last := map[string]bool{}
	for {
		select {
		case <-r.hbStop:
			return
		case <-tick.C:
		}
		r.addrMu.Lock()
		addrs := append([]string(nil), r.job.addrs...)
		addrs = append(addrs, r.standby...)
		r.addrMu.Unlock()
		timeout := r.policy.Heartbeat
		if r.policy.DialTimeout < timeout {
			timeout = r.policy.DialTimeout
		}
		for _, addr := range addrs {
			_, err := transport.Ping(addr, timeout)
			ok := err == nil
			if ok {
				r.upGauge(addr).Set(1)
			} else {
				r.upGauge(addr).Set(0)
			}
			if prev, seen := last[addr]; !seen || prev != ok {
				if r.log != nil {
					if ok {
						r.log.Info("worker heartbeat up", "addr", addr)
					} else {
						r.log.Warn("worker heartbeat failed", "addr", addr, "err", err)
					}
				}
				last[addr] = ok
			}
		}
	}
}

// workerErr builds the typed error for a worker failure, counts it, and
// logs it.
func (r *remoteEngine) workerErr(stage string, w int, err error) *WorkerError {
	we := &WorkerError{Worker: w, Addr: r.job.addrs[w], Err: err}
	if r.errs != nil {
		r.errs[stage].Inc()
	}
	if r.log != nil {
		r.log.Warn("worker failure", "stage", stage, "worker", w, "addr", we.Addr, "err", err)
	}
	return we
}

// mrfOwned extracts the per-shard owned bands (ascending global order)
// the result reassembly is keyed by.
func mrfOwned(p *partition.Plan) [][]int32 {
	out := make([][]int32, p.K)
	for s, sh := range p.Shards {
		out[s] = sh.Global[:sh.NOwned]
	}
	return out
}

// cspOwned is mrfOwned for constraint-scope plans.
func cspOwned(p *partition.CSPPlan) [][]int32 {
	out := make([][]int32, p.K)
	for s, sh := range p.Shards {
		out[s] = sh.Global[:sh.NOwned]
	}
	return out
}

func newRemoteEngine(job remoteJob, owned [][]int32, n int, policy core.RetryPolicy, standby []string) (*remoteEngine, error) {
	raw, err := EncodeSpec(job.spec)
	if err != nil {
		return nil, fmt.Errorf("locsample: encoding the remote job's spec: %w", err)
	}
	w := len(job.addrs)
	assign := partition.AssignShards(job.shards, w)
	slots := make([][]int, w)
	total := 0
	for s, band := range owned {
		for _, g := range band {
			slots[assign[s]] = append(slots[assign[s]], int(g))
		}
		total += len(band)
	}
	if total != n {
		return nil, fmt.Errorf("locsample: shard plan owns %d of %d vertices", total, n)
	}
	// The job's address list is owned (and edited, on replacement) by
	// the engine; copy so the caller's slice stays theirs.
	job.addrs = append([]string(nil), job.addrs...)
	return &remoteEngine{
		job:     job,
		policy:  policy.WithDefaults(),
		rawSpec: raw,
		slots:   slots,
		standby: append([]string(nil), standby...),
	}, nil
}

// connect dials every worker, ships the job, and waits for the full
// mesh to come up. All job messages go out before any ready is awaited:
// the workers dial each other to build the frame mesh, so waiting for
// them one at a time would deadlock.
func (r *remoteEngine) connect() error {
	conns := make([]net.Conn, len(r.job.addrs))
	cleanup := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	// The job ID only disambiguates concurrent meshes on shared workers;
	// it never feeds the chains' randomness, so a non-deterministic draw
	// here cannot perturb sampling outputs.
	jobID := rand.Uint64()
	for w, addr := range r.job.addrs {
		c, err := transport.DialControl(addr, r.policy.DialTimeout)
		if err != nil {
			cleanup()
			return r.workerErr(errStageDial, w, err)
		}
		conns[w] = c
		msg := &transport.ControlMsg{Kind: "job", Job: &transport.JobMsg{
			Proto:     transport.ControlProtoVersion,
			JobID:     jobID,
			Kind:      r.job.kind,
			Spec:      r.rawSpec,
			Algorithm: r.job.algorithm,
			DropRule3: r.job.dropRule3,
			Shards:    r.job.shards,
			Strategy:  r.job.strategy,
			PlanSeed:  r.job.planSeed,
			Init:      r.job.init,
			Workers:   r.job.addrs,
			Self:      w,
		}}
		if err := transport.WriteControl(c, msg, r.policy.WriteTimeout); err != nil {
			cleanup()
			return r.workerErr(errStageDial, w, fmt.Errorf("sending job: %w", err))
		}
	}
	for w, c := range conns {
		m, err := transport.ReadControl(c, r.policy.ReadyTimeout)
		if err != nil {
			cleanup()
			return r.workerErr(errStageReady, w, fmt.Errorf("awaiting ready: %w", err))
		}
		if m.Kind != "ready" || m.Ready == nil {
			cleanup()
			return r.workerErr(errStageReady, w,
				fmt.Errorf("unexpected %q control message awaiting ready", m.Kind))
		}
		if !m.Ready.OK {
			cleanup()
			return r.workerErr(errStageReject, w, fmt.Errorf("job rejected: %s", m.Ready.Error))
		}
	}
	r.conns = conns
	for _, addr := range r.job.addrs {
		r.upGauge(addr).Set(1)
	}
	if r.log != nil {
		r.log.Info("worker session established", "workers", len(conns), "shards", r.job.shards, "kind", r.job.kind)
	}
	return nil
}

// teardown closes the control connections; the workers notice and tear
// down their mesh (aborting any in-flight rounds).
func (r *remoteEngine) teardown() {
	for _, c := range r.conns {
		if c != nil {
			c.Close()
		}
	}
	r.conns = nil
	for _, addr := range r.job.addrs {
		r.upGauge(addr).Set(0)
	}
}

// replace swaps the next standby into slot w of the address list.
// Replacement preserves the worker count, so the shard→worker
// assignment — and with it the slots tables and every worker's owned
// band — is unchanged; the next connect ships the job to the edited
// fleet and the redraw recomputes the dead worker's shards from
// (spec, plan, seed). Nothing the dead worker held is needed. With no
// standby left the retry runs against the existing fleet (the worker
// may have merely restarted).
func (r *remoteEngine) replace(w int) {
	r.addrMu.Lock()
	defer r.addrMu.Unlock()
	old := r.job.addrs[w]
	if len(r.standby) == 0 {
		if r.log != nil {
			r.log.Warn("no standby worker available; retrying on the same fleet", "worker", w, "addr", old)
		}
		return
	}
	next := r.standby[0]
	r.standby = r.standby[1:]
	// Reslice rather than mutate: a concurrent supervisor pass may hold
	// the previous address snapshot.
	addrs := append([]string(nil), r.job.addrs...)
	addrs[w] = next
	r.job.addrs = addrs
	if g := r.up[old]; g != nil {
		g.Set(0)
	}
	r.replacements.Inc()
	if r.log != nil {
		r.log.Warn("replacing failed worker with standby", "worker", w, "old", old, "new", next, "standbys_left", len(r.standby))
	}
}

// resolveRetry resolves a Config's coordinator retry policy (nil means
// the defaults — the historical retry-once behavior).
func resolveRetry(cfg *core.Config) core.RetryPolicy {
	if cfg.Retry != nil {
		return cfg.Retry.WithDefaults()
	}
	return core.DefaultRetryPolicy()
}

// ctxErr is ctx.Err for possibly-nil contexts.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// pause sleeps the jittered exponential backoff before the attempt
// following the `failures`-th failure, aborting early if ctx is
// canceled. The jitter comes from math/rand, never from the chains'
// PRF: it cannot perturb sampling outputs.
func (r *remoteEngine) pause(ctx context.Context, failures int) error {
	d := r.policy.Delay(failures)
	if r.policy.Jitter > 0 {
		d += time.Duration(rand.Float64() * r.policy.Jitter * float64(d))
	}
	if d <= 0 {
		return ctxErr(ctx)
	}
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctxErr(ctx)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// draw runs one cross-process draw, reassembling the configuration into
// out. On failure it tears the session down and retries with fresh
// connections under the RetryPolicy — jittered exponential backoff
// between attempts, the failed worker swapped for a standby when one is
// available — because the draw is a pure function of (seed, rounds): a
// rerun after any failure (worker killed, stalled past the result
// deadline, connection dropped) returns the identical configuration.
// When the attempt budget is spent the session is left torn down and
// the last attempt's typed error is returned. A failed attempt writes
// nothing into out or tr — results are buffered until every worker has
// returned OK — so each retry starts from a clean trace and a partial
// failure can never duplicate round spans.
//
// A canceled ctx aborts the draw at the next opportunity: in-flight
// control reads are unblocked by closing the connections, no further
// attempts run, and ctx.Err() is returned.
//
// A non-nil tr makes the draw traced: the run requests ask workers to
// record per-shard round timing, and the returned series are grafted
// into tr as spans under one pid per worker process.
func (r *remoteEngine) draw(ctx context.Context, seed uint64, rounds int, out []int, tr *obs.Trace) (ShardStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastErr error
	for attempt := 1; attempt <= r.policy.Attempts; attempt++ {
		if attempt > 1 {
			r.teardown()
			var we *WorkerError
			if errors.As(lastErr, &we) {
				r.replace(we.Worker)
			}
			if err := r.pause(ctx, attempt-1); err != nil {
				return ShardStats{}, err
			}
		}
		if err := ctxErr(ctx); err != nil {
			return ShardStats{}, err
		}
		st, err := r.drawOnce(ctx, seed, rounds, out, tr)
		if err == nil {
			return st, nil
		}
		if cerr := ctxErr(ctx); cerr != nil {
			r.teardown()
			return ShardStats{}, cerr
		}
		lastErr = err
	}
	r.teardown()
	return ShardStats{}, lastErr
}

func (r *remoteEngine) drawOnce(ctx context.Context, seed uint64, rounds int, out []int, tr *obs.Trace) (ShardStats, error) {
	if r.conns == nil {
		if err := r.connect(); err != nil {
			return ShardStats{}, err
		}
	}
	// Cancellation must unblock control reads that may legitimately wait
	// the full result deadline: closing the connections turns them into
	// immediate read errors, and draw maps those to ctx.Err().
	if ctx != nil && ctx.Done() != nil {
		conns := r.conns
		stop := context.AfterFunc(ctx, func() {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
		})
		defer stop()
	}
	drawStart := tr.Now()
	run := &transport.ControlMsg{Kind: "run", Run: &transport.RunMsg{Seed: seed, Rounds: rounds, Trace: tr != nil}}
	for w, c := range r.conns {
		if err := transport.WriteControl(c, run, r.policy.WriteTimeout); err != nil {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageRun, w, fmt.Errorf("sending run: %w", err))
		}
	}
	// Collect every worker's result before touching out or tr: a draw
	// can fail on worker w after workers 0..w-1 returned fine, and the
	// caller then retries with the same output buffer and trace. Scatter
	// or graft inside this loop and a partial failure would leave stale
	// states in out and duplicate the successful workers' round spans on
	// the retried trace.
	st := ShardStats{Shards: r.job.shards, Rounds: rounds}
	results := make([]*transport.ResultMsg, len(r.conns))
	for w, c := range r.conns {
		m, err := transport.ReadControl(c, r.policy.ResultTimeout)
		if err != nil {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageResult, w, fmt.Errorf("awaiting result: %w", err))
		}
		if m.Kind != "result" || m.Result == nil {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageResult, w,
				fmt.Errorf("unexpected %q control message awaiting result", m.Kind))
		}
		res := m.Result
		if !res.OK {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageResult, w, fmt.Errorf("draw failed: %s", res.Error))
		}
		if len(res.States) != len(r.slots[w]) {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageResult, w,
				fmt.Errorf("result carries %d states, want %d", len(res.States), len(r.slots[w])))
		}
		results[w] = res
	}
	for w, res := range results {
		for i, v := range res.States {
			out[r.slots[w][i]] = v
		}
		st.BoundaryMessages += res.Msgs
		st.BoundaryValues += res.Vals
		st.BarrierWaitNS += res.WaitNS
		st.WireFrames += res.WireFrames
		st.WireBytes += res.WireBytes
		if tr != nil && res.Trace != nil {
			r.graftWorkerTrace(tr, w, res, drawStart)
		}
	}
	if tr != nil {
		span := obs.Span{Name: "remote.draw", PID: 0, TID: 0, StartNS: drawStart, DurNS: tr.Now() - drawStart}
		span.SetArg("seed", int64(seed))
		span.SetArg("rounds", int64(rounds))
		span.SetArg("shards", int64(st.Shards))
		span.SetArg("wire_frames", st.WireFrames)
		span.SetArg("wire_bytes", st.WireBytes)
		tr.Add(span)
	}
	return st, nil
}

// graftWorkerTrace merges one worker's round series into the
// coordinator's trace. Worker w gets pid w+1 (the coordinator is pid 0);
// each local shard becomes a tid with per-round compute/barrier spans,
// and a process-level span carries the worker's wire attribution.
func (r *remoteEngine) graftWorkerTrace(tr *obs.Trace, w int, res *transport.ResultMsg, drawStart int64) {
	pid := w + 1
	tr.SetProcessName(pid, fmt.Sprintf("worker %d (%s)", w, r.job.addrs[w]))
	for _, sh := range res.Trace.Shards {
		obs.AddShardRounds(tr, pid, sh.Shard, sh.ComputeNS, sh.BarrierNS, sh.Flips, sh.EndNS)
	}
	span := obs.Span{Name: "worker.result", PID: pid, TID: -1, StartNS: drawStart, DurNS: tr.Now() - drawStart}
	span.SetArg("wire_frames", res.WireFrames)
	span.SetArg("wire_bytes", res.WireBytes)
	span.SetArg("barrier_wait_ns", res.WaitNS)
	span.SetArg("boundary_msgs", res.Msgs)
	span.SetArg("boundary_vals", res.Vals)
	tr.Add(span)
}

// Close stops the heartbeat supervisor and tears the worker session
// down.
func (r *remoteEngine) Close() error {
	r.closeOnce.Do(func() {
		if r.hbStop != nil {
			close(r.hbStop)
			<-r.hbDone
		}
	})
	r.mu.Lock()
	defer r.mu.Unlock()
	r.teardown()
	return nil
}
