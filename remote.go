package locsample

// The coordinator half of cross-process sharded draws. WithRemoteWorkers
// places a sampler's shard plan on lsharded worker processes: the
// coordinator ships each worker the model's wire spec plus the plan
// parameters (shard count, strategy, plan seed) over a control
// connection, the workers rebuild the model and plan deterministically,
// mesh up over TCP, and then run lockstep rounds on request. Because a
// sharded draw is bit-identical to the centralized chain at the same
// seed — shard boundaries only move PRF-keyed state around, never change
// it — the reassembled configuration is byte-for-byte the one a local
// draw would produce.

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"locsample/internal/obs"
	"locsample/internal/partition"
	"locsample/internal/transport"
)

// Coordinator-side control timeouts. Ready waits cover the workers'
// mutual mesh dialing; result waits cover a full draw's rounds.
const (
	remoteDialTimeout   = 10 * time.Second
	remoteWriteTimeout  = 30 * time.Second
	remoteReadyTimeout  = 60 * time.Second
	remoteResultTimeout = 120 * time.Second
)

// WorkerError reports which remote worker a cross-process draw failed
// on. Coordinator calls return it after the retry budget is spent; the
// draw never returns a partially-assembled configuration.
type WorkerError struct {
	// Worker is the process index in the WithRemoteWorkers list.
	Worker int
	// Addr is the worker's address.
	Addr string
	// Err is the underlying failure.
	Err error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("locsample: worker %d (%s): %v", e.Worker, e.Addr, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// remoteJob is everything a worker set needs to host one sampler's
// shards; it is resent verbatim on reconnect.
type remoteJob struct {
	kind      string // "mrf" | "csp"
	spec      *Spec
	algorithm string
	dropRule3 bool
	shards    int
	strategy  string
	planSeed  uint64
	init      []int
	addrs     []string
}

// remoteEngine drives draws over the workers' control connections. One
// draw at a time: the mutex serializes callers, and within a draw the
// run request fans out to every worker before any result is awaited.
type remoteEngine struct {
	job     remoteJob
	rawSpec []byte
	// slots[w][i] is the global vertex that takes the i-th state of
	// worker w's result (the worker concatenates its local shards in
	// ascending shard order, each shard's owned band in ascending global
	// order — the same order AssignShards and the plan fix here).
	slots [][]int

	// log and the metric series below come from the sampler's Config
	// (WithMetrics / WithLogger); all tolerate their zero state.
	log *slog.Logger
	// up[w] is the locsample_worker_up gauge for worker w: 1 from a
	// successful ready until teardown.
	up []*obs.Gauge
	// errs[stage] counts WorkerErrors by failure stage.
	errs map[string]*obs.Counter

	mu    sync.Mutex
	conns []net.Conn // nil until the first draw connects, nil again after teardown
}

// Coordinator-side WorkerError stages, the label values of
// locsample_worker_errors_total.
const (
	errStageDial   = "dial"
	errStageReady  = "ready"
	errStageReject = "reject"
	errStageRun    = "run"
	errStageResult = "result"
)

// setObs wires the coordinator's metrics and logger (both optional;
// reg may be nil — the obs accessors then return no-op metrics).
func (r *remoteEngine) setObs(reg *obs.Registry, log *slog.Logger) {
	if log != nil {
		r.log = log
	}
	r.up = make([]*obs.Gauge, len(r.job.addrs))
	for w, addr := range r.job.addrs {
		r.up[w] = reg.Gauge("locsample_worker_up", "1 while the worker session is established", "addr", addr)
	}
	r.errs = map[string]*obs.Counter{}
	for _, stage := range []string{errStageDial, errStageReady, errStageReject, errStageRun, errStageResult} {
		r.errs[stage] = reg.Counter("locsample_worker_errors_total", "coordinator-side worker failures by stage", "stage", stage)
	}
}

// workerErr builds the typed error for a worker failure, counts it, and
// logs it.
func (r *remoteEngine) workerErr(stage string, w int, err error) *WorkerError {
	we := &WorkerError{Worker: w, Addr: r.job.addrs[w], Err: err}
	if r.errs != nil {
		r.errs[stage].Inc()
	}
	if r.log != nil {
		r.log.Warn("worker failure", "stage", stage, "worker", w, "addr", we.Addr, "err", err)
	}
	return we
}

// mrfOwned extracts the per-shard owned bands (ascending global order)
// the result reassembly is keyed by.
func mrfOwned(p *partition.Plan) [][]int32 {
	out := make([][]int32, p.K)
	for s, sh := range p.Shards {
		out[s] = sh.Global[:sh.NOwned]
	}
	return out
}

// cspOwned is mrfOwned for constraint-scope plans.
func cspOwned(p *partition.CSPPlan) [][]int32 {
	out := make([][]int32, p.K)
	for s, sh := range p.Shards {
		out[s] = sh.Global[:sh.NOwned]
	}
	return out
}

func newRemoteEngine(job remoteJob, owned [][]int32, n int) (*remoteEngine, error) {
	raw, err := EncodeSpec(job.spec)
	if err != nil {
		return nil, fmt.Errorf("locsample: encoding the remote job's spec: %w", err)
	}
	w := len(job.addrs)
	assign := partition.AssignShards(job.shards, w)
	slots := make([][]int, w)
	total := 0
	for s, band := range owned {
		for _, g := range band {
			slots[assign[s]] = append(slots[assign[s]], int(g))
		}
		total += len(band)
	}
	if total != n {
		return nil, fmt.Errorf("locsample: shard plan owns %d of %d vertices", total, n)
	}
	return &remoteEngine{job: job, rawSpec: raw, slots: slots}, nil
}

// connect dials every worker, ships the job, and waits for the full
// mesh to come up. All job messages go out before any ready is awaited:
// the workers dial each other to build the frame mesh, so waiting for
// them one at a time would deadlock.
func (r *remoteEngine) connect() error {
	conns := make([]net.Conn, len(r.job.addrs))
	cleanup := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	// The job ID only disambiguates concurrent meshes on shared workers;
	// it never feeds the chains' randomness, so a non-deterministic draw
	// here cannot perturb sampling outputs.
	jobID := rand.Uint64()
	for w, addr := range r.job.addrs {
		c, err := transport.DialControl(addr, remoteDialTimeout)
		if err != nil {
			cleanup()
			return r.workerErr(errStageDial, w, err)
		}
		conns[w] = c
		msg := &transport.ControlMsg{Kind: "job", Job: &transport.JobMsg{
			Proto:     transport.ControlProtoVersion,
			JobID:     jobID,
			Kind:      r.job.kind,
			Spec:      r.rawSpec,
			Algorithm: r.job.algorithm,
			DropRule3: r.job.dropRule3,
			Shards:    r.job.shards,
			Strategy:  r.job.strategy,
			PlanSeed:  r.job.planSeed,
			Init:      r.job.init,
			Workers:   r.job.addrs,
			Self:      w,
		}}
		if err := transport.WriteControl(c, msg, remoteWriteTimeout); err != nil {
			cleanup()
			return r.workerErr(errStageDial, w, fmt.Errorf("sending job: %w", err))
		}
	}
	for w, c := range conns {
		m, err := transport.ReadControl(c, remoteReadyTimeout)
		if err != nil {
			cleanup()
			return r.workerErr(errStageReady, w, fmt.Errorf("awaiting ready: %w", err))
		}
		if m.Kind != "ready" || m.Ready == nil {
			cleanup()
			return r.workerErr(errStageReady, w,
				fmt.Errorf("unexpected %q control message awaiting ready", m.Kind))
		}
		if !m.Ready.OK {
			cleanup()
			return r.workerErr(errStageReject, w, fmt.Errorf("job rejected: %s", m.Ready.Error))
		}
	}
	r.conns = conns
	for _, g := range r.up {
		g.Set(1)
	}
	if r.log != nil {
		r.log.Info("worker session established", "workers", len(conns), "shards", r.job.shards, "kind", r.job.kind)
	}
	return nil
}

// teardown closes the control connections; the workers notice and tear
// down their mesh (aborting any in-flight rounds).
func (r *remoteEngine) teardown() {
	for _, c := range r.conns {
		if c != nil {
			c.Close()
		}
	}
	r.conns = nil
	for _, g := range r.up {
		g.Set(0)
	}
}

// draw runs one cross-process draw, reassembling the configuration into
// out. On failure it tears the session down and retries once with fresh
// connections — the draw is a pure function of (seed, rounds), so a
// rerun after a transient failure (worker restart, dropped connection)
// returns the identical configuration. If the retry also fails the
// session is left torn down and the retry's typed error is returned. A
// failed attempt writes nothing into out or tr — results are buffered
// until every worker has returned OK — so the retry starts from a clean
// trace and a partial failure can never duplicate round spans.
//
// A non-nil tr makes the draw traced: the run requests ask workers to
// record per-shard round timing, and the returned series are grafted
// into tr as spans under one pid per worker process.
func (r *remoteEngine) draw(seed uint64, rounds int, out []int, tr *obs.Trace) (ShardStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, err := r.drawOnce(seed, rounds, out, tr)
	if err == nil {
		return st, nil
	}
	r.teardown()
	st, err = r.drawOnce(seed, rounds, out, tr)
	if err != nil {
		r.teardown()
		return ShardStats{}, err
	}
	return st, nil
}

func (r *remoteEngine) drawOnce(seed uint64, rounds int, out []int, tr *obs.Trace) (ShardStats, error) {
	if r.conns == nil {
		if err := r.connect(); err != nil {
			return ShardStats{}, err
		}
	}
	drawStart := tr.Now()
	run := &transport.ControlMsg{Kind: "run", Run: &transport.RunMsg{Seed: seed, Rounds: rounds, Trace: tr != nil}}
	for w, c := range r.conns {
		if err := transport.WriteControl(c, run, remoteWriteTimeout); err != nil {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageRun, w, fmt.Errorf("sending run: %w", err))
		}
	}
	// Collect every worker's result before touching out or tr: a draw
	// can fail on worker w after workers 0..w-1 returned fine, and the
	// caller then retries with the same output buffer and trace. Scatter
	// or graft inside this loop and a partial failure would leave stale
	// states in out and duplicate the successful workers' round spans on
	// the retried trace.
	st := ShardStats{Shards: r.job.shards, Rounds: rounds}
	results := make([]*transport.ResultMsg, len(r.conns))
	for w, c := range r.conns {
		m, err := transport.ReadControl(c, remoteResultTimeout)
		if err != nil {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageResult, w, fmt.Errorf("awaiting result: %w", err))
		}
		if m.Kind != "result" || m.Result == nil {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageResult, w,
				fmt.Errorf("unexpected %q control message awaiting result", m.Kind))
		}
		res := m.Result
		if !res.OK {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageResult, w, fmt.Errorf("draw failed: %s", res.Error))
		}
		if len(res.States) != len(r.slots[w]) {
			r.teardown()
			return ShardStats{}, r.workerErr(errStageResult, w,
				fmt.Errorf("result carries %d states, want %d", len(res.States), len(r.slots[w])))
		}
		results[w] = res
	}
	for w, res := range results {
		for i, v := range res.States {
			out[r.slots[w][i]] = v
		}
		st.BoundaryMessages += res.Msgs
		st.BoundaryValues += res.Vals
		st.BarrierWaitNS += res.WaitNS
		st.WireFrames += res.WireFrames
		st.WireBytes += res.WireBytes
		if tr != nil && res.Trace != nil {
			r.graftWorkerTrace(tr, w, res, drawStart)
		}
	}
	if tr != nil {
		span := obs.Span{Name: "remote.draw", PID: 0, TID: 0, StartNS: drawStart, DurNS: tr.Now() - drawStart}
		span.SetArg("seed", int64(seed))
		span.SetArg("rounds", int64(rounds))
		span.SetArg("shards", int64(st.Shards))
		span.SetArg("wire_frames", st.WireFrames)
		span.SetArg("wire_bytes", st.WireBytes)
		tr.Add(span)
	}
	return st, nil
}

// graftWorkerTrace merges one worker's round series into the
// coordinator's trace. Worker w gets pid w+1 (the coordinator is pid 0);
// each local shard becomes a tid with per-round compute/barrier spans,
// and a process-level span carries the worker's wire attribution.
func (r *remoteEngine) graftWorkerTrace(tr *obs.Trace, w int, res *transport.ResultMsg, drawStart int64) {
	pid := w + 1
	tr.SetProcessName(pid, fmt.Sprintf("worker %d (%s)", w, r.job.addrs[w]))
	for _, sh := range res.Trace.Shards {
		obs.AddShardRounds(tr, pid, sh.Shard, sh.ComputeNS, sh.BarrierNS, sh.Flips, sh.EndNS)
	}
	span := obs.Span{Name: "worker.result", PID: pid, TID: -1, StartNS: drawStart, DurNS: tr.Now() - drawStart}
	span.SetArg("wire_frames", res.WireFrames)
	span.SetArg("wire_bytes", res.WireBytes)
	span.SetArg("barrier_wait_ns", res.WaitNS)
	span.SetArg("boundary_msgs", res.Msgs)
	span.SetArg("boundary_vals", res.Vals)
	tr.Add(span)
}

// Close tears the worker session down.
func (r *remoteEngine) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.teardown()
	return nil
}
