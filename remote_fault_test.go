package locsample_test

// Fault-injection coverage for the coordinator's retry path: a worker
// that fails mid-draw must tick locsample_worker_errors_total, and the
// retried draw's trace must contain exactly one set of round spans —
// the first (failed) attempt's partial results may not leak into the
// output buffer or the grafted trace. The workers here are in-process
// fakes speaking the control protocol server-side, which lets the test
// script the failure precisely (real lsharded processes don't fail on
// cue).

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"locsample"
	"locsample/internal/obs"
	"locsample/internal/partition"
	"locsample/internal/transport"
)

// startFakeWorker listens on an ephemeral loopback port and answers the
// control protocol like an lsharded process would: job → ready OK, then
// one result per run request. stateCount is the number of owned states
// this worker must return (the coordinator validates it against its
// plan); shardIDs are the shards it reports round series for on traced
// runs. When failFirst is armed, the first run request across all
// connections gets result {OK:false} — the injected mid-draw fault.
func startFakeWorker(t *testing.T, stateCount int, shardIDs []int, failFirst *atomic.Bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go serveFakeWorker(c, stateCount, shardIDs, failFirst)
		}
	}()
	return ln.Addr().String()
}

func serveFakeWorker(c net.Conn, stateCount int, shardIDs []int, failFirst *atomic.Bool) {
	defer c.Close()
	const timeout = time.Minute
	magic, err := transport.ReadMagic(c, timeout)
	if err != nil || magic != transport.MagicControl {
		return
	}
	m, err := transport.ReadControl(c, timeout)
	if err != nil || m.Kind != "job" || m.Job == nil {
		return
	}
	if err := transport.WriteControl(c, &transport.ControlMsg{
		Kind: "ready", Ready: &transport.ReadyMsg{OK: true},
	}, timeout); err != nil {
		return
	}
	for {
		m, err := transport.ReadControl(c, timeout)
		if err != nil || m.Kind != "run" || m.Run == nil {
			return
		}
		res := &transport.ResultMsg{}
		if failFirst != nil && failFirst.CompareAndSwap(true, false) {
			res.Error = "injected mid-draw fault"
		} else {
			res.OK = true
			res.States = make([]int, stateCount)
			res.Msgs, res.Vals, res.WaitNS = 1, 2, 3
			res.WireFrames, res.WireBytes = 4, 5
			if m.Run.Trace {
				tm := &transport.TraceMsg{}
				now := time.Now().UnixNano()
				for _, sh := range shardIDs {
					st := transport.ShardTraceMsg{Shard: sh}
					for r := 0; r < m.Run.Rounds; r++ {
						st.ComputeNS = append(st.ComputeNS, 1000)
						st.BarrierNS = append(st.BarrierNS, 100)
						st.Flips = append(st.Flips, 1)
						st.EndNS = append(st.EndNS, now+int64(r+1)*2000)
					}
					tm.Shards = append(tm.Shards, st)
				}
				res.Trace = tm
			}
		}
		if err := transport.WriteControl(c, &transport.ControlMsg{Kind: "result", Result: res}, timeout); err != nil {
			return
		}
	}
}

// TestRemoteWorkerFaultRetryCleanTrace injects a result-stage failure
// on worker 1's first draw attempt and checks the retry's bookkeeping:
// the draw succeeds, locsample_worker_errors_total{stage="result"}
// ticks exactly once, and the grafted trace carries exactly one round
// series per shard — no duplicated spans from the failed attempt.
func TestRemoteWorkerFaultRetryCleanTrace(t *testing.T) {
	const shards, workers, rounds, seed = 2, 2, 12, 9
	g := locsample.GridGraph(5, 5)
	m := locsample.NewColoring(g, 3*g.MaxDeg())

	// Rebuild the coordinator's shard plan so each fake knows how many
	// owned states its results must carry (the coordinator validates the
	// count). Same inputs as the sampler below: default Range strategy,
	// plan seeded by the draw seed.
	plan, err := partition.Build(g, shards, partition.Range, seed)
	if err != nil {
		t.Fatal(err)
	}
	assign := partition.AssignShards(shards, workers)
	counts := make([]int, workers)
	shardIDs := make([][]int, workers)
	for s, sh := range plan.Shards {
		w := assign[s]
		counts[w] += sh.NOwned
		shardIDs[w] = append(shardIDs[w], s)
	}

	var failFirst atomic.Bool
	failFirst.Store(true)
	addrs := make([]string, workers)
	for w := 0; w < workers; w++ {
		var ff *atomic.Bool
		if w == 1 {
			ff = &failFirst
		}
		addrs[w] = startFakeWorker(t, counts[w], shardIDs[w], ff)
	}

	reg := obs.NewRegistry()
	s, err := locsample.NewSampler(m,
		locsample.WithRounds(rounds), locsample.WithSeed(seed),
		locsample.WithShards(shards),
		locsample.WithRemoteWorkers(addrs...),
		locsample.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	res, tr, err := s.SampleTraced()
	if err != nil {
		t.Fatalf("draw after one worker fault: %v", err)
	}
	if len(res.Sample) != g.N() {
		t.Fatalf("sample has %d states, want %d", len(res.Sample), g.N())
	}
	if failFirst.Load() {
		t.Fatal("fault was never injected")
	}

	// The failed attempt must not have grafted anything: exactly one
	// round series per shard, one result span per worker, one draw span.
	var compute, result, draw int
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case "round.compute":
			compute++
		case "worker.result":
			result++
		case "remote.draw":
			draw++
		}
	}
	if compute != shards*rounds {
		t.Fatalf("trace has %d round.compute spans, want %d (partial attempt leaked into the trace?)",
			compute, shards*rounds)
	}
	if result != workers {
		t.Fatalf("trace has %d worker.result spans, want %d", result, workers)
	}
	if draw != 1 {
		t.Fatalf("trace has %d remote.draw spans, want 1", draw)
	}

	if got := reg.Counter("locsample_worker_errors_total", "", "stage", "result").Value(); got != 1 {
		t.Fatalf("worker_errors_total{stage=result} = %d, want 1", got)
	}
	for w, addr := range addrs {
		if up := reg.Gauge("locsample_worker_up", "", "addr", addr).Value(); up != 1 {
			t.Fatalf("worker %d up gauge = %d after successful retry, want 1", w, up)
		}
	}
}
