package locsample_test

import (
	"math"
	"testing"

	"locsample"
)

func TestQuickstartFlow(t *testing.T) {
	g := locsample.GridGraph(8, 8)
	model := locsample.NewColoring(g, 4*g.MaxDeg())
	res, err := locsample.Sample(model,
		locsample.WithAlgorithm(locsample.LocalMetropolis),
		locsample.WithEpsilon(0.05),
		locsample.WithSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sample) != g.N() {
		t.Fatalf("sample length %d", len(res.Sample))
	}
	if !g.IsProperColoring(res.Sample) {
		t.Fatal("sample is not a proper coloring")
	}
	if res.TheoryRounds <= 0 || res.Rounds != res.TheoryRounds {
		t.Fatalf("rounds %d, theory %d", res.Rounds, res.TheoryRounds)
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	g := locsample.CycleGraph(20)
	model := locsample.NewColoring(g, 8)
	opts := []locsample.Option{
		locsample.WithAlgorithm(locsample.LocalMetropolis),
		locsample.WithSeed(7),
		locsample.WithRounds(25),
	}
	central, err := locsample.Sample(model, opts...)
	if err != nil {
		t.Fatal(err)
	}
	distr, err := locsample.Sample(model, append(opts, locsample.Distributed())...)
	if err != nil {
		t.Fatal(err)
	}
	for v := range central.Sample {
		if central.Sample[v] != distr.Sample[v] {
			t.Fatalf("modes disagree at vertex %d", v)
		}
	}
	if distr.Stats.Messages == 0 || distr.Stats.MaxMessageBytes == 0 {
		t.Fatal("distributed stats empty")
	}
}

func TestAllAlgorithmsProduceFeasibleSamples(t *testing.T) {
	g := locsample.TorusGraph(4, 4)
	model := locsample.NewColoring(g, 3*g.MaxDeg())
	for _, alg := range []locsample.Algorithm{
		locsample.Glauber, locsample.LubyGlauber, locsample.LocalMetropolis,
		locsample.SystematicScan, locsample.ChromaticGlauber,
	} {
		res, err := locsample.Sample(model,
			locsample.WithAlgorithm(alg),
			locsample.WithSeed(3),
			locsample.WithRounds(200))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !g.IsProperColoring(res.Sample) {
			t.Fatalf("%v: improper coloring", alg)
		}
	}
}

func TestHardcoreSampling(t *testing.T) {
	g := locsample.CycleGraph(12)
	model := locsample.NewHardcore(g, 0.8)
	res, err := locsample.Sample(model,
		locsample.WithAlgorithm(locsample.LubyGlauber),
		locsample.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(res.Sample) {
		t.Fatal("hardcore sample is not an independent set")
	}
}

func TestIsingAndPotts(t *testing.T) {
	g := locsample.GridGraph(4, 4)
	for _, m := range []*locsample.Model{
		locsample.NewIsing(g, 1.3, 1),
		locsample.NewPotts(g, 3, 1.5),
	} {
		res, err := locsample.Sample(m,
			locsample.WithAlgorithm(locsample.LubyGlauber),
			locsample.WithSeed(9),
			locsample.WithRounds(100))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Sample {
			if s < 0 || s >= m.Q {
				t.Fatalf("spin %d out of range", s)
			}
		}
	}
}

func TestListColoring(t *testing.T) {
	g := locsample.PathGraph(5)
	lists := [][]int{{0, 1, 2}, {1, 2, 3}, {0, 3}, {0, 1, 2, 3}, {2, 3}}
	model, err := locsample.NewListColoring(g, 4, lists)
	if err != nil {
		t.Fatal(err)
	}
	res, err := locsample.Sample(model,
		locsample.WithAlgorithm(locsample.LubyGlauber),
		locsample.WithSeed(17),
		locsample.WithRounds(100))
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res.Sample {
		ok := false
		for _, a := range lists[v] {
			if a == c {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("vertex %d color %d not in its list", v, c)
		}
	}
	if !g.IsProperColoring(res.Sample) {
		t.Fatal("list coloring not proper")
	}
}

func TestVertexCoverModel(t *testing.T) {
	g := locsample.CycleGraph(8)
	res, err := locsample.Sample(locsample.NewVertexCover(g),
		locsample.WithAlgorithm(locsample.Glauber),
		locsample.WithSeed(1),
		locsample.WithRounds(500))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsVertexCover(res.Sample) {
		t.Fatal("sample is not a vertex cover")
	}
}

func TestTheoryRounds(t *testing.T) {
	g := locsample.TorusGraph(6, 6) // Δ = 4
	// LubyGlauber at q = 2Δ+1: Dobrushin holds, budget finite and Δ-scaled.
	lg, err := locsample.TheoryRounds(locsample.NewColoring(g, 9), locsample.LubyGlauber, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// LocalMetropolis at q = 4Δ: within the proved regime.
	lm, err := locsample.TheoryRounds(locsample.NewColoring(g, 16), locsample.LocalMetropolis, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if lg <= 0 || lm <= 0 {
		t.Fatalf("budgets %d, %d", lg, lm)
	}
	// The O(log n) bound beats the O(Δ log n) bound already at Δ = 4.
	if lm >= lg {
		t.Fatalf("LocalMetropolis budget %d should undercut LubyGlauber %d", lm, lg)
	}
}

func TestCustomModel(t *testing.T) {
	// A custom soft-constraint MRF through the public API.
	g := locsample.PathGraph(4)
	a := locsample.NewActivity(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 0.5)
	a.Set(1, 0, 0.5)
	a.Set(1, 1, 1)
	acts := make([]*locsample.Activity, g.M())
	for i := range acts {
		acts[i] = a
	}
	b := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	model, err := locsample.NewModel(g, 2, acts, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := locsample.Sample(model,
		locsample.WithAlgorithm(locsample.LocalMetropolis),
		locsample.WithSeed(2),
		locsample.WithRounds(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sample) != 4 {
		t.Fatal("bad sample")
	}
}

func TestUniquenessThreshold(t *testing.T) {
	if got := locsample.HardcoreUniquenessThreshold(3); math.Abs(got-4) > 1e-12 {
		t.Fatalf("λ_c(3) = %v", got)
	}
}

func TestWithInitial(t *testing.T) {
	g := locsample.CycleGraph(6)
	model := locsample.NewColoring(g, 5)
	init := []int{0, 1, 0, 1, 0, 1}
	res, err := locsample.Sample(model,
		locsample.WithInitial(init),
		locsample.WithSeed(5),
		locsample.WithRounds(10))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsProperColoring(res.Sample) {
		t.Fatal("improper coloring")
	}
	// Bad init length errors.
	if _, err := locsample.Sample(model, locsample.WithInitial([]int{0}), locsample.WithRounds(5)); err == nil {
		t.Fatal("short init accepted")
	}
}

func TestRandomRegularGraphHelper(t *testing.T) {
	g, err := locsample.RandomRegularGraph(24, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(5) {
		t.Fatal("not regular")
	}
	if _, err := locsample.RandomRegularGraph(5, 3, 1); err == nil {
		t.Fatal("odd n*d accepted")
	}
}

func TestSeedReproducibility(t *testing.T) {
	g := locsample.GnpGraph(30, 0.15, 8)
	model := locsample.NewColoring(g, g.MaxDeg()+3)
	run := func() []int {
		res, err := locsample.Sample(model,
			locsample.WithAlgorithm(locsample.LubyGlauber),
			locsample.WithSeed(123),
			locsample.WithRounds(60))
		if err != nil {
			t.Fatal(err)
		}
		return res.Sample
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different samples")
		}
	}
}
