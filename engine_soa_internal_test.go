package locsample

import (
	"testing"

	"locsample/internal/chains"
)

// TestBatchWidthResolution pins the width picker: explicit 1 forces the
// per-chain path, explicit w ≥ 2 is honored only when the batch fills a
// block, and auto takes the widest block that still cuts the batch into
// at least `workers` blocks (falling back to the narrowest block rather
// than per-chain once a block fills).
func TestBatchWidthResolution(t *testing.T) {
	cases := []struct {
		explicit, k, workers, want int
	}{
		{1, 100, 4, 0},    // explicit AoS
		{16, 16, 4, 16},   // pinned, exactly one block
		{16, 15, 4, 0},    // pinned but the batch cannot fill a block
		{33, 33, 1, 33},   // pinned odd width
		{0, 64, 1, 64},    // auto: one worker takes the widest block
		{0, 64, 4, 16},    // auto: 4 blocks of 16 keep 4 workers busy
		{0, 100, 4, 32},   // auto: ceil(100/32) = 4 blocks
		{0, 8, 4, 8},      // auto fallback: one narrow block beats per-chain
		{0, 7, 1, 0},      // too small for any block
		{0, 1000, 16, 64}, // large batch: widest block wins
		{0, 12, 2, 8},     // 12 chains: one 8-block + tail of 4
	}
	for _, tc := range cases {
		if got := batchWidth(tc.explicit, tc.k, tc.workers); got != tc.want {
			t.Errorf("batchWidth(%d, %d, %d) = %d, want %d", tc.explicit, tc.k, tc.workers, got, tc.want)
		}
	}
}

// TestBatchWorkersClamp: the pool never exceeds the claimable work items.
func TestBatchWorkersClamp(t *testing.T) {
	for _, tc := range []struct{ workers, items, want int }{
		{8, 3, 3},
		{2, 10, 2},
		{4, 4, 4},
	} {
		if got := batchWorkers(tc.workers, tc.items); got != tc.want {
			t.Errorf("batchWorkers(%d, %d) = %d, want %d", tc.workers, tc.items, got, tc.want)
		}
	}
}

// TestSoABatchable: only the marginal/propose/filter round shapes batch.
func TestSoABatchable(t *testing.T) {
	for alg, want := range map[chains.Algorithm]bool{
		chains.Glauber:          true,
		chains.LubyGlauber:      true,
		chains.LocalMetropolis:  true,
		chains.SystematicScan:   false,
		chains.ChromaticGlauber: false,
	} {
		if got := soaBatchable(alg); got != want {
			t.Errorf("soaBatchable(%v) = %v, want %v", alg, got, want)
		}
	}
}
