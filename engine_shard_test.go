package locsample_test

import (
	"reflect"
	"testing"

	"locsample"
)

// TestWithShardsBitIdentical pins the sharded runtime's keystone contract
// at the public API: SampleN over a sharded sampler equals SampleN over an
// unsharded one, chain for chain and byte for byte, under both partition
// strategies.
func TestWithShardsBitIdentical(t *testing.T) {
	g := locsample.GridGraph(11, 13)
	for _, tc := range []struct {
		name string
		m    *locsample.Model
		alg  locsample.Algorithm
	}{
		{"coloring-lm", locsample.NewColoring(g, 13), locsample.LocalMetropolis},
		{"ising-luby", locsample.NewIsing(g, 0.3, 0.9), locsample.LubyGlauber},
	} {
		base, err := locsample.NewSampler(tc.m,
			locsample.WithAlgorithm(tc.alg), locsample.WithSeed(5), locsample.WithRounds(25))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := base.SampleN(6)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, strat := range []locsample.ShardStrategy{locsample.ShardRange, locsample.ShardBFS} {
			for _, k := range []int{2, 4, 7} {
				s, err := locsample.NewSampler(tc.m,
					locsample.WithAlgorithm(tc.alg), locsample.WithSeed(5), locsample.WithRounds(25),
					locsample.WithShards(k), locsample.WithShardStrategy(strat))
				if err != nil {
					t.Fatalf("%s shards=%d: %v", tc.name, k, err)
				}
				if s.Shards() != k {
					t.Fatalf("%s: Shards() = %d, want %d", tc.name, s.Shards(), k)
				}
				got, err := s.SampleN(6)
				if err != nil {
					t.Fatalf("%s shards=%d: %v", tc.name, k, err)
				}
				if !reflect.DeepEqual(got.Samples, want.Samples) {
					t.Fatalf("%s %v shards=%d: sharded batch diverges from centralized", tc.name, strat, k)
				}
				if got.Shard.Shards != k || got.Shard.BoundaryMessages == 0 {
					t.Fatalf("%s shards=%d: missing shard stats %+v", tc.name, k, got.Shard)
				}
			}
		}
	}
}

// TestWithShardsSingleSample: Sampler.Sample and the package-level Sample
// agree under sharding, and report shard stats.
func TestWithShardsSingleSample(t *testing.T) {
	g := locsample.GridGraph(9, 9)
	m := locsample.NewColoring(g, 13)
	opts := []locsample.Option{locsample.WithSeed(3), locsample.WithRounds(30)}
	want, err := locsample.Sample(m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sharded := append(opts, locsample.WithShards(4))
	got, err := locsample.Sample(m, sharded...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sample, want.Sample) {
		t.Fatal("package-level sharded Sample diverges from centralized")
	}
	if got.Shard == nil || got.Shard.Shards != 4 {
		t.Fatalf("package-level sharded Sample missing shard stats: %+v", got.Shard)
	}
	s, err := locsample.NewSampler(m, sharded...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Sample, want.Sample) {
		t.Fatal("Sampler.Sample sharded diverges from centralized")
	}
}

// TestWithShardsRejects: sequential algorithms, the distributed runtime,
// and oversized shard counts cannot shard.
func TestWithShardsRejects(t *testing.T) {
	g := locsample.CycleGraph(12)
	m := locsample.NewColoring(g, 5)
	if _, err := locsample.NewSampler(m,
		locsample.WithAlgorithm(locsample.Glauber), locsample.WithShards(2)); err == nil {
		t.Fatal("Glauber + WithShards accepted")
	}
	if _, err := locsample.NewSampler(m,
		locsample.Distributed(), locsample.WithShards(2)); err == nil {
		t.Fatal("Distributed + WithShards accepted")
	}
	if _, err := locsample.NewSampler(m, locsample.WithShards(13)); err == nil {
		t.Fatal("more shards than vertices accepted")
	}
	if _, err := locsample.Sample(m, locsample.Distributed(), locsample.WithShards(2)); err == nil {
		t.Fatal("package-level Distributed + WithShards accepted")
	}
}

// TestSampleCSPNMatchesSampleCSP pins the CSP batch engine's determinism
// contract: chain i of SampleCSPN equals SampleCSP with seed
// ChainSeed(seed, i).
func TestSampleCSPNMatchesSampleCSP(t *testing.T) {
	g := locsample.GridGraph(7, 9)
	c := locsample.NewWeightedDominatingSet(g, 0.7)
	init := make([]int, g.N())
	for i := range init {
		init[i] = 1
	}
	const rounds, k = 120, 7
	samples, err := locsample.SampleCSPN(g, c, init, rounds, 99, k, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != k {
		t.Fatalf("got %d samples, want %d", len(samples), k)
	}
	for i := 0; i < k; i++ {
		want, _, err := locsample.SampleCSP(g, c, init, rounds, locsample.ChainSeed(99, i), false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(samples[i], want) {
			t.Fatalf("chain %d diverges from derived-seed SampleCSP", i)
		}
		if !g.IsDominatingSet(samples[i]) {
			t.Fatalf("chain %d output is not dominating", i)
		}
	}
	if _, err := locsample.SampleCSPN(g, c, init, 0, 1, 2, 0); err == nil {
		t.Fatal("rounds=0 accepted")
	}
	bad := make([]int, g.N()) // all-zero is not dominating
	if _, err := locsample.SampleCSPN(g, c, bad, 10, 1, 2, 0); err == nil {
		t.Fatal("infeasible init accepted")
	}
}
