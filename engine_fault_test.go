package locsample_test

// Error-path contract of sharded draws at the public API: when the
// boundary fabric fails mid-draw, SampleN must abort fast with a typed
// transport error — never hang, never return a silently wrong batch —
// and the sampler must stay usable for diagnosis (further draws return
// errors, not panics).

import (
	"errors"
	"testing"
	"time"

	"locsample"
	"locsample/internal/transport"
)

// faultyFabric builds each engine's boundary fabric with a drop injected
// at the given frame and a short receive deadline, so the loss surfaces
// as a typed error within seconds.
func faultyFabric(frame int) func(neighbors [][]int) locsample.Transport {
	return func(neighbors [][]int) locsample.Transport {
		return transport.NewFault(
			transport.NewChan(neighbors, 2*time.Second),
			map[int]transport.Injection{frame: {Op: transport.FaultDrop}},
		)
	}
}

// transportFailure reports whether err is one of the loud shapes a lost
// frame may take: a receive deadline, a poisoned (closed) fabric on a
// sibling shard, or a round mismatch when the receiver instead sees the
// sender's next-round frame. What a loss must never produce is a clean
// draw with a wrong configuration.
func transportFailure(err error) bool {
	var re *transport.RoundError
	return errors.Is(err, transport.ErrTimeout) ||
		errors.Is(err, transport.ErrClosed) ||
		errors.As(err, &re)
}

func TestShardedSampleNFailsFast(t *testing.T) {
	g := locsample.GridGraph(8, 8)
	m := locsample.NewColoring(g, 3*g.MaxDeg())
	s, err := locsample.NewSampler(m,
		locsample.WithRounds(12), locsample.WithSeed(3),
		locsample.WithShards(3), locsample.WithTransport(faultyFabric(2)))
	if err != nil {
		t.Fatal(err)
	}

	type res struct {
		batch *locsample.Batch
		err   error
	}
	done := make(chan res, 1)
	go func() {
		b, err := s.SampleN(4)
		done <- res{b, err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			t.Fatal("every chain's fabric drops a frame, yet SampleN succeeded")
		}
		if !transportFailure(r.err) {
			t.Fatalf("error %v is not a typed transport failure", r.err)
		}
		if r.batch != nil {
			t.Fatal("failed SampleN returned a batch alongside its error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sharded SampleN hung instead of aborting")
	}

	// The abort must not poison later calls into panics: a fresh draw
	// builds a fresh engine (and here a fresh injector, so it fails the
	// same loud way).
	if _, err := s.Sample(); err == nil || !transportFailure(err) {
		t.Fatalf("follow-up Sample: got %v, want a typed transport failure", err)
	}
}

// TestShardedCSPSampleNFailsFast is the CSP twin of the contract.
func TestShardedCSPSampleNFailsFast(t *testing.T) {
	g := locsample.GridGraph(6, 6)
	c := locsample.NewDominatingSet(g)
	init := make([]int, c.N)
	for i := range init {
		init[i] = 1
	}
	s, err := locsample.NewCSPSampler(g, c, init,
		locsample.WithRounds(10), locsample.WithSeed(3),
		locsample.WithShards(3), locsample.WithTransport(faultyFabric(2)))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := s.SampleN(3)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("every chain's fabric drops a frame, yet SampleN succeeded")
		}
		if !transportFailure(err) {
			t.Fatalf("error %v is not a typed transport failure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sharded CSP SampleN hung instead of aborting")
	}
}
