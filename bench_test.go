// Benchmarks: one family per experiment of the reproduction suite (DESIGN.md
// §4). Each benchmark exercises the workload that regenerates its
// experiment's table; the tables themselves are printed by cmd/lsexp. Run:
//
//	go test -bench=. -benchmem .
package locsample_test

import (
	"io"
	"testing"

	"locsample"
	"locsample/internal/chains"
	"locsample/internal/coupling"
	"locsample/internal/csp"
	"locsample/internal/dist"
	"locsample/internal/exact"
	"locsample/internal/experiments"
	"locsample/internal/graph"
	"locsample/internal/lowerbound"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// --- E1: LubyGlauber scaling -------------------------------------------------

func BenchmarkE1LubyGlauberRound(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		q    int
	}{
		{"cycle1024-q5", graph.Cycle(1024), 5},
		{"torus32x32-q11", graph.Torus(32, 32), 11},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := mrf.Coloring(tc.g, tc.q)
			x, err := chains.GreedyFeasible(m)
			if err != nil {
				b.Fatal(err)
			}
			sc := chains.NewScratch(m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				chains.LubyGlauberRound(m, x, 1, i, sc)
			}
		})
	}
}

func BenchmarkE1MixingEstimate(b *testing.B) {
	m := mrf.Coloring(graph.Cycle(128), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		med, _ := coupling.MixingEstimate(m, chains.LubyGlauber, 3, 100000, uint64(i))
		if med < 0 {
			b.Fatal("no coalescence")
		}
	}
}

// --- E2: LocalMetropolis scaling ----------------------------------------------

func BenchmarkE2LocalMetropolisRound(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		q    int
	}{
		{"cycle1024-q8", graph.Cycle(1024), 8},
		{"torus32x32-q16", graph.Torus(32, 32), 16},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := mrf.Coloring(tc.g, tc.q)
			x, err := chains.GreedyFeasible(m)
			if err != nil {
				b.Fatal(err)
			}
			sc := chains.NewScratch(m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				chains.ColoringLocalMetropolisRound(m, x, 1, i, false, sc)
			}
		})
	}
}

func BenchmarkE2DistributedRound(b *testing.B) {
	// Full message-passing protocol throughput (per chain iteration).
	g := graph.Torus(16, 16)
	m := mrf.Coloring(g, 16)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dist.RunLocalMetropolis(m, init, uint64(i), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3/E4: exact transition-matrix verification -------------------------------

func BenchmarkE3ExactLubyGlauber(b *testing.B) {
	m := mrf.Coloring(graph.Cycle(4), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.LubyGlauberMatrix(m, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4ExactLocalMetropolis(b *testing.B) {
	m := mrf.Coloring(graph.Path(3), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.LocalMetropolisMatrix(m, false, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: coupling contraction ---------------------------------------------------

func BenchmarkE5Contraction(b *testing.B) {
	g, err := graph.RandomRegular(48, 6, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []struct {
		name string
		k    coupling.Kind
	}{{"identical", coupling.Identical}, {"permuted", coupling.Permuted}} {
		b.Run(kind.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coupling.ContractionEstimate(g, 22, kind.k, 50, 10, uint64(i))
			}
		})
	}
}

// --- E6: path correlation -------------------------------------------------------

func BenchmarkE6PathCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for d := 1; d <= 16; d++ {
			_ = lowerbound.PathCorrelationTV(5, d)
			_ = lowerbound.PathJointProductTV(5, d)
		}
	}
}

// --- E7: gadget enumeration -------------------------------------------------------

func BenchmarkE7Gadget(b *testing.B) {
	gd, err := lowerbound.BuildGadget(8, 1, 3, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.ComputeGadgetStats(gd, 6.0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: lifted cycle transfer matrices --------------------------------------------

func BenchmarkE8LiftedCycle(b *testing.B) {
	gd, err := lowerbound.BuildGadget(5, 2, 3, rng.New(11))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := lowerbound.ComputeTransfer(gd, 6.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.PairPhaseProb(10, 0, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8ProtocolPhases(b *testing.B) {
	gd, err := lowerbound.BuildGadget(5, 2, 3, rng.New(11))
	if err != nil {
		b.Fatal(err)
	}
	lc, err := lowerbound.BuildLiftedCycle(gd, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lowerbound.ProtocolPhaseJoint(lc, 6.0, 3, 50, uint64(i), 0, 3)
	}
}

// --- E9: MIS separation --------------------------------------------------------------

func BenchmarkE9Separation(b *testing.B) {
	g := graph.Cycle(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dist.RunMIS(g, uint64(i), 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: CSP chains -----------------------------------------------------------------

func BenchmarkE10CSP(b *testing.B) {
	c := csp.DominatingSet(graph.Grid(4, 4))
	init := make([]int, c.N)
	for i := range init {
		init[i] = 1
	}
	b.Run("lubyglauber", func(b *testing.B) {
		s := csp.NewSampler(c, init, 1)
		for i := 0; i < b.N; i++ {
			s.LubyGlauberStep()
		}
	})
	b.Run("localmetropolis", func(b *testing.B) {
		s := csp.NewSampler(c, init, 1)
		for i := 0; i < b.N; i++ {
			s.LocalMetropolisStep()
		}
	})
	b.Run("exact-matrix", func(b *testing.B) {
		small := csp.DominatingSet(graph.Path(4))
		for i := 0; i < b.N; i++ {
			if _, err := exact.CSPLocalMetropolisMatrix(small, 1<<20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E11: influence matrices ----------------------------------------------------------

func BenchmarkE11Influence(b *testing.B) {
	m := mrf.Coloring(graph.Cycle(4), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.InfluenceMatrix(m, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: message accounting ------------------------------------------------------------

func BenchmarkE12Messages(b *testing.B) {
	g := graph.Cycle(256)
	m := mrf.Coloring(g, 5)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := dist.RunLubyGlauber(m, init, uint64(i), 5)
		if err != nil {
			b.Fatal(err)
		}
		if st.MaxMessageBytes > 16 {
			b.Fatal("message too large")
		}
	}
}

// --- E13: exact TV-decay curves --------------------------------------------------------

func BenchmarkE13TVCurves(b *testing.B) {
	m := mrf.Coloring(graph.Cycle(4), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExactTVCurves(m, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: synchronous-update ablation -----------------------------------------------------

func BenchmarkE14SyncAblation(b *testing.B) {
	m := mrf.Hardcore(graph.Cycle(4), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.SynchronousGlauberMatrix(m, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batch engine --------------------------------------------------------------------------

// batchModel is the acceptance workload: 3Δ-coloring of the 64×64 grid
// under LocalMetropolis.
func batchModel() (*locsample.Graph, *locsample.Model) {
	g := locsample.GridGraph(64, 64)
	return g, locsample.NewColoring(g, 3*g.MaxDeg())
}

const batchRounds = 120

// BenchmarkBatchSampleLoop is the baseline: k independent draws as k
// package-level Sample calls, each re-resolving the round budget and initial
// configuration and allocating fresh chain state.
func BenchmarkBatchSampleLoop(b *testing.B) {
	_, m := batchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locsample.Sample(m,
			locsample.WithSeed(locsample.ChainSeed(1, i)),
			locsample.WithRounds(batchRounds)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkBatchSampleN is the engine: the same chains drawn through
// Sampler.SampleN, which compiles the model once and spreads chains over
// the worker pool with per-worker scratch reuse. Compare samples/sec
// against BenchmarkBatchSampleLoop; the engine target is ≥ 4× on an 8-core
// runner.
func BenchmarkBatchSampleN(b *testing.B) {
	_, m := batchModel()
	s, err := locsample.NewSampler(m,
		locsample.WithSeed(1),
		locsample.WithRounds(batchRounds))
	if err != nil {
		b.Fatal(err)
	}
	const k = 32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SampleN(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*k)/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkBatchSteadyStateRound measures one steady-state chain round of
// the engine's hot path. ReportAllocs must show 0 allocs/op: all scratch is
// preallocated and reused.
func BenchmarkBatchSteadyStateRound(b *testing.B) {
	_, m := batchModel()
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		b.Fatal(err)
	}
	s := chains.NewSampler(m, init, 1, chains.LocalMetropolis, chains.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// --- End-to-end public API -----------------------------------------------------------------

func BenchmarkSampleColoringGrid(b *testing.B) {
	g := locsample.GridGraph(16, 16)
	model := locsample.NewColoring(g, 4*g.MaxDeg())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locsample.Sample(model,
			locsample.WithSeed(uint64(i)),
			locsample.WithRounds(60)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuickSuite runs the fast experiment tables end to end, so the
// bench log records the whole reproduction working.
func BenchmarkQuickSuite(b *testing.B) {
	for _, id := range []string{"E3", "E4", "E6", "E11"} {
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatal("missing experiment")
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.Run(io.Discard, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
