// Command lsbench runs the repository's core performance suite — batch
// engine throughput, serving-layer draws, and sharded single-chain latency
// at ≥10⁶ vertices — and writes a machine-readable JSON report. The
// BENCH_PR*.json files at the repo root record the perf trajectory PR over
// PR; CI runs the -quick variant as a smoke test.
//
//	go run ./cmd/lsbench -out BENCH_PR3.json
//	go run ./cmd/lsbench -quick -out /tmp/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"locsample"
	"locsample/internal/service"
)

// Report is the JSON shape lsbench emits.
type Report struct {
	Version    string  `json:"version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPUs       int     `json:"cpus"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Quick      bool    `json:"quick,omitempty"`
	Note       string  `json:"note,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
	// Speedup maps each sharded workload to time(shards=1)/time(shards=k)
	// per shard count — the single-chain speedup the sharded runtime buys
	// on this machine. Expect ≈1/overhead-bound values on single-core
	// hosts (see CPUs) and >1 once GOMAXPROCS ≥ shards.
	Speedup map[string]map[string]float64 `json:"speedup,omitempty"`
}

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	N           int     `json:"n,omitempty"`
	M           int     `json:"m,omitempty"`
	Rounds      int     `json:"rounds,omitempty"`
	K           int     `json:"k,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	// VerticesPerSec is vertex-updates per second: n·rounds·k / seconds.
	VerticesPerSec float64 `json:"verticesPerSec,omitempty"`
}

func main() {
	var (
		out   = flag.String("out", "BENCH_PR3.json", "output JSON path")
		quick = flag.Bool("quick", false, "small sizes for CI smoke runs")
	)
	flag.Parse()

	rep := &Report{
		Version:    "locsample-bench/v1",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Speedup:    map[string]map[string]float64{},
	}
	if rep.GOMAXPROCS < 4 {
		rep.Note = fmt.Sprintf("GOMAXPROCS=%d: shard workers time-slice one core, so sharded speedups are bounded by 1; rerun on a multi-core host for the parallel numbers", rep.GOMAXPROCS)
	}

	benchSampleN(rep, *quick)
	benchService(rep)
	shardSuite(rep, *quick)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lsbench: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// benchSampleN measures batch-engine throughput: 64 chains of a grid
// coloring over the worker pool, fixed round budget.
func benchSampleN(rep *Report, quick bool) {
	side := 64
	if quick {
		side = 16
	}
	const k, rounds = 64, 24
	g := locsample.GridGraph(side, side)
	m := locsample.NewColoring(g, 13)
	s, err := locsample.NewSampler(m, locsample.WithSeed(1), locsample.WithRounds(rounds))
	if err != nil {
		fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.SampleNFrom(uint64(i), k); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.add(fmt.Sprintf("SampleN/grid%dx%d-coloring-k%d", side, side, k),
		g.N(), g.M(), rounds, k, 0, res)
}

// benchService measures a served draw end to end through the registry
// (compile cached, per-request seeds), mirroring BenchmarkServiceSample.
func benchService(rep *Report) {
	reg := service.NewRegistry(service.Config{})
	spec := `{
		"version": "locsample/v1",
		"graph": {"family": "grid", "rows": 16, "cols": 16},
		"model": {"kind": "coloring", "q": 12}
	}`
	mdl, _, err := reg.Register([]byte(spec))
	if err != nil {
		fatal(err)
	}
	const k = 8
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := reg.Draw(mdl, service.DrawOptions{K: k, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.add("ServiceSample/grid16x16-coloring-k8", 256, 480, 0, k, 0, res)
}

// shardSuite measures single-chain latency at 1, 2, and 4 shards on
// ≥10⁶-vertex grid and G(n,p) colorings (the tentpole workload) and
// records the per-workload speedups.
func shardSuite(rep *Report, quick bool) {
	gridSide := 1024 // 1024² = 1,048,576 vertices
	gnpN := 1 << 20
	rounds := 8
	if quick {
		gridSide, gnpN, rounds = 128, 1<<14, 4
	}
	grid := locsample.GridGraph(gridSide, gridSide)
	gnp := locsample.SparseGnpGraph(gnpN, 8/float64(gnpN), 7)
	workloads := []struct {
		name string
		g    *locsample.Graph
		m    *locsample.Model
	}{
		{fmt.Sprintf("grid%dx%d-coloring", gridSide, gridSide), grid, locsample.NewColoring(grid, 13)},
		{fmt.Sprintf("gnp%d-coloring", gnpN), gnp, locsample.NewColoring(gnp, 3*gnp.MaxDeg()+1)},
	}
	for _, wl := range workloads {
		base := 0.0
		speed := map[string]float64{}
		for _, shards := range []int{1, 2, 4} {
			opts := []locsample.Option{locsample.WithSeed(3), locsample.WithRounds(rounds)}
			if shards > 1 {
				opts = append(opts, locsample.WithShards(shards))
			}
			s, err := locsample.NewSampler(wl.m, opts...)
			if err != nil {
				fatal(err)
			}
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.SampleNFrom(uint64(i), 1); err != nil {
						b.Fatal(err)
					}
				}
			})
			rep.add(fmt.Sprintf("Cluster/%s/shards=%d", wl.name, shards),
				wl.g.N(), wl.g.M(), rounds, 1, shards, res)
			ns := float64(res.NsPerOp())
			if shards == 1 {
				base = ns
			} else if ns > 0 {
				speed[fmt.Sprint(shards)] = base / ns
			}
		}
		rep.Speedup[wl.name] = speed
	}
}

// add appends one benchmark result with derived vertex-update throughput.
func (r *Report) add(name string, n, m, rounds, k, shards int, res testing.BenchmarkResult) {
	e := Entry{
		Name:        name,
		N:           n,
		M:           m,
		Rounds:      rounds,
		K:           k,
		Shards:      shards,
		Iterations:  res.N,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if rounds > 0 && e.NsPerOp > 0 {
		e.VerticesPerSec = float64(n) * float64(rounds) * float64(k) / (e.NsPerOp / 1e9)
	}
	fmt.Fprintf(os.Stderr, "lsbench: %-44s %12.0f ns/op  %6d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
	r.Benchmarks = append(r.Benchmarks, e)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsbench:", err)
	os.Exit(1)
}
