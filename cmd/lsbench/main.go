// Command lsbench runs the repository's core performance suite — batch
// engine throughput, serving-layer draws, sharded single-chain latency at
// ≥10⁶ vertices, vertex-parallel round latency, and the CSP chain suite
// (dominating sets on grid/gnp, NAE hypergraph coloring; sequential,
// sharded, parallel, and the retired seed-era kernel as a reference), plus
// the observability suite (identical draws bare and with the metrics
// registry attached, reporting the instrumentation overhead) — and
// writes a machine-readable JSON report. The BENCH_PR*.json files at the
// repo root record the perf trajectory PR over PR; with -baseline the
// report also carries a per-benchmark speedup_vs field against an earlier
// report, so the trajectory is auditable by machines, and with -max-regress
// the run FAILS when a matched benchmark's vertices/sec regresses beyond
// the threshold on the same host class. CI runs the -quick variant as a
// regression smoke.
//
//	GOMAXPROCS=4 go run ./cmd/lsbench -out BENCH_PR5.json -baseline BENCH_PR4.json
//	go run ./cmd/lsbench -quick -baseline BENCH_PR5.json -max-regress 0.2 -out /tmp/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"locsample"
	"locsample/internal/csp"
	"locsample/internal/rng"
	"locsample/internal/service"
	"locsample/internal/transport"
)

// Report is the JSON shape lsbench emits.
type Report struct {
	Version    string `json:"version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick,omitempty"`
	// BestOf records the repetition count of the single-chain latency
	// suites (each entry keeps its fastest of BestOf runs).
	BestOf int    `json:"bestOf,omitempty"`
	Note   string `json:"note,omitempty"`
	// Baseline names the report speedup_vs is computed against.
	Baseline   string  `json:"baseline,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
	// Speedup maps each sharded workload to time(shards=1)/time(shards=k)
	// per shard count — the single-chain speedup the sharded runtime buys
	// on this machine. Expect ≈1/overhead-bound values on single-core
	// hosts (see CPUs) and >1 once GOMAXPROCS ≥ shards.
	Speedup map[string]map[string]float64 `json:"speedup,omitempty"`
}

// Entry is one benchmark result.
type Entry struct {
	Name   string `json:"name"`
	N      int    `json:"n,omitempty"`
	M      int    `json:"m,omitempty"`
	Rounds int    `json:"rounds,omitempty"`
	K      int    `json:"k,omitempty"`
	Shards int    `json:"shards,omitempty"`
	// Parallel is the vertex-parallel worker count per chain (0/absent:
	// sequential rounds).
	Parallel int `json:"parallel,omitempty"`
	// SoAWidth is the batch-engine lane width of a Batch/BatchSmoke entry
	// (1: the per-chain AoS reference path).
	SoAWidth int `json:"soaWidth,omitempty"`
	// CPUs/GOMAXPROCS record the host class per entry, so entries stay
	// self-describing when reports are merged or compared across machines.
	CPUs        int     `json:"cpus"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	// VerticesPerSec is vertex-updates per second: n·rounds·k / seconds.
	VerticesPerSec float64 `json:"verticesPerSec,omitempty"`
	// ChainsPerSec / NsPerChainRound describe the batch suite: whole
	// chains delivered per second and the per-chain cost of one round —
	// the two numbers the SoA width sweep exists to compare.
	ChainsPerSec    float64 `json:"chainsPerSec,omitempty"`
	NsPerChainRound float64 `json:"nsPerChainRound,omitempty"`
	// FramesPerSec / WireBytesPerRound describe the transport suite:
	// boundary frames moved per second and bytes a lockstep round puts on
	// the wire (0 for the in-process Chan fabric — nothing is encoded).
	FramesPerSec      float64 `json:"framesPerSec,omitempty"`
	WireBytesPerRound float64 `json:"wireBytesPerRound,omitempty"`
	// SpeedupVs is baseline-ns/op ÷ this-ns/op for the same-named benchmark
	// in the -baseline report (same host class only; absent otherwise).
	SpeedupVs float64 `json:"speedup_vs,omitempty"`
	// Underprovisioned marks parallel/sharded entries whose worker count
	// exceeds GOMAXPROCS: the workers time-sliced, so the number measures
	// scheduling overhead, not parallel speedup.
	Underprovisioned bool `json:"underprovisioned,omitempty"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_PR10.json", "output JSON path")
		quick      = flag.Bool("quick", false, "small sizes for CI smoke runs")
		baseline   = flag.String("baseline", "", "earlier report to compute per-benchmark speedup_vs against")
		maxRegress = flag.Float64("max-regress", 0, "fail if a matched benchmark's vertices/sec regresses more than this fraction vs -baseline on the same host class (0 = report only)")
	)
	flag.Parse()

	rep := &Report{
		Version:    "locsample-bench/v1",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		BestOf:     3,
		Speedup:    map[string]map[string]float64{},
	}
	if cores := min(rep.CPUs, rep.GOMAXPROCS); cores < 4 {
		rep.Note = fmt.Sprintf("%d usable cores (cpus=%d, gomaxprocs=%d): shard workers and parallel-round goroutines time-slice, so parallel speedups are bounded by 1; kernel (shards=1, sequential) numbers are unaffected. Rerun on a multi-core host for the parallel numbers",
			cores, rep.CPUs, rep.GOMAXPROCS)
	}

	benchSampleN(rep, *quick)
	benchService(rep)
	batchSuite(rep, *quick)
	batchSmoke(rep)
	shardSuite(rep, *quick)
	parallelSuite(rep, *quick)
	cspSuite(rep, *quick)
	cspSmoke(rep)
	transportSuite(rep, *quick)
	obsSuite(rep, *quick)
	diagSuite(rep, *quick)

	regressions := applyBaseline(rep, *baseline, *maxRegress)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lsbench: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "lsbench: REGRESSION %s\n", r)
		}
		os.Exit(1)
	}
}

// applyBaseline loads the baseline report, stamps speedup_vs on every
// same-named benchmark, and — when the host class matches and maxRegress is
// positive — returns the list of benchmarks whose vertices/sec fell more
// than the allowed fraction.
func applyBaseline(rep *Report, path string, maxRegress float64) []string {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("baseline: %w", err))
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("baseline %s: %w", path, err))
	}
	rep.Baseline = path
	// Comparing a 1-CPU container run against a 32-way CI runner would
	// report fantasy speedups (and spurious regressions), so cross-class
	// comparisons are skipped entirely. Quick and full runs need no such
	// guard: benchmark names encode their workload sizes, so name matching
	// below compares identical workloads only (e.g. the serving benchmark,
	// which both modes run at the same size).
	if base.CPUs != rep.CPUs || base.GOMAXPROCS != rep.GOMAXPROCS {
		note := fmt.Sprintf("baseline %s is a different host class (cpus=%d gomaxprocs=%d vs cpus=%d gomaxprocs=%d); speedup_vs and regression checks skipped",
			path, base.CPUs, base.GOMAXPROCS, rep.CPUs, rep.GOMAXPROCS)
		if rep.Note != "" {
			note = rep.Note + ". " + note
		}
		rep.Note = note
		return nil
	}
	byName := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		byName[e.Name] = e
	}
	var regressions []string
	for i := range rep.Benchmarks {
		e := &rep.Benchmarks[i]
		b, ok := byName[e.Name]
		if !ok || b.NsPerOp <= 0 || e.NsPerOp <= 0 {
			continue
		}
		e.SpeedupVs = b.NsPerOp / e.NsPerOp
		if maxRegress > 0 && e.SpeedupVs < 1-maxRegress {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.2fx vs %s (%.0f -> %.0f ns/op) exceeds the %.0f%% budget",
				e.Name, e.SpeedupVs, path, b.NsPerOp, e.NsPerOp, maxRegress*100))
		}
	}
	return regressions
}

// benchSampleN measures batch-engine throughput: 64 chains of a grid
// coloring over the worker pool, fixed round budget.
func benchSampleN(rep *Report, quick bool) {
	side := 64
	if quick {
		side = 16
	}
	const k, rounds = 64, 24
	g := locsample.GridGraph(side, side)
	m := locsample.NewColoring(g, 13)
	s, err := locsample.NewSampler(m, locsample.WithSeed(1), locsample.WithRounds(rounds))
	if err != nil {
		fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.SampleNFrom(uint64(i), k); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.add(fmt.Sprintf("SampleN/grid%dx%d-coloring-k%d", side, side, k),
		g.N(), g.M(), rounds, k, 0, 0, res)
}

// benchService measures a served draw end to end through the registry
// (compile cached, per-request seeds), mirroring BenchmarkServiceSample.
func benchService(rep *Report) {
	reg := service.NewRegistry(service.Config{})
	spec := `{
		"version": "locsample/v1",
		"graph": {"family": "grid", "rows": 16, "cols": 16},
		"model": {"kind": "coloring", "q": 12}
	}`
	mdl, _, err := reg.Register([]byte(spec))
	if err != nil {
		fatal(err)
	}
	const k = 8
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := reg.Draw(mdl, service.DrawOptions{K: k, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.add("ServiceSample/grid16x16-coloring-k8", 256, 480, 0, k, 0, 0, res)
}

// batchSuite measures multi-chain batch throughput across the SoA width
// sweep: the same 64-chain draw at width 1 (the per-chain AoS reference)
// and at 8, 16, 32, and 64 lanes per block, over the tentpole grid and
// G(n,p) colorings and the dominating-set CSP. Entries report chains/sec
// and per-chain ns/round; the per-workload speedup map records each
// width's throughput against the AoS entry — the one-CSR-walk-serves-W-
// chains win this report exists to audit. Chain i is bit-identical at
// every width (CI-gated), so the sweep compares cost, never output.
func batchSuite(rep *Report, quick bool) {
	const k = 64
	workloads, rounds := benchWorkloads(quick)
	type batchRun struct {
		name string
		n, m int
		mk   func(width int) func(b *testing.B)
	}
	var runs []batchRun
	for _, wl := range workloads {
		wl := wl
		runs = append(runs, batchRun{wl.name, wl.g.N(), wl.g.M(), func(width int) func(b *testing.B) {
			s, err := locsample.NewSampler(wl.m,
				locsample.WithSeed(3), locsample.WithRounds(rounds),
				locsample.WithBatchWidth(width))
			if err != nil {
				fatal(err)
			}
			// Warm the block/chain pools: these ops run at b.N=1, so an
			// unwarmed first draw would bill gigabytes of block
			// construction and first-touch page faults to the measurement.
			if _, err := s.SampleNFrom(0, k); err != nil {
				fatal(err)
			}
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.SampleNFrom(uint64(i), k); err != nil {
						b.Fatal(err)
					}
				}
			}
		}})
	}
	cspSide := 512
	if quick {
		cspSide = 48
	}
	cspGrid := locsample.GridGraph(cspSide, cspSide)
	dom := locsample.NewDominatingSet(cspGrid)
	ones := make([]int, cspGrid.N())
	for i := range ones {
		ones[i] = 1
	}
	runs = append(runs, batchRun{
		fmt.Sprintf("domset-grid%dx%d", cspSide, cspSide), cspGrid.N(), len(dom.Cons),
		func(width int) func(b *testing.B) {
			s, err := locsample.NewCSPSampler(cspGrid, dom, ones,
				locsample.WithSeed(3), locsample.WithRounds(rounds),
				locsample.WithBatchWidth(width))
			if err != nil {
				fatal(err)
			}
			if _, err := s.SampleNFrom(0, k); err != nil {
				fatal(err)
			}
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.SampleNFrom(uint64(i), k); err != nil {
						b.Fatal(err)
					}
				}
			}
		}})
	for _, r := range runs {
		base := 0.0
		speed := map[string]float64{}
		for _, width := range []int{1, 8, 16, 32, 64} {
			res := testing.Benchmark(r.mk(width))
			rep.addBatch(fmt.Sprintf("Batch/%s/soa=%d", r.name, width),
				r.n, r.m, rounds, k, width, res)
			ns := float64(res.NsPerOp())
			if width == 1 {
				base = ns
			} else if ns > 0 && base > 0 {
				speed[fmt.Sprintf("soa%d", width)] = base / ns
			}
		}
		rep.Speedup["batch/"+r.name] = speed
	}
}

// batchSmoke measures fixed-size batch draws that run identically in full
// and quick reports — the Batch entries CI's quick run matches by name
// against the checked-in full-run baseline, so >20% regressions on either
// side of the AoS/SoA split fail the smoke for both kernel families.
func batchSmoke(rep *Report) {
	const k, rounds = 64, 8
	grid := locsample.GridGraph(48, 48)
	coloring := locsample.NewColoring(grid, 13)
	dom := locsample.NewDominatingSet(grid)
	ones := make([]int, grid.N())
	for i := range ones {
		ones[i] = 1
	}
	for _, width := range []int{1, 16} {
		s, err := locsample.NewSampler(coloring,
			locsample.WithSeed(3), locsample.WithRounds(rounds),
			locsample.WithBatchWidth(width))
		if err != nil {
			fatal(err)
		}
		if _, err := s.SampleNFrom(0, k); err != nil {
			fatal(err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.SampleNFrom(uint64(i), k); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.addBatch(fmt.Sprintf("BatchSmoke/grid48x48-coloring-k%d/soa=%d", k, width),
			grid.N(), grid.M(), rounds, k, width, res)
		cs, err := locsample.NewCSPSampler(grid, dom, ones,
			locsample.WithSeed(3), locsample.WithRounds(rounds),
			locsample.WithBatchWidth(width))
		if err != nil {
			fatal(err)
		}
		if _, err := cs.SampleNFrom(0, k); err != nil {
			fatal(err)
		}
		res = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cs.SampleNFrom(uint64(i), k); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.addBatch(fmt.Sprintf("BatchSmoke/domset-grid48x48-k%d/soa=%d", k, width),
			grid.N(), len(dom.Cons), rounds, k, width, res)
	}
}

// benchWorkloads returns the tentpole single-chain workloads: ≥10⁶-vertex
// grid and G(n,p) colorings (full mode) or CI-sized ones (quick).
func benchWorkloads(quick bool) (workloads []struct {
	name string
	g    *locsample.Graph
	m    *locsample.Model
}, rounds int) {
	gridSide := 1024 // 1024² = 1,048,576 vertices
	gnpN := 1 << 20
	rounds = 8
	if quick {
		gridSide, gnpN, rounds = 128, 1<<14, 4
	}
	grid := locsample.GridGraph(gridSide, gridSide)
	gnp := locsample.SparseGnpGraph(gnpN, 8/float64(gnpN), 7)
	workloads = []struct {
		name string
		g    *locsample.Graph
		m    *locsample.Model
	}{
		{fmt.Sprintf("grid%dx%d-coloring", gridSide, gridSide), grid, locsample.NewColoring(grid, 13)},
		{fmt.Sprintf("gnp%d-coloring", gnpN), gnp, locsample.NewColoring(gnp, 3*gnp.MaxDeg()+1)},
	}
	return workloads, rounds
}

// benchmarkBest runs fn through testing.Benchmark n times and keeps the
// fastest result. The single-chain latency suites run few iterations per
// measurement (hundreds of milliseconds per op), so one noisy-neighbor
// stall in a shared container can swing a single run by ±25%; the best of
// three is a stable estimator of the workload's actual cost.
func benchmarkBest(n int, fn func(b *testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < n; i++ {
		res := testing.Benchmark(fn)
		if i == 0 || res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	return best
}

// benchSingleChain times single draws through a compiled sampler (best of
// three runs).
func benchSingleChain(s *locsample.Sampler) testing.BenchmarkResult {
	return benchmarkBest(3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.SampleNFrom(uint64(i), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// shardSuite measures single-chain latency at 1, 2, and 4 shards on the
// tentpole workloads and records the per-workload speedups.
func shardSuite(rep *Report, quick bool) {
	workloads, rounds := benchWorkloads(quick)
	for _, wl := range workloads {
		base := 0.0
		speed := map[string]float64{}
		for _, shards := range []int{1, 2, 4} {
			opts := []locsample.Option{locsample.WithSeed(3), locsample.WithRounds(rounds)}
			if shards > 1 {
				opts = append(opts, locsample.WithShards(shards))
			}
			s, err := locsample.NewSampler(wl.m, opts...)
			if err != nil {
				fatal(err)
			}
			res := benchSingleChain(s)
			rep.add(fmt.Sprintf("Cluster/%s/shards=%d", wl.name, shards),
				wl.g.N(), wl.g.M(), rounds, 1, shards, 0, res)
			ns := float64(res.NsPerOp())
			if shards == 1 {
				base = ns
			} else if ns > 0 {
				speed[fmt.Sprint(shards)] = base / ns
			}
		}
		rep.Speedup[wl.name] = speed
	}
}

// parallelSuite measures single-chain latency under vertex-parallel rounds
// (WithParallelRounds) at 2 and 4 workers on the same tentpole workloads —
// the shards=1 entries of shardSuite are the sequential baselines.
func parallelSuite(rep *Report, quick bool) {
	workloads, rounds := benchWorkloads(quick)
	for _, wl := range workloads {
		for _, par := range []int{2, 4} {
			s, err := locsample.NewSampler(wl.m,
				locsample.WithSeed(3), locsample.WithRounds(rounds),
				locsample.WithParallelRounds(par))
			if err != nil {
				fatal(err)
			}
			res := benchSingleChain(s)
			rep.add(fmt.Sprintf("Chain/%s/parallel=%d", wl.name, par),
				wl.g.N(), wl.g.M(), rounds, 1, 0, par, res)
		}
	}
}

// refCSPMarginalInto is the seed-era closure-path conditional marginal
// (per-call gather buffer, Constraint.F calls), kept here so the report
// carries an auditable before/after for the compiled CSP kernels.
func refCSPMarginalInto(c *csp.CSP, v int, sigma []int, out []float64) bool {
	saved := sigma[v]
	defer func() { sigma[v] = saved }()
	buf := make([]int, 8)
	total := 0.0
	for a := 0; a < c.Q; a++ {
		w := c.VertexB[v][a]
		if w > 0 {
			sigma[v] = a
			for _, ci := range c.ConstraintsOf(v) {
				con := &c.Cons[ci]
				if cap(buf) < len(con.Scope) {
					buf = make([]int, len(con.Scope))
				}
				vals := buf[:len(con.Scope)]
				for i, u := range con.Scope {
					vals[i] = sigma[u]
				}
				w *= con.F(vals)
				if w == 0 {
					break
				}
			}
		}
		out[a] = w
		total += w
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for a := 0; a < c.Q; a++ {
		out[a] *= inv
	}
	return true
}

// refCSPLubyGlauberRound is the seed-era hypergraph LubyGlauber round: per-
// round β allocation, full 7-mix PRF calls per variate, closure marginals.
func refCSPLubyGlauberRound(c *csp.CSP, x []int, seed uint64, round int, marg []float64) {
	n := c.N
	beta := make([]float64, n)
	for v := 0; v < n; v++ {
		beta[v] = rng.PRFFloat64(seed, csp.TagBeta, uint64(v), uint64(round))
	}
	for v := 0; v < n; v++ {
		isMax := true
		for _, u := range c.Neighborhood(v) {
			if beta[u] >= beta[v] {
				isMax = false
				break
			}
		}
		if !isMax {
			continue
		}
		if refCSPMarginalInto(c, v, x, marg) {
			u := rng.PRFFloat64(seed, csp.TagUpdate, uint64(v), uint64(round))
			x[v] = rng.CategoricalU(marg, u)
		}
	}
}

// cspWorkloads returns the CSP chain workloads: dominating sets on a grid
// and a sparse G(n,p) (seed picked so the max degree stays within the
// arity-normalization cap), and NAE hypergraph 3-coloring over consecutive
// triples.
func cspWorkloads(quick bool) (workloads []struct {
	name string
	g    *locsample.Graph
	c    *locsample.CSPModel
	init []int
}, rounds int) {
	gridSide := 512 // 262,144 vertices
	gnpN := 1 << 18
	naeN := 1 << 18
	rounds = 8
	if quick {
		gridSide, gnpN, naeN, rounds = 48, 1<<12, 1<<12, 4
	}
	grid := locsample.GridGraph(gridSide, gridSide)
	gnp := locsample.SparseGnpGraph(gnpN, 2/float64(gnpN), 1)
	ones := func(n int) []int {
		x := make([]int, n)
		for i := range x {
			x[i] = 1
		}
		return x
	}
	scopes := make([][]int32, naeN)
	for i := range scopes {
		scopes[i] = []int32{int32(i), int32((i + 1) % naeN), int32((i + 2) % naeN)}
	}
	nae := csp.NotAllEqual(naeN, 3, scopes)
	naeInit := make([]int, naeN)
	for i := range naeInit {
		naeInit[i] = i % 3
	}
	workloads = []struct {
		name string
		g    *locsample.Graph
		c    *locsample.CSPModel
		init []int
	}{
		{fmt.Sprintf("domset-grid%dx%d", gridSide, gridSide), grid, locsample.NewDominatingSet(grid), ones(grid.N())},
		{fmt.Sprintf("domset-gnp%d", gnpN), gnp, locsample.NewDominatingSet(gnp), ones(gnp.N())},
		{fmt.Sprintf("nae%d-q3", naeN), nil, nae, naeInit},
	}
	return workloads, rounds
}

// cspSuite measures the CSP chain: the retired seed-era kernel (ref), the
// compiled sequential kernel (shards=1), sharded draws at 2 and 4 shards,
// and vertex-parallel rounds at 2 and 4 workers. Per-workload speedups
// record shard scaling plus kernel_vs_ref — the compiled-kernel win this
// report exists to audit.
func cspSuite(rep *Report, quick bool) {
	workloads, rounds := cspWorkloads(quick)
	for _, wl := range workloads {
		n := wl.c.N
		speed := map[string]float64{}

		res := benchmarkBest(3, func(b *testing.B) {
			x := make([]int, n)
			marg := make([]float64, wl.c.Q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(x, wl.init)
				for r := 0; r < rounds; r++ {
					refCSPLubyGlauberRound(wl.c, x, uint64(i), r, marg)
				}
			}
		})
		rep.add(fmt.Sprintf("CSPChain/%s/ref-seed-kernel", wl.name), n, len(wl.c.Cons), rounds, 1, 0, 0, res)
		refNs := float64(res.NsPerOp())

		base := 0.0
		for _, shards := range []int{1, 2, 4} {
			opts := []locsample.Option{locsample.WithSeed(3), locsample.WithRounds(rounds)}
			if shards > 1 {
				opts = append(opts, locsample.WithShards(shards))
			}
			s, err := locsample.NewCSPSampler(wl.g, wl.c, wl.init, opts...)
			if err != nil {
				fatal(err)
			}
			res := benchmarkBest(3, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.SampleNFrom(uint64(i), 1); err != nil {
						b.Fatal(err)
					}
				}
			})
			rep.add(fmt.Sprintf("CSPChain/%s/shards=%d", wl.name, shards), n, len(wl.c.Cons), rounds, 1, shards, 0, res)
			ns := float64(res.NsPerOp())
			if shards == 1 {
				base = ns
				if ns > 0 {
					speed["kernel_vs_ref"] = refNs / ns
				}
			} else if ns > 0 {
				speed[fmt.Sprint(shards)] = base / ns
			}
		}
		for _, par := range []int{2, 4} {
			s, err := locsample.NewCSPSampler(wl.g, wl.c, wl.init,
				locsample.WithSeed(3), locsample.WithRounds(rounds), locsample.WithParallelRounds(par))
			if err != nil {
				fatal(err)
			}
			res := benchmarkBest(3, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.SampleNFrom(uint64(i), 1); err != nil {
						b.Fatal(err)
					}
				}
			})
			rep.add(fmt.Sprintf("CSPChain/%s/parallel=%d", wl.name, par), n, len(wl.c.Cons), rounds, 1, 0, par, res)
		}
		rep.Speedup["csp/"+wl.name] = speed
	}
}

// cspSmoke measures fixed-size CSP draws that run identically in full and
// quick reports — the entries CI's quick run matches by name against the
// checked-in full-run baseline, so >20% CSP regressions fail the smoke the
// way ServiceSample already gates the MRF serving path.
func cspSmoke(rep *Report) {
	const rounds = 8
	grid := locsample.GridGraph(48, 48)
	dom := locsample.NewDominatingSet(grid)
	ones := make([]int, grid.N())
	for i := range ones {
		ones[i] = 1
	}
	const naeN = 4096
	scopes := make([][]int32, naeN)
	for i := range scopes {
		scopes[i] = []int32{int32(i), int32((i + 1) % naeN), int32((i + 2) % naeN)}
	}
	nae := csp.NotAllEqual(naeN, 3, scopes)
	naeInit := make([]int, naeN)
	for i := range naeInit {
		naeInit[i] = i % 3
	}
	for _, wl := range []struct {
		name string
		g    *locsample.Graph
		c    *locsample.CSPModel
		init []int
	}{
		{"domset-grid48x48", grid, dom, ones},
		{"nae4096-q3", nil, nae, naeInit},
	} {
		s, err := locsample.NewCSPSampler(wl.g, wl.c, wl.init,
			locsample.WithSeed(3), locsample.WithRounds(rounds))
		if err != nil {
			fatal(err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.SampleNFrom(uint64(i), 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.add("CSPSmoke/"+wl.name, wl.c.N, len(wl.c.Cons), rounds, 1, 0, 0, res)
	}
}

// transportSuite measures the boundary fabrics a sharded round runs on:
// one lockstep round of a two-shard exchange (a frame each way), over the
// in-process Chan transport and over the cross-process TCP transport on
// loopback. Reported as frames/sec plus, for TCP, the encoded bytes each
// round puts on the wire.
func transportSuite(rep *Report, quick bool) {
	states := 4096
	if quick {
		states = 512
	}
	payload := make([]int, states)
	for i := range payload {
		payload[i] = i & 7
	}
	neighbors := [][]int{{1}, {0}}
	const timeout = 10 * time.Second

	// One op = one lockstep round: shard 0 and shard 1 each send their
	// boundary frame and receive the peer's.
	roundTrip := func(b *testing.B, tr transport.Transport) {
		b.Helper()
		for r := 0; r < b.N; r++ {
			if err := tr.Send(0, 1, r, payload); err != nil {
				b.Fatal(err)
			}
			if err := tr.Send(1, 0, r, payload); err != nil {
				b.Fatal(err)
			}
			if _, err := tr.Recv(0, 1, r, states); err != nil {
				b.Fatal(err)
			}
			if _, err := tr.Recv(1, 0, r, states); err != nil {
				b.Fatal(err)
			}
		}
	}
	addFabric := func(name string, res testing.BenchmarkResult, wireBytes float64) {
		rep.add(name, states, 0, 0, 0, 2, 0, res)
		e := &rep.Benchmarks[len(rep.Benchmarks)-1]
		if e.NsPerOp > 0 {
			e.FramesPerSec = 2 / (e.NsPerOp / 1e9)
		}
		e.WireBytesPerRound = wireBytes
	}

	ch := transport.NewChan(neighbors, timeout)
	res := benchmarkBest(rep.BestOf, func(b *testing.B) {
		b.ReportAllocs()
		roundTrip(b, ch)
	})
	ch.Close()
	addFabric(fmt.Sprintf("Transport/Chan/states=%d", states), res, 0)

	tcpA, tcpB, cleanup, err := loopbackMesh(neighbors, timeout)
	if err != nil {
		fatal(err)
	}
	defer cleanup()
	var rounds int
	res = benchmarkBest(rep.BestOf, func(b *testing.B) {
		b.ReportAllocs()
		rounds += b.N
		for r := 0; r < b.N; r++ {
			if err := tcpA.Send(0, 1, r, payload); err != nil {
				b.Fatal(err)
			}
			if err := tcpB.Send(1, 0, r, payload); err != nil {
				b.Fatal(err)
			}
			if _, err := tcpB.Recv(0, 1, r, states); err != nil {
				b.Fatal(err)
			}
			if _, err := tcpA.Recv(1, 0, r, states); err != nil {
				b.Fatal(err)
			}
		}
	})
	wire := float64(tcpA.Stats().BytesSent+tcpB.Stats().BytesSent) / float64(rounds)
	addFabric(fmt.Sprintf("Transport/TCPLoopback/states=%d", states), res, wire)
}

// loopbackMesh stands up the two-process TCP mesh the transport suite
// benchmarks: each side gets its own listener, B dials A (the lower
// index), and A's accept loop attaches the inbound half — the same
// handshake the lsharded worker runs.
func loopbackMesh(neighbors [][]int, timeout time.Duration) (a, b *transport.TCP, cleanup func(), err error) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lnA.Close()
		return nil, nil, nil, err
	}
	mk := func(self int) (*transport.TCP, error) {
		return transport.NewTCP(transport.TCPConfig{
			JobID:       1,
			Self:        self,
			Addrs:       []string{lnA.Addr().String(), lnB.Addr().String()},
			Assign:      []int{0, 1},
			Neighbors:   neighbors,
			DialTimeout: timeout,
			RecvTimeout: timeout,
		})
	}
	if a, err = mk(0); err != nil {
		lnA.Close()
		lnB.Close()
		return nil, nil, nil, err
	}
	if b, err = mk(1); err != nil {
		a.Close()
		lnA.Close()
		lnB.Close()
		return nil, nil, nil, err
	}
	accepted := make(chan error, 1)
	go func() {
		c, err := lnA.Accept()
		if err != nil {
			accepted <- err
			return
		}
		if _, err := transport.ReadMagic(c, timeout); err != nil {
			accepted <- err
			return
		}
		_, from, err := transport.ReadPeerHello(c, timeout)
		if err != nil {
			accepted <- err
			return
		}
		c.SetReadDeadline(time.Time{})
		accepted <- a.AddConn(from, c)
	}()
	cleanup = func() {
		a.Close()
		b.Close()
		lnA.Close()
		lnB.Close()
	}
	if err := b.Dial(); err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	if err := <-accepted; err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	if err := a.Ready(timeout); err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	if err := b.Ready(timeout); err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	return a, b, cleanup, nil
}

// obsSuite measures the observability tax: the same single-chain rounds
// drawn bare and with a metrics registry attached (WithMetrics wires the
// per-round atomic counters and the draw-latency histogram into the hot
// path). The per-workload speedup map records metrics_overhead =
// instrumented/bare - 1; the round hooks are a nil-check plus a handful
// of atomics per round, so the tax should stay within the noise floor
// (≤1% on multi-round draws).
func obsSuite(rep *Report, quick bool) {
	side := 256
	rounds := 16
	if quick {
		side, rounds = 64, 8
	}
	grid := locsample.GridGraph(side, side)
	coloring := locsample.NewColoring(grid, 13)
	dom := locsample.NewDominatingSet(grid)
	ones := make([]int, grid.N())
	for i := range ones {
		ones[i] = 1
	}

	mrfSampler := func(extra ...locsample.Option) func(b *testing.B) {
		opts := append([]locsample.Option{
			locsample.WithSeed(3), locsample.WithRounds(rounds)}, extra...)
		s, err := locsample.NewSampler(coloring, opts...)
		if err != nil {
			fatal(err)
		}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.SampleNFrom(uint64(i), 1); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	cspSampler := func(extra ...locsample.Option) func(b *testing.B) {
		opts := append([]locsample.Option{
			locsample.WithSeed(3), locsample.WithRounds(rounds)}, extra...)
		s, err := locsample.NewCSPSampler(grid, dom, ones, opts...)
		if err != nil {
			fatal(err)
		}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.SampleNFrom(uint64(i), 1); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	for _, suite := range []struct {
		name string
		mk   func(extra ...locsample.Option) func(b *testing.B)
	}{
		{fmt.Sprintf("grid%dx%d-coloring", side, side), mrfSampler},
		{fmt.Sprintf("domset-grid%dx%d", side, side), cspSampler},
	} {
		bareFn := suite.mk()
		instrFn := suite.mk(locsample.WithMetrics(locsample.NewMetrics()))
		// Bare and instrumented runs interleave so noisy-neighbor drift
		// on a shared host hits both sides; each keeps its best rep.
		var bare, instr testing.BenchmarkResult
		for i := 0; i < 5; i++ {
			if b := testing.Benchmark(bareFn); i == 0 || b.NsPerOp() < bare.NsPerOp() {
				bare = b
			}
			if m := testing.Benchmark(instrFn); i == 0 || m.NsPerOp() < instr.NsPerOp() {
				instr = m
			}
		}
		rep.add("Obs/"+suite.name+"/bare", grid.N(), grid.M(), rounds, 1, 0, 0, bare)
		rep.add("Obs/"+suite.name+"/metrics", grid.N(), grid.M(), rounds, 1, 0, 0, instr)
		if bareNs := float64(bare.NsPerOp()); bareNs > 0 {
			rep.Speedup["obs/"+suite.name] = map[string]float64{
				"metrics_overhead": float64(instr.NsPerOp())/bareNs - 1,
			}
		}
	}
}

// diagSuite measures the mixing-diagnostics path on proved-regime
// colorings (q = 16 > (2+√2)Δ at grid Δ = 4, where the paper's coupling
// argument holds): a coupled diagnosed draw per seed at the
// coupling-measured round budget. The speedup map entry diag/<name>
// records measured_rounds against theory_rounds — the empirical
// measured-vs-theory budget gap this suite exists to track — plus their
// ratio; the benchmark entry itself carries the diagnosed draw's cost
// at the measured budget.
func diagSuite(rep *Report, quick bool) {
	sides := []int{32, 64}
	if quick {
		sides = []int{16}
	}
	for _, side := range sides {
		g := locsample.GridGraph(side, side)
		m := locsample.NewColoring(g, 16)
		s, err := locsample.NewSampler(m, locsample.WithSeed(3), locsample.WithRoundsAuto())
		if err != nil {
			fatal(err)
		}
		measured, theory := s.Rounds(), s.CapRounds()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.SampleDiagnosedFrom(uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
		name := fmt.Sprintf("grid%dx%d-coloring-q16", side, side)
		rep.add("Diag/"+name+"/diagnosed-draw", g.N(), g.M(), measured, 1, 0, 0, res)
		budgets := map[string]float64{
			"measured_rounds": float64(measured),
			"theory_rounds":   float64(theory),
		}
		if theory > 0 {
			budgets["budget_ratio"] = float64(measured) / float64(theory)
		}
		rep.Speedup["diag/"+name] = budgets
	}
}

// add appends one benchmark result with derived vertex-update throughput.
func (r *Report) add(name string, n, m, rounds, k, shards, parallel int, res testing.BenchmarkResult) {
	e := Entry{
		Name:        name,
		N:           n,
		M:           m,
		Rounds:      rounds,
		K:           k,
		Shards:      shards,
		Parallel:    parallel,
		CPUs:        r.CPUs,
		GOMAXPROCS:  r.GOMAXPROCS,
		Iterations:  res.N,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if rounds > 0 && e.NsPerOp > 0 {
		e.VerticesPerSec = float64(n) * float64(rounds) * float64(k) / (e.NsPerOp / 1e9)
	}
	if (shards > 1 && r.GOMAXPROCS < shards) || (parallel > 1 && r.GOMAXPROCS < parallel) {
		e.Underprovisioned = true
	}
	fmt.Fprintf(os.Stderr, "lsbench: %-48s %12.0f ns/op  %6d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
	r.Benchmarks = append(r.Benchmarks, e)
}

// addBatch appends a batch-suite entry: add plus the lane width and the
// chains/sec and per-chain ns/round derived rates.
func (r *Report) addBatch(name string, n, m, rounds, k, width int, res testing.BenchmarkResult) {
	r.add(name, n, m, rounds, k, 0, 0, res)
	e := &r.Benchmarks[len(r.Benchmarks)-1]
	e.SoAWidth = width
	if e.NsPerOp > 0 {
		e.ChainsPerSec = float64(k) / (e.NsPerOp / 1e9)
		e.NsPerChainRound = e.NsPerOp / (float64(k) * float64(rounds))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsbench:", err)
	os.Exit(1)
}
