// Command lserved serves Gibbs-distribution sampling over HTTP: clients
// register models as versioned JSON specs (POST /v1/models) and draw
// batches from them (POST /v1/models/{id}/sample). Models are compiled
// once and cached; a draw with an explicit seed is bit-identical to the
// corresponding local locsample.Sample/SampleCSP calls with derived
// ChainSeed seeds, so servers are interchangeable with local runs.
//
// Endpoints:
//
//	POST /v1/models              register a spec (idempotent; ID = content hash)
//	GET  /v1/models              list models
//	GET  /v1/models/{id}         one model's spec + counters
//	POST /v1/models/{id}/sample  draw k samples (optional seed/algorithm/rounds/epsilon/trace)
//	GET  /healthz                liveness
//	GET  /statsz                 registry, cache, and per-model counters
//	GET  /metrics                Prometheus text exposition
//	GET  /debug/trace/{id}       a traced draw as Chrome trace-event JSON
//	GET  /debug/traces           recorded-trace listing
//	GET  /debug/pprof/           net/http/pprof profiles
//
// Example:
//
//	lserved -addr :8473 &
//	curl -s localhost:8473/v1/models -d '{
//	  "version": "locsample/v1",
//	  "graph": {"family": "grid", "rows": 16, "cols": 16},
//	  "model": {"kind": "coloring", "q": 12}
//	}'
//	curl -s localhost:8473/v1/models/<id>/sample -d '{"k": 4, "seed": 42}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locsample"
	"locsample/internal/obs"
	"locsample/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8473", "listen address")
		cacheSize = flag.Int("cache", 64, "compiled-sampler LRU capacity")
		maxModels = flag.Int("max-models", 1024, "registered-model limit")
		maxK      = flag.Int("max-k", 4096, "per-request sample limit")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		maxTraces = flag.Int("max-traces", 64, "recorded-trace retention (LRU)")
		shards    = flag.Int("shards", 0, "default shard count for draws whose request and spec name none (0 = centralized; MRF and CSP models alike; samples are bit-identical at every shard count)")
		parallel  = flag.Int("parallel", 0, "default vertex-parallel worker count for centralized draws whose request and spec name none (0 = sequential rounds; MRF and CSP models alike; samples are bit-identical at every worker count)")
		workers   = flag.String("workers", "", "comma-separated lsharded worker addresses; sharded draws place their shards across these processes over TCP (bit-identical to in-process draws)")
		standby   = flag.String("standby-workers", "", "comma-separated spare lsharded addresses; when a worker dies mid-draw the coordinator swaps a spare into its shard band and redraws (samples stay bit-identical)")
		timeout   = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown grace period")

		retryAttempts = flag.Int("retry-attempts", 0, "coordinator draw attempts before a worker fault fails over to the local fallback (0 = default 2)")
		retryBackoff  = flag.Duration("retry-backoff", 0, "base delay between coordinator attempts, doubled per attempt with jitter (0 = default 100ms)")
		drawTimeout   = flag.Duration("draw-timeout", 0, "per-draw coordinator result deadline (0 = default 2m)")
		heartbeat     = flag.Duration("worker-heartbeat", 0, "coordinator heartbeat interval driving the locsample_worker_up gauges (0 = off)")

		breakerThreshold = flag.Int("breaker-threshold", 0, "consecutive coordinator draw failures that open a model's circuit breaker (0 = default 3)")
		breakerCooldown  = flag.Duration("breaker-cooldown", 0, "open-breaker wait before a probe draw retries the coordinator (0 = default 30s)")
		probeTimeout     = flag.Duration("probe-timeout", 2*time.Second, "startup worker-probe dial deadline")
	)
	flag.Parse()

	splitAddrs := func(s string) []string {
		var out []string
		for _, a := range strings.Split(s, ",") {
			if a = strings.TrimSpace(a); a != "" {
				out = append(out, a)
			}
		}
		return out
	}
	var workerAddrs []string
	if *workers != "" {
		workerAddrs = splitAddrs(*workers)
	}
	var standbyAddrs []string
	if *standby != "" {
		standbyAddrs = splitAddrs(*standby)
	}
	if len(standbyAddrs) > 0 && len(workerAddrs) == 0 {
		fatal(errors.New("-standby-workers requires -workers"))
	}
	defaultShards := *shards
	if defaultShards == 0 && len(workerAddrs) > 1 {
		// A worker fleet with no explicit shard default means "use the
		// fleet": one shard per worker.
		defaultShards = len(workerAddrs)
	}

	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel), "lserved")
	metrics := obs.NewRegistry()
	obs.RegisterBuildInfo(metrics, "locsampled")
	var retry *locsample.RetryPolicy
	if *retryAttempts > 0 || *retryBackoff > 0 || *drawTimeout > 0 || *heartbeat > 0 {
		retry = &locsample.RetryPolicy{
			Attempts:      *retryAttempts,
			Backoff:       *retryBackoff,
			ResultTimeout: *drawTimeout,
			Heartbeat:     *heartbeat,
		}
	}
	reg := service.NewRegistry(service.Config{
		CacheSize:        *cacheSize,
		MaxModels:        *maxModels,
		MaxK:             *maxK,
		DefaultShards:    defaultShards,
		DefaultParallel:  *parallel,
		WorkerAddrs:      workerAddrs,
		StandbyAddrs:     standbyAddrs,
		Retry:            retry,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Obs:              metrics,
		Traces:           obs.NewTraceStore(*maxTraces),
		Log:              logger,
	})
	if len(workerAddrs) > 0 {
		// Probe the fleet before serving: a mistyped or down worker shows
		// up in the log and in /statsz immediately, not on the first
		// sharded draw.
		up := 0
		for _, w := range reg.ProbeWorkers(*probeTimeout) {
			if w.Up {
				up++
			}
		}
		logger.Info("worker probe", "up", up, "configured", len(workerAddrs)+len(standbyAddrs))
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(reg),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", len(workerAddrs))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		logger.Info("shutting down", "grace", *timeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("graceful shutdown: %w", err))
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lserved:", err)
	os.Exit(1)
}
