// Command lserved serves Gibbs-distribution sampling over HTTP: clients
// register models as versioned JSON specs (POST /v1/models) and draw
// batches from them (POST /v1/models/{id}/sample). Models are compiled
// once and cached; a draw with an explicit seed is bit-identical to the
// corresponding local locsample.Sample/SampleCSP calls with derived
// ChainSeed seeds, so servers are interchangeable with local runs.
//
// Endpoints:
//
//	POST /v1/models              register a spec (idempotent; ID = content hash)
//	GET  /v1/models              list models
//	GET  /v1/models/{id}         one model's spec + counters
//	POST /v1/models/{id}/sample  draw k samples (optional seed/algorithm/rounds/epsilon/trace)
//	GET  /healthz                liveness
//	GET  /statsz                 registry, cache, and per-model counters
//	GET  /metrics                Prometheus text exposition
//	GET  /debug/trace/{id}       a traced draw as Chrome trace-event JSON
//	GET  /debug/traces           recorded-trace listing
//	GET  /debug/pprof/           net/http/pprof profiles
//
// Example:
//
//	lserved -addr :8473 &
//	curl -s localhost:8473/v1/models -d '{
//	  "version": "locsample/v1",
//	  "graph": {"family": "grid", "rows": 16, "cols": 16},
//	  "model": {"kind": "coloring", "q": 12}
//	}'
//	curl -s localhost:8473/v1/models/<id>/sample -d '{"k": 4, "seed": 42}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locsample/internal/obs"
	"locsample/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8473", "listen address")
		cacheSize = flag.Int("cache", 64, "compiled-sampler LRU capacity")
		maxModels = flag.Int("max-models", 1024, "registered-model limit")
		maxK      = flag.Int("max-k", 4096, "per-request sample limit")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		maxTraces = flag.Int("max-traces", 64, "recorded-trace retention (LRU)")
		shards    = flag.Int("shards", 0, "default shard count for draws whose request and spec name none (0 = centralized; MRF and CSP models alike; samples are bit-identical at every shard count)")
		parallel  = flag.Int("parallel", 0, "default vertex-parallel worker count for centralized draws whose request and spec name none (0 = sequential rounds; MRF and CSP models alike; samples are bit-identical at every worker count)")
		workers   = flag.String("workers", "", "comma-separated lsharded worker addresses; sharded draws place their shards across these processes over TCP (bit-identical to in-process draws)")
		timeout   = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown grace period")
	)
	flag.Parse()

	var workerAddrs []string
	if *workers != "" {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				workerAddrs = append(workerAddrs, a)
			}
		}
	}
	defaultShards := *shards
	if defaultShards == 0 && len(workerAddrs) > 1 {
		// A worker fleet with no explicit shard default means "use the
		// fleet": one shard per worker.
		defaultShards = len(workerAddrs)
	}

	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel), "lserved")
	metrics := obs.NewRegistry()
	obs.RegisterBuildInfo(metrics, "locsampled")
	reg := service.NewRegistry(service.Config{
		CacheSize:       *cacheSize,
		MaxModels:       *maxModels,
		MaxK:            *maxK,
		DefaultShards:   defaultShards,
		DefaultParallel: *parallel,
		WorkerAddrs:     workerAddrs,
		Obs:             metrics,
		Traces:          obs.NewTraceStore(*maxTraces),
		Log:             logger,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(reg),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", len(workerAddrs))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		logger.Info("shutting down", "grace", *timeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("graceful shutdown: %w", err))
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lserved:", err)
	os.Exit(1)
}
