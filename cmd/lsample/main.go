// Command lsample draws samples from a Gibbs distribution with the paper's
// distributed algorithms and reports round/message statistics. With
// -count > 1 it uses the batch engine: the model is compiled once and the
// chains (MRF and CSP alike) are spread over a worker pool. With
// -shards > 1 every single chain additionally runs shard-parallel on the
// cluster runtime — bit-identical output, one chain over many cores; with
// -parallel > 1 each chain's round phases instead fan over goroutines
// (also bit-identical, no partition plan).
//
// Workloads come either from the built-in generator flags or, with
// -model-file, from a versioned JSON spec — the same wire format
// cmd/lserved serves, so any servable model is samplable locally and vice
// versa. -json switches the report to machine-readable JSON.
//
// Examples:
//
//	lsample -graph grid -rows 16 -cols 16 -model coloring -q 12 -alg localmetropolis -distributed
//	lsample -graph regular -n 100 -d 6 -model hardcore -lambda 0.5 -alg lubyglauber -eps 0.01
//	lsample -graph cycle -n 64 -model ising -beta 1.4 -alg glauber -rounds 5000
//	lsample -graph grid -rows 64 -cols 64 -model coloring -count 256 -workers 8
//	lsample -graph grid -rows 1024 -cols 1024 -model coloring -shards 4 -rounds 24
//	lsample -graph complete -n 40 -model domset -lambda 0.8 -count 64 -rounds 300
//	lsample -graph grid -rows 512 -cols 512 -model domset -shards 4 -rounds 100
//	lsample -graph grid -rows 512 -cols 512 -model domset -parallel 4 -rounds 100
//	lsample -model-file spec.json -count 16 -seed 7 -json
//	lsample -graph grid -rows 64 -cols 64 -model coloring -shards 4 -rounds 50 -trace out.json
//	lsample -graph grid -rows 16 -cols 16 -model coloring -q 16 -diag
//	lsample -graph grid -rows 16 -cols 16 -model coloring -q 16 -rounds auto -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"locsample"
)

func main() {
	var (
		graphKind = flag.String("graph", "grid", "graph family: path|cycle|grid|torus|complete|star|hypercube|regular|gnp")
		n         = flag.Int("n", 64, "vertex count (path/cycle/complete/star/regular/gnp)")
		rows      = flag.Int("rows", 8, "grid/torus rows")
		cols      = flag.Int("cols", 8, "grid/torus cols")
		dim       = flag.Int("dim", 6, "hypercube dimension")
		d         = flag.Int("d", 4, "regular-graph degree")
		p         = flag.Float64("p", 0.1, "G(n,p) edge probability")
		model     = flag.String("model", "coloring", "model: coloring|hardcore|is|vc|ising|potts|domset")
		q         = flag.Int("q", 0, "colors / Potts states (default 3Δ+1 for coloring)")
		lambda    = flag.Float64("lambda", 1, "hardcore fugacity")
		beta      = flag.Float64("beta", 1.5, "Ising/Potts edge parameter")
		field     = flag.Float64("h", 1, "Ising field")
		algName   = flag.String("alg", "localmetropolis", "algorithm: glauber|lubyglauber|localmetropolis|scan|chromatic")
		eps       = flag.Float64("eps", 0.05, "total-variation target for the automatic round budget")
		roundsStr = flag.String("rounds", "", "round budget: an integer override, \"auto\" to measure it by coupling coalescence (the theory budget caps the search), or empty for theory")
		seed      = flag.Uint64("seed", 1, "random seed")
		distr     = flag.Bool("distributed", false, "run on the LOCAL-model runtime and report message stats")
		count     = flag.Int("count", 1, "number of independent samples (batch engine when > 1)")
		workers   = flag.Int("workers", 0, "worker goroutines for -count > 1 (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "shard workers per chain (sharded cluster runtime when > 1; MRF and CSP workloads alike; bit-identical output)")
		parallel  = flag.Int("parallel", 0, "vertex-parallel goroutines per round phase (when > 1; MRF and CSP workloads alike; bit-identical output, exclusive with -shards)")
		shardStr  = flag.String("shard-strategy", "range", "graph partitioner: range|bfs")
		modelFile = flag.String("model-file", "", "load the workload from a JSON spec file (overrides -graph/-model flags)")
		jsonOut   = flag.Bool("json", false, "emit the report and samples as JSON")
		verbose   = flag.Bool("v", false, "print the full sample (text mode; JSON always includes samples)")
		tracePath = flag.String("trace", "", "record the draw and write Chrome trace-event JSON to this file (single draws only; open in chrome://tracing or Perfetto; the traced draw is bit-identical to the untraced one)")
		diag      = flag.Bool("diag", false, "run the draw as a coupled-chain diagnosed draw and report coalescence (single draws only; the sample is bit-identical to an undiagnosed draw)")
	)
	flag.Parse()
	traceOut = *tracePath
	diagOut = *diag
	rounds := 0
	switch v := strings.ToLower(strings.TrimSpace(*roundsStr)); v {
	case "", "0":
		// Theory budget (or each path's default).
	case "auto":
		roundsAuto = true
	default:
		r, err := strconv.Atoi(v)
		if err != nil || r < 0 {
			fatal(fmt.Errorf("-rounds must be a non-negative integer or \"auto\", got %q", *roundsStr))
		}
		rounds = r
	}
	if traceOut != "" && *count > 1 {
		fatal(fmt.Errorf("-trace records a single draw; it is not supported with -count > 1"))
	}
	if traceOut != "" && *distr {
		fatal(fmt.Errorf("-trace is not supported with -distributed (the LOCAL-model replay has no round kernel to time)"))
	}
	if diagOut && *count > 1 {
		fatal(fmt.Errorf("-diag diagnoses a single draw; it is not supported with -count > 1"))
	}
	if diagOut && *distr {
		fatal(fmt.Errorf("-diag is not supported with -distributed (couplings run on the chain runtime, not the LOCAL-model replay)"))
	}
	if diagOut && traceOut != "" {
		fatal(fmt.Errorf("-diag and -trace are mutually exclusive (diagnosed draws record round series, not trace spans)"))
	}
	if roundsAuto && *distr {
		fatal(fmt.Errorf("-rounds auto is not supported with -distributed"))
	}

	strat, err := locsample.ParseShardStrategy(*shardStr)
	if err != nil {
		fatal(err)
	}
	if *modelFile != "" {
		runSpecFile(*modelFile, *algName, *eps, rounds, *seed, *distr, *count, *workers,
			*shards, *parallel, strat, *jsonOut, *verbose)
		return
	}

	g, err := buildGraph(*graphKind, *n, *rows, *cols, *dim, *d, *p, *seed)
	if err != nil {
		fatal(err)
	}
	if *model == "domset" {
		c := locsample.NewWeightedDominatingSet(g, *lambda)
		init := make([]int, g.N())
		for i := range init {
			init[i] = 1
		}
		desc := fmt.Sprintf("dominating set λ=%g (weighted local CSP)", *lambda)
		runCSP(g, c, init, desc, rounds, *seed, *distr, *count, *workers,
			*shards, *parallel, strat, *jsonOut, *verbose, true)
		return
	}
	m, modelDesc, err := buildModel(g, *model, *q, *lambda, *beta, *field)
	if err != nil {
		fatal(err)
	}
	runMRF(g, m, *graphKind, modelDesc, reportKeyForFlag(*model),
		*algName, *eps, rounds, *seed, *distr, *count, *workers, *shards, *parallel, strat, *jsonOut, *verbose)
}

// runSpecFile loads a workload from a spec file and dispatches to the MRF
// or CSP path.
func runSpecFile(path, algName string, eps float64, rounds int, seed uint64,
	distr bool, count, workers, shards, parallel int, strat locsample.ShardStrategy,
	jsonOut, verbose bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	s, err := locsample.ParseSpec(data)
	if err != nil {
		fatal(err)
	}
	built, err := locsample.BuildSpec(s)
	if err != nil {
		fatal(err)
	}
	desc := fmt.Sprintf("spec %s (kind %s)", shortHash(built.Hash), s.Model.Kind)
	if s.Name != "" {
		desc = fmt.Sprintf("spec %q %s (kind %s)", s.Name, shortHash(built.Hash), s.Model.Kind)
	}
	graphKind := s.Graph.Family
	if graphKind == "" {
		graphKind = "edges"
	}
	if built.CSP != nil {
		if rounds <= 0 {
			rounds = built.Rounds
		}
		// Adopt the spec's serving defaults, except where the user already
		// picked a runtime (same precedence as the MRF path below).
		if shards == 0 && parallel <= 1 && !distr {
			shards = built.Shards
		}
		if parallel == 0 && shards <= 1 && !distr {
			parallel = built.Parallel
		}
		runCSP(built.Graph, built.CSP, built.Init, desc, rounds, seed, distr, count, workers,
			shards, parallel, strat, jsonOut, verbose, false)
		return
	}
	// Adopt the spec's serving defaults, except where the user already
	// picked a runtime: -distributed, -shards, and -parallel are mutually
	// exclusive, and an explicit flag suppresses the defaults of the
	// others (so -parallel on a spec whose default is shards runs
	// parallel, and vice versa).
	if shards == 0 && parallel <= 1 && !distr {
		shards = built.Shards
	}
	if parallel == 0 && shards <= 1 && !distr {
		parallel = built.Parallel
	}
	runMRF(built.Graph, built.Model, graphKind, desc, reportKeyForSpec(s.Model.Kind),
		algName, eps, rounds, seed, distr, count, workers, shards, parallel, strat, jsonOut, verbose)
}

// jsonReport is the -json output shape, shared by all three paths.
type jsonReport struct {
	Graph struct {
		Kind   string `json:"kind"`
		N      int    `json:"n"`
		M      int    `json:"m"`
		MaxDeg int    `json:"maxDeg"`
	} `json:"graph"`
	Model        string                `json:"model"`
	Algorithm    string                `json:"algorithm"`
	Rounds       int                   `json:"rounds"`
	TheoryRounds int                   `json:"theoryRounds,omitempty"`
	Seed         uint64                `json:"seed"`
	Count        int                   `json:"count"`
	Shards       int                   `json:"shards,omitempty"`
	Parallel     int                   `json:"parallel,omitempty"`
	ElapsedMS    float64               `json:"elapsedMs,omitempty"`
	Stats        *locsample.Stats      `json:"stats,omitempty"`
	ShardStats   *locsample.ShardStats `json:"shardStats,omitempty"`
	CapRounds    int                   `json:"capRounds,omitempty"`
	Diagnosis    *locsample.Diagnosis  `json:"diagnosis,omitempty"`
	Samples      [][]int               `json:"samples"`
}

func newJSONReport(g *locsample.Graph, kind, model, alg string, seed uint64) *jsonReport {
	r := &jsonReport{Model: model, Algorithm: alg, Seed: seed}
	r.Graph.Kind = kind
	r.Graph.N = g.N()
	r.Graph.M = g.M()
	r.Graph.MaxDeg = g.MaxDeg()
	return r
}

func emitJSON(r *jsonReport) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(r); err != nil {
		fatal(err)
	}
}

// runMRF handles single draws and batches of an MRF workload.
func runMRF(g *locsample.Graph, m *locsample.Model, graphKind, modelDesc, reportKey,
	algName string, eps float64, rounds int, seed uint64, distr bool,
	count, workers, shards, parallel int, strat locsample.ShardStrategy, jsonOut, verbose bool) {
	alg, err := parseAlg(algName)
	if err != nil {
		fatal(err)
	}
	opts := []locsample.Option{
		locsample.WithAlgorithm(alg),
		locsample.WithEpsilon(eps),
		locsample.WithSeed(seed),
	}
	if rounds > 0 {
		opts = append(opts, locsample.WithRounds(rounds))
	}
	if roundsAuto {
		opts = append(opts, locsample.WithRoundsAuto())
	}
	if distr {
		opts = append(opts, locsample.Distributed())
	}
	if shards > 1 {
		opts = append(opts, locsample.WithShards(shards), locsample.WithShardStrategy(strat))
	}
	if parallel > 1 {
		opts = append(opts, locsample.WithParallelRounds(parallel))
	}

	if count > 1 {
		runBatch(g, m, graphKind, modelDesc, alg, count, workers, parallel, eps, seed, opts, jsonOut, verbose)
		return
	}

	var (
		res       *locsample.Result
		diagnosis *locsample.Diagnosis
		capRounds int
	)
	if traceOut != "" || diagOut || roundsAuto {
		// Paths that need a Sampler: tracing, diagnosed draws, and auto
		// budgets (CapRounds lives on the sampler, not the result).
		s, err := locsample.NewSampler(m, opts...)
		if err != nil {
			fatal(err)
		}
		capRounds = s.CapRounds()
		switch {
		case diagOut:
			res, diagnosis, err = s.SampleDiagnosed()
		case traceOut != "":
			var tr *locsample.Trace
			res, tr, err = s.SampleTraced()
			if err == nil {
				writeTraceFile(traceOut, tr)
			}
		default:
			res, err = s.Sample()
		}
		s.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		res, err = locsample.Sample(m, opts...)
		if err != nil {
			fatal(err)
		}
	}

	if jsonOut {
		r := newJSONReport(g, graphKind, modelDesc, alg.String(), seed)
		r.Rounds = res.Rounds
		r.TheoryRounds = res.TheoryRounds
		r.Count = 1
		r.CapRounds = capRounds
		r.Diagnosis = diagnosis
		if distr {
			r.Stats = &res.Stats
		}
		if res.Shard != nil {
			r.Shards = res.Shard.Shards
			r.ShardStats = res.Shard
		}
		if parallel > 1 {
			r.Parallel = parallel
		}
		r.Samples = [][]int{res.Sample}
		emitJSON(r)
		return
	}
	fmt.Printf("graph: %s  n=%d  m=%d  Δ=%d\n", graphKind, g.N(), g.M(), g.MaxDeg())
	fmt.Printf("model: %s\n", modelDesc)
	fmt.Printf("algorithm: %v  rounds=%d", alg, res.Rounds)
	switch {
	case roundsAuto:
		fmt.Printf("  (measured by coupling coalescence, cap %d)", capRounds)
	case res.TheoryRounds > 0:
		fmt.Printf("  (theory budget for ε=%g)", eps)
	}
	fmt.Println()
	if diagnosis != nil {
		printDiagnosis(diagnosis)
	}
	if distr {
		fmt.Printf("communication: %d messages, %d bytes total, max message %d bytes\n",
			res.Stats.Messages, res.Stats.Bytes, res.Stats.MaxMessageBytes)
	}
	if res.Shard != nil {
		printShardStats(res.Shard)
	}
	if parallel > 1 {
		fmt.Printf("parallel rounds: %d goroutines per phase\n", parallel)
	}
	report(g, reportKey, res.Sample)
	if verbose {
		fmt.Printf("sample: %v\n", res.Sample)
	}
}

// printShardStats reports the sharded runtime's profile in text mode.
func printShardStats(st *locsample.ShardStats) {
	fmt.Printf("sharding: %d shards, %d boundary messages (%d states), barrier wait %.2fms\n",
		st.Shards, st.BoundaryMessages, st.BoundaryValues, float64(st.BarrierWaitNS)/1e6)
}

func buildGraph(kind string, n, rows, cols, dim, d int, p float64, seed uint64) (*locsample.Graph, error) {
	switch kind {
	case "path":
		return locsample.PathGraph(n), nil
	case "cycle":
		return locsample.CycleGraph(n), nil
	case "grid":
		return locsample.GridGraph(rows, cols), nil
	case "torus":
		return locsample.TorusGraph(rows, cols), nil
	case "complete":
		return locsample.CompleteGraph(n), nil
	case "star":
		return locsample.StarGraph(n), nil
	case "hypercube":
		return locsample.HypercubeGraph(dim), nil
	case "regular":
		return locsample.RandomRegularGraph(n, d, seed)
	case "gnp":
		return locsample.GnpGraph(n, p, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}

func buildModel(g *locsample.Graph, model string, q int, lambda, beta, h float64) (*locsample.Model, string, error) {
	switch model {
	case "coloring":
		if q == 0 {
			q = 3*g.MaxDeg() + 1
		}
		return locsample.NewColoring(g, q), fmt.Sprintf("uniform proper %d-coloring", q), nil
	case "hardcore":
		return locsample.NewHardcore(g, lambda), fmt.Sprintf("hardcore λ=%g (λ_c(Δ)=%g)", lambda, safeLambdaC(g.MaxDeg())), nil
	case "is":
		return locsample.NewIndependentSet(g), "uniform independent set", nil
	case "vc":
		return locsample.NewVertexCover(g), "uniform vertex cover", nil
	case "ising":
		return locsample.NewIsing(g, beta, h), fmt.Sprintf("Ising β=%g h=%g", beta, h), nil
	case "potts":
		if q == 0 {
			q = 3
		}
		return locsample.NewPotts(g, q, beta), fmt.Sprintf("Potts q=%d β=%g", q, beta), nil
	default:
		return nil, "", fmt.Errorf("unknown model %q", model)
	}
}

func safeLambdaC(maxDeg int) float64 {
	if maxDeg < 3 {
		return 0
	}
	return locsample.HardcoreUniquenessThreshold(maxDeg)
}

func parseAlg(s string) (locsample.Algorithm, error) {
	switch strings.ToLower(s) {
	case "glauber":
		return locsample.Glauber, nil
	case "lubyglauber", "luby":
		return locsample.LubyGlauber, nil
	case "localmetropolis", "lm":
		return locsample.LocalMetropolis, nil
	case "scan":
		return locsample.SystematicScan, nil
	case "chromatic":
		return locsample.ChromaticGlauber, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

// reportKeyForFlag maps a -model flag value to a validity-report key.
func reportKeyForFlag(model string) string { return model }

// reportKeyForSpec maps a spec model kind to the same report keys.
func reportKeyForSpec(kind string) string {
	switch kind {
	case "coloring", "listcoloring":
		return "coloring"
	case "hardcore":
		return "hardcore"
	case "independentset":
		return "is"
	case "vertexcover":
		return "vc"
	case "ising", "potts":
		return "ising"
	default:
		return ""
	}
}

func report(g *locsample.Graph, key string, sample []int) {
	switch key {
	case "coloring":
		fmt.Printf("proper coloring: %v\n", g.IsProperColoring(sample))
	case "hardcore", "is":
		size := 0
		for _, s := range sample {
			size += s
		}
		fmt.Printf("independent set: %v  size=%d\n", g.IsIndependentSet(sample), size)
	case "vc":
		size := 0
		for _, s := range sample {
			size += s
		}
		fmt.Printf("vertex cover: %v  size=%d\n", g.IsVertexCover(sample), size)
	case "ising", "potts":
		counts := map[int]int{}
		for _, s := range sample {
			counts[s]++
		}
		fmt.Printf("spin counts: %v\n", counts)
	}
}

func shortHash(h string) string {
	if i := strings.IndexByte(h, ':'); i >= 0 && len(h) > i+13 {
		return h[:i+13]
	}
	return h
}

// runBatch draws count samples through the batch engine and reports
// throughput.
func runBatch(g *locsample.Graph, m *locsample.Model, graphKind, modelDesc string,
	alg locsample.Algorithm, count, workers, parallel int, eps float64, seed uint64,
	opts []locsample.Option, jsonOut, verbose bool) {
	if workers > 0 {
		opts = append(opts, locsample.WithWorkers(workers))
	}
	s, err := locsample.NewSampler(m, opts...)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	batch, err := s.SampleN(count)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if jsonOut {
		r := newJSONReport(g, graphKind, modelDesc, alg.String(), seed)
		r.Rounds = batch.Rounds
		r.TheoryRounds = batch.TheoryRounds
		r.Count = count
		r.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
		if batch.Stats.Messages > 0 {
			r.Stats = &batch.Stats
		}
		if batch.Shard.Shards > 1 {
			r.Shards = batch.Shard.Shards
			r.ShardStats = &batch.Shard
		}
		if parallel > 1 {
			r.Parallel = parallel
		}
		r.Samples = batch.Samples
		emitJSON(r)
		return
	}
	fmt.Printf("graph: %s  n=%d  m=%d  Δ=%d\n", graphKind, g.N(), g.M(), g.MaxDeg())
	fmt.Printf("model: %s\n", modelDesc)
	fmt.Printf("algorithm: %v  rounds=%d", alg, batch.Rounds)
	if batch.TheoryRounds > 0 {
		fmt.Printf("  (theory budget for ε=%g)", eps)
	}
	fmt.Println()
	fmt.Printf("batch: %d samples in %v  (%.1f samples/sec)\n",
		count, elapsed.Round(time.Millisecond), float64(count)/elapsed.Seconds())
	if batch.Stats.Messages > 0 {
		fmt.Printf("communication (all chains): %d messages, %d bytes total, max message %d bytes\n",
			batch.Stats.Messages, batch.Stats.Bytes, batch.Stats.MaxMessageBytes)
	}
	if batch.Shard.Shards > 1 {
		printShardStats(&batch.Shard)
	}
	if parallel > 1 {
		fmt.Printf("parallel rounds: %d goroutines per phase\n", parallel)
	}
	if verbose {
		for i, sample := range batch.Samples {
			fmt.Printf("sample %d: %v\n", i, sample)
		}
	}
}

// runCSP handles weighted-CSP workloads (the -model domset flag and CSP
// specs), which go through the CSP engine rather than Sample. With
// -count > 1 it uses the CSP batch engine: chain i is bit-identical to a
// single draw with seed ChainSeed(seed, i), the same contract as MRF
// batches. -shards runs every chain on the sharded cluster runtime over
// constraint-scope halos and -parallel fans round phases over goroutines —
// both bit-identical to the sequential chain. domset gates the
// dominating-set verdict: it is meaningful only for the domset flag path,
// not for arbitrary q=2 CSP specs.
func runCSP(g *locsample.Graph, c *locsample.CSPModel, init []int, modelDesc string,
	rounds int, seed uint64, distr bool, count, workers, shards, parallel int,
	strat locsample.ShardStrategy, jsonOut, verbose, domset bool) {
	if rounds <= 0 {
		rounds = 200
	}
	var opts []locsample.Option
	if roundsAuto {
		opts = append(opts, locsample.WithRoundsAuto())
	}
	if shards > 1 {
		opts = append(opts, locsample.WithShards(shards), locsample.WithShardStrategy(strat))
	}
	if parallel > 1 {
		opts = append(opts, locsample.WithParallelRounds(parallel))
	}
	if count > 1 {
		if distr {
			fatal(fmt.Errorf("-distributed is not supported with -count > 1 for CSP workloads (batch chains run the centralized replay)"))
		}
		runCSPBatch(g, c, init, modelDesc, rounds, seed, count, workers, parallel, opts, jsonOut, verbose, domset)
		return
	}
	if distr {
		out, stats, err := locsample.SampleCSP(g, c, init, rounds, seed, true, opts...)
		if err != nil {
			fatal(err)
		}
		if jsonOut {
			r := newJSONReport(g, "", modelDesc, "hypergraph lubyglauber", seed)
			r.Graph.Kind = "csp"
			r.Rounds = rounds
			r.Count = 1
			r.Stats = &stats
			r.Samples = [][]int{out}
			emitJSON(r)
			return
		}
		fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDeg())
		fmt.Printf("model: %s\n", modelDesc)
		fmt.Printf("algorithm: hypergraph LubyGlauber, %d chain iterations\n", rounds)
		fmt.Printf("communication: %d LOCAL rounds, %d messages, max message %d bytes\n",
			stats.Rounds, stats.Messages, stats.MaxMessageBytes)
		reportCSP(g, c, out, domset)
		if verbose {
			fmt.Printf("sample: %v\n", out)
		}
		return
	}
	s, err := locsample.NewCSPSampler(g, c, init,
		append([]locsample.Option{locsample.WithRounds(rounds), locsample.WithSeed(seed)}, opts...)...)
	if err != nil {
		fatal(err)
	}
	var (
		out        []int
		shardStats *locsample.ShardStats
		diagnosis  *locsample.Diagnosis
	)
	capRounds := s.CapRounds()
	drawRounds := s.Rounds()
	if diagOut {
		if out, diagnosis, err = s.SampleDiagnosed(); err != nil {
			fatal(err)
		}
	} else if traceOut != "" {
		var tr *locsample.Trace
		out, shardStats, tr, err = s.SampleTraced()
		if err != nil {
			fatal(err)
		}
		writeTraceFile(traceOut, tr)
	} else if out, shardStats, err = s.Sample(); err != nil {
		fatal(err)
	}
	if jsonOut {
		r := newJSONReport(g, "", modelDesc, "hypergraph lubyglauber", seed)
		r.Graph.Kind = "csp"
		r.Rounds = drawRounds
		r.Count = 1
		r.CapRounds = capRounds
		r.Diagnosis = diagnosis
		if shardStats != nil {
			r.Shards = shardStats.Shards
			r.ShardStats = shardStats
		}
		if parallel > 1 {
			r.Parallel = parallel
		}
		r.Samples = [][]int{out}
		emitJSON(r)
		return
	}
	fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDeg())
	fmt.Printf("model: %s\n", modelDesc)
	fmt.Printf("algorithm: hypergraph LubyGlauber, %d chain iterations", drawRounds)
	if roundsAuto {
		fmt.Printf("  (measured by coupling coalescence, cap %d)", capRounds)
	}
	fmt.Println()
	if diagnosis != nil {
		printDiagnosis(diagnosis)
	}
	if shardStats != nil {
		printShardStats(shardStats)
	}
	if parallel > 1 {
		fmt.Printf("parallel rounds: %d goroutines per phase\n", parallel)
	}
	reportCSP(g, c, out, domset)
	if verbose {
		fmt.Printf("sample: %v\n", out)
	}
}

// runCSPBatch draws count CSP samples through the worker-pool batch engine
// and reports throughput, mirroring runBatch for MRFs.
func runCSPBatch(g *locsample.Graph, c *locsample.CSPModel, init []int, modelDesc string,
	rounds int, seed uint64, count, workers, parallel int,
	opts []locsample.Option, jsonOut, verbose, domset bool) {
	sopts := append([]locsample.Option{locsample.WithRounds(rounds), locsample.WithSeed(seed)}, opts...)
	if workers > 0 {
		sopts = append(sopts, locsample.WithWorkers(workers))
	}
	s, err := locsample.NewCSPSampler(g, c, init, sopts...)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	batch, err := s.SampleNFrom(seed, count)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	samples := batch.Samples
	if jsonOut {
		r := newJSONReport(g, "", modelDesc, "hypergraph lubyglauber", seed)
		r.Graph.Kind = "csp"
		r.Rounds = rounds
		r.Count = count
		r.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
		if batch.Shard.Shards > 1 {
			r.Shards = batch.Shard.Shards
			r.ShardStats = &batch.Shard
		}
		if parallel > 1 {
			r.Parallel = parallel
		}
		r.Samples = samples
		emitJSON(r)
		return
	}
	fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDeg())
	fmt.Printf("model: %s\n", modelDesc)
	fmt.Printf("algorithm: hypergraph LubyGlauber, %d chain iterations\n", rounds)
	fmt.Printf("batch: %d samples in %v  (%.1f samples/sec)\n",
		count, elapsed.Round(time.Millisecond), float64(count)/elapsed.Seconds())
	if batch.Shard.Shards > 1 {
		printShardStats(&batch.Shard)
	}
	if parallel > 1 {
		fmt.Printf("parallel rounds: %d goroutines per phase\n", parallel)
	}
	if verbose {
		for i, out := range samples {
			fmt.Printf("sample %d: %v\n", i, out)
		}
	}
	reportCSP(g, c, samples[len(samples)-1], domset)
}

// reportCSP prints the validity verdict for one CSP sample.
func reportCSP(g *locsample.Graph, c *locsample.CSPModel, out []int, domset bool) {
	if domset {
		size := 0
		for _, x := range out {
			size += x
		}
		fmt.Printf("dominating: %v  size=%d\n", g.IsDominatingSet(out), size)
	} else {
		fmt.Printf("feasible: %v\n", c.Feasible(out))
	}
}

// traceOut is the -trace flag: a path to write the single draw's Chrome
// trace-event JSON to ("" = tracing off). diagOut is the -diag flag
// (diagnosed draw with coalescence report) and roundsAuto the
// -rounds auto spelling (coupling-measured round budget); all three are
// resolved once in main.
var (
	traceOut   string
	diagOut    bool
	roundsAuto bool
)

// printDiagnosis reports a diagnosed draw's coalescence verdict in text
// mode.
func printDiagnosis(d *locsample.Diagnosis) {
	if d.Coalesced {
		fmt.Printf("mixing: %d coupled chains coalesced at round %d  (measured budget %d, ran %d, cap %d)\n",
			d.Chains, d.CoalescenceRound, d.MeasuredRounds, d.Rounds, d.MaxRounds)
		return
	}
	final := 0
	if n := len(d.Series.Disagree); n > 0 {
		final = d.Series.Disagree[n-1]
	}
	fmt.Printf("mixing: %d coupled chains did NOT coalesce within %d rounds  (final disagreement %d sites)\n",
		d.Chains, d.Rounds, final)
}

// writeTraceFile exports a recorded trace as Chrome trace-event JSON.
func writeTraceFile(path string, tr *locsample.Trace) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lsample: trace %s written to %s\n", tr.ID, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsample:", err)
	os.Exit(1)
}
