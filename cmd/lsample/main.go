// Command lsample draws samples from a Gibbs distribution with the paper's
// distributed algorithms and reports round/message statistics. With
// -count > 1 it uses the batch engine: the model is compiled once and the
// chains are spread over a worker pool.
//
// Examples:
//
//	lsample -graph grid -rows 16 -cols 16 -model coloring -q 12 -alg localmetropolis -distributed
//	lsample -graph regular -n 100 -d 6 -model hardcore -lambda 0.5 -alg lubyglauber -eps 0.01
//	lsample -graph cycle -n 64 -model ising -beta 1.4 -alg glauber -rounds 5000
//	lsample -graph grid -rows 64 -cols 64 -model coloring -count 256 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"locsample"
)

func main() {
	var (
		graphKind = flag.String("graph", "grid", "graph family: path|cycle|grid|torus|complete|star|hypercube|regular|gnp")
		n         = flag.Int("n", 64, "vertex count (path/cycle/complete/star/regular/gnp)")
		rows      = flag.Int("rows", 8, "grid/torus rows")
		cols      = flag.Int("cols", 8, "grid/torus cols")
		dim       = flag.Int("dim", 6, "hypercube dimension")
		d         = flag.Int("d", 4, "regular-graph degree")
		p         = flag.Float64("p", 0.1, "G(n,p) edge probability")
		model     = flag.String("model", "coloring", "model: coloring|hardcore|is|vc|ising|potts|domset")
		q         = flag.Int("q", 0, "colors / Potts states (default 3Δ+1 for coloring)")
		lambda    = flag.Float64("lambda", 1, "hardcore fugacity")
		beta      = flag.Float64("beta", 1.5, "Ising/Potts edge parameter")
		field     = flag.Float64("h", 1, "Ising field")
		algName   = flag.String("alg", "localmetropolis", "algorithm: glauber|lubyglauber|localmetropolis|scan|chromatic")
		eps       = flag.Float64("eps", 0.05, "total-variation target for the automatic round budget")
		rounds    = flag.Int("rounds", 0, "override the round budget (0 = use theory)")
		seed      = flag.Uint64("seed", 1, "random seed")
		distr     = flag.Bool("distributed", false, "run on the LOCAL-model runtime and report message stats")
		count     = flag.Int("count", 1, "number of independent samples (batch engine when > 1)")
		workers   = flag.Int("workers", 0, "worker goroutines for -count > 1 (0 = GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "print the full sample")
	)
	flag.Parse()

	g, err := buildGraph(*graphKind, *n, *rows, *cols, *dim, *d, *p, *seed)
	if err != nil {
		fatal(err)
	}
	if *model == "domset" {
		if *count > 1 {
			fatal(fmt.Errorf("-count is not supported for -model domset (the CSP sampler has no batch engine yet)"))
		}
		runDominatingSet(g, *lambda, *rounds, *seed, *distr, *verbose)
		return
	}
	m, modelDesc, err := buildModel(g, *model, *q, *lambda, *beta, *field)
	if err != nil {
		fatal(err)
	}
	alg, err := parseAlg(*algName)
	if err != nil {
		fatal(err)
	}

	opts := []locsample.Option{
		locsample.WithAlgorithm(alg),
		locsample.WithEpsilon(*eps),
		locsample.WithSeed(*seed),
	}
	if *rounds > 0 {
		opts = append(opts, locsample.WithRounds(*rounds))
	}
	if *distr {
		opts = append(opts, locsample.Distributed())
	}

	if *count > 1 {
		runBatch(g, m, *graphKind, modelDesc, alg, *count, *workers, *eps, opts, *verbose)
		return
	}

	res, err := locsample.Sample(m, opts...)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("graph: %s  n=%d  m=%d  Δ=%d\n", *graphKind, g.N(), g.M(), g.MaxDeg())
	fmt.Printf("model: %s\n", modelDesc)
	fmt.Printf("algorithm: %v  rounds=%d", alg, res.Rounds)
	if res.TheoryRounds > 0 {
		fmt.Printf("  (theory budget for ε=%g)", *eps)
	}
	fmt.Println()
	if *distr {
		fmt.Printf("communication: %d messages, %d bytes total, max message %d bytes\n",
			res.Stats.Messages, res.Stats.Bytes, res.Stats.MaxMessageBytes)
	}
	report(g, *model, res.Sample)
	if *verbose {
		fmt.Printf("sample: %v\n", res.Sample)
	}
}

func buildGraph(kind string, n, rows, cols, dim, d int, p float64, seed uint64) (*locsample.Graph, error) {
	switch kind {
	case "path":
		return locsample.PathGraph(n), nil
	case "cycle":
		return locsample.CycleGraph(n), nil
	case "grid":
		return locsample.GridGraph(rows, cols), nil
	case "torus":
		return locsample.TorusGraph(rows, cols), nil
	case "complete":
		return locsample.CompleteGraph(n), nil
	case "star":
		return locsample.StarGraph(n), nil
	case "hypercube":
		return locsample.HypercubeGraph(dim), nil
	case "regular":
		return locsample.RandomRegularGraph(n, d, seed)
	case "gnp":
		return locsample.GnpGraph(n, p, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}

func buildModel(g *locsample.Graph, model string, q int, lambda, beta, h float64) (*locsample.Model, string, error) {
	switch model {
	case "coloring":
		if q == 0 {
			q = 3*g.MaxDeg() + 1
		}
		return locsample.NewColoring(g, q), fmt.Sprintf("uniform proper %d-coloring", q), nil
	case "hardcore":
		return locsample.NewHardcore(g, lambda), fmt.Sprintf("hardcore λ=%g (λ_c(Δ)=%g)", lambda, safeLambdaC(g.MaxDeg())), nil
	case "is":
		return locsample.NewIndependentSet(g), "uniform independent set", nil
	case "vc":
		return locsample.NewVertexCover(g), "uniform vertex cover", nil
	case "ising":
		return locsample.NewIsing(g, beta, h), fmt.Sprintf("Ising β=%g h=%g", beta, h), nil
	case "potts":
		if q == 0 {
			q = 3
		}
		return locsample.NewPotts(g, q, beta), fmt.Sprintf("Potts q=%d β=%g", q, beta), nil
	default:
		return nil, "", fmt.Errorf("unknown model %q", model)
	}
}

func safeLambdaC(maxDeg int) float64 {
	if maxDeg < 3 {
		return 0
	}
	return locsample.HardcoreUniquenessThreshold(maxDeg)
}

func parseAlg(s string) (locsample.Algorithm, error) {
	switch strings.ToLower(s) {
	case "glauber":
		return locsample.Glauber, nil
	case "lubyglauber", "luby":
		return locsample.LubyGlauber, nil
	case "localmetropolis", "lm":
		return locsample.LocalMetropolis, nil
	case "scan":
		return locsample.SystematicScan, nil
	case "chromatic":
		return locsample.ChromaticGlauber, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func report(g *locsample.Graph, model string, sample []int) {
	switch model {
	case "coloring":
		fmt.Printf("proper coloring: %v\n", g.IsProperColoring(sample))
	case "hardcore", "is":
		size := 0
		for _, s := range sample {
			size += s
		}
		fmt.Printf("independent set: %v  size=%d\n", g.IsIndependentSet(sample), size)
	case "vc":
		size := 0
		for _, s := range sample {
			size += s
		}
		fmt.Printf("vertex cover: %v  size=%d\n", g.IsVertexCover(sample), size)
	case "ising", "potts":
		counts := map[int]int{}
		for _, s := range sample {
			counts[s]++
		}
		fmt.Printf("spin counts: %v\n", counts)
	}
}

// runBatch draws count samples through the batch engine and reports
// throughput.
func runBatch(g *locsample.Graph, m *locsample.Model, graphKind, modelDesc string,
	alg locsample.Algorithm, count, workers int, eps float64, opts []locsample.Option, verbose bool) {
	if workers > 0 {
		opts = append(opts, locsample.WithWorkers(workers))
	}
	s, err := locsample.NewSampler(m, opts...)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	batch, err := s.SampleN(count)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("graph: %s  n=%d  m=%d  Δ=%d\n", graphKind, g.N(), g.M(), g.MaxDeg())
	fmt.Printf("model: %s\n", modelDesc)
	fmt.Printf("algorithm: %v  rounds=%d", alg, batch.Rounds)
	if batch.TheoryRounds > 0 {
		fmt.Printf("  (theory budget for ε=%g)", eps)
	}
	fmt.Println()
	fmt.Printf("batch: %d samples in %v  (%.1f samples/sec)\n",
		count, elapsed.Round(time.Millisecond), float64(count)/elapsed.Seconds())
	if batch.Stats.Messages > 0 {
		fmt.Printf("communication (all chains): %d messages, %d bytes total, max message %d bytes\n",
			batch.Stats.Messages, batch.Stats.Bytes, batch.Stats.MaxMessageBytes)
	}
	if verbose {
		for i, sample := range batch.Samples {
			fmt.Printf("sample %d: %v\n", i, sample)
		}
	}
}

// runDominatingSet handles the weighted-CSP model, which goes through
// SampleCSP rather than Sample.
func runDominatingSet(g *locsample.Graph, lambda float64, rounds int, seed uint64, distr, verbose bool) {
	c := locsample.NewWeightedDominatingSet(g, lambda)
	init := make([]int, g.N())
	for i := range init {
		init[i] = 1
	}
	if rounds <= 0 {
		rounds = 200
	}
	out, stats, err := locsample.SampleCSP(g, c, init, rounds, seed, distr)
	if err != nil {
		fatal(err)
	}
	size := 0
	for _, x := range out {
		size += x
	}
	fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDeg())
	fmt.Printf("model: dominating set λ=%g (weighted local CSP)\n", lambda)
	fmt.Printf("algorithm: hypergraph LubyGlauber, %d chain iterations\n", rounds)
	if distr {
		fmt.Printf("communication: %d LOCAL rounds, %d messages, max message %d bytes\n",
			stats.Rounds, stats.Messages, stats.MaxMessageBytes)
	}
	fmt.Printf("dominating: %v  size=%d\n", g.IsDominatingSet(out), size)
	if verbose {
		fmt.Printf("sample: %v\n", out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsample:", err)
	os.Exit(1)
}
