// Command lsharded is a shard-hosting worker for cross-process sampling.
// A coordinator — locsample.WithRemoteWorkers, typically an lserved
// started with -workers — sends it a job (the model's wire spec plus the
// shard-plan parameters) over a control connection; the worker rebuilds
// the model and plan deterministically, meshes up with its peer workers
// over TCP, and serves lockstep draws until the coordinator disconnects.
// Draws are byte-identical to centralized runs of the same spec and seed.
//
// Example (a two-worker fleet behind one server):
//
//	lsharded -addr 127.0.0.1:9471 &
//	lsharded -addr 127.0.0.1:9472 &
//	lserved -addr :8473 -workers 127.0.0.1:9471,127.0.0.1:9472
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"locsample/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:0", "listen address (control and peer mesh share it)")
		readyTimeout = flag.Duration("ready-timeout", 30*time.Second, "job setup deadline (model build + mesh dial)")
		recvTimeout  = flag.Duration("recv-timeout", 60*time.Second, "per-round boundary receive deadline")
		quiet        = flag.Bool("quiet", false, "suppress per-job logs")
	)
	flag.Parse()

	logf := log.New(os.Stderr, "lsharded: ", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	w, err := service.NewWorker(*addr, service.WorkerConfig{
		ReadyTimeout: *readyTimeout,
		RecvTimeout:  *recvTimeout,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lsharded: %v\n", err)
		os.Exit(1)
	}
	// The bound address goes to stdout (and is the only stdout output), so
	// scripts spawning "-addr 127.0.0.1:0" can scrape the chosen port.
	fmt.Printf("lsharded: listening on %s\n", w.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	if err := w.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "lsharded: close: %v\n", err)
		os.Exit(1)
	}
}
