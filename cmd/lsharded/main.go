// Command lsharded is a shard-hosting worker for cross-process sampling.
// A coordinator — locsample.WithRemoteWorkers, typically an lserved
// started with -workers — sends it a job (the model's wire spec plus the
// shard-plan parameters) over a control connection; the worker rebuilds
// the model and plan deterministically, meshes up with its peer workers
// over TCP, and serves lockstep draws until the coordinator disconnects.
// Draws are byte-identical to centralized runs of the same spec and seed.
//
// Example (a two-worker fleet behind one server):
//
//	lsharded -addr 127.0.0.1:9471 -debug-addr 127.0.0.1:9571 &
//	lsharded -addr 127.0.0.1:9472 -debug-addr 127.0.0.1:9572 &
//	lserved -addr :8473 -workers 127.0.0.1:9471,127.0.0.1:9472
//
// -debug-addr serves /metrics (Prometheus text format), /healthz, and
// /debug/pprof/. On SIGTERM/SIGINT the worker drains: /healthz flips to
// 503, new jobs are rejected, and hosted jobs get -drain-timeout to
// finish before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"locsample/internal/obs"
	"locsample/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:0", "listen address (control and peer mesh share it)")
		debugAddr    = flag.String("debug-addr", "", "debug listen address for /metrics, /healthz, /debug/pprof (empty: disabled)")
		readyTimeout = flag.Duration("ready-timeout", 30*time.Second, "job setup deadline (model build + mesh dial)")
		recvTimeout  = flag.Duration("recv-timeout", 60*time.Second, "per-round boundary receive deadline")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "how long hosted jobs may finish after SIGTERM before hard close")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		quiet        = flag.Bool("quiet", false, "suppress all logs (overrides -log-level)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel), "lsharded")
	if *quiet {
		logger = obs.NopLogger()
	}
	registry := obs.NewRegistry()
	obs.RegisterBuildInfo(registry, "lsharded")
	w, err := service.NewWorker(*addr, service.WorkerConfig{
		ReadyTimeout: *readyTimeout,
		RecvTimeout:  *recvTimeout,
		Log:          logger,
		Obs:          registry,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lsharded: %v\n", err)
		os.Exit(1)
	}
	// The bound address goes to stdout (and is the only stdout output), so
	// scripts spawning "-addr 127.0.0.1:0" can scrape the chosen port.
	fmt.Printf("lsharded: listening on %s\n", w.Addr())

	var debugSrv *http.Server
	if *debugAddr != "" {
		mux := http.NewServeMux()
		obs.RegisterDebug(mux, registry, nil, nil)
		mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
			if w.Draining() {
				http.Error(rw, "draining", http.StatusServiceUnavailable)
				return
			}
			rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(rw, "ok")
		})
		debugSrv = &http.Server{Addr: *debugAddr, Handler: mux}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug server listening", "addr", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	// Graceful drain: refuse new jobs, give hosted ones until the drain
	// deadline, then hard-close whatever is left.
	w.Drain()
	logger.Info("draining", "active_jobs", w.ActiveJobs(), "timeout", *drainTimeout)
	deadline := time.Now().Add(*drainTimeout)
	for w.ActiveJobs() > 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := w.ActiveJobs(); n > 0 {
		logger.Warn("drain deadline expired", "active_jobs", n)
	}
	if debugSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		debugSrv.Shutdown(shCtx)
		cancel()
	}
	if err := w.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "lsharded: close: %v\n", err)
		os.Exit(1)
	}
	logger.Info("stopped")
}
