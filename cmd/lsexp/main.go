// Command lsexp regenerates the experiment tables of the reproduction suite
// (see DESIGN.md §4 and EXPERIMENTS.md): one experiment per theorem of
// "What can be sampled locally?".
//
// Usage:
//
//	lsexp            # run everything (full parameters)
//	lsexp -quick     # run everything with reduced parameters
//	lsexp E3 E4 E8   # run selected experiments
//	lsexp -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"locsample/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced parameter sets (faster, same shapes)")
	list := flag.Bool("list", false, "list experiments (E1–E14) and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if args := flag.Args(); len(args) > 0 {
		for _, id := range args {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "lsexp: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	} else {
		selected = experiments.All()
	}

	for _, e := range selected {
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "lsexp: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
