package locsample_test

import (
	"fmt"

	"locsample"
)

// ExampleSample draws a proper coloring of a cycle with the LocalMetropolis
// protocol and verifies it.
func ExampleSample() {
	g := locsample.CycleGraph(16)
	model := locsample.NewColoring(g, 8) // q = 4Δ: inside Theorem 1.2's regime

	res, err := locsample.Sample(model,
		locsample.WithAlgorithm(locsample.LocalMetropolis),
		locsample.WithSeed(1),
		locsample.WithRounds(50),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("proper:", g.IsProperColoring(res.Sample))
	fmt.Println("rounds:", res.Rounds)
	// Output:
	// proper: true
	// rounds: 50
}

// ExampleSample_distributed runs the same sampler as a message-passing
// protocol; the trajectory is identical for the same seed.
func ExampleSample_distributed() {
	g := locsample.CycleGraph(16)
	model := locsample.NewColoring(g, 8)

	central, _ := locsample.Sample(model,
		locsample.WithSeed(7), locsample.WithRounds(30))
	distributed, _ := locsample.Sample(model,
		locsample.WithSeed(7), locsample.WithRounds(30), locsample.Distributed())

	same := true
	for v := range central.Sample {
		if central.Sample[v] != distributed.Sample[v] {
			same = false
		}
	}
	fmt.Println("identical trajectories:", same)
	fmt.Println("max message bytes:", distributed.Stats.MaxMessageBytes)
	// Output:
	// identical trajectories: true
	// max message bytes: 4
}

// ExampleTheoryRounds shows the paper's round budgets: the LocalMetropolis
// bound is Δ-free while the LubyGlauber bound grows with Δ.
func ExampleTheoryRounds() {
	g := locsample.TorusGraph(8, 8) // Δ = 4
	model := locsample.NewColoring(g, 16)

	lg, _ := locsample.TheoryRounds(model, locsample.LubyGlauber, 0.01)
	lm, _ := locsample.TheoryRounds(model, locsample.LocalMetropolis, 0.01)
	fmt.Println("LocalMetropolis budget below LubyGlauber:", lm < lg)
	// Output:
	// LocalMetropolis budget below LubyGlauber: true
}

// ExampleNewHardcore samples independent sets below the uniqueness
// threshold, where local sampling is tractable.
func ExampleNewHardcore() {
	g := locsample.GridGraph(6, 6)
	lambdaC := locsample.HardcoreUniquenessThreshold(g.MaxDeg())
	model := locsample.NewHardcore(g, 0.5) // 0.5 < λ_c(4) = 27/16

	res, err := locsample.Sample(model,
		locsample.WithAlgorithm(locsample.LubyGlauber),
		locsample.WithSeed(3),
		locsample.WithRounds(300))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("below threshold:", 0.5 < lambdaC)
	fmt.Println("independent:", g.IsIndependentSet(res.Sample))
	// Output:
	// below threshold: true
	// independent: true
}

// ExampleSampleCSP samples a uniform dominating set — a weighted local CSP
// beyond pairwise MRFs — over the distributed runtime.
func ExampleSampleCSP() {
	g := locsample.CycleGraph(10)
	c := locsample.NewDominatingSet(g)
	init := make([]int, g.N())
	for i := range init {
		init[i] = 1
	}
	out, _, err := locsample.SampleCSP(g, c, init, 50, 9, true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("dominating:", g.IsDominatingSet(out))
	// Output:
	// dominating: true
}
