package locsample_test

import (
	"reflect"
	"testing"

	"locsample"
)

// TestWithParallelRoundsBitIdentical pins the vertex-parallel mode's
// contract at the public API: SampleN over a parallel-rounds sampler equals
// SampleN over a sequential one, chain for chain and byte for byte, at every
// worker count.
func TestWithParallelRoundsBitIdentical(t *testing.T) {
	g := locsample.GridGraph(11, 13)
	for _, tc := range []struct {
		name string
		m    *locsample.Model
		alg  locsample.Algorithm
	}{
		{"coloring-lm", locsample.NewColoring(g, 13), locsample.LocalMetropolis},
		{"ising-lm", locsample.NewIsing(g, 0.3, 0.9), locsample.LocalMetropolis},
		{"ising-luby", locsample.NewIsing(g, 0.3, 0.9), locsample.LubyGlauber},
	} {
		base, err := locsample.NewSampler(tc.m,
			locsample.WithAlgorithm(tc.alg), locsample.WithSeed(5), locsample.WithRounds(25))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := base.SampleN(6)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, par := range []int{2, 3, 8} {
			s, err := locsample.NewSampler(tc.m,
				locsample.WithAlgorithm(tc.alg), locsample.WithSeed(5), locsample.WithRounds(25),
				locsample.WithParallelRounds(par))
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", tc.name, par, err)
			}
			if s.ParallelRounds() != par {
				t.Fatalf("%s: ParallelRounds() = %d, want %d", tc.name, s.ParallelRounds(), par)
			}
			got, err := s.SampleN(6)
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", tc.name, par, err)
			}
			if !reflect.DeepEqual(got.Samples, want.Samples) {
				t.Fatalf("%s parallel=%d: parallel batch diverges from sequential", tc.name, par)
			}
		}
	}
}

// TestWithParallelRoundsDefaultsToGOMAXPROCS: n <= 0 resolves to GOMAXPROCS
// at option-application time.
func TestWithParallelRoundsDefaultsToGOMAXPROCS(t *testing.T) {
	m := locsample.NewColoring(locsample.GridGraph(6, 6), 13)
	s, err := locsample.NewSampler(m, locsample.WithRounds(5), locsample.WithParallelRounds(0))
	if err != nil {
		t.Fatal(err)
	}
	if s.ParallelRounds() < 1 {
		t.Fatalf("ParallelRounds() = %d after WithParallelRounds(0)", s.ParallelRounds())
	}
}

// TestWithParallelRoundsRejects: the sequential baselines and the other two
// runtimes are rejected at compile time.
func TestWithParallelRoundsRejects(t *testing.T) {
	m := locsample.NewColoring(locsample.GridGraph(6, 6), 13)
	if _, err := locsample.NewSampler(m,
		locsample.WithAlgorithm(locsample.Glauber), locsample.WithRounds(5),
		locsample.WithParallelRounds(4)); err == nil {
		t.Fatal("Glauber accepted parallel rounds")
	}
	if _, err := locsample.NewSampler(m,
		locsample.WithRounds(5), locsample.WithShards(2),
		locsample.WithParallelRounds(4)); err == nil {
		t.Fatal("WithShards + WithParallelRounds accepted")
	}
	if _, err := locsample.NewSampler(m,
		locsample.WithRounds(5), locsample.Distributed(),
		locsample.WithParallelRounds(4)); err == nil {
		t.Fatal("Distributed + WithParallelRounds accepted")
	}
	if _, err := locsample.Sample(m,
		locsample.WithRounds(5), locsample.WithAlgorithm(locsample.SystematicScan),
		locsample.WithParallelRounds(4)); err == nil {
		t.Fatal("package-level Sample accepted SystematicScan parallel rounds")
	}
}

// TestSampleWithParallelRounds: the package-level Sample agrees with the
// sequential path under parallel rounds.
func TestSampleWithParallelRounds(t *testing.T) {
	m := locsample.NewColoring(locsample.GridGraph(9, 9), 13)
	want, err := locsample.Sample(m, locsample.WithSeed(3), locsample.WithRounds(20))
	if err != nil {
		t.Fatal(err)
	}
	got, err := locsample.Sample(m, locsample.WithSeed(3), locsample.WithRounds(20),
		locsample.WithParallelRounds(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sample, want.Sample) {
		t.Fatal("parallel-rounds Sample diverges from sequential Sample")
	}
}
