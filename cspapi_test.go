package locsample_test

import (
	"testing"

	"locsample"
)

func TestSampleCSPDominatingSet(t *testing.T) {
	g := locsample.GridGraph(4, 4)
	c := locsample.NewDominatingSet(g)
	init := make([]int, g.N())
	for i := range init {
		init[i] = 1
	}
	// Centralized and distributed must agree exactly (same PRF keys).
	central, _, err := locsample.SampleCSP(g, c, init, 40, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	distr, stats, err := locsample.SampleCSP(g, c, init, 40, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	for v := range central {
		if central[v] != distr[v] {
			t.Fatalf("CSP modes disagree at vertex %d", v)
		}
	}
	if !g.IsDominatingSet(distr) {
		t.Fatal("sample is not a dominating set")
	}
	if stats.Rounds != 81 { // 2 rounds per iteration + halting round
		t.Fatalf("rounds = %d, want 81", stats.Rounds)
	}
}

func TestSampleCSPErrors(t *testing.T) {
	g := locsample.PathGraph(3)
	c := locsample.NewDominatingSet(g)
	good := []int{1, 1, 1}
	if _, _, err := locsample.SampleCSP(g, c, good, 0, 1, false); err == nil {
		t.Fatal("rounds=0 accepted")
	}
	if _, _, err := locsample.SampleCSP(g, c, []int{1}, 5, 1, false); err == nil {
		t.Fatal("short init accepted")
	}
	if _, _, err := locsample.SampleCSP(g, c, []int{0, 0, 0}, 5, 1, false); err == nil {
		t.Fatal("infeasible init accepted")
	}
}

func TestNewWeightedDominatingSet(t *testing.T) {
	g := locsample.CycleGraph(5)
	c := locsample.NewWeightedDominatingSet(g, 0.5)
	// Smaller sets are favoured: long-run mean size under λ=0.5 should be
	// below the λ=2 mean.
	meanSize := func(c *locsample.CSPModel, seed uint64) float64 {
		init := []int{1, 1, 1, 1, 1}
		total := 0
		const samples = 400
		for s := 0; s < samples; s++ {
			out, _, err := locsample.SampleCSP(g, c, init, 60, seed+uint64(s), false)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range out {
				total += x
			}
		}
		return float64(total) / samples
	}
	light := meanSize(c, 1)
	heavy := meanSize(locsample.NewWeightedDominatingSet(g, 2), 100000)
	if light >= heavy {
		t.Fatalf("λ=0.5 mean size %v should be below λ=2 mean %v", light, heavy)
	}
}

func TestNewCSPCustom(t *testing.T) {
	// Custom CSP through the public API: "not-all-equal" on a triangle's
	// vertices with q=2 (proper 2-colorings of a hyperedge).
	cons := []locsample.CSPConstraint{{
		Scope: []int32{0, 1, 2},
		F: func(v []int) float64 {
			if v[0] == v[1] && v[1] == v[2] {
				return 0
			}
			return 1
		},
	}}
	b := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	c, err := locsample.NewCSP(3, 2, b, cons)
	if err != nil {
		t.Fatal(err)
	}
	g := locsample.CompleteGraph(3)
	out, _, err := locsample.SampleCSP(g, c, []int{0, 1, 0}, 50, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] == out[1] && out[1] == out[2] {
		t.Fatal("monochromatic output from NAE constraint")
	}
}
