package locsample_test

// Cancellation contract for the context-taking draw paths: a canceled
// context must stop a draw on every execution path — centralized,
// in-process sharded, and batch, for MRF and CSP alike — returning the
// context's error and never a partial sample. An unconcerned
// background context must change nothing: the draw stays bit-identical
// to the non-context entry points.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"locsample"
)

func TestSampleContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	g := locsample.GridGraph(6, 6)
	m := locsample.NewColoring(g, 3*g.MaxDeg())

	for _, shards := range []int{0, 3} {
		opts := []locsample.Option{locsample.WithRounds(10), locsample.WithSeed(3)}
		if shards > 0 {
			opts = append(opts, locsample.WithShards(shards))
		}
		s, err := locsample.NewSampler(m, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.SampleContext(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: SampleContext = %v, want context.Canceled", shards, err)
		}
		if _, err := s.SampleNContext(ctx, 3, 2); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: SampleNContext = %v, want context.Canceled", shards, err)
		}
		if _, _, err := s.SampleTracedContext(ctx, 3); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: SampleTracedContext = %v, want context.Canceled", shards, err)
		}
		s.Close()
	}

	c := locsample.NewDominatingSet(g)
	init := make([]int, c.N)
	for i := range init {
		init[i] = 1
	}
	for _, shards := range []int{0, 3} {
		opts := []locsample.Option{locsample.WithRounds(10), locsample.WithSeed(3)}
		if shards > 0 {
			opts = append(opts, locsample.WithShards(shards))
		}
		s, err := locsample.NewCSPSampler(g, c, init, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.SampleContext(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("csp shards=%d: SampleContext = %v, want context.Canceled", shards, err)
		}
		if _, err := s.SampleNContext(ctx, 3, 2); !errors.Is(err, context.Canceled) {
			t.Fatalf("csp shards=%d: SampleNContext = %v, want context.Canceled", shards, err)
		}
		s.Close()
	}
}

// A live context must be invisible: context draws match their plain
// counterparts byte for byte, and the sampler remains reusable.
func TestSampleContextBackgroundBitIdentical(t *testing.T) {
	ctx := context.Background()
	g := locsample.GridGraph(7, 5)
	m := locsample.NewColoring(g, 3*g.MaxDeg())
	s, err := locsample.NewSampler(m,
		locsample.WithRounds(12), locsample.WithSeed(11), locsample.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	plain, err := s.SampleNFrom(11, 2)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := s.SampleNContext(ctx, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withCtx.Samples, plain.Samples) {
		t.Fatal("context batch diverges from plain batch")
	}

	// The sampler still works after a canceled draw: poisoned engines
	// must never be returned to the pool.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.SampleNContext(canceled, 11, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch = %v, want context.Canceled", err)
	}
	again, err := s.SampleNFrom(11, 2)
	if err != nil {
		t.Fatalf("sampler unusable after a canceled draw: %v", err)
	}
	if !reflect.DeepEqual(again.Samples, plain.Samples) {
		t.Fatal("post-cancel batch diverges")
	}
}
