// Package locsample is a Go implementation of the distributed sampling
// algorithms of Feng, Sun and Yin, "What can be sampled locally?"
// (PODC 2017, arXiv:1702.00142): Markov-chain samplers for Gibbs
// distributions of Markov random fields — proper colorings, the hardcore
// model, Ising/Potts, and general weighted local CSPs — that run in
// Linial's LOCAL model of distributed computation.
//
// Two algorithms are provided, plus classical baselines:
//
//   - LubyGlauber (Algorithm 1): parallelizes single-site Glauber dynamics
//     by resampling a random "Luby step" independent set each round; mixes
//     in O(Δ·log(n/ε)) rounds under Dobrushin's condition (Theorem 3.2).
//   - LocalMetropolis (Algorithm 2): updates every vertex simultaneously
//     with per-edge filtering; for proper q-colorings with q ≥ α·Δ,
//     α > 2+√2, it mixes in O(log(n/ε)) rounds independent of Δ
//     (Theorem 4.2).
//
// Samplers can run either as exact centralized replays or as genuine
// message-passing protocols on the bundled LOCAL-model runtime (goroutine
// per node, synchronized rounds, message-size accounting); the two modes
// produce identical trajectories for identical seeds.
//
// Quick start:
//
//	g := locsample.GridGraph(16, 16)
//	model := locsample.NewColoring(g, 3*g.MaxDeg())
//	res, err := locsample.Sample(model,
//	    locsample.WithAlgorithm(locsample.LocalMetropolis),
//	    locsample.WithEpsilon(0.01),
//	    locsample.WithSeed(42),
//	    locsample.Distributed())
//
// For serving workloads that need many draws, compile the model once with
// NewSampler and use SampleN, which spreads independent chains over a worker
// pool with allocation-free inner loops; chain i of SampleN with seed s is
// bit-identical to Sample with seed ChainSeed(s, i):
//
//	s, err := locsample.NewSampler(model, locsample.WithSeed(42))
//	batch, err := s.SampleN(1024)
//
// The internal packages additionally reproduce the paper's lower bounds
// (Theorems 5.1 and 5.2) and coupling analyses as executable experiments;
// see DESIGN.md and EXPERIMENTS.md, and run cmd/lsexp to regenerate every
// experiment table.
package locsample

import (
	"log/slog"

	"locsample/internal/chains"
	"locsample/internal/core"
	"locsample/internal/diag"
	"locsample/internal/graph"
	"locsample/internal/localmodel"
	"locsample/internal/mrf"
	"locsample/internal/obs"
	"locsample/internal/rng"
	"locsample/internal/transport"
)

// Graph is an immutable undirected multigraph; build one with NewGraphBuilder
// or the *Graph generator functions.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces a Graph.
type GraphBuilder = graph.Builder

// Model is a Markov random field: a graph with per-edge activity matrices
// and per-vertex activity vectors defining a Gibbs distribution (Eq. 1 of
// the paper).
type Model = mrf.MRF

// Activity is a symmetric non-negative q×q edge activity matrix.
type Activity = mrf.Mat

// Algorithm selects a sampling chain.
type Algorithm = chains.Algorithm

// Stats reports a distributed run's communication profile.
type Stats = localmodel.Stats

// Result is a sample plus its provenance.
type Result = core.Result

// Available algorithms.
const (
	// Glauber is the sequential single-site baseline (one vertex per step).
	Glauber = chains.Glauber
	// LubyGlauber is Algorithm 1 of the paper.
	LubyGlauber = chains.LubyGlauber
	// LocalMetropolis is Algorithm 2 of the paper.
	LocalMetropolis = chains.LocalMetropolis
	// SystematicScan is the fixed-order scan baseline.
	SystematicScan = chains.SystematicScan
	// ChromaticGlauber is the chromatic-scheduler baseline of [GLGG11].
	ChromaticGlauber = chains.ChromaticGlauber
)

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// PathGraph returns the path on n vertices.
func PathGraph(n int) *Graph { return graph.Path(n) }

// CycleGraph returns the cycle on n ≥ 3 vertices.
func CycleGraph(n int) *Graph { return graph.Cycle(n) }

// GridGraph returns the r×c grid.
func GridGraph(r, c int) *Graph { return graph.Grid(r, c) }

// TorusGraph returns the r×c torus (4-regular for r, c ≥ 3).
func TorusGraph(r, c int) *Graph { return graph.Torus(r, c) }

// CompleteGraph returns K_n.
func CompleteGraph(n int) *Graph { return graph.Complete(n) }

// StarGraph returns the star with n−1 leaves.
func StarGraph(n int) *Graph { return graph.Star(n) }

// HypercubeGraph returns the k-dimensional hypercube.
func HypercubeGraph(k int) *Graph { return graph.Hypercube(k) }

// CompleteTreeGraph returns the complete d-ary tree of the given depth.
func CompleteTreeGraph(d, depth int) *Graph { return graph.CompleteTree(d, depth) }

// RandomRegularGraph returns a random simple d-regular graph on n vertices
// (n·d must be even, d < n).
func RandomRegularGraph(n, d int, seed uint64) (*Graph, error) {
	return graph.RandomRegular(n, d, rng.New(seed))
}

// GnpGraph returns an Erdős–Rényi G(n, p) sample via the Θ(n²) pairwise
// sweep (the generator the wire codec's "gnp" family is pinned to).
func GnpGraph(n int, p float64, seed uint64) *Graph {
	return graph.Gnp(n, p, rng.New(seed))
}

// SparseGnpGraph returns an Erdős–Rényi G(n, p) sample in expected
// O(n + m) time via geometric edge skipping — the generator for
// million-vertex sparse workloads, where GnpGraph's quadratic sweep cannot
// run. The two generators draw different graphs for the same seed.
func SparseGnpGraph(n int, p float64, seed uint64) *Graph {
	return graph.SparseGnp(n, p, rng.New(seed))
}

// NewColoring returns the uniform proper q-coloring model on g.
func NewColoring(g *Graph, q int) *Model { return mrf.Coloring(g, q) }

// NewListColoring returns the uniform proper list-coloring model; lists[v]
// ⊆ {0..q-1} is the palette of vertex v.
func NewListColoring(g *Graph, q int, lists [][]int) (*Model, error) {
	return mrf.ListColoring(g, q, lists)
}

// NewHardcore returns the hardcore model at fugacity λ (λ = 1 is the
// uniform distribution over independent sets).
func NewHardcore(g *Graph, lambda float64) *Model { return mrf.Hardcore(g, lambda) }

// NewIndependentSet returns the uniform independent-set model.
func NewIndependentSet(g *Graph) *Model { return mrf.UniformIndependentSet(g) }

// NewVertexCover returns the uniform vertex-cover model.
func NewVertexCover(g *Graph) *Model { return mrf.VertexCover(g) }

// NewIsing returns the Ising model with edge parameter β and field h.
func NewIsing(g *Graph, beta, h float64) *Model { return mrf.Ising(g, beta, h) }

// NewPotts returns the q-state Potts model with edge parameter β.
func NewPotts(g *Graph, q int, beta float64) *Model { return mrf.Potts(g, q, beta) }

// NewModel assembles a custom MRF from explicit activities; see mrf.New for
// the validation rules.
func NewModel(g *Graph, q int, edgeActivities []*Activity, vertexActivities [][]float64) (*Model, error) {
	return mrf.New(g, q, edgeActivities, vertexActivities)
}

// NewActivity returns a zero q×q activity matrix.
func NewActivity(q int) *Activity { return mrf.NewMat(q) }

// HardcoreUniquenessThreshold returns λ_c(Δ) = (Δ−1)^(Δ−1)/(Δ−2)^Δ, the
// phase-transition point above which LOCAL sampling requires Ω(diam) rounds
// (Theorem 5.2; Δ ≥ 3).
func HardcoreUniquenessThreshold(maxDeg int) float64 { return mrf.LambdaC(maxDeg) }

// Option configures Sample.
type Option func(*core.Config)

// WithAlgorithm selects the chain (default LocalMetropolis).
func WithAlgorithm(a Algorithm) Option {
	return func(c *core.Config) { c.Algorithm = a }
}

// WithEpsilon sets the total-variation target for the automatic round
// budget.
func WithEpsilon(eps float64) Option {
	return func(c *core.Config) { c.Epsilon = eps }
}

// WithRounds overrides the automatic round budget.
func WithRounds(t int) Option {
	return func(c *core.Config) { c.Rounds = t }
}

// WithSeed makes the run reproducible.
func WithSeed(seed uint64) Option {
	return func(c *core.Config) { c.Seed = seed }
}

// WithInitial supplies the starting configuration (default: greedy
// feasible).
func WithInitial(init []int) Option {
	return func(c *core.Config) { c.Init = init }
}

// WithBatchWidth steers the SoA multi-chain batch engine SampleN and
// SampleCSPN run their centralized chains through: chains are advanced in
// lockstep blocks of W lanes stored [vertex][chain], so one CSR (or
// constraint-incidence) walk serves the whole block. w = 0 (the default)
// auto-picks the width from the batch size and GOMAXPROCS; w = 1 forces
// the per-chain reference path; 2 ≤ w ≤ 64 pins the block width, used
// whenever a batch has at least w chains. Purely a throughput knob:
// batch chain i is bit-identical to Sample(WithSeed(ChainSeed(s, i))) at
// every width. Sharded, vertex-parallel, distributed, and remote batches
// ignore it (those runtimes parallelize within a chain instead).
func WithBatchWidth(w int) Option {
	return func(c *core.Config) { c.BatchWidth = w }
}

// Distributed runs the sampler as a message-passing protocol on the
// LOCAL-model runtime and collects communication statistics. Identical
// seeds give identical samples in both modes.
func Distributed() Option {
	return func(c *core.Config) { c.Distributed = true }
}

// Transport is the boundary fabric a sharded chain's lockstep exchanges
// run over; see internal/transport for the contract (typed errors,
// buffer ownership, close semantics).
type Transport = transport.Transport

// WithTransport overrides the fabric sharded draws exchange boundary
// states over: the factory is invoked per engine with the plan's shard
// adjacency and must return a fresh Transport. The default in-process
// fabric is what the factory form exists to replace in tests — wrapping
// it in a fault injector is how the error paths of sharded draws are
// exercised. Requires WithShards(k ≥ 2); mutually exclusive with
// Distributed, WithParallelRounds, and WithRemoteWorkers.
func WithTransport(factory func(neighbors [][]int) Transport) Option {
	return func(c *core.Config) { c.Transport = factory }
}

// WithRemoteWorkers places a sharded sampler's shards across lsharded
// worker processes (round-robin-contiguous, every worker hosting at
// least one shard) and runs draws as cross-process lockstep rounds over
// TCP. The reassembled configuration is bit-identical to the local
// (and unsharded) chain at the same seed. Requires WithShards(k) with
// k ≥ len(addrs); the model is shipped to the workers as its wire spec
// (WithModelSpec pins it; otherwise it is derived from the model).
func WithRemoteWorkers(addrs ...string) Option {
	return func(c *core.Config) { c.WorkerAddrs = append([]string(nil), addrs...) }
}

// WithStandbyWorkers keeps a pool of spare lsharded workers behind a
// WithRemoteWorkers fleet. When a draw fails on a worker — it was
// killed, stalled past the result deadline, or dropped its connection —
// the coordinator tears the session down, swaps the next standby into
// the dead worker's slot of the address list, re-ships the job, and
// redraws. Because every shard's state is a pure function of
// (spec, plan, seed), the recovered draw is bit-identical to the
// fault-free one. Requires WithRemoteWorkers.
func WithStandbyWorkers(addrs ...string) Option {
	return func(c *core.Config) { c.StandbyAddrs = append([]string(nil), addrs...) }
}

// RetryPolicy tunes the cross-process coordinator's failure handling:
// attempt budget, jittered exponential backoff, per-stage control
// deadlines, and the supervisor heartbeat interval. Zero fields take
// defaults; the zero policy is the historical retry-once behavior.
type RetryPolicy = core.RetryPolicy

// WithRetryPolicy replaces the coordinator's default failure handling
// (two attempts, 100ms base backoff, 10s/60s/120s dial/ready/result
// deadlines, no heartbeat) for WithRemoteWorkers draws. The policy
// never touches sampling randomness, so draws that needed retries are
// still bit-identical to undisturbed draws.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *core.Config) { cp := p; c.Retry = &cp }
}

// WithModelSpec pins the wire spec WithRemoteWorkers ships to the
// workers, for models that were themselves built from a spec (the
// serving path) — skipping the re-derivation and keeping the content
// address stable.
func WithModelSpec(s *Spec) Option {
	return func(c *core.Config) { c.ModelSpec = s }
}

// Metrics is a process-wide metrics registry: atomic counters, gauges,
// and log-bucket histograms with Prometheus text exposition
// (WritePrometheus / the debug handlers). One registry is typically
// shared by every sampler in the process and scraped from one
// /metrics endpoint.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Trace is one draw's timing trace: per-round compute/barrier spans
// per shard (and per worker process for remote draws). WriteChrome
// renders it as Chrome trace-event JSON for chrome://tracing and
// Perfetto.
type Trace = obs.Trace

// WithMetrics publishes a compiled sampler's runtime series into reg:
// draw counts and latency histograms, per-round compute/barrier
// histograms and flip counters, and — for WithRemoteWorkers draws —
// per-worker up/down gauges and per-stage WorkerError counters.
// Recording is allocation-free on every hot path; without this option
// no instrumentation runs at all.
func WithMetrics(reg *Metrics) Option {
	return func(c *core.Config) { c.Obs = reg }
}

// WithLogger routes a compiled sampler's structured logs (worker
// session lifecycle, draw failures) to l. Without it samplers are
// silent; errors still surface as returned values either way.
func WithLogger(l *slog.Logger) Option {
	return func(c *core.Config) { c.Log = l }
}

// Diagnosis is the mixing report a diagnosed draw returns alongside the
// sample: per-round Hamming-disagreement and flip-rate series over the
// coupled chains, per-shard compute/barrier attribution, and the
// coalescence verdict with the measured round budget.
type Diagnosis = diag.Diagnosis

// CouplingProbe observes a diagnosed draw's coupling live, one call per
// round. It runs on the round hot path and must not allocate or block;
// the service's SSE streaming endpoint is implemented as one.
type CouplingProbe = diag.Probe

// WithCoupling sets the number of coupled chains diagnosed draws and
// WithRoundsAuto measurements advance (default 4, minimum 2). Chain 0 is
// always the draw itself; the others start from adversarial initial
// states and share its PRF coins.
func WithCoupling(k int) Option {
	return func(c *core.Config) { c.Coupling = k }
}

// WithRoundsAuto replaces the worst-case round budget with a measured
// one: at compile time the sampler runs a grand coupling under the
// configured seed and stops at coalescence, capped by what the fixed
// budget would have been (CapRounds). A draw under the measured budget is
// bit-identical to WithRounds(measured) at the same seed. Honored by
// compiled samplers (NewSampler / NewCSPSampler); the one-shot Sample
// routes through one.
func WithRoundsAuto() Option {
	return func(c *core.Config) { c.RoundsAuto = true }
}

// Sample draws one configuration approximately distributed as the model's
// Gibbs distribution.
func Sample(m *Model, opts ...Option) (*Result, error) {
	cfg := core.Config{Algorithm: chains.LocalMetropolis}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.RoundsAuto {
		// Measured budgets live in the compiled-sampler path; route there.
		s, err := NewSampler(m, opts...)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		return s.Sample()
	}
	return core.Sample(m, cfg)
}

// TheoryRounds returns the paper's round bound for the model/algorithm pair
// at total-variation target eps, without running anything.
func TheoryRounds(m *Model, alg Algorithm, eps float64) (int, error) {
	return core.AutoRounds(m, alg, eps)
}
