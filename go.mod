module locsample

go 1.21
