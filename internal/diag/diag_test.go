package diag

import (
	"testing"

	"locsample/internal/chains"
	"locsample/internal/csp"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

func gridColoring(t *testing.T, rows, cols, q int) (*mrf.MRF, []int) {
	t.Helper()
	m := mrf.Coloring(graph.Grid(rows, cols), q)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatalf("greedy init: %v", err)
	}
	return m, init
}

// TestCouplingCoalescesColoringProvedRegime is the headline acceptance
// check: on a grid coloring inside the paper's proved LocalMetropolis
// regime (q=16 > (2+√2)Δ ≈ 13.66 at Δ=4), the grand coupling must observe
// full coalescence well inside a generous cap, and the series must be
// internally consistent.
func TestCouplingCoalescesColoringProvedRegime(t *testing.T) {
	m, init := gridColoring(t, 8, 8, 16)
	const cap = 4000
	d, err := NewCoupledMRF(m, init, 42, chains.LocalMetropolis, chains.Options{},
		Options{Chains: 4, MaxRounds: cap})
	if err != nil {
		t.Fatal(err)
	}
	measured := d.RunToCoalescence()
	if !d.Coalesced() {
		t.Fatalf("no coalescence within %d rounds on a proved-regime coloring", cap)
	}
	if measured != d.CoalescenceRound()+1 {
		t.Fatalf("measured = %d, want coalescence round %d + 1", measured, d.CoalescenceRound())
	}
	if measured >= cap {
		t.Fatalf("measured budget %d did not beat the cap %d", measured, cap)
	}
	diag := d.Finish()
	if !diag.Coalesced || diag.MeasuredRounds != measured || diag.Chains != 4 {
		t.Fatalf("diagnosis mismatch: %+v", diag)
	}
	if len(diag.Series.Disagree) != d.Round() || len(diag.Series.Flips) != d.Round() || len(diag.Series.FlipEWMA) != d.Round() {
		t.Fatalf("series lengths %d/%d/%d, want %d rounds",
			len(diag.Series.Disagree), len(diag.Series.Flips), len(diag.Series.FlipEWMA), d.Round())
	}
	if last := diag.Series.Disagree[len(diag.Series.Disagree)-1]; last != 0 {
		t.Fatalf("final disagreement %d, want 0", last)
	}
	if diag.Series.Disagree[0] == 0 {
		t.Fatal("adversarial companions already agreed at round 0 — inits are not adversarial")
	}
	if len(diag.Series.Shards) != 1 || len(diag.Series.Shards[0].ComputeNS) != d.Round() {
		t.Fatalf("shard attribution missing or mis-sized: %+v", diag.Series.Shards)
	}
}

// TestChain0BitIdenticalToPlainSampler pins the determinism contract that
// lets the engines serve diagnosed draws: chain 0 of a coupling IS the
// plain chain — same model, init, seed, same trajectory, byte for byte.
func TestChain0BitIdenticalToPlainSampler(t *testing.T) {
	for _, alg := range []chains.Algorithm{chains.LocalMetropolis, chains.LubyGlauber} {
		m, init := gridColoring(t, 6, 6, 16)
		const rounds = 60
		plain := chains.NewSampler(m, init, 7, alg, chains.Options{})
		plain.Run(rounds)
		d, err := NewCoupledMRF(m, init, 7, alg, chains.Options{}, Options{Chains: 3, MaxRounds: rounds})
		if err != nil {
			t.Fatal(err)
		}
		d.Run(rounds)
		for v := range plain.X {
			if plain.X[v] != d.X()[v] {
				t.Fatalf("%v: coupled chain 0 diverged from plain sampler at vertex %d", alg, v)
			}
		}
	}
}

// TestRotatedInitProper checks the structural adversarial start: on a
// coloring model the companions begin from cyclic color rotations, which
// stay proper while disagreeing with chain 0 at every vertex.
func TestRotatedInitProper(t *testing.T) {
	m, init := gridColoring(t, 5, 5, 15)
	for j := 1; j < 4; j++ {
		rot := rotatedInit(m, init, j)
		if rot == nil {
			t.Fatalf("companion %d: rotation unavailable on a coloring model", j)
		}
		if !m.Feasible(rot) {
			t.Fatalf("companion %d: rotated init infeasible", j)
		}
		for v := range init {
			if rot[v] == init[v] {
				t.Fatalf("companion %d agrees with chain 0 at vertex %d", j, v)
			}
		}
	}
	if rotatedInit(mrf.Hardcore(graph.Grid(3, 3), 0.5), make([]int, 9), 1) != nil {
		t.Fatal("rotation must be unavailable for non-coloring models")
	}
}

// TestBurnInFallbackNonColoring exercises the burn-in companion path on a
// hardcore model (no rotation exists): the coupling must construct, chain
// 0 must still match the plain sampler, and companions must start
// feasible.
func TestBurnInFallbackNonColoring(t *testing.T) {
	m := mrf.Hardcore(graph.Grid(4, 4), 0.7)
	init := make([]int, 16) // empty set: feasible for hardcore
	const rounds = 40
	plain := chains.NewSampler(m, init, 11, chains.LubyGlauber, chains.Options{})
	plain.Run(rounds)
	d, err := NewCoupledMRF(m, init, 11, chains.LubyGlauber, chains.Options{}, Options{MaxRounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(rounds)
	for v := range plain.X {
		if plain.X[v] != d.X()[v] {
			t.Fatalf("coupled chain 0 diverged from plain sampler at vertex %d", v)
		}
	}
}

// TestCSPCouplingChain0Identity pins the CSP mirror of the contract:
// chain 0 advances exactly as the raw hypergraph LubyGlauber kernel.
func TestCSPCouplingChain0Identity(t *testing.T) {
	c := csp.DominatingSet(graph.Grid(4, 4))
	init := make([]int, c.N)
	for v := range init {
		init[v] = 1 // full set dominates
	}
	const rounds = 80
	x := append([]int(nil), init...)
	sc := csp.NewScratch(c)
	for r := 0; r < rounds; r++ {
		csp.LubyGlauberRoundPRF(c, x, 13, r, sc)
	}
	d, err := NewCoupledCSP(c, init, 13, Options{Chains: 3, MaxRounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(rounds)
	for v := range x {
		if x[v] != d.X()[v] {
			t.Fatalf("coupled CSP chain 0 diverged from raw kernel at vertex %d", v)
		}
	}
	diag := d.Finish()
	if diag.Rounds != rounds || len(diag.Series.Flips) != rounds {
		t.Fatalf("diagnosis rounds %d / series %d, want %d", diag.Rounds, len(diag.Series.Flips), rounds)
	}
}

// countProbe is a deliberately allocation-free probe for the alloc gate.
type countProbe struct {
	calls     int
	lastRound int
	lastDis   int
}

func (p *countProbe) CouplingRound(round, disagree, flips int, flipEWMA float64) {
	p.calls++
	p.lastRound = round
	p.lastDis = disagree
}

// TestStepRoundAllocs is the PR's alloc gate: a coupled round allocates
// nothing, with the probe detached AND attached.
func TestStepRoundAllocs(t *testing.T) {
	m, init := gridColoring(t, 4, 4, 6)
	mk := func(p Probe) *Coupled {
		d, err := NewCoupledMRF(m, init, 3, chains.LocalMetropolis, chains.Options{},
			Options{Chains: 3, MaxRounds: 4096, Probe: p})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if n := testing.AllocsPerRun(50, mk(nil).StepRound); n != 0 {
		t.Fatalf("StepRound allocates %v/round with probe off, want 0", n)
	}
	p := &countProbe{}
	if n := testing.AllocsPerRun(50, mk(p).StepRound); n != 0 {
		t.Fatalf("StepRound allocates %v/round with probe on, want 0", n)
	}
	if p.calls == 0 {
		t.Fatal("probe never invoked")
	}

	c := csp.DominatingSet(graph.Grid(4, 4))
	initC := make([]int, c.N)
	for v := range initC {
		initC[v] = 1
	}
	dc, err := NewCoupledCSP(c, initC, 3, Options{MaxRounds: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, dc.StepRound); n != 0 {
		t.Fatalf("CSP StepRound allocates %v/round, want 0", n)
	}
}

// TestProbeSeesSeries checks the probe receives the same values the
// series record.
func TestProbeSeesSeries(t *testing.T) {
	m, init := gridColoring(t, 5, 5, 16)
	p := &countProbe{}
	d, err := NewCoupledMRF(m, init, 9, chains.LocalMetropolis, chains.Options{},
		Options{Chains: 3, MaxRounds: 500, Probe: p})
	if err != nil {
		t.Fatal(err)
	}
	d.RunToCoalescence()
	if p.calls != d.Round() {
		t.Fatalf("probe called %d times over %d rounds", p.calls, d.Round())
	}
	diag := d.Finish()
	if p.lastRound != d.Round()-1 || p.lastDis != diag.Series.Disagree[d.Round()-1] {
		t.Fatalf("probe saw (round %d, dis %d), series end (round %d, dis %d)",
			p.lastRound, p.lastDis, d.Round()-1, diag.Series.Disagree[d.Round()-1])
	}
}

// TestOptionsValidation covers the constructor error paths.
func TestOptionsValidation(t *testing.T) {
	m, init := gridColoring(t, 3, 3, 6)
	if _, err := NewCoupledMRF(m, init, 1, chains.LocalMetropolis, chains.Options{}, Options{Chains: 1, MaxRounds: 10}); err == nil {
		t.Fatal("Chains=1 must be rejected")
	}
	if _, err := NewCoupledMRF(m, init, 1, chains.LocalMetropolis, chains.Options{}, Options{MaxRounds: 0}); err == nil {
		t.Fatal("MaxRounds=0 must be rejected")
	}
	if _, err := NewCoupledMRF(m, init[:3], 1, chains.LocalMetropolis, chains.Options{}, Options{MaxRounds: 10}); err == nil {
		t.Fatal("short init must be rejected")
	}
	c := csp.DominatingSet(graph.Grid(3, 3))
	if _, err := NewCoupledCSP(c, make([]int, c.N), 1, Options{MaxRounds: 10}); err == nil {
		t.Fatal("infeasible CSP init must be rejected")
	}
}
