// Package diag is the statistical-observability layer: where internal/obs
// reports what the CPUs are doing, diag reports what the distribution is
// doing. Its one primitive is the grand coupling the PRF substrate makes
// nearly free — because every variate a round consumes is keyed by
// (seed, tag, round, id), k chains started from different configurations
// but advanced under the same seed share every coin. Once two coupled
// chains agree they agree forever (identical state + identical coins ⇒
// identical update), so the first round at which all k chains collide is a
// measured, monotone mixing signal: after it, the chain provably cannot
// remember which of the k initial states it started from.
//
// Coupled advances such a family in lockstep and produces per-round series
// (maximum Hamming disagreement against chain 0, chain-0 flip counts and a
// flip-rate EWMA, per-shard compute/barrier attribution joined from an
// internal obs.RoundRecorder) plus a coalescence verdict. Chain 0 always
// runs from the caller's real initial configuration with the caller's real
// seed, so its final state IS a regular draw — bit-identical to an
// undiagnosed Sample at the same seed, which is what lets the engines
// expose SampleDiagnosed without forking the determinism contract.
//
// Instrumentation discipline matches internal/obs: the per-round Probe is
// nil-gated, StepRound allocates nothing whether a probe is attached or
// not (alloc-gated in the tests), and all series buffers are sized at
// construction.
package diag

import (
	"fmt"
	"time"

	"locsample/internal/chains"
	"locsample/internal/csp"
	"locsample/internal/mrf"
	"locsample/internal/obs"
	"locsample/internal/rng"
)

// TagInit keys the burn-in seeds of companion chains: companion j of a
// coupling with master seed s burns in under rng.PRF(s, TagInit, j) before
// rejoining the shared-coin trajectory. Disjoint from the chains (0x1xxx),
// csp (0x3xxx), and core batch (0x4001) tag spaces.
const TagInit = 0x5001

// BurnInRounds is the number of warm-up rounds a companion chain runs
// under its private TagInit seed when no structural adversarial start
// (color rotation) is available. The goal is only to decorrelate the
// companion from chain 0's start, not to mix it.
const BurnInRounds = 16

// DefaultChains is the coupling width used when Options.Chains is 0.
const DefaultChains = 4

// Probe receives one callback per coupled round — the live-streaming seam
// (the service's SSE endpoint is a Probe). Like chains.RoundObserver it is
// nil-gated and runs on the hot path of every round: implementations that
// share the alloc-gated contract must not allocate; implementations that
// deliberately do I/O (streaming) accept the cost knowingly.
//
// round is the 0-based round just completed; disagree is the maximum
// Hamming distance from chain 0 across companions (0 once coalesced);
// flips is chain 0's changed-vertex count this round; flipEWMA is the
// exponentially weighted flip rate (flips/n, α = 0.2).
type Probe interface {
	CouplingRound(round, disagree, flips int, flipEWMA float64)
}

// Options configure a coupled run.
type Options struct {
	// Chains is the coupling width k including chain 0 (default
	// DefaultChains; must be ≥ 2 — one chain has nothing to couple to).
	Chains int
	// MaxRounds bounds the run and sizes the series buffers (required).
	MaxRounds int
	// Probe, when non-nil, is invoked once per round.
	Probe Probe
	// Obs, when non-nil, additionally observes chain 0's rounds (teed with
	// the internal recorder) — the engines pass their metrics observer here
	// so diagnosed draws feed the same series as plain draws.
	Obs chains.RoundObserver
}

func (o Options) resolve() (Options, error) {
	if o.Chains == 0 {
		o.Chains = DefaultChains
	}
	if o.Chains < 2 {
		return o, fmt.Errorf("diag: coupling needs at least 2 chains, got %d", o.Chains)
	}
	if o.MaxRounds <= 0 {
		return o, fmt.Errorf("diag: MaxRounds must be positive, got %d", o.MaxRounds)
	}
	return o, nil
}

// coupledChains abstracts the two chain families behind the runner: k
// states advancing under one shared seed. X(j) returns chain j's live
// state (not a copy); StepAll advances every chain one round; StepPrimary
// advances only chain 0 (the post-coalescence fast path — companions equal
// chain 0 and would compute identical updates).
type coupledChains interface {
	K() int
	X(j int) []int
	StepAll()
	StepPrimary()
}

// mrfChains couples k chains.Samplers constructed with one seed. Only
// ss[0] carries an observer, so companion rounds are never double-counted
// in the recorder or metrics.
type mrfChains struct {
	ss []*chains.Sampler
}

func (c *mrfChains) K() int        { return len(c.ss) }
func (c *mrfChains) X(j int) []int { return c.ss[j].X }

func (c *mrfChains) StepAll() {
	for _, s := range c.ss {
		s.Step()
	}
}

func (c *mrfChains) StepPrimary() { c.ss[0].Step() }

// cspChains couples k CSP states advanced by the hypergraph LubyGlauber
// kernel. The CSP kernels do not self-observe (mirroring
// cspapi.runChainObserved), so chain 0's rounds are timed here.
type cspChains struct {
	c     *csp.CSP
	seed  uint64
	round int
	xs    [][]int
	scs   []*csp.Scratch
	obs   chains.RoundObserver
}

func (c *cspChains) K() int        { return len(c.xs) }
func (c *cspChains) X(j int) []int { return c.xs[j] }

func (c *cspChains) StepAll() {
	c.stepChain0()
	for j := 1; j < len(c.xs); j++ {
		csp.LubyGlauberRoundPRF(c.c, c.xs[j], c.seed, c.round, c.scs[j])
	}
	c.round++
}

func (c *cspChains) StepPrimary() {
	c.stepChain0()
	c.round++
}

func (c *cspChains) stepChain0() {
	if c.obs != nil {
		t0 := time.Now()
		csp.LubyGlauberRoundPRF(c.c, c.xs[0], c.seed, c.round, c.scs[0])
		c.obs.RoundDone(0, c.round, time.Since(t0).Nanoseconds(), 0, -1)
		return
	}
	csp.LubyGlauberRoundPRF(c.c, c.xs[0], c.seed, c.round, c.scs[0])
}

// Coupled advances a k-chain grand coupling and records its mixing series.
// Construct with NewCoupledMRF or NewCoupledCSP, advance with StepRound /
// Run / RunToCoalescence, read the draw from X, and summarize with Finish.
type Coupled struct {
	cc    coupledChains
	n     int
	k     int
	max   int
	probe Probe
	rec   *obs.RoundRecorder

	prev     []int // chain 0's previous state, for flip counting
	disagree []int
	flips    []int
	ewma     []float64

	round       int
	coalescedAt int // first round index with zero disagreement; -1 until then
	ewmaVal     float64
}

// ewmaAlpha is the flip-rate EWMA smoothing factor.
const ewmaAlpha = 0.2

func newCoupled(cc coupledChains, n int, o Options) *Coupled {
	rec := obs.NewRoundRecorder(1, o.MaxRounds)
	d := &Coupled{
		cc:          cc,
		n:           n,
		k:           o.Chains,
		max:         o.MaxRounds,
		probe:       o.Probe,
		rec:         rec,
		prev:        make([]int, n),
		disagree:    make([]int, o.MaxRounds),
		flips:       make([]int, o.MaxRounds),
		ewma:        make([]float64, o.MaxRounds),
		coalescedAt: -1,
	}
	copy(d.prev, cc.X(0))
	return d
}

// NewCoupledMRF builds a k-chain coupling over model m. Chain 0 starts
// from init (copied) with the given seed — its trajectory is exactly the
// trajectory of a plain chains.Sampler with the same arguments. Companions
// start from adversarial configurations: for coloring models a cyclic
// color rotation of init (maximally disagreeing yet still proper), and
// otherwise — or when rotation breaks feasibility — a copy of init burned
// in for BurnInRounds under a private TagInit-derived seed. Every
// companion then advances under the shared master seed, which is what
// makes the coupling grand (and coalescence absorbing).
func NewCoupledMRF(m *mrf.MRF, init []int, seed uint64, alg chains.Algorithm, copts chains.Options, o Options) (*Coupled, error) {
	o, err := o.resolve()
	if err != nil {
		return nil, err
	}
	if len(init) != m.G.N() {
		return nil, fmt.Errorf("diag: init length %d for %d vertices", len(init), m.G.N())
	}
	ss := make([]*chains.Sampler, o.Chains)
	ss[0] = chains.NewSampler(m, init, seed, alg, copts)
	for j := 1; j < o.Chains; j++ {
		if rot := rotatedInit(m, init, j); rot != nil {
			ss[j] = chains.NewSampler(m, rot, seed, alg, copts)
			continue
		}
		// Burn-in fallback: advance a copy of init under a private seed,
		// then rewind the round counter onto the shared seed. The kernels
		// preserve feasibility (heat-bath resamples from the conditional
		// marginal; LocalMetropolis filters reject infeasible proposals),
		// so the companion's start is feasible whenever init is.
		s := chains.NewSampler(m, init, rng.PRF(seed, TagInit, uint64(j)), alg, copts)
		s.Run(BurnInRounds)
		s.Reset(s.X, seed)
		ss[j] = s
	}
	d := newCoupled(&mrfChains{ss: ss}, m.G.N(), o)
	d.attachObserver(o.Obs)
	return d, nil
}

// NewCoupledCSP builds a k-chain coupling over CSP c running the
// hypergraph LubyGlauber chain. Chain 0 starts from init (copied) with the
// given seed; companions are burned-in copies (CSPs have no structural
// rotation that is guaranteed to stay satisfying).
func NewCoupledCSP(c *csp.CSP, init []int, seed uint64, o Options) (*Coupled, error) {
	o, err := o.resolve()
	if err != nil {
		return nil, err
	}
	if len(init) != c.N {
		return nil, fmt.Errorf("diag: init length %d for %d vertices", len(init), c.N)
	}
	if !c.Feasible(init) {
		return nil, fmt.Errorf("diag: initial configuration is infeasible")
	}
	cc := &cspChains{
		c:    c,
		seed: seed,
		xs:   make([][]int, o.Chains),
		scs:  make([]*csp.Scratch, o.Chains),
	}
	for j := range cc.xs {
		cc.xs[j] = append([]int(nil), init...)
		cc.scs[j] = csp.NewScratch(c)
	}
	for j := 1; j < o.Chains; j++ {
		burnSeed := rng.PRF(seed, TagInit, uint64(j))
		for r := 0; r < BurnInRounds; r++ {
			csp.LubyGlauberRoundPRF(c, cc.xs[j], burnSeed, r, cc.scs[j])
		}
	}
	d := newCoupled(cc, c.N, o)
	d.attachObserver(o.Obs)
	return d, nil
}

// rotatedInit returns companion j's color-rotated start for coloring
// models: every vertex shifts by the same nonzero offset mod q, which
// preserves properness (a proper coloring stays proper under any color
// permutation) while disagreeing with chain 0 at every vertex. Returns nil
// when the model is not a coloring, q < 2, or — belt and braces — the
// rotation is somehow infeasible.
func rotatedInit(m *mrf.MRF, init []int, j int) []int {
	if !m.IsColoringModel() || m.Q < 2 {
		return nil
	}
	shift := 1 + (j-1)%(m.Q-1) // nonzero offset in [1, q-1]
	rot := make([]int, len(init))
	for v, c := range init {
		rot[v] = (c + shift) % m.Q
	}
	if !m.Feasible(rot) {
		return nil
	}
	return rot
}

// StepRound advances the coupling one round and records the round's
// disagreement, flips, and EWMA (invoking the probe last). After
// coalescence only chain 0 advances — the companions are equal to it and,
// under shared coins, would stay equal; skipping them makes the
// post-coalescence tail of a diagnosed draw cost the same as a plain
// draw's. Allocation-free whether or not a probe is attached.
func (d *Coupled) StepRound() {
	if d.round >= d.max {
		return
	}
	coalesced := d.coalescedAt >= 0
	if coalesced {
		d.cc.StepPrimary()
	} else {
		d.cc.StepAll()
	}
	r := d.round
	x0 := d.cc.X(0)
	fl := 0
	for v, xv := range x0 {
		if xv != d.prev[v] {
			fl++
			d.prev[v] = xv
		}
	}
	dis := 0
	if !coalesced {
		for j := 1; j < d.k; j++ {
			xj := d.cc.X(j)
			h := 0
			for v := range x0 {
				if x0[v] != xj[v] {
					h++
				}
			}
			if h > dis {
				dis = h
			}
		}
		if dis == 0 {
			d.coalescedAt = r
		}
	}
	rate := float64(fl) / float64(d.n)
	if r == 0 {
		d.ewmaVal = rate
	} else {
		d.ewmaVal = ewmaAlpha*rate + (1-ewmaAlpha)*d.ewmaVal
	}
	d.disagree[r] = dis
	d.flips[r] = fl
	d.ewma[r] = d.ewmaVal
	d.round++
	if d.probe != nil {
		d.probe.CouplingRound(r, dis, fl, d.ewmaVal)
	}
}

// Run advances the coupling t rounds (clamped to MaxRounds) — the
// full-budget mode diagnosed draws use: chain 0 always completes the
// compiled budget, so the draw is bit-identical to an undiagnosed one.
func (d *Coupled) Run(t int) {
	for i := 0; i < t && d.round < d.max; i++ {
		d.StepRound()
	}
}

// RunToCoalescence advances until all chains have collided or MaxRounds is
// exhausted, and returns MeasuredRounds — the measurement mode behind
// rounds:"auto".
func (d *Coupled) RunToCoalescence() int {
	for d.round < d.max && d.coalescedAt < 0 {
		d.StepRound()
	}
	return d.MeasuredRounds()
}

// X returns chain 0's live state (do not mutate; copy to keep).
func (d *Coupled) X() []int { return d.cc.X(0) }

// Round returns the number of rounds run so far.
func (d *Coupled) Round() int { return d.round }

// Coalesced reports whether all chains have collided.
func (d *Coupled) Coalesced() bool { return d.coalescedAt >= 0 }

// CoalescenceRound returns the first round index after which all chains
// were equal, or -1 while they still disagree.
func (d *Coupled) CoalescenceRound() int { return d.coalescedAt }

// MeasuredRounds is the coupling-measured round budget: the rounds needed
// to observe full coalescence (coalescence round + 1), or MaxRounds when
// the chains never collided within the cap — in which case the measurement
// degrades gracefully to the worst-case budget.
func (d *Coupled) MeasuredRounds() int {
	if d.coalescedAt >= 0 {
		return d.coalescedAt + 1
	}
	return d.max
}

// Recorder exposes the internal chain-0 round recorder (for grafting into
// traces). Read only after the run.
func (d *Coupled) Recorder() *obs.RoundRecorder { return d.rec }

// attachObserver installs the coupling's recorder (teed with extra when
// non-nil) as chain 0's observer. Called by the constructors after
// newCoupled so the recorder exists.
func (d *Coupled) attachObserver(extra chains.RoundObserver) {
	var o chains.RoundObserver = d.rec
	if extra != nil {
		o = &obs.TeeRounds{A: d.rec, B: extra}
	}
	switch cc := d.cc.(type) {
	case *mrfChains:
		cc.ss[0].Obs = o
	case *cspChains:
		cc.obs = o
	}
}

// ShardSeries is one shard's per-round attribution within a Diagnosis.
// Centralized couplings have exactly one shard (0).
type ShardSeries struct {
	Shard     int     `json:"shard"`
	ComputeNS []int64 `json:"computeNs"`
	BarrierNS []int64 `json:"barrierNs"`
}

// Series holds the per-round mixing series of a finished coupling.
type Series struct {
	// Disagree[r] is the maximum Hamming distance from chain 0 across
	// companions after round r (0 from the coalescence round on).
	Disagree []int `json:"disagree"`
	// Flips[r] is chain 0's changed-vertex count in round r.
	Flips []int `json:"flips"`
	// FlipEWMA[r] is the smoothed flip rate (flips/n, α = 0.2).
	FlipEWMA []float64 `json:"flipEwma"`
	// Shards carries chain 0's per-shard compute/barrier attribution.
	Shards []ShardSeries `json:"shards,omitempty"`
}

// Diagnosis is the verdict of a coupled run.
type Diagnosis struct {
	// Chains is the coupling width k.
	Chains int `json:"chains"`
	// Rounds is the number of rounds actually run.
	Rounds int `json:"rounds"`
	// MaxRounds is the cap the run was configured with.
	MaxRounds int `json:"maxRounds"`
	// Coalesced reports whether all k chains collided within the run.
	Coalesced bool `json:"coalesced"`
	// CoalescenceRound is the first round index after which all chains
	// agreed (-1 when they never did).
	CoalescenceRound int `json:"coalescenceRound"`
	// MeasuredRounds is the coupling-measured budget: CoalescenceRound+1,
	// or MaxRounds when the chains never collided.
	MeasuredRounds int `json:"measuredRounds"`
	// Series are the per-round mixing series.
	Series Series `json:"series"`
}

// Finish summarizes the run. Call after the run completes; the coupling
// can keep running afterwards (Finish copies).
func (d *Coupled) Finish() *Diagnosis {
	kept := d.round
	if kept > len(d.disagree) {
		kept = len(d.disagree)
	}
	out := &Diagnosis{
		Chains:           d.k,
		Rounds:           d.round,
		MaxRounds:        d.max,
		Coalesced:        d.coalescedAt >= 0,
		CoalescenceRound: d.coalescedAt,
		MeasuredRounds:   d.MeasuredRounds(),
		Series: Series{
			Disagree: append([]int(nil), d.disagree[:kept]...),
			Flips:    append([]int(nil), d.flips[:kept]...),
			FlipEWMA: append([]float64(nil), d.ewma[:kept]...),
		},
	}
	compute, barrier, _, _ := d.rec.ShardRounds(0)
	if len(compute) > 0 {
		out.Series.Shards = []ShardSeries{{
			Shard:     0,
			ComputeNS: append([]int64(nil), compute...),
			BarrierNS: append([]int64(nil), barrier...),
		}}
	}
	return out
}
