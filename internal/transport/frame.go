package transport

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format of one boundary frame, all fields little-endian:
//
//	[4]  payload length (header + states, excluding this prefix)
//	[2]  magic 0x4C46 ("FL")
//	[1]  version (1)
//	[1]  flags (0, reserved)
//	[4]  from shard
//	[4]  to shard
//	[4]  round
//	[8]  per-link sequence number
//	[4]  state count
//	[4k] k states as int32
//
// The sequence number increments by one per frame per directed link, so
// a receiver can tell a lost or reordered frame from a corrupted one
// before touching the states.
const (
	frameMagic   = 0x4C46
	frameVersion = 1

	// frameHeaderLen is the fixed payload header size (after the length
	// prefix).
	frameHeaderLen = 2 + 1 + 1 + 4 + 4 + 4 + 8 + 4

	// MaxFrameStates bounds the states one frame may carry; DecodeFrame
	// rejects larger counts before allocating, so a hostile length field
	// cannot force an unbounded allocation.
	MaxFrameStates = 1 << 24

	// MaxFramePayload is the largest legal payload length.
	MaxFramePayload = frameHeaderLen + 4*MaxFrameStates
)

// Frame is one decoded boundary frame.
type Frame struct {
	From, To int
	Round    int
	Seq      uint64
	States   []int
}

// FrameError reports a payload that is not a well-formed frame.
type FrameError struct {
	Reason string
}

func (e *FrameError) Error() string { return "transport: bad frame: " + e.Reason }

// AppendFrame appends the length-prefixed wire encoding of f to dst and
// returns the extended slice. States must fit int32.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if len(f.States) > MaxFrameStates {
		return nil, fmt.Errorf("transport: frame carries %d states, limit %d", len(f.States), MaxFrameStates)
	}
	if f.From < 0 || f.From > math.MaxInt32 || f.To < 0 || f.To > math.MaxInt32 ||
		f.Round < 0 || f.Round > math.MaxInt32 {
		return nil, fmt.Errorf("transport: frame tag out of range (from=%d to=%d round=%d)", f.From, f.To, f.Round)
	}
	n := frameHeaderLen + 4*len(f.States)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint16(dst, frameMagic)
	dst = append(dst, frameVersion, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.To))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Round))
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.States)))
	for _, x := range f.States {
		if x < math.MinInt32 || x > math.MaxInt32 {
			return nil, fmt.Errorf("transport: state %d does not fit int32", x)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(x)))
	}
	return dst, nil
}

// decodeHeader validates the payload's header and length and returns
// the frame with States still nil.
func decodeHeader(payload []byte) (Frame, error) {
	var f Frame
	if len(payload) < frameHeaderLen {
		return f, &FrameError{Reason: fmt.Sprintf("payload %d bytes, header needs %d", len(payload), frameHeaderLen)}
	}
	if m := binary.LittleEndian.Uint16(payload[0:]); m != frameMagic {
		return f, &FrameError{Reason: fmt.Sprintf("magic %#04x, want %#04x", m, frameMagic)}
	}
	if v := payload[2]; v != frameVersion {
		return f, &FrameError{Reason: fmt.Sprintf("version %d, want %d", v, frameVersion)}
	}
	if fl := payload[3]; fl != 0 {
		return f, &FrameError{Reason: fmt.Sprintf("reserved flags %#02x set", fl)}
	}
	from := binary.LittleEndian.Uint32(payload[4:])
	to := binary.LittleEndian.Uint32(payload[8:])
	round := binary.LittleEndian.Uint32(payload[12:])
	if from > math.MaxInt32 || to > math.MaxInt32 || round > math.MaxInt32 {
		return f, &FrameError{Reason: fmt.Sprintf("tag out of range (from=%d to=%d round=%d)", from, to, round)}
	}
	f.From = int(from)
	f.To = int(to)
	f.Round = int(round)
	f.Seq = binary.LittleEndian.Uint64(payload[16:])
	count := binary.LittleEndian.Uint32(payload[24:])
	if count > MaxFrameStates {
		return f, &FrameError{Reason: fmt.Sprintf("state count %d exceeds limit %d", count, MaxFrameStates)}
	}
	if body := len(payload) - frameHeaderLen; uint64(body) != 4*uint64(count) {
		return f, &FrameError{Reason: fmt.Sprintf("state count %d needs %d body bytes, payload has %d", count, 4*count, body)}
	}
	return f, nil
}

// DecodeFrame parses one frame payload (the bytes after the length
// prefix). The states are decoded into buf when it has capacity,
// otherwise a fresh slice is allocated; the count is validated against
// the payload length first, so a hostile header cannot trigger an
// oversized allocation.
func DecodeFrame(payload []byte, buf []int) (Frame, error) {
	f, err := decodeHeader(payload)
	if err != nil {
		return f, err
	}
	body := payload[frameHeaderLen:]
	count := len(body) / 4
	if cap(buf) >= count {
		f.States = buf[:count]
	} else {
		f.States = make([]int, count)
	}
	for i := range f.States {
		f.States[i] = int(int32(binary.LittleEndian.Uint32(body[4*i:])))
	}
	return f, nil
}
