package transport

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func mustEncode(t *testing.T, f *Frame) []byte {
	t.Helper()
	b, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{From: 0, To: 1, Round: 0, Seq: 0, States: []int{}},
		{From: 3, To: 7, Round: 12, Seq: 99, States: []int{0, 1, 2, 3, 4}},
		{From: 1, To: 0, Round: 1 << 20, Seq: 1 << 40, States: []int{math.MaxInt32, math.MinInt32, -1}},
	}
	for _, f := range frames {
		enc := mustEncode(t, &f)
		n := binary.LittleEndian.Uint32(enc)
		if int(n) != len(enc)-4 {
			t.Fatalf("length prefix %d, payload %d", n, len(enc)-4)
		}
		got, err := DecodeFrame(enc[4:], nil)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if got.From != f.From || got.To != f.To || got.Round != f.Round || got.Seq != f.Seq {
			t.Fatalf("header round-trip: got %+v want %+v", got, f)
		}
		if len(got.States) != len(f.States) {
			t.Fatalf("states length %d want %d", len(got.States), len(f.States))
		}
		for i := range f.States {
			if got.States[i] != f.States[i] {
				t.Fatalf("state %d: got %d want %d", i, got.States[i], f.States[i])
			}
		}
	}
}

func TestFrameDecodeIntoBuffer(t *testing.T) {
	f := Frame{From: 1, To: 2, Round: 3, Seq: 4, States: []int{9, 8, 7}}
	enc := mustEncode(t, &f)
	buf := make([]int, 0, 8)
	got, err := DecodeFrame(enc[4:], buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if &got.States[0] != &buf[:1][0] {
		t.Fatal("decode did not reuse the provided buffer")
	}
}

func TestFrameEncodeRejects(t *testing.T) {
	if _, err := AppendFrame(nil, &Frame{From: -1}); err == nil {
		t.Fatal("negative shard accepted")
	}
	if _, err := AppendFrame(nil, &Frame{States: []int{math.MaxInt32 + 1}}); err == nil {
		t.Fatal("state overflowing int32 accepted")
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	valid := mustEncode(t, &Frame{From: 1, To: 2, Round: 3, Seq: 4, States: []int{5, 6}})[4:]

	cases := map[string][]byte{
		"short payload": valid[:frameHeaderLen-1],
		"bad magic":     append([]byte{0xFF, 0xFF}, valid[2:]...),
		"bad version":   mutate(valid, 2, 9),
		"flags set":     mutate(valid, 3, 1),
		"truncated":     valid[:len(valid)-4],
		"trailing":      append(append([]byte{}, valid...), 0),
	}
	// Hostile count: header claims more states than the payload holds.
	hostile := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(hostile[24:], 1<<20)
	cases["hostile count"] = hostile
	// Count beyond the hard cap must be rejected before any allocation.
	huge := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(huge[24:], MaxFrameStates+1)
	cases["count beyond cap"] = huge

	for name, payload := range cases {
		if _, err := DecodeFrame(payload, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte{}, b...)
	out[i] = v
	return out
}

// FuzzFrameRoundTrip feeds arbitrary payloads to the frame decoder: it
// must never panic or allocate beyond the payload-implied bound, and
// any payload it accepts must re-encode to the identical bytes
// (decode∘encode fixpoint).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(mustEncodeF(&Frame{From: 0, To: 1, Round: 0, Seq: 0, States: []int{}}))
	f.Add(mustEncodeF(&Frame{From: 2, To: 5, Round: 17, Seq: 3, States: []int{1, -2, 3}}))
	f.Add(mustEncodeF(&Frame{From: 1, To: 0, Round: 1, Seq: 1, States: []int{math.MaxInt32, math.MinInt32}}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) < 4 {
			return
		}
		body := payload[4:]
		g, err := DecodeFrame(body, nil)
		if err != nil {
			return
		}
		re, err := AppendFrame(nil, &g)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re[4:], body) {
			t.Fatalf("decode/encode not a fixpoint:\n in  %x\n out %x", body, re[4:])
		}
		if int(binary.LittleEndian.Uint32(re)) != len(body) {
			t.Fatalf("re-encoded length prefix %d, body %d", binary.LittleEndian.Uint32(re), len(body))
		}
	})
}

func mustEncodeF(f *Frame) []byte {
	b, err := AppendFrame(nil, f)
	if err != nil {
		panic(err)
	}
	return b
}
