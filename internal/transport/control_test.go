package transport

import (
	"encoding/json"
	"net"
	"testing"
	"time"
)

func TestControlRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	want := &ControlMsg{
		Kind: "job",
		Job: &JobMsg{
			Proto:     ControlProtoVersion,
			JobID:     99,
			Kind:      "mrf",
			Spec:      json.RawMessage(`{"version":"locsample/v1"}`),
			Algorithm: "localmetropolis",
			Shards:    4,
			Strategy:  "range",
			PlanSeed:  7,
			Init:      []int{0, 1, 2},
			Workers:   []string{"a:1", "b:2"},
			Self:      1,
		},
	}
	errC := make(chan error, 1)
	go func() { errC <- WriteControl(a, want, time.Second) }()
	got, err := ReadControl(b, time.Second)
	if err != nil {
		t.Fatalf("ReadControl: %v", err)
	}
	if err := <-errC; err != nil {
		t.Fatalf("WriteControl: %v", err)
	}
	if got.Kind != "job" || got.Job == nil || got.Job.JobID != 99 ||
		got.Job.Self != 1 || len(got.Job.Init) != 3 || got.Job.Workers[1] != "b:2" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestControlRejectsOversized(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		var pre [4]byte
		pre[3] = 0xFF // far beyond MaxControlBytes
		a.Write(pre[:])
	}()
	if _, err := ReadControl(b, time.Second); err == nil {
		t.Fatal("oversized control message accepted")
	}
}

func TestPeerHelloRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errC := make(chan error, 1)
	go func() { errC <- WritePeerHello(a, 1234, 3, time.Second) }()
	m, err := ReadMagic(b, time.Second)
	if err != nil || m != MagicPeer {
		t.Fatalf("magic: %v %v", m, err)
	}
	id, from, err := ReadPeerHello(b, time.Second)
	if err != nil {
		t.Fatalf("ReadPeerHello: %v", err)
	}
	if err := <-errC; err != nil {
		t.Fatalf("WritePeerHello: %v", err)
	}
	if id != 1234 || from != 3 {
		t.Fatalf("hello fields: job %d from %d", id, from)
	}
}
