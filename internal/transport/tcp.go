package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig describes one process's view of a cross-process mesh.
type TCPConfig struct {
	// JobID disambiguates concurrent meshes sharing the same worker
	// addresses; peer hellos carry it so inbound connections attach to
	// the right mesh.
	JobID uint64
	// Self is this process's index in Addrs.
	Self int
	// Addrs lists the mesh address of every process, indexed by process.
	Addrs []string
	// Assign maps each shard to the process hosting it.
	Assign []int
	// Neighbors is the plan's neighbor lists (Neighbors[s] holds the
	// shards s exchanges boundaries with). Only links that cross a
	// process boundary become TCP links; same-process pairs are the
	// Router's business.
	Neighbors [][]int
	// DialTimeout bounds the total dial budget per peer, retries and
	// backoff included (default 10s).
	DialTimeout time.Duration
	// RecvTimeout bounds each Recv (default 60s; the deadline that turns
	// a dropped frame or dead peer into ErrTimeout).
	RecvTimeout time.Duration
	// WriteTimeout bounds each frame write (default 30s).
	WriteTimeout time.Duration
}

func (c *TCPConfig) withDefaults() TCPConfig {
	out := *c
	if out.DialTimeout <= 0 {
		out.DialTimeout = 10 * time.Second
	}
	if out.RecvTimeout <= 0 {
		out.RecvTimeout = 60 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 30 * time.Second
	}
	return out
}

// Counters reports a TCP transport's wire traffic. Only sent frames are
// counted per process, so summing over all processes counts each frame
// once.
type Counters struct {
	FramesSent int64
	BytesSent  int64
	FramesRecv int64
	BytesRecv  int64
}

// outLink is a directed cross-process link this process sends on. Each
// link is driven by exactly one shard goroutine, so seq needs no
// atomics; the two encode buffers cycle through freeQ so a buffer is
// never reused before the writer goroutine has flushed it.
type outLink struct {
	from, to int
	conn     *tcpConn
	seq      uint64
	freeQ    chan []byte
}

// inLink is a directed cross-process link this process receives on. The
// reader goroutine checks seq continuity, decodes into a recycled
// buffer from freeQ, and delivers on ch; Recv returns the previous
// buffer to freeQ before taking the next, so the reader can run at most
// two frames ahead — exactly the lockstep bound.
type inLink struct {
	from, to int
	conn     *tcpConn
	nextSeq  uint64
	freeQ    chan []int
	ch       chan chanMsg
	cur      []int
}

type outFrame struct {
	link *outLink
	buf  []byte
}

// tcpConn is one established peer connection: a writer goroutine
// draining outQ and a reader goroutine demultiplexing inbound frames to
// their inLinks. Any wire error poisons the connection — every link on
// it fails loudly — because a mesh with a broken link cannot finish a
// lockstep round anyway.
type tcpConn struct {
	t    *TCP
	peer int
	outQ chan outFrame

	mu     sync.Mutex
	c      net.Conn
	closed bool
	err    error
	done   chan struct{}
}

// TCP is the cross-process transport: a full mesh of length-prefixed
// binary frame streams with per-link sequence checking. Construct it
// with NewTCP, establish the mesh with Dial (outbound halves) and
// AddConn (inbound halves, fed by the worker's accept loop), then wait
// for Ready before running rounds.
type TCP struct {
	cfg   TCPConfig
	out   map[uint64]*outLink
	in    map[uint64]*inLink
	conns map[int]*tcpConn

	pending int32
	readyC  chan struct{}
	done    chan struct{}
	once    sync.Once

	framesSent atomic.Int64
	bytesSent  atomic.Int64
	framesRecv atomic.Int64
	bytesRecv  atomic.Int64
}

func linkKey(from, to int) uint64 { return uint64(uint32(from))<<32 | uint64(uint32(to)) }

// NewTCP builds the mesh endpoints for cfg without touching the
// network. Every plan link with endpoints on different processes
// becomes a pair of directed TCP links; the peer set is derived from
// them.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg = cfg.withDefaults()
	if cfg.Self < 0 || cfg.Self >= len(cfg.Addrs) {
		return nil, fmt.Errorf("transport: self process %d out of range (have %d addresses)", cfg.Self, len(cfg.Addrs))
	}
	if len(cfg.Assign) != len(cfg.Neighbors) {
		return nil, fmt.Errorf("transport: %d shard assignments for %d neighbor lists", len(cfg.Assign), len(cfg.Neighbors))
	}
	t := &TCP{
		cfg:    cfg,
		out:    make(map[uint64]*outLink),
		in:     make(map[uint64]*inLink),
		conns:  make(map[int]*tcpConn),
		readyC: make(chan struct{}),
		done:   make(chan struct{}),
	}
	for s, ns := range cfg.Neighbors {
		if cfg.Assign[s] != cfg.Self {
			continue
		}
		for _, j := range ns {
			p := cfg.Assign[j]
			if p == cfg.Self {
				continue // same process: the Router sends these over Chan
			}
			if p < 0 || p >= len(cfg.Addrs) {
				return nil, fmt.Errorf("transport: shard %d assigned to process %d, out of range", j, p)
			}
			conn := t.conns[p]
			if conn == nil {
				conn = &tcpConn{t: t, peer: p, outQ: make(chan outFrame, 16), done: make(chan struct{})}
				t.conns[p] = conn
			}
			if t.out[linkKey(s, j)] == nil {
				l := &outLink{from: s, to: j, conn: conn, freeQ: make(chan []byte, 2)}
				l.freeQ <- nil
				l.freeQ <- nil
				t.out[linkKey(s, j)] = l
			}
			if t.in[linkKey(j, s)] == nil {
				l := &inLink{from: j, to: s, conn: conn, freeQ: make(chan []int, 2), ch: make(chan chanMsg, 2)}
				l.freeQ <- nil
				l.freeQ <- nil
				t.in[linkKey(j, s)] = l
			}
		}
	}
	t.pending = int32(len(t.conns))
	if t.pending == 0 {
		close(t.readyC)
	}
	return t, nil
}

// Peers returns the process indices this mesh exchanges frames with.
func (t *TCP) Peers() []int {
	ps := make([]int, 0, len(t.conns))
	for p := range t.conns {
		ps = append(ps, p)
	}
	return ps
}

// Dial establishes the outbound halves of the mesh: this process dials
// every needed peer with a smaller index (larger-index peers dial us,
// landing in AddConn via the worker's accept loop). Each dial retries
// with backoff within cfg.DialTimeout and opens with a peer hello
// carrying the job ID and our process index.
func (t *TCP) Dial() error {
	for p, conn := range t.conns {
		if p > t.cfg.Self {
			continue
		}
		c, err := dialRetry(t.cfg.Addrs[p], t.cfg.DialTimeout)
		if err != nil {
			return fmt.Errorf("transport: dial peer %d (%s): %w", p, t.cfg.Addrs[p], err)
		}
		if err := WritePeerHello(c, t.cfg.JobID, t.cfg.Self, t.cfg.WriteTimeout); err != nil {
			c.Close()
			return fmt.Errorf("transport: hello to peer %d: %w", p, err)
		}
		if err := t.attach(conn, c); err != nil {
			c.Close()
			return err
		}
	}
	return nil
}

// AddConn attaches an inbound peer connection (its hello already
// consumed by the accept loop).
func (t *TCP) AddConn(peer int, c net.Conn) error {
	conn := t.conns[peer]
	if conn == nil {
		return fmt.Errorf("transport: unexpected connection from process %d (no shared links)", peer)
	}
	return t.attach(conn, c)
}

func (t *TCP) attach(conn *tcpConn, c net.Conn) error {
	conn.mu.Lock()
	if conn.closed {
		conn.mu.Unlock()
		return fmt.Errorf("transport: peer %d: %w", conn.peer, conn.failure())
	}
	if conn.c != nil {
		conn.mu.Unlock()
		return fmt.Errorf("transport: duplicate connection from process %d", conn.peer)
	}
	conn.c = c
	conn.mu.Unlock()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	go conn.writeLoop(c)
	go conn.readLoop(c)
	if atomic.AddInt32(&t.pending, -1) == 0 {
		close(t.readyC)
	}
	return nil
}

// Ready blocks until every peer connection is attached, the transport
// closes, or the timeout expires.
func (t *TCP) Ready(timeout time.Duration) error {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-t.readyC:
		return nil
	case <-t.done:
		return ErrClosed
	case <-timer.C:
		return fmt.Errorf("transport: mesh not ready after %v (%d peer connections missing): %w",
			timeout, atomic.LoadInt32(&t.pending), ErrTimeout)
	}
}

// Send encodes the frame into one of the link's two recycled buffers
// and hands it to the peer connection's writer. Lockstep guarantees the
// buffer being reused was flushed: the engine only reaches round r+2 on
// a link after the peer advanced past round r+1, which needed our
// round-r frame on the wire.
func (t *TCP) Send(from, to, round int, states []int) error {
	l := t.out[linkKey(from, to)]
	if l == nil {
		return &LinkError{From: from, To: to}
	}
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	var buf []byte
	select {
	case buf = <-l.freeQ:
	case <-t.done:
		return ErrClosed
	case <-l.conn.done:
		return l.conn.failure()
	}
	f := Frame{From: from, To: to, Round: round, Seq: l.seq, States: states}
	enc, err := AppendFrame(buf[:0], &f)
	if err != nil {
		l.freeQ <- buf
		return err
	}
	l.seq++
	select {
	case l.conn.outQ <- outFrame{link: l, buf: enc}:
		return nil
	case <-t.done:
		return ErrClosed
	case <-l.conn.done:
		return l.conn.failure()
	}
}

// Recv blocks for the round-r frame on from→to. The returned slice is
// recycled on the next Recv for the same link.
func (t *TCP) Recv(from, to, round, want int) ([]int, error) {
	l := t.in[linkKey(from, to)]
	if l == nil {
		return nil, &LinkError{From: from, To: to}
	}
	select {
	case <-t.done:
		return nil, ErrClosed
	default:
	}
	if l.cur != nil {
		l.freeQ <- l.cur
		l.cur = nil
	}
	timer := time.NewTimer(t.cfg.RecvTimeout)
	defer timer.Stop()
	var msg chanMsg
	select {
	case msg = <-l.ch:
	case <-t.done:
		return nil, ErrClosed
	case <-l.conn.done:
		return nil, l.conn.failure()
	case <-timer.C:
		return nil, &linkTimeout{from: from, to: to, round: round}
	}
	l.cur = msg.states
	if msg.round != round {
		return nil, &RoundError{From: from, To: to, Want: round, Got: msg.round}
	}
	if len(msg.states) != want {
		return nil, &SizeError{From: from, To: to, Want: want, Got: len(msg.states)}
	}
	return msg.states, nil
}

// Close poisons every link and tears down every peer connection.
func (t *TCP) Close() error {
	t.once.Do(func() {
		close(t.done)
		for _, conn := range t.conns {
			conn.poison(ErrClosed)
		}
	})
	return nil
}

// Stats returns the wire traffic so far.
func (t *TCP) Stats() Counters {
	return Counters{
		FramesSent: t.framesSent.Load(),
		BytesSent:  t.bytesSent.Load(),
		FramesRecv: t.framesRecv.Load(),
		BytesRecv:  t.bytesRecv.Load(),
	}
}

// failure returns the error that poisoned the connection.
func (c *tcpConn) failure() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClosed
}

// poison marks the connection failed, closes the socket (unblocking any
// in-flight read or write), and wakes everyone selecting on done.
func (c *tcpConn) poison(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	sock := c.c
	c.mu.Unlock()
	if sock != nil {
		sock.Close()
	}
	close(c.done)
}

func (c *tcpConn) writeLoop(sock net.Conn) {
	for {
		var of outFrame
		select {
		case of = <-c.outQ:
		case <-c.done:
			return
		case <-c.t.done:
			return
		}
		if c.t.cfg.WriteTimeout > 0 {
			sock.SetWriteDeadline(time.Now().Add(c.t.cfg.WriteTimeout))
		}
		if _, err := sock.Write(of.buf); err != nil {
			c.poison(writeErr(c.peer, err))
			return
		}
		c.t.framesSent.Add(1)
		c.t.bytesSent.Add(int64(len(of.buf)))
		of.link.freeQ <- of.buf // cap 2, never blocks: at most 2 buffers exist
	}
}

func (c *tcpConn) readLoop(sock net.Conn) {
	var lenBuf [4]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(sock, lenBuf[:]); err != nil {
			c.poison(readErr(c.peer, err))
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n < frameHeaderLen || n > MaxFramePayload {
			c.poison(fmt.Errorf("transport: peer %d: %w", c.peer,
				&FrameError{Reason: fmt.Sprintf("payload length %d out of range", n)}))
			return
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(sock, payload); err != nil {
			c.poison(readErr(c.peer, err))
			return
		}
		f, err := decodeHeader(payload)
		if err != nil {
			c.poison(fmt.Errorf("transport: peer %d: %w", c.peer, err))
			return
		}
		l := c.t.in[linkKey(f.From, f.To)]
		if l == nil || l.conn != c {
			c.poison(fmt.Errorf("transport: peer %d: %w", c.peer, &LinkError{From: f.From, To: f.To}))
			return
		}
		if f.Seq != l.nextSeq {
			c.poison(fmt.Errorf("transport: peer %d: %w", c.peer,
				&SeqError{From: f.From, To: f.To, Want: l.nextSeq, Got: f.Seq}))
			return
		}
		l.nextSeq++
		var buf []int
		select {
		case buf = <-l.freeQ:
		case <-c.done:
			return
		case <-c.t.done:
			return
		}
		f, _ = DecodeFrame(payload, buf)
		c.t.framesRecv.Add(1)
		c.t.bytesRecv.Add(int64(len(payload)) + 4)
		select {
		case l.ch <- chanMsg{round: f.Round, states: f.States}:
		case <-c.done:
			return
		case <-c.t.done:
			return
		}
	}
}

func readErr(peer int, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("transport: peer %d closed the connection mid-stream: %w", peer, err)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("transport: read from peer %d: %w", peer, ErrTimeout)
	}
	return fmt.Errorf("transport: read from peer %d: %w", peer, err)
}

func writeErr(peer int, err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("transport: write to peer %d: %w", peer, ErrTimeout)
	}
	return fmt.Errorf("transport: write to peer %d: %w", peer, err)
}

// dialRetry dials addr with exponential backoff until it connects or
// the total budget is spent.
func dialRetry(addr string, total time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(total)
	backoff := 50 * time.Millisecond
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("%w: dial %s gave up after %v: %v", ErrTimeout, addr, total, lastErr)
		}
		attempt := remaining
		if attempt > 2*time.Second {
			attempt = 2 * time.Second
		}
		c, err := net.DialTimeout("tcp", addr, attempt)
		if err == nil {
			return c, nil
		}
		lastErr = err
		sleep := backoff
		if sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		backoff *= 2
		if backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}
