package transport

import (
	"errors"
	"testing"
	"time"
)

func twoShardNeighbors() [][]int { return [][]int{{1}, {0}} }

func TestChanPingPong(t *testing.T) {
	tr := NewChan(twoShardNeighbors(), time.Second)
	defer tr.Close()

	done := make(chan error, 1)
	go func() {
		for r := 0; r < 10; r++ {
			if err := tr.Send(1, 0, r, []int{r, r + 1}); err != nil {
				done <- err
				return
			}
			if _, err := tr.Recv(0, 1, r, 3); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for r := 0; r < 10; r++ {
		if err := tr.Send(0, 1, r, []int{r, r, r}); err != nil {
			t.Fatalf("send round %d: %v", r, err)
		}
		got, err := tr.Recv(1, 0, r, 2)
		if err != nil {
			t.Fatalf("recv round %d: %v", r, err)
		}
		if got[0] != r || got[1] != r+1 {
			t.Fatalf("round %d: got %v", r, got)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("peer: %v", err)
	}
}

func TestChanUnknownLink(t *testing.T) {
	tr := NewChan(twoShardNeighbors(), 0)
	defer tr.Close()
	var le *LinkError
	if err := tr.Send(0, 0, 0, nil); !errors.As(err, &le) {
		t.Fatalf("send on non-link: %v", err)
	}
	if _, err := tr.Recv(5, 0, 0, 1); !errors.As(err, &le) {
		t.Fatalf("recv on out-of-range link: %v", err)
	}
}

func TestChanRoundMismatch(t *testing.T) {
	tr := NewChan(twoShardNeighbors(), time.Second)
	defer tr.Close()
	if err := tr.Send(0, 1, 7, []int{1}); err != nil {
		t.Fatal(err)
	}
	var re *RoundError
	if _, err := tr.Recv(0, 1, 8, 1); !errors.As(err, &re) {
		t.Fatalf("want RoundError, got %v", err)
	} else if re.Got != 7 || re.Want != 8 {
		t.Fatalf("RoundError fields: %+v", re)
	}
}

func TestChanSizeMismatch(t *testing.T) {
	tr := NewChan(twoShardNeighbors(), time.Second)
	defer tr.Close()
	if err := tr.Send(0, 1, 0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	var se *SizeError
	if _, err := tr.Recv(0, 1, 0, 5); !errors.As(err, &se) {
		t.Fatalf("want SizeError, got %v", err)
	}
}

func TestChanRecvTimeout(t *testing.T) {
	tr := NewChan(twoShardNeighbors(), 20*time.Millisecond)
	defer tr.Close()
	start := time.Now()
	_, err := tr.Recv(0, 1, 0, 1)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestChanCloseUnblocks(t *testing.T) {
	tr := NewChan(twoShardNeighbors(), 0)
	errC := make(chan error, 1)
	go func() {
		_, err := tr.Recv(0, 1, 0, 1)
		errC <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tr.Close()
	select {
	case err := <-errC:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := tr.Send(0, 1, 0, []int{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}
