package transport

import (
	"errors"
	"testing"
	"time"
)

func TestFaultDrop(t *testing.T) {
	tr := NewFault(NewChan(twoShardNeighbors(), 30*time.Millisecond), map[int]Injection{0: {Op: FaultDrop}})
	defer tr.Close()
	if err := tr.Send(0, 1, 0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Recv(0, 1, 0, 2); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout after drop, got %v", err)
	}
}

func TestFaultTruncate(t *testing.T) {
	tr := NewFault(NewChan(twoShardNeighbors(), time.Second), map[int]Injection{0: {Op: FaultTruncate}})
	defer tr.Close()
	if err := tr.Send(0, 1, 0, []int{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	var se *SizeError
	if _, err := tr.Recv(0, 1, 0, 4); !errors.As(err, &se) {
		t.Fatalf("want SizeError after truncate, got %v", err)
	} else if se.Got != 2 {
		t.Fatalf("truncated frame carried %d states, want 2", se.Got)
	}
}

func TestFaultDuplicate(t *testing.T) {
	tr := NewFault(NewChan(twoShardNeighbors(), time.Second), map[int]Injection{0: {Op: FaultDuplicate}})
	defer tr.Close()
	if err := tr.Send(0, 1, 0, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Recv(0, 1, 0, 1); err != nil {
		t.Fatalf("first copy should be clean: %v", err)
	}
	var re *RoundError
	if _, err := tr.Recv(0, 1, 1, 1); !errors.As(err, &re) {
		t.Fatalf("want RoundError on duplicate, got %v", err)
	}
}

func TestFaultDelaySurvivable(t *testing.T) {
	tr := NewFault(NewChan(twoShardNeighbors(), time.Second),
		map[int]Injection{0: {Op: FaultDelay, Delay: 10 * time.Millisecond}})
	defer tr.Close()
	if err := tr.Send(0, 1, 0, []int{7}); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Recv(0, 1, 0, 1)
	if err != nil {
		t.Fatalf("delay below deadline must succeed: %v", err)
	}
	if got[0] != 7 {
		t.Fatalf("got %v", got)
	}
}

func TestFaultReorder(t *testing.T) {
	tr := NewFault(NewChan(twoShardNeighbors(), time.Second), map[int]Injection{0: {Op: FaultReorder}})
	defer tr.Close()
	if err := tr.Send(0, 1, 0, []int{1}); err != nil { // withheld
		t.Fatal(err)
	}
	if err := tr.Send(0, 1, 1, []int{2}); err != nil { // goes out first
		t.Fatal(err)
	}
	var re *RoundError
	if _, err := tr.Recv(0, 1, 0, 1); !errors.As(err, &re) {
		t.Fatalf("want RoundError on reordered frames, got %v", err)
	} else if re.Got != 1 || re.Want != 0 {
		t.Fatalf("RoundError fields: %+v", re)
	}
}
