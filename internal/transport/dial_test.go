package transport

// Deadline and retry coverage for the dial paths: refused peers must
// spend the whole (bounded) budget and come back as typed ErrTimeout,
// late-accepting peers must be connected by the in-budget retry loop,
// and half-open peers — accepted but mute — must be cut off by the read
// deadline instead of hanging a caller forever.

import (
	"errors"
	"net"
	"testing"
	"time"
)

// refusedAddr returns a loopback address that actively refuses
// connections: bind an ephemeral port, then close the listener.
func refusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestDialRetryRefusedSpendsBoundedBudget(t *testing.T) {
	addr := refusedAddr(t)
	const budget = 300 * time.Millisecond
	start := time.Now()
	_, err := dialRetry(addr, budget)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dialRetry connected to a refusing address")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed < budget {
		t.Fatalf("gave up after %v, before the %v budget was spent", elapsed, budget)
	}
	// Bounded: the budget plus one max backoff sleep plus slack. A
	// runaway retry loop (or a forgotten deadline) blows well past this.
	if elapsed > budget+2*time.Second {
		t.Fatalf("dialRetry took %v for a %v budget", elapsed, budget)
	}
}

func TestDialRetryConnectsToLateListener(t *testing.T) {
	addr := refusedAddr(t)
	// The listener appears only after a few refused attempts; the retry
	// loop must pick it up within the budget.
	errc := make(chan error, 1)
	go func() {
		time.Sleep(200 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			errc <- err
			return
		}
		defer ln.Close()
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
		errc <- err
	}()
	c, err := dialRetry(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dialRetry never reached the late listener: %v", err)
	}
	c.Close()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestDialControlRefusedFailsFast(t *testing.T) {
	addr := refusedAddr(t)
	start := time.Now()
	_, err := DialControl(addr, 250*time.Millisecond)
	if err == nil {
		t.Fatal("DialControl connected to a refusing address")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DialControl took %v for a 250ms timeout", elapsed)
	}
}

// halfOpenListener accepts connections and then never writes a byte —
// the shape of a SIGSTOPped or wedged worker.
func halfOpenListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	return ln.Addr().String()
}

func TestPingHalfOpenPeerTimesOut(t *testing.T) {
	addr := halfOpenListener(t)
	const budget = 300 * time.Millisecond
	start := time.Now()
	_, err := Ping(addr, budget)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Ping succeeded against a mute peer")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a net timeout, got %v", err)
	}
	if elapsed > budget+2*time.Second {
		t.Fatalf("Ping took %v for a %v budget", elapsed, budget)
	}
}

func TestReadControlHalfOpenPeerTimesOut(t *testing.T) {
	addr := halfOpenListener(t)
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = ReadControl(c, 200*time.Millisecond)
	if err == nil {
		t.Fatal("ReadControl returned from a mute peer")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a net timeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("ReadControl took %v for a 200ms deadline", elapsed)
	}
}

func TestPingLiveWorkerLoopback(t *testing.T) {
	// A minimal in-process control server answering ping → pong, to pin
	// the client half of the heartbeat protocol without a real lsharded.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		const timeout = time.Minute
		if magic, err := ReadMagic(c, timeout); err != nil || magic != MagicControl {
			return
		}
		m, err := ReadControl(c, timeout)
		if err != nil || m.Kind != "ping" {
			return
		}
		WriteControl(c, &ControlMsg{Kind: "pong", Pong: &PongMsg{Draining: true, ActiveJobs: 2}}, timeout)
	}()
	pong, err := Ping(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !pong.Draining || pong.ActiveJobs != 2 {
		t.Fatalf("pong round-trip lost fields: %+v", pong)
	}
}
