package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// startMeshListener accepts peer connections for tr on a loopback
// listener and returns its address.
func startMeshListener(t *testing.T, tr *TCP, jobID uint64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			m, err := ReadMagic(c, time.Second)
			if err != nil || m != MagicPeer {
				c.Close()
				continue
			}
			id, from, err := ReadPeerHello(c, time.Second)
			if err != nil || id != jobID {
				c.Close()
				continue
			}
			c.SetReadDeadline(time.Time{})
			if err := tr.AddConn(from, c); err != nil {
				c.Close()
			}
		}
	}()
	return ln.Addr().String()
}

// tcpPair builds a two-process loopback mesh for the 2-shard plan
// (shard 0 on process 0, shard 1 on process 1).
func tcpPair(t *testing.T, recvTimeout time.Duration) (*TCP, *TCP) {
	t.Helper()
	const jobID = 42
	base := TCPConfig{
		JobID:       jobID,
		Assign:      []int{0, 1},
		Neighbors:   twoShardNeighbors(),
		DialTimeout: 5 * time.Second,
		RecvTimeout: recvTimeout,
	}
	cfg0 := base
	cfg0.Self = 0
	cfg0.Addrs = []string{"", ""}
	t0, err := NewTCP(cfg0)
	if err != nil {
		t.Fatalf("NewTCP(0): %v", err)
	}
	addr0 := startMeshListener(t, t0, jobID)

	cfg1 := base
	cfg1.Self = 1
	cfg1.Addrs = []string{addr0, "127.0.0.1:0"}
	t1, err := NewTCP(cfg1)
	if err != nil {
		t.Fatalf("NewTCP(1): %v", err)
	}
	t.Cleanup(func() { t0.Close(); t1.Close() })

	if err := t1.Dial(); err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := t0.Ready(5 * time.Second); err != nil {
		t.Fatalf("proc 0 not ready: %v", err)
	}
	if err := t1.Ready(5 * time.Second); err != nil {
		t.Fatalf("proc 1 not ready: %v", err)
	}
	return t0, t1
}

func TestTCPPingPong(t *testing.T) {
	t0, t1 := tcpPair(t, 5*time.Second)

	const rounds = 50
	done := make(chan error, 1)
	go func() {
		buf := []int{0, 0, 0}
		for r := 0; r < rounds; r++ {
			buf[0], buf[1], buf[2] = r, 2*r, -r
			if err := t1.Send(1, 0, r, buf); err != nil {
				done <- err
				return
			}
			got, err := t1.Recv(0, 1, r, 2)
			if err != nil {
				done <- err
				return
			}
			if got[0] != r || got[1] != r*r {
				done <- errors.New("proc 1 saw wrong states")
				return
			}
		}
		done <- nil
	}()

	buf := []int{0, 0}
	for r := 0; r < rounds; r++ {
		buf[0], buf[1] = r, r*r
		if err := t0.Send(0, 1, r, buf); err != nil {
			t.Fatalf("send round %d: %v", r, err)
		}
		got, err := t0.Recv(1, 0, r, 3)
		if err != nil {
			t.Fatalf("recv round %d: %v", r, err)
		}
		if got[0] != r || got[1] != 2*r || got[2] != -r {
			t.Fatalf("round %d: got %v", r, got)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("proc 1: %v", err)
	}

	st := t0.Stats()
	if st.FramesSent != rounds || st.FramesRecv != rounds {
		t.Fatalf("proc 0 counters: %+v", st)
	}
	if st.BytesSent == 0 || st.BytesRecv == 0 {
		t.Fatalf("byte counters empty: %+v", st)
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	t0, _ := tcpPair(t, 50*time.Millisecond)
	if _, err := t0.Recv(1, 0, 0, 3); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	t0, t1 := tcpPair(t, time.Minute)
	errC := make(chan error, 1)
	go func() {
		_, err := t0.Recv(1, 0, 0, 3)
		errC <- err
	}()
	time.Sleep(20 * time.Millisecond)
	t1.Close() // peer dies: proc 0's connection poisons
	select {
	case err := <-errC:
		if err == nil {
			t.Fatal("Recv returned data after peer closed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock when the peer closed")
	}
}

// rawPeer dials tr's listener pretending to be process `from` and
// returns the raw socket so tests can write hand-crafted bytes.
func rawPeer(t *testing.T, addr string, jobID uint64, from int) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if err := WritePeerHello(c, jobID, from, time.Second); err != nil {
		t.Fatalf("raw hello: %v", err)
	}
	return c
}

func rawMesh(t *testing.T) (*TCP, net.Conn) {
	t.Helper()
	const jobID = 7
	cfg := TCPConfig{
		JobID:       jobID,
		Self:        0,
		Addrs:       []string{"", ""},
		Assign:      []int{0, 1},
		Neighbors:   twoShardNeighbors(),
		RecvTimeout: 5 * time.Second,
	}
	tr, err := NewTCP(cfg)
	if err != nil {
		t.Fatalf("NewTCP: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	addr := startMeshListener(t, tr, jobID)
	c := rawPeer(t, addr, jobID, 1)
	if err := tr.Ready(5 * time.Second); err != nil {
		t.Fatalf("ready: %v", err)
	}
	return tr, c
}

func TestTCPSeqGapFailsLoudly(t *testing.T) {
	tr, c := rawMesh(t)
	enc, err := AppendFrame(nil, &Frame{From: 1, To: 0, Round: 0, Seq: 5, States: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(enc); err != nil {
		t.Fatal(err)
	}
	var se *SeqError
	if _, err := tr.Recv(1, 0, 0, 3); !errors.As(err, &se) {
		t.Fatalf("want SeqError on sequence gap, got %v", err)
	} else if se.Want != 0 || se.Got != 5 {
		t.Fatalf("SeqError fields: %+v", se)
	}
}

func TestTCPGarbagePoisons(t *testing.T) {
	tr, c := rawMesh(t)
	// A length prefix inside bounds followed by garbage header bytes.
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], frameHeaderLen)
	c.Write(pre[:])
	c.Write(make([]byte, frameHeaderLen))
	var fe *FrameError
	if _, err := tr.Recv(1, 0, 0, 3); !errors.As(err, &fe) {
		t.Fatalf("want FrameError on garbage, got %v", err)
	}
}

func TestTCPOversizedLengthRejected(t *testing.T) {
	tr, c := rawMesh(t)
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(MaxFramePayload+1))
	c.Write(pre[:])
	if _, err := tr.Recv(1, 0, 0, 3); err == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestTCPUnknownLink(t *testing.T) {
	tr, _ := tcpPair(t, time.Second)
	var le *LinkError
	if err := tr.Send(0, 0, 0, []int{1}); !errors.As(err, &le) {
		t.Fatalf("want LinkError, got %v", err)
	}
}
