package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"
)

// Every connection to an lsharded worker opens with a 4-byte magic that
// tells the accept loop what the stream is: a coordinator control
// session or a peer's frame stream for one mesh.
var (
	// MagicControl opens a coordinator control connection ("LSC1").
	MagicControl = [4]byte{'L', 'S', 'C', '1'}
	// MagicPeer opens a peer frame stream ("LSP1"); a peer hello
	// (job ID + process index) follows.
	MagicPeer = [4]byte{'L', 'S', 'P', '1'}
)

// ControlProtoVersion is the version a JobMsg must declare; a worker
// rejects jobs from a coordinator speaking a different protocol.
const ControlProtoVersion = 1

// MaxControlBytes bounds one control message (results carry a full
// configuration, so the cap is sized like a spec plus states).
const MaxControlBytes = 64 << 20

// ReadMagic reads a connection's opening 4-byte magic.
func ReadMagic(c net.Conn, timeout time.Duration) ([4]byte, error) {
	var m [4]byte
	if err := setReadDeadline(c, timeout); err != nil {
		return m, err
	}
	_, err := io.ReadFull(c, m[:])
	return m, err
}

// WritePeerHello opens a peer frame stream: magic, job ID, and the
// dialing process's index.
func WritePeerHello(c net.Conn, jobID uint64, from int, timeout time.Duration) error {
	var b [16]byte
	copy(b[:4], MagicPeer[:])
	binary.LittleEndian.PutUint64(b[4:], jobID)
	binary.LittleEndian.PutUint32(b[12:], uint32(from))
	if err := setWriteDeadline(c, timeout); err != nil {
		return err
	}
	_, err := c.Write(b[:])
	return err
}

// ReadPeerHello reads the hello body after the accept loop consumed the
// peer magic.
func ReadPeerHello(c net.Conn, timeout time.Duration) (jobID uint64, from int, err error) {
	var b [12]byte
	if err := setReadDeadline(c, timeout); err != nil {
		return 0, 0, err
	}
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), int(binary.LittleEndian.Uint32(b[8:])), nil
}

// DialControl dials a worker's control port with retry-and-backoff and
// opens the stream with the control magic.
func DialControl(addr string, timeout time.Duration) (net.Conn, error) {
	c, err := dialRetry(addr, timeout)
	if err != nil {
		return nil, err
	}
	if err := setWriteDeadline(c, timeout); err != nil {
		c.Close()
		return nil, err
	}
	if _, err := c.Write(MagicControl[:]); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// ControlMsg is one length-prefixed JSON message on a control
// connection. Kind selects which body field is set.
type ControlMsg struct {
	Kind   string     `json:"kind"` // "job" | "ready" | "run" | "result" | "ping" | "pong"
	Job    *JobMsg    `json:"job,omitempty"`
	Ready  *ReadyMsg  `json:"ready,omitempty"`
	Run    *RunMsg    `json:"run,omitempty"`
	Result *ResultMsg `json:"result,omitempty"`
	Pong   *PongMsg   `json:"pong,omitempty"`
}

// JobMsg tells a worker which slice of a sharded chain it hosts. The
// worker rebuilds the model from the spec and the plan from the
// (shards, strategy, planSeed) triple — both constructions are
// deterministic, which is what makes a cross-process draw bit-identical
// to the centralized chain.
type JobMsg struct {
	Proto     int             `json:"proto"`
	JobID     uint64          `json:"jobId"`
	Kind      string          `json:"kind"` // "mrf" | "csp"
	Spec      json.RawMessage `json:"spec"`
	Algorithm string          `json:"algorithm"`
	DropRule3 bool            `json:"dropRule3,omitempty"`
	Shards    int             `json:"shards"`
	Strategy  string          `json:"strategy"`
	PlanSeed  uint64          `json:"planSeed"`
	Init      []int           `json:"init"`
	Workers   []string        `json:"workers"`
	Self      int             `json:"self"`
}

// ReadyMsg is the worker's answer to a JobMsg once its mesh links are
// up (or failed to come up).
type ReadyMsg struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// RunMsg asks a worker for one draw of its shards. Trace asks the
// worker to record per-shard round timing and return it in the result's
// Trace field — an additive field older workers ignore (they simply
// return no trace), so the protocol version is unchanged.
type RunMsg struct {
	Seed   uint64 `json:"seed"`
	Rounds int    `json:"rounds"`
	Trace  bool   `json:"trace,omitempty"`
}

// ResultMsg carries a worker's owned states back, concatenated over its
// local shards in ascending shard order, each shard's owned vertices in
// ascending global order.
type ResultMsg struct {
	OK         bool      `json:"ok"`
	Error      string    `json:"error,omitempty"`
	States     []int     `json:"states,omitempty"`
	Msgs       int64     `json:"msgs,omitempty"`
	Vals       int64     `json:"vals,omitempty"`
	WaitNS     int64     `json:"waitNs,omitempty"`
	WireFrames int64     `json:"wireFrames,omitempty"`
	WireBytes  int64     `json:"wireBytes,omitempty"`
	Trace      *TraceMsg `json:"trace,omitempty"`
}

// TraceMsg ships a worker's per-shard round timing back to the
// coordinator so its spans join the coordinator's trace. Round-end
// timestamps are absolute UnixNano from the worker's clock; on loopback
// (the deployment the cross-process runtime targets today) that aligns
// with the coordinator's clock, across hosts it is best-effort.
type TraceMsg struct {
	Shards []ShardTraceMsg `json:"shards"`
}

// ShardTraceMsg is one shard's round series: parallel arrays, one entry
// per recorded round.
type ShardTraceMsg struct {
	Shard     int     `json:"shard"`
	ComputeNS []int64 `json:"computeNs"`
	BarrierNS []int64 `json:"barrierNs"`
	Flips     []int64 `json:"flips"`
	EndNS     []int64 `json:"endNs"` // absolute UnixNano round ends
}

// PongMsg is a worker's answer to a "ping" control message: a liveness
// probe for supervisors (coordinator heartbeats, lserved startup checks)
// that also reports whether the worker would accept a new job right now.
type PongMsg struct {
	Draining   bool `json:"draining,omitempty"`
	ActiveJobs int  `json:"activeJobs,omitempty"`
}

// Ping opens a short-lived control connection to a worker, sends a
// "ping", and waits for the "pong". The whole exchange — dial, write,
// read — shares one timeout budget. It never disturbs hosted jobs: the
// worker answers pings from its accept loop, off the draw path.
func Ping(addr string, timeout time.Duration) (*PongMsg, error) {
	start := time.Now()
	c, err := DialControl(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	remain := func() time.Duration {
		if timeout <= 0 {
			return 0
		}
		d := timeout - time.Since(start)
		if d <= 0 {
			return time.Nanosecond // budget spent: fail fast, not block forever
		}
		return d
	}
	if err := WriteControl(c, &ControlMsg{Kind: "ping"}, remain()); err != nil {
		return nil, fmt.Errorf("transport: ping %s: %w", addr, err)
	}
	m, err := ReadControl(c, remain())
	if err != nil {
		return nil, fmt.Errorf("transport: ping %s: %w", addr, err)
	}
	if m.Kind != "pong" {
		return nil, fmt.Errorf("transport: ping %s: unexpected %q control message", addr, m.Kind)
	}
	pong := m.Pong
	if pong == nil {
		pong = &PongMsg{}
	}
	return pong, nil
}

// WriteControl writes one length-prefixed JSON control message.
func WriteControl(c net.Conn, m *ControlMsg, timeout time.Duration) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if len(body) > MaxControlBytes {
		return fmt.Errorf("transport: control message %d bytes exceeds limit %d", len(body), MaxControlBytes)
	}
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(len(body)))
	if err := setWriteDeadline(c, timeout); err != nil {
		return err
	}
	if _, err := c.Write(pre[:]); err != nil {
		return err
	}
	_, err = c.Write(body)
	return err
}

// ReadControl reads one length-prefixed JSON control message. A zero
// timeout blocks indefinitely (a worker idling between draws).
func ReadControl(c net.Conn, timeout time.Duration) (*ControlMsg, error) {
	if err := setReadDeadline(c, timeout); err != nil {
		return nil, err
	}
	var pre [4]byte
	if _, err := io.ReadFull(c, pre[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(pre[:])
	if n == 0 || n > MaxControlBytes {
		return nil, fmt.Errorf("transport: control message length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c, body); err != nil {
		return nil, err
	}
	var m ControlMsg
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("transport: bad control message: %w", err)
	}
	return &m, nil
}

func setReadDeadline(c net.Conn, timeout time.Duration) error {
	if timeout <= 0 {
		return c.SetReadDeadline(time.Time{})
	}
	return c.SetReadDeadline(time.Now().Add(timeout))
}

func setWriteDeadline(c net.Conn, timeout time.Duration) error {
	if timeout <= 0 {
		return c.SetWriteDeadline(time.Time{})
	}
	return c.SetWriteDeadline(time.Now().Add(timeout))
}
