package transport

import (
	"fmt"
	"sync"
	"time"
)

type chanMsg struct {
	round  int
	states []int
}

// Chan is the in-process transport: one double-buffered channel per
// directed link, exactly the exchange fabric the cluster engine used
// before the transport layer was split out. Frames carry the sender's
// slice by reference (zero copy); the cluster engines double-buffer
// their send slices per link, which together with the capacity-2
// channels and the lockstep round structure keeps sends non-blocking
// and deadlock-free.
//
// A non-zero recv timeout turns a missing frame into ErrTimeout; the
// engines leave it at 0 (block until Close) because in-process lockstep
// cannot lose frames, while fault-injection tests set it to keep a
// deliberately dropped frame from hanging the test.
type Chan struct {
	ch      [][]chan chanMsg
	timeout time.Duration
	done    chan struct{}
	once    sync.Once
}

// NewChan builds the channel fabric for a plan's neighbor lists:
// neighbors[s] holds the shards s exchanges boundaries with, and every
// directed pair gets a capacity-2 channel. timeout bounds each Recv
// (0 = block until the frame arrives or the transport closes).
func NewChan(neighbors [][]int, timeout time.Duration) *Chan {
	k := len(neighbors)
	ch := make([][]chan chanMsg, k)
	for s := range ch {
		ch[s] = make([]chan chanMsg, k)
	}
	for s, ns := range neighbors {
		for _, j := range ns {
			if ch[s][j] == nil {
				ch[s][j] = make(chan chanMsg, 2)
			}
			if ch[j][s] == nil {
				ch[j][s] = make(chan chanMsg, 2)
			}
		}
	}
	return &Chan{ch: ch, timeout: timeout, done: make(chan struct{})}
}

func (t *Chan) link(from, to int) (chan chanMsg, error) {
	if from < 0 || from >= len(t.ch) || to < 0 || to >= len(t.ch) || t.ch[from][to] == nil {
		return nil, &LinkError{From: from, To: to}
	}
	return t.ch[from][to], nil
}

// Send publishes the round-r states of shard from for neighbor to. The
// slice is handed to the receiver by reference; the caller must not
// reuse it until its next send on the same link has been consumed
// (double-buffering per link, as the cluster engines do).
func (t *Chan) Send(from, to, round int, states []int) error {
	c, err := t.link(from, to)
	if err != nil {
		return err
	}
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	select {
	case c <- chanMsg{round: round, states: states}:
		return nil
	case <-t.done:
		return ErrClosed
	}
}

// Recv blocks for the round-r frame on from→to.
func (t *Chan) Recv(from, to, round, want int) ([]int, error) {
	c, err := t.link(from, to)
	if err != nil {
		return nil, err
	}
	select {
	case <-t.done:
		return nil, ErrClosed
	default:
	}
	var msg chanMsg
	if t.timeout > 0 {
		timer := time.NewTimer(t.timeout)
		defer timer.Stop()
		select {
		case msg = <-c:
		case <-t.done:
			return nil, ErrClosed
		case <-timer.C:
			return nil, &linkTimeout{from: from, to: to, round: round}
		}
	} else {
		select {
		case msg = <-c:
		case <-t.done:
			return nil, ErrClosed
		}
	}
	if msg.round != round {
		return nil, &RoundError{From: from, To: to, Want: round, Got: msg.round}
	}
	if len(msg.states) != want {
		return nil, &SizeError{From: from, To: to, Want: want, Got: len(msg.states)}
	}
	return msg.states, nil
}

// Close poisons all pending and future operations with ErrClosed.
func (t *Chan) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}

// linkTimeout is an ErrTimeout carrying the link that starved.
type linkTimeout struct {
	from, to, round int
}

func (e *linkTimeout) Error() string {
	return fmt.Sprintf("%v: no frame on link %d->%d for round %d", ErrTimeout, e.from, e.to, e.round)
}

func (e *linkTimeout) Unwrap() error { return ErrTimeout }
