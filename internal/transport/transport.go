// Package transport carries the boundary-exchange frames of sharded
// chains between shard workers. A Transport moves the symmetric
// SendTo/RecvFrom exchange maps of a partition.Plan (or CSPPlan) as
// (from-shard, to-shard, round, []state) frames between the goroutines
// that run the shards, whether those goroutines live in one process
// (Chan) or in several processes connected over TCP (TCP, composed with
// Chan through Router when a process hosts more than one shard).
//
// The cluster engines drive a Transport in strict lockstep: in round r
// every shard sends exactly one frame to each plan neighbor and then
// receives exactly one frame from each plan neighbor, tagged with r.
// That protocol is what makes the implementations allocation-free on
// the hot path — each directed link needs only two in-flight buffers —
// and it is also what makes failures loud: any dropped, duplicated,
// truncated, or reordered frame surfaces as a typed error (ErrTimeout,
// RoundError, SizeError, SeqError) at the next Send or Recv instead of
// silently corrupting a chain.
package transport

import (
	"errors"
	"fmt"
)

// Transport moves boundary frames between shard workers.
//
// Send publishes the round-r boundary states of shard `from` for plan
// neighbor `to`. The states slice is borrowed only for the duration of
// the call: implementations either hand the very slice to the receiver
// (Chan — the caller must double-buffer per link, as the cluster
// engines do) or serialize it before returning (TCP).
//
// Recv blocks for the round-r frame on the directed link from→to and
// returns its states. The returned slice is owned by the transport and
// is valid only until the next Recv on the same link; callers copy out
// immediately. want is the expected state count; a mismatch is a
// SizeError.
//
// Close releases the transport and poisons every pending and future
// Send/Recv with ErrClosed. It is safe to call concurrently with
// Send/Recv and more than once; the cluster engines use it to unblock
// all sibling shard workers when one of them fails.
type Transport interface {
	Send(from, to, round int, states []int) error
	Recv(from, to, round, want int) ([]int, error)
	Close() error
}

// ErrClosed is reported by every operation on a closed Transport.
var ErrClosed = errors.New("transport: closed")

// ErrTimeout is reported when a frame does not arrive (or cannot be
// written) within the transport's deadline — the signature of a dropped
// frame or a dead peer.
var ErrTimeout = errors.New("transport: timeout")

// RoundError reports a frame whose round tag does not match the round
// the receiver is in — the signature of a duplicated or reordered
// frame reaching a lockstep receiver.
type RoundError struct {
	From, To  int
	Want, Got int
}

func (e *RoundError) Error() string {
	return fmt.Sprintf("transport: link %d->%d: got frame for round %d in round %d",
		e.From, e.To, e.Got, e.Want)
}

// SizeError reports a frame whose state count does not match the
// exchange map of the link it arrived on — the signature of a
// truncated or padded frame.
type SizeError struct {
	From, To  int
	Want, Got int
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("transport: link %d->%d: frame carries %d states, exchange map needs %d",
		e.From, e.To, e.Got, e.Want)
}

// SeqError reports a gap or repeat in a link's frame sequence numbers —
// the wire-level signature of a lost or reordered frame, detected by
// the TCP transport before the states are even decoded.
type SeqError struct {
	From, To  int
	Want, Got uint64
}

func (e *SeqError) Error() string {
	return fmt.Sprintf("transport: link %d->%d: frame sequence %d, want %d",
		e.From, e.To, e.Got, e.Want)
}

// LinkError reports an operation on a (from, to) pair that is not a
// directed link of the plan the transport was built for.
type LinkError struct {
	From, To int
}

func (e *LinkError) Error() string {
	return fmt.Sprintf("transport: %d->%d is not a link of the plan", e.From, e.To)
}
