package transport

// Router splits a plan's links between two transports by shard
// placement: links whose endpoints live on the same process go over
// local (a Chan), links that cross a process boundary go over remote (a
// TCP mesh). A worker hosting several shards of a cross-process plan
// composes the two so co-hosted shards keep the zero-copy in-process
// exchange.
type Router struct {
	assign []int
	local  Transport
	remote Transport
}

// NewRouter routes by assign (shard → process): same process → local,
// different → remote.
func NewRouter(assign []int, local, remote Transport) *Router {
	return &Router{assign: assign, local: local, remote: remote}
}

func (r *Router) pick(from, to int) (Transport, error) {
	if from < 0 || from >= len(r.assign) || to < 0 || to >= len(r.assign) {
		return nil, &LinkError{From: from, To: to}
	}
	if r.assign[from] == r.assign[to] {
		return r.local, nil
	}
	return r.remote, nil
}

// Send routes the frame by the endpoints' placement.
func (r *Router) Send(from, to, round int, states []int) error {
	t, err := r.pick(from, to)
	if err != nil {
		return err
	}
	return t.Send(from, to, round, states)
}

// Recv routes the wait by the endpoints' placement.
func (r *Router) Recv(from, to, round, want int) ([]int, error) {
	t, err := r.pick(from, to)
	if err != nil {
		return nil, err
	}
	return t.Recv(from, to, round, want)
}

// Close closes both transports and returns the first error.
func (r *Router) Close() error {
	err := r.local.Close()
	if err2 := r.remote.Close(); err == nil {
		err = err2
	}
	return err
}
