package transport

import (
	"sync"
	"time"
)

// FaultOp selects what a Fault injection does to a frame.
type FaultOp int

const (
	// FaultDrop swallows the frame: the receiver starves and times out.
	FaultDrop FaultOp = iota
	// FaultTruncate cuts the frame's states in half: the receiver's
	// exchange-map length check fails with a SizeError.
	FaultTruncate
	// FaultDuplicate sends the frame twice: the receiver consumes the
	// duplicate in the next round and fails with a RoundError.
	FaultDuplicate
	// FaultDelay holds the frame for Delay before sending it; a delay
	// below the receive deadline must be survived, not errored.
	FaultDelay
	// FaultReorder withholds the frame until the next frame on the same
	// link and sends the two swapped: the receiver sees the later round
	// first and fails with a RoundError (or the receiver starves and
	// times out if the chain aborts before the link sends again).
	FaultReorder
)

// Injection is one scheduled fault.
type Injection struct {
	Op    FaultOp
	Delay time.Duration // FaultDelay only
}

// Fault wraps a Transport and injects faults into selected sends: the
// i-th Send call overall (0-based, counted across all links) is subject
// to inject[i]. Receives pass through untouched. It exists so tests can
// prove the failure semantics — a faulted frame must surface as a typed
// error at some shard worker, never as a hang or a silently wrong
// configuration.
type Fault struct {
	inner  Transport
	mu     sync.Mutex
	n      int
	inject map[int]Injection
	held   map[uint64]*heldFrame
}

type heldFrame struct {
	from, to, round int
	states          []int
}

// NewFault wraps inner with the given injection schedule.
func NewFault(inner Transport, inject map[int]Injection) *Fault {
	return &Fault{inner: inner, inject: inject, held: make(map[uint64]*heldFrame)}
}

// Send applies the scheduled fault for this call index, if any. Only
// the call counter and the withheld-frame slot are guarded by the
// mutex; the actual sends happen outside it, so a fault that overfills
// a bounded link (duplicate) blocks only its own shard goroutine and
// the sibling shards stay free to drain and detect it.
func (f *Fault) Send(from, to, round int, states []int) error {
	f.mu.Lock()
	inj, ok := f.inject[f.n]
	f.n++
	if ok && inj.Op == FaultReorder {
		f.held[linkKey(from, to)] = &heldFrame{from: from, to: to, round: round, states: append([]int(nil), states...)}
		f.mu.Unlock()
		return nil
	}
	held := f.held[linkKey(from, to)]
	delete(f.held, linkKey(from, to))
	f.mu.Unlock()

	err := func() error {
		if !ok {
			return f.inner.Send(from, to, round, states)
		}
		switch inj.Op {
		case FaultDrop:
			return nil
		case FaultTruncate:
			return f.inner.Send(from, to, round, states[:len(states)/2])
		case FaultDuplicate:
			if err := f.inner.Send(from, to, round, states); err != nil {
				return err
			}
			// The duplicate must not alias the caller's double buffer.
			dup := append([]int(nil), states...)
			return f.inner.Send(from, to, round, dup)
		case FaultDelay:
			time.Sleep(inj.Delay)
			return f.inner.Send(from, to, round, states)
		default:
			return f.inner.Send(from, to, round, states)
		}
	}()
	if err != nil {
		return err
	}
	// A frame withheld by FaultReorder goes out after this later frame
	// on the same link — the two arrive swapped.
	if held != nil {
		return f.inner.Send(held.from, held.to, held.round, held.states)
	}
	return nil
}

// Recv passes through to the wrapped transport.
func (f *Fault) Recv(from, to, round, want int) ([]int, error) {
	return f.inner.Recv(from, to, round, want)
}

// Close closes the wrapped transport.
func (f *Fault) Close() error { return f.inner.Close() }
