package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Median != 7 {
		t.Fatalf("singleton summary %+v", one)
	}
}

func TestSummarizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty summary did not panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30}
	if q := Quantile(sorted, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 30 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.5); q != 15 {
		t.Fatalf("median = %v", q)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter(3)
	for i := 0; i < 6; i++ {
		c.Observe(i % 3)
	}
	d := c.Dist()
	for i, p := range d {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Fatalf("dist[%d] = %v", i, p)
		}
	}
	empty := NewCounter(2).Dist()
	if empty[0] != 0 || empty[1] != 0 {
		t.Fatal("empty counter should give zeros")
	}
}

func TestTV(t *testing.T) {
	if tv := TV([]float64{1, 0}, []float64{0.5, 0.5}); math.Abs(tv-0.5) > 1e-12 {
		t.Fatalf("TV %v", tv)
	}
}

func TestWilsonCI(t *testing.T) {
	lo, hi := WilsonCI(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("CI [%v, %v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("CI too wide: [%v, %v]", lo, hi)
	}
	lo0, hi0 := WilsonCI(0, 0, 1.96)
	if lo0 != 0 || hi0 != 1 {
		t.Fatalf("empty CI [%v %v]", lo0, hi0)
	}
	lo1, _ := WilsonCI(100, 100, 1.96)
	if lo1 < 0.9 {
		t.Fatalf("CI for 100/100 too loose: lo %v", lo1)
	}
}

func TestLinFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, err := LinFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("fit a=%v b=%v", a, b)
	}
	if _, _, err := LinFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, _, err := LinFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestLogXFit(t *testing.T) {
	// y = 2 + 3·ln x.
	xs := []float64{1, math.E, math.E * math.E}
	ys := []float64{2, 5, 8}
	a, b, err := LogXFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2) > 1e-9 || math.Abs(b-3) > 1e-9 {
		t.Fatalf("log fit a=%v b=%v", a, b)
	}
	if _, _, err := LogXFit([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Fatal("non-positive x accepted")
	}
}

func TestPowerFit(t *testing.T) {
	// y = 5·x^1.5.
	xs := []float64{1, 4, 9, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 1.5)
	}
	c, p, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-5) > 1e-9 || math.Abs(p-1.5) > 1e-9 {
		t.Fatalf("power fit c=%v p=%v", c, p)
	}
}

func TestGeometricDecayRate(t *testing.T) {
	// y = 10·(0.5)^x.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 10 * math.Pow(0.5, x)
	}
	r, err := GeometricDecayRate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("decay rate %v, want 0.5", r)
	}
	if _, err := GeometricDecayRate([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Fatal("non-positive y accepted")
	}
}
