// Package stats provides the small statistical toolkit used by the
// experiment harnesses: summaries, empirical distributions, total-variation
// estimates, confidence intervals, and least-squares fits for scaling plots.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of real values.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	Q25, Q75  float64
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(xs)-1))
	} else {
		s.Std = 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.Q25 = Quantile(sorted, 0.25)
	s.Q75 = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-quantile of an ascending-sorted slice using linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Counter accumulates an empirical distribution over a finite index set.
type Counter struct {
	Counts []float64
	Total  float64
}

// NewCounter returns a Counter over `size` outcomes.
func NewCounter(size int) *Counter {
	return &Counter{Counts: make([]float64, size)}
}

// Observe adds one observation of outcome i.
func (c *Counter) Observe(i int) {
	c.Counts[i]++
	c.Total++
}

// Dist returns the normalized empirical distribution.
func (c *Counter) Dist() []float64 {
	out := make([]float64, len(c.Counts))
	if c.Total == 0 {
		return out
	}
	for i, x := range c.Counts {
		out[i] = x / c.Total
	}
	return out
}

// TV returns the total variation distance between two distributions.
func TV(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: TV over different supports")
	}
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}

// WilsonCI returns the Wilson score interval for a binomial proportion at
// confidence z (1.96 for 95%).
func WilsonCI(successes, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	return math.Max(0, center-half), math.Min(1, center+half)
}

// LinFit returns the least-squares line y = a + b·x.
func LinFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: LinFit needs two aligned samples of size >= 2")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return 0, 0, fmt.Errorf("stats: LinFit degenerate x values")
	}
	b = (n*sxy - sx*sy) / det
	a = (sy - b*sx) / n
	return a, b, nil
}

// LogXFit fits y = a + b·ln(x): the model for "rounds grow logarithmically
// in n". All xs must be positive.
func LogXFit(xs, ys []float64) (a, b float64, err error) {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return 0, 0, fmt.Errorf("stats: LogXFit needs positive x, got %v", x)
		}
		lx[i] = math.Log(x)
	}
	return LinFit(lx, ys)
}

// PowerFit fits y = c·x^p by regressing ln y on ln x; returns (c, p). All
// values must be positive.
func PowerFit(xs, ys []float64) (c, p float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, fmt.Errorf("stats: PowerFit needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	a, b, err := LinFit(lx, ly)
	if err != nil {
		return 0, 0, err
	}
	return math.Exp(a), b, nil
}

// GeometricDecayRate fits y_i = c·r^{x_i} and returns r — the estimator for
// exponential correlation decay (paper Eq. 28). All ys must be positive.
func GeometricDecayRate(xs, ys []float64) (r float64, err error) {
	ly := make([]float64, len(ys))
	for i, y := range ys {
		if y <= 0 {
			return 0, fmt.Errorf("stats: GeometricDecayRate needs positive y")
		}
		ly[i] = math.Log(y)
	}
	_, b, err := LinFit(xs, ly)
	if err != nil {
		return 0, err
	}
	return math.Exp(b), nil
}
