package cluster

import (
	"errors"
	"testing"
	"time"

	"locsample/internal/chains"
	"locsample/internal/csp"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/partition"
	"locsample/internal/transport"
)

// faultEngine builds a sharded coloring engine whose boundary fabric
// injects the given faults (frame counting starts at 1).
func faultEngine(t *testing.T, k int, inject map[int]transport.Injection) (*Engine, *mrf.MRF, []int, []int) {
	t.Helper()
	g := graph.Grid(6, 6)
	m := mrf.Coloring(g, 3*g.MaxDeg())
	init := greedyColoring(t, m)
	plan, err := partition.Build(g, k, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}
	var tr transport.Transport = transport.NewChan(plan.NeighborLists(), 2*time.Second)
	if inject != nil {
		tr = transport.NewFault(tr, inject)
	}
	local := make([]int, k)
	for i := range local {
		local[i] = i
	}
	eng, err := NewWithTransport(m, plan, chains.LocalMetropolis, false, local, tr)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, g.N())
	return eng, m, init, out
}

func greedyColoring(t *testing.T, m *mrf.MRF) []int {
	t.Helper()
	init, _ := m.G.GreedyColoring()
	return init
}

// A clean engine over an explicit (un-faulted) transport must match the
// default engine bit-for-bit — WithTransport is a fabric swap, not a
// semantics change.
func TestTransportEngineBitIdentical(t *testing.T) {
	eng, m, init, out := faultEngine(t, 3, nil)
	defer eng.Close()
	if _, err := eng.Run(init, 11, 8, out); err != nil {
		t.Fatal(err)
	}
	plan, err := partition.Build(m.G, 3, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(m, plan, chains.LocalMetropolis, false)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, m.G.N())
	if _, err := ref.Run(init, 11, 8, want); err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if out[v] != want[v] {
			t.Fatalf("custom-transport draw diverges at vertex %d", v)
		}
	}
}

// A dropped boundary frame must surface as a typed timeout within the
// transport deadline — no hang, no silently wrong configuration.
func TestEngineDroppedFrameFailsLoudly(t *testing.T) {
	eng, _, init, out := faultEngine(t, 3, map[int]transport.Injection{
		2: {Op: transport.FaultDrop},
	})
	defer eng.Close()
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(init, 11, 8, out)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dropped frame: Run returned nil error")
		}
		if !droppedFrameError(err) {
			t.Fatalf("dropped frame: error %v is not a typed transport failure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dropped frame: Run hung past the transport deadline")
	}
}

// droppedFrameError reports whether err is one of the typed failures a
// dropped frame may legitimately surface as: the receiver either times
// out waiting for the lost round, or sees the sender's next frame with a
// stale round tag; sibling shards observe the poisoned transport as
// ErrClosed. All three are loud; what a drop must never produce is a
// clean draw with a wrong configuration.
func droppedFrameError(err error) bool {
	var re *transport.RoundError
	return errors.Is(err, transport.ErrTimeout) ||
		errors.Is(err, transport.ErrClosed) ||
		errors.As(err, &re)
}

// A truncated frame must surface as a SizeError (possibly ErrClosed on
// the shards that lost the race to the poisoned transport).
func TestEngineTruncatedFrameFailsLoudly(t *testing.T) {
	eng, _, init, out := faultEngine(t, 3, map[int]transport.Injection{
		3: {Op: transport.FaultTruncate},
	})
	defer eng.Close()
	_, err := eng.Run(init, 11, 8, out)
	if err == nil {
		t.Fatal("truncated frame: Run returned nil error")
	}
	var se *transport.SizeError
	if !errors.As(err, &se) && !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("truncated frame: error %v is neither SizeError nor ErrClosed", err)
	}
}

// A duplicated frame desynchronizes the link's round tags: the engine
// must detect the stale round, not absorb the duplicate.
func TestEngineDuplicatedFrameFailsLoudly(t *testing.T) {
	eng, _, init, out := faultEngine(t, 3, map[int]transport.Injection{
		4: {Op: transport.FaultDuplicate},
	})
	defer eng.Close()
	_, err := eng.Run(init, 11, 8, out)
	if err == nil {
		t.Fatal("duplicated frame: Run returned nil error")
	}
	var re *transport.RoundError
	if !errors.As(err, &re) && !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("duplicated frame: error %v is neither RoundError nor ErrClosed", err)
	}
}

// A delayed frame within the deadline is not an error: lockstep rounds
// absorb latency, they only reject loss and corruption.
func TestEngineDelayedFrameSucceeds(t *testing.T) {
	eng, m, init, out := faultEngine(t, 3, map[int]transport.Injection{
		2: {Op: transport.FaultDelay, Delay: 50 * time.Millisecond},
	})
	defer eng.Close()
	if _, err := eng.Run(init, 11, 8, out); err != nil {
		t.Fatalf("delayed frame: %v", err)
	}
	plan, err := partition.Build(m.G, 3, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(m, plan, chains.LocalMetropolis, false)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, m.G.N())
	if _, err := ref.Run(init, 11, 8, want); err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if out[v] != want[v] {
			t.Fatalf("delayed draw diverges at vertex %d", v)
		}
	}
}

// The CSP engine shares the error plumbing: a dropped frame fails the
// draw loudly there too.
func TestCSPEngineDroppedFrameFailsLoudly(t *testing.T) {
	g := graph.Grid(5, 5)
	c := csp.DominatingSet(g)
	init := make([]int, c.N)
	for i := range init {
		init[i] = 1 // everything in the set dominates trivially
	}
	plan, err := partition.BuildCSP(c, 3, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewFault(
		transport.NewChan(plan.NeighborLists(), 2*time.Second),
		map[int]transport.Injection{2: {Op: transport.FaultDrop}},
	)
	eng, err := NewCSPWithTransport(c, plan, chains.LubyGlauber, []int{0, 1, 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	out := make([]int, c.N)
	_, err = eng.Run(init, 9, 8, out)
	if err == nil {
		t.Fatal("dropped frame: CSP Run returned nil error")
	}
	if !droppedFrameError(err) {
		t.Fatalf("dropped frame: error %v is not a typed transport failure", err)
	}
}
