package cluster

import (
	"fmt"

	"testing"

	"locsample/internal/chains"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/partition"
	"locsample/internal/rng"
)

// testModels spans the code paths that must stay bit-identical: the
// coloring fast path, the general LocalMetropolis activity path (Ising),
// and the LubyGlauber marginal path, on coherent (grid) and incoherent
// (gnp) vertex numberings.
func testModels(t *testing.T) map[string]*mrf.MRF {
	t.Helper()
	grid := graph.Grid(12, 12)
	gnp := graph.Gnp(150, 0.04, rng.New(17))
	return map[string]*mrf.MRF{
		"grid-coloring": mrf.Coloring(grid, 13),
		"grid-ising":    mrf.Ising(grid, 0.4, 0.7),
		"gnp-coloring":  mrf.Coloring(gnp, 3*gnp.MaxDeg()+1),
		"gnp-ising":     mrf.Ising(gnp, 0.3, 1.1),
		"gnp-hardcore":  mrf.Hardcore(gnp, 0.2),
	}
}

// TestShardedBitIdentical is the keystone invariant of the sharded
// runtime, pinned in CI: for every model, algorithm, partition strategy,
// and shard count, the cluster engine's output equals the centralized
// chains.Sampler trajectory at the same seed, byte for byte.
func TestShardedBitIdentical(t *testing.T) {
	const rounds = 30
	algs := []chains.Algorithm{chains.LubyGlauber, chains.LocalMetropolis}
	// 8 and 11 sit at and above TreeBarrierMinShards, so the publish-buffer
	// + tree-reduce barrier path is gated here alongside the channel path.
	shardCounts := []int{1, 2, 4, 7, 8, 11}
	for name, m := range testModels(t) {
		init, err := chains.GreedyFeasible(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, alg := range algs {
			seed := uint64(0xfeed + len(name))
			cs := chains.NewSampler(m, init, seed, alg, chains.Options{})
			cs.Run(rounds)
			want := cs.X
			for _, strat := range []partition.Strategy{partition.Range, partition.BFS} {
				for _, k := range shardCounts {
					plan, err := partition.Build(m.G, k, strat, 99)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					eng, err := New(m, plan, alg, false)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					out := make([]int, m.G.N())
					st, err := eng.Run(init, seed, rounds, out)
					if err != nil {
						t.Fatal(err)
					}
					if !equalInts(out, want) {
						t.Fatalf("%s %v %v shards=%d: sharded draw diverges from centralized chain",
							name, alg, strat, k)
					}
					if st.Shards != k || st.Rounds != rounds {
						t.Fatalf("%s: stats report shards=%d rounds=%d", name, st.Shards, st.Rounds)
					}
				}
			}
		}
	}
}

// TestDropRule3Parity: the E4 ablation shards identically too.
func TestDropRule3Parity(t *testing.T) {
	g := graph.Grid(9, 11)
	m := mrf.Coloring(g, 12)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	cs := chains.NewSampler(m, init, 5, chains.LocalMetropolis, chains.Options{DropRule3: true})
	cs.Run(25)
	plan, err := partition.Build(g, 3, partition.BFS, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(m, plan, chains.LocalMetropolis, true)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, g.N())
	eng.Run(init, 5, 25, out)
	if !equalInts(out, cs.X) {
		t.Fatal("dropRule3 sharded draw diverges from centralized chain")
	}
}

// TestEngineReuse: an engine rerun with the same inputs reproduces itself,
// and reruns with different seeds match fresh engines — the property the
// batch Sampler's engine pool relies on.
func TestEngineReuse(t *testing.T) {
	g := graph.Gnp(120, 0.05, rng.New(3))
	m := mrf.Coloring(g, 3*g.MaxDeg()+1)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.Build(g, 4, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(m, plan, chains.LocalMetropolis, false)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	a := make([]int, g.N())
	b := make([]int, g.N())
	eng.Run(init, 7, rounds, a)
	eng.Run(init, 8, rounds, b) // interleave a different seed
	c := make([]int, g.N())
	eng.Run(init, 7, rounds, c)
	if !equalInts(a, c) {
		t.Fatal("engine rerun with identical inputs diverged")
	}
	fresh, err := New(m, plan, chains.LocalMetropolis, false)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]int, g.N())
	fresh.Run(init, 8, rounds, d)
	if !equalInts(b, d) {
		t.Fatal("reused engine diverged from fresh engine")
	}
}

// TestClusterStats: boundary accounting matches the plan — each round,
// each shard sends one message per neighbor carrying its SendTo band.
func TestClusterStats(t *testing.T) {
	g := graph.Grid(10, 10)
	m := mrf.Coloring(g, 13)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.Build(g, 4, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(m, plan, chains.LocalMetropolis, false)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 6
	out := make([]int, g.N())
	st, err := eng.Run(init, 1, rounds, out)
	if err != nil {
		t.Fatal(err)
	}
	var wantMsgs, wantVals int64
	for _, sh := range plan.Shards {
		wantMsgs += int64(len(sh.Neighbors))
		for _, j := range sh.Neighbors {
			wantVals += int64(len(sh.SendTo[j]))
		}
	}
	wantMsgs *= rounds
	wantVals *= rounds
	if st.BoundaryMessages != wantMsgs || st.BoundaryValues != wantVals {
		t.Fatalf("stats: messages=%d values=%d, want %d, %d",
			st.BoundaryMessages, st.BoundaryValues, wantMsgs, wantVals)
	}
	if wantVals != int64(rounds)*int64(plan.HaloCopies) {
		t.Fatalf("plan: HaloCopies=%d inconsistent with exchange maps", plan.HaloCopies)
	}
}

// TestUnsupportedAlgorithms: the sequential baselines cannot shard.
func TestUnsupportedAlgorithms(t *testing.T) {
	g := graph.Cycle(10)
	m := mrf.Coloring(g, 5)
	plan, err := partition.Build(g, 2, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []chains.Algorithm{chains.Glauber, chains.SystematicScan, chains.ChromaticGlauber} {
		if _, err := New(m, plan, alg, false); err == nil {
			t.Fatalf("%v accepted for sharding", alg)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTreeBarrier: the reusable tree-reduce barrier must be a full
// rendezvous every pass — no worker observes a counter value from a pass it
// has not itself reached.
func TestTreeBarrier(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8, 13, 32} {
		b := newTreeBarrier(k)
		const passes = 50
		counters := make([]int, k)
		done := make(chan error, k)
		for i := 0; i < k; i++ {
			go func(i int) {
				for p := 0; p < passes; p++ {
					counters[i] = p + 1
					b.wait(i)
					// After the barrier every worker must have finished
					// pass p+1's increment.
					for j := 0; j < k; j++ {
						if counters[j] < p+1 {
							done <- errAt(i, j, p)
							return
						}
					}
					b.wait(i)
				}
				done <- nil
			}(i)
		}
		for i := 0; i < k; i++ {
			if err := <-done; err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
		}
	}
}

func errAt(i, j, p int) error {
	return fmt.Errorf("worker %d saw worker %d behind at pass %d", i, j, p)
}

// TestEngineReuseTreeBarrier: reuse determinism holds on the tree-barrier
// path too (K >= TreeBarrierMinShards).
func TestEngineReuseTreeBarrier(t *testing.T) {
	g := graph.Gnp(200, 0.04, rng.New(5))
	m := mrf.Coloring(g, 3*g.MaxDeg()+1)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.Build(g, TreeBarrierMinShards+1, partition.BFS, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(m, plan, chains.LocalMetropolis, false)
	if err != nil {
		t.Fatal(err)
	}
	if eng.bar == nil {
		t.Fatalf("K=%d engine did not select the tree barrier", plan.K)
	}
	const rounds = 25
	a := make([]int, g.N())
	b := make([]int, g.N())
	eng.Run(init, 21, rounds, a)
	eng.Run(init, 22, rounds, b)
	c := make([]int, g.N())
	eng.Run(init, 21, rounds, c)
	if !equalInts(a, c) {
		t.Fatal("tree-barrier engine rerun with identical inputs diverged")
	}
	cs := chains.NewSampler(m, init, 21, chains.LocalMetropolis, chains.Options{})
	cs.Run(rounds)
	if !equalInts(a, cs.X) {
		t.Fatal("tree-barrier draw diverges from centralized chain")
	}
}
