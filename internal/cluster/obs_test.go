package cluster

import (
	"testing"

	"locsample/internal/chains"
	"locsample/internal/csp"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/obs"
	"locsample/internal/partition"
)

// obsObserver builds the full instrumentation stack a traced+metered
// draw attaches: a trace recorder teed with a metrics feeder. Also the
// compile-time check that obs satisfies chains.RoundObserver
// structurally.
func obsObserver(shards, rounds int) (chains.RoundObserver, *obs.RoundRecorder) {
	rec := obs.NewRoundRecorder(shards, rounds)
	r := obs.NewRegistry()
	rm := &obs.RoundMetrics{
		ComputeNS: r.Histogram("compute_seconds", "", 1e-9),
		BarrierNS: r.Histogram("barrier_seconds", "", 1e-9),
		Flips:     r.Counter("flips_total", ""),
		Rounds:    r.Counter("rounds_total", ""),
	}
	return &obs.TeeRounds{A: rec, B: rm}, rec
}

// TestClusterRoundsAllocFree extends the TestCSPRoundsAllocFree gate to
// the sharded engines: a full instrumented round (kernel + observer
// callback) must allocate nothing, with instrumentation both disabled
// (nil observer) and enabled (recorder + metrics). Uses a single-shard
// plan so runShard can drive rounds synchronously.
func TestClusterRoundsAllocFree(t *testing.T) {
	g := graph.Grid(16, 16)
	m := mrf.Coloring(g, 3*g.MaxDeg()+1)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, g.N())
	for _, alg := range []chains.Algorithm{chains.LubyGlauber, chains.LocalMetropolis} {
		for _, instrumented := range []bool{false, true} {
			plan, err := partition.Build(g, 1, partition.Range, 0)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := New(m, plan, alg, false)
			if err != nil {
				t.Fatal(err)
			}
			if instrumented {
				o, _ := obsObserver(1, 64)
				eng.SetObserver(o)
			}
			w := eng.ws[0]
			for l, gv := range w.sh.Global {
				w.x[l] = init[gv]
			}
			if n := testing.AllocsPerRun(20, func() {
				if err := eng.runShard(0, 1, 1, out); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Fatalf("%v instrumented=%v: %v allocs/round, want 0", alg, instrumented, n)
			}
			eng.Close()
		}
	}
}

// TestClusterCSPRoundsAllocFree is the CSP-engine counterpart.
func TestClusterCSPRoundsAllocFree(t *testing.T) {
	c := csp.DominatingSet(graph.Grid(16, 16))
	init := make([]int, c.N)
	for i := range init {
		init[i] = 1
	}
	out := make([]int, c.N)
	for _, alg := range []chains.Algorithm{chains.LubyGlauber, chains.LocalMetropolis} {
		for _, instrumented := range []bool{false, true} {
			plan, err := partition.BuildCSP(c, 1, partition.Range, 0)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewCSP(c, plan, alg)
			if err != nil {
				t.Fatal(err)
			}
			if instrumented {
				o, _ := obsObserver(1, 64)
				eng.SetObserver(o)
			}
			w := eng.ws[0]
			for l, gv := range w.sh.Global {
				w.x[l] = init[gv]
			}
			if n := testing.AllocsPerRun(20, func() {
				if err := eng.runShard(0, 1, 1, out); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Fatalf("CSP %v instrumented=%v: %v allocs/round, want 0", alg, instrumented, n)
			}
			eng.Close()
		}
	}
}

// TestObserverSeesRounds checks the observer wiring end to end on a real
// multi-shard Run: every shard reports every round, barrier wait is
// attributed, and flips stay within the owned-vertex budget — while the
// draw stays bit-identical to an unobserved one.
func TestObserverSeesRounds(t *testing.T) {
	const k, rounds = 3, 8
	g := graph.Grid(12, 12)
	m := mrf.Coloring(g, 3*g.MaxDeg()+1)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.Build(g, k, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}

	bare, err := New(m, plan, chains.LocalMetropolis, false)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, g.N())
	if _, err := bare.Run(init, 7, rounds, want); err != nil {
		t.Fatal(err)
	}
	bare.Close()

	eng, err := New(m, plan, chains.LocalMetropolis, false)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	o, rec := obsObserver(k, rounds)
	eng.SetObserver(o)
	got := make([]int, g.N())
	st, err := eng.Run(init, 7, rounds, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("instrumented draw diverged at vertex %d: %d != %d", i, got[i], want[i])
		}
	}
	var barrierTotal int64
	for sh := 0; sh < k; sh++ {
		compute, _, flips, _ := rec.ShardRounds(sh)
		if len(compute) != rounds {
			t.Fatalf("shard %d recorded %d rounds, want %d", sh, len(compute), rounds)
		}
		owned := plan.Shards[sh].NOwned
		for r, f := range flips {
			if f < 0 || f > int64(owned) {
				t.Fatalf("shard %d round %d: flips=%d outside [0,%d]", sh, r, f, owned)
			}
		}
		_, bNS, _, n := rec.ShardTotals(sh)
		if n != rounds {
			t.Fatalf("shard %d totals cover %d rounds", sh, n)
		}
		barrierTotal += bNS
	}
	if barrierTotal > st.BarrierWaitNS {
		t.Fatalf("observer barrier total %d exceeds engine stat %d", barrierTotal, st.BarrierWaitNS)
	}

	// Flushing produces per-shard spans on the coordinator pid.
	tr := obs.NewTrace("test")
	rec.FlushTo(tr, 0)
	if n := len(tr.Spans()); n < k*rounds {
		t.Fatalf("trace has %d spans, want >= %d", n, k*rounds)
	}
}
