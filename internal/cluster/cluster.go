// Package cluster runs ONE Markov chain as k shard workers advancing in
// lockstep rounds — the in-process analogue of the paper's message-passing
// network, at shard rather than vertex granularity. Each worker owns a
// partition shard (internal/partition): the states of its owned vertices,
// halo copies of their out-of-shard neighbors, and channels to the
// neighboring shards. A round is
//
//	compute owned updates  →  send boundary states  →  receive halo states,
//
// where the receive acts as the round barrier: no worker starts round r+1
// before every halo value it will read has arrived.
//
// The keystone invariant extends the batch engine's: a sharded draw with
// seed s is bit-identical to the centralized chains.Sampler trajectory at
// the same seed, invariant to shard count and partition strategy. It holds
// because every variate is PRF-keyed by GLOBAL vertex/edge IDs and round
// number — a vertex keeps its randomness no matter which shard owns it —
// and because shard subgraphs preserve the global per-vertex adjacency
// order, so conditional-marginal products multiply in the same
// floating-point order as the centralized sweep. Cut edges are evaluated
// redundantly on both incident shards; both read the same PRF coin and the
// same endpoint states, so they agree without communication (exactly the
// paper's shared-coin trick, §4).
//
// Only the paper's two LOCAL algorithms shard: LubyGlauber and
// LocalMetropolis. The inherently sequential baselines (Glauber,
// SystematicScan, ChromaticGlauber) have no O(log n)-round decomposition
// to exploit.
//
// Boundary states travel over an internal/transport.Transport, so the
// same engine runs all-local (channel transport, New) or as one worker
// process of a cross-process draw (TCP mesh behind NewWithTransport).
//
// The round barrier has two implementations. Below TreeBarrierMinShards
// the workers pairwise exchange boundary frames over the transport
// (all-local engines get the cap-2 double-buffered channel transport —
// deadlock-free by construction; see Engine.tr). At high all-local shard
// counts that costs every worker one rendezvous per neighbor per
// round, so from TreeBarrierMinShards up the engine switches to a publish
// model: each worker fills its double-buffered outgoing boundary buffers,
// passes one tree-reduce barrier (O(log k) rendezvous depth instead of
// O(deg) per worker), and then reads its halo values directly from its
// neighbors' publish buffers. The barrier's happens-before chain makes the
// reads race-free, and the double buffering lets a worker run one round
// ahead without overwriting a buffer a slow neighbor is still reading —
// the same argument as the channel scheme's capacity-2 invariant.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"locsample/internal/chains"
	"locsample/internal/mrf"
	"locsample/internal/partition"
	"locsample/internal/rng"
	"locsample/internal/transport"
)

// Stats reports one sharded draw's runtime profile.
type Stats struct {
	// Shards is the worker count the draw ran with.
	Shards int `json:"shards"`
	// Rounds is the number of lockstep rounds executed.
	Rounds int `json:"rounds"`
	// BoundaryMessages counts boundary-state publishes — channel sends
	// below TreeBarrierMinShards, publish-buffer fills at or above it
	// (one per neighboring shard pair, per direction, per round either
	// way).
	BoundaryMessages int64 `json:"boundaryMessages"`
	// BoundaryValues counts vertex states exchanged across shard
	// boundaries over the whole draw.
	BoundaryValues int64 `json:"boundaryValues"`
	// BarrierWaitNS is the total time workers spent blocked at the
	// round barrier (receiving halo states), summed over workers.
	BarrierWaitNS int64 `json:"barrierWaitNs"`
	// WireFrames and WireBytes count boundary frames and bytes that
	// crossed a process boundary (cross-process draws only; each frame
	// is counted once, at its sender).
	WireFrames int64 `json:"wireFrames,omitempty"`
	WireBytes  int64 `json:"wireBytes,omitempty"`
}

// Add accumulates other into s (Shards and Rounds adopt other's values:
// they are per-draw constants, not sums).
func (s *Stats) Add(other Stats) {
	s.Shards = other.Shards
	s.Rounds = other.Rounds
	s.BoundaryMessages += other.BoundaryMessages
	s.BoundaryValues += other.BoundaryValues
	s.BarrierWaitNS += other.BarrierWaitNS
	s.WireFrames += other.WireFrames
	s.WireBytes += other.WireBytes
}

// worker is one shard's mutable run state. Buffers are allocated once in
// New and reused across rounds and runs, so the steady-state loop
// allocates nothing.
type worker struct {
	sh *partition.Shard

	x    []int     // local vertex states (owned band + halo band)
	prop []int     // LocalMetropolis proposals, all local vertices
	beta []float64 // LubyGlauber Luby-step priorities, all local vertices
	pass []bool    // LocalMetropolis edge filter outcomes, per shard edge
	marg []float64 // conditional-marginal scratch, length q

	// sendBuf[j] holds two alternating outgoing buffers per neighbor j.
	// Round r sends buffer r&1; by the time round r+2 overwrites it, the
	// receiver has provably finished copying it (its round-r+1 message to
	// us happens-after its round-r receive).
	sendBuf [][2][]int

	msgs, vals, waitNS int64
}

// Engine executes sharded draws over a fixed (model, plan, algorithm)
// triple. An Engine is reusable across sequential Run calls but is NOT
// safe for concurrent Runs; callers that serve concurrent draws keep a
// pool of engines (the batch Sampler does).
type Engine struct {
	m         *mrf.MRF
	plan      *partition.Plan
	alg       chains.Algorithm
	dropRule3 bool
	coloring  bool

	// ws[s] is non-nil exactly for the shards this engine hosts; local
	// lists them in ascending order. An engine built by New hosts every
	// shard; NewWithTransport engines host the subset a worker process
	// was assigned.
	ws    []*worker
	local []int
	// tr carries the boundary exchange. New uses the in-process channel
	// transport (capacity-2 double-buffered links: a sender can never
	// block, because at most the previous and current round's frames are
	// outstanding — a worker cannot run two rounds ahead of a neighbor
	// it must hear from every round — so the lockstep schedule is
	// deadlock-free by construction). NewWithTransport plugs in any
	// fabric: a TCP mesh for cross-process draws, a fault-injecting
	// wrapper in tests. Nil when the tree barrier is active.
	tr transport.Transport
	// bar replaces the pairwise transport rendezvous as the round barrier
	// at K >= TreeBarrierMinShards when every shard is local; halo states
	// are then read straight from the neighbors' publish buffers after
	// the barrier.
	bar *treeBarrier

	// obs, when non-nil, receives one RoundDone per shard per round with
	// that round's compute/barrier split and accepted-update count. Set
	// via SetObserver before Run; the nil check is the only cost when
	// unset. Implementations must be safe for concurrent calls from all
	// shard goroutines and must not allocate (obs.RoundRecorder and
	// obs.RoundMetrics both qualify).
	obs chains.RoundObserver
}

// SetObserver installs (or, with nil, removes) the engine's per-round
// observer. Not safe to call while a Run is in flight.
func (e *Engine) SetObserver(o chains.RoundObserver) { e.obs = o }

// TreeBarrierMinShards is the shard count from which the engine swaps the
// pairwise channel exchange for the publish-buffer + tree-reduce barrier:
// below it the per-neighbor rendezvous count is tiny and the channel scheme
// wins on simplicity; at and above it the O(log k) barrier depth beats the
// O(deg) channel waits per worker.
const TreeBarrierMinShards = 8

// treeBarrier is a reusable k-party barrier over a binary arrival tree:
// worker i's children are 2i+1 and 2i+2. Arrivals reduce up the tree, the
// root releases down it, so one pass costs O(log k) rendezvous depth. Each
// channel sees exactly one send and one receive per round, strictly
// alternating (a child cannot arrive for round r+1 before its round-r
// release, which its parent sends only after consuming the round-r
// arrival), so the same barrier value is reusable every round and across
// Runs. The arrival chain up plus release chain down gives every worker's
// pre-barrier writes a happens-before edge to every other worker's
// post-barrier reads — the memory-safety backbone of the publish scheme.
type treeBarrier struct {
	arrive  []chan struct{}
	release []chan struct{}
}

func newTreeBarrier(k int) *treeBarrier {
	b := &treeBarrier{
		arrive:  make([]chan struct{}, k),
		release: make([]chan struct{}, k),
	}
	for i := 0; i < k; i++ {
		b.arrive[i] = make(chan struct{}, 1)
		b.release[i] = make(chan struct{}, 1)
	}
	return b
}

// wait blocks worker i until all k workers have arrived.
func (b *treeBarrier) wait(i int) {
	k := len(b.arrive)
	if c := 2*i + 1; c < k {
		<-b.arrive[c]
	}
	if c := 2*i + 2; c < k {
		<-b.arrive[c]
	}
	if i > 0 {
		b.arrive[i] <- struct{}{}
		<-b.release[i]
	}
	if c := 2*i + 1; c < k {
		b.release[c] <- struct{}{}
	}
	if c := 2*i + 2; c < k {
		b.release[c] <- struct{}{}
	}
}

// New compiles an engine hosting every shard of plan. Only LubyGlauber
// and LocalMetropolis are shardable.
func New(m *mrf.MRF, plan *partition.Plan, alg chains.Algorithm, dropRule3 bool) (*Engine, error) {
	local := make([]int, plan.K)
	for s := range local {
		local[s] = s
	}
	var tr transport.Transport
	if plan.K < TreeBarrierMinShards {
		tr = transport.NewChan(plan.NeighborLists(), 0)
	}
	return newEngine(m, plan, alg, dropRule3, local, tr)
}

// NewWithTransport compiles an engine hosting only the given shards of
// plan, exchanging boundary states over tr — the worker-process side of
// a cross-process draw, or an all-local engine on a custom (e.g.
// fault-injecting) fabric. The tree-barrier fast path never applies:
// remote neighbors are only reachable through the transport.
func NewWithTransport(m *mrf.MRF, plan *partition.Plan, alg chains.Algorithm, dropRule3 bool, local []int, tr transport.Transport) (*Engine, error) {
	if tr == nil {
		return nil, fmt.Errorf("cluster: NewWithTransport needs a transport")
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("cluster: NewWithTransport needs at least one local shard")
	}
	seen := make(map[int]bool, len(local))
	for _, s := range local {
		if s < 0 || s >= plan.K {
			return nil, fmt.Errorf("cluster: local shard %d out of range (plan has %d)", s, plan.K)
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: local shard %d listed twice", s)
		}
		seen[s] = true
	}
	return newEngine(m, plan, alg, dropRule3, local, tr)
}

func newEngine(m *mrf.MRF, plan *partition.Plan, alg chains.Algorithm, dropRule3 bool, local []int, tr transport.Transport) (*Engine, error) {
	if alg != chains.LubyGlauber && alg != chains.LocalMetropolis {
		return nil, fmt.Errorf("cluster: %v cannot be sharded (only LubyGlauber and LocalMetropolis decompose into local rounds)", alg)
	}
	if m.G.N() != plan.N {
		return nil, fmt.Errorf("cluster: plan partitions %d vertices, model has %d", plan.N, m.G.N())
	}
	e := &Engine{
		m:         m,
		plan:      plan,
		alg:       alg,
		dropRule3: dropRule3,
		coloring:  alg == chains.LocalMetropolis && m.IsColoringModel(),
		ws:        make([]*worker, plan.K),
		local:     local,
		tr:        tr,
	}
	if tr == nil {
		e.bar = newTreeBarrier(plan.K)
	}
	for _, s := range local {
		sh := plan.Shards[s]
		w := &worker{
			sh:      sh,
			x:       make([]int, sh.NLocal()),
			marg:    make([]float64, m.Q),
			sendBuf: make([][2][]int, plan.K),
		}
		switch alg {
		case chains.LubyGlauber:
			w.beta = make([]float64, sh.NLocal())
		case chains.LocalMetropolis:
			w.prop = make([]int, sh.NLocal())
			w.pass = make([]bool, len(sh.Edges))
		}
		for _, j := range sh.Neighbors {
			w.sendBuf[j] = [2][]int{
				make([]int, len(sh.SendTo[j])),
				make([]int, len(sh.SendTo[j])),
			}
		}
		e.ws[s] = w
	}
	return e, nil
}

// Plan returns the partition the engine runs on.
func (e *Engine) Plan() *partition.Plan { return e.plan }

// Run advances one chain for the given number of rounds from init (read
// only) under the master seed, writing its hosted shards' owned states
// into out (length n; an all-local engine fills all of it). The
// trajectory is bit-identical to
// chains.NewSampler(m, init, seed, alg, opts).Run(rounds).
//
// A non-nil error means the draw did not complete: a shard worker hit a
// transport failure (or a sibling did, and the transport was closed to
// unblock everyone). The engine is poisoned afterwards — its transport
// is closed — so callers must discard it rather than Run again.
func (e *Engine) Run(init []int, seed uint64, rounds int, out []int) (Stats, error) {
	if len(init) != e.plan.N || len(out) != e.plan.N {
		panic("cluster: init/out length does not match the partitioned graph")
	}
	for _, s := range e.local {
		w := e.ws[s]
		for l, gv := range w.sh.Global {
			w.x[l] = init[gv]
		}
		w.msgs, w.vals, w.waitNS = 0, 0, 0
	}
	var wg sync.WaitGroup
	var once sync.Once
	var firstErr error
	for _, s := range e.local {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if err := e.runShard(s, seed, rounds, out); err != nil {
				once.Do(func() {
					firstErr = fmt.Errorf("cluster: shard %d: %w", s, err)
					// Poison the fabric so every sibling blocked in a
					// send or receive fails out instead of hanging.
					e.tr.Close()
				})
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return Stats{}, firstErr
	}
	st := Stats{Shards: e.plan.K, Rounds: rounds}
	for _, s := range e.local {
		w := e.ws[s]
		st.BoundaryMessages += w.msgs
		st.BoundaryValues += w.vals
		st.BarrierWaitNS += w.waitNS
	}
	return st, nil
}

// Close releases the engine's transport (and with it any blocked shard
// workers). All-local tree-barrier engines have none; Close is then a
// no-op.
func (e *Engine) Close() error {
	if e.tr != nil {
		return e.tr.Close()
	}
	return nil
}

// runShard is one worker's lockstep loop: compute, publish boundary states,
// pass the round barrier, read halo states, repeat; then publish owned
// states into out. On the transport path the publish/barrier/read is the
// pairwise frame exchange; on the tree-barrier path the boundary buffers
// are filled in place, one tree-reduce barrier synchronizes the round, and
// halo values are copied straight out of the neighbors' publish buffers.
func (e *Engine) runShard(s int, seed uint64, rounds int, out []int) error {
	w := e.ws[s]
	sh := w.sh
	obs := e.obs
	for r := 0; r < rounds; r++ {
		var roundStart time.Time
		var waitBefore int64
		if obs != nil {
			roundStart = time.Now()
			waitBefore = w.waitNS
		}
		var flips int
		switch {
		case e.alg == chains.LubyGlauber:
			flips = e.lubyRound(w, seed, r)
		case e.coloring:
			flips = e.coloringRound(w, seed, r)
		default:
			flips = e.metropolisRound(w, seed, r)
		}
		for _, j := range sh.Neighbors {
			buf := w.sendBuf[j][r&1]
			for t, l := range sh.SendTo[j] {
				buf[t] = w.x[l]
			}
			if e.bar == nil {
				if err := e.tr.Send(s, j, r, buf); err != nil {
					return fmt.Errorf("round %d: send to shard %d: %w", r, j, err)
				}
			}
			w.msgs++
			w.vals += int64(len(buf))
		}
		if e.bar != nil {
			t0 := time.Now()
			e.bar.wait(s)
			w.waitNS += time.Since(t0).Nanoseconds()
			for _, j := range sh.Neighbors {
				msg := e.ws[j].sendBuf[s][r&1]
				for t, l := range sh.RecvFrom[j] {
					w.x[l] = msg[t]
				}
			}
		} else {
			for _, j := range sh.Neighbors {
				t0 := time.Now()
				msg, err := e.tr.Recv(j, s, r, len(sh.RecvFrom[j]))
				w.waitNS += time.Since(t0).Nanoseconds()
				if err != nil {
					return fmt.Errorf("round %d: recv from shard %d: %w", r, j, err)
				}
				for t, l := range sh.RecvFrom[j] {
					w.x[l] = msg[t]
				}
			}
		}
		if obs != nil {
			// compute = round wall time minus barrier wait, so the two
			// spans tile the round exactly.
			barrierNS := w.waitNS - waitBefore
			obs.RoundDone(s, r, time.Since(roundStart).Nanoseconds()-barrierNS, barrierNS, flips)
		}
	}
	for l := 0; l < sh.NOwned; l++ {
		out[sh.Global[l]] = w.x[l]
	}
	return nil
}

// lubyRound mirrors chains.LubyGlauberRound on one shard. Luby-step
// priorities are PRF values, so halo priorities are recomputed locally
// instead of communicated; the marginal products run in the global
// adjacency order preserved by the shard CSR. In-place owned updates are
// exact for the same reason as the centralized sweep: the Luby step is an
// independent set, so no resampled vertex reads another resampled vertex.
// Randomness streams through the same partial round keys as the
// centralized kernel (keyed by GLOBAL vertex IDs), and membership goes
// through the shared chains.BetaLocalMax, so the two runtimes cannot drift.
// It returns the number of owned vertices resampled this round.
func (e *Engine) lubyRound(w *worker, seed uint64, round int) int {
	sh := w.sh
	kb := rng.Key(seed, chains.TagBeta, uint64(round))
	for l, gv := range sh.Global {
		w.beta[l] = kb.Float64(uint64(gv))
	}
	ku := rng.Key(seed, chains.TagUpdate, uint64(round))
	flips := 0
	for v := 0; v < sh.NOwned; v++ {
		if !chains.BetaLocalMax(w.beta, v, sh.Nbr[sh.RowPtr[v]:sh.RowPtr[v+1]]) {
			continue
		}
		if e.marginalInto(w, v) {
			w.x[v] = rng.CategoricalU(w.marg, ku.Float64(uint64(sh.Global[v])))
			flips++
		}
	}
	return flips
}

// marginalInto fills w.marg with owned vertex v's conditional marginal. It
// is mrf.MarginalInto transcribed to shard-local indexing: same zero-skip,
// same per-slot multiplication order (the shard CSR preserves the global
// slot order), same normalization — so the resulting float64s, and hence
// the CategoricalU draw, are bit-identical to the centralized chain's.
func (e *Engine) marginalInto(w *worker, v int) bool {
	m := e.m
	sh := w.sh
	b := m.VertexB[sh.Global[v]]
	q := m.Q
	out := w.marg
	for c := 0; c < q; c++ {
		out[c] = b[c]
	}
	for t := sh.RowPtr[v]; t < sh.RowPtr[v+1]; t++ {
		a := m.EdgeA[sh.Edges[sh.EdgeSlot[t]].ID]
		xu := w.x[sh.Nbr[t]]
		for c := 0; c < q; c++ {
			if out[c] != 0 {
				out[c] *= a.At(c, xu)
			}
		}
	}
	total := 0.0
	for c := 0; c < q; c++ {
		total += out[c]
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for c := 0; c < q; c++ {
		out[c] *= inv
	}
	return true
}

// metropolisRound mirrors chains.LocalMetropolisRound on one shard.
// Proposals depend only on vertex activities, so halo proposals are
// recomputed locally; cut-edge filters are evaluated redundantly on both
// shards from the shared PRF coin. Proposals route through the same
// mrf.ProposeU cumulative-table kernel and coins through the same partial
// round keys as the centralized chain.
// It returns the number of owned vertices that accepted their proposal.
func (e *Engine) metropolisRound(w *worker, seed uint64, round int) int {
	m := e.m
	sh := w.sh
	ku := rng.Key(seed, chains.TagUpdate, uint64(round))
	for l, gv := range sh.Global {
		w.prop[l] = m.ProposeU(int(gv), ku.Float64(uint64(gv)))
	}
	kc := rng.Key(seed, chains.TagCoin, uint64(round))
	for le := range sh.Edges {
		ed := &sh.Edges[le]
		p := chains.EdgePassProb(m, int(ed.ID), w.x[ed.U], w.x[ed.V], w.prop[ed.U], w.prop[ed.V], e.dropRule3)
		w.pass[le] = kc.Float64(uint64(ed.ID)) < p
	}
	return e.accept(w)
}

// coloringRound mirrors chains.ColoringLocalMetropolisRound (the §4.2
// three-rule fast path) on one shard.
func (e *Engine) coloringRound(w *worker, seed uint64, round int) int {
	sh := w.sh
	qf := float64(e.m.Q)
	ku := rng.Key(seed, chains.TagUpdate, uint64(round))
	for l, gv := range sh.Global {
		w.prop[l] = int(ku.Float64(uint64(gv)) * qf)
	}
	for le := range sh.Edges {
		ed := &sh.Edges[le]
		cu, cv := w.prop[ed.U], w.prop[ed.V]
		ok := cu != cv && cv != w.x[ed.U]
		if !e.dropRule3 {
			ok = ok && cu != w.x[ed.V]
		}
		w.pass[le] = ok
	}
	return e.accept(w)
}

// accept applies the LocalMetropolis acceptance rule to the owned band:
// vertex v adopts its proposal iff every incident edge passed. Returns
// the number of acceptances.
func (e *Engine) accept(w *worker) int {
	sh := w.sh
	flips := 0
	for v := 0; v < sh.NOwned; v++ {
		ok := true
		for t := sh.RowPtr[v]; t < sh.RowPtr[v+1]; t++ {
			if !w.pass[sh.EdgeSlot[t]] {
				ok = false
				break
			}
		}
		if ok {
			w.x[v] = w.prop[v]
			flips++
		}
	}
	return flips
}
