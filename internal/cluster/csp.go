// Sharded CSP runtime: one hypergraph chain (LubyGlauber or
// LocalMetropolis over a weighted local CSP) as k lockstep shard workers,
// the constraint-scope generalization of the MRF engine in cluster.go. The
// keystone invariant carries over unchanged: a sharded CSP draw with seed s
// is bit-identical to the centralized csp round kernels at the same seed,
// invariant to shard count and partition strategy, because
//
//   - every variate is PRF-keyed by GLOBAL vertex/constraint IDs and round
//     number (β and proposals by vertex, check coins by constraint);
//   - each owned vertex's conditional-marginal product multiplies its
//     incident constraints in ascending global constraint order — the
//     centralized kernels' order — through the same compiled-table
//     evaluators (csp.EvalOn / csp.CheckProbOn), so the floats cannot
//     drift;
//   - cut-scope constraints are evaluated redundantly on every incident
//     shard from the same shared PRF coin and the same (owned + halo)
//     states, exactly the paper's shared-coin trick extended from edges to
//     k-ary scopes.
//
// The boundary fabric (transport.Transport below TreeBarrierMinShards or
// when hosting a subset of the shards, publish buffers + tree-reduce for
// all-local high shard counts) is shared with the MRF engine.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"locsample/internal/chains"
	"locsample/internal/csp"
	"locsample/internal/partition"
	"locsample/internal/rng"
	"locsample/internal/transport"
)

// cspWorker is one shard's mutable run state. Buffers are allocated once in
// NewCSP and reused across rounds and runs, so the steady-state loop
// allocates nothing.
type cspWorker struct {
	sh *partition.CSPShard

	x    []int     // local vertex states (owned band + halo band)
	prop []int     // LocalMetropolis proposals, all local vertices
	beta []float64 // LubyGlauber Luby-step priorities, all local vertices
	pass []bool    // LocalMetropolis check outcomes, per local constraint
	marg []float64 // conditional-marginal scratch, length q
	eval []int     // closure-fallback scratch, 3·maxArity ints

	// sendBuf[j] holds two alternating outgoing buffers per neighbor j,
	// with the same capacity-2 safety argument as the MRF worker's.
	sendBuf [][2][]int

	msgs, vals, waitNS int64
}

// CSPEngine executes sharded draws of one hypergraph chain over a fixed
// (CSP, plan, algorithm) triple. Like Engine it is reusable across
// sequential Run calls but not safe for concurrent Runs; callers pool
// engines.
type CSPEngine struct {
	c    *csp.CSP
	plan *partition.CSPPlan
	alg  chains.Algorithm

	ws    []*cspWorker
	local []int
	tr    transport.Transport
	bar   *treeBarrier

	// obs mirrors Engine.obs: one RoundDone per shard per round, nil
	// check only when unset, implementations must be concurrency-safe
	// and allocation-free.
	obs chains.RoundObserver
}

// SetObserver installs (or, with nil, removes) the engine's per-round
// observer. Not safe to call while a Run is in flight.
func (e *CSPEngine) SetObserver(o chains.RoundObserver) { e.obs = o }

// NewCSP compiles a sharded engine hosting every shard of plan. Only the
// two hypergraph chains shard.
func NewCSP(c *csp.CSP, plan *partition.CSPPlan, alg chains.Algorithm) (*CSPEngine, error) {
	local := make([]int, plan.K)
	for s := range local {
		local[s] = s
	}
	var tr transport.Transport
	if plan.K < TreeBarrierMinShards {
		tr = transport.NewChan(plan.NeighborLists(), 0)
	}
	return newCSPEngine(c, plan, alg, local, tr)
}

// NewCSPWithTransport compiles an engine hosting only the given shards
// of plan over tr — the CSP counterpart of NewWithTransport.
func NewCSPWithTransport(c *csp.CSP, plan *partition.CSPPlan, alg chains.Algorithm, local []int, tr transport.Transport) (*CSPEngine, error) {
	if tr == nil {
		return nil, fmt.Errorf("cluster: NewCSPWithTransport needs a transport")
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("cluster: NewCSPWithTransport needs at least one local shard")
	}
	seen := make(map[int]bool, len(local))
	for _, s := range local {
		if s < 0 || s >= plan.K {
			return nil, fmt.Errorf("cluster: local shard %d out of range (plan has %d)", s, plan.K)
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: local shard %d listed twice", s)
		}
		seen[s] = true
	}
	return newCSPEngine(c, plan, alg, local, tr)
}

func newCSPEngine(c *csp.CSP, plan *partition.CSPPlan, alg chains.Algorithm, local []int, tr transport.Transport) (*CSPEngine, error) {
	if alg != chains.LubyGlauber && alg != chains.LocalMetropolis {
		return nil, fmt.Errorf("cluster: %v cannot be sharded over a CSP (only the hypergraph LubyGlauber and LocalMetropolis chains decompose into local rounds)", alg)
	}
	if c.N != plan.N {
		return nil, fmt.Errorf("cluster: plan partitions %d vertices, CSP has %d", plan.N, c.N)
	}
	e := &CSPEngine{c: c, plan: plan, alg: alg, ws: make([]*cspWorker, plan.K), local: local, tr: tr}
	if tr == nil {
		e.bar = newTreeBarrier(plan.K)
	}
	for _, s := range local {
		sh := plan.Shards[s]
		w := &cspWorker{
			sh:      sh,
			x:       make([]int, sh.NLocal()),
			marg:    make([]float64, c.Q),
			eval:    make([]int, 3*c.MaxArity()),
			sendBuf: make([][2][]int, plan.K),
		}
		switch alg {
		case chains.LubyGlauber:
			w.beta = make([]float64, sh.NLocal())
		case chains.LocalMetropolis:
			w.prop = make([]int, sh.NLocal())
			w.pass = make([]bool, len(sh.ConID))
		}
		for _, j := range sh.Neighbors {
			w.sendBuf[j] = [2][]int{
				make([]int, len(sh.SendTo[j])),
				make([]int, len(sh.SendTo[j])),
			}
		}
		e.ws[s] = w
	}
	return e, nil
}

// Plan returns the partition the engine runs on.
func (e *CSPEngine) Plan() *partition.CSPPlan { return e.plan }

// Run advances one chain for the given number of rounds from init (read
// only) under the master seed, writing its hosted shards' owned states
// into out (length n; an all-local engine fills all of it). The
// trajectory is bit-identical to `rounds` calls of the centralized csp
// round kernel at the same seed. A non-nil error poisons the engine
// exactly as for Engine.Run; discard it.
func (e *CSPEngine) Run(init []int, seed uint64, rounds int, out []int) (Stats, error) {
	if len(init) != e.plan.N || len(out) != e.plan.N {
		panic("cluster: init/out length does not match the partitioned CSP")
	}
	for _, s := range e.local {
		w := e.ws[s]
		for l, gv := range w.sh.Global {
			w.x[l] = init[gv]
		}
		w.msgs, w.vals, w.waitNS = 0, 0, 0
	}
	var wg sync.WaitGroup
	var once sync.Once
	var firstErr error
	for _, s := range e.local {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if err := e.runShard(s, seed, rounds, out); err != nil {
				once.Do(func() {
					firstErr = fmt.Errorf("cluster: shard %d: %w", s, err)
					e.tr.Close()
				})
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return Stats{}, firstErr
	}
	st := Stats{Shards: e.plan.K, Rounds: rounds}
	for _, s := range e.local {
		w := e.ws[s]
		st.BoundaryMessages += w.msgs
		st.BoundaryValues += w.vals
		st.BarrierWaitNS += w.waitNS
	}
	return st, nil
}

// Close releases the engine's transport; a no-op on tree-barrier
// engines.
func (e *CSPEngine) Close() error {
	if e.tr != nil {
		return e.tr.Close()
	}
	return nil
}

// runShard is one worker's lockstep loop — structurally identical to the
// MRF engine's: compute, publish boundary states, pass the round barrier,
// read halo states, repeat; then publish owned states into out.
func (e *CSPEngine) runShard(s int, seed uint64, rounds int, out []int) error {
	w := e.ws[s]
	sh := w.sh
	obs := e.obs
	for r := 0; r < rounds; r++ {
		var roundStart time.Time
		var waitBefore int64
		if obs != nil {
			roundStart = time.Now()
			waitBefore = w.waitNS
		}
		var flips int
		if e.alg == chains.LubyGlauber {
			flips = e.lubyRound(w, seed, r)
		} else {
			flips = e.metropolisRound(w, seed, r)
		}
		for _, j := range sh.Neighbors {
			buf := w.sendBuf[j][r&1]
			for t, l := range sh.SendTo[j] {
				buf[t] = w.x[l]
			}
			if e.bar == nil {
				if err := e.tr.Send(s, j, r, buf); err != nil {
					return fmt.Errorf("round %d: send to shard %d: %w", r, j, err)
				}
			}
			w.msgs++
			w.vals += int64(len(buf))
		}
		if e.bar != nil {
			t0 := time.Now()
			e.bar.wait(s)
			w.waitNS += time.Since(t0).Nanoseconds()
			for _, j := range sh.Neighbors {
				msg := e.ws[j].sendBuf[s][r&1]
				for t, l := range sh.RecvFrom[j] {
					w.x[l] = msg[t]
				}
			}
		} else {
			for _, j := range sh.Neighbors {
				t0 := time.Now()
				msg, err := e.tr.Recv(j, s, r, len(sh.RecvFrom[j]))
				w.waitNS += time.Since(t0).Nanoseconds()
				if err != nil {
					return fmt.Errorf("round %d: recv from shard %d: %w", r, j, err)
				}
				for t, l := range sh.RecvFrom[j] {
					w.x[l] = msg[t]
				}
			}
		}
		if obs != nil {
			// compute = round wall time minus barrier wait, so the two
			// spans tile the round exactly.
			barrierNS := w.waitNS - waitBefore
			obs.RoundDone(s, r, time.Since(roundStart).Nanoseconds()-barrierNS, barrierNS, flips)
		}
	}
	for l := 0; l < sh.NOwned; l++ {
		out[sh.Global[l]] = w.x[l]
	}
	return nil
}

// lubyRound mirrors csp.LubyGlauberRoundPRF on one shard. Luby-step
// priorities are PRF values, so halo priorities are recomputed locally
// instead of communicated; membership uses the shared strict-inequality
// comparison (chains.BetaLocalMax over shard-local Γ rows). In-place owned
// updates are exact because the Luby step over the constraint hypergraph is
// strongly independent: no resampled vertex shares a constraint with —
// hence reads — another resampled vertex.
// It returns the number of owned vertices resampled this round.
func (e *CSPEngine) lubyRound(w *cspWorker, seed uint64, round int) int {
	sh := w.sh
	kb := rng.Key(seed, csp.TagBeta, uint64(round))
	for l, gv := range sh.Global {
		w.beta[l] = kb.Float64(uint64(gv))
	}
	ku := rng.Key(seed, csp.TagUpdate, uint64(round))
	flips := 0
	for v := 0; v < sh.NOwned; v++ {
		if !chains.BetaLocalMax(w.beta, v, sh.Nbr[sh.NbrPtr[v]:sh.NbrPtr[v+1]]) {
			continue
		}
		if e.marginalInto(w, v) {
			w.x[v] = rng.CategoricalU(w.marg, ku.Float64(uint64(sh.Global[v])))
			flips++
		}
	}
	return flips
}

// marginalInto fills w.marg with owned vertex v's conditional marginal. It
// is csp.MarginalInto transcribed to shard-local indexing: same zero-skip,
// same ascending-global-constraint multiplication order (the Vcon CSR
// preserves it), same evaluators, same normalization — so the resulting
// float64s, and hence the CategoricalU draw, are bit-identical to the
// centralized kernel's.
func (e *CSPEngine) marginalInto(w *cspWorker, v int) bool {
	c := e.c
	sh := w.sh
	b := c.VertexB[sh.Global[v]]
	q := c.Q
	out := w.marg
	saved := w.x[v]
	total := 0.0
	for a := 0; a < q; a++ {
		wt := b[a]
		if wt > 0 {
			w.x[v] = a
			for t := sh.VconPtr[v]; t < sh.VconPtr[v+1]; t++ {
				slot := sh.Vcon[t]
				scope := sh.ConScope[sh.ConPtr[slot]:sh.ConPtr[slot+1]]
				wt *= c.EvalOn(int(sh.ConID[slot]), w.x, scope, w.eval)
				if wt == 0 {
					break
				}
			}
		}
		out[a] = wt
		total += wt
	}
	w.x[v] = saved
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for a := 0; a < q; a++ {
		out[a] *= inv
	}
	return true
}

// metropolisRound mirrors csp.LocalMetropolisRoundPRF on one shard.
// Proposals depend only on vertex activities, so halo proposals are
// recomputed locally through the same cumulative-table draw; cut-scope
// checks are evaluated redundantly on every incident shard from the shared
// PRF coin keyed by the global constraint ID.
// It returns the number of owned vertices that accepted their proposal.
func (e *CSPEngine) metropolisRound(w *cspWorker, seed uint64, round int) int {
	c := e.c
	sh := w.sh
	ku := rng.Key(seed, csp.TagUpdate, uint64(round))
	for l, gv := range sh.Global {
		dist, cum := c.PropRow(int(gv))
		w.prop[l] = rng.CategoricalCumU(dist, cum, ku.Float64(uint64(gv)))
	}
	kc := rng.Key(seed, csp.TagCoin, uint64(round))
	for slot := range sh.ConID {
		ci := sh.ConID[slot]
		scope := sh.ConScope[sh.ConPtr[slot]:sh.ConPtr[slot+1]]
		p := c.CheckProbOn(int(ci), w.x, w.prop, scope, w.eval)
		w.pass[slot] = kc.Float64(uint64(ci)) < p
	}
	flips := 0
	for v := 0; v < sh.NOwned; v++ {
		ok := true
		for t := sh.VconPtr[v]; t < sh.VconPtr[v+1]; t++ {
			if !w.pass[sh.Vcon[t]] {
				ok = false
				break
			}
		}
		if ok {
			w.x[v] = w.prop[v]
			flips++
		}
	}
	return flips
}
