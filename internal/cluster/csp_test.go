package cluster

import (
	"testing"

	"locsample/internal/chains"
	"locsample/internal/csp"
	"locsample/internal/graph"
	"locsample/internal/partition"
)

func testClusterCSPs(t *testing.T) map[string]struct {
	c    *csp.CSP
	init []int
} {
	t.Helper()
	out := map[string]struct {
		c    *csp.CSP
		init []int
	}{}
	add := func(name string, c *csp.CSP, init []int) {
		if !c.Feasible(init) {
			t.Fatalf("%s: init infeasible", name)
		}
		out[name] = struct {
			c    *csp.CSP
			init []int
		}{c, init}
	}
	dom := csp.DominatingSet(graph.Grid(6, 7))
	ones := make([]int, dom.N)
	for i := range ones {
		ones[i] = 1
	}
	add("domset-grid6x7", dom, ones)

	wdom := csp.WeightedDominatingSet(graph.Cycle(19), 0.6)
	onesC := make([]int, wdom.N)
	for i := range onesC {
		onesC[i] = 1
	}
	add("wdomset-cycle19", wdom, onesC)

	const n = 30
	scopes := make([][]int32, n)
	for i := range scopes {
		scopes[i] = []int32{int32(i), int32((i + 1) % n), int32((i + 2) % n)}
	}
	nae := csp.NotAllEqual(n, 3, scopes)
	naeInit := make([]int, n)
	for i := range naeInit {
		naeInit[i] = i % 3
	}
	add("nae30-q3", nae, naeInit)
	return out
}

// centralCSP runs the centralized round kernel for `rounds` rounds.
func centralCSP(c *csp.CSP, alg chains.Algorithm, init []int, seed uint64, rounds int) []int {
	x := append([]int(nil), init...)
	sc := csp.NewScratch(c)
	for r := 0; r < rounds; r++ {
		if alg == chains.LubyGlauber {
			csp.LubyGlauberRoundPRF(c, x, seed, r, sc)
		} else {
			csp.LocalMetropolisRoundPRF(c, x, seed, r, sc)
		}
	}
	return x
}

// TestCSPShardedBitIdentical is the CSP keystone invariant: a sharded CSP
// draw equals the centralized chain byte-for-byte at the same seed, for
// both hypergraph chains, at every tested shard count (channel barrier and
// tree-reduce barrier alike) and partition strategy.
func TestCSPShardedBitIdentical(t *testing.T) {
	const seed, rounds = 90210, 30
	for name, tc := range testClusterCSPs(t) {
		for _, alg := range []chains.Algorithm{chains.LubyGlauber, chains.LocalMetropolis} {
			want := centralCSP(tc.c, alg, tc.init, seed, rounds)
			for _, strat := range []partition.Strategy{partition.Range, partition.BFS} {
				for _, k := range []int{2, 3, 5, 8} {
					if k > tc.c.N {
						continue
					}
					plan, err := partition.BuildCSP(tc.c, k, strat, 7)
					if err != nil {
						t.Fatalf("%s %v %v k=%d: %v", name, alg, strat, k, err)
					}
					eng, err := NewCSP(tc.c, plan, alg)
					if err != nil {
						t.Fatal(err)
					}
					out := make([]int, tc.c.N)
					st, err := eng.Run(tc.init, seed, rounds, out)
					if err != nil {
						t.Fatal(err)
					}
					for v := range want {
						if out[v] != want[v] {
							t.Fatalf("%s %v %v k=%d: diverges at vertex %d (sharded=%d central=%d)",
								name, alg, strat, k, v, out[v], want[v])
						}
					}
					if st.Shards != k || st.Rounds != rounds {
						t.Fatalf("%s: stats report %d shards %d rounds", name, st.Shards, st.Rounds)
					}
					if k > 1 && st.BoundaryMessages == 0 {
						t.Fatalf("%s %v k=%d: no boundary messages recorded", name, alg, k)
					}
				}
			}
		}
	}
}

// TestCSPEngineReuse: repeated Runs of one engine (same and different
// seeds) behave like fresh engines — buffers are fully reset per draw.
func TestCSPEngineReuse(t *testing.T) {
	tc := testClusterCSPs(t)["domset-grid6x7"]
	plan, err := partition.BuildCSP(tc.c, 3, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewCSP(tc.c, plan, chains.LubyGlauber)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 12
	a := make([]int, tc.c.N)
	b := make([]int, tc.c.N)
	eng.Run(tc.init, 1, rounds, a)
	eng.Run(tc.init, 2, rounds, b)
	eng.Run(tc.init, 1, rounds, b)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("engine reuse diverges at vertex %d", v)
		}
	}
}

// TestCSPEngineRejectsSequentialAlgorithms: only the two hypergraph chains
// shard.
func TestCSPEngineRejectsSequentialAlgorithms(t *testing.T) {
	tc := testClusterCSPs(t)["nae30-q3"]
	plan, err := partition.BuildCSP(tc.c, 2, partition.Range, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCSP(tc.c, plan, chains.Glauber); err == nil {
		t.Fatal("Glauber sharded CSP engine accepted")
	}
}
