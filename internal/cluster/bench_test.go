package cluster

import (
	"fmt"
	"testing"

	"locsample/internal/chains"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/partition"
	"locsample/internal/rng"
)

// BenchmarkClusterGridColoring measures one chain advancing a fixed round
// budget on a 256×256 grid coloring, centralized (shards=1 runs the plain
// chains.Sampler as the baseline) and sharded. cmd/lsbench runs the same
// shape at ≥10⁶ vertices and records the trajectory in BENCH_PR3.json.
func BenchmarkClusterGridColoring(b *testing.B) {
	const rows, cols, q, rounds = 256, 256, 13, 4
	g := graph.Grid(rows, cols)
	m := mrf.Coloring(g, q)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("shards=1", func(b *testing.B) {
		cs := chains.NewSampler(m, init, 1, chains.LocalMetropolis, chains.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cs.Reset(init, uint64(i))
			cs.Run(rounds)
		}
		b.ReportMetric(float64(g.N())*float64(rounds), "vertex-updates/op")
	})
	for _, k := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			plan, err := partition.Build(g, k, partition.Range, 0)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := New(m, plan, chains.LocalMetropolis, false)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]int, g.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Run(init, uint64(i), rounds, out)
			}
			b.ReportMetric(float64(g.N())*float64(rounds), "vertex-updates/op")
		})
	}
}

// BenchmarkClusterExchange isolates the boundary-exchange cost: a tiny
// round budget on a partition with a long boundary (range strategy across
// grid columns would be worst-case; BFS on gnp is the realistic shape).
func BenchmarkClusterExchange(b *testing.B) {
	g := graph.SparseGnp(1<<15, 8/float64(1<<15), rng.New(3))
	m := mrf.Coloring(g, 3*g.MaxDeg()+1)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := partition.Build(g, 4, partition.BFS, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(m, plan, chains.LocalMetropolis, false)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]int, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(init, uint64(i), 2, out)
	}
}
