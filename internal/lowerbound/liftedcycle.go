package lowerbound

import (
	"fmt"
	"math"

	"locsample/internal/chains"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

// LiftedCycle is the §5.1.2 graph H^G: m disjoint copies of a gadget G
// (one per vertex of an even cycle H), with the terminals of adjacent
// copies joined by perfect matchings so the result is Δ-regular. The
// gadget's K terminals per side split into a "left" half (matched with the
// previous copy) and a "right" half (matched with the next copy), so K must
// be even — the paper's G ∈ G_n^{2k}.
type LiftedCycle struct {
	G  *graph.Graph
	M  int
	Gd *Gadget
}

// BuildLiftedCycle assembles H^G from m copies of gd. Requires m >= 4 even
// and gd.K even and positive. Copy x occupies vertices
// [x·2n, (x+1)·2n) with gd's internal numbering.
func BuildLiftedCycle(gd *Gadget, m int) (*LiftedCycle, error) {
	if m < 4 || m%2 != 0 {
		return nil, fmt.Errorf("lowerbound: lifted cycle needs even m >= 4, got %d", m)
	}
	if gd.K <= 0 || gd.K%2 != 0 {
		return nil, fmt.Errorf("lowerbound: lifted cycle needs even positive K, got %d", gd.K)
	}
	nv := gd.G.N()
	b := graph.NewBuilder(m * nv)
	// Internal gadget edges, copied per cycle vertex.
	for x := 0; x < m; x++ {
		off := x * nv
		for _, e := range gd.G.Edges() {
			b.AddEdge(off+int(e.U), off+int(e.V))
		}
	}
	// Cross matchings: right half of W^± of copy x to left half of W^± of
	// copy x+1.
	h := gd.K / 2
	for x := 0; x < m; x++ {
		y := (x + 1) % m
		offX, offY := x*nv, y*nv
		for i := 0; i < h; i++ {
			b.AddEdge(offX+gd.WPlus[h+i], offY+gd.WPlus[i])
			b.AddEdge(offX+gd.WMinus[h+i], offY+gd.WMinus[i])
		}
	}
	return &LiftedCycle{G: b.Build(), M: m, Gd: gd}, nil
}

// PhaseOfCopy returns the phase of copy x under a configuration of H^G.
func (lc *LiftedCycle) PhaseOfCopy(sigma []int, x int) int {
	nv := lc.Gd.G.N()
	off := x * nv
	sp, sm := 0, 0
	for _, v := range lc.Gd.VPlus {
		sp += sigma[off+v]
	}
	for _, v := range lc.Gd.VMinus {
		sm += sigma[off+v]
	}
	switch {
	case sp > sm:
		return PhasePlus
	case sp < sm:
		return PhaseMinus
	default:
		return PhaseTie
	}
}

// --- Transfer-matrix machinery ---------------------------------------------

// Transfer holds the phase-resolved transfer matrices of a gadget: the
// boundary state is the joint configuration of its 2K terminals
// (bits [0,K): W⁺, bits [K,2K): W⁻), W[p][τ] is the total hardcore weight of
// internal configurations with phase p and boundary τ, and C(τ,τ′) indicates
// cross-matching compatibility between consecutive copies.
type Transfer struct {
	K    int // terminals per side
	Dim  int // 2^(2K) boundary states
	W    [3][]float64
	C    []float64 // Dim×Dim 0/1, row-major
	M    [3][]float64
	MSum []float64 // M[+]+M[−]+M[tie]
}

// ComputeTransfer enumerates the gadget's 2^(2n) configurations and builds
// the transfer matrices for fugacity lambda. Requires 2n <= 24 and even K.
func ComputeTransfer(gd *Gadget, lambda float64) (*Transfer, error) {
	if gd.K%2 != 0 {
		return nil, fmt.Errorf("lowerbound: transfer needs even K")
	}
	nv := gd.G.N()
	if nv > 24 {
		return nil, fmt.Errorf("lowerbound: transfer enumeration needs <= 24 vertices, got %d", nv)
	}
	t := &Transfer{K: gd.K, Dim: 1 << (2 * gd.K)}
	for p := range t.W {
		t.W[p] = make([]float64, t.Dim)
	}
	edges := gd.G.Edges()
	sigma := make([]int, nv)
	powLambda := make([]float64, nv+1)
	powLambda[0] = 1
	for i := 1; i <= nv; i++ {
		powLambda[i] = powLambda[i-1] * lambda
	}
	for code := 0; code < 1<<nv; code++ {
		pop := 0
		for i := 0; i < nv; i++ {
			sigma[i] = (code >> i) & 1
			pop += sigma[i]
		}
		feasible := true
		for _, e := range edges {
			if sigma[e.U] == 1 && sigma[e.V] == 1 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		p := gd.PhaseOf(sigma)
		tau := 0
		for i, v := range gd.WPlus {
			tau |= sigma[v] << i
		}
		for i, v := range gd.WMinus {
			tau |= sigma[v] << (gd.K + i)
		}
		t.W[p][tau] += powLambda[pop]
	}
	// Cross compatibility: right half of τ's W⁺ (bits K/2..K-1) against
	// left half of τ′'s W⁺ (bits 0..K/2-1); same for W⁻.
	h := gd.K / 2
	t.C = make([]float64, t.Dim*t.Dim)
	for tau := 0; tau < t.Dim; tau++ {
		for tau2 := 0; tau2 < t.Dim; tau2++ {
			ok := true
			for i := 0; i < h && ok; i++ {
				if tau>>(h+i)&1 == 1 && tau2>>i&1 == 1 {
					ok = false
				}
				if tau>>(gd.K+h+i)&1 == 1 && tau2>>(gd.K+i)&1 == 1 {
					ok = false
				}
			}
			if ok {
				t.C[tau*t.Dim+tau2] = 1
			}
		}
	}
	// M[p](τ,τ′) = W[p](τ)·C(τ,τ′).
	for p := 0; p < 3; p++ {
		t.M[p] = make([]float64, t.Dim*t.Dim)
		for tau := 0; tau < t.Dim; tau++ {
			w := t.W[p][tau]
			if w == 0 {
				continue
			}
			for tau2 := 0; tau2 < t.Dim; tau2++ {
				t.M[p][tau*t.Dim+tau2] = w * t.C[tau*t.Dim+tau2]
			}
		}
	}
	t.MSum = make([]float64, t.Dim*t.Dim)
	for i := range t.MSum {
		t.MSum[i] = t.M[0][i] + t.M[1][i] + t.M[2][i]
	}
	return t, nil
}

// mul returns a×b for Dim×Dim row-major matrices.
func (t *Transfer) mul(a, b []float64) []float64 {
	d := t.Dim
	out := make([]float64, d*d)
	for i := 0; i < d; i++ {
		arow := a[i*d : (i+1)*d]
		orow := out[i*d : (i+1)*d]
		for k := 0; k < d; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b[k*d : (k+1)*d]
			for j := 0; j < d; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

func (t *Transfer) trace(a []float64) float64 {
	s := 0.0
	for i := 0; i < t.Dim; i++ {
		s += a[i*t.Dim+i]
	}
	return s
}

// identity returns the Dim×Dim identity.
func (t *Transfer) identity() []float64 {
	id := make([]float64, t.Dim*t.Dim)
	for i := 0; i < t.Dim; i++ {
		id[i*t.Dim+i] = 1
	}
	return id
}

// PhaseVectorWeight returns Z_{H^G}(Y′) (Definition 5.1): the total hardcore
// weight of configurations whose per-copy phases equal the given vector.
func (t *Transfer) PhaseVectorWeight(phases []int) float64 {
	acc := t.identity()
	for _, p := range phases {
		acc = t.mul(acc, t.M[p])
	}
	return t.trace(acc)
}

// TotalZ returns the partition function of H^G with m copies.
func (t *Transfer) TotalZ(m int) float64 {
	acc := t.identity()
	for x := 0; x < m; x++ {
		acc = t.mul(acc, t.MSum)
	}
	return t.trace(acc)
}

// PairPhaseProb returns the exact joint distribution of (Y_x, Y_y) for
// copies at cyclic positions x < y in an m-copy lifted cycle.
func (t *Transfer) PairPhaseProb(m, x, y int) (joint [3][3]float64, err error) {
	if !(0 <= x && x < y && y < m) {
		return joint, fmt.Errorf("lowerbound: need 0 <= x < y < m")
	}
	z := t.TotalZ(m)
	if z <= 0 {
		return joint, fmt.Errorf("lowerbound: zero partition function")
	}
	// Precompute powers of MSum for the two gaps.
	gap1 := y - x - 1
	gap2 := m - (y - x) - 1
	pow := func(k int) []float64 {
		acc := t.identity()
		for i := 0; i < k; i++ {
			acc = t.mul(acc, t.MSum)
		}
		return acc
	}
	g1, g2 := pow(gap1), pow(gap2)
	for a := 0; a < 3; a++ {
		left := t.mul(t.M[a], g1)
		for b := 0; b < 3; b++ {
			prod := t.mul(left, t.M[b])
			prod = t.mul(prod, g2)
			joint[a][b] = t.trace(prod) / z
		}
	}
	return joint, nil
}

// PhaseMarginal returns the exact marginal phase distribution of one copy
// in an m-copy lifted cycle (positions are exchangeable, so the result is
// position-independent).
func (t *Transfer) PhaseMarginal(m int) ([3]float64, error) {
	var out [3]float64
	z := t.TotalZ(m)
	if z <= 0 {
		return out, fmt.Errorf("lowerbound: zero partition function")
	}
	rest := t.identity()
	for i := 0; i < m-1; i++ {
		rest = t.mul(rest, t.MSum)
	}
	for p := 0; p < 3; p++ {
		out[p] = t.trace(t.mul(t.M[p], rest)) / z
	}
	return out, nil
}

// MaxCutPhaseVectors returns the two alternating phase vectors of the even
// cycle (its two maximum cuts).
func MaxCutPhaseVectors(m int) (a, b []int) {
	a = make([]int, m)
	b = make([]int, m)
	for x := 0; x < m; x++ {
		if x%2 == 0 {
			a[x], b[x] = PhasePlus, PhaseMinus
		} else {
			a[x], b[x] = PhaseMinus, PhasePlus
		}
	}
	return a, b
}

// MaxCutMass returns the exact Gibbs probability of each max-cut phase
// vector and the total phase mass captured by the two of them.
func (t *Transfer) MaxCutMass(m int) (p1, p2, total float64) {
	z := t.TotalZ(m)
	y1, y2 := MaxCutPhaseVectors(m)
	p1 = t.PhaseVectorWeight(y1) / z
	p2 = t.PhaseVectorWeight(y2) / z
	return p1, p2, p1 + p2
}

// PhaseCorrelation reduces a joint phase distribution to the correlation of
// the ± indicator (ties contribute zero): E[s_x s_y] − E[s_x]E[s_y] with
// s = +1 for phase +, −1 for phase −, 0 for tie.
func PhaseCorrelation(joint [3][3]float64) float64 {
	sign := [3]float64{+1, -1, 0}
	var exy, ex, ey float64
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			p := joint[a][b]
			exy += p * sign[a] * sign[b]
			ex += p * sign[a]
			ey += p * sign[b]
		}
	}
	return exy - ex*ey
}

// --- Protocol side of Theorem 5.2 -------------------------------------------

// ProtocolPhaseJoint runs the (centralized replay of the) LocalMetropolis
// hardcore protocol on H^G for T rounds from the empty configuration, over
// `runs` independent seeds, and returns the empirical joint distribution of
// the phases of copies x and y. Because the distributed protocol reproduces
// the centralized chain exactly (internal/dist tests), this measures
// precisely what a T-round LOCAL protocol outputs.
func ProtocolPhaseJoint(lc *LiftedCycle, lambda float64, T int, runs int, seed uint64, x, y int) (joint [3][3]float64) {
	m := mrf.Hardcore(lc.G, lambda)
	n := lc.G.N()
	init := make([]int, n)
	conf := make([]int, n)
	sc := chains.NewScratch(m)
	for run := 0; run < runs; run++ {
		copy(conf, init)
		s := seed + uint64(run)*0x9e3779b97f4a7c15
		for k := 0; k < T; k++ {
			chains.LocalMetropolisRound(m, conf, s, k, false, sc)
		}
		a := lc.PhaseOfCopy(conf, x)
		b := lc.PhaseOfCopy(conf, y)
		joint[a][b] += 1 / float64(runs)
	}
	return joint
}

// GibbsVsProtocolGap packages the E8 headline numbers: the exact antipodal
// phase correlation under Gibbs, the protocol's correlation after T rounds,
// and the graph diameter. A correct sampler must reproduce the Gibbs
// correlation; locality forces the protocol's to ≈ 0 for T < diam/2.
type GibbsVsProtocolGap struct {
	Diam          int
	GibbsCorr     float64
	ProtocolCorr  float64
	GibbsJoint    [3][3]float64
	ProtocolJoint [3][3]float64
}

// ComputeGap runs both sides for antipodal copies (0, m/2).
func ComputeGap(lc *LiftedCycle, tr *Transfer, lambda float64, T, runs int, seed uint64) (*GibbsVsProtocolGap, error) {
	gj, err := tr.PairPhaseProb(lc.M, 0, lc.M/2)
	if err != nil {
		return nil, err
	}
	pj := ProtocolPhaseJoint(lc, lambda, T, runs, seed, 0, lc.M/2)
	return &GibbsVsProtocolGap{
		Diam:          lc.G.Diameter(),
		GibbsCorr:     PhaseCorrelation(gj),
		ProtocolCorr:  PhaseCorrelation(pj),
		GibbsJoint:    gj,
		ProtocolJoint: pj,
	}, nil
}

// CountHardcoreZ computes the exact hardcore partition function
// Σ_{I independent} λ^|I| of a graph with at most 64 vertices by the
// classic branching recursion Z(G) = Z(G−v) + λ·Z(G−Γ⁺(v)), branching on a
// maximum-degree remaining vertex and memoizing on the remaining-vertex
// bitmask. Used to cross-validate the transfer-matrix pipeline on actual
// lifted-cycle graphs (too large for configuration enumeration, small
// enough for IS recursion).
func CountHardcoreZ(g *graph.Graph, lambda float64) (float64, error) {
	n := g.N()
	if n > 64 {
		return 0, fmt.Errorf("lowerbound: CountHardcoreZ needs <= 64 vertices, got %d", n)
	}
	nbr := make([]uint64, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Adj(v) {
			nbr[v] |= 1 << uint(u)
		}
	}
	full := uint64(1)<<uint(n) - 1
	if n == 64 {
		full = ^uint64(0)
	}
	memo := make(map[uint64]float64, 1<<16)
	var rec func(rem uint64) float64
	// component extracts the connected component of v within rem.
	component := func(rem uint64, v int) uint64 {
		comp := uint64(1) << uint(v)
		frontier := comp
		for frontier != 0 {
			next := uint64(0)
			for m := frontier; m != 0; m &= m - 1 {
				u := trailingZeros(m)
				next |= nbr[u] & rem &^ comp
			}
			comp |= next
			frontier = next
		}
		return comp
	}
	rec = func(rem uint64) float64 {
		if rem == 0 {
			return 1
		}
		if z, ok := memo[rem]; ok {
			return z
		}
		// Split across connected components: Z factorizes, and the memo
		// hits far more often on small pieces.
		first := trailingZeros(rem)
		comp := component(rem, first)
		if comp != rem {
			z := rec(comp) * rec(rem&^comp)
			memo[rem] = z
			return z
		}
		// Branch on the vertex with the most remaining neighbors.
		best, bestDeg := -1, -1
		for m := rem; m != 0; m &= m - 1 {
			v := trailingZeros(m)
			d := popcount64(nbr[v] & rem)
			if d > bestDeg {
				best, bestDeg = v, d
			}
		}
		v := best
		z := rec(rem &^ (1 << uint(v)))
		z += lambda * rec(rem&^(nbr[v]|1<<uint(v)))
		memo[rem] = z
		return z
	}
	return rec(full), nil
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// ThetaGammaRatio returns Θ/Γ of Lemma 5.5 for given q⁺, q⁻:
// Θ = (1 − q⁺q⁻)², Γ = (1 − (q⁺)²)(1 − (q⁻)²). Θ/Γ > 1 in the
// non-uniqueness regime (q⁺ ≠ q⁻), which is what makes max cuts dominate.
func ThetaGammaRatio(qPlus, qMinus float64) float64 {
	theta := (1 - qPlus*qMinus) * (1 - qPlus*qMinus)
	gamma := (1 - qPlus*qPlus) * (1 - qMinus*qMinus)
	if gamma == 0 {
		return math.Inf(1)
	}
	return theta / gamma
}
