package lowerbound

import (
	"fmt"
	"math"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

// Gadget is an instance of the §5.1.1 random bipartite (multi-)graph G_n^k:
// two sides V⁺ = U⁺ ⊎ W⁺ and V⁻ = U⁻ ⊎ W⁻ with |V^±| = n and |W^±| = k,
// joined by Δ−1 random perfect matchings between V⁺ and V⁻ plus one random
// perfect matching between U⁺ and U⁻. Non-terminal vertices have degree Δ;
// the 2k terminals have degree Δ−1 (their last slot is reserved for the
// cross edges of the lifted cycle).
type Gadget struct {
	G     *graph.Graph
	N, K  int
	Delta int
	// Vertex numbering: V⁺ = 0..n-1 (terminals last: W⁺ = n-k..n-1),
	// V⁻ = n..2n-1 (terminals last: W⁻ = 2n-k..2n-1).
	VPlus, VMinus []int
	WPlus, WMinus []int
}

// BuildGadget samples a G_n^k with maximum degree delta. Requires
// n > 2k >= 0 and delta >= 2.
func BuildGadget(n, k, delta int, r *rng.Source) (*Gadget, error) {
	if k < 0 || n <= 2*k {
		return nil, fmt.Errorf("lowerbound: gadget needs n > 2k, got n=%d k=%d", n, k)
	}
	if delta < 2 {
		return nil, fmt.Errorf("lowerbound: gadget needs Δ >= 2, got %d", delta)
	}
	b := graph.NewBuilder(2 * n)
	// Δ−1 perfect matchings between V⁺ (0..n-1) and V⁻ (n..2n-1).
	for t := 0; t < delta-1; t++ {
		match := r.Perm(n)
		for i := 0; i < n; i++ {
			b.AddEdge(i, n+match[i])
		}
	}
	// One perfect matching between U⁺ (0..n-k-1) and U⁻ (n..2n-k-1).
	matchU := r.Perm(n - k)
	for i := 0; i < n-k; i++ {
		b.AddEdge(i, n+matchU[i])
	}
	g := &Gadget{G: b.Build(), N: n, K: k, Delta: delta}
	for i := 0; i < n; i++ {
		g.VPlus = append(g.VPlus, i)
		g.VMinus = append(g.VMinus, n+i)
	}
	for i := n - k; i < n; i++ {
		g.WPlus = append(g.WPlus, i)
	}
	for i := 2*n - k; i < 2*n; i++ {
		g.WMinus = append(g.WMinus, i)
	}
	return g, nil
}

// Phase values.
const (
	PhasePlus  = 0
	PhaseMinus = 1
	PhaseTie   = 2
)

// PhaseOf returns the phase Y(σ) of a configuration on the gadget: + when
// V⁺ holds more occupied vertices than V⁻, − when fewer, tie otherwise.
func (gd *Gadget) PhaseOf(sigma []int) int {
	sp, sm := 0, 0
	for _, v := range gd.VPlus {
		sp += sigma[v]
	}
	for _, v := range gd.VMinus {
		sm += sigma[v]
	}
	switch {
	case sp > sm:
		return PhasePlus
	case sp < sm:
		return PhaseMinus
	default:
		return PhaseTie
	}
}

// HasTerminalAdjacency reports whether some W⁺ terminal is directly matched
// to a W⁻ terminal. At the paper's scale (k = o(n)) this is rare and the
// good-gadget event of Proposition 5.3 excludes it; tiny instances must
// check it explicitly because an adjacent terminal pair forces some
// boundary configurations to probability zero.
func (gd *Gadget) HasTerminalAdjacency() bool {
	isTerm := make(map[int]bool, 2*gd.K)
	for _, w := range gd.WPlus {
		isTerm[w] = true
	}
	for _, w := range gd.WMinus {
		isTerm[w] = true
	}
	for _, e := range gd.G.Edges() {
		if isTerm[int(e.U)] && isTerm[int(e.V)] {
			return true
		}
	}
	return false
}

// FindGoodGadget searches random gadgets until one satisfies the
// Proposition 5.3 conditions at fugacity λ: connected, no terminal
// adjacency, phases balanced within balanceTol, and terminal likelihood
// ratios within [1−ratioTol, 1+ratioTol]. This is the constructive version
// of the paper's "by the probabilistic method, there exists a G satisfying
// the above conditions". Returns the gadget, its stats, and the number of
// attempts used.
func FindGoodGadget(n, k, delta int, lambda, balanceTol, ratioTol float64, maxTries int, seed uint64) (*Gadget, *GadgetStats, int, error) {
	r := rng.New(seed)
	for try := 1; try <= maxTries; try++ {
		gd, err := BuildGadget(n, k, delta, r)
		if err != nil {
			return nil, nil, try, err
		}
		if !gd.G.Connected() || gd.HasTerminalAdjacency() {
			continue
		}
		st, err := ComputeGadgetStats(gd, lambda)
		if err != nil {
			return nil, nil, try, err
		}
		if math.Abs(st.PhaseProb[PhasePlus]-st.PhaseProb[PhaseMinus]) > balanceTol {
			continue
		}
		if st.RatioLo < 1-ratioTol || st.RatioHi > 1+ratioTol {
			continue
		}
		return gd, st, try, nil
	}
	return nil, nil, maxTries, fmt.Errorf("lowerbound: no good gadget in %d tries", maxTries)
}

// GadgetStats summarizes the exact hardcore Gibbs distribution of a gadget
// at fugacity λ (Proposition 5.3's quantities).
type GadgetStats struct {
	// PhaseProb[p] is the Gibbs probability of phase p (+, −, tie).
	PhaseProb [3]float64
	// QPlus and QMinus estimate the per-terminal occupation probabilities
	// q⁺ (W⁺ terminals under phase +) and q⁻ (W⁻ terminals under phase +).
	QPlus, QMinus float64
	// RatioLo and RatioHi bound Pr[σ_W = τ | phase]/Q^{phase}(τ) over all
	// terminal configurations τ and both non-tie phases — Proposition 5.3's
	// "phase-correlated almost independence" holds when both are near 1.
	RatioLo, RatioHi float64
	// Z is the hardcore partition function.
	Z float64
}

// ComputeGadgetStats enumerates all 2^(2n) configurations. Requires
// 2n <= 24.
func ComputeGadgetStats(gd *Gadget, lambda float64) (*GadgetStats, error) {
	nv := gd.G.N()
	if nv > 24 {
		return nil, fmt.Errorf("lowerbound: gadget enumeration needs <= 24 vertices, got %d", nv)
	}
	edges := gd.G.Edges()
	sigma := make([]int, nv)
	stats := &GadgetStats{}
	// Aggregate per (phase, terminal configuration): weight, and per-phase
	// occupation sums for the q± estimates.
	tk := 2 * gd.K
	termWeight := make([][]float64, 3)
	for p := range termWeight {
		termWeight[p] = make([]float64, 1<<tk)
	}
	occPlus := [3]float64{}
	occMinus := [3]float64{}

	powLambda := make([]float64, nv+1)
	powLambda[0] = 1
	for i := 1; i <= nv; i++ {
		powLambda[i] = powLambda[i-1] * lambda
	}

	for code := 0; code < 1<<nv; code++ {
		pop := 0
		for i := 0; i < nv; i++ {
			sigma[i] = (code >> i) & 1
			pop += sigma[i]
		}
		feasible := true
		for _, e := range edges {
			if sigma[e.U] == 1 && sigma[e.V] == 1 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		w := powLambda[pop]
		stats.Z += w
		p := gd.PhaseOf(sigma)
		stats.PhaseProb[p] += w
		tau := 0
		for i, v := range gd.WPlus {
			tau |= sigma[v] << i
		}
		for i, v := range gd.WMinus {
			tau |= sigma[v] << (gd.K + i)
		}
		termWeight[p][tau] += w
		wp := 0
		for _, v := range gd.WPlus {
			wp += sigma[v]
		}
		wm := 0
		for _, v := range gd.WMinus {
			wm += sigma[v]
		}
		occPlus[p] += w * float64(wp)
		occMinus[p] += w * float64(wm)
	}
	if stats.Z <= 0 {
		return nil, fmt.Errorf("lowerbound: zero partition function")
	}
	for p := range stats.PhaseProb {
		stats.PhaseProb[p] /= stats.Z
	}
	// q⁺ = mean occupation of a W⁺ terminal conditioned on phase +;
	// q⁻ = mean occupation of a W⁻ terminal conditioned on phase +.
	massPlus := stats.PhaseProb[PhasePlus] * stats.Z
	if massPlus > 0 && gd.K > 0 {
		stats.QPlus = occPlus[PhasePlus] / (massPlus * float64(gd.K))
		stats.QMinus = occMinus[PhasePlus] / (massPlus * float64(gd.K))
	}
	// Likelihood ratios against the product measure Q^± (Prop 5.3): under
	// phase +, W⁺ spins are i.i.d. Bernoulli(q⁺) and W⁻ spins Bernoulli(q⁻);
	// under phase − the roles swap.
	stats.RatioLo, stats.RatioHi = math.Inf(1), math.Inf(-1)
	for _, p := range []int{PhasePlus, PhaseMinus} {
		mass := stats.PhaseProb[p] * stats.Z
		if mass <= 0 {
			continue
		}
		qp, qm := stats.QPlus, stats.QMinus
		if p == PhaseMinus {
			qp, qm = qm, qp
		}
		for tau := 0; tau < 1<<tk; tau++ {
			prob := termWeight[p][tau] / mass
			qTau := 1.0
			for i := 0; i < gd.K; i++ {
				if tau>>i&1 == 1 {
					qTau *= qp
				} else {
					qTau *= 1 - qp
				}
			}
			for i := 0; i < gd.K; i++ {
				if tau>>(gd.K+i)&1 == 1 {
					qTau *= qm
				} else {
					qTau *= 1 - qm
				}
			}
			if qTau <= 0 {
				continue
			}
			ratio := prob / qTau
			if ratio < stats.RatioLo {
				stats.RatioLo = ratio
			}
			if ratio > stats.RatioHi {
				stats.RatioHi = ratio
			}
		}
	}
	return stats, nil
}
