package lowerbound

import (
	"math"
	"testing"

	"locsample/internal/chains"
	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// --- Path correlation (Theorem 5.1) ----------------------------------------

func TestPathConditionalMatchesClosedForm(t *testing.T) {
	for _, q := range []int{3, 4, 5} {
		for d := 0; d <= 12; d++ {
			it := PathConditional(q, d, 1)
			cf := PathConditionalClosedForm(q, d, 1)
			for b := 0; b < q; b++ {
				if math.Abs(it[b]-cf[b]) > 1e-12 {
					t.Fatalf("q=%d d=%d: iterate %v vs closed form %v", q, d, it, cf)
				}
			}
		}
	}
}

func TestPathConditionalMatchesEnumeration(t *testing.T) {
	// Transfer-matrix conditionals must match brute-force conditionals of
	// the Gibbs distribution on an actual path.
	q, n := 3, 8
	m := mrf.Coloring(graph.Path(n), q)
	mu, err := exact.Enumerate(n, q, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= 5; d++ {
		want, err := mu.ConditionalMarginal(d, map[int]int{0: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := PathConditional(q, d, 1)
		for b := 0; b < q; b++ {
			if math.Abs(got[b]-want[b]) > 1e-12 {
				t.Fatalf("d=%d: transfer %v vs enumeration %v", d, got, want)
			}
		}
	}
}

func TestPathCorrelationExponentialDecay(t *testing.T) {
	// The decay is exactly η^d with η = 1/(q−1) — the paper's property (28).
	for _, q := range []int{3, 4, 6} {
		eta := PathEta(q)
		for d := 1; d <= 10; d++ {
			want := math.Pow(eta, float64(d))
			got := PathCorrelationTV(q, d)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("q=%d d=%d: TV %v, want η^d = %v", q, d, got, want)
			}
		}
	}
}

func TestPathJointProductTV(t *testing.T) {
	// Positive for all finite distances, decaying geometrically; equals
	// η^d·(q−1)/q.
	q := 3
	for d := 1; d <= 8; d++ {
		got := PathJointProductTV(q, d)
		want := math.Pow(PathEta(q), float64(d)) * float64(q-1) / float64(q)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("d=%d: joint-product TV %v, want %v", d, got, want)
		}
	}
}

func TestProtocolIndependenceBeyondHorizon(t *testing.T) {
	// Eq. (27) made concrete: after T rounds of the distributed sampler,
	// outputs at distance > 2T are exactly independent. We check the joint
	// empirical distribution factorizes within statistical error, while the
	// Gibbs joint at that distance does not.
	const (
		q, n  = 3, 17
		T     = 3
		runs  = 30000
		u, v  = 2, 14 // distance 12 > 2T = 6
		pairs = 9
	)
	m := mrf.Coloring(graph.Path(n), q)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	joint := make([]float64, pairs)
	margU := make([]float64, q)
	margV := make([]float64, q)
	conf := make([]int, n)
	sc := chains.NewScratch(m)
	for run := 0; run < runs; run++ {
		copy(conf, init)
		seed := uint64(run)*2654435761 + 1
		for k := 0; k < T; k++ {
			chains.ColoringLocalMetropolisRound(m, conf, seed, k, false, sc)
		}
		joint[conf[v]*q+conf[u]] += 1.0 / runs
		margU[conf[u]] += 1.0 / runs
		margV[conf[v]] += 1.0 / runs
	}
	prod := exact.Product(margU, margV)
	tvProto := exact.TV(joint, prod)
	// Statistical error only: ~sqrt(9/(2π·runs)) ≈ 0.004.
	if tvProto > 0.02 {
		t.Fatalf("protocol outputs at distance 12 after 3 rounds look dependent: TV %v", tvProto)
	}
	// The Gibbs joint at a much shorter distance has larger dependence than
	// the protocol's at long distance — the lower-bound gap.
	if gibbs := PathJointProductTV(q, 4); gibbs <= 0.02 {
		t.Fatalf("Gibbs joint-product TV %v unexpectedly small", gibbs)
	}
}

func TestLogLowerBound(t *testing.T) {
	d, rounds, err := LogLowerBound(3, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// η = 1/2, target = 1/32: η^d >= 1/32 ⟺ d <= 5.
	if d != 5 {
		t.Fatalf("max distance %d, want 5", d)
	}
	if rounds != 2 {
		t.Fatalf("round bound %d, want 2", rounds)
	}
	// The distance (hence the bound) grows with n: Ω(log n).
	d2, _, _ := LogLowerBound(3, 1<<20)
	if d2 <= d {
		t.Fatalf("bound not growing with n: %d vs %d", d2, d)
	}
	if _, _, err := LogLowerBound(2, 100); err == nil {
		t.Fatal("q=2 accepted")
	}
}

func TestMinRoundsForCorrelation(t *testing.T) {
	if MinRoundsForCorrelation(12) != 6 || MinRoundsForCorrelation(13) != 7 {
		t.Fatal("MinRoundsForCorrelation wrong")
	}
}

// --- Gadget (Proposition 5.3) -----------------------------------------------

func buildTestGadget(t *testing.T, n, k, delta int, seed uint64) *Gadget {
	t.Helper()
	gd, err := BuildGadget(n, k, delta, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return gd
}

func TestGadgetStructure(t *testing.T) {
	gd := buildTestGadget(t, 8, 2, 3, 42)
	g := gd.G
	if g.N() != 16 {
		t.Fatalf("gadget has %d vertices, want 16", g.N())
	}
	// Edges: (Δ−1)·n matchings + (n−k) U-matching = 2·8 + 6 = 22.
	if g.M() != 22 {
		t.Fatalf("gadget has %d edges, want 22", g.M())
	}
	// Degrees: terminals Δ−1, others Δ.
	isTerminal := map[int]bool{}
	for _, w := range gd.WPlus {
		isTerminal[w] = true
	}
	for _, w := range gd.WMinus {
		isTerminal[w] = true
	}
	for v := 0; v < g.N(); v++ {
		want := gd.Delta
		if isTerminal[v] {
			want = gd.Delta - 1
		}
		if g.Deg(v) != want {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Deg(v), want)
		}
	}
	// Bipartite between V⁺ and V⁻: every edge crosses.
	for _, e := range g.Edges() {
		if (int(e.U) < gd.N) == (int(e.V) < gd.N) {
			t.Fatalf("edge %v does not cross the bipartition", e)
		}
	}
}

func TestGadgetErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := BuildGadget(4, 2, 3, r); err == nil {
		t.Fatal("n <= 2k accepted")
	}
	if _, err := BuildGadget(8, 2, 1, r); err == nil {
		t.Fatal("Δ < 2 accepted")
	}
}

func TestGadgetPhaseBalanceAndIndependence(t *testing.T) {
	// Proposition 5.3 at small scale: phases balanced by symmetry-in-law,
	// and conditional terminal distributions close to the product measure.
	// Δ=3 has λ_c = 4; λ=6 is in the non-uniqueness regime. The search is
	// the paper's probabilistic-method step made constructive.
	// k=1 keeps the boundary small enough for near-product behaviour at an
	// enumerable scale; larger k needs the paper's n → ∞ asymptotics.
	gd, st, tries, err := FindGoodGadget(8, 1, 3, 6.0, 0.12, 0.5, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tries > 500 {
		t.Fatalf("good gadgets too rare: %d tries", tries)
	}
	if st.Z <= 0 {
		t.Fatal("zero partition function")
	}
	probs := st.PhaseProb
	if math.Abs(probs[PhasePlus]-probs[PhaseMinus]) > 0.12 {
		t.Fatalf("phases unbalanced: %+v", probs)
	}
	if probs[PhasePlus] < 0.25 || probs[PhaseMinus] < 0.25 {
		t.Fatalf("phases not dominant: %+v (tie %v)", probs, probs[PhaseTie])
	}
	// In the non-uniqueness regime the two sides occupy asymmetrically
	// conditioned on the phase.
	if !(st.QPlus > st.QMinus) {
		t.Fatalf("q⁺ = %v should exceed q⁻ = %v under phase +", st.QPlus, st.QMinus)
	}
	// Almost-independence: likelihood ratios near 1 (the finder guarantees
	// [0.5, 1.5]).
	if st.RatioLo < 0.5 || st.RatioHi > 1.5 {
		t.Fatalf("terminal distribution far from product: ratios [%v, %v]", st.RatioLo, st.RatioHi)
	}
	// Θ/Γ > 1 — the Lemma 5.5 engine.
	if r := ThetaGammaRatio(st.QPlus, st.QMinus); r <= 1 {
		t.Fatalf("Θ/Γ = %v, want > 1 in non-uniqueness", r)
	}
	if gd.HasTerminalAdjacency() {
		t.Fatal("good gadget has adjacent terminals")
	}
}

func TestGadgetUniquenessRegimeHasNoPhaseGap(t *testing.T) {
	// Control experiment: at λ far below λ_c the sides occupy nearly
	// symmetrically (q⁺ ≈ q⁻), so Θ/Γ ≈ 1 and the reduction loses its
	// engine.
	gd := buildTestGadget(t, 8, 2, 3, 7)
	st, err := ComputeGadgetStats(gd, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	nonUnique, err := ComputeGadgetStats(gd, 6.0)
	if err != nil {
		t.Fatal(err)
	}
	gapLow := math.Abs(st.QPlus - st.QMinus)
	gapHigh := math.Abs(nonUnique.QPlus - nonUnique.QMinus)
	if gapLow >= gapHigh {
		t.Fatalf("phase gap should grow with λ: %v (λ=0.3) vs %v (λ=6)", gapLow, gapHigh)
	}
	rLow := ThetaGammaRatio(st.QPlus, st.QMinus)
	rHigh := ThetaGammaRatio(nonUnique.QPlus, nonUnique.QMinus)
	if rLow >= rHigh {
		t.Fatalf("Θ/Γ should grow with λ: %v vs %v", rLow, rHigh)
	}
}

// --- Lifted cycle (Theorems 5.4 and 5.2) -------------------------------------

func buildSmallLift(t *testing.T, m int) (*LiftedCycle, *Transfer) {
	t.Helper()
	// Tiny gadget: n=5, K=2 (one terminal per cross side), Δ=3, λ=6.
	gd := buildTestGadget(t, 5, 2, 3, 11)
	lc, err := BuildLiftedCycle(gd, m)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ComputeTransfer(gd, 6.0)
	if err != nil {
		t.Fatal(err)
	}
	return lc, tr
}

func TestLiftedCycleStructure(t *testing.T) {
	lc, _ := buildSmallLift(t, 6)
	g := lc.G
	if g.N() != 6*10 {
		t.Fatalf("lifted cycle has %d vertices", g.N())
	}
	// Δ-regular: terminals got their missing edge back.
	if !g.IsRegular(3) {
		t.Fatalf("lifted cycle not 3-regular: %v", g.DegreeHistogram())
	}
	if !g.Connected() {
		t.Fatal("lifted cycle disconnected")
	}
	// Diameter grows linearly with m.
	lc2, _ := buildSmallLift(t, 10)
	if lc2.G.Diameter() <= lc.G.Diameter() {
		t.Fatalf("diameter not growing with m: %d vs %d", lc.G.Diameter(), lc2.G.Diameter())
	}
}

func TestBuildLiftedCycleErrors(t *testing.T) {
	gd := buildTestGadget(t, 5, 2, 3, 11)
	if _, err := BuildLiftedCycle(gd, 5); err == nil {
		t.Fatal("odd m accepted")
	}
	if _, err := BuildLiftedCycle(gd, 2); err == nil {
		t.Fatal("m=2 accepted")
	}
	gdOdd := buildTestGadget(t, 5, 1, 3, 3)
	if _, err := BuildLiftedCycle(gdOdd, 6); err == nil {
		t.Fatal("odd K accepted")
	}
}

func TestTransferMatchesDirectEnumeration(t *testing.T) {
	// The transfer-matrix partition function of H^G must equal brute-force
	// enumeration over the whole lifted graph. Keep it tiny: gadget n=3
	// (6 vertices), m=4 → 24 vertices total ⇒ 2^24 too big; use weight
	// enumeration via per-copy boundary aggregation instead: compare
	// against full enumeration on an even smaller gadget (n=3, K=2, Δ=2,
	// m=4 → 24 vertices — still 16M configurations, acceptable in Go? No:
	// 16M × 30 edges ≈ 0.5G ops. Use m=4, gadget n=3 → 2^24; too slow for
	// a unit test. Instead verify on m=4 with gadget n=3 but only count
	// independent sets via Z consistency at λ=1 using a meet-in-the-middle
	// check: TotalZ equals the weight-sum over all phase vectors.
	gd := buildTestGadget(t, 5, 2, 3, 5)
	tr, err := ComputeTransfer(gd, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const m = 4
	// Σ over all 3^m phase vectors of Z(Y′) must equal TotalZ.
	var total float64
	phases := make([]int, m)
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			total += tr.PhaseVectorWeight(phases)
			return
		}
		for p := 0; p < 3; p++ {
			phases[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	z := tr.TotalZ(m)
	if math.Abs(total-z)/z > 1e-9 {
		t.Fatalf("phase-vector weights sum to %v, TotalZ %v", total, z)
	}

	// And TotalZ at λ=1 counts independent sets of H^G: cross-check by
	// counting independent sets with a DP-free brute force on a 2-copy...
	// the cycle needs m >= 4, so instead verify TotalZ > number of
	// single-copy IS (sanity) and that it is an integer.
	if math.Abs(z-math.Round(z)) > 1e-6 {
		t.Fatalf("λ=1 partition function %v is not an integer", z)
	}
}

func TestTransferCountsMatchHardcoreEnumeration(t *testing.T) {
	// Direct cross-validation on the smallest legal instance: gadget n=3
	// (6 vertices), m=4 ⇒ H^G has 24 vertices. Count independent sets of
	// H^G exactly with a transfer computation and compare against the
	// mrf/exact pipeline on the same graph restricted to 2^20 budget — too
	// large; instead compare per-copy boundary weights against gadget
	// enumeration, which ComputeGadgetStats already cross-checks.
	gd := buildTestGadget(t, 5, 2, 3, 5)
	tr, err := ComputeTransfer(gd, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeGadgetStats(gd, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// Σ_p Σ_τ W[p][τ] = gadget partition function.
	var sum float64
	for p := 0; p < 3; p++ {
		for _, w := range tr.W[p] {
			sum += w
		}
	}
	if math.Abs(sum-st.Z)/st.Z > 1e-12 {
		t.Fatalf("transfer boundary weights sum to %v, gadget Z = %v", sum, st.Z)
	}
}

func TestMaxCutDominance(t *testing.T) {
	// Theorem 5.4 at small scale: the two alternating (max-cut) phase
	// vectors have equal probability and dominate every other ± phase
	// vector.
	_, tr := buildSmallLift(t, 6)
	const m = 6
	p1, p2, total := tr.MaxCutMass(m)
	if math.Abs(p1-p2)/math.Max(p1, p2) > 1e-9 {
		t.Fatalf("max cuts not symmetric: %v vs %v", p1, p2)
	}
	// Every non-alternating ± vector must carry strictly less mass.
	z := tr.TotalZ(m)
	y1, _ := MaxCutPhaseVectors(m)
	phases := make([]int, m)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == m {
			alt := true
			for x := range phases {
				if phases[x] != y1[x] && phases[x] != 1-y1[x] {
					alt = false
					break
				}
			}
			isMaxCut := true
			for x := 1; x < m; x++ {
				if phases[x] == phases[x-1] {
					isMaxCut = false
					break
				}
			}
			_ = alt
			w := tr.PhaseVectorWeight(phases) / z
			if !isMaxCut && w >= p1 {
				t.Fatalf("non-max-cut vector %v has mass %v >= max-cut %v", phases, w, p1)
			}
			return true
		}
		for p := 0; p < 2; p++ { // ± phases only
			phases[i] = p
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	if total <= 0.05 {
		t.Fatalf("max-cut mass %v too small at this scale", total)
	}
}

func TestAntipodalAntiCorrelation(t *testing.T) {
	// With m/2 odd, antipodal copies have opposite phases in both max cuts,
	// so the exact Gibbs phase correlation is negative.
	lc, tr := buildSmallLift(t, 6) // m/2 = 3 odd
	joint, err := tr.PairPhaseProb(lc.M, 0, lc.M/2)
	if err != nil {
		t.Fatal(err)
	}
	corr := PhaseCorrelation(joint)
	if corr >= -0.01 {
		t.Fatalf("antipodal Gibbs phase correlation %v, want clearly negative", corr)
	}
	// Sanity: joint is a distribution.
	var sum float64
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if joint[a][b] < -1e-12 {
				t.Fatalf("negative joint entry %v", joint[a][b])
			}
			sum += joint[a][b]
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("joint sums to %v", sum)
	}
}

func TestProtocolPhasesNearIndependent(t *testing.T) {
	// Theorem 5.2's engine: a T-round protocol with T ≪ diam produces
	// (near-)independent antipodal phases, unlike Gibbs.
	lc, tr := buildSmallLift(t, 6)
	gap, err := ComputeGap(lc, tr, 6.0, 3, 4000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if gap.Diam < 6 {
		t.Fatalf("lifted cycle diameter %d suspiciously small", gap.Diam)
	}
	// 3 rounds cannot cross between antipodal gadgets (distance >= m/2).
	if math.Abs(gap.ProtocolCorr) > 0.05 {
		t.Fatalf("protocol phase correlation %v, want ≈ 0", gap.ProtocolCorr)
	}
	if gap.GibbsCorr >= -0.01 {
		t.Fatalf("Gibbs correlation %v, want negative", gap.GibbsCorr)
	}
	// The gap itself — what any correct sampler must reproduce but a local
	// protocol cannot.
	if gap.GibbsCorr-gap.ProtocolCorr > -0.05 {
		t.Fatalf("no correlation gap: gibbs %v vs protocol %v", gap.GibbsCorr, gap.ProtocolCorr)
	}
}

func TestCountHardcoreZSmall(t *testing.T) {
	// Cross-check the branching counter against configuration enumeration.
	cases := []struct {
		g      *graph.Graph
		lambda float64
	}{
		{graph.Path(3), 1},   // 5 independent sets
		{graph.Cycle(5), 1},  // 11
		{graph.Path(3), 2},   // 1+2+2+2+4 = 11
		{graph.Star(5), 1.5}, // star: 1 + 1.5 + (1+1.5)^4 − 1 … just compare
		{graph.Grid(3, 3), 0.7},
	}
	for i, tc := range cases {
		m := mrf.Hardcore(tc.g, tc.lambda)
		mu, err := exact.Enumerate(tc.g.N(), 2, m.Weight, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		z, err := CountHardcoreZ(tc.g, tc.lambda)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(z-mu.Z)/mu.Z > 1e-12 {
			t.Fatalf("case %d: branching Z = %v, enumeration Z = %v", i, z, mu.Z)
		}
	}
}

func TestTransferTotalZMatchesDirectCount(t *testing.T) {
	// End-to-end validation of the transfer pipeline: the transfer-matrix
	// partition function of an actual lifted cycle must equal the direct
	// hardcore count on the assembled graph (40–60 vertices: far beyond
	// configuration enumeration, tractable for the branching IS recursion
	// with component splitting).
	for _, m := range []int{4, 6} {
		gd := buildTestGadget(t, 5, 2, 3, 11)
		lc, err := BuildLiftedCycle(gd, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, lambda := range []float64{1.0, 2.5, 6.0} {
			tr, err := ComputeTransfer(gd, lambda)
			if err != nil {
				t.Fatal(err)
			}
			zTransfer := tr.TotalZ(m)
			zDirect, err := CountHardcoreZ(lc.G, lambda)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(zTransfer-zDirect)/zDirect > 1e-9 {
				t.Fatalf("m=%d λ=%v: transfer Z = %v, direct Z = %v", m, lambda, zTransfer, zDirect)
			}
		}
	}
}

func TestPhaseMarginalConsistency(t *testing.T) {
	// The pair joint must marginalize to the single-copy phase marginal,
	// and the marginal must be a balanced distribution.
	_, tr := buildSmallLift(t, 6)
	marg, err := tr.PhaseMarginal(6)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := tr.PairPhaseProb(6, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		rowSum := 0.0
		for b := 0; b < 3; b++ {
			rowSum += joint[a][b]
		}
		if math.Abs(rowSum-marg[a]) > 1e-9 {
			t.Fatalf("phase %d: joint row sum %v vs marginal %v", a, rowSum, marg[a])
		}
	}
	// Approximate balance: a specific gadget instance is not exactly
	// spin-flip symmetric (Prop 5.3 gives balance only up to δ); the exact
	// p1 = p2 equality of MaxCutDominance comes from trace cyclicity, not
	// from ± symmetry.
	if math.Abs(marg[PhasePlus]-marg[PhaseMinus]) > 0.1 {
		t.Fatalf("phase marginal unbalanced: %+v", marg)
	}
	total := marg[0] + marg[1] + marg[2]
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("phase marginal sums to %v", total)
	}
}

func TestThetaGammaRatio(t *testing.T) {
	if r := ThetaGammaRatio(0.5, 0.5); math.Abs(r-1) > 1e-12 {
		t.Fatalf("symmetric Θ/Γ = %v, want 1", r)
	}
	if r := ThetaGammaRatio(0.8, 0.2); r <= 1 {
		t.Fatalf("asymmetric Θ/Γ = %v, want > 1", r)
	}
	if r := ThetaGammaRatio(1, 0.3); !math.IsInf(r, 1) {
		t.Fatalf("degenerate Θ/Γ = %v, want +Inf", r)
	}
}
