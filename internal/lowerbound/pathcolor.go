// Package lowerbound implements the paper's two sampling lower-bound
// constructions as executable experiments:
//
//   - §5 / Theorem 5.1: the Ω(log n) bound for sampling proper q-colorings
//     of a path, driven by exact exponential correlation decay (computed
//     here by transfer matrices) against the exact independence of t-round
//     protocol outputs beyond distance 2t (Eq. 27).
//   - §5.1 / Theorems 5.2 and 1.3: the Ω(diam) bound for the hardcore model
//     in the non-uniqueness regime, via the random bipartite gadget G_n^k
//     (Proposition 5.3) and the lifted even cycle H^G whose Gibbs
//     distribution concentrates on the two max-cut phase vectors
//     (Theorem 5.4). Small instances are analysed exactly: per-gadget
//     enumeration feeds a transfer-matrix computation of the full
//     phase-vector distribution along the cycle.
package lowerbound

import (
	"fmt"
	"math"
)

// PathTransition returns the conditional transition matrix of uniform proper
// q-colorings along a path: P(a,b) = 1/(q−1) for b ≠ a, 0 otherwise. The
// sequence of colors along a path is exactly a Markov chain with this
// kernel, which is what makes the path analysis exact.
func PathTransition(q int) [][]float64 {
	p := make([][]float64, q)
	for a := 0; a < q; a++ {
		p[a] = make([]float64, q)
		for b := 0; b < q; b++ {
			if a != b {
				p[a][b] = 1 / float64(q-1)
			}
		}
	}
	return p
}

// PathConditional returns the exact conditional distribution of the color at
// distance d from a vertex pinned to color c, computed by iterating the
// transition kernel d times.
func PathConditional(q, d, c int) []float64 {
	cur := make([]float64, q)
	next := make([]float64, q)
	cur[c] = 1
	inv := 1 / float64(q-1)
	for step := 0; step < d; step++ {
		for b := 0; b < q; b++ {
			// next[b] = Σ_{a≠b} cur[a]/(q−1) = (1 − cur[b])/(q−1).
			next[b] = (1 - cur[b]) * inv
		}
		cur, next = next, cur
	}
	return cur
}

// PathConditionalClosedForm returns the same distribution via the spectral
// formula P^d(c,b) = 1/q + (−1/(q−1))^d (1{c=b} − 1/q); used to cross-check
// the iteration.
func PathConditionalClosedForm(q, d, c int) []float64 {
	out := make([]float64, q)
	eig := math.Pow(-1/float64(q-1), float64(d))
	for b := 0; b < q; b++ {
		ind := 0.0
		if b == c {
			ind = 1
		}
		out[b] = 1/float64(q) + eig*(ind-1/float64(q))
	}
	return out
}

// PathCorrelationTV returns the exact total variation distance between the
// conditional distributions at distance d given two distinct pinned colors —
// the quantity in the paper's exponential-correlation property (28). For
// paths it equals η^d with η = 1/(q−1) exactly.
func PathCorrelationTV(q, d int) float64 {
	if q < 3 {
		panic("lowerbound: path colorings need q >= 3")
	}
	p0 := PathConditional(q, d, 0)
	p1 := PathConditional(q, d, 1)
	tv := 0.0
	for b := 0; b < q; b++ {
		tv += math.Abs(p0[b] - p1[b])
	}
	return tv / 2
}

// PathEta returns the exact correlation decay rate η = 1/(q−1) for proper
// q-colorings of a path.
func PathEta(q int) float64 { return 1 / float64(q-1) }

// PathJointProductTV returns the exact TV distance between the Gibbs joint
// distribution of two path vertices at distance d (deep inside a long path)
// and the product of their marginals. Any t-round protocol output has TV
// exactly 0 for d > 2t (Eq. 27); Gibbs keeps this quantity at
// η^d·(q−1)/q > 0, which is the engine of Theorem 5.1.
func PathJointProductTV(q, d int) float64 {
	// Joint: Pr[σ_u = a, σ_v = b] = (1/q)·P^d(a,b); product: 1/q².
	tv := 0.0
	for a := 0; a < q; a++ {
		cond := PathConditional(q, d, a)
		for b := 0; b < q; b++ {
			tv += math.Abs(cond[b]/float64(q) - 1/float64(q*q))
		}
	}
	return tv / 2
}

// MinRoundsForCorrelation returns the smallest t such that a t-round
// protocol could, in principle, correlate vertices at distance d — namely
// ⌈d/2⌉ by Eq. (27) — packaged for the experiment tables.
func MinRoundsForCorrelation(d int) int { return (d + 1) / 2 }

// LogLowerBound evaluates the Theorem 5.1 bookkeeping: to keep per-pair TV
// at least n^{-1/2} (the proof's threshold) the pinned distance must be at
// most log(√n)/log(1/η); the lower bound is half that distance. It returns
// the largest distance d with η^d ≥ n^{-1/2} and the implied round bound.
func LogLowerBound(q int, n int) (maxDist int, rounds int, err error) {
	if q < 3 || n < 4 {
		return 0, 0, fmt.Errorf("lowerbound: need q >= 3, n >= 4")
	}
	eta := PathEta(q)
	target := 1 / math.Sqrt(float64(n))
	d := int(math.Floor(math.Log(target) / math.Log(eta)))
	if d < 1 {
		d = 1
	}
	return d, (d - 1) / 2, nil
}
