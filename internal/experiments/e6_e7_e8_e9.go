package experiments

import (
	"fmt"
	"io"

	"locsample/internal/chains"
	"locsample/internal/dist"
	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/lowerbound"
	"locsample/internal/mrf"
	"locsample/internal/stats"
)

// RunE6 prints the path-coloring correlation tables behind Theorem 5.1.
func RunE6(w io.Writer, quick bool) error {
	header(w, "E6", "Ω(log n) on paths: exponential correlation vs protocol locality")
	fmt.Fprintln(w, "exact correlation decay d_TV(µ_v(·|σ_u), µ_v(·|σ'_u)) on a path:")
	fmt.Fprintln(w, "  q    d=1      d=2      d=4      d=8      measured η   analytic 1/(q−1)")
	for _, q := range []int{3, 4, 5} {
		var xs, ys []float64
		row := fmt.Sprintf("  %-4d", q)
		for _, d := range []int{1, 2, 4, 8} {
			tv := lowerbound.PathCorrelationTV(q, d)
			row += fmt.Sprintf(" %-8.5f", tv)
		}
		for d := 1; d <= 8; d++ {
			xs = append(xs, float64(d))
			ys = append(ys, lowerbound.PathCorrelationTV(q, d))
		}
		eta, err := stats.GeometricDecayRate(xs, ys)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s %-12.5f %.5f\n", row, eta, lowerbound.PathEta(q))
	}
	fmt.Fprintln(w, "\nimplied round lower bounds (distance with η^d ≥ n^{-1/2}, rounds ≥ ⌊(d−1)/2⌋):")
	fmt.Fprintln(w, "  n        q=3: dist rounds    q=4: dist rounds")
	for _, n := range []int{64, 1024, 1 << 14, 1 << 20} {
		d3, r3, err := lowerbound.LogLowerBound(3, n)
		if err != nil {
			return err
		}
		d4, r4, err := lowerbound.LogLowerBound(4, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8d %6d %6d       %6d %6d\n", n, d3, r3, d4, r4)
	}
	fmt.Fprintln(w, "\nGibbs joint-vs-product TV at distance d (q=3) — what a sampler must achieve,")
	fmt.Fprintln(w, "while any t-round protocol is exactly independent beyond d = 2t (Eq. 27):")
	for _, d := range []int{2, 4, 6, 8} {
		fmt.Fprintf(w, "  d=%-3d TV=%.6f  (needs t ≥ %d)\n",
			d, lowerbound.PathJointProductTV(3, d), lowerbound.MinRoundsForCorrelation(d))
	}

	// Protocol side: the measured joint-vs-product TV of actual
	// LocalMetropolis outputs, against the independence horizon.
	runs := 20000
	if quick {
		runs = 6000
	}
	fmt.Fprintf(w, "\nmeasured LocalMetropolis outputs on a 17-vertex path (q=3, %d runs):\n", runs)
	fmt.Fprintln(w, "  t    dist   joint-vs-product TV   (2t vs dist)")
	for _, tc := range []struct{ t, d int }{{2, 12}, {3, 12}, {3, 4}, {6, 4}} {
		tv, err := PathProtocolDependence(17, 3, tc.t, tc.d, runs, 909)
		if err != nil {
			return err
		}
		marker := "independent by Eq. 27"
		if 2*tc.t >= tc.d {
			marker = "dependence allowed"
		}
		fmt.Fprintf(w, "  %-4d %-6d %-21.4f %s\n", tc.t, tc.d, tv, marker)
	}
	return nil
}

// PathProtocolDependence measures the joint-vs-product TV of a t-round
// LocalMetropolis protocol's outputs at two path vertices at the given
// distance (centered in an n-vertex path).
func PathProtocolDependence(n, q, t, d, runs int, seed uint64) (float64, error) {
	if d >= n-2 {
		return 0, fmt.Errorf("experiments: distance %d too large for n=%d", d, n)
	}
	g := graph.Path(n)
	m := mrf.Coloring(g, q)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		return 0, err
	}
	u := (n - d) / 2
	v := u + d
	joint := make([]float64, q*q)
	margU := make([]float64, q)
	margV := make([]float64, q)
	conf := make([]int, n)
	sc := chains.NewScratch(m)
	for run := 0; run < runs; run++ {
		copy(conf, init)
		s := seed + uint64(run)*2654435761
		for k := 0; k < t; k++ {
			chains.ColoringLocalMetropolisRound(m, conf, s, k, false, sc)
		}
		joint[conf[v]*q+conf[u]] += 1.0 / float64(runs)
		margU[conf[u]] += 1.0 / float64(runs)
		margV[conf[v]] += 1.0 / float64(runs)
	}
	return exact.TV(joint, exact.Product(margU, margV)), nil
}

// GadgetReport is the E7 data.
type GadgetReport struct {
	N, K, Delta int
	Lambda      float64
	Tries       int
	Stats       *lowerbound.GadgetStats
	Diam        int
	ThetaGamma  float64
}

// GoodGadgetReport finds a Proposition 5.3 gadget and reports its exact
// statistics.
func GoodGadgetReport(n, k, delta int, lambda float64, seed uint64) (*GadgetReport, error) {
	gd, st, tries, err := lowerbound.FindGoodGadget(n, k, delta, lambda, 0.12, 0.5, 500, seed)
	if err != nil {
		return nil, err
	}
	return &GadgetReport{
		N: n, K: k, Delta: delta, Lambda: lambda,
		Tries: tries, Stats: st, Diam: gd.G.Diameter(),
		ThetaGamma: lowerbound.ThetaGammaRatio(st.QPlus, st.QMinus),
	}, nil
}

// RunE7 prints the gadget verification table.
func RunE7(w io.Writer, quick bool) error {
	header(w, "E7", "Random bipartite gadget G_n^k at λ > λ_c(Δ) (Prop 5.3)")
	fmt.Fprintf(w, "  λ_c(3) = %.3f, λ_c(4) = %.3f, λ_c(6) = %.3f; uniform IS (λ=1) is non-unique iff Δ ≥ 6\n",
		mrf.LambdaC(3), mrf.LambdaC(4), mrf.LambdaC(6))
	cases := []struct {
		n, k, delta int
		lambda      float64
	}{
		{8, 1, 3, 6}, {10, 1, 3, 6},
	}
	if !quick {
		cases = append(cases, struct {
			n, k, delta int
			lambda      float64
		}{10, 1, 4, 3})
	}
	fmt.Fprintln(w, "  n   k  Δ  λ    tries  Pr[+]   Pr[−]   Pr[tie]  q⁺      q⁻      ratio∈        Θ/Γ    diam")
	for _, tc := range cases {
		rep, err := GoodGadgetReport(tc.n, tc.k, tc.delta, tc.lambda, 7)
		if err != nil {
			return err
		}
		st := rep.Stats
		fmt.Fprintf(w, "  %-3d %-2d %-2d %-4.0f %-6d %-7.3f %-7.3f %-8.3f %-7.3f %-7.3f [%.2f, %.2f]  %-6.2f %d\n",
			rep.N, rep.K, rep.Delta, rep.Lambda, rep.Tries,
			st.PhaseProb[lowerbound.PhasePlus], st.PhaseProb[lowerbound.PhaseMinus],
			st.PhaseProb[lowerbound.PhaseTie], st.QPlus, st.QMinus,
			st.RatioLo, st.RatioHi, rep.ThetaGamma, rep.Diam)
	}
	fmt.Fprintln(w, "  paper: balanced phases, terminal spins ≈ product measure given the phase,")
	fmt.Fprintln(w, "  Θ/Γ > 1 in non-uniqueness (the Lemma 5.5 engine), diam = O(log n).")
	return nil
}

// LiftReport is the E8 data.
type LiftReport struct {
	M, Diam          int
	MaxCut1, MaxCut2 float64
	MaxCutTotal      float64
	GibbsCorr        float64
	ProtocolCorrs    []float64 // indexed by round budgets
	RoundBudgets     []int
}

// LiftedCycleReport builds a lifted cycle from a small gadget and computes
// the exact phase-vector facts plus the protocol correlations at several
// round budgets.
func LiftedCycleReport(m int, runs int, seed uint64) (*LiftReport, error) {
	gd, _, _, err := lowerbound.FindGoodGadget(5, 2, 3, 6.0, 1.0, 100.0, 500, seed)
	if err != nil {
		return nil, err
	}
	lc, err := lowerbound.BuildLiftedCycle(gd, m)
	if err != nil {
		return nil, err
	}
	tr, err := lowerbound.ComputeTransfer(gd, 6.0)
	if err != nil {
		return nil, err
	}
	p1, p2, total := tr.MaxCutMass(m)
	joint, err := tr.PairPhaseProb(m, 0, m/2)
	if err != nil {
		return nil, err
	}
	rep := &LiftReport{
		M:           m,
		Diam:        lc.G.Diameter(),
		MaxCut1:     p1,
		MaxCut2:     p2,
		MaxCutTotal: total,
		GibbsCorr:   lowerbound.PhaseCorrelation(joint),
	}
	diam := rep.Diam
	budgets := []int{1, diam / 4, diam / 2, diam, 2 * diam}
	for _, T := range budgets {
		if T < 1 {
			T = 1
		}
		pj := lowerbound.ProtocolPhaseJoint(lc, 6.0, T, runs, seed+uint64(T)*17, 0, m/2)
		rep.RoundBudgets = append(rep.RoundBudgets, T)
		rep.ProtocolCorrs = append(rep.ProtocolCorrs, lowerbound.PhaseCorrelation(pj))
	}
	return rep, nil
}

// RunE8 prints the lifted-cycle tables.
func RunE8(w io.Writer, quick bool) error {
	header(w, "E8", "Lifted even cycle H^G: max-cut phases and the Ω(diam) gap")
	ms := []int{6, 10}
	runs := 3000
	if quick {
		ms = []int{6}
		runs = 1200
	}
	for _, m := range ms {
		rep, err := LiftedCycleReport(m, runs, 11)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "m=%d gadget copies, diam=%d (grows with m):\n", rep.M, rep.Diam)
		fmt.Fprintf(w, "  exact Pr[max-cut 1] = %.4f, Pr[max-cut 2] = %.4f (equal by symmetry), sum = %.4f\n",
			rep.MaxCut1, rep.MaxCut2, rep.MaxCutTotal)
		fmt.Fprintf(w, "  exact antipodal phase correlation under Gibbs: %.4f (m/2 odd ⇒ anti-correlated)\n",
			rep.GibbsCorr)
		fmt.Fprintln(w, "  LocalMetropolis protocol phase correlation after T rounds:")
		for i, T := range rep.RoundBudgets {
			marker := ""
			if T < rep.Diam/2 {
				marker = "   (T < diam/2: locality forces ≈ 0)"
			}
			fmt.Fprintf(w, "    T=%-5d corr=%+.4f%s\n", T, rep.ProtocolCorrs[i], marker)
		}
	}
	fmt.Fprintln(w, "  paper: any ε-sampler must reproduce the negative correlation, but a t-round")
	fmt.Fprintln(w, "  protocol's antipodal outputs are independent for t < 0.49·diam ⇒ Ω(diam) rounds.")
	fmt.Fprintln(w, "  (The chain's own slow mixing in non-uniqueness keeps even large-T correlations")
	fmt.Fprintln(w, "  near 0 — consistent with the regime being hard for MCMC too.)")
	return nil
}

// SeparationPoint is one row of E9.
type SeparationPoint struct {
	N         int
	MISRounds float64
	Diam      int
	SampleLB  int // Ω(diam) scale: 0.49·diam
}

// SeparationData measures Luby MIS rounds (labeling) against the sampling
// lower-bound scale on path-of-gadgets style graphs (cycles for simplicity).
func SeparationData(ns []int, trials int, seed uint64) ([]SeparationPoint, error) {
	var out []SeparationPoint
	for _, n := range ns {
		g := graph.Cycle(n)
		total := 0.0
		for tr := 0; tr < trials; tr++ {
			_, st, err := dist.RunMIS(g, seed+uint64(tr), 10000)
			if err != nil {
				return nil, err
			}
			total += float64(st.Rounds)
		}
		diam := n / 2
		out = append(out, SeparationPoint{
			N:         n,
			MISRounds: total / float64(trials),
			Diam:      diam,
			SampleLB:  int(0.49 * float64(diam)),
		})
	}
	return out, nil
}

// RunE9 prints the labeling-vs-sampling separation table.
func RunE9(w io.Writer, quick bool) error {
	header(w, "E9", "Separation: constructing an IS is easy, sampling one is Ω(diam)")
	ns := []int{64, 256, 1024, 4096}
	trials := 5
	if quick {
		ns = []int{64, 256, 1024}
		trials = 3
	}
	pts, err := SeparationData(ns, trials, 6006)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "cycles C_n (diam = n/2); uniform-IS sampling needs Ω(diam) rounds for Δ ≥ 6")
	fmt.Fprintln(w, "(Theorem 1.3 via the H^G reduction of E8), while:")
	fmt.Fprintln(w, "  n        Luby MIS rounds   diam     sampling LB scale (0.49·diam)")
	var xs, ys []float64
	for _, p := range pts {
		fmt.Fprintf(w, "  %-8d %-17.1f %-8d %d\n", p.N, p.MISRounds, p.Diam, p.SampleLB)
		xs = append(xs, float64(p.N))
		ys = append(ys, p.MISRounds)
	}
	if _, b, err := stats.LogXFit(xs, ys); err == nil {
		fmt.Fprintf(w, "  MIS log-fit: rounds ≈ a + %.2f·ln n (labeling is O(log n));\n", b)
	}
	fmt.Fprintln(w, "  the trivial labeling (∅ is an independent set) needs 0 rounds, yet sampling")
	fmt.Fprintln(w, "  scales linearly with diam — an exponential separation.")
	return nil
}
