package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"locsample/internal/chains"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

func TestRegistry(t *testing.T) {
	exps := All()
	if len(exps) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ByID("E7"); !ok {
		t.Fatal("ByID(E7) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) should fail")
	}
	if len(IDs()) != 14 {
		t.Fatal("IDs() wrong length")
	}
}

// The full quick suite is exercised one experiment at a time so failures
// localize; these are integration smoke tests over real computations.
func runQuick(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("no experiment %s", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, true); err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	out := buf.String()
	if len(out) < 50 {
		t.Fatalf("%s output suspiciously short:\n%s", id, out)
	}
	return out
}

func TestE3Quick(t *testing.T) {
	out := runQuick(t, "E3")
	if !strings.Contains(out, "coloring C4 q=3") {
		t.Fatalf("E3 output missing models:\n%s", out)
	}
}

func TestE4Quick(t *testing.T) {
	out := runQuick(t, "E4")
	if !strings.Contains(out, "ablated") {
		t.Fatalf("E4 output missing ablation:\n%s", out)
	}
}

func TestE6Quick(t *testing.T) {
	out := runQuick(t, "E6")
	if !strings.Contains(out, "0.50000") { // η for q=3 at d=1 is 1/2
		t.Fatalf("E6 output missing decay values:\n%s", out)
	}
}

func TestE7Quick(t *testing.T)  { runQuick(t, "E7") }
func TestE11Quick(t *testing.T) { runQuick(t, "E11") }
func TestE12Quick(t *testing.T) { runQuick(t, "E12") }

func TestE13Quick(t *testing.T) {
	out := runQuick(t, "E13")
	if !strings.Contains(out, "LocalMetropolis") {
		t.Fatalf("E13 missing chains:\n%s", out)
	}
}

func TestE14SyncAblation(t *testing.T) {
	rows, err := SyncAblationChecks()
	if err != nil {
		t.Fatal(err)
	}
	biasedSomewhere := false
	for _, r := range rows {
		if r.LubyDetBal > 1e-9 || r.LMDetBal > 1e-9 {
			t.Fatalf("%s: the paper's chains must stay reversible (%v, %v)",
				r.Model, r.LubyDetBal, r.LMDetBal)
		}
		if r.SyncBiasTV > 1e-3 {
			biasedSomewhere = true
		}
	}
	if !biasedSomewhere {
		t.Fatal("synchronous heat-bath showed no bias on any model — ablation broken")
	}
}

func TestE13CurvesDecay(t *testing.T) {
	m := mrf.Coloring(graph.Cycle(4), 4)
	curves, err := ExactTVCurves(m, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		last := c.TV[len(c.TV)-1]
		// q = 2Δ is below LocalMetropolis's proved threshold: it converges
		// (Theorem 4.1) but slowly; the others should be well mixed.
		limit := 0.05
		if c.Chain == "LocalMetropolis" {
			limit = 0.45
		}
		if last > limit {
			t.Fatalf("%s: TV after 30 rounds is %v", c.Chain, last)
		}
		if c.TV[20] > c.TV[5]+1e-9 {
			t.Fatalf("%s: TV grew from t=5 (%v) to t=20 (%v)", c.Chain, c.TV[5], c.TV[20])
		}
	}
}

func TestMixingVsNShape(t *testing.T) {
	// E1/E2 data functions: rounds grow sublinearly in n for both chains.
	pts, err := MixingVsN(chains.LubyGlauber, []int{16, 64, 256}, 5, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points %v", pts)
	}
	growth := pts[2].Rounds / math.Max(pts[0].Rounds, 1)
	if growth > 16 {
		t.Fatalf("rounds grew %vx over 16x n — not logarithmic", growth)
	}
}

func TestExactChecksThresholds(t *testing.T) {
	// The E3/E4 numbers must meet the DESIGN.md acceptance thresholds.
	e3, err := ExactLubyGlauberChecks()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range e3 {
		if c.DetailedBal > 1e-9 || c.RowErr > 1e-9 {
			t.Fatalf("%s: detBal %v rowErr %v", c.Model, c.DetailedBal, c.RowErr)
		}
		if c.MixingT25 <= 0 || c.MixingT01 < c.MixingT25 {
			t.Fatalf("%s: mixing times %d, %d", c.Model, c.MixingT25, c.MixingT01)
		}
	}
	e4, err := ExactLocalMetropolisChecks()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e4 {
		if r.FullDetBal > 1e-9 {
			t.Fatalf("%s: full chain detBal %v", r.Model, r.FullDetBal)
		}
		if r.AblatedDetBal < 1e-6 {
			t.Fatalf("%s: ablation did not break detailed balance (%v)", r.Model, r.AblatedDetBal)
		}
		if r.AblatedBiasTV < 1e-3 {
			t.Fatalf("%s: ablation bias %v too small", r.Model, r.AblatedBiasTV)
		}
	}
}

func TestCSPChecksThresholds(t *testing.T) {
	checks, err := CSPDominatingSetChecks(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if c.LGDetBal > 1e-9 || c.LMDetBal > 1e-9 {
			t.Fatalf("%s: CSP chains not reversible: %v, %v", c.Graph, c.LGDetBal, c.LMDetBal)
		}
		if c.LGLongRunTV > 0.05 || c.LMLongRunTV > 0.05 {
			t.Fatalf("%s: long-run TV too big: %v, %v", c.Graph, c.LGLongRunTV, c.LMLongRunTV)
		}
	}
}

func TestInfluenceThresholds(t *testing.T) {
	rows, err := InfluenceChecks()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OffNeighbor > 0 {
			t.Fatalf("%s: off-neighbor influence %v", r.Model, r.OffNeighbor)
		}
		if r.Bound >= 0 && r.ExactAlpha > r.Bound+1e-9 {
			t.Fatalf("%s: exact α %v exceeds bound %v", r.Model, r.ExactAlpha, r.Bound)
		}
	}
}

func TestMessageSizesConstantInN(t *testing.T) {
	rows, err := MessageSizes([]int{32, 128, 512}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].LubyMaxBytes != rows[0].LubyMaxBytes || rows[i].LMMaxBytes != rows[0].LMMaxBytes {
			t.Fatalf("message sizes vary with n: %+v", rows)
		}
	}
}

func TestGoodGadgetReportThresholds(t *testing.T) {
	rep, err := GoodGadgetReport(8, 1, 3, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThetaGamma <= 1 {
		t.Fatalf("Θ/Γ = %v, want > 1", rep.ThetaGamma)
	}
	if rep.Stats.RatioLo < 0.5 || rep.Stats.RatioHi > 1.5 {
		t.Fatalf("ratios [%v, %v]", rep.Stats.RatioLo, rep.Stats.RatioHi)
	}
}

func TestSeparationDataShape(t *testing.T) {
	pts, err := SeparationData([]int{32, 256}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	// MIS rounds grow far slower than the sampling lower-bound scale.
	if pts[1].MISRounds >= float64(pts[1].SampleLB) {
		t.Fatalf("no separation at n=256: MIS %v vs LB %d", pts[1].MISRounds, pts[1].SampleLB)
	}
}
