package experiments

import (
	"fmt"
	"io"

	"locsample/internal/chains"
	"locsample/internal/csp"
	"locsample/internal/dist"
	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

// CSPCheck is one row of E10.
type CSPCheck struct {
	Graph       string
	States      int
	LGDetBal    float64 // hypergraph LubyGlauber detailed-balance residual
	LMDetBal    float64 // CSP LocalMetropolis detailed-balance residual
	LGLongRunTV float64 // empirical long-run TV to exact uniform
	LMLongRunTV float64
}

// CSPDominatingSetChecks verifies both hypergraph chains on uniform
// dominating sets, exactly (transition matrices) and empirically (long
// runs).
func CSPDominatingSetChecks(quick bool) ([]CSPCheck, error) {
	cases := []struct {
		Name string
		G    *graph.Graph
	}{
		{"path P4", graph.Path(4)},
		{"cycle C5", graph.Cycle(5)},
	}
	samples := 40000
	if quick {
		samples = 15000
	}
	var out []CSPCheck
	for _, tc := range cases {
		c := csp.DominatingSet(tc.G)
		mu, err := exact.Enumerate(c.N, c.Q, c.Weight, 1<<20)
		if err != nil {
			return nil, err
		}
		plg, err := exact.CSPLubyGlauberMatrix(c, 1<<20)
		if err != nil {
			return nil, err
		}
		plm, err := exact.CSPLocalMetropolisMatrix(c, 1<<20)
		if err != nil {
			return nil, err
		}
		check := CSPCheck{
			Graph:    tc.Name,
			States:   len(mu.P),
			LGDetBal: plg.DetailedBalanceErr(mu.P),
			LMDetBal: plm.DetailedBalanceErr(mu.P),
		}
		// Long-run empirical distributions.
		init := make([]int, c.N)
		for i := range init {
			init[i] = 1
		}
		for _, alg := range []string{"lg", "lm"} {
			s := csp.NewSampler(c, init, 99)
			counts := make([]float64, len(mu.P))
			step := s.LubyGlauberStep
			if alg == "lm" {
				step = s.LocalMetropolisStep
			}
			for k := 0; k < 500; k++ {
				step()
			}
			for i := 0; i < samples; i++ {
				for k := 0; k < 4; k++ {
					step()
				}
				counts[exact.Index(c.Q, s.X)]++
			}
			for i := range counts {
				counts[i] /= float64(samples)
			}
			tv := exact.TV(counts, mu.P)
			if alg == "lg" {
				check.LGLongRunTV = tv
			} else {
				check.LMLongRunTV = tv
			}
		}
		out = append(out, check)
	}
	return out, nil
}

// RunE10 prints the weighted-CSP verification table.
func RunE10(w io.Writer, quick bool) error {
	header(w, "E10", "Hypergraph chains on weighted local CSPs: uniform dominating sets")
	checks, err := CSPDominatingSetChecks(quick)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  graph      states  LubyGlauber:detBal  LocalMetropolis:detBal  longRunTV(LG)  longRunTV(LM)")
	for _, c := range checks {
		fmt.Fprintf(w, "  %-10s %-7d %-19.1e %-23.1e %-14.4f %.4f\n",
			c.Graph, c.States, c.LGDetBal, c.LMDetBal, c.LGLongRunTV, c.LMLongRunTV)
	}
	fmt.Fprintln(w, "  paper (§3, §4 remarks): LubyGlauber extends via strongly independent sets of")
	fmt.Fprintln(w, "  the constraint hypergraph; LocalMetropolis via the 2^k−1-mixing filter. Both")
	fmt.Fprintln(w, "  are exactly reversible w.r.t. the CSP Gibbs distribution.")
	return nil
}

// InfluenceRow is one row of E11.
type InfluenceRow struct {
	Model       string
	ExactAlpha  float64
	Bound       float64 // coloring formula max d/(q−d), or NaN
	OffNeighbor float64 // must be 0 for MRFs
}

// InfluenceChecks computes exact influence matrices for a model suite.
func InfluenceChecks() ([]InfluenceRow, error) {
	type tc struct {
		name  string
		m     *mrf.MRF
		bound float64
	}
	g := graph.Cycle(4)
	p := graph.Path(4)
	cases := []tc{
		{"coloring C4 q=3", mrf.Coloring(g, 3), 2.0 / (3 - 2)},
		{"coloring C4 q=5", mrf.Coloring(g, 5), 2.0 / (5 - 2)},
		{"coloring C4 q=8", mrf.Coloring(g, 8), 2.0 / (8 - 2)},
		{"coloring P4 q=4", mrf.Coloring(p, 4), 2.0 / (4 - 2)},
		{"hardcore C4 λ=0.5", mrf.Hardcore(g, 0.5), -1},
		{"ising P4 β=1.5", mrf.Ising(p, 1.5, 1), -1},
	}
	var out []InfluenceRow
	for _, c := range cases {
		rho, err := exact.InfluenceMatrix(c.m, 1<<20)
		if err != nil {
			return nil, err
		}
		out = append(out, InfluenceRow{
			Model:       c.name,
			ExactAlpha:  exact.TotalInfluence(rho),
			Bound:       c.bound,
			OffNeighbor: exact.MaxOffNeighborInfluence(c.m, rho),
		})
	}
	return out, nil
}

// RunE11 prints the influence table.
func RunE11(w io.Writer, quick bool) error {
	header(w, "E11", "Dobrushin influence matrices: exact α vs the §3.2 coloring bound")
	rows, err := InfluenceChecks()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  model               exact α   coloring bound d/(q−d)   off-neighbor ρ")
	for _, r := range rows {
		bound := "—"
		if r.Bound >= 0 {
			bound = fmt.Sprintf("%.4f", r.Bound)
		}
		fmt.Fprintf(w, "  %-19s %-9.4f %-24s %.1e\n", r.Model, r.ExactAlpha, bound, r.OffNeighbor)
	}
	fmt.Fprintln(w, "  paper: α < 1 (Dobrushin) drives Theorem 3.2; the coloring formula upper-bounds")
	fmt.Fprintln(w, "  the exact influence; ρ_{i,j} = 0 for non-adjacent i,j (conditional independence).")
	return nil
}

// MessageRow is one row of E12.
type MessageRow struct {
	N              int
	LubyMaxBytes   int
	LMMaxBytes     int
	LubyTotalBytes int64
	LMTotalBytes   int64
}

// MessageSizes measures protocol message sizes across network sizes.
func MessageSizes(ns []int, rounds int, seed uint64) ([]MessageRow, error) {
	var out []MessageRow
	for _, n := range ns {
		g := graph.Cycle(n)
		m := mrf.Coloring(g, 5)
		init, err := chains.GreedyFeasible(m)
		if err != nil {
			return nil, err
		}
		_, st1, err := dist.RunLubyGlauber(m, init, seed, rounds)
		if err != nil {
			return nil, err
		}
		_, st2, err := dist.RunLocalMetropolis(m, init, seed, rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, MessageRow{
			N:              n,
			LubyMaxBytes:   st1.MaxMessageBytes,
			LMMaxBytes:     st2.MaxMessageBytes,
			LubyTotalBytes: st1.Bytes,
			LMTotalBytes:   st2.Bytes,
		})
	}
	return out, nil
}

// RunE12 prints the message-size table.
func RunE12(w io.Writer, quick bool) error {
	header(w, "E12", "Neither algorithm abuses the LOCAL model: O(log n)-bit messages")
	ns := []int{64, 256, 1024, 4096}
	if quick {
		ns = []int{64, 256, 1024}
	}
	rows, err := MessageSizes(ns, 10, 7007)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  n        LubyGlauber max msg  LocalMetropolis max msg  (bytes; 10 rounds)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d %-20d %-23d\n", r.N, r.LubyMaxBytes, r.LMMaxBytes)
	}
	fmt.Fprintln(w, "  paper: messages are O(log n) bits for q = poly(n). Here: 6 bytes (32-bit")
	fmt.Fprintln(w, "  vertex ID + 16-bit spin in round 0, then 16-bit spins) resp. 4 bytes")
	fmt.Fprintln(w, "  (two 16-bit spins), constant in n.")
	return nil
}
