package experiments

import (
	"fmt"
	"io"

	"locsample/internal/chains"
	"locsample/internal/coupling"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
	"locsample/internal/stats"
)

// MixingPoint is one measurement of the coalescence-based mixing proxy.
type MixingPoint struct {
	N, Delta, Q int
	Rounds      float64 // median coalescence rounds
}

// MixingVsN measures coalescence rounds of a chain on cycles of growing
// size with q colors per vertex degree ratio fixed.
func MixingVsN(alg chains.Algorithm, ns []int, q int, trials int, seed uint64) ([]MixingPoint, error) {
	var out []MixingPoint
	for _, n := range ns {
		g := graph.Cycle(n)
		m := mrf.Coloring(g, q)
		med, _ := coupling.MixingEstimate(m, alg, trials, 200000, seed+uint64(n))
		if med < 0 {
			return nil, fmt.Errorf("experiments: no coalescence at n=%d", n)
		}
		out = append(out, MixingPoint{N: n, Delta: 2, Q: q, Rounds: float64(med)})
	}
	return out, nil
}

// MixingVsDelta measures coalescence rounds on random regular graphs of
// fixed size and growing degree, with q = ceil(ratio·Δ) colors.
func MixingVsDelta(alg chains.Algorithm, n int, deltas []int, ratio float64, trials int, seed uint64) ([]MixingPoint, error) {
	var out []MixingPoint
	for _, d := range deltas {
		g, err := graph.RandomRegular(n, d, rng.New(seed+uint64(d)))
		if err != nil {
			return nil, err
		}
		q := int(ratio*float64(d)) + 1
		m := mrf.Coloring(g, q)
		med, _ := coupling.MixingEstimate(m, alg, trials, 500000, seed+uint64(d)*31)
		if med < 0 {
			return nil, fmt.Errorf("experiments: no coalescence at Δ=%d", d)
		}
		out = append(out, MixingPoint{N: n, Delta: d, Q: q, Rounds: float64(med)})
	}
	return out, nil
}

// RunE1 prints the LubyGlauber scaling tables: rounds vs n (log fit) and
// rounds vs Δ (linear fit). Paper claim: τ(ε) = O(Δ/(1−α)·log(n/ε)).
func RunE1(w io.Writer, quick bool) error {
	header(w, "E1", "LubyGlauber mixing: rounds vs n and vs Δ (q = 2.5Δ)")
	ns := []int{32, 64, 128, 256, 512}
	deltas := []int{3, 5, 7, 9, 12}
	trials := 9
	if quick {
		ns = []int{32, 64, 128}
		deltas = []int{3, 5, 7}
		trials = 5
	}
	ptsN, err := MixingVsN(chains.LubyGlauber, ns, 5, trials, 1001)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "cycles, q=5 (q=2.5Δ):")
	fmt.Fprintln(w, "  n      rounds(median)")
	var xs, ys []float64
	for _, p := range ptsN {
		fmt.Fprintf(w, "  %-6d %.0f\n", p.N, p.Rounds)
		xs = append(xs, float64(p.N))
		ys = append(ys, p.Rounds)
	}
	if _, b, err := stats.LogXFit(xs, ys); err == nil {
		fmt.Fprintf(w, "  log-fit: rounds ≈ a + %.1f·ln n   (paper: Θ(Δ log n))\n", b)
	}

	n := 48
	if !quick {
		n = 96
	}
	ptsD, err := MixingVsDelta(chains.LubyGlauber, n, deltas, 2.5, trials, 2002)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "random %d-vertex regular graphs, q = ⌈2.5Δ⌉:\n", n)
	fmt.Fprintln(w, "  Δ      q    rounds(median)")
	xs, ys = nil, nil
	for _, p := range ptsD {
		fmt.Fprintf(w, "  %-6d %-4d %.0f\n", p.Delta, p.Q, p.Rounds)
		xs = append(xs, float64(p.Delta))
		ys = append(ys, p.Rounds)
	}
	if _, b, err := stats.LinFit(xs, ys); err == nil {
		fmt.Fprintf(w, "  linear fit: rounds ≈ a + %.1f·Δ   (paper: linear in Δ)\n", b)
	}
	return nil
}

// RunE2 prints the LocalMetropolis scaling tables plus the head-to-head
// with LubyGlauber. Paper claim: τ(ε) = O(log(n/ε)) independent of Δ.
func RunE2(w io.Writer, quick bool) error {
	header(w, "E2", "LocalMetropolis mixing: rounds vs n and vs Δ (q = 3.6Δ)")
	ns := []int{32, 64, 128, 256, 512}
	deltas := []int{3, 5, 7, 9, 12}
	trials := 9
	if quick {
		ns = []int{32, 64, 128}
		deltas = []int{3, 5, 7}
		trials = 5
	}
	ptsN, err := MixingVsN(chains.LocalMetropolis, ns, 8, trials, 3003)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "cycles, q=8 (q=4Δ):")
	fmt.Fprintln(w, "  n      rounds(median)")
	var xs, ys []float64
	for _, p := range ptsN {
		fmt.Fprintf(w, "  %-6d %.0f\n", p.N, p.Rounds)
		xs = append(xs, float64(p.N))
		ys = append(ys, p.Rounds)
	}
	if _, b, err := stats.LogXFit(xs, ys); err == nil {
		fmt.Fprintf(w, "  log-fit: rounds ≈ a + %.1f·ln n   (paper: Θ(log n))\n", b)
	}

	n := 48
	if !quick {
		n = 96
	}
	ptsD, err := MixingVsDelta(chains.LocalMetropolis, n, deltas, 3.6, trials, 4004)
	if err != nil {
		return err
	}
	lubyD, err := MixingVsDelta(chains.LubyGlauber, n, deltas, 3.6, trials, 4004)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "random %d-vertex regular graphs, q = ⌈3.6Δ⌉ (head-to-head):\n", n)
	fmt.Fprintln(w, "  Δ      q    LocalMetropolis  LubyGlauber")
	var xsD, ysD []float64
	for i, p := range ptsD {
		fmt.Fprintf(w, "  %-6d %-4d %-16.0f %.0f\n", p.Delta, p.Q, p.Rounds, lubyD[i].Rounds)
		xsD = append(xsD, float64(p.Delta))
		ysD = append(ysD, p.Rounds)
	}
	if _, b, err := stats.LinFit(xsD, ysD); err == nil {
		fmt.Fprintf(w, "  LocalMetropolis slope vs Δ: %.2f   (paper: ≈ 0, Δ-free)\n", b)
	}
	return nil
}
