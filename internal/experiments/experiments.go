// Package experiments implements the E1–E12 reproduction suite mapped out
// in DESIGN.md: one executable experiment per theorem / analysis of the
// paper. Each experiment exposes a data-producing function (used by the
// benchmarks in bench_test.go and by unit tests) and a Run function that
// prints the experiment's table (used by cmd/lsexp). EXPERIMENTS.md records
// paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one entry of the suite.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, quick bool) error
}

// All returns the registered experiments in order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "LubyGlauber mixing scales as O(Δ log n) (Thm 3.2 / 1.1)", RunE1},
		{"E2", "LocalMetropolis mixing is O(log n), Δ-free (Thm 4.2 / 1.2)", RunE2},
		{"E3", "LubyGlauber is reversible w.r.t. µ — exact (Prop 3.1)", RunE3},
		{"E4", "LocalMetropolis reversibility + rule-3 ablation — exact (Thm 4.1)", RunE4},
		{"E5", "Path-coupling contraction thresholds (§4.2, Lemmas 4.4/4.5)", RunE5},
		{"E6", "Ω(log n) lower bound on paths (Thm 5.1)", RunE6},
		{"E7", "Random bipartite gadget properties (Prop 5.3)", RunE7},
		{"E8", "Lifted cycle: max-cut phases and Ω(diam) (Thms 5.4, 5.2)", RunE8},
		{"E9", "Separation: Luby MIS O(log n) vs sampling Ω(diam) (§1.1)", RunE9},
		{"E10", "Weighted local CSPs: dominating sets (§3/§4 remarks)", RunE10},
		{"E11", "Dobrushin influence: exact vs formula (Defs 3.1/3.2)", RunE11},
		{"E12", "Message sizes are O(log n) bits (§1.1)", RunE12},
		{"E13", "Exact TV-decay curves for all five chains (Thms 3.2/4.2)", RunE13},
		{"E14", "Ablation: naive synchronous heat-bath is biased (§1.1 question)", RunE14},
	}
	return exps
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s — %s ===\n", id, title)
}
