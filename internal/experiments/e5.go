package experiments

import (
	"fmt"
	"io"

	"locsample/internal/coupling"
	"locsample/internal/graph"
	"locsample/internal/rng"
)

// ContractionPoint is one row of the E5 sweep.
type ContractionPoint struct {
	Alpha     float64 // q/Δ
	Q         int
	Identical float64 // measured one-step ratio under the §4.2.2 coupling
	Permuted  float64 // measured one-step ratio under the §4.2.3 coupling
	Margin13  float64 // analytic LHS of (13)
	Margin26  float64 // analytic LHS of (26)
}

// ContractionSweep measures both couplings across a range of α = q/Δ on a
// random Δ-regular graph.
func ContractionSweep(n, delta int, alphas []float64, trials int, seed uint64) ([]ContractionPoint, error) {
	g, err := graph.RandomRegular(n, delta, rng.New(seed))
	if err != nil {
		return nil, err
	}
	var out []ContractionPoint
	for _, a := range alphas {
		q := int(a*float64(delta) + 0.5)
		p := ContractionPoint{
			Alpha:    a,
			Q:        q,
			Margin13: coupling.Analytic13(q, delta),
			Margin26: coupling.Analytic26(q, delta),
		}
		p.Identical = coupling.ContractionEstimate(g, q, coupling.Identical, trials, 40, seed+uint64(q))
		p.Permuted = coupling.ContractionEstimate(g, q, coupling.Permuted, trials, 40, seed+uint64(q)*3)
		out = append(out, p)
	}
	return out, nil
}

// RunE5 prints the contraction sweep table.
func RunE5(w io.Writer, quick bool) error {
	header(w, "E5", "One-step path-coupling contraction for coloring LocalMetropolis")
	n, delta, trials := 64, 6, 4000
	if quick {
		n, trials = 32, 1000
	}
	alphas := []float64{3.0, 3.2, 3.414, 3.634, 3.8, 4.0, 4.5}
	pts, err := ContractionSweep(n, delta, alphas, trials, 5005)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "random %d-vertex %d-regular graph; ratio = E[Φ']/Φ (< 1 ⇒ contraction)\n", n, delta)
	fmt.Fprintln(w, "  α=q/Δ  q    identical  permuted   margin(13)  margin(26)")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-6.3f %-4d %-10.4f %-10.4f %-11.4f %-11.4f\n",
			p.Alpha, p.Q, p.Identical, p.Permuted, p.Margin13, p.Margin26)
	}
	fmt.Fprintf(w, "  asymptotic thresholds: identical α* = %.4f (root of α=2e^{1/α}+1),\n", coupling.AlphaStar())
	fmt.Fprintf(w, "  permuted/ideal 2+√2 = %.4f (Theorem 4.2); measured ratios cross 1 accordingly.\n", coupling.AlphaIdeal())
	fmt.Fprintln(w, "  (At finite Δ the analytic margins are conservative: they can be negative")
	fmt.Fprintln(w, "  while the measured ratio on a random regular graph already contracts.)")
	return nil
}
