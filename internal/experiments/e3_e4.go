package experiments

import (
	"fmt"
	"io"

	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

// ExactCheck is the result of exact transition-matrix verification for one
// model/chain pair.
type ExactCheck struct {
	Model         string
	States        int
	RowErr        float64 // max |row sum − 1|
	DetailedBal   float64 // max detailed-balance residual
	StationaryErr float64 // ‖µP − µ‖₁
	MixingT25     int     // exact τ(0.25)
	MixingT01     int     // exact τ(0.01)
}

func e3Models() []struct {
	Name string
	M    *mrf.MRF
} {
	return []struct {
		Name string
		M    *mrf.MRF
	}{
		{"coloring C4 q=3", mrf.Coloring(graph.Cycle(4), 3)},
		{"coloring P4 q=3", mrf.Coloring(graph.Path(4), 3)},
		{"hardcore star5 λ=1.5", mrf.Hardcore(graph.Star(5), 1.5)},
		{"hardcore C4 λ=2", mrf.Hardcore(graph.Cycle(4), 2)},
		{"ising P4 β=1.8 h=0.7", mrf.Ising(graph.Path(4), 1.8, 0.7)},
		{"potts C4 q=3 β=0.6", mrf.Potts(graph.Cycle(4), 3, 0.6)},
	}
}

// ExactLubyGlauberChecks verifies Proposition 3.1 exactly on a fixed model
// suite.
func ExactLubyGlauberChecks() ([]ExactCheck, error) {
	var out []ExactCheck
	for _, tc := range e3Models() {
		mu, err := exact.Enumerate(tc.M.G.N(), tc.M.Q, tc.M.Weight, 1<<20)
		if err != nil {
			return nil, err
		}
		P, err := exact.LubyGlauberMatrix(tc.M, 1<<20)
		if err != nil {
			return nil, err
		}
		t25, _ := P.MixingTime(mu.P, 0.25, 5000)
		t01, _ := P.MixingTime(mu.P, 0.01, 5000)
		out = append(out, ExactCheck{
			Model:         tc.Name,
			States:        len(mu.P),
			RowErr:        P.RowStochasticErr(),
			DetailedBal:   P.DetailedBalanceErr(mu.P),
			StationaryErr: P.StationaryErr(mu.P),
			MixingT25:     t25,
			MixingT01:     t01,
		})
	}
	return out, nil
}

// RunE3 prints the exact LubyGlauber verification table.
func RunE3(w io.Writer, quick bool) error {
	header(w, "E3", "Exact verification of Prop 3.1: LubyGlauber reversible w.r.t. µ")
	checks, err := ExactLubyGlauberChecks()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  model                    states  rowErr    detBalErr  statErr    τ(.25) τ(.01)")
	for _, c := range checks {
		fmt.Fprintf(w, "  %-24s %-7d %-9.1e %-10.1e %-10.1e %-6d %d\n",
			c.Model, c.States, c.RowErr, c.DetailedBal, c.StationaryErr, c.MixingT25, c.MixingT01)
	}
	fmt.Fprintln(w, "  paper: detailed balance holds exactly; d_TV(µ_LG, µ) → 0 as T → ∞")
	return nil
}

// E4Result reports the rule-3 ablation numbers for one model.
type E4Result struct {
	Model string
	// Full chain (Algorithm 2 as published).
	FullDetBal, FullStatErr float64
	// Ablated chain (third factor dropped).
	AblatedDetBal float64
	// TV between the ablated chain's stationary distribution and µ.
	AblatedBiasTV float64
}

// ExactLocalMetropolisChecks verifies Theorem 4.1 exactly and quantifies
// the rule-3 ablation bias.
func ExactLocalMetropolisChecks() ([]E4Result, error) {
	models := []struct {
		Name string
		M    *mrf.MRF
	}{
		{"coloring P3 q=4", mrf.Coloring(graph.Path(3), 4)},
		{"coloring C4 q=4", mrf.Coloring(graph.Cycle(4), 4)},
		{"hardcore P4 λ=2", mrf.Hardcore(graph.Path(4), 2)},
		{"ising C4 β=1.6", mrf.Ising(graph.Cycle(4), 1.6, 1)},
	}
	var out []E4Result
	for _, tc := range models {
		mu, err := exact.Enumerate(tc.M.G.N(), tc.M.Q, tc.M.Weight, 1<<20)
		if err != nil {
			return nil, err
		}
		full, err := exact.LocalMetropolisMatrix(tc.M, false, 1<<20)
		if err != nil {
			return nil, err
		}
		ablated, err := exact.LocalMetropolisMatrix(tc.M, true, 1<<20)
		if err != nil {
			return nil, err
		}
		biased := ablated.Stationary(200000, 1e-14)
		out = append(out, E4Result{
			Model:         tc.Name,
			FullDetBal:    full.DetailedBalanceErr(mu.P),
			FullStatErr:   full.StationaryErr(mu.P),
			AblatedDetBal: ablated.DetailedBalanceErr(mu.P),
			AblatedBiasTV: exact.TV(biased, mu.P),
		})
	}
	return out, nil
}

// RunE4 prints the exact LocalMetropolis verification and ablation table.
func RunE4(w io.Writer, quick bool) error {
	header(w, "E4", "Exact verification of Thm 4.1 + filter rule-3 ablation")
	res, err := ExactLocalMetropolisChecks()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  model              full:detBal  full:statErr  ablated:detBal  ablated:biasTV")
	for _, r := range res {
		fmt.Fprintf(w, "  %-18s %-12.1e %-13.1e %-15.2e %.4f\n",
			r.Model, r.FullDetBal, r.FullStatErr, r.AblatedDetBal, r.AblatedBiasTV)
	}
	fmt.Fprintln(w, "  paper: rule 3 \"looks redundant\" but is necessary for reversibility (§4.2);")
	fmt.Fprintln(w, "  the ablated chain is measurably biased (biasTV ≫ 0).")
	return nil
}
