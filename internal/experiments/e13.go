package experiments

import (
	"fmt"
	"io"

	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

// TVCurve is the exact distance-to-stationarity trajectory of one chain:
// d_TV(X^(t), µ) for t = 0..len(TV)-1, started from the worst initial
// point-mass state among the feasible configurations.
type TVCurve struct {
	Chain string
	TV    []float64
}

// ExactTVCurves computes d_TV(X^(t), µ) curves for all five chains on a
// small model, using exact transition matrices. Sequential chains are
// measured per sweep (n single-site steps) so all curves share the
// "one parallel round of work" time axis.
func ExactTVCurves(m *mrf.MRF, tmax int) ([]TVCurve, error) {
	mu, err := exact.Enumerate(m.G.N(), m.Q, m.Weight, 1<<20)
	if err != nil {
		return nil, err
	}
	glauber, err := exact.GlauberMatrix(m, 1<<20)
	if err != nil {
		return nil, err
	}
	// One sweep = n single-site steps.
	sweep := glauber
	for i := 1; i < m.G.N(); i++ {
		sweep = exact.Compose(sweep, glauber)
	}
	luby, err := exact.LubyGlauberMatrix(m, 1<<20)
	if err != nil {
		return nil, err
	}
	lm, err := exact.LocalMetropolisMatrix(m, false, 1<<20)
	if err != nil {
		return nil, err
	}
	scan, err := exact.SystematicScanMatrix(m, 1<<20)
	if err != nil {
		return nil, err
	}
	chrom, err := exact.ChromaticSweepMatrix(m, 1<<20)
	if err != nil {
		return nil, err
	}
	// Worst feasible start: maximize d_TV(X^(1), µ) over feasible states.
	worstStart := func(P *exact.Matrix) int {
		best, bestTV := 0, -1.0
		for s := range mu.P {
			if mu.P[s] == 0 {
				continue
			}
			tv := exact.TV(P.Row(s), mu.P)
			if tv > bestTV {
				best, bestTV = s, tv
			}
		}
		return best
	}
	curves := []struct {
		name string
		P    *exact.Matrix
	}{
		{"Glauber(sweep)", sweep},
		{"LubyGlauber", luby},
		{"LocalMetropolis", lm},
		{"SystematicScan(sweep)", scan},
		{"Chromatic(sweep)", chrom},
	}
	var out []TVCurve
	for _, c := range curves {
		start := worstStart(c.P)
		tv := make([]float64, tmax+1)
		for t := 0; t <= tmax; t++ {
			tv[t] = exact.TV(c.P.DistributionAfter(start, t), mu.P)
		}
		out = append(out, TVCurve{Chain: c.name, TV: tv})
	}
	return out, nil
}

// RunE13 prints the exact convergence curves — the "figure" form of
// Theorems 3.2 and 4.2 at verifiable scale.
func RunE13(w io.Writer, quick bool) error {
	header(w, "E13", "Exact d_TV(X_t, µ) decay curves for all five chains")
	m := mrf.Coloring(graph.Cycle(4), 4)
	tmax := 40
	if quick {
		tmax = 25
	}
	curves, err := ExactTVCurves(m, tmax)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "coloring of C4 with q=4, worst feasible start, one parallel round per column:")
	fmt.Fprintf(w, "  %-22s", "t =")
	for _, t := range []int{0, 1, 2, 4, 8, 16, tmax} {
		fmt.Fprintf(w, " %-8d", t)
	}
	fmt.Fprintln(w)
	for _, c := range curves {
		fmt.Fprintf(w, "  %-22s", c.Chain)
		for _, t := range []int{0, 1, 2, 4, 8, 16, tmax} {
			fmt.Fprintf(w, " %-8.5f", c.TV[t])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  all five curves decay geometrically to 0 (stationarity is µ in every case).")
	fmt.Fprintln(w, "  Caveats for reading the time axis: a sequential \"sweep\" is n single-site")
	fmt.Fprintln(w, "  steps and is NOT one LOCAL round — it is shown for equal-work comparison;")
	fmt.Fprintln(w, "  and q = 2Δ here is below LocalMetropolis's 2+√2 threshold, so its curve is")
	fmt.Fprintln(w, "  honest but slow — its regime (Theorem 1.2) is large Δ with q ≥ 3.42Δ, where")
	fmt.Fprintln(w, "  every sweep-based chain pays Θ(Δ) more rounds (see E2's head-to-head).")
	return nil
}
