package experiments

import (
	"fmt"
	"io"

	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

// SyncAblationRow is one row of E14.
type SyncAblationRow struct {
	Model string
	// SyncBiasTV is the TV distance between the naive fully synchronous
	// heat-bath chain's stationary distribution and µ.
	SyncBiasTV float64
	// SyncDetBal is the naive chain's detailed-balance residual w.r.t. µ.
	SyncDetBal float64
	// LubyDetBal / LMDetBal are the residuals of the paper's fixes.
	LubyDetBal float64
	LMDetBal   float64
}

// SyncAblationChecks quantifies the failure of the naive "update everyone
// simultaneously from the heat-bath marginals" dynamics, against the
// paper's two correct parallelizations.
func SyncAblationChecks() ([]SyncAblationRow, error) {
	cases := []struct {
		Name string
		M    *mrf.MRF
	}{
		{"ising C4 β=2", mrf.Ising(graph.Cycle(4), 2, 1)},
		{"hardcore P4 λ=1.5", mrf.Hardcore(graph.Path(4), 1.5)},
		{"hardcore C4 λ=1", mrf.Hardcore(graph.Cycle(4), 1)},
		{"coloring P3 q=4", mrf.Coloring(graph.Path(3), 4)},
	}
	var out []SyncAblationRow
	for _, tc := range cases {
		mu, err := exact.Enumerate(tc.M.G.N(), tc.M.Q, tc.M.Weight, 1<<20)
		if err != nil {
			return nil, err
		}
		sync, err := exact.SynchronousGlauberMatrix(tc.M, 1<<20)
		if err != nil {
			return nil, err
		}
		luby, err := exact.LubyGlauberMatrix(tc.M, 1<<20)
		if err != nil {
			return nil, err
		}
		lm, err := exact.LocalMetropolisMatrix(tc.M, false, 1<<20)
		if err != nil {
			return nil, err
		}
		pi := sync.Stationary(300000, 1e-14)
		out = append(out, SyncAblationRow{
			Model:      tc.Name,
			SyncBiasTV: exact.TV(pi, mu.P),
			SyncDetBal: sync.DetailedBalanceErr(mu.P),
			LubyDetBal: luby.DetailedBalanceErr(mu.P),
			LMDetBal:   lm.DetailedBalanceErr(mu.P),
		})
	}
	return out, nil
}

// RunE14 prints the synchronous-update ablation table.
func RunE14(w io.Writer, quick bool) error {
	header(w, "E14", "Ablation: naive simultaneous heat-bath updates are biased")
	rows, err := SyncAblationChecks()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  model               sync:biasTV  sync:detBal  LubyGlauber:detBal  LocalMetropolis:detBal")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-19s %-12.4f %-12.2e %-19.1e %.1e\n",
			r.Model, r.SyncBiasTV, r.SyncDetBal, r.LubyDetBal, r.LMDetBal)
	}
	fmt.Fprintln(w, "  the paper's motivating question (§1.1): \"is it possible to update all")
	fmt.Fprintln(w, "  variables simultaneously and still converge to the correct stationary")
	fmt.Fprintln(w, "  distribution?\" — naively, no: the synchronous heat-bath chain is biased.")
	fmt.Fprintln(w, "  LubyGlauber fixes it by scheduling an independent set; LocalMetropolis by")
	fmt.Fprintln(w, "  filtering simultaneous proposals per edge. Both are exactly reversible.")
	return nil
}
