package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newDebugServer(r *Registry, ts *TraceStore) *httptest.Server {
	mux := http.NewServeMux()
	RegisterDebug(mux, r, ts, nil)
	return httptest.NewServer(mux)
}

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Add(3)
	r.Histogram("lat_seconds", "latency", 1e-9).Observe(1_000_000)
	srv := newDebugServer(r, NewTraceStore(4))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	checkExposition(t, string(body))
	if !strings.Contains(string(body), "reqs_total 3") {
		t.Fatalf("missing counter:\n%s", body)
	}

	// POST is rejected.
	resp2, err := http.Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp2.StatusCode)
	}
}

func TestTraceEndpoints(t *testing.T) {
	ts := NewTraceStore(4)
	tr := NewTrace("draw")
	tr.Add(Span{Name: "s", DurNS: 10})
	ts.Put(tr)
	srv := newDebugServer(NewRegistry(), ts)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/trace/" + tr.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("trace body not chrome JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	for path, want := range map[string]int{
		"/debug/trace/nope": http.StatusNotFound,
		"/debug/trace/":     http.StatusBadRequest,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	resp3, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list []TraceInfo
	if err := json.NewDecoder(resp3.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if len(list) != 1 || list[0].ID != tr.ID || list[0].Spans != 1 {
		t.Fatalf("list = %+v", list)
	}
}

func TestMixingEndpoints(t *testing.T) {
	ms := NewMixingStore(2)
	ms.Put(MixingSummary{ID: "a", Chains: 4, Rounds: 10, Coalesced: true, CoalescenceRound: 7, MeasuredRounds: 8})
	ms.Put(MixingSummary{ID: "b", Chains: 2, Rounds: 5})
	ms.Put(MixingSummary{ID: "a", Chains: 4, Rounds: 12, Coalesced: true, CoalescenceRound: 9, MeasuredRounds: 10})
	ms.Put(MixingSummary{ID: "c", Chains: 3, Rounds: 3}) // evicts b (least recently updated)
	if _, ok := ms.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if s, ok := ms.Get("a"); !ok || s.MeasuredRounds != 10 || s.RecordedUnixNS == 0 {
		t.Fatalf("a = %+v, ok %v", s, ok)
	}

	mux := http.NewServeMux()
	RegisterDebug(mux, nil, nil, ms)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var sum MixingSummary
	resp, err := http.Get(srv.URL + "/debug/mixing/a")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sum.ID != "a" || sum.MeasuredRounds != 10 {
		t.Fatalf("GET mixing/a: code %d, %+v", resp.StatusCode, sum)
	}

	resp2, err := http.Get(srv.URL + "/debug/mixing/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET mixing/nope: code %d, want 404", resp2.StatusCode)
	}

	var list []MixingSummary
	resp3, err := http.Get(srv.URL + "/debug/mixing")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp3.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if len(list) != 2 || list[0].ID != "c" || list[1].ID != "a" {
		t.Fatalf("mixing list = %+v", list)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := newDebugServer(nil, nil)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}
}

func TestLogHelpers(t *testing.T) {
	// NopLogger must swallow everything without panicking.
	l := NopLogger()
	l.Info("dropped", "k", "v")
	l.With("a", 1).WithGroup("g").Error("also dropped")

	var b strings.Builder
	lg := NewLogger(&b, ParseLevel("debug"), "testcomp")
	lg.Debug("visible", "trace_id", "abc")
	out := b.String()
	if !strings.Contains(out, "component=testcomp") || !strings.Contains(out, "trace_id=abc") {
		t.Fatalf("log output missing attrs: %q", out)
	}
	b.Reset()
	lgInfo := NewLogger(&b, ParseLevel("warn"), "")
	lgInfo.Info("suppressed")
	if b.Len() != 0 {
		t.Fatalf("info leaked past warn level: %q", b.String())
	}
	if ParseLevel("bogus") != ParseLevel("info") {
		t.Fatal("unknown level must default to info")
	}
}
