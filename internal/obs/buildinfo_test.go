package obs

import (
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "testbin")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	checkExposition(t, out)
	if !strings.Contains(out, "testbin_build_info{") {
		t.Fatalf("build info gauge missing:\n%s", out)
	}
	for _, label := range []string{"version=", "goversion=", "gomaxprocs="} {
		if !strings.Contains(out, label) {
			t.Fatalf("build info gauge missing %s label:\n%s", label, out)
		}
	}
	if !strings.Contains(out, "} 1") {
		t.Fatalf("build info gauge not fixed at 1:\n%s", out)
	}
}
