package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strings"
)

// MetricsHandler serves the registry in Prometheus text exposition
// format. Safe with a nil registry (empty body).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WritePrometheus(w)
	})
}

// TraceHandler serves GET /debug/trace/{id} (Chrome trace-event JSON)
// from a store. The handler expects to be mounted at prefix
// "/debug/trace/" and treats the remainder of the path as the ID.
func TraceHandler(ts *TraceStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id := strings.TrimPrefix(req.URL.Path, "/debug/trace/")
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, "trace id required", http.StatusBadRequest)
			return
		}
		t := ts.Get(id)
		if t == nil {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChrome(w)
	})
}

// TraceListHandler serves GET /debug/traces as a JSON listing of the
// stored traces, newest first.
func TraceListHandler(ts *TraceStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		list := ts.List()
		if list == nil {
			list = []TraceInfo{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(list)
	})
}

// RegisterDebug mounts the standard debug surface on a mux: /metrics,
// /debug/trace/{id}, /debug/traces, /debug/mixing[/{id}], and the
// net/http/pprof handlers under /debug/pprof/. Registry and stores may
// be nil (the endpoints then serve empty data). This is the mux
// lsharded's -debug-addr and lserved's built-in server both use, so the
// two tiers expose the same shape.
func RegisterDebug(mux *http.ServeMux, r *Registry, ts *TraceStore, ms *MixingStore) {
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/debug/trace/", TraceHandler(ts))
	mux.Handle("/debug/traces", TraceListHandler(ts))
	mux.Handle("/debug/mixing/", MixingHandler(ms))
	mux.Handle("/debug/mixing", MixingListHandler(ms))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
