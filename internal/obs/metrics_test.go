package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Get-or-create returns the same instance.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("counter not deduped")
	}
	if r.Gauge("depth", "") != g {
		t.Fatal("gauge not deduped")
	}
	// Labeled series are distinct.
	a := r.Counter("errs_total", "errors", "stage", "dial")
	b := r.Counter("errs_total", "errors", "stage", "run")
	if a == b {
		t.Fatal("labeled series collided")
	}
	if a != r.Counter("errs_total", "errors", "stage", "dial") {
		t.Fatal("labeled series not deduped")
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", 1)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram stats must be zero")
	}
	var tr *Trace
	tr.Add(Span{Name: "x"})
	if tr.Now() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace must be inert")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry exposition: %v", err)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{scale: 1}
	// 1000 observations of value i → near-uniform over [0,1000).
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 999*1000/2 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if m := h.Mean(); math.Abs(m-499.5) > 1e-9 {
		t.Fatalf("mean = %g", m)
	}
	// Log2 buckets bound relative error by 2x.
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 500}, {0.95, 950}, {0.99, 990},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Fatalf("q%.2f = %g, want within 2x of %g", tc.q, got, tc.want)
		}
	}
	if q := h.Quantile(0); q < 0 {
		t.Fatalf("q0 = %g", q)
	}
	// Negative values clamp to the zero bucket.
	h2 := &Histogram{scale: 1}
	h2.Observe(-5)
	if h2.Count() != 1 || h2.Sum() != 0 {
		t.Fatalf("negative observe: count=%d sum=%d", h2.Count(), h2.Sum())
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := &Histogram{scale: 1}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestRegistryPanicsOnBadUse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	mustPanic("bad metric name", func() { r.Counter("1bad", "") })
	mustPanic("bad label name", func() { r.Counter("ok", "", "1bad", "v") })
	mustPanic("odd labels", func() { r.Counter("ok", "", "only_key") })
	r.Counter("dual", "")
	mustPanic("kind conflict", func() { r.Gauge("dual", "") })
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", "k", `a"b\c`+"\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{k="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
}

// expositionLine matches a Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.eE+]+|\+Inf|-Inf|NaN)$`)

// checkExposition validates Prometheus text-format well-formedness:
// every line is a comment or a grammar-conforming sample, every sample
// belongs to a # TYPE'd family, histogram buckets are cumulative with
// a trailing +Inf that equals _count. Used here and by the service
// /metrics test.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{} // family → type
	var bucketPrev int64
	var bucketFam string
	sawInf := map[string]bool{}
	counts := map[string]int64{}
	infs := map[string]int64{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[3])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		name, labels, val := m[1], m[2], m[3]
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := typed[fam]; !ok {
			t.Fatalf("line %d: sample %q has no # TYPE", ln+1, name)
		}
		if typed[fam] == "histogram" && strings.HasSuffix(name, "_bucket") {
			series := fam + stripLe(labels)
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", ln+1, val, err)
			}
			if series != bucketFam {
				bucketFam, bucketPrev = series, 0
			}
			if v < bucketPrev {
				t.Fatalf("line %d: non-cumulative bucket %d < %d", ln+1, v, bucketPrev)
			}
			bucketPrev = v
			if strings.Contains(labels, `le="+Inf"`) {
				sawInf[series] = true
				infs[series] = v
			}
		}
		if typed[fam] == "histogram" && strings.HasSuffix(name, "_count") {
			v, _ := strconv.ParseInt(val, 10, 64)
			counts[fam+labels] = v
		}
	}
	for series := range counts {
		if !sawInf[series] {
			t.Fatalf("histogram series %q missing le=+Inf bucket", series)
		}
		if infs[series] != counts[series] {
			t.Fatalf("histogram %q: +Inf bucket %d != count %d", series, infs[series], counts[series])
		}
	}
}

// stripLe removes the le label from a rendered label set so bucket
// lines group under their series.
func stripLe(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var keep []string
	for _, part := range splitLabels(inner) {
		if !strings.HasPrefix(part, `le="`) {
			keep = append(keep, part)
		}
	}
	if len(keep) == 0 {
		return ""
	}
	return "{" + strings.Join(keep, ",") + "}"
}

// splitLabels splits k="v" pairs on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestPrometheusExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("draws_total", "total draws").Add(12)
	r.Counter("errs_total", "errors by stage", "stage", "dial").Add(2)
	r.Counter("errs_total", "errors by stage", "stage", "run").Add(1)
	r.Gauge("workers_up", "live workers", "addr", "127.0.0.1:9").Set(1)
	h := r.Histogram("latency_seconds", "draw latency", 1e-9)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1_000_000) // 1..100ms in ns
	}
	r.Histogram("empty_seconds", "never observed", 1e-9)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	checkExposition(t, body)
	for _, want := range []string{
		"# TYPE draws_total counter",
		"# TYPE workers_up gauge",
		"# TYPE latency_seconds histogram",
		"draws_total 12",
		`errs_total{stage="dial"} 2`,
		`workers_up{addr="127.0.0.1:9"} 1`,
		"latency_seconds_count 100",
		`latency_seconds_bucket{le="+Inf"} 100`,
		`empty_seconds_bucket{le="+Inf"} 0`,
		"empty_seconds_count 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// Histogram sum is scaled: sum of 1..100 ms = 5.05 s.
	if !strings.Contains(body, "latency_seconds_sum 5.05") {
		t.Fatalf("exposition missing scaled sum:\n%s", body)
	}
}

func TestMetricsConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "", 1).Observe(int64(i))
				r.Counter("lbl_total", "", "g", strconv.Itoa(g%2)).Inc()
			}
		}(g)
	}
	// Render concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", "", 1).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, b.String())
}

func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", 1)
	rec := NewRoundRecorder(2, 64)
	rm := &RoundMetrics{ComputeNS: h, BarrierNS: h, Flips: c, Rounds: c}
	tee := &TeeRounds{A: rec, B: rm}
	round := 0
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(int64(round))
		h.Observe(int64(round) * 17)
		rec.RoundDone(0, round, 100, 20, 3)
		rm.RoundDone(1, round, 100, 20, 3)
		tee.RoundDone(0, round, 100, 20, 3)
		round++
	}); n != 0 {
		t.Fatalf("hot path allocates %v allocs/op, want 0", n)
	}
}
