package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"strings"
)

// discardHandler is a slog.Handler that drops everything. (The stdlib
// gained slog.DiscardHandler only in Go 1.24; this module targets 1.21.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// NopLogger returns a logger that discards all records — the default
// wherever a *slog.Logger is optional, so call sites never nil-check.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// ParseLevel maps a -log-level flag value to a slog.Level; unknown
// values (and "") default to info.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds a text-format slog.Logger at the given level writing
// to w (stderr when nil). The component attr tags every record with the
// emitting tier (lserved, lsharded, coordinator).
func NewLogger(w io.Writer, level slog.Level, component string) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l
}
