package obs

import (
	"runtime"
	"runtime/debug"
	"strconv"
)

// RegisterBuildInfo publishes the standard <name>_build_info gauge: a
// constant-1 series whose labels carry the binary's module version, the
// Go toolchain it was built with, and the GOMAXPROCS it runs under. The
// gauge exists so dashboards can join runtime series against deploy
// metadata (and spot underprovisioned hosts) without shelling into the
// box. GOMAXPROCS is sampled once at registration — it is a process
// fact, not a time series.
func RegisterBuildInfo(r *Registry, name string) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	r.Gauge(name+"_build_info",
		"build and runtime metadata for the "+name+" binary (value fixed at 1)",
		"version", version,
		"goversion", runtime.Version(),
		"gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0)),
	).Set(1)
}
