package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDFormat(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q: want 16 hex chars", id)
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("trace id %q: non-hex char %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestSpanArgsFixedCapacity(t *testing.T) {
	var s Span
	for i := 0; i < maxSpanArgs+3; i++ {
		s.SetArg(strings.Repeat("k", i+1), int64(i))
	}
	n := 0
	for _, a := range s.Args {
		if a.Key != "" {
			n++
		}
	}
	if n != maxSpanArgs {
		t.Fatalf("kept %d args, want %d", n, maxSpanArgs)
	}
}

func TestTraceChromeExport(t *testing.T) {
	tr := NewTrace("draw")
	tr.SetProcessName(1, "worker 0")
	s := Span{Name: "round.compute", PID: 1, TID: 2, StartNS: 1000, DurNS: 500}
	s.SetArg("round", 3)
	s.SetArg("flips", 7)
	tr.Add(s)
	tr.Add(Span{Name: "draw", PID: 0, TID: 0, StartNS: 0, DurNS: 2000})

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, b.String())
	}
	if out.Metadata["trace_id"] != tr.ID {
		t.Fatalf("metadata trace_id = %v, want %s", out.Metadata["trace_id"], tr.ID)
	}
	var metaNames []string
	var sawCompute bool
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "M":
			args := ev["args"].(map[string]any)
			metaNames = append(metaNames, args["name"].(string))
		case "X":
			if ev["name"] == "round.compute" {
				sawCompute = true
				if ev["ts"].(float64) != 1.0 { // 1000ns = 1µs
					t.Fatalf("ts = %v µs, want 1", ev["ts"])
				}
				if ev["dur"].(float64) != 0.5 {
					t.Fatalf("dur = %v µs, want 0.5", ev["dur"])
				}
				args := ev["args"].(map[string]any)
				if args["round"].(float64) != 3 || args["flips"].(float64) != 7 {
					t.Fatalf("args = %v", args)
				}
			}
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if !sawCompute {
		t.Fatal("round.compute span missing from export")
	}
	if len(metaNames) != 2 || metaNames[0] != "coordinator" || metaNames[1] != "worker 0" {
		t.Fatalf("process names = %v", metaNames)
	}
}

func TestTraceStoreEviction(t *testing.T) {
	ts := NewTraceStore(2)
	a, b, c := NewTrace("a"), NewTrace("b"), NewTrace("c")
	ts.Put(a)
	ts.Put(b)
	ts.Put(c)
	if ts.Get(a.ID) != nil {
		t.Fatal("oldest trace not evicted")
	}
	if ts.Get(b.ID) != b || ts.Get(c.ID) != c {
		t.Fatal("recent traces lost")
	}
	list := ts.List()
	if len(list) != 2 || list[0].ID != c.ID || list[1].ID != b.ID {
		t.Fatalf("list = %+v, want [c b]", list)
	}
	// Re-putting an existing ID must not duplicate.
	ts.Put(c)
	if got := len(ts.List()); got != 2 {
		t.Fatalf("after re-put: %d traces, want 2", got)
	}
}

func TestTraceStoreConcurrency(t *testing.T) {
	ts := NewTraceStore(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr := NewTrace("x")
				tr.Add(Span{Name: "s"})
				ts.Put(tr)
				ts.Get(tr.ID)
				ts.List()
			}
		}()
	}
	wg.Wait()
	if got := len(ts.List()); got != 8 {
		t.Fatalf("store holds %d traces, want 8", got)
	}
}

func TestRoundRecorderRecordsAndFlushes(t *testing.T) {
	rec := NewRoundRecorder(2, 3)
	base := time.Now().UnixNano()
	for round := 0; round < 3; round++ {
		rec.RoundDone(0, round, 1000, 200, 5)
		rec.RoundDone(1, round, 900, 100, -1) // flips not counted
	}
	rec.RoundDone(5, 0, 1, 1, 1) // out of range: ignored
	compute, barrier, flips, end := rec.ShardRounds(0)
	if len(compute) != 3 || len(barrier) != 3 || len(flips) != 3 || len(end) != 3 {
		t.Fatalf("shard 0 lengths = %d/%d/%d/%d", len(compute), len(barrier), len(flips), len(end))
	}
	if compute[1] != 1000 || barrier[1] != 200 || flips[1] != 5 {
		t.Fatalf("shard 0 round 1 = %d/%d/%d", compute[1], barrier[1], flips[1])
	}
	if end[0] < base {
		t.Fatalf("end time %d before test start %d", end[0], base)
	}
	cNS, bNS, f, n := rec.ShardTotals(1)
	if cNS != 2700 || bNS != 300 || f != 0 || n != 3 {
		t.Fatalf("shard 1 totals = %d/%d/%d/%d", cNS, bNS, f, n)
	}

	tr := NewTrace("draw")
	rec.FlushTo(tr, 1)
	spans := tr.Spans()
	// Per shard: 3 compute + 3 barrier + 1 summary = 7 → 14 total.
	if len(spans) != 14 {
		t.Fatalf("flushed %d spans, want 14", len(spans))
	}
	var summaries int
	for _, s := range spans {
		if s.PID != 1 {
			t.Fatalf("span pid = %d, want 1", s.PID)
		}
		if s.Name == "shard" {
			summaries++
		}
		if s.Name == "round.barrier" && s.DurNS <= 0 {
			t.Fatalf("barrier span with dur %d", s.DurNS)
		}
	}
	if summaries != 2 {
		t.Fatalf("%d shard summaries, want 2", summaries)
	}
}

func TestRoundRecorderOverflowKeepsTotals(t *testing.T) {
	rec := NewRoundRecorder(1, 2)
	for round := 0; round < 10; round++ {
		rec.RoundDone(0, round, 10, 1, 1)
	}
	compute, _, _, _ := rec.ShardRounds(0)
	if len(compute) != 2 {
		t.Fatalf("kept %d rounds, want 2", len(compute))
	}
	cNS, bNS, f, n := rec.ShardTotals(0)
	if cNS != 100 || bNS != 10 || f != 10 || n != 10 {
		t.Fatalf("totals = %d/%d/%d/%d, want 100/10/10/10", cNS, bNS, f, n)
	}
}

func TestRoundRecorderConcurrentShards(t *testing.T) {
	const shards, rounds = 8, 200
	rec := NewRoundRecorder(shards, rounds)
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				rec.RoundDone(sh, round, int64(100+sh), int64(sh), sh)
			}
		}(sh)
	}
	wg.Wait()
	for sh := 0; sh < shards; sh++ {
		cNS, _, _, n := rec.ShardTotals(sh)
		if n != rounds || cNS != int64(rounds*(100+sh)) {
			t.Fatalf("shard %d: rounds=%d compute=%d", sh, n, cNS)
		}
	}
}

func TestAddShardRoundsCrossProcessShape(t *testing.T) {
	// Simulates the coordinator merging series shipped from a worker:
	// absolute end stamps against the coordinator's trace origin.
	tr := NewTrace("draw")
	origin := tr.StartNS()
	end := []int64{origin + 2_000, origin + 4_000}
	compute := []int64{1_500, 1_600}
	barrier := []int64{300, 200}
	flips := []int64{4, 6}
	AddShardRounds(tr, 2, 1, compute, barrier, flips, end)
	spans := tr.Spans()
	if len(spans) != 5 { // 2 compute + 2 barrier + summary
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	for _, s := range spans {
		if s.PID != 2 || s.TID != 1 {
			t.Fatalf("span placed at pid=%d tid=%d, want 2/1", s.PID, s.TID)
		}
	}
	// First compute span starts at end - barrier - compute.
	if spans[0].Name != "round.compute" || spans[0].StartNS != 2_000-300-1_500 {
		t.Fatalf("first span = %+v", spans[0])
	}
	// Mismatched series lengths are clipped, not panicked on.
	tr2 := NewTrace("draw")
	AddShardRounds(tr2, 0, 0, compute[:1], barrier, flips, end)
	if n := len(tr2.Spans()); n != 3 {
		t.Fatalf("clipped merge produced %d spans, want 3", n)
	}
	// Empty series add nothing.
	AddShardRounds(tr2, 0, 0, nil, nil, nil, nil)
	if n := len(tr2.Spans()); n != 3 {
		t.Fatalf("empty merge changed span count to %d", n)
	}
}

func TestRoundMetricsObserver(t *testing.T) {
	r := NewRegistry()
	rm := &RoundMetrics{
		ComputeNS: r.Histogram("compute_seconds", "", 1e-9),
		BarrierNS: r.Histogram("barrier_seconds", "", 1e-9),
		Flips:     r.Counter("flips_total", ""),
		Rounds:    r.Counter("rounds_total", ""),
	}
	rm.RoundDone(0, 0, 1000, 50, 3)
	rm.RoundDone(1, 0, 2000, 70, -1)
	if rm.ComputeNS.Count() != 2 || rm.BarrierNS.Count() != 2 {
		t.Fatal("histograms not fed")
	}
	if rm.Flips.Value() != 3 {
		t.Fatalf("flips = %d, want 3 (uncounted rounds skipped)", rm.Flips.Value())
	}
	if rm.Rounds.Value() != 2 {
		t.Fatalf("rounds = %d", rm.Rounds.Value())
	}
	// Nil observer and nil fields are safe.
	var nilRM *RoundMetrics
	nilRM.RoundDone(0, 0, 1, 1, 1)
	(&RoundMetrics{}).RoundDone(0, 0, 1, 1, 1)
}
