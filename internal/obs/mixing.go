package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"
)

// MixingSummary is the retained result of one diagnosed draw's grand
// coupling: how many chains ran, whether they coalesced, and how the
// measured round budget compares to theory. The obs package owns the
// struct (internal/diag cannot be imported from here without a cycle
// through the engines); the serving layer fills it from a Diagnosis.
type MixingSummary struct {
	// ID is the model the diagnosed draw ran on.
	ID   string `json:"id"`
	Seed uint64 `json:"seed"`
	// Chains is the coupled-chain count (chain 0 is the draw).
	Chains int `json:"chains"`
	// Rounds is the number of rounds the coupling actually advanced.
	Rounds int `json:"rounds"`
	// MaxRounds is the worst-case budget the coupling was capped by.
	MaxRounds int `json:"maxRounds"`
	// Coalesced reports whether every companion collided with chain 0.
	Coalesced bool `json:"coalesced"`
	// CoalescenceRound is the round the last companion collided
	// (meaningful only when Coalesced).
	CoalescenceRound int `json:"coalescenceRound"`
	// MeasuredRounds is the budget the coupling certifies: coalescence
	// round + 1, or MaxRounds when the coupling never coalesced.
	MeasuredRounds int `json:"measuredRounds"`
	// TheoryRounds is the paper's worst-case budget for the workload
	// (0 when rounds were pinned and no theory budget exists).
	TheoryRounds int `json:"theoryRounds,omitempty"`
	// FinalDisagree is the Hamming disagreement at the last round (0
	// exactly when Coalesced).
	FinalDisagree int `json:"finalDisagree"`
	// RecordedUnixNS is when the summary was stored.
	RecordedUnixNS int64 `json:"recorded_unixns"`
}

// MixingStore retains the latest mixing summary per model for
// /debug/mixing/{id}, evicting least-recently-updated models beyond
// capacity. All methods are nil-safe, mirroring TraceStore.
type MixingStore struct {
	mu    sync.Mutex
	cap   int
	order []string // least-recently-updated first
	byID  map[string]MixingSummary
}

// NewMixingStore returns a store retaining summaries for up to cap
// models (cap <= 0 means a default of 128).
func NewMixingStore(cap int) *MixingStore {
	if cap <= 0 {
		cap = 128
	}
	return &MixingStore{cap: cap, byID: make(map[string]MixingSummary)}
}

// Put stores a model's latest summary, stamping the record time.
func (ms *MixingStore) Put(s MixingSummary) {
	if ms == nil {
		return
	}
	s.RecordedUnixNS = time.Now().UnixNano()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, ok := ms.byID[s.ID]; ok {
		for i, id := range ms.order {
			if id == s.ID {
				ms.order = append(ms.order[:i], ms.order[i+1:]...)
				break
			}
		}
	}
	ms.order = append(ms.order, s.ID)
	ms.byID[s.ID] = s
	for len(ms.order) > ms.cap {
		delete(ms.byID, ms.order[0])
		ms.order = ms.order[1:]
	}
}

// Get returns the stored summary for a model.
func (ms *MixingStore) Get(id string) (MixingSummary, bool) {
	if ms == nil {
		return MixingSummary{}, false
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	s, ok := ms.byID[id]
	return s, ok
}

// List returns the stored summaries, most recently updated first.
func (ms *MixingStore) List() []MixingSummary {
	if ms == nil {
		return nil
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]MixingSummary, 0, len(ms.order))
	for i := len(ms.order) - 1; i >= 0; i-- {
		out = append(out, ms.byID[ms.order[i]])
	}
	return out
}

// MixingHandler serves GET /debug/mixing/{id}: the model's latest
// diagnosed-draw summary as JSON. Expects to be mounted at prefix
// "/debug/mixing/".
func MixingHandler(ms *MixingStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id := strings.TrimPrefix(req.URL.Path, "/debug/mixing/")
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, "model id required", http.StatusBadRequest)
			return
		}
		s, ok := ms.Get(id)
		if !ok {
			http.Error(w, "no mixing summary for model", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
}

// MixingListHandler serves GET /debug/mixing as a JSON listing of all
// stored summaries, most recently updated first.
func MixingListHandler(ms *MixingStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		list := ms.List()
		if list == nil {
			list = []MixingSummary{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(list)
	})
}
