// Package obs is the observability substrate of the runtime: metrics
// (atomic counters, gauges, and fixed-bucket log-scale histograms with
// Prometheus text exposition), per-draw traces (Chrome trace-event
// export), and the round-level hooks the sampling engines call through a
// nil-checked interface.
//
// Design constraints, in priority order:
//
//   - Zero allocations on the hot path. Counter.Add, Gauge.Set,
//     Histogram.Observe, and RoundRecorder.RoundDone touch only atomics
//     and preallocated buffers, so instrumented rounds stay 0
//     allocs/round — the property the alloc gates in cluster and chains
//     pin. All allocation happens at registration/draw-setup time.
//   - Stdlib only. Exposition is the Prometheus text format (v0.0.4)
//     written by hand; traces are Chrome trace-event JSON; no client
//     library is vendored.
//   - Everything is concurrency-safe: metrics may be observed from any
//     goroutine while /metrics renders them.
//
// Histograms use base-2 log-scale buckets: value v lands in bucket
// bits.Len64(v), i.e. bucket i holds v ∈ [2^(i-1), 2^i). 65 fixed
// buckets cover the whole int64 range with ≤ 2× relative quantile error
// — plenty for latency series spanning nanoseconds to minutes, and the
// fixed layout is what makes Observe allocation-free.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bits.Len64 ranges over [0, 64].
const histBuckets = 65

// Histogram is a fixed-bucket base-2 log-scale histogram. Observe is
// lock-free and allocation-free; Quantile and the exposition walk the
// bucket array without stopping writers.
type Histogram struct {
	// scale converts raw observed units to exposition units (e.g. 1e-9
	// turns observed nanoseconds into exposed seconds). Quantile and
	// Mean report raw units; only the exposition scales.
	scale float64

	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations in raw units.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation in raw units (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) in raw units by linear
// interpolation inside the log-scale bucket holding the target rank. The
// relative error is bounded by the bucket width (≤ 2×). Returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Snapshot the buckets; concurrent Observes may tear count vs
	// buckets, so derive the total from the snapshot itself.
	var snap [histBuckets]int64
	total := int64(0)
	for i := range snap {
		snap[i] = h.buckets[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range snap {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == histBuckets-1 {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return 0
}

// bucketBounds returns bucket i's value range [lo, hi) in raw units.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1 // the zero bucket
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

// metricKind tags a registered family for the # TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family.
type series struct {
	labels string // rendered `{k="v",...}` (empty for unlabeled)
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byLbl  map[string]*series
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Get-or-create accessors (Counter, Gauge, Histogram)
// are safe for concurrent use and idempotent: the same (name, labels)
// always returns the same metric, so callers never need to coordinate
// registration. A nil *Registry is a valid sink — every accessor returns
// a typed nil metric whose methods are no-ops — which is what lets
// instrumentation default to "off" without branching at every call site.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter with the given name and label pairs
// (key1, value1, key2, value2, ...), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge with the given name and label pairs, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram with the given name and label pairs,
// creating it on first use. scale converts raw observed units to
// exposition units (pass 1e-9 to observe nanoseconds and expose seconds,
// 1 for dimensionless values); it is fixed at first creation.
func (r *Registry) Histogram(name, help string, scale float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, help, kindHistogram, labels)
	if s.h == nil {
		if scale <= 0 {
			scale = 1
		}
		s.h = &Histogram{scale: scale}
	}
	return s.h
}

// getSeries get-or-creates the series for (name, labels). A name reused
// with a different kind panics: that is a programming error the first
// /metrics render would otherwise turn into an unparseable exposition.
func (r *Registry) getSeries(name, help string, kind metricKind, labels []string) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	lbl := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLbl: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.kind, kind))
	}
	s, ok := f.byLbl[lbl]
	if !ok {
		s = &series{labels: lbl}
		f.byLbl[lbl] = s
		f.series = append(f.series, s)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	}
	return s
}

// validMetricName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels turns (k1, v1, k2, v2, ...) pairs into a canonical
// `{k1="v1",k2="v2"}` string (keys sorted, values escaped).
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// validLabelName enforces [a-zA-Z_][a-zA-Z0-9_]* (no colons in label
// names, per the exposition grammar).
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// mergeLabels appends extra pairs to a rendered label set — used by the
// histogram exposition to add `le` to the series labels.
func mergeLabels(rendered, key, val string) string {
	if rendered == "" {
		return "{" + key + `="` + val + `"}`
	}
	return rendered[:len(rendered)-1] + "," + key + `="` + val + `"}`
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families in registration order,
// each with its # HELP / # TYPE header, series sorted by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// Snapshot the family list; metric values are read outside the lock
	// (they are atomics), but the structure must not move underneath us.
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	sers := make(map[*family][]*series, len(fams))
	for _, f := range fams {
		sers[f] = append([]*series(nil), f.series...)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range sers[f] {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case kindHistogram:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets (empty
// leading/trailing buckets elided, +Inf always present), _sum, _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	var snap [histBuckets]int64
	maxUsed := -1
	for i := range snap {
		snap[i] = h.buckets[i].Load()
		if snap[i] != 0 {
			maxUsed = i
		}
	}
	cum := int64(0)
	for i := 0; i <= maxUsed; i++ {
		cum += snap[i]
		_, hi := bucketBounds(i)
		le := formatFloat((hi - 1) * h.scale)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(s.labels, "le", le), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(s.labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(float64(h.sum.Load())*h.scale))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, cum)
}

// formatFloat renders a float without exponent noise for round values.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
