package obs

import "time"

// maxRoundsKept bounds per-round retention per shard; rounds past the
// cap still accumulate into the shard totals but produce no spans.
const maxRoundsKept = 8192

// shardRow is one shard's recording lane. Each shard goroutine writes
// only its own row, so RoundDone needs no synchronization; the pad
// keeps adjacent rows off the same cache line.
type shardRow struct {
	n       int     // rounds recorded into the slices
	compute []int64 // per-round kernel time, ns
	barrier []int64 // per-round barrier/exchange wait, ns
	flips   []int64 // per-round accepted updates (-1 = not counted)
	end     []int64 // per-round end time, absolute UnixNano

	totalCompute int64 // includes rounds past maxRoundsKept
	totalBarrier int64
	totalFlips   int64
	totalRounds  int64

	_ [64]byte
}

// RoundRecorder captures per-round timing per shard with zero
// allocations and zero locks on the recording path: all slices are
// sized at construction and each shard owns its row exclusively. It
// satisfies the engines' round-observer interfaces structurally.
//
// The data is read back (ShardRounds, FlushTo) only after the run's
// goroutines have been joined — the engines' Run methods return only
// after every shard finishes, which is the happens-before edge that
// makes the unlocked reads safe.
type RoundRecorder struct {
	rows []shardRow
}

// NewRoundRecorder sizes a recorder for the given shard and round
// counts (rounds beyond maxRoundsKept only accumulate totals).
func NewRoundRecorder(shards, rounds int) *RoundRecorder {
	if shards < 1 {
		shards = 1
	}
	keep := rounds
	if keep < 0 {
		keep = 0
	}
	if keep > maxRoundsKept {
		keep = maxRoundsKept
	}
	r := &RoundRecorder{rows: make([]shardRow, shards)}
	// One backing array per series keeps rows' slices disjoint.
	for i := range r.rows {
		buf := make([]int64, 4*keep)
		r.rows[i].compute = buf[0*keep : 1*keep : 1*keep]
		r.rows[i].barrier = buf[1*keep : 2*keep : 2*keep]
		r.rows[i].flips = buf[2*keep : 3*keep : 3*keep]
		r.rows[i].end = buf[3*keep : 4*keep : 4*keep]
	}
	return r
}

// RoundDone records one finished round for a shard. Safe to call
// concurrently from different shards; allocation-free; no-op on a nil
// recorder or out-of-range shard.
func (r *RoundRecorder) RoundDone(shard, round int, computeNS, barrierNS int64, flips int) {
	if r == nil || shard < 0 || shard >= len(r.rows) {
		return
	}
	row := &r.rows[shard]
	row.totalCompute += computeNS
	row.totalBarrier += barrierNS
	if flips > 0 {
		row.totalFlips += int64(flips)
	}
	row.totalRounds++
	if row.n < len(row.compute) {
		i := row.n
		row.compute[i] = computeNS
		row.barrier[i] = barrierNS
		row.flips[i] = int64(flips)
		row.end[i] = time.Now().UnixNano()
		row.n++
	}
}

// Shards returns the shard count the recorder was sized for.
func (r *RoundRecorder) Shards() int {
	if r == nil {
		return 0
	}
	return len(r.rows)
}

// ShardRounds returns shard's recorded per-round series (compute ns,
// barrier ns, flips, absolute end UnixNano), trimmed to the rounds
// actually recorded. The slices alias the recorder's buffers: read only
// after the run has been joined, and do not mutate.
func (r *RoundRecorder) ShardRounds(shard int) (compute, barrier, flips, end []int64) {
	if r == nil || shard < 0 || shard >= len(r.rows) {
		return nil, nil, nil, nil
	}
	row := &r.rows[shard]
	n := row.n
	return row.compute[:n], row.barrier[:n], row.flips[:n], row.end[:n]
}

// ShardTotals returns shard's accumulated totals across all rounds,
// including any past the retention cap.
func (r *RoundRecorder) ShardTotals(shard int) (computeNS, barrierNS, flips, rounds int64) {
	if r == nil || shard < 0 || shard >= len(r.rows) {
		return 0, 0, 0, 0
	}
	row := &r.rows[shard]
	return row.totalCompute, row.totalBarrier, row.totalFlips, row.totalRounds
}

// FlushTo converts the recorded rounds into trace spans under the given
// pid: for every shard, a compute span and (when nonzero) a barrier
// span per round, plus a shard summary span carrying the totals.
// Allocation here is fine — it runs once, after the draw.
func (r *RoundRecorder) FlushTo(t *Trace, pid int) {
	if r == nil || t == nil {
		return
	}
	for sh := range r.rows {
		compute, barrier, flips, end := r.ShardRounds(sh)
		AddShardRounds(t, pid, sh, compute, barrier, flips, end)
	}
}

// AddShardRounds appends per-round compute/barrier spans for one shard
// to a trace from raw series (as recorded by a RoundRecorder, possibly
// in another process and shipped over the control protocol). end holds
// absolute UnixNano round-end times; span offsets are computed against
// the trace origin, so cross-process spans line up as long as the
// hosts' clocks do — good enough on loopback, approximate across hosts.
func AddShardRounds(t *Trace, pid, shard int, compute, barrier, flips, end []int64) {
	if t == nil {
		return
	}
	n := len(end)
	if len(compute) < n {
		n = len(compute)
	}
	if len(barrier) < n {
		n = len(barrier)
	}
	if n == 0 {
		return
	}
	origin := t.StartNS()
	var totalCompute, totalBarrier, totalFlips int64
	for i := 0; i < n; i++ {
		endOff := end[i] - origin
		barStart := endOff - barrier[i]
		cs := Span{
			Name: "round.compute", PID: pid, TID: shard,
			StartNS: barStart - compute[i], DurNS: compute[i],
		}
		cs.SetArg("round", int64(i))
		if i < len(flips) && flips[i] >= 0 {
			cs.SetArg("flips", flips[i])
			totalFlips += flips[i]
		}
		t.Add(cs)
		if barrier[i] > 0 {
			bs := Span{
				Name: "round.barrier", PID: pid, TID: shard,
				StartNS: barStart, DurNS: barrier[i],
			}
			bs.SetArg("round", int64(i))
			t.Add(bs)
		}
		totalCompute += compute[i]
		totalBarrier += barrier[i]
	}
	first := end[0] - origin - barrier[0] - compute[0]
	sum := Span{
		Name: "shard", PID: pid, TID: shard,
		StartNS: first, DurNS: end[n-1] - origin - first,
	}
	sum.SetArg("rounds", int64(n))
	sum.SetArg("compute_ns", totalCompute)
	sum.SetArg("barrier_ns", totalBarrier)
	sum.SetArg("flips", totalFlips)
	t.Add(sum)
}

// RoundMetrics is a metrics-only round observer: per-round compute and
// barrier times feed histograms, flips and rounds feed counters. Every
// field may be nil (that series is skipped); Observe/Add on the metric
// types are allocation-free, so this observer is safe on the hot path.
type RoundMetrics struct {
	ComputeNS *Histogram // per-round kernel time
	BarrierNS *Histogram // per-round barrier wait
	Flips     *Counter
	Rounds    *Counter
}

// RoundDone records one round into the configured series.
func (m *RoundMetrics) RoundDone(shard, round int, computeNS, barrierNS int64, flips int) {
	if m == nil {
		return
	}
	m.ComputeNS.Observe(computeNS)
	m.BarrierNS.Observe(barrierNS)
	if flips > 0 {
		m.Flips.Add(int64(flips))
	}
	m.Rounds.Inc()
}

// TeeRounds fans one round-observer callback out to two observers —
// used to trace and meter the same draw. Either field may be nil.
type TeeRounds struct {
	A interface {
		RoundDone(shard, round int, computeNS, barrierNS int64, flips int)
	}
	B interface {
		RoundDone(shard, round int, computeNS, barrierNS int64, flips int)
	}
}

// RoundDone forwards to both observers.
func (t *TeeRounds) RoundDone(shard, round int, computeNS, barrierNS int64, flips int) {
	if t == nil {
		return
	}
	if t.A != nil {
		t.A.RoundDone(shard, round, computeNS, barrierNS, flips)
	}
	if t.B != nil {
		t.B.RoundDone(shard, round, computeNS, barrierNS, flips)
	}
}
