package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanArg is one key/value attribute on a span. Args are fixed-size
// arrays on Span (not maps or variadics) so building a span never
// allocates on its own.
type SpanArg struct {
	Key string
	Val int64
}

// maxSpanArgs bounds the per-span attribute count; unused slots have an
// empty Key and are skipped at export.
const maxSpanArgs = 6

// Span is one timed region of a trace. PID/TID map onto the Chrome
// trace-event process/thread axes: the coordinator is pid 0, each
// remote worker pid 1+worker-index, and tid is the shard (or 0 for
// process-level spans).
type Span struct {
	Name    string
	PID     int
	TID     int
	StartNS int64 // offset from the trace origin
	DurNS   int64
	Args    [maxSpanArgs]SpanArg
}

// SetArg sets the first free arg slot (silently dropped when full).
func (s *Span) SetArg(key string, val int64) {
	for i := range s.Args {
		if s.Args[i].Key == "" {
			s.Args[i] = SpanArg{Key: key, Val: val}
			return
		}
	}
}

// Trace accumulates the spans of one draw. Span appends under a mutex —
// tracing is a debugging tool and traced draws run their chains
// sequentially, so this lock is uncontended in practice; the zero-alloc
// budget applies to the *disabled* path (a nil *Trace), where every
// method is a no-op.
type Trace struct {
	ID      string
	Name    string
	startNS int64 // wall-clock origin, UnixNano
	mu      sync.Mutex
	spans   []Span
	names   map[int]string // pid → process name
}

// NewTrace mints a trace with a fresh random 16-hex-digit ID.
func NewTrace(name string) *Trace {
	return &Trace{
		ID:      NewTraceID(),
		Name:    name,
		startNS: time.Now().UnixNano(),
		names:   map[int]string{0: "coordinator"},
	}
}

// NewTraceID returns a fresh random 16-hex-digit trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to the clock so tracing degrades instead of panicking.
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return fmt.Sprintf("%016x", binary.BigEndian.Uint64(b[:]))
}

// StartNS returns the trace's wall-clock origin (UnixNano). Span
// StartNS values are offsets from it.
func (t *Trace) StartNS() int64 {
	if t == nil {
		return 0
	}
	return t.startNS
}

// Now returns the current offset from the trace origin, for building
// span start times. Safe on a nil trace (returns 0).
func (t *Trace) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Now().UnixNano() - t.startNS
}

// Add appends a span. No-op on a nil trace.
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// SetProcessName labels a pid for the Chrome export (e.g. "worker 1").
func (t *Trace) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.names == nil {
		t.names = make(map[int]string)
	}
	t.names[pid] = name
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (catapult "trace event format", ph=X complete events plus M metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// WriteChrome renders the trace as Chrome trace-event JSON, loadable in
// chrome://tracing and Perfetto.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	names := make(map[int]string, len(t.names))
	for k, v := range t.names {
		names[k] = v
	}
	t.mu.Unlock()

	out := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, len(spans)+len(names)),
		Metadata: map[string]any{
			"trace_id":      t.ID,
			"trace_name":    t.Name,
			"origin_unixns": t.startNS,
		},
	}
	for pid, name := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
	}
	// Stable metadata order for golden tests.
	meta := out.TraceEvents
	for i := 0; i < len(meta); i++ {
		for j := i + 1; j < len(meta); j++ {
			if meta[j].PID < meta[i].PID {
				meta[i], meta[j] = meta[j], meta[i]
			}
		}
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.StartNS) / 1e3,
			Dur: float64(s.DurNS) / 1e3,
			PID: s.PID, TID: s.TID,
		}
		for _, a := range s.Args {
			if a.Key == "" {
				continue
			}
			if ev.Args == nil {
				ev.Args = make(map[string]any, maxSpanArgs)
			}
			ev.Args[a.Key] = a.Val
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// TraceStore retains the last Cap completed traces for /debug/trace/{id},
// evicting oldest-first.
type TraceStore struct {
	mu    sync.Mutex
	cap   int
	order []string
	byID  map[string]*Trace
}

// NewTraceStore returns a store retaining up to cap traces (cap <= 0
// means a default of 32).
func NewTraceStore(cap int) *TraceStore {
	if cap <= 0 {
		cap = 32
	}
	return &TraceStore{cap: cap, byID: make(map[string]*Trace)}
}

// Put stores a completed trace, evicting the oldest beyond capacity.
func (ts *TraceStore) Put(t *Trace) {
	if ts == nil || t == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.byID[t.ID]; !ok {
		ts.order = append(ts.order, t.ID)
	}
	ts.byID[t.ID] = t
	for len(ts.order) > ts.cap {
		delete(ts.byID, ts.order[0])
		ts.order = ts.order[1:]
	}
}

// Get returns the trace with the given ID, or nil.
func (ts *TraceStore) Get(id string) *Trace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.byID[id]
}

// TraceInfo is a listing entry for /debug/traces.
type TraceInfo struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_unixns"`
	Spans   int    `json:"spans"`
}

// List returns the stored traces, newest first.
func (ts *TraceStore) List() []TraceInfo {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceInfo, 0, len(ts.order))
	for i := len(ts.order) - 1; i >= 0; i-- {
		t := ts.byID[ts.order[i]]
		t.mu.Lock()
		n := len(t.spans)
		t.mu.Unlock()
		out = append(out, TraceInfo{ID: t.ID, Name: t.Name, StartNS: t.startNS, Spans: n})
	}
	return out
}
