package graph

import (
	"math"
	"testing"

	"locsample/internal/rng"
)

// TestSparseGnpDistribution: edge counts track E[m] = p·n(n-1)/2 within a
// few standard deviations, no self-loops or duplicate pairs appear, and
// generation is deterministic per seed.
func TestSparseGnpDistribution(t *testing.T) {
	const n, p = 600, 0.02
	mean := p * float64(n) * float64(n-1) / 2
	sd := math.Sqrt(mean * (1 - p))
	for seed := uint64(1); seed <= 3; seed++ {
		g := SparseGnp(n, p, rng.New(seed))
		m := float64(g.M())
		if math.Abs(m-mean) > 5*sd {
			t.Fatalf("seed %d: %d edges, want %.0f ± %.0f", seed, g.M(), mean, 5*sd)
		}
		seen := map[[2]int32]bool{}
		for _, e := range g.Edges() {
			if e.U == e.V {
				t.Fatalf("seed %d: self-loop at %d", seed, e.U)
			}
			key := [2]int32{e.U, e.V}
			if e.U > e.V {
				key = [2]int32{e.V, e.U}
			}
			if seen[key] {
				t.Fatalf("seed %d: duplicate edge (%d,%d)", seed, e.U, e.V)
			}
			seen[key] = true
		}
		again := SparseGnp(n, p, rng.New(seed))
		if again.M() != g.M() {
			t.Fatalf("seed %d: nondeterministic edge count", seed)
		}
		for id, e := range g.Edges() {
			if again.Edge(id) != e {
				t.Fatalf("seed %d: nondeterministic edge %d", seed, id)
			}
		}
	}
}

// TestSparseGnpEdgeCases: empty, p=0, p=1, and vanishing p degenerate
// correctly (a tiny p once overflowed the geometric skip's float-to-int
// conversion into a negative index).
func TestSparseGnpEdgeCases(t *testing.T) {
	if g := SparseGnp(0, 0.5, rng.New(1)); g.N() != 0 || g.M() != 0 {
		t.Fatal("n=0 not empty")
	}
	if g := SparseGnp(50, 0, rng.New(1)); g.M() != 0 {
		t.Fatal("p=0 produced edges")
	}
	if g := SparseGnp(20, 1, rng.New(1)); g.M() != 20*19/2 {
		t.Fatalf("p=1 produced %d edges, want %d", g.M(), 20*19/2)
	}
	for _, p := range []float64{1e-300, 1e-18} {
		g := SparseGnp(1000, p, rng.New(1))
		if g.M() != 0 {
			t.Fatalf("p=%g produced %d edges on 1000 vertices", p, g.M())
		}
	}
}
