package graph

import (
	"fmt"
	"math"

	"locsample/internal/rng"
)

// Path returns the path P_n on n vertices (n-1 edges). Theorem 5.1's
// Ω(log n) sampling lower bound lives on this family.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle C_n on n vertices (n >= 3). Even cycles are the
// base graph H of the §5.1.2 max-cut reduction.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// Grid returns the r×c grid graph (vertices numbered row-major).
func Grid(r, c int) *Graph {
	b := NewBuilder(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				b.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}

// Torus returns the r×c toroidal grid (4-regular when r, c >= 3).
func Torus(r, c int) *Graph {
	if r < 3 || c < 3 {
		panic("graph: Torus needs r, c >= 3")
	}
	b := NewBuilder(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			b.AddEdge(id(i, j), id(i, (j+1)%c))
			b.AddEdge(id(i, j), id((i+1)%r, j))
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	bld := NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(i, a+j)
		}
	}
	return bld.Build()
}

// CompleteTree returns the rooted complete d-ary tree of the given depth
// (depth 0 is a single vertex). The §4.2.1 ideal coupling is analysed on
// (d+1)-regular trees; finite complete trees are their finite stand-in.
func CompleteTree(d, depth int) *Graph {
	if d < 1 {
		panic("graph: CompleteTree needs arity >= 1")
	}
	// Count vertices: 1 + d + d^2 + ... + d^depth.
	n := 1
	pow := 1
	for i := 0; i < depth; i++ {
		pow *= d
		n += pow
	}
	b := NewBuilder(n)
	// Vertices are numbered level by level; children of v start at
	// firstChild(v) = d*v + 1 only for full d-ary indexing, which matches
	// level-order numbering of a complete d-ary tree.
	for v := 0; v < n; v++ {
		for c := 0; c < d; c++ {
			child := d*v + 1 + c
			if child >= n {
				break
			}
			b.AddEdge(v, child)
		}
	}
	return b.Build()
}

// Hypercube returns the k-dimensional hypercube Q_k on 2^k vertices.
func Hypercube(k int) *Graph {
	if k < 0 || k > 30 {
		panic("graph: Hypercube dimension out of range")
	}
	n := 1 << k
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for i := 0; i < k; i++ {
			u := v ^ (1 << i)
			if u > v {
				b.AddEdge(v, u)
			}
		}
	}
	return b.Build()
}

// Gnp returns an Erdős–Rényi G(n, p) sample. The pairwise Bernoulli sweep
// is Θ(n²): fine up to the spec codec's 4096-vertex gnp cap, hopeless at
// millions of vertices — use SparseGnp there. The two generators draw
// DIFFERENT graphs for the same seed; Gnp's sweep is frozen because the
// wire codec's "gnp" family hashes name the graphs it produces.
func Gnp(n int, p float64, r *rng.Source) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(p) {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// SparseGnp returns an Erdős–Rényi G(n, p) sample in expected
// O(n + p·n²) = O(n + E[m]) time via geometric edge skipping (Batagelj &
// Brandes, 2005): instead of flipping every pair, it jumps straight to the
// next present edge with a Geometric(p) stride over the ordered pair
// sequence. Exactly the G(n, p) distribution; built for the ≥10⁶-vertex
// workloads of the sharded runtime, where the quadratic sweep cannot run.
func SparseGnp(n int, p float64, r *rng.Source) *Graph {
	b := NewBuilder(n)
	if n < 2 || p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				b.AddEdge(i, j)
			}
		}
		return b.Build()
	}
	logq := math.Log1p(-p) // ln(1-p) < 0
	v, w := 1, -1
	for v < n {
		// Skip a Geometric(p)-distributed number of absent pairs. For
		// tiny p the skip can exceed every remaining pair (and even
		// MaxInt64, where float-to-int conversion would go negative):
		// compare in float space first and stop — the next edge lies past
		// the last pair.
		u := r.Float64()
		skip := math.Log1p(-u) / logq
		if skip > float64(n)*float64(n) {
			break
		}
		w += 1 + int(skip)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(v, w)
		}
	}
	return b.Build()
}

// RandomRegular returns a random simple d-regular graph on n vertices via
// the configuration model followed by double-edge-swap repair of self-loops
// and parallel edges (the standard practical construction; the result is
// asymptotically uniform and exactly d-regular). It requires n*d even and
// d < n.
func RandomRegular(n, d int, r *rng.Source) (*Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular(%d,%d): n*d must be even", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("graph: RandomRegular(%d,%d): need d < n", n, d)
	}
	if d == 0 {
		return NewBuilder(n).Build(), nil
	}
	const maxRestarts = 100
	for attempt := 0; attempt < maxRestarts; attempt++ {
		if g, ok := tryRegularWithRepair(n, d, r); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(%d,%d): repair failed after %d restarts", n, d, maxRestarts)
}

// tryRegularWithRepair draws one configuration-model pairing and repairs
// defects (self-loops, parallel edges) with random double-edge swaps. Each
// swap preserves all degrees; a swap is applied only if it strictly reduces
// the number of defective edges or keeps it while re-randomizing.
func tryRegularWithRepair(n, d int, r *rng.Source) (*Graph, bool) {
	stubs := make([]int, n*d)
	for i := range stubs {
		stubs[i] = i / d
	}
	r.Shuffle(stubs)
	m := len(stubs) / 2
	us := make([]int, m)
	vs := make([]int, m)
	for i := 0; i < m; i++ {
		us[i], vs[i] = stubs[2*i], stubs[2*i+1]
	}

	type pair struct{ a, b int }
	norm := func(a, b int) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	count := make(map[pair]int, m)
	defect := func(i int) bool {
		return us[i] == vs[i] || count[norm(us[i], vs[i])] > 1
	}
	for i := 0; i < m; i++ {
		if us[i] != vs[i] {
			count[norm(us[i], vs[i])]++
		}
	}
	remove := func(k int) {
		if us[k] != vs[k] {
			count[norm(us[k], vs[k])]--
		}
	}
	add := func(k int) {
		if us[k] != vs[k] {
			count[norm(us[k], vs[k])]++
		}
	}

	// Each pass swaps every defective edge with a random partner; defects
	// shrink geometrically, so a few hundred passes is ample slack.
	const maxPasses = 1000
	for pass := 0; pass < maxPasses; pass++ {
		clean := true
		for i := 0; i < m; i++ {
			if !defect(i) {
				continue
			}
			clean = false
			j := r.Intn(m)
			if j == i {
				continue
			}
			remove(i)
			remove(j)
			if r.Bool() {
				vs[i], vs[j] = vs[j], vs[i]
			} else {
				vs[i], us[j] = us[j], vs[i]
			}
			add(i)
			add(j)
		}
		if clean {
			b := NewBuilder(n)
			for i := 0; i < m; i++ {
				b.AddEdge(us[i], vs[i])
			}
			return b.Build(), true
		}
	}
	return nil, false
}

// PerfectMatching returns a uniform random perfect matching between two
// equal-size vertex sets, given as a permutation: side-B partner of the i-th
// A vertex. Used by the §5.1.1 gadget construction.
func PerfectMatching(k int, r *rng.Source) []int {
	return r.Perm(k)
}
