package graph

import (
	"testing"
	"testing/quick"

	"locsample/internal/rng"
)

// Handshake lemma: Σ deg(v) = 2|E| for arbitrary random multigraphs.
func TestHandshakeLemma(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw % 60)
		r := rng.Derive(seed)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			u := r.Intn(n)
			v := r.Intn(n - 1)
			if v >= u {
				v++
			}
			b.AddEdge(u, v)
		}
		g := b.Build()
		total := 0
		for v := 0; v < n; v++ {
			total += g.Deg(v)
		}
		return total == 2*g.M()
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// BFS distance is symmetric on undirected graphs.
func TestBFSSymmetry(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		g := Gnp(25, 0.15, r)
		for u := 0; u < g.N(); u += 5 {
			du := g.BFS(u)
			for v := 0; v < g.N(); v += 7 {
				if g.Dist(v, u) != du[v] {
					t.Fatalf("dist(%d,%d) asymmetric", u, v)
				}
			}
		}
	}
}

// Greedy coloring is always proper, on arbitrary random graphs.
func TestGreedyColoringAlwaysProper(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		g := Gnp(n, 0.3, rng.Derive(seed))
		colors, used := g.GreedyColoring()
		return g.IsProperColoring(colors) && used <= g.MaxDeg()+1
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// Balls are monotone in radius and eventually cover the component.
func TestBallMonotone(t *testing.T) {
	g := Grid(5, 5)
	prev := 0
	for r := 0; r <= 8; r++ {
		ball := g.Ball(12, r)
		if len(ball) < prev {
			t.Fatalf("ball shrank at radius %d", r)
		}
		prev = len(ball)
	}
	if prev != g.N() {
		t.Fatalf("max-radius ball covers %d of %d", prev, g.N())
	}
}

// RandomRegular sums to the right edge count: n·d/2.
func TestRandomRegularEdgeCount(t *testing.T) {
	r := rng.New(9)
	for _, tc := range []struct{ n, d int }{{12, 3}, {20, 6}, {30, 4}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() != tc.n*tc.d/2 {
			t.Fatalf("RandomRegular(%d,%d): %d edges", tc.n, tc.d, g.M())
		}
	}
}

// SimpleNeighbors is sorted, deduplicated, and excludes the vertex itself.
func TestSimpleNeighborsInvariants(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	g := b.Build()
	nb := g.SimpleNeighbors(0)
	if len(nb) != 3 || nb[0] != 1 || nb[1] != 2 || nb[2] != 3 {
		t.Fatalf("SimpleNeighbors = %v", nb)
	}
}

// Cycle diameters: ⌊n/2⌋.
func TestCycleDiameterFormula(t *testing.T) {
	for n := 3; n <= 12; n++ {
		if d := Cycle(n).Diameter(); d != n/2 {
			t.Fatalf("C%d diameter %d, want %d", n, d, n/2)
		}
	}
}

// Grid diameter: (r−1)+(c−1).
func TestGridDiameterFormula(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{2, 2}, {3, 5}, {4, 4}, {1, 7}} {
		if d := Grid(tc.r, tc.c).Diameter(); d != tc.r+tc.c-2 {
			t.Fatalf("grid %dx%d diameter %d", tc.r, tc.c, d)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("first component split: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatalf("second component wrong: %v", comp)
	}
	if comp[5] == comp[6] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatalf("isolated vertices wrong: %v", comp)
	}
	// Consistency with Connected().
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	cg := Cycle(5)
	if _, c := cg.ConnectedComponents(); c != 1 {
		t.Fatalf("cycle components = %d", c)
	}
}

// A single vertex graph behaves sanely everywhere.
func TestSingletonGraph(t *testing.T) {
	g := NewBuilder(1).Build()
	if !g.Connected() || g.Diameter() != 0 || g.MaxDeg() != 0 {
		t.Fatal("singleton graph wrong")
	}
	if !g.IsIndependentSet([]int{1}) || !g.IsDominatingSet([]int{1}) {
		t.Fatal("singleton predicates wrong")
	}
	if g.IsDominatingSet([]int{0}) {
		t.Fatal("empty set dominates nothing")
	}
}
