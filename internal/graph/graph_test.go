package graph

import (
	"testing"
	"testing/quick"

	"locsample/internal/rng"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	id0 := b.AddEdge(0, 1)
	id1 := b.AddEdge(1, 2)
	id2 := b.AddEdge(1, 2) // parallel edge
	g := b.Build()

	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 4, 3", g.N(), g.M())
	}
	if id0 != 0 || id1 != 1 || id2 != 2 {
		t.Fatalf("edge ids %d %d %d", id0, id1, id2)
	}
	if g.Deg(1) != 3 {
		t.Fatalf("Deg(1)=%d with parallel edge, want 3", g.Deg(1))
	}
	if g.Deg(3) != 0 {
		t.Fatalf("Deg(3)=%d, want 0", g.Deg(3))
	}
	if g.MaxDeg() != 3 {
		t.Fatalf("MaxDeg=%d, want 3", g.MaxDeg())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
	if got := g.SimpleNeighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("SimpleNeighbors(1)=%v, want [0 2]", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(){
		func() { NewBuilder(-1) },
		func() { NewBuilder(2).AddEdge(0, 0) },
		func() { NewBuilder(2).AddEdge(0, 2) },
		func() { NewBuilder(2).AddEdge(-1, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestIncidenceAlignment(t *testing.T) {
	g := Cycle(5)
	for v := 0; v < g.N(); v++ {
		adj, inc := g.Adj(v), g.Inc(v)
		if len(adj) != len(inc) {
			t.Fatalf("adj/inc length mismatch at %d", v)
		}
		for i := range adj {
			e := g.Edge(int(inc[i]))
			if e.Other(int32(v)) != adj[i] {
				t.Fatalf("inc[%d][%d] edge %v does not oppose adj entry %d", v, i, e, adj[i])
			}
		}
	}
}

func TestPathProperties(t *testing.T) {
	g := Path(10)
	if g.M() != 9 || g.MaxDeg() != 2 {
		t.Fatalf("path: M=%d MaxDeg=%d", g.M(), g.MaxDeg())
	}
	if !g.Connected() {
		t.Fatal("path disconnected")
	}
	if d := g.Diameter(); d != 9 {
		t.Fatalf("path diameter %d, want 9", d)
	}
	if d := g.Dist(0, 7); d != 7 {
		t.Fatalf("Dist(0,7)=%d", d)
	}
}

func TestCycleProperties(t *testing.T) {
	g := Cycle(8)
	if g.M() != 8 || !g.IsRegular(2) {
		t.Fatal("cycle structure wrong")
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("C8 diameter %d, want 4", d)
	}
	g2 := Cycle(7)
	if d := g2.Diameter(); d != 3 {
		t.Fatalf("C7 diameter %d, want 3", d)
	}
}

func TestCompleteProperties(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 || !g.IsRegular(5) || g.Diameter() != 1 {
		t.Fatalf("K6: M=%d diam=%d", g.M(), g.Diameter())
	}
}

func TestStarProperties(t *testing.T) {
	g := Star(7)
	if g.Deg(0) != 6 || g.Diameter() != 2 {
		t.Fatalf("star: deg0=%d diam=%d", g.Deg(0), g.Diameter())
	}
}

func TestGridProperties(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid N=%d", g.N())
	}
	// Edge count: 3*(4-1) horizontal + (3-1)*4 vertical = 9+8=17.
	if g.M() != 17 {
		t.Fatalf("grid M=%d, want 17", g.M())
	}
	if d := g.Diameter(); d != 5 {
		t.Fatalf("3x4 grid diameter %d, want 5", d)
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 5)
	if !g.IsRegular(4) {
		t.Fatalf("torus degree histogram %v", g.DegreeHistogram())
	}
	if !g.Connected() {
		t.Fatal("torus disconnected")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K34: N=%d M=%d", g.N(), g.M())
	}
	if g.Deg(0) != 4 || g.Deg(3) != 3 {
		t.Fatalf("K34 degrees: %d %d", g.Deg(0), g.Deg(3))
	}
}

func TestCompleteTree(t *testing.T) {
	g := CompleteTree(3, 2) // 1 + 3 + 9 = 13 vertices
	if g.N() != 13 || g.M() != 12 {
		t.Fatalf("tree N=%d M=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("tree disconnected")
	}
	if g.Deg(0) != 3 {
		t.Fatalf("root degree %d", g.Deg(0))
	}
	// Internal vertex 1 has parent + 3 children.
	if g.Deg(1) != 4 {
		t.Fatalf("internal degree %d", g.Deg(1))
	}
	// Leaves have degree 1.
	if g.Deg(12) != 1 {
		t.Fatalf("leaf degree %d", g.Deg(12))
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || !g.IsRegular(4) || g.Diameter() != 4 {
		t.Fatalf("Q4: N=%d diam=%d", g.N(), g.Diameter())
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	dist := g.BFS(0)
	if dist[1] != 1 || dist[2] != -1 {
		t.Fatalf("BFS dist %v", dist)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter of disconnected graph should be -1")
	}
}

func TestBall(t *testing.T) {
	g := Path(9)
	ball := g.Ball(4, 2)
	want := []int{2, 3, 4, 5, 6}
	if len(ball) != len(want) {
		t.Fatalf("Ball=%v", ball)
	}
	for i := range want {
		if ball[i] != want[i] {
			t.Fatalf("Ball=%v, want %v", ball, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	g := Cycle(5)
	is := []int{1, 0, 1, 0, 0}
	if !g.IsIndependentSet(is) {
		t.Fatal("valid IS rejected")
	}
	if g.IsIndependentSet([]int{1, 1, 0, 0, 0}) {
		t.Fatal("adjacent pair accepted as IS")
	}
	if !g.IsDominatingSet([]int{1, 0, 1, 0, 0}) {
		t.Fatal("valid dominating set rejected")
	}
	if g.IsDominatingSet([]int{1, 0, 0, 0, 0}) {
		t.Fatal("non-dominating set accepted")
	}
	if !g.IsMaximalIndependentSet([]int{1, 0, 1, 0, 0}) {
		t.Fatal("valid MIS rejected")
	}
	if g.IsMaximalIndependentSet([]int{1, 0, 0, 0, 0}) {
		t.Fatal("non-maximal IS accepted as MIS")
	}
	if !g.IsVertexCover([]int{1, 0, 1, 0, 1}) {
		t.Fatal("valid cover rejected")
	}
	if g.IsVertexCover([]int{1, 0, 0, 1, 0}) {
		t.Fatal("invalid cover accepted")
	}
	if !g.IsProperColoring([]int{0, 1, 0, 1, 2}) {
		t.Fatal("proper coloring rejected")
	}
	if g.IsProperColoring([]int{0, 0, 1, 2, 1}) {
		t.Fatal("improper coloring accepted")
	}
}

func TestGreedyColoringProper(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		g := Gnp(30, 0.2, r)
		colors, used := g.GreedyColoring()
		if !g.IsProperColoring(colors) {
			t.Fatal("greedy coloring not proper")
		}
		if used > g.MaxDeg()+1 {
			t.Fatalf("greedy used %d colors > Δ+1 = %d", used, g.MaxDeg()+1)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(7)
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {16, 6}, {30, 5}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if !g.IsRegular(tc.d) {
			t.Fatalf("RandomRegular(%d,%d) not regular: %v", tc.n, tc.d, g.DegreeHistogram())
		}
		// Simplicity: no parallel edges.
		type pair struct{ a, b int32 }
		seen := map[pair]bool{}
		for _, e := range g.Edges() {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			if seen[pair{u, v}] {
				t.Fatal("parallel edge in RandomRegular")
			}
			seen[pair{u, v}] = true
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, r); err == nil {
		t.Fatal("d >= n accepted")
	}
	g, err := RandomRegular(6, 0, r)
	if err != nil || g.M() != 0 {
		t.Fatal("d=0 should give empty graph")
	}
}

func TestGnpEdgeCount(t *testing.T) {
	r := rng.New(3)
	g := Gnp(100, 0.1, r)
	// Expected edges: C(100,2)*0.1 = 495. Allow wide slack.
	if g.M() < 350 || g.M() > 650 {
		t.Fatalf("Gnp edge count %d far from expectation 495", g.M())
	}
}

func TestPerfectMatchingIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%15) + 1
		m := PerfectMatching(k, rng.Derive(seed))
		seen := make([]bool, k)
		for _, v := range m {
			if v < 0 || v >= k || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle inequality along edges.
func TestBFSEdgeLipschitz(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		g := Gnp(40, 0.12, r)
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := dist[e.U], dist[e.V]
			if du >= 0 && dv >= 0 && abs(du-dv) > 1 {
				t.Fatalf("BFS distances differ by >1 across edge %v: %d vs %d", e, du, dv)
			}
			if (du == -1) != (dv == -1) {
				t.Fatalf("edge %v crosses components", e)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestEccentricityMatchesDiameter(t *testing.T) {
	g := Grid(4, 4)
	diam := g.Diameter()
	maxEcc := 0
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(v); e > maxEcc {
			maxEcc = e
		}
	}
	if maxEcc != diam {
		t.Fatalf("max eccentricity %d != diameter %d", maxEcc, diam)
	}
}
