// Package graph implements the undirected (multi-)graphs on which every
// model in this repository lives.
//
// The paper's constructions require genuine multigraph support: the random
// bipartite gadget of §5.1.1 is a union of independently sampled perfect
// matchings ("the union of all these matchings gives us the random bipartite
// (multi-)graph"), and the lifted cycle H^G of §5.1.2 is Δ-regular only if
// parallel edges are kept. Edges therefore have identities: activities and
// filter coins attach to edge IDs, not endpoint pairs.
package graph

import "fmt"

// Edge is an undirected edge between vertices U and V (U == V is rejected by
// Builder; self-loops never arise in the paper's models).
type Edge struct {
	U, V int32
}

// Other returns the endpoint of e opposite to v.
func (e Edge) Other(v int32) int32 {
	if e.U == v {
		return e.V
	}
	return e.U
}

// Graph is an immutable undirected multigraph with n vertices labelled
// 0..n-1. Construct one with a Builder or with the generators in this
// package.
type Graph struct {
	n     int
	edges []Edge
	// The adjacency is stored in compressed-sparse-row form: rowPtr has
	// n+1 entries and vertex v's incident slots occupy [rowPtr[v],
	// rowPtr[v+1]) of the flat arrays. The hot loops of internal/chains
	// sweep the whole vertex set every round, so keeping all neighbor and
	// edge-ID data in two contiguous arrays (rather than n separately
	// allocated lists) is what makes those sweeps cache-friendly.
	rowPtr  []int32
	nbrFlat []int32
	incFlat []int32
	// adj[v] and inc[v] are views into nbrFlat/incFlat, kept so callers
	// keep the slice-per-vertex API: adj[v] lists the neighbors of v, one
	// entry per incident edge (parallel edges contribute multiple
	// entries), and inc[v] lists the incident edge IDs aligned with it.
	adj    [][]int32
	inc    [][]int32
	maxDeg int
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph on n vertices. It panics if
// n < 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge appends an undirected edge {u, v}. Parallel edges are allowed;
// self-loops are not. It returns the new edge's ID.
func (b *Builder) AddEdge(u, v int) int {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	b.edges = append(b.edges, Edge{U: int32(u), V: int32(v)})
	return len(b.edges) - 1
}

// Build finalizes the graph, laying the adjacency out in CSR form.
func (b *Builder) Build() *Graph {
	if len(b.edges) > (1<<31-1)/2 {
		panic(fmt.Sprintf("graph: %d edges overflow the int32 CSR offsets", len(b.edges)))
	}
	g := &Graph{
		n:       b.n,
		edges:   append([]Edge(nil), b.edges...),
		rowPtr:  make([]int32, b.n+1),
		nbrFlat: make([]int32, 2*len(b.edges)),
		incFlat: make([]int32, 2*len(b.edges)),
		adj:     make([][]int32, b.n),
		inc:     make([][]int32, b.n),
	}
	deg := make([]int32, b.n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < b.n; v++ {
		g.rowPtr[v+1] = g.rowPtr[v] + deg[v]
		if int(deg[v]) > g.maxDeg {
			g.maxDeg = int(deg[v])
		}
	}
	cursor := make([]int32, b.n)
	copy(cursor, g.rowPtr[:b.n])
	for id, e := range g.edges {
		g.nbrFlat[cursor[e.U]] = e.V
		g.incFlat[cursor[e.U]] = int32(id)
		cursor[e.U]++
		g.nbrFlat[cursor[e.V]] = e.U
		g.incFlat[cursor[e.V]] = int32(id)
		cursor[e.V]++
	}
	for v := 0; v < b.n; v++ {
		g.adj[v] = g.nbrFlat[g.rowPtr[v]:g.rowPtr[v+1]:g.rowPtr[v+1]]
		g.inc[v] = g.incFlat[g.rowPtr[v]:g.rowPtr[v+1]:g.rowPtr[v+1]]
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges (parallel edges counted with multiplicity).
func (g *Graph) M() int { return len(g.edges) }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns the edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Deg returns the degree of v (parallel edges counted with multiplicity).
func (g *Graph) Deg(v int) int { return len(g.adj[v]) }

// MaxDeg returns the maximum degree Δ of the graph.
func (g *Graph) MaxDeg() int { return g.maxDeg }

// Adj returns the neighbor list of v (one entry per incident edge). The
// caller must not modify it.
func (g *Graph) Adj(v int) []int32 { return g.adj[v] }

// Inc returns the incident-edge-ID list of v, aligned with Adj(v). The
// caller must not modify it.
func (g *Graph) Inc(v int) []int32 { return g.inc[v] }

// CSR exposes the flat compressed-sparse-row adjacency: vertex v's incident
// slots occupy [rowPtr[v], rowPtr[v+1]) of nbr (neighbor vertex per slot)
// and inc (edge ID per slot), in the same order Adj/Inc present them. The
// round kernels in internal/chains and internal/mrf sweep every vertex every
// round; walking these arrays directly spares them a slice-header load per
// vertex. Callers must not modify the arrays.
func (g *Graph) CSR() (rowPtr, nbr, inc []int32) {
	return g.rowPtr, g.nbrFlat, g.incFlat
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool {
	// Scan the smaller adjacency list.
	a, b := u, v
	if g.Deg(a) > g.Deg(b) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if int(w) == b {
			return true
		}
	}
	return false
}

// SimpleNeighbors returns the deduplicated sorted neighbor set of v (useful
// on multigraphs, where Adj may repeat vertices).
func (g *Graph) SimpleNeighbors(v int) []int32 {
	seen := make(map[int32]struct{}, len(g.adj[v]))
	out := make([]int32, 0, len(g.adj[v]))
	for _, u := range g.adj[v] {
		if _, ok := seen[u]; !ok {
			seen[u] = struct{}{}
			out = append(out, u)
		}
	}
	sortInt32(out)
	return out
}

func sortInt32(a []int32) {
	// Insertion sort: neighbor lists are short in every workload here.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// BFS performs a breadth-first search from src and returns the distance
// slice (|V| entries, -1 for unreachable vertices).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Dist returns the shortest-path distance between u and v, or -1 if
// disconnected.
func (g *Graph) Dist(u, v int) int {
	return g.BFS(u)[v]
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the exact diameter via all-pairs BFS, or -1 if the graph
// is disconnected or empty. O(n·m); intended for the laptop-scale instances
// used in experiments.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		for _, d := range g.BFS(v) {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns max_u dist(v, u), or -1 if some vertex is
// unreachable from v.
func (g *Graph) Eccentricity(v int) int {
	ecc := 0
	for _, d := range g.BFS(v) {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Ball returns the set of vertices within distance r of v (the r-ball
// B_r(v) of §2.4), as a sorted slice.
func (g *Graph) Ball(v, r int) []int {
	dist := g.BFS(v)
	var out []int
	for u, d := range dist {
		if d >= 0 && d <= r {
			out = append(out, u)
		}
	}
	return out
}

// IsIndependentSet reports whether the 0/1 vector sigma (1 = in the set)
// marks an independent set.
func (g *Graph) IsIndependentSet(sigma []int) bool {
	for _, e := range g.edges {
		if sigma[e.U] == 1 && sigma[e.V] == 1 {
			return false
		}
	}
	return true
}

// IsVertexCover reports whether the 0/1 vector sigma (1 = in the cover)
// marks a vertex cover.
func (g *Graph) IsVertexCover(sigma []int) bool {
	for _, e := range g.edges {
		if sigma[e.U] == 0 && sigma[e.V] == 0 {
			return false
		}
	}
	return true
}

// IsDominatingSet reports whether the 0/1 vector sigma (1 = in the set)
// marks a dominating set: every vertex has a member of the set in its
// inclusive neighborhood Γ⁺(v).
func (g *Graph) IsDominatingSet(sigma []int) bool {
	for v := 0; v < g.n; v++ {
		if sigma[v] == 1 {
			continue
		}
		dominated := false
		for _, u := range g.adj[v] {
			if sigma[u] == 1 {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether sigma marks an MIS (an independent
// dominating set).
func (g *Graph) IsMaximalIndependentSet(sigma []int) bool {
	return g.IsIndependentSet(sigma) && g.IsDominatingSet(sigma)
}

// IsProperColoring reports whether sigma assigns distinct colors to the
// endpoints of every edge.
func (g *Graph) IsProperColoring(sigma []int) bool {
	for _, e := range g.edges {
		if sigma[e.U] == sigma[e.V] {
			return false
		}
	}
	return true
}

// GreedyColoring colors vertices 0..n-1 in index order with the smallest
// color not used by an already-colored neighbor. It uses at most Δ+1 colors
// and returns the coloring and the number of colors used.
func (g *Graph) GreedyColoring() (colors []int, used int) {
	colors = make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	taken := make([]bool, g.maxDeg+2)
	for v := 0; v < g.n; v++ {
		for i := range taken {
			taken[i] = false
		}
		for _, u := range g.adj[v] {
			if c := colors[u]; c >= 0 {
				taken[c] = true
			}
		}
		c := 0
		for taken[c] {
			c++
		}
		colors[v] = c
		if c+1 > used {
			used = c + 1
		}
	}
	return colors, used
}

// DegreeHistogram returns counts[d] = number of vertices of degree d.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.maxDeg+1)
	for v := 0; v < g.n; v++ {
		counts[g.Deg(v)]++
	}
	return counts
}

// IsRegular reports whether every vertex has degree d.
func (g *Graph) IsRegular(d int) bool {
	for v := 0; v < g.n; v++ {
		if g.Deg(v) != d {
			return false
		}
	}
	return true
}

// ConnectedComponents returns the component index of every vertex (indices
// are dense, assigned in discovery order) and the number of components.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, g.n)
	for src := 0; src < g.n; src++ {
		if comp[src] != -1 {
			continue
		}
		comp[src] = count
		queue = append(queue[:0], int32(src))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if comp[u] == -1 {
					comp[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return comp, count
}
