// Package rng provides the deterministic pseudo-randomness substrate used by
// every sampler in this repository.
//
// All randomness flows from explicit 64-bit seeds through splitmix64
// generators. Two facilities matter for the LOCAL model:
//
//   - Source: a sequential stream (one per vertex, or one per experiment).
//   - PRF: a keyed pseudo-random function over tuples of uint64s, used to
//     implement the paper's shared per-edge coins ("the two endpoints u and v
//     access the same random coin", §4): both endpoints evaluate
//     PRF(sharedSeed, edgeID, round) and obtain the same variate without any
//     communication.
//
// splitmix64 is the output-scrambled Weyl-sequence generator of Steele,
// Lea and Flood; it is statistically strong for simulation workloads, has a
// full 2^64 period, and — critically here — supports cheap key-derivation so
// that per-(vertex, round) streams are independent-looking yet reproducible.
package rng

import (
	"math"
	"math/bits"
)

// golden is the splitmix64 Weyl increment (2^64 / φ, rounded to odd).
const golden = 0x9e3779b97f4a7c15

// mix applies the splitmix64 output permutation to z.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic stream of pseudo-random values. The zero value
// is a valid stream seeded with 0; prefer New for explicit seeding.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield streams that
// are statistically independent for simulation purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns a new Source whose stream is determined by the parent seed
// and the given identifiers. It is used to give each vertex (and each
// (vertex, round) pair) its own reproducible stream.
func Derive(seed uint64, ids ...uint64) *Source {
	return &Source{state: PRF(seed, ids...)}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Debiasing uses Lemire's nearly-divisionless method.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	v := s.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Bool returns a fair coin flip.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly in place (Fisher–Yates).
func (s *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Categorical samples an index from the unnormalized non-negative weight
// vector w. It panics if the total weight is zero, non-finite, or negative.
func (s *Source) Categorical(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			panic("rng: Categorical weight must be finite and non-negative")
		}
		total += x
	}
	if total <= 0 {
		panic("rng: Categorical called with zero total weight")
	}
	u := s.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	panic("rng: Categorical internal error")
}

// CategoricalU samples an index from the unnormalized weights w using the
// externally supplied uniform u in [0,1). Supplying the same u to two chains
// realizes the monotone shared-uniform coupling used in coalescence
// experiments (internal/coupling).
func CategoricalU(w []float64, u float64) int {
	total := 0.0
	for _, x := range w {
		total += x
	}
	t := u * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if t < acc {
			return i
		}
	}
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	panic("rng: CategoricalU called with zero total weight")
}

// PRF is a keyed pseudo-random function: it hashes (key, ids...) to 64
// uniform-looking bits. It is the basis of the shared edge coins and of
// stream derivation. Evaluations with distinct inputs are independent for
// simulation purposes; the same inputs always produce the same output.
func PRF(key uint64, ids ...uint64) uint64 {
	h := mix(key + golden)
	for _, id := range ids {
		h = mix(h ^ mix(id+golden))
	}
	return h
}

// PRFFloat64 returns the PRF output mapped to a uniform variate in [0, 1).
func PRFFloat64(key uint64, ids ...uint64) float64 {
	return float64(PRF(key, ids...)>>11) / (1 << 53)
}

// RoundKey is a precomputed partial key for the round kernels' dominant PRF
// shape, PRF(seed, tag, v, round): within one round only v varies, so the
// (seed, tag) absorption chain and the mixed round word are hoisted out of
// the per-vertex path. Evaluating a variate through a RoundKey costs 3 mix
// permutations instead of the 7 a full PRF(seed, tag, v, round) call pays,
// and yields bit-identical outputs (pinned by TestKeyMatchesPRF).
type RoundKey struct {
	prefix uint64 // chain state after absorbing (seed, tag)
	round  uint64 // mix(round+golden), absorbed after the varying id
}

// Key returns the RoundKey for (seed, tag, round): Key(s, t, r).Uint64(v) ==
// PRF(s, t, v, r) for every v.
func Key(seed, tag, round uint64) RoundKey {
	h := mix(seed + golden)
	h = mix(h ^ mix(tag+golden))
	return RoundKey{prefix: h, round: mix(round + golden)}
}

// Uint64 returns PRF(seed, tag, v, round) for the key's constant tuple.
func (k RoundKey) Uint64(v uint64) uint64 {
	return mix(mix(k.prefix^mix(v+golden)) ^ k.round)
}

// Float64 returns the keyed variate mapped to a uniform in [0, 1),
// bit-identical to PRFFloat64(seed, tag, v, round).
func (k RoundKey) Float64(v uint64) float64 {
	return float64(k.Uint64(v)>>11) / (1 << 53)
}

// FillFloat64s streams one round's variates into dst: dst[i] receives the
// uniform for id base+i, bit-identical to PRFFloat64(seed, tag, base+i,
// round). The round kernels use it to fill a whole round's β priorities (and
// the vertex-parallel mode to fill contiguous CSR ranges, passing the range
// start as base) without re-deriving the key per vertex.
func (k RoundKey) FillFloat64s(dst []float64, base uint64) {
	prefix, round := k.prefix, k.round
	for i := range dst {
		h := mix(mix(prefix^mix(base+uint64(i)+golden)) ^ round)
		dst[i] = float64(h>>11) / (1 << 53)
	}
}

// KeysInto hoists one round's key schedule for a block of chains:
// dst[i] = Key(seeds[i], tag, round). The SoA batch kernels call it once
// per block per round — W key derivations amortized over one CSR walk
// that serves all W lanes — instead of deriving inside each chain's
// round as the per-chain kernels do. Each entry is exactly the RoundKey
// the corresponding single chain would compute, so lane variates stay
// bit-identical to per-chain draws.
func KeysInto(dst []RoundKey, seeds []uint64, tag, round uint64) {
	for i, s := range seeds {
		dst[i] = Key(s, tag, round)
	}
}

// CategoricalCumU is CategoricalU evaluated against a precomputed cumulative
// weight table: cum[i] must equal w[0]+...+w[i] accumulated left to right in
// that exact order, which makes cum[len-1] bitwise equal to the total
// CategoricalU would sum and every prefix equal to its running accumulator.
// The draw therefore binary-searches for the first index with u*total <
// cum[i] instead of linearly re-summing — O(log q) per draw at large q — and
// returns bit-identical indices (pinned by TestCategoricalCumUMatches). The
// raw weights w are consulted only on the measure-~2⁻⁵³ floating-point slack
// path, which must locate the last positive-weight index exactly as
// CategoricalU does (cum alone cannot: a tiny positive weight can be
// absorbed, leaving cum[i] == cum[i-1]).
func CategoricalCumU(w, cum []float64, u float64) int {
	n := len(cum)
	t := u * cum[n-1]
	if t < cum[0] {
		return 0
	}
	// Invariant: cum[lo] <= t, cum[hi] > t (if any index qualifies).
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if t < cum[mid] {
			hi = mid
		} else {
			lo = mid
		}
	}
	if t < cum[hi] {
		return hi
	}
	for i := n - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	panic("rng: CategoricalCumU called with zero total weight")
}

// CumSumInto fills cum with the left-to-right running sums of w — the table
// CategoricalCumU requires. Accumulation order matches CategoricalU's
// internal accumulator exactly, so the two draw paths agree bitwise.
func CumSumInto(w, cum []float64) {
	acc := 0.0
	for i, x := range w {
		acc += x
		cum[i] = acc
	}
}
