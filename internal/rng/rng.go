// Package rng provides the deterministic pseudo-randomness substrate used by
// every sampler in this repository.
//
// All randomness flows from explicit 64-bit seeds through splitmix64
// generators. Two facilities matter for the LOCAL model:
//
//   - Source: a sequential stream (one per vertex, or one per experiment).
//   - PRF: a keyed pseudo-random function over tuples of uint64s, used to
//     implement the paper's shared per-edge coins ("the two endpoints u and v
//     access the same random coin", §4): both endpoints evaluate
//     PRF(sharedSeed, edgeID, round) and obtain the same variate without any
//     communication.
//
// splitmix64 is the output-scrambled Weyl-sequence generator of Steele,
// Lea and Flood; it is statistically strong for simulation workloads, has a
// full 2^64 period, and — critically here — supports cheap key-derivation so
// that per-(vertex, round) streams are independent-looking yet reproducible.
package rng

import "math"

// golden is the splitmix64 Weyl increment (2^64 / φ, rounded to odd).
const golden = 0x9e3779b97f4a7c15

// mix applies the splitmix64 output permutation to z.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic stream of pseudo-random values. The zero value
// is a valid stream seeded with 0; prefer New for explicit seeding.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield streams that
// are statistically independent for simulation purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns a new Source whose stream is determined by the parent seed
// and the given identifiers. It is used to give each vertex (and each
// (vertex, round) pair) its own reproducible stream.
func Derive(seed uint64, ids ...uint64) *Source {
	return &Source{state: PRF(seed, ids...)}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Debiasing uses Lemire's nearly-divisionless method.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Bool returns a fair coin flip.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly in place (Fisher–Yates).
func (s *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Categorical samples an index from the unnormalized non-negative weight
// vector w. It panics if the total weight is zero, non-finite, or negative.
func (s *Source) Categorical(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			panic("rng: Categorical weight must be finite and non-negative")
		}
		total += x
	}
	if total <= 0 {
		panic("rng: Categorical called with zero total weight")
	}
	u := s.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	panic("rng: Categorical internal error")
}

// CategoricalU samples an index from the unnormalized weights w using the
// externally supplied uniform u in [0,1). Supplying the same u to two chains
// realizes the monotone shared-uniform coupling used in coalescence
// experiments (internal/coupling).
func CategoricalU(w []float64, u float64) int {
	total := 0.0
	for _, x := range w {
		total += x
	}
	t := u * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if t < acc {
			return i
		}
	}
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	panic("rng: CategoricalU called with zero total weight")
}

// PRF is a keyed pseudo-random function: it hashes (key, ids...) to 64
// uniform-looking bits. It is the basis of the shared edge coins and of
// stream derivation. Evaluations with distinct inputs are independent for
// simulation purposes; the same inputs always produce the same output.
func PRF(key uint64, ids ...uint64) uint64 {
	h := mix(key + golden)
	for _, id := range ids {
		h = mix(h ^ mix(id+golden))
	}
	return h
}

// PRFFloat64 returns the PRF output mapped to a uniform variate in [0, 1).
func PRFFloat64(key uint64, ids ...uint64) float64 {
	return float64(PRF(key, ids...)>>11) / (1 << 53)
}
