package rng

import "testing"

// TestKeysIntoMatchesKey pins the hoisted block key schedule to per-chain
// Key derivation: entry i must be exactly Key(seeds[i], tag, round), so SoA
// lane variates are bit-identical to per-chain draws.
func TestKeysIntoMatchesKey(t *testing.T) {
	seeds := []uint64{0, 1, 42, ^uint64(0), 0x9e3779b97f4a7c15}
	dst := make([]RoundKey, len(seeds))
	for _, tag := range []uint64{0x1001, 0x3002} {
		for _, round := range []uint64{0, 7, 1 << 40} {
			KeysInto(dst, seeds, tag, round)
			for i, s := range seeds {
				want := Key(s, tag, round)
				if dst[i] != want {
					t.Fatalf("tag=%#x round=%d seed=%d: KeysInto diverges from Key", tag, round, s)
				}
				for v := uint64(0); v < 5; v++ {
					if dst[i].Uint64(v) != PRF(s, tag, v, round) {
						t.Fatalf("tag=%#x round=%d seed=%d v=%d: keyed variate diverges from PRF", tag, round, s, v)
					}
				}
			}
		}
	}
}
