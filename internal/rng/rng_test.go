package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d times in 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += s.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(3)
	const n, trials = 7, 140000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		p := Derive(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = s
}

func TestPermUniformPairs(t *testing.T) {
	// Each of the 6 permutations of 3 elements should appear ~1/6 of the time.
	s := New(9)
	counts := map[[3]int]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		p := s.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations of 3, want 6", len(counts))
	}
	want := float64(trials) / 6
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("perm %v: count %d, want ~%.0f", k, c, want)
		}
	}
}

func TestCategorical(t *testing.T) {
	s := New(13)
	w := []float64{1, 2, 3, 0, 4}
	counts := make([]int, len(w))
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[s.Categorical(w)]++
	}
	if counts[3] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[3])
	}
	total := 10.0
	for i, wi := range w {
		want := float64(trials) * wi / total
		if wi > 0 && math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("category %d: %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestCategoricalPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical with zero total did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestCategoricalUMonotone(t *testing.T) {
	// CategoricalU must be monotone in u: larger u never yields a smaller
	// index. This is what makes the shared-uniform coupling maximal per-site.
	w := []float64{0.5, 1.5, 1.0}
	prev := -1
	for u := 0.0; u < 1.0; u += 1e-3 {
		i := CategoricalU(w, u)
		if i < prev {
			t.Fatalf("CategoricalU not monotone: u=%v gave %d after %d", u, i, prev)
		}
		prev = i
	}
}

func TestPRFDeterministicAndSpread(t *testing.T) {
	if PRF(1, 2, 3) != PRF(1, 2, 3) {
		t.Fatal("PRF not deterministic")
	}
	if PRF(1, 2, 3) == PRF(1, 3, 2) {
		t.Fatal("PRF ignores argument order")
	}
	if PRF(1, 2) == PRF(2, 2) {
		t.Fatal("PRF ignores key")
	}
	// Bit balance across many evaluations.
	ones := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		ones += popcount(PRF(99, uint64(i)))
	}
	mean := float64(ones) / trials
	if math.Abs(mean-32) > 0.5 {
		t.Fatalf("PRF bit balance %v, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestDeriveIndependence(t *testing.T) {
	// Streams derived with different ids from the same seed must differ.
	a := Derive(77, 1)
	b := Derive(77, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams collided %d times", same)
	}
}

func TestPRFFloat64Range(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		f := PRFFloat64(5, i)
		if f < 0 || f >= 1 {
			t.Fatalf("PRFFloat64 out of range: %v", f)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(21)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.005 {
		t.Fatalf("Bernoulli(0.3) rate %v", rate)
	}
}

// refMul64 is the hand-rolled 128-bit multiply bits.Mul64 replaced; kept
// here so the replacement stays pinned to the old outputs.
func refMul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

func TestBitsMul64MatchesReference(t *testing.T) {
	s := New(123)
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {math.MaxUint64, math.MaxUint64},
		{math.MaxUint64, 2}, {1 << 63, 3},
	}
	for i := 0; i < 10000; i++ {
		cases = append(cases, [2]uint64{s.Uint64(), s.Uint64()})
	}
	for _, c := range cases {
		wantHi, wantLo := refMul64(c[0], c[1])
		gotHi, gotLo := bits.Mul64(c[0], c[1])
		if gotHi != wantHi || gotLo != wantLo {
			t.Fatalf("Mul64(%d, %d) = (%d, %d), reference (%d, %d)",
				c[0], c[1], gotHi, gotLo, wantHi, wantLo)
		}
	}
}

func TestKeyMatchesPRF(t *testing.T) {
	// The partial-key round PRF must reproduce PRF(seed, tag, v, round)
	// exactly: the round kernels' bit-identity contract rests on it.
	s := New(7)
	for trial := 0; trial < 200; trial++ {
		seed, tag, round := s.Uint64(), s.Uint64(), s.Uint64()%1024
		k := Key(seed, tag, round)
		for i := 0; i < 50; i++ {
			v := s.Uint64() % 100000
			if got, want := k.Uint64(v), PRF(seed, tag, v, round); got != want {
				t.Fatalf("Key(%d,%d,%d).Uint64(%d) = %d, PRF = %d", seed, tag, round, v, got, want)
			}
			if got, want := k.Float64(v), PRFFloat64(seed, tag, v, round); got != want {
				t.Fatalf("Key(%d,%d,%d).Float64(%d) = %v, PRFFloat64 = %v", seed, tag, round, v, got, want)
			}
		}
	}
}

func TestFillFloat64sMatchesPRF(t *testing.T) {
	s := New(19)
	for trial := 0; trial < 100; trial++ {
		seed, tag, round := s.Uint64(), s.Uint64(), s.Uint64()%64
		base := s.Uint64() % 1000
		dst := make([]float64, 1+s.Intn(257))
		Key(seed, tag, round).FillFloat64s(dst, base)
		for i, got := range dst {
			if want := PRFFloat64(seed, tag, base+uint64(i), round); got != want {
				t.Fatalf("FillFloat64s[%d] (base %d) = %v, PRFFloat64 = %v", i, base, got, want)
			}
		}
	}
}

func TestCategoricalCumUMatches(t *testing.T) {
	// The binary-search draw over a precomputed cumulative table must agree
	// with the linear-scan CategoricalU on every weight shape the samplers
	// produce: zero entries, single entries, large q, and adversarial u.
	s := New(31)
	for trial := 0; trial < 500; trial++ {
		q := 1 + s.Intn(40)
		if trial%7 == 0 {
			q = 1 + s.Intn(1000) // the large-q regime binary search targets
		}
		w := make([]float64, q)
		positive := false
		for i := range w {
			if s.Float64() < 0.3 {
				w[i] = 0
			} else {
				w[i] = s.Float64() * 10
				positive = true
			}
		}
		if !positive {
			w[s.Intn(q)] = 1
		}
		cum := make([]float64, q)
		CumSumInto(w, cum)
		for i := 0; i < 200; i++ {
			u := s.Float64()
			switch i {
			case 0:
				u = 0
			case 1:
				u = math.Nextafter(1, 0)
			}
			if got, want := CategoricalCumU(w, cum, u), CategoricalU(w, u); got != want {
				t.Fatalf("q=%d u=%v: CategoricalCumU = %d, CategoricalU = %d (w=%v)", q, u, got, want, w)
			}
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}

func BenchmarkPRF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = PRF(1, uint64(i), 7)
	}
}
