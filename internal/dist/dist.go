// Package dist implements the paper's two sampling algorithms as genuine
// message-passing protocols on the LOCAL-model runtime of
// internal/localmodel, plus Luby's MIS protocol (the §1.1 separation
// baseline) and the hypergraph LubyGlauber protocol for weighted local CSPs.
//
// Determinism contract. Every protocol derives its randomness from the
// shared seed through the PRF in internal/rng with the SAME keys the
// centralized round functions in internal/chains (and internal/csp) use:
// per-vertex updates are keyed (TagUpdate, v, round), Luby lottery numbers
// (TagBeta, v, round), per-edge filter coins (TagCoin, edgeID, round).
// Because the PRF is a pure function, a node that knows its own identifier,
// its neighbors' identifiers (learned in round 0) and the shared seed can
// evaluate exactly the variates the centralized replay consumes, and the
// distributed trajectory is bit-for-bit identical to the centralized one.
// That equivalence is pinned by the tests in this package and by
// TestDistributedMatchesCentralized at the repository root.
//
// Floating-point care: the LocalMetropolis edge filter multiplies three
// activity factors whose product must agree bit-for-bit at both endpoints of
// the edge. Multiplication is commutative but not associative, so both
// endpoints order the operands canonically — by the edge's (U, V) roles,
// exposed to nodes as Env.IsEdgeU — matching the operand order of the
// centralized chains.LocalMetropolisRound.
package dist

import (
	"encoding/binary"
	"fmt"

	"locsample/internal/chains"
	"locsample/internal/localmodel"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// maxSpin bounds spins so they fit the uint16 wire encoding; every model in
// the repository has q far below this.
const maxSpin = 1<<16 - 1

func validateMRF(m *mrf.MRF, init []int) error {
	if m.Q > maxSpin {
		return fmt.Errorf("dist: q=%d exceeds the %d-spin wire format", m.Q, maxSpin)
	}
	if len(init) != m.G.N() {
		return fmt.Errorf("dist: init length %d for %d vertices", len(init), m.G.N())
	}
	for v, x := range init {
		if x < 0 || x >= m.Q {
			return fmt.Errorf("dist: init[%d] = %d out of [0,%d)", v, x, m.Q)
		}
	}
	return nil
}

// --- LubyGlauber (Algorithm 1) ----------------------------------------------

// lubyNode runs one vertex of the LubyGlauber protocol. Protocol round t
// executes chain round t-1: messages sent in round t-1 carry each node's
// spin after chain round t-2, which is exactly the state chain round t-1
// reads. Round-0 messages additionally carry the sender's identifier, so
// that from round 1 on every node can evaluate its neighbors' lottery
// numbers β_u = PRF(seed, TagBeta, u, round) locally from the shared seed
// — the common-random-string reading of Algorithm 1's lottery.
type lubyNode struct {
	m      *mrf.MRF
	seed   uint64
	rounds int

	env   localmodel.Env
	x     int
	nbrID []uint64
	nbrX  []int
	marg  []float64
}

func (n *lubyNode) Init(env localmodel.Env) {
	n.env = env
	n.nbrID = make([]uint64, env.Deg)
	n.nbrX = make([]int, env.Deg)
	n.marg = make([]float64, n.m.Q)
}

func (n *lubyNode) Round(t int, in [][]byte) ([][]byte, bool) {
	if t > 0 {
		for i, msg := range in {
			if t == 1 {
				n.nbrID[i] = uint64(binary.LittleEndian.Uint32(msg))
				n.nbrX[i] = int(binary.LittleEndian.Uint16(msg[4:]))
			} else {
				n.nbrX[i] = int(binary.LittleEndian.Uint16(msg))
			}
		}
		r := uint64(t - 1)
		betaV := rng.PRFFloat64(n.seed, chains.TagBeta, uint64(n.env.V), r)
		isMax := true
		for _, u := range n.nbrID {
			if rng.PRFFloat64(n.seed, chains.TagBeta, u, r) >= betaV {
				isMax = false
				break
			}
		}
		if isMax && marginalSlots(n.m, n.env.V, n.env.EdgeIDs, n.nbrX, n.marg) {
			u := rng.PRFFloat64(n.seed, chains.TagUpdate, uint64(n.env.V), r)
			n.x = rng.CategoricalU(n.marg, u)
		}
	}
	if t >= n.rounds {
		return nil, true
	}
	var out [][]byte
	if t == 0 {
		out = make([][]byte, n.env.Deg)
		buf := make([]byte, 6)
		binary.LittleEndian.PutUint32(buf, uint32(n.env.V))
		binary.LittleEndian.PutUint16(buf[4:], uint16(n.x))
		for i := range out {
			out[i] = buf
		}
	} else {
		out = make([][]byte, n.env.Deg)
		buf := make([]byte, 2)
		binary.LittleEndian.PutUint16(buf, uint16(n.x))
		for i := range out {
			out[i] = buf
		}
	}
	return out, false
}

func (n *lubyNode) Output() int { return n.x }

// marginalSlots is mrf.MarginalInto with the neighborhood read from the
// node's message slots (which the runtime aligns with Inc(v)/Adj(v)) instead
// of the global configuration. The floating-point operations run in the
// identical order, so the result is bit-for-bit the centralized marginal.
func marginalSlots(m *mrf.MRF, v int, edgeIDs []int64, nbrX []int, out []float64) bool {
	b := m.VertexB[v]
	for c := 0; c < m.Q; c++ {
		out[c] = b[c]
	}
	for i, xu := range nbrX {
		a := m.EdgeA[edgeIDs[i]]
		for c := 0; c < m.Q; c++ {
			if out[c] != 0 {
				out[c] *= a.At(c, xu)
			}
		}
	}
	total := 0.0
	for c := 0; c < m.Q; c++ {
		total += out[c]
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for c := 0; c < m.Q; c++ {
		out[c] *= inv
	}
	return true
}

// RunLubyGlauber executes `rounds` chain iterations of Algorithm 1 as a
// LOCAL protocol from init with the given seed, returning the sampled
// configuration and the run's communication statistics. The trajectory is
// bit-identical to `rounds` calls of chains.LubyGlauberRound with the same
// seed.
func RunLubyGlauber(m *mrf.MRF, init []int, seed uint64, rounds int) ([]int, localmodel.Stats, error) {
	if err := validateMRF(m, init); err != nil {
		return nil, localmodel.Stats{}, err
	}
	r := localmodel.New(m.G, localmodel.Config{SharedSeed: seed}, func(v int) localmodel.Protocol {
		return &lubyNode{m: m, seed: seed, rounds: rounds, x: init[v]}
	})
	return r.Run(rounds + 1)
}

// --- LocalMetropolis (Algorithm 2) -------------------------------------------

// lmNode runs one vertex of the LocalMetropolis protocol. Each message is
// exactly 4 bytes — the sender's current spin and its fresh proposal, two
// uint16s — so protocol round t delivers everything chain round t-1 needs:
// both endpoints evaluate the shared per-edge coin PRF(seed, TagCoin, e,
// t-1) themselves, with the three activity factors multiplied in canonical
// (U, V) operand order so the product agrees bit-for-bit.
type lmNode struct {
	m        *mrf.MRF
	seed     uint64
	rounds   int
	drop     bool
	coloring bool

	env  localmodel.Env
	x    int
	prop int
}

func (n *lmNode) Init(env localmodel.Env) { n.env = env }

func (n *lmNode) Round(t int, in [][]byte) ([][]byte, bool) {
	if t > 0 {
		r := uint64(t - 1)
		ok := true
		for i, msg := range in {
			theirX := int(binary.LittleEndian.Uint16(msg))
			theirProp := int(binary.LittleEndian.Uint16(msg[2:]))
			var xU, xV, sU, sV int
			if n.env.IsEdgeU[i] {
				xU, xV, sU, sV = n.x, theirX, n.prop, theirProp
			} else {
				xU, xV, sU, sV = theirX, n.x, theirProp, n.prop
			}
			var pass bool
			if n.coloring {
				pass = sU != sV && sV != xU
				if !n.drop {
					pass = pass && sU != xV
				}
			} else {
				a := n.m.NormalizedEdge(int(n.env.EdgeIDs[i]))
				p := a.At(sU, sV) * a.At(xU, sV)
				if !n.drop {
					p *= a.At(sU, xV)
				}
				coin := rng.PRFFloat64(n.seed, chains.TagCoin, uint64(n.env.EdgeIDs[i]), r)
				pass = coin < p
			}
			if !pass {
				ok = false
			}
		}
		if ok {
			n.x = n.prop
		}
	}
	if t >= n.rounds {
		return nil, true
	}
	u := rng.PRFFloat64(n.seed, chains.TagUpdate, uint64(n.env.V), uint64(t))
	if n.coloring {
		n.prop = int(u * float64(n.m.Q))
	} else {
		n.prop = rng.CategoricalU(n.m.ProposalRow(n.env.V), u)
	}
	out := make([][]byte, n.env.Deg)
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint16(buf, uint16(n.x))
	binary.LittleEndian.PutUint16(buf[2:], uint16(n.prop))
	for i := range out {
		out[i] = buf
	}
	return out, false
}

func (n *lmNode) Output() int { return n.x }

// NewLocalMetropolisFactory returns the per-vertex protocol constructor for
// Algorithm 2, for use with localmodel.New. Run the protocol for rounds+1
// LOCAL rounds to execute `rounds` chain iterations. For coloring models the
// nodes use the deterministic three-rule filter of §4.2 — the same fast path
// the centralized chains.Sampler takes, so trajectories still coincide.
func NewLocalMetropolisFactory(m *mrf.MRF, init []int, seed uint64, rounds int, dropRule3 bool) func(v int) localmodel.Protocol {
	coloring := m.IsColoringModel()
	return func(v int) localmodel.Protocol {
		return &lmNode{m: m, seed: seed, rounds: rounds, drop: dropRule3, coloring: coloring, x: init[v]}
	}
}

// RunLocalMetropolis executes `rounds` chain iterations of Algorithm 2 as a
// LOCAL protocol. The trajectory is bit-identical to the centralized
// chains.Sampler with the same model, init and seed.
func RunLocalMetropolis(m *mrf.MRF, init []int, seed uint64, rounds int) ([]int, localmodel.Stats, error) {
	if err := validateMRF(m, init); err != nil {
		return nil, localmodel.Stats{}, err
	}
	r := localmodel.New(m.G, localmodel.Config{SharedSeed: seed},
		NewLocalMetropolisFactory(m, init, seed, rounds, false))
	return r.Run(rounds + 1)
}
