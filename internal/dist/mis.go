package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"locsample/internal/graph"
	"locsample/internal/localmodel"
	"locsample/internal/rng"
)

// TagMISBeta keys the per-(vertex, round) lottery numbers of Luby's MIS
// protocol. It lives outside the chains/csp tag spaces so MIS randomness
// never collides with sampler randomness under a shared seed.
const TagMISBeta = 0x2001

// MIS node states / wire statuses.
const (
	misUndecided = 0
	misIn        = 1
	misOut       = 2
)

// misNode runs one vertex of Luby's maximal-independent-set protocol — the
// O(log n)-round LOCAL algorithm the paper contrasts with its Ω(diam)
// sampling lower bound (§1.1). In round t every undecided node announces a
// lottery number β_v(t); at round t+1 a node that beat every still-active
// neighbor joins the MIS, announces, and halts, and neighbors of members
// drop out. Messages are 9 bytes (status byte + β) or 1 byte (final
// announcement).
type misNode struct {
	seed uint64

	env     localmodel.Env
	state   byte
	active  []bool
	nbrBeta []float64
}

func (n *misNode) Init(env localmodel.Env) {
	n.env = env
	n.active = make([]bool, env.Deg)
	n.nbrBeta = make([]float64, env.Deg)
}

func (n *misNode) Round(t int, in [][]byte) ([][]byte, bool) {
	if t > 0 {
		anyIn := false
		for i, msg := range in {
			if msg == nil {
				n.active[i] = false
				continue
			}
			switch msg[0] {
			case misIn:
				anyIn = true
				n.active[i] = false
			case misOut:
				n.active[i] = false
			default:
				n.active[i] = true
				n.nbrBeta[i] = math.Float64frombits(binary.LittleEndian.Uint64(msg[1:]))
			}
		}
		if anyIn {
			n.state = misOut
			return n.broadcast([]byte{misOut}), true
		}
		betaV := rng.PRFFloat64(n.seed, TagMISBeta, uint64(n.env.V), uint64(t-1))
		won := true
		for i := range n.active {
			if n.active[i] && n.nbrBeta[i] >= betaV {
				won = false
				break
			}
		}
		if won {
			n.state = misIn
			return n.broadcast([]byte{misIn}), true
		}
	}
	buf := make([]byte, 9)
	buf[0] = misUndecided
	beta := rng.PRFFloat64(n.seed, TagMISBeta, uint64(n.env.V), uint64(t))
	binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(beta))
	return n.broadcast(buf), false
}

func (n *misNode) broadcast(msg []byte) [][]byte {
	out := make([][]byte, n.env.Deg)
	for i := range out {
		out[i] = msg
	}
	return out
}

func (n *misNode) Output() int {
	switch n.state {
	case misIn:
		return 1
	case misOut:
		return 0
	default:
		return -1
	}
}

// RunMIS runs Luby's MIS protocol on g until every node has decided (or the
// round budget runs out, which is an error). The output marks MIS members
// with 1; Stats.Rounds is the protocol's round count, the quantity the E9
// separation experiment compares against the Ω(diam) sampling scale.
func RunMIS(g *graph.Graph, seed uint64, maxRounds int) ([]int, localmodel.Stats, error) {
	r := localmodel.New(g, localmodel.Config{SharedSeed: seed}, func(v int) localmodel.Protocol {
		return &misNode{seed: seed}
	})
	out, stats, err := r.Run(maxRounds)
	if err != nil {
		return nil, stats, err
	}
	for v, x := range out {
		if x < 0 {
			return nil, stats, fmt.Errorf("dist: MIS round budget %d exhausted with vertex %d undecided", maxRounds, v)
		}
	}
	return out, stats, nil
}
