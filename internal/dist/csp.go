package dist

import (
	"encoding/binary"
	"fmt"

	"locsample/internal/csp"
	"locsample/internal/graph"
	"locsample/internal/localmodel"
	"locsample/internal/rng"
)

// cspNode runs one vertex of the hypergraph LubyGlauber protocol for
// weighted local CSPs (§3 remark). The hypergraph neighborhood Γ(v) — every
// vertex sharing a constraint with v — reaches graph distance 2 when
// constraint scopes live on inclusive neighborhoods (as cover constraints
// do), so each chain iteration costs two LOCAL rounds: an even round where
// every node sends its (id, spin) tuple, and an odd round where every node
// relays the tuples it received, putting the whole 2-ball's state within
// reach. Lottery numbers are evaluated from the shared seed and the ids the
// CSP structure already names, exactly as csp.LubyGlauberRoundPRF does, so
// the trajectory matches the centralized replay bit-for-bit.
type cspNode struct {
	c      *csp.CSP
	seed   uint64
	rounds int

	env   localmodel.Env
	sigma []int
	marg  []float64
}

func (n *cspNode) Init(env localmodel.Env) {
	n.env = env
	n.marg = make([]float64, n.c.Q)
}

const cspTupleBytes = 8

func putTuple(buf []byte, id, x int) {
	binary.LittleEndian.PutUint32(buf, uint32(id))
	binary.LittleEndian.PutUint32(buf[4:], uint32(x))
}

func (n *cspNode) applyTuples(msg []byte) {
	for o := 0; o+cspTupleBytes <= len(msg); o += cspTupleBytes {
		id := int(binary.LittleEndian.Uint32(msg[o:]))
		x := int(binary.LittleEndian.Uint32(msg[o+4:]))
		n.sigma[id] = x
	}
}

func (n *cspNode) Round(t int, in [][]byte) ([][]byte, bool) {
	if t%2 == 1 {
		// Relay round: apply the direct tuples and forward them, so
		// 2-hop vertices see them next round.
		total := 0
		for _, msg := range in {
			total += len(msg)
		}
		bundle := make([]byte, 0, total)
		for _, msg := range in {
			n.applyTuples(msg)
			bundle = append(bundle, msg...)
		}
		out := make([][]byte, n.env.Deg)
		for i := range out {
			out[i] = bundle
		}
		return out, false
	}
	if t > 0 {
		for _, msg := range in {
			n.applyTuples(msg)
		}
		r := uint64(t/2 - 1)
		v := n.env.V
		betaV := rng.PRFFloat64(n.seed, csp.TagBeta, uint64(v), r)
		isMax := true
		for _, u := range n.c.Neighborhood(v) {
			if rng.PRFFloat64(n.seed, csp.TagBeta, uint64(u), r) >= betaV {
				isMax = false
				break
			}
		}
		if isMax && n.c.MarginalInto(v, n.sigma, n.marg) {
			u := rng.PRFFloat64(n.seed, csp.TagUpdate, uint64(v), r)
			n.sigma[v] = rng.CategoricalU(n.marg, u)
		}
		if t/2 >= n.rounds {
			return nil, true
		}
	}
	out := make([][]byte, n.env.Deg)
	buf := make([]byte, cspTupleBytes)
	putTuple(buf, n.env.V, n.sigma[n.env.V])
	for i := range out {
		out[i] = buf
	}
	return out, false
}

func (n *cspNode) Output() int { return n.sigma[n.env.V] }

// scopeWithinRelayReach reports whether every pair of scope vertices is
// identical, adjacent on g, or joined by a common neighbor — the "scope
// radius ≤ 1" condition under which the two-round relay delivers every
// scope member's spin.
func scopeWithinRelayReach(g *graph.Graph, scope []int32) bool {
	for i, u := range scope {
		for _, v := range scope[i+1:] {
			if u == v || g.HasEdge(int(u), int(v)) {
				continue
			}
			ok := false
			for _, w := range g.Adj(int(u)) {
				if g.HasEdge(int(w), int(v)) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// RunCSPLubyGlauber executes `rounds` iterations of the hypergraph
// LubyGlauber chain on CSP c as a LOCAL protocol over network g (two
// communication rounds per chain iteration). Constraint scopes must have
// radius ≤ 1 on g. The trajectory is bit-identical to `rounds` calls of
// csp.LubyGlauberRoundPRF with the same seed.
func RunCSPLubyGlauber(g *graph.Graph, c *csp.CSP, init []int, seed uint64, rounds int) ([]int, localmodel.Stats, error) {
	if c.N != g.N() {
		return nil, localmodel.Stats{}, fmt.Errorf("dist: CSP has %d vertices, network %d", c.N, g.N())
	}
	if len(init) != c.N {
		return nil, localmodel.Stats{}, fmt.Errorf("dist: init length %d for %d vertices", len(init), c.N)
	}
	if rounds <= 0 {
		return append([]int(nil), init...), localmodel.Stats{}, nil
	}
	for ci := range c.Cons {
		if !scopeWithinRelayReach(g, c.Cons[ci].Scope) {
			return nil, localmodel.Stats{}, fmt.Errorf("dist: constraint %d has scope radius > 1 on the network", ci)
		}
	}
	r := localmodel.New(g, localmodel.Config{SharedSeed: seed}, func(v int) localmodel.Protocol {
		return &cspNode{c: c, seed: seed, rounds: rounds, sigma: append([]int(nil), init...)}
	})
	return r.Run(2*rounds + 1)
}
