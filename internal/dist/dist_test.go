package dist

import (
	"testing"

	"locsample/internal/chains"
	"locsample/internal/csp"
	"locsample/internal/graph"
	"locsample/internal/localmodel"
	"locsample/internal/mrf"
)

// TestLubyGlauberMatchesCentralized pins the determinism contract: the
// message-passing protocol reproduces the centralized chain bit-for-bit on
// coloring, hardcore and Ising models.
func TestLubyGlauberMatchesCentralized(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *mrf.MRF
	}{
		{"coloring", mrf.Coloring(graph.Cycle(20), 5)},
		{"hardcore", mrf.Hardcore(graph.Grid(4, 5), 0.9)},
		{"ising", mrf.Ising(graph.Torus(4, 4), 0.8, 0.5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			init, err := chains.GreedyFeasible(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			const seed, rounds = 99, 30
			s := chains.NewSampler(tc.m, init, seed, chains.LubyGlauber, chains.Options{})
			s.Run(rounds)
			out, stats, err := RunLubyGlauber(tc.m, init, seed, rounds)
			if err != nil {
				t.Fatal(err)
			}
			for v := range out {
				if out[v] != s.X[v] {
					t.Fatalf("trajectories diverge at vertex %d: dist=%d central=%d", v, out[v], s.X[v])
				}
			}
			if stats.Messages == 0 {
				t.Fatal("no messages exchanged")
			}
			if stats.MaxMessageBytes > 8 {
				t.Fatalf("message too large: %d bytes", stats.MaxMessageBytes)
			}
		})
	}
}

// TestLocalMetropolisMatchesCentralized covers both the §4.2 coloring fast
// path and the general activity path (where the per-edge product must agree
// bit-for-bit across endpoints), with and without rule 3.
func TestLocalMetropolisMatchesCentralized(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *mrf.MRF
		drop bool
	}{
		{"coloring", mrf.Coloring(graph.Cycle(20), 8), false},
		{"coloring-q12", mrf.Coloring(graph.Grid(5, 5), 12), false},
		{"coloring-droprule3", mrf.Coloring(graph.Cycle(16), 8), true},
		{"ising", mrf.Ising(graph.Grid(4, 4), 1.1, 0.7), false},
		{"potts", mrf.Potts(graph.Torus(4, 4), 3, 0.9), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			init, err := chains.GreedyFeasible(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			const seed, rounds = 7, 25
			s := chains.NewSampler(tc.m, init, seed, chains.LocalMetropolis,
				chains.Options{DropRule3: tc.drop})
			s.Run(rounds)
			r := localmodel.New(tc.m.G, localmodel.Config{SharedSeed: seed},
				NewLocalMetropolisFactory(tc.m, init, seed, rounds, tc.drop))
			out, stats, err := r.Run(rounds + 1)
			if err != nil {
				t.Fatal(err)
			}
			for v := range out {
				if out[v] != s.X[v] {
					t.Fatalf("trajectories diverge at vertex %d: dist=%d central=%d", v, out[v], s.X[v])
				}
			}
			if stats.MaxMessageBytes != 4 {
				t.Fatalf("LocalMetropolis messages must be 4 bytes, got %d", stats.MaxMessageBytes)
			}
		})
	}
}

// TestCSPLubyGlauberMatchesCentralized checks the two-round relay protocol
// against the centralized hypergraph chain on dominating-set CSPs, whose
// hypergraph neighborhoods reach graph distance 2.
func TestCSPLubyGlauberMatchesCentralized(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid4x4", graph.Grid(4, 4)},
		{"cycle9", graph.Cycle(9)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := csp.DominatingSet(tc.g)
			init := make([]int, c.N)
			for i := range init {
				init[i] = 1
			}
			const seed, rounds = 2017, 20
			x := append([]int(nil), init...)
			sc := csp.NewScratch(c)
			for k := 0; k < rounds; k++ {
				csp.LubyGlauberRoundPRF(c, x, seed, k, sc)
			}
			out, stats, err := RunCSPLubyGlauber(tc.g, c, init, seed, rounds)
			if err != nil {
				t.Fatal(err)
			}
			for v := range out {
				if out[v] != x[v] {
					t.Fatalf("trajectories diverge at vertex %d: dist=%d central=%d", v, out[v], x[v])
				}
			}
			if got, want := stats.Rounds, 2*rounds+1; got != want {
				t.Fatalf("protocol used %d rounds, want %d (two per chain iteration)", got, want)
			}
		})
	}
}

// TestCSPScopeRadiusValidation: a constraint spanning graph distance > 2 is
// out of relay reach and must be rejected.
func TestCSPScopeRadiusValidation(t *testing.T) {
	g := graph.Path(4)
	b := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	c, err := csp.New(4, 2, b, []csp.Constraint{{
		Scope: []int32{0, 3},
		F:     func(vals []int) float64 { return float64(vals[0] + vals[1]) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunCSPLubyGlauber(g, c, []int{1, 1, 1, 1}, 1, 5); err == nil {
		t.Fatal("scope of radius > 1 accepted")
	}
}

// TestRunMIS checks Luby's protocol produces a maximal independent set in
// O(log n)-scale rounds, deterministically per seed.
func TestRunMIS(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(64), graph.Grid(8, 8), graph.Complete(10)} {
		out, stats, err := RunMIS(g, 5, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsMaximalIndependentSet(out) {
			t.Fatal("output is not a maximal independent set")
		}
		if stats.Rounds >= 10000 {
			t.Fatalf("suspiciously many rounds: %d", stats.Rounds)
		}
		again, _, err := RunMIS(g, 5, 10000)
		if err != nil {
			t.Fatal(err)
		}
		for v := range out {
			if out[v] != again[v] {
				t.Fatal("same seed produced different MIS")
			}
		}
	}
}
