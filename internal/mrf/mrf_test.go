package mrf

import (
	"math"
	"testing"
	"testing/quick"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(3)
	m.Set(1, 2, 5)
	m.Set(2, 1, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("Mat At/Set broken")
	}
	if !m.IsSymmetric() {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	m.Set(0, 1, 3)
	if m.IsSymmetric() {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if m.Max() != 5 {
		t.Fatalf("Max=%v", m.Max())
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases original")
	}
}

func TestNewValidation(t *testing.T) {
	g := graph.Path(3)
	okMat := colorMat(3)
	okB := [][]float64{onesVec(3), onesVec(3), onesVec(3)}

	if _, err := New(g, 1, []*Mat{okMat, okMat}, okB); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := New(g, 3, []*Mat{okMat}, okB); err == nil {
		t.Error("wrong edge count accepted")
	}
	if _, err := New(g, 3, []*Mat{okMat, okMat}, okB[:2]); err == nil {
		t.Error("wrong vertex count accepted")
	}
	bad := NewMat(3)
	bad.Set(0, 1, 1) // asymmetric
	if _, err := New(g, 3, []*Mat{bad, okMat}, okB); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	zero := NewMat(3)
	if _, err := New(g, 3, []*Mat{zero, okMat}, okB); err == nil {
		t.Error("zero matrix accepted")
	}
	neg := colorMat(3)
	neg.Set(0, 1, -1)
	neg.Set(1, 0, -1)
	if _, err := New(g, 3, []*Mat{neg, okMat}, okB); err == nil {
		t.Error("negative entry accepted")
	}
	zb := [][]float64{{0, 0, 0}, onesVec(3), onesVec(3)}
	if _, err := New(g, 3, []*Mat{okMat, okMat}, zb); err == nil {
		t.Error("zero-mass vertex activity accepted")
	}
	wrongQ := NewMat(2)
	wrongQ.Set(0, 1, 1)
	wrongQ.Set(1, 0, 1)
	if _, err := New(g, 3, []*Mat{wrongQ, okMat}, okB); err == nil {
		t.Error("wrong-size matrix accepted")
	}
}

func TestColoringWeights(t *testing.T) {
	g := graph.Cycle(4)
	m := Coloring(g, 3)
	if w := m.Weight([]int{0, 1, 0, 1}); w != 1 {
		t.Fatalf("proper coloring weight %v, want 1", w)
	}
	if w := m.Weight([]int{0, 0, 1, 2}); w != 0 {
		t.Fatalf("improper coloring weight %v, want 0", w)
	}
	if !m.Feasible([]int{0, 1, 2, 1}) || m.Feasible([]int{1, 1, 1, 1}) {
		t.Fatal("Feasible wrong")
	}
	if lw := m.LogWeight([]int{0, 1, 0, 1}); lw != 0 {
		t.Fatalf("log-weight %v, want 0", lw)
	}
	if lw := m.LogWeight([]int{0, 0, 1, 2}); !math.IsInf(lw, -1) {
		t.Fatalf("infeasible log-weight %v, want -Inf", lw)
	}
}

func TestHardcoreWeights(t *testing.T) {
	g := graph.Path(3)
	m := Hardcore(g, 2.0)
	// {1,0,1} is an independent set with 2 occupied vertices: weight λ².
	if w := m.Weight([]int{1, 0, 1}); w != 4 {
		t.Fatalf("hardcore weight %v, want 4", w)
	}
	if w := m.Weight([]int{1, 1, 0}); w != 0 {
		t.Fatalf("blocked pair weight %v, want 0", w)
	}
	if w := m.Weight([]int{0, 0, 0}); w != 1 {
		t.Fatalf("empty set weight %v, want 1", w)
	}
}

func TestVertexCoverWeights(t *testing.T) {
	g := graph.Path(3)
	m := VertexCover(g)
	if w := m.Weight([]int{0, 1, 0}); w != 1 {
		t.Fatalf("cover {1} weight %v", w)
	}
	if w := m.Weight([]int{1, 0, 0}); w != 0 {
		t.Fatalf("non-cover weight %v", w)
	}
	// Cross-check against the graph predicate over all configurations.
	sigma := make([]int, 3)
	for s := 0; s < 8; s++ {
		for i := range sigma {
			sigma[i] = (s >> i) & 1
		}
		want := g.IsVertexCover(sigma)
		if got := m.Feasible(sigma); got != want {
			t.Fatalf("VertexCover feasibility mismatch at %v: got %v", sigma, got)
		}
	}
}

func TestIndependentSetMatchesPredicate(t *testing.T) {
	g := graph.Cycle(5)
	m := UniformIndependentSet(g)
	sigma := make([]int, 5)
	for s := 0; s < 32; s++ {
		for i := range sigma {
			sigma[i] = (s >> i) & 1
		}
		if m.Feasible(sigma) != g.IsIndependentSet(sigma) {
			t.Fatalf("IS feasibility mismatch at %v", sigma)
		}
		if m.Feasible(sigma) && m.Weight(sigma) != 1 {
			t.Fatalf("uniform IS weight %v at %v", m.Weight(sigma), sigma)
		}
	}
}

func TestPottsAndIsing(t *testing.T) {
	g := graph.Path(2)
	p := Potts(g, 3, 2.0)
	if w := p.Weight([]int{1, 1}); w != 2 {
		t.Fatalf("Potts equal-spin weight %v", w)
	}
	if w := p.Weight([]int{0, 1}); w != 1 {
		t.Fatalf("Potts unequal-spin weight %v", w)
	}
	is := Ising(g, 3.0, 0.5)
	// {1,1}: edge β=3, fields 0.5*0.5 → 0.75.
	if w := is.Weight([]int{1, 1}); math.Abs(w-0.75) > 1e-15 {
		t.Fatalf("Ising weight %v, want 0.75", w)
	}
	if w := is.Weight([]int{0, 1}); math.Abs(w-0.5) > 1e-15 {
		t.Fatalf("Ising weight %v, want 0.5", w)
	}
}

func TestListColoring(t *testing.T) {
	g := graph.Path(3)
	m, err := ListColoring(g, 3, [][]int{{0, 1}, {1, 2}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Feasible([]int{1, 2, 0}) {
		t.Fatal("valid list coloring rejected")
	}
	if m.Feasible([]int{2, 1, 0}) {
		t.Fatal("color outside list accepted")
	}
	if m.Feasible([]int{0, 0, 0}) {
		t.Fatal("improper coloring accepted")
	}
	if _, err := ListColoring(g, 3, [][]int{{0}, {5}, {0}}); err == nil {
		t.Fatal("out-of-range list color accepted")
	}
	if _, err := ListColoring(g, 3, [][]int{{0}}); err == nil {
		t.Fatal("wrong list count accepted")
	}
}

func TestMarginalColoring(t *testing.T) {
	// Center of a star with 3 leaves colored {0, 1, 1}: available colors for
	// the center among q=4 are {2, 3}, each with probability 1/2.
	g := graph.Star(4)
	m := Coloring(g, 4)
	x := []int{9, 0, 1, 1} // center value irrelevant
	out := make([]float64, 4)
	x[0] = 0
	if !m.MarginalInto(0, x, out) {
		t.Fatal("marginal undefined")
	}
	want := []float64{0, 0, 0.5, 0.5}
	for c := range want {
		if math.Abs(out[c]-want[c]) > 1e-15 {
			t.Fatalf("marginal %v, want %v", out, want)
		}
	}
}

func TestMarginalHardcore(t *testing.T) {
	g := graph.Path(3)
	m := Hardcore(g, 2.0)
	out := make([]float64, 2)
	// Middle vertex with both neighbors empty: P(occupied) = λ/(1+λ) = 2/3.
	if !m.MarginalInto(1, []int{0, 0, 0}, out) {
		t.Fatal("marginal undefined")
	}
	if math.Abs(out[1]-2.0/3) > 1e-15 {
		t.Fatalf("marginal %v, want [1/3 2/3]", out)
	}
	// Neighbor occupied: P(occupied) = 0.
	if !m.MarginalInto(1, []int{1, 0, 0}, out) {
		t.Fatal("marginal undefined")
	}
	if out[1] != 0 || out[0] != 1 {
		t.Fatalf("marginal %v, want [1 0]", out)
	}
}

func TestMarginalSumsToOne(t *testing.T) {
	r := rng.New(5)
	g := graph.Gnp(8, 0.3, r)
	m := Coloring(g, g.MaxDeg()+2)
	out := make([]float64, m.Q)
	x := make([]int, g.N())
	for trial := 0; trial < 50; trial++ {
		for i := range x {
			x[i] = r.Intn(m.Q)
		}
		for v := 0; v < g.N(); v++ {
			if !m.MarginalInto(v, x, out) {
				continue
			}
			sum := 0.0
			for _, p := range out {
				sum += p
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("marginal sums to %v", sum)
			}
		}
	}
}

func TestEdgeCheckProbColoring(t *testing.T) {
	g := graph.Path(2)
	m := Coloring(g, 3)
	// No filter rule fires (σu≠σv, σv≠Xu, σu≠Xv): pass prob 1. Note σv may
	// equal Xv — re-proposing one's own color is allowed.
	if p := m.EdgeCheckProb(0, 0, 1, 2, 1); p != 1 {
		t.Fatalf("pass prob %v, want 1", p)
	}
	// v proposes u's current color: rule 1 fires.
	if p := m.EdgeCheckProb(0, 2, 1, 0, 2); p != 0 {
		t.Fatalf("pass prob %v, want 0 (σ_v = X_u)", p)
	}
	// Same proposals: rule 2 fires.
	if p := m.EdgeCheckProb(0, 0, 1, 2, 2); p != 0 {
		t.Fatalf("pass prob %v, want 0 (σ_u = σ_v)", p)
	}
	// u proposes v's current color: rule 3 fires.
	if p := m.EdgeCheckProb(0, 0, 1, 1, 2); p != 0 {
		t.Fatalf("pass prob %v, want 0 (σ_u = X_v)", p)
	}
}

func TestEdgeCheckProbSymmetric(t *testing.T) {
	// The two endpoints must compute the same pass probability from their
	// own perspective — this is what makes the shared-coin trick sound.
	g := graph.Path(2)
	m := Ising(g, 0.7, 1)
	err := quick.Check(func(xu, xv, su, sv uint8) bool {
		a, b, c, d := int(xu%2), int(xv%2), int(su%2), int(sv%2)
		return m.EdgeCheckProb(0, a, b, c, d) == m.EdgeCheckProb(0, b, a, d, c)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestProposalDist(t *testing.T) {
	g := graph.Path(2)
	m := Hardcore(g, 3.0)
	out := make([]float64, 2)
	m.ProposalDistInto(0, out)
	if math.Abs(out[0]-0.25) > 1e-15 || math.Abs(out[1]-0.75) > 1e-15 {
		t.Fatalf("proposal dist %v, want [0.25 0.75]", out)
	}
}

func TestMarginalsAlwaysDefined(t *testing.T) {
	g := graph.Cycle(4)
	// q = Δ+1 = 3 guarantees well-defined marginals for colorings (§3 fn. 1).
	ok, err := Coloring(g, 3).MarginalsAlwaysDefined(1 << 20)
	if err != nil || !ok {
		t.Fatalf("coloring q=Δ+1: ok=%v err=%v", ok, err)
	}
	// q = 2 on a path of 3: middle vertex with neighbors colored 0 and 1 has
	// no available color.
	ok, err = Coloring(graph.Path(3), 2).MarginalsAlwaysDefined(1 << 20)
	if err != nil || ok {
		t.Fatalf("coloring q=2 should have undefined marginals somewhere: ok=%v err=%v", ok, err)
	}
	// Hardcore marginals are always defined (empty spin always allowed).
	ok, err = Hardcore(g, 1.5).MarginalsAlwaysDefined(1 << 20)
	if err != nil || !ok {
		t.Fatalf("hardcore: ok=%v err=%v", ok, err)
	}
}

func TestCondition6(t *testing.T) {
	// §4.1: for colorings, condition (6) holds when q >= Δ+1 and q >= 3.
	g := graph.Cycle(4) // Δ = 2
	ok, err := Coloring(g, 3).Condition6Holds(1 << 22)
	if err != nil || !ok {
		t.Fatalf("q=Δ+1=3: ok=%v err=%v", ok, err)
	}
	// q = Δ on a star: the center may see all q colors among its leaves.
	ok, err = Coloring(graph.Star(4), 3).Condition6Holds(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("q=Δ should violate condition (6) on a star")
	}
	// q = 2 violates the q >= 3 requirement even on a single edge.
	ok, err = Coloring(graph.Path(2), 2).Condition6Holds(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("q=2 should violate condition (6)")
	}
	// Hardcore always satisfies (6): the empty spin never conflicts.
	ok, err = Hardcore(graph.Star(4), 2).Condition6Holds(1 << 22)
	if err != nil || !ok {
		t.Fatalf("hardcore: ok=%v err=%v", ok, err)
	}
}

func TestBudgetErrors(t *testing.T) {
	g := graph.Cycle(12)
	m := Coloring(g, 5)
	if _, err := m.MarginalsAlwaysDefined(100); err == nil {
		t.Fatal("budget overflow not reported")
	}
	if _, err := m.Condition6Holds(100); err == nil {
		t.Fatal("budget overflow not reported")
	}
}

func TestDobrushinAlphaColoring(t *testing.T) {
	g := graph.Cycle(6) // d_v = 2 everywhere
	if a := DobrushinAlphaColoring(g, UniformQs(6, 5)); math.Abs(a-2.0/3) > 1e-15 {
		t.Fatalf("alpha %v, want 2/3", a)
	}
	// q = 2Δ+1 = 5 gives α = 2/3 < 1 (Dobrushin holds); q = 4 gives α = 1.
	if a := DobrushinAlphaColoring(g, UniformQs(6, 4)); a != 1 {
		t.Fatalf("alpha %v, want 1", a)
	}
	if a := DobrushinAlphaColoring(g, UniformQs(6, 2)); !math.IsInf(a, 1) {
		t.Fatalf("alpha %v, want +Inf", a)
	}
	// Isolated vertices contribute nothing.
	empty := graph.NewBuilder(3).Build()
	if a := DobrushinAlphaColoring(empty, UniformQs(3, 2)); a != 0 {
		t.Fatalf("alpha %v, want 0", a)
	}
}

func TestLambdaC(t *testing.T) {
	// λ_c(Δ) = (Δ−1)^(Δ−1)/(Δ−2)^Δ. Δ=3: 4/1 = 4. Δ=4: 27/16. Δ=5: 256/243.
	cases := []struct {
		delta int
		want  float64
	}{
		{3, 4}, {4, 27.0 / 16}, {5, 256.0 / 243}, {6, 3125.0 / 4096},
	}
	for _, tc := range cases {
		if got := LambdaC(tc.delta); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("LambdaC(%d) = %v, want %v", tc.delta, got, tc.want)
		}
	}
	// Uniform IS (λ=1) is non-unique exactly when λ_c(Δ) < 1 i.e. Δ >= 6
	// (Theorem 1.3's Δ >= 6 requirement).
	if LambdaC(5) <= 1 {
		t.Error("λ_c(5) should exceed 1")
	}
	if LambdaC(6) >= 1 {
		t.Error("λ_c(6) should be below 1")
	}
}

func TestNormalizedEdge(t *testing.T) {
	g := graph.Path(2)
	m := Ising(g, 4.0, 1)
	norm := m.NormalizedEdge(0)
	if norm.At(0, 0) != 1 || norm.At(0, 1) != 0.25 {
		t.Fatalf("normalized Ising activity: %v", norm.A)
	}
	// The original matrix must be untouched.
	if m.EdgeA[0].At(0, 0) != 4 {
		t.Fatal("normalization mutated the original activity")
	}
}

// Property: Weight and LogWeight agree (where feasible) on random colorings.
func TestWeightLogWeightAgree(t *testing.T) {
	r := rng.New(17)
	g := graph.Gnp(7, 0.4, r)
	m := Potts(g, 3, 1.7)
	x := make([]int, g.N())
	for trial := 0; trial < 200; trial++ {
		for i := range x {
			x[i] = r.Intn(3)
		}
		w, lw := m.Weight(x), m.LogWeight(x)
		if math.Abs(math.Log(w)-lw) > 1e-9 {
			t.Fatalf("Weight/LogWeight disagree: %v vs %v", math.Log(w), lw)
		}
	}
}

// refMarginalInto is the pre-fusion MarginalInto (per-vertex Adj/Inc slice
// walk); the fused flat-CSR kernel must reproduce its float64s bitwise.
func refMarginalInto(m *MRF, v int, x []int, out []float64) bool {
	b := m.VertexB[v]
	for c := 0; c < m.Q; c++ {
		out[c] = b[c]
	}
	adj, inc := m.G.Adj(v), m.G.Inc(v)
	for i, u := range adj {
		a := m.EdgeA[inc[i]]
		xu := x[u]
		for c := 0; c < m.Q; c++ {
			if out[c] != 0 {
				out[c] *= a.At(c, xu)
			}
		}
	}
	total := 0.0
	for c := 0; c < m.Q; c++ {
		total += out[c]
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for c := 0; c < m.Q; c++ {
		out[c] *= inv
	}
	return true
}

// randomTestMRF builds an MRF with per-edge random symmetric activities and
// random vertex activities — the worst case for kernel-fusion slips, since
// no activity sharing or 0/1 structure can mask an ordering change.
func randomTestMRF(t *testing.T, src *rng.Source, n, q int, p float64) *MRF {
	t.Helper()
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if src.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g := b.Build()
	edgeA := make([]*Mat, g.M())
	for id := range edgeA {
		a := NewMat(q)
		for i := 0; i < q; i++ {
			for j := i; j < q; j++ {
				w := src.Float64() + 0.1
				a.Set(i, j, w)
				a.Set(j, i, w)
			}
		}
		edgeA[id] = a
	}
	vertexB := make([][]float64, n)
	for v := range vertexB {
		row := make([]float64, q)
		for c := range row {
			row[c] = src.Float64() + 0.05
		}
		vertexB[v] = row
	}
	return MustNew(g, q, edgeA, vertexB)
}

func TestMarginalIntoMatchesReference(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n, q := 8+src.Intn(12), 2+src.Intn(5)
		m := randomTestMRF(t, src, n, q, 0.4)
		x := make([]int, n)
		got := make([]float64, q)
		want := make([]float64, q)
		for iter := 0; iter < 50; iter++ {
			for v := range x {
				x[v] = src.Intn(q)
			}
			for v := 0; v < n; v++ {
				okGot := m.MarginalInto(v, x, got)
				okWant := refMarginalInto(m, v, x, want)
				if okGot != okWant {
					t.Fatalf("vertex %d: fused ok=%v, reference ok=%v", v, okGot, okWant)
				}
				if !okGot {
					continue
				}
				for c := 0; c < q; c++ {
					if got[c] != want[c] {
						t.Fatalf("vertex %d color %d: fused %v (%x), reference %v (%x)",
							v, c, got[c], math.Float64bits(got[c]), want[c], math.Float64bits(want[c]))
					}
				}
			}
		}
	}
}

func TestResampleUMatchesMarginalPlusCategorical(t *testing.T) {
	src := rng.New(123)
	for trial := 0; trial < 10; trial++ {
		n, q := 6+src.Intn(8), 2+src.Intn(6)
		m := randomTestMRF(t, src, n, q, 0.5)
		x := make([]int, n)
		marg := make([]float64, q)
		scratch := make([]float64, q)
		for iter := 0; iter < 100; iter++ {
			for v := range x {
				x[v] = src.Intn(q)
			}
			v := src.Intn(n)
			u := src.Float64()
			c, ok := m.ResampleU(v, x, scratch, u)
			if !ok {
				if refMarginalInto(m, v, x, marg) {
					t.Fatalf("ResampleU undefined where reference marginal is defined")
				}
				continue
			}
			if !refMarginalInto(m, v, x, marg) {
				t.Fatalf("ResampleU defined where reference marginal is undefined")
			}
			if want := rng.CategoricalU(marg, u); c != want {
				t.Fatalf("ResampleU(%d, u=%v) = %d, reference draw = %d", v, u, c, want)
			}
		}
	}
}

func TestProposeUMatchesCategoricalU(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 10; trial++ {
		n, q := 5+src.Intn(10), 2+src.Intn(30)
		m := randomTestMRF(t, src, n, q, 0.3)
		for iter := 0; iter < 500; iter++ {
			v := src.Intn(n)
			u := src.Float64()
			if got, want := m.ProposeU(v, u), rng.CategoricalU(m.ProposalRow(v), u); got != want {
				t.Fatalf("ProposeU(%d, %v) = %d, CategoricalU = %d", v, u, got, want)
			}
		}
	}
}

func TestProposalCumRowIsRunningSum(t *testing.T) {
	src := rng.New(55)
	m := randomTestMRF(t, src, 10, 7, 0.4)
	for v := 0; v < 10; v++ {
		row, cum := m.ProposalRow(v), m.ProposalCumRow(v)
		acc := 0.0
		for c, w := range row {
			acc += w
			if cum[c] != acc {
				t.Fatalf("vertex %d: cum[%d] = %v, running sum = %v", v, c, cum[c], acc)
			}
		}
	}
}
