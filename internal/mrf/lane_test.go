package mrf

import (
	"testing"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

// laneTestModels are small models with distinct marginal shapes: hard
// constraints (coloring), soft interactions (Ising), and zero-marginal
// states (hardcore).
func laneTestModels() map[string]*MRF {
	return map[string]*MRF{
		"coloring": Coloring(graph.Grid(4, 4), 5),
		"ising":    Ising(graph.Grid(4, 4), 1.2, 0.7),
		"hardcore": Hardcore(graph.Cycle(9), 1.5),
	}
}

// laneConfigs builds w distinct feasible-ish configurations and their SoA
// interleaving x[v*w+lane].
func laneConfigs(m *MRF, w int, seed uint64) (flat [][]int, strided []int32) {
	n := m.G.N()
	flat = make([][]int, w)
	strided = make([]int32, n*w)
	for lane := 0; lane < w; lane++ {
		src := rng.New(seed + uint64(lane))
		x := make([]int, n)
		for v := range x {
			x[v] = src.Intn(m.Q)
		}
		flat[lane] = x
		for v := 0; v < n; v++ {
			strided[v*w+lane] = int32(x[v])
		}
	}
	return flat, strided
}

// TestMarginalLaneMatchesSequential pins the SoA lane marginal to the
// flat-configuration kernel bit-for-bit: same weights, same normalization,
// same zero-mass verdicts, at every lane of every width.
func TestMarginalLaneMatchesSequential(t *testing.T) {
	for name, m := range laneTestModels() {
		t.Run(name, func(t *testing.T) {
			for _, w := range []int{1, 3, 8} {
				flat, strided := laneConfigs(m, w, 77)
				want := make([]float64, m.Q)
				got := make([]float64, m.Q)
				for v := 0; v < m.G.N(); v++ {
					for lane := 0; lane < w; lane++ {
						okW := m.MarginalInto(v, flat[lane], want)
						okG := m.MarginalLaneInto(v, strided, w, lane, got)
						if okW != okG {
							t.Fatalf("w=%d lane=%d v=%d: mass verdict %v vs %v", w, lane, v, okW, okG)
						}
						if !okW {
							continue
						}
						for c := 0; c < m.Q; c++ {
							if want[c] != got[c] {
								t.Fatalf("w=%d lane=%d v=%d spin=%d: marginal %v != %v", w, lane, v, c, got[c], want[c])
							}
						}
					}
				}
			}
		})
	}
}

// TestResampleLaneUMatchesSequential: the lane draw equals ResampleU under
// the same uniform.
func TestResampleLaneUMatchesSequential(t *testing.T) {
	m := Coloring(graph.Grid(4, 4), 5)
	const w = 4
	flat, strided := laneConfigs(m, w, 5)
	scratch := make([]float64, m.Q)
	scratch2 := make([]float64, m.Q)
	src := rng.New(9)
	for v := 0; v < m.G.N(); v++ {
		for lane := 0; lane < w; lane++ {
			u := src.Float64()
			cw, okW := m.ResampleU(v, flat[lane], scratch, u)
			cg, okG := m.ResampleLaneU(v, strided, w, lane, scratch2, u)
			if okW != okG || cw != cg {
				t.Fatalf("v=%d lane=%d: (%d,%v) != (%d,%v)", v, lane, cg, okG, cw, okW)
			}
		}
	}
}
