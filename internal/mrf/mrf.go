// Package mrf implements Markov random fields (spin systems) exactly as
// defined in §2.2 of the paper: a graph G(V,E), a spin domain [q], a
// non-negative symmetric q×q edge activity A_e for every edge, and a
// non-negative q-vector vertex activity b_v for every vertex. The Gibbs
// distribution µ assigns each configuration σ ∈ [q]^V probability
// proportional to
//
//	w(σ) = Π_{e=uv∈E} A_e(σ_u,σ_v) · Π_{v∈V} b_v(σ_v).      (Eq. 1)
//
// The package provides the conditional marginals of Eq. (2) (the Glauber
// resampling distribution), the normalized activities Ã_e used by the
// LocalMetropolis filter, the standard models (colorings, list colorings,
// hardcore, Ising, Potts, vertex cover), and Dobrushin-condition helpers.
package mrf

import (
	"fmt"
	"math"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

// Mat is a dense q×q matrix of non-negative activities stored row-major.
type Mat struct {
	Q int
	A []float64
}

// NewMat returns a zero q×q matrix.
func NewMat(q int) *Mat {
	return &Mat{Q: q, A: make([]float64, q*q)}
}

// At returns entry (i, j).
func (m *Mat) At(i, j int) float64 { return m.A[i*m.Q+j] }

// Set assigns entry (i, j).
func (m *Mat) Set(i, j int, v float64) { m.A[i*m.Q+j] = v }

// Max returns the maximum entry.
func (m *Mat) Max() float64 {
	best := math.Inf(-1)
	for _, v := range m.A {
		if v > best {
			best = v
		}
	}
	return best
}

// IsSymmetric reports whether the matrix is symmetric.
func (m *Mat) IsSymmetric() bool {
	for i := 0; i < m.Q; i++ {
		for j := i + 1; j < m.Q; j++ {
			if m.At(i, j) != m.At(j, i) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Q)
	copy(c.A, m.A)
	return c
}

// MRF is a Markov random field on a network. All fields are read-only after
// construction via New.
type MRF struct {
	G *graph.Graph
	Q int
	// EdgeA[id] is the activity matrix of edge id.
	EdgeA []*Mat
	// VertexB[v] is the activity vector of vertex v (length Q).
	VertexB [][]float64
	// edgeNorm[id] = EdgeA[id] scaled so its maximum entry is 1 (the Ã_e of
	// Algorithm 2); precomputed for the LocalMetropolis filter.
	edgeNorm []*Mat
	// prop is the flat n×q table of normalized vertex activities (the
	// LocalMetropolis proposal distributions, Algorithm 2 line 4),
	// precomputed so the chains' inner loops skip the per-round
	// normalization; row v is prop[v*q : (v+1)*q].
	prop []float64
	// propCum is prop's left-to-right running-sum table (same layout):
	// precomputing it once lets every proposal draw binary-search via
	// rng.CategoricalCumU instead of linearly re-summing the row —
	// bit-identical indices, O(log q) instead of O(q) at large q.
	propCum []float64
	// rowPtr/nbr/inc alias the graph's flat CSR adjacency (graph.CSR). The
	// marginal kernel walks them directly instead of fetching the per-vertex
	// Adj/Inc slice headers on the n-sweep hot paths.
	rowPtr, nbr, inc []int32
	// coloring memoizes IsColoringModel: the answer is an O(m·q²)
	// activity scan, and samplers consult it per construction — serving
	// paths that build a chain per draw were paying the scan per draw.
	coloring bool
}

// New validates the activities and assembles an MRF. Every edge matrix must
// be q×q, symmetric, non-negative, and not identically zero; every vertex
// vector must have length q, be non-negative, and have positive total mass.
func New(g *graph.Graph, q int, edgeA []*Mat, vertexB [][]float64) (*MRF, error) {
	if q < 2 {
		return nil, fmt.Errorf("mrf: need q >= 2, got %d", q)
	}
	if len(edgeA) != g.M() {
		return nil, fmt.Errorf("mrf: %d edge activities for %d edges", len(edgeA), g.M())
	}
	if len(vertexB) != g.N() {
		return nil, fmt.Errorf("mrf: %d vertex activities for %d vertices", len(vertexB), g.N())
	}
	// Validate each DISTINCT matrix once: constructors alias one activity
	// across all edges, and the O(q²) scans below would otherwise run per
	// edge ID — minutes of redundant work at 10⁶⁺ edges.
	checked := make(map[*Mat]bool)
	for id, a := range edgeA {
		if checked[a] {
			continue
		}
		if a.Q != q {
			return nil, fmt.Errorf("mrf: edge %d activity is %dx%d, want %dx%d", id, a.Q, a.Q, q, q)
		}
		if !a.IsSymmetric() {
			return nil, fmt.Errorf("mrf: edge %d activity not symmetric", id)
		}
		max := a.Max()
		if max <= 0 {
			return nil, fmt.Errorf("mrf: edge %d activity identically zero", id)
		}
		for _, v := range a.A {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("mrf: edge %d activity has invalid entry %v", id, v)
			}
		}
		checked[a] = true
	}
	for v, b := range vertexB {
		if len(b) != q {
			return nil, fmt.Errorf("mrf: vertex %d activity has length %d, want %d", v, len(b), q)
		}
		total := 0.0
		for _, x := range b {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("mrf: vertex %d activity has invalid entry %v", v, x)
			}
			total += x
		}
		if total <= 0 {
			return nil, fmt.Errorf("mrf: vertex %d activity has zero mass", v)
		}
	}
	m := &MRF{G: g, Q: q, EdgeA: edgeA, VertexB: vertexB}
	// Normalize each DISTINCT activity matrix once and share the result:
	// the model constructors alias one matrix across all edges (a uniform
	// coloring on 10⁶ edges holds one q×q table, not 10⁶), and cloning per
	// edge ID would turn that into m·q² memory — hundreds of GB at the
	// sharded runtime's target scale. edgeNorm entries are read-only.
	m.edgeNorm = make([]*Mat, len(edgeA))
	normOf := make(map[*Mat]*Mat)
	for id, a := range edgeA {
		norm, ok := normOf[a]
		if !ok {
			norm = a.Clone()
			max := a.Max()
			for i := range norm.A {
				norm.A[i] /= max
			}
			normOf[a] = norm
		}
		m.edgeNorm[id] = norm
	}
	m.prop = make([]float64, g.N()*q)
	m.propCum = make([]float64, g.N()*q)
	for v := 0; v < g.N(); v++ {
		row := m.prop[v*q : (v+1)*q]
		b := vertexB[v]
		total := 0.0
		for c := 0; c < q; c++ {
			row[c] = b[c]
			total += b[c]
		}
		inv := 1 / total
		for c := 0; c < q; c++ {
			row[c] *= inv
		}
		rng.CumSumInto(row, m.propCum[v*q:(v+1)*q])
	}
	m.rowPtr, m.nbr, m.inc = g.CSR()
	m.coloring = m.isColoringModel()
	return m, nil
}

// MustNew is New, panicking on error. Intended for the model constructors
// in this package, whose inputs are valid by construction.
func MustNew(g *graph.Graph, q int, edgeA []*Mat, vertexB [][]float64) *MRF {
	m, err := New(g, q, edgeA, vertexB)
	if err != nil {
		panic(err)
	}
	return m
}

// N returns the number of vertices.
func (m *MRF) N() int { return m.G.N() }

// NormalizedEdge returns Ã_e = A_e / max(A_e) for the given edge ID. The
// caller must not modify it: edges sharing an activity matrix share the
// normalized table.
func (m *MRF) NormalizedEdge(id int) *Mat { return m.edgeNorm[id] }

// Weight returns w(σ) per Eq. (1). Zero means infeasible.
func (m *MRF) Weight(sigma []int) float64 {
	w := 1.0
	for id, e := range m.G.Edges() {
		w *= m.EdgeA[id].At(sigma[e.U], sigma[e.V])
		if w == 0 {
			return 0
		}
	}
	for v := 0; v < m.G.N(); v++ {
		w *= m.VertexB[v][sigma[v]]
		if w == 0 {
			return 0
		}
	}
	return w
}

// LogWeight returns ln w(σ), or -Inf for infeasible configurations. Use it
// on large graphs where Weight would underflow.
func (m *MRF) LogWeight(sigma []int) float64 {
	lw := 0.0
	for id, e := range m.G.Edges() {
		a := m.EdgeA[id].At(sigma[e.U], sigma[e.V])
		if a == 0 {
			return math.Inf(-1)
		}
		lw += math.Log(a)
	}
	for v := 0; v < m.G.N(); v++ {
		b := m.VertexB[v][sigma[v]]
		if b == 0 {
			return math.Inf(-1)
		}
		lw += math.Log(b)
	}
	return lw
}

// Feasible reports whether w(σ) > 0.
func (m *MRF) Feasible(sigma []int) bool {
	return m.Weight(sigma) > 0
}

// MarginalInto fills out (length Q) with the conditional marginal
// µ_v(· | X_{Γ(v)}) of Eq. (2):
//
//	µ_v(c | X) ∝ b_v(c) · Π_{u∈Γ(v)} A_{uv}(c, X_u),
//
// normalized to sum to 1. It returns false when the total mass is zero
// (the marginal is undefined — the Glauber assumption of §3 fails at this
// configuration), in which case out is left unspecified.
// The body is a flat CSR kernel: it walks the graph's compressed adjacency
// arrays directly rather than fetching the per-vertex Adj/Inc slice headers,
// because the chains sweep all n vertices every round through this function.
// The per-slot multiplication order, the zero-skip, and the normalization
// are exactly those of the pre-fusion implementation (pinned bit-identical
// by TestMarginalIntoMatchesReference), which is what keeps sharded and
// parallel trajectories byte-equal to the centralized chain.
func (m *MRF) MarginalInto(v int, x []int, out []float64) bool {
	b := m.VertexB[v]
	q := m.Q
	for c := 0; c < q; c++ {
		out[c] = b[c]
	}
	for t, end := m.rowPtr[v], m.rowPtr[v+1]; t < end; t++ {
		a := m.EdgeA[m.inc[t]].A
		xu := x[m.nbr[t]]
		for c := 0; c < q; c++ {
			if out[c] != 0 {
				out[c] *= a[c*q+xu]
			}
		}
	}
	total := 0.0
	for c := 0; c < q; c++ {
		total += out[c]
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for c := 0; c < q; c++ {
		out[c] *= inv
	}
	return true
}

// ResampleU is the fused heat-bath kernel the round kernels call: it
// computes vertex v's conditional marginal into scratch (exactly as
// MarginalInto) and draws from it with the externally supplied uniform u
// (exactly as rng.CategoricalU over the normalized marginal). ok is false
// when the marginal is undefined, in which case c is unspecified and the
// caller keeps the current value.
func (m *MRF) ResampleU(v int, x []int, scratch []float64, u float64) (c int, ok bool) {
	if !m.MarginalInto(v, x, scratch) {
		return 0, false
	}
	return rng.CategoricalU(scratch, u), true
}

// MarginalLaneInto is MarginalInto over one lane of a structure-of-arrays
// multi-chain state: x holds w interleaved chains laid out [vertex][chain]
// (chain c's value at vertex v is x[v*w+c]), and the marginal is computed
// for lane `lane`. The CSR walk, the per-slot multiplication order, the
// zero-skip, and the normalization are those of MarginalInto verbatim —
// only the state load is strided — so each lane's marginal is bit-identical
// to the per-chain kernel's (pinned by TestMarginalLaneMatchesSequential).
func (m *MRF) MarginalLaneInto(v int, x []int32, w, lane int, out []float64) bool {
	b := m.VertexB[v]
	q := m.Q
	for c := 0; c < q; c++ {
		out[c] = b[c]
	}
	for t, end := m.rowPtr[v], m.rowPtr[v+1]; t < end; t++ {
		a := m.EdgeA[m.inc[t]].A
		xu := int(x[int(m.nbr[t])*w+lane])
		for c := 0; c < q; c++ {
			if out[c] != 0 {
				out[c] *= a[c*q+xu]
			}
		}
	}
	total := 0.0
	for c := 0; c < q; c++ {
		total += out[c]
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for c := 0; c < q; c++ {
		out[c] *= inv
	}
	return true
}

// ResampleLaneU is ResampleU over one lane of an SoA multi-chain state
// (see MarginalLaneInto for the layout): marginal into scratch, then a
// CategoricalU draw with the supplied uniform — the fused heat-bath
// kernel the SoA batch rounds call per winning lane.
func (m *MRF) ResampleLaneU(v int, x []int32, w, lane int, scratch []float64, u float64) (c int, ok bool) {
	if !m.MarginalLaneInto(v, x, w, lane, scratch) {
		return 0, false
	}
	return rng.CategoricalU(scratch, u), true
}

// EdgeCheckProb returns the LocalMetropolis pass probability of edge id
// given current spins (xu, xv) and proposals (su, sv):
//
//	Ã_e(σ_u,σ_v) · Ã_e(X_u,σ_v) · Ã_e(σ_u,X_v)      (Algorithm 2, line 6)
func (m *MRF) EdgeCheckProb(id, xu, xv, su, sv int) float64 {
	a := m.edgeNorm[id]
	return a.At(su, sv) * a.At(xu, sv) * a.At(su, xv)
}

// ProposalDistInto fills out with the LocalMetropolis proposal distribution
// of vertex v: b_v normalized (Algorithm 2, line 4).
func (m *MRF) ProposalDistInto(v int, out []float64) {
	copy(out, m.ProposalRow(v))
}

// ProposalRow returns vertex v's precomputed proposal distribution (b_v
// normalized). The caller must not modify it.
func (m *MRF) ProposalRow(v int) []float64 {
	return m.prop[v*m.Q : (v+1)*m.Q]
}

// ProposalCumRow returns the left-to-right running sums of ProposalRow(v) —
// the table rng.CategoricalCumU binary-searches. The caller must not modify
// it.
func (m *MRF) ProposalCumRow(v int) []float64 {
	return m.propCum[v*m.Q : (v+1)*m.Q]
}

// ProposeU draws vertex v's LocalMetropolis proposal from the supplied
// uniform u, bit-identical to rng.CategoricalU(m.ProposalRow(v), u) but in
// O(log q) via the precomputed cumulative table. The centralized and sharded
// round kernels both route proposals through here, so they cannot drift.
func (m *MRF) ProposeU(v int, u float64) int {
	q := m.Q
	return rng.CategoricalCumU(m.prop[v*q:(v+1)*q], m.propCum[v*q:(v+1)*q], u)
}

// MarginalsAlwaysDefined exhaustively checks the §3 Glauber assumption: the
// conditional marginal (2) is well defined at every configuration in [q]^V,
// feasible or not. Exponential in n; intended for the tiny instances used in
// exact verification. It panics if q^n overflows the iteration budget.
func (m *MRF) MarginalsAlwaysDefined(maxStates int) (bool, error) {
	n := m.G.N()
	states := 1
	for i := 0; i < n; i++ {
		states *= m.Q
		if states > maxStates {
			return false, fmt.Errorf("mrf: q^n exceeds budget %d", maxStates)
		}
	}
	sigma := make([]int, n)
	out := make([]float64, m.Q)
	for s := 0; s < states; s++ {
		decode(s, m.Q, sigma)
		for v := 0; v < n; v++ {
			if !m.MarginalInto(v, sigma, out) {
				return false, nil
			}
		}
	}
	return true, nil
}

// Condition6Holds exhaustively checks inequality (6) of §4.1, the
// assumption under which LocalMetropolis converges from arbitrary (possibly
// infeasible) starting configurations:
//
//	Σ_i b_v(i) Π_{u∈Γ(v)} [ A_uv(i, X_u) Σ_j b_u(j) A_uv(X_v, j) A_uv(i, j) ] > 0
//
// for every X ∈ [q]^V and every v. Exponential in n; for tiny instances.
func (m *MRF) Condition6Holds(maxStates int) (bool, error) {
	n := m.G.N()
	states := 1
	for i := 0; i < n; i++ {
		states *= m.Q
		if states > maxStates {
			return false, fmt.Errorf("mrf: q^n exceeds budget %d", maxStates)
		}
	}
	sigma := make([]int, n)
	for s := 0; s < states; s++ {
		decode(s, m.Q, sigma)
		for v := 0; v < n; v++ {
			if !m.condition6At(v, sigma) {
				return false, nil
			}
		}
	}
	return true, nil
}

// condition6At evaluates the inner positivity of (6) at vertex v under X.
func (m *MRF) condition6At(v int, x []int) bool {
	adj, inc := m.G.Adj(v), m.G.Inc(v)
	for i := 0; i < m.Q; i++ {
		term := m.VertexB[v][i]
		if term == 0 {
			continue
		}
		ok := true
		for t, u := range adj {
			a := m.EdgeA[inc[t]]
			inner := 0.0
			for j := 0; j < m.Q; j++ {
				inner += m.VertexB[u][j] * a.At(x[v], j) * a.At(i, j)
			}
			if a.At(i, x[u]) == 0 || inner == 0 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// decode writes the base-q digits of s into sigma (least significant digit
// first, i.e. vertex 0 varies fastest).
func decode(s, q int, sigma []int) {
	for i := range sigma {
		sigma[i] = s % q
		s /= q
	}
}

// IsColoringModel reports whether the MRF is exactly the uniform proper
// q-coloring model: all vertex activities 1, all edge activities the
// complement-of-identity 0/1 matrix. Several components specialize on this
// (fast chain paths, permutation couplings, Theorem 4.2 round budgets).
// The answer is memoized at construction; callers may consult it on every
// draw for free.
func (m *MRF) IsColoringModel() bool { return m.coloring }

func (m *MRF) isColoringModel() bool {
	for _, b := range m.VertexB {
		for _, x := range b {
			if x != 1 {
				return false
			}
		}
	}
	checked := make(map[*Mat]bool)
	for _, a := range m.EdgeA {
		if checked[a] {
			continue
		}
		for i := 0; i < a.Q; i++ {
			for j := 0; j < a.Q; j++ {
				want := 1.0
				if i == j {
					want = 0
				}
				if a.At(i, j) != want {
					return false
				}
			}
		}
		checked[a] = true
	}
	return true
}
