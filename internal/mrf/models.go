package mrf

import (
	"fmt"
	"math"

	"locsample/internal/graph"
)

// Coloring returns the uniform proper q-coloring MRF on g: A_e(i,i) = 0,
// A_e(i,j) = 1 for i ≠ j, b_v ≡ 1 (§2.2, "Colorings").
func Coloring(g *graph.Graph, q int) *MRF {
	a := colorMat(q)
	edgeA := make([]*Mat, g.M())
	for i := range edgeA {
		edgeA[i] = a
	}
	b := make([][]float64, g.N())
	ones := onesVec(q)
	for i := range b {
		b[i] = ones
	}
	return MustNew(g, q, edgeA, b)
}

// ListColoring returns the uniform proper list-coloring MRF: colors come
// from [q], vertex v may only use colors in lists[v] (b_v is the indicator
// vector of the list; §2.2, "list colorings").
func ListColoring(g *graph.Graph, q int, lists [][]int) (*MRF, error) {
	if len(lists) != g.N() {
		return nil, fmt.Errorf("mrf: %d lists for %d vertices", len(lists), g.N())
	}
	a := colorMat(q)
	edgeA := make([]*Mat, g.M())
	for i := range edgeA {
		edgeA[i] = a
	}
	b := make([][]float64, g.N())
	for v, list := range lists {
		vec := make([]float64, q)
		for _, c := range list {
			if c < 0 || c >= q {
				return nil, fmt.Errorf("mrf: vertex %d list color %d out of [0,%d)", v, c, q)
			}
			vec[c] = 1
		}
		b[v] = vec
	}
	return New(g, q, edgeA, b)
}

// Hardcore returns the hardcore (weighted independent set) model with
// fugacity λ: spins {0, 1}, A_e = [[1,1],[1,0]], b_v = (1, λ). λ = 1 gives
// the uniform distribution over independent sets (§2.2).
func Hardcore(g *graph.Graph, lambda float64) *MRF {
	a := NewMat(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	edgeA := make([]*Mat, g.M())
	for i := range edgeA {
		edgeA[i] = a
	}
	b := make([][]float64, g.N())
	vec := []float64{1, lambda}
	for i := range b {
		b[i] = vec
	}
	return MustNew(g, 2, edgeA, b)
}

// UniformIndependentSet returns the uniform distribution over independent
// sets of g (hardcore at λ = 1) — the model of Theorem 1.3.
func UniformIndependentSet(g *graph.Graph) *MRF {
	return Hardcore(g, 1)
}

// VertexCover returns the uniform distribution over vertex covers of g
// (spin 1 = in the cover; A_e(0,0) = 0 forbids uncovered edges).
func VertexCover(g *graph.Graph) *MRF {
	a := NewMat(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	edgeA := make([]*Mat, g.M())
	for i := range edgeA {
		edgeA[i] = a
	}
	b := make([][]float64, g.N())
	ones := onesVec(2)
	for i := range b {
		b[i] = ones
	}
	return MustNew(g, 2, edgeA, b)
}

// Potts returns the q-state Potts model with edge parameter β > 0:
// A_e(i,i) = β, A_e(i,j) = 1 for i ≠ j (§2.2, "Physical model"). β < 1 is
// antiferromagnetic (β = 0 recovers proper colorings), β > 1 ferromagnetic.
func Potts(g *graph.Graph, q int, beta float64) *MRF {
	a := NewMat(q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			if i == j {
				a.Set(i, j, beta)
			} else {
				a.Set(i, j, 1)
			}
		}
	}
	edgeA := make([]*Mat, g.M())
	for i := range edgeA {
		edgeA[i] = a
	}
	b := make([][]float64, g.N())
	ones := onesVec(q)
	for i := range b {
		b[i] = ones
	}
	return MustNew(g, q, edgeA, b)
}

// Ising returns the two-state Potts (Ising) model with edge parameter β and
// external field h: b_v = (1, h); h = 1 means no field.
func Ising(g *graph.Graph, beta, h float64) *MRF {
	a := NewMat(2)
	a.Set(0, 0, beta)
	a.Set(1, 1, beta)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	edgeA := make([]*Mat, g.M())
	for i := range edgeA {
		edgeA[i] = a
	}
	b := make([][]float64, g.N())
	vec := []float64{1, h}
	for i := range b {
		b[i] = vec
	}
	return MustNew(g, 2, edgeA, b)
}

func colorMat(q int) *Mat {
	a := NewMat(q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			if i != j {
				a.Set(i, j, 1)
			}
		}
	}
	return a
}

func onesVec(q int) []float64 {
	v := make([]float64, q)
	for i := range v {
		v[i] = 1
	}
	return v
}

// DobrushinAlphaColoring returns the total influence α = max_v d_v/(q_v−d_v)
// for (list) colorings (§3.2). qs[v] is the list size of vertex v (q for
// plain colorings). It returns +Inf if some vertex has q_v <= d_v.
func DobrushinAlphaColoring(g *graph.Graph, qs []int) float64 {
	alpha := 0.0
	for v := 0; v < g.N(); v++ {
		d := g.Deg(v)
		if d == 0 {
			continue
		}
		if qs[v] <= d {
			return math.Inf(1)
		}
		a := float64(d) / float64(qs[v]-d)
		if a > alpha {
			alpha = a
		}
	}
	return alpha
}

// UniformQs returns a slice of n copies of q (plain-coloring list sizes for
// DobrushinAlphaColoring).
func UniformQs(n, q int) []int {
	qs := make([]int, n)
	for i := range qs {
		qs[i] = q
	}
	return qs
}

// LambdaC returns the hardcore uniqueness threshold
// λ_c(Δ) = (Δ−1)^(Δ−1) / (Δ−2)^Δ of §5.1. Sampling is tractable below it
// and Ω(diam)-hard in the LOCAL model above it (Theorem 5.2). Requires
// Δ >= 3.
func LambdaC(delta int) float64 {
	if delta < 3 {
		panic("mrf: LambdaC requires Δ >= 3")
	}
	d := float64(delta)
	return math.Exp((d-1)*math.Log(d-1) - d*math.Log(d-2))
}
