// Package coupling implements the coupling machinery behind the paper's
// mixing analyses, both as measurement tools and as faithful reproductions
// of the proofs' constructions:
//
//   - coalescence of two chain copies driven by identical randomness — the
//     mixing-time proxy used in the E1/E2 scaling experiments;
//   - one-step path-coupling contraction measurement for LocalMetropolis on
//     proper q-colorings, under the two couplings of §4.2: the
//     identical-proposal local coupling of Lemma 4.4 and the permuted
//     BFS/percolation coupling of §4.2.3 (Lemma 4.5);
//   - the analytic contraction quantities (13) and (26) and the thresholds
//     α* ≈ 3.634 (root of α = 2e^{1/α}+1) and 2+√2 they predict.
package coupling

import (
	"math"

	"locsample/internal/chains"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// TagPermute keys the shared color permutations of the permutation grand
// coupling (distinct from the chains.Tag* space).
const TagPermute = 0x2001

// CoalescenceTime runs two copies of a chain from init1 and init2 under a
// grand coupling and returns the first round at which they agree, or -1 if
// they fail to coalesce within maxT rounds.
//
// For LubyGlauber on coloring models the coupling resamples winners with a
// shared random color permutation ("pick the first color unused by your
// neighbors") — the same chain law as heat-bath resampling but a far
// stronger coupling: the inverse-CDF coupling stops coalescing at large Δ
// because shifted available-color sets map the same uniform to different
// colors at every site. All other combinations use identical PRF
// randomness through the standard samplers.
func CoalescenceTime(m *mrf.MRF, alg chains.Algorithm, init1, init2 []int, seed uint64, maxT int) int {
	if alg == chains.LubyGlauber && m.IsColoringModel() {
		return coloringLubyCoalescence(m, init1, init2, seed, maxT)
	}
	a := chains.NewSampler(m, init1, seed, alg, chains.Options{})
	b := chains.NewSampler(m, init2, seed, alg, chains.Options{})
	if equal(a.X, b.X) {
		return 0
	}
	for t := 1; t <= maxT; t++ {
		a.Step()
		b.Step()
		if equal(a.X, b.X) {
			return t
		}
	}
	return -1
}

func coloringLubyCoalescence(m *mrf.MRF, init1, init2 []int, seed uint64, maxT int) int {
	g := m.G
	x := append([]int(nil), init1...)
	y := append([]int(nil), init2...)
	if equal(x, y) {
		return 0
	}
	n := g.N()
	beta := make([]float64, n)
	perm := make([]int, m.Q)
	for t := 1; t <= maxT; t++ {
		round := t - 1
		for v := 0; v < n; v++ {
			beta[v] = rng.PRFFloat64(seed, chains.TagBeta, uint64(v), uint64(round))
		}
		for v := 0; v < n; v++ {
			isMax := true
			for _, u := range g.Adj(v) {
				if beta[u] >= beta[v] {
					isMax = false
					break
				}
			}
			if !isMax {
				continue
			}
			r := rng.Derive(seed, TagPermute, uint64(v), uint64(round))
			for i := range perm {
				perm[i] = i
			}
			r.Shuffle(perm)
			x[v] = firstAvailable(g, m.Q, x, v, perm)
			y[v] = firstAvailable(g, m.Q, y, v, perm)
		}
		if equal(x, y) {
			return t
		}
	}
	return -1
}

// firstAvailable returns the first color in the permuted order not used by
// a neighbor of v; a uniformly random permutation makes the result uniform
// over the available set (the heat-bath law for colorings). If no color is
// available (q ≤ deg), the vertex keeps its value, matching the samplers'
// undefined-marginal behaviour.
func firstAvailable(g *graph.Graph, q int, x []int, v int, perm []int) int {
	for _, c := range perm {
		used := false
		for _, u := range g.Adj(v) {
			if x[u] == c {
				used = true
				break
			}
		}
		if !used {
			return c
		}
	}
	return x[v]
}

func equal(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MixingEstimate estimates a mixing-time proxy for colorings: the median
// over trials of the coalescence time between two chains started from
// different feasible configurations (a greedy coloring and an independently
// randomized one). Returns -1 if any trial fails to coalesce within maxT.
func MixingEstimate(m *mrf.MRF, alg chains.Algorithm, trials, maxT int, seed uint64) (median int, times []int) {
	init1, err := chains.GreedyFeasible(m)
	if err != nil {
		return -1, nil
	}
	times = make([]int, 0, trials)
	for trial := 0; trial < trials; trial++ {
		// Randomize the second start by evolving the chain with a
		// trial-specific seed.
		s2 := chains.NewSampler(m, init1, seed+uint64(trial)*7919+1, alg, chains.Options{})
		s2.Run(20)
		t := CoalescenceTime(m, alg, init1, s2.X, seed+uint64(trial)*104729+13, maxT)
		if t < 0 {
			return -1, times
		}
		times = append(times, t)
	}
	sorted := append([]int(nil), times...)
	insertionSort(sorted)
	return sorted[len(sorted)/2], times
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// --- One-step path coupling for coloring LocalMetropolis -------------------

// Kind selects the coupling construction of §4.2.
type Kind int

const (
	// Identical couples the two chains through identical proposals
	// (§4.2.2, Lemma 4.4): disagreement cannot leave Γ⁺(v0).
	Identical Kind = iota
	// Permuted is the global coupling of §4.2.3 (Lemma 4.5): unblocked
	// vertices on the boundary of the disagreement percolation propose
	// through the transposition (X_v0 Y_v0), letting disagreement spread
	// along strongly self-avoiding walks but at geometric cost.
	Permuted
)

// lmApply runs the coloring LocalMetropolis filter on (x, proposals) and
// writes the next state into out.
func lmApply(g *graph.Graph, x, prop, out []int) {
	n := g.N()
	for v := 0; v < n; v++ {
		out[v] = x[v]
	}
	for v := 0; v < n; v++ {
		cv := prop[v]
		ok := true
		for _, u := range g.Adj(v) {
			if cv == x[u] || cv == prop[u] || x[v] == prop[u] {
				ok = false
				break
			}
		}
		if ok {
			out[v] = cv
		}
	}
}

// Phi returns the weighted Hamming distance Φ of Definition 4.1:
// Σ_{u: X_u ≠ Y_u} deg(u).
func Phi(g *graph.Graph, x, y []int) float64 {
	d := 0.0
	for v := 0; v < g.N(); v++ {
		if x[v] != y[v] {
			d += float64(g.Deg(v))
		}
	}
	return d
}

// OneStep performs one coupled LocalMetropolis step for proper q-colorings
// from a pair (x, y) differing only at v0, under the selected coupling, and
// returns (x', y'). The slices x and y are not modified.
func OneStep(g *graph.Graph, q int, x, y []int, v0 int, kind Kind, r *rng.Source) (xp, yp []int) {
	n := g.N()
	cx := make([]int, n)
	cy := make([]int, n)
	switch kind {
	case Identical:
		for v := 0; v < n; v++ {
			cx[v] = r.Intn(q)
			cy[v] = cx[v]
		}
	case Permuted:
		samplePermutedProposals(g, q, x, y, v0, r, cx, cy)
	default:
		panic("coupling: unknown kind")
	}
	xp = make([]int, n)
	yp = make([]int, n)
	lmApply(g, x, cx, xp)
	lmApply(g, y, cy, yp)
	return xp, yp
}

// samplePermutedProposals implements the §4.2.3 recursive construction.
//
// Vertices u ≠ v0 with X_u = Y_u ∈ {X_v0, Y_v0} "block" their inclusive
// neighborhood minus v0; all other u ≠ v0 are unblocked. The pair
// (c^X_v0, c^Y_v0) is sampled consistently. Unblocked neighbors of v0
// sample from the permuted distribution (c^Y = φ(c^X) with φ the
// transposition of {X_v0, Y_v0}). Then the disagreement set S≠ grows in a
// breadth-first percolation: every unblocked un-sampled vertex adjacent to
// S≠ samples permuted, joining simultaneously; when the boundary is empty,
// all remaining vertices sample consistently.
func samplePermutedProposals(g *graph.Graph, q int, x, y []int, v0 int, r *rng.Source, cx, cy []int) {
	n := g.N()
	a, b := x[v0], y[v0]
	phi := func(c int) int {
		switch c {
		case a:
			return b
		case b:
			return a
		default:
			return c
		}
	}
	blocked := make([]bool, n)
	for u := 0; u < n; u++ {
		if u == v0 || x[u] != y[u] {
			continue
		}
		if x[u] == a || x[u] == b {
			// u blocks Γ⁺(u) ∖ {v0}.
			if u != v0 {
				blocked[u] = true
			}
			for _, w := range g.Adj(u) {
				if int(w) != v0 {
					blocked[w] = true
				}
			}
		}
	}
	// v0 is special: neither blocked nor unblocked.
	blocked[v0] = false

	const (
		unsampled = 0
		sampled   = 1
	)
	state := make([]int, n)
	disagree := make([]bool, n)

	// v0 samples consistently.
	cx[v0] = r.Intn(q)
	cy[v0] = cx[v0]
	state[v0] = sampled

	samplePermuted := func(u int) {
		cx[u] = r.Intn(q)
		cy[u] = phi(cx[u])
		state[u] = sampled
		disagree[u] = cx[u] != cy[u]
	}

	// Unblocked neighbors of v0 sample permuted.
	frontierSet := map[int]struct{}{}
	for _, u32 := range g.Adj(v0) {
		u := int(u32)
		if u != v0 && !blocked[u] && state[u] == unsampled {
			frontierSet[u] = struct{}{}
		}
	}
	for len(frontierSet) > 0 {
		// Sample the whole frontier simultaneously.
		frontier := make([]int, 0, len(frontierSet))
		for u := range frontierSet {
			frontier = append(frontier, u)
		}
		// Deterministic order for reproducibility.
		insertionSort(frontier)
		for _, u := range frontier {
			samplePermuted(u)
		}
		// Next frontier: unblocked unsampled vertices adjacent to a
		// disagreeing sampled vertex.
		frontierSet = map[int]struct{}{}
		for _, u := range frontier {
			if !disagree[u] {
				continue
			}
			for _, w32 := range g.Adj(u) {
				w := int(w32)
				if w != v0 && !blocked[w] && state[w] == unsampled {
					frontierSet[w] = struct{}{}
				}
			}
		}
	}
	// Everyone else: consistent.
	for u := 0; u < n; u++ {
		if state[u] == unsampled {
			cx[u] = r.Intn(q)
			cy[u] = cx[u]
			state[u] = sampled
		}
	}
}

// ContractionEstimate measures the average one-step contraction ratio
// E[Φ(X',Y')]/Φ(X,Y) for coloring LocalMetropolis on g with q colors under
// the given coupling. Pairs (X, Y) are generated by evolving the chain for
// `burn` rounds from a greedy coloring (so X is a plausible chain state) and
// recoloring a random vertex in Y. Returns the mean ratio over trials.
func ContractionEstimate(g *graph.Graph, q int, kind Kind, trials, burn int, seed uint64) float64 {
	m := mrf.Coloring(g, q)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		return math.NaN()
	}
	r := rng.New(seed)
	sum := 0.0
	count := 0
	x := append([]int(nil), init...)
	sc := chains.NewScratch(m)
	for trial := 0; trial < trials; trial++ {
		// Refresh X occasionally by running the real chain.
		if trial%16 == 0 {
			copy(x, init)
			for k := 0; k < burn; k++ {
				chains.ColoringLocalMetropolisRound(m, x, seed+uint64(trial), k, false, sc)
			}
		}
		v0 := r.Intn(g.N())
		if g.Deg(v0) == 0 {
			continue
		}
		y := append([]int(nil), x...)
		// Recolor v0 to a uniformly random different color (the path
		// coupling considers all adjacent pairs; Y need not be proper).
		c := r.Intn(q - 1)
		if c >= x[v0] {
			c++
		}
		y[v0] = c
		xp, yp := OneStep(g, q, x, y, v0, kind, r)
		sum += Phi(g, xp, yp) / float64(g.Deg(v0))
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// --- Analytic quantities ---------------------------------------------------

// Analytic13 evaluates the contraction margin of inequality (13)
// (Lemma 4.4, identical-proposal coupling):
//
//	(1 − Δ/q)(1 − 3/q)^Δ − (2Δ/q)(1 − 2/q)^Δ.
//
// Positive margin ⇒ one-step contraction.
func Analytic13(q, delta int) float64 {
	qf, df := float64(q), float64(delta)
	return (1-df/qf)*math.Pow(1-3/qf, df) - (2*df/qf)*math.Pow(1-2/qf, df)
}

// Analytic26 evaluates the contraction margin of inequality (26)
// (Lemma 4.5, permuted coupling):
//
//	(1 − Δ/q)(1 − 2/q)^Δ − Δ/(q − 2Δ + 2)·(1 − 2/q)^(Δ−1).
//
// Positive margin ⇒ one-step contraction.
func Analytic26(q, delta int) float64 {
	qf, df := float64(q), float64(delta)
	if qf-2*df+2 <= 0 {
		return math.Inf(-1)
	}
	return (1-df/qf)*math.Pow(1-2/qf, df) - df/(qf-2*df+2)*math.Pow(1-2/qf, df-1)
}

// IdealCouplingExpectation evaluates the §4.2.1 ideal-coupling bound on the
// expected number of disagreeing vertices after one step on a Δ-regular
// tree:
//
//	1 − (1 − Δ/q)(1 − 2/q)^Δ + Δ/(q−2Δ)·(1 − 2/q)^(Δ−1).
//
// Below 1 ⇒ contraction; as Δ → ∞ with q = αΔ the threshold is α > 2+√2.
func IdealCouplingExpectation(q, delta int) float64 {
	qf, df := float64(q), float64(delta)
	if qf-2*df <= 0 {
		return math.Inf(1)
	}
	return 1 - (1-df/qf)*math.Pow(1-2/qf, df) + df/(qf-2*df)*math.Pow(1-2/qf, df-1)
}

// AlphaStar returns the positive root of α = 2e^{1/α} + 1 ≈ 3.634…, the
// asymptotic threshold of the identical-proposal coupling (§4.2.2).
func AlphaStar() float64 {
	lo, hi := 3.0, 4.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid-2*math.Exp(1/mid)-1 < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// AlphaIdeal returns 2+√2, the asymptotic threshold of the ideal/permuted
// coupling (Theorem 4.2).
func AlphaIdeal() float64 { return 2 + math.Sqrt2 }
