package coupling

import (
	"testing"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

// §4.2.1 analyses the ideal coupling on a Δ-regular tree; complete trees
// are its finite stand-in. The permuted coupling should contract strictly
// better than the identical-proposal coupling there, because trees realize
// the worst case of the identical coupling's neighborhood damage.
func TestTreeCouplingOrdering(t *testing.T) {
	g := graph.CompleteTree(4, 3) // 85 vertices, Δ = 5
	q := 4 * 5
	idRatio := ContractionEstimate(g, q, Identical, 4000, 30, 21)
	permRatio := ContractionEstimate(g, q, Permuted, 4000, 30, 22)
	if permRatio >= idRatio {
		t.Fatalf("permuted coupling (%v) should beat identical (%v) on trees", permRatio, idRatio)
	}
	if idRatio >= 1 {
		t.Fatalf("identical coupling not contracting at q = 4Δ: %v", idRatio)
	}
}

// The §4.2.1 ideal-coupling expectation formula must upper-bound 1 exactly
// at the regime boundaries it was derived for.
func TestIdealCouplingFiniteDelta(t *testing.T) {
	// At Δ = 9 (the theorem's minimum degree), q = 3.7Δ should contract.
	if e := IdealCouplingExpectation(33, 9); e >= 1 {
		t.Fatalf("ideal expectation %v at Δ=9, q=33; want < 1", e)
	}
	// q = 2Δ cannot (formula diverges or exceeds 1).
	if e := IdealCouplingExpectation(18, 9); e < 1 {
		t.Fatalf("ideal expectation %v at q=2Δ; want >= 1", e)
	}
}

// Disagreement percolation: under the permuted coupling the disagreement
// set can leave Γ⁺(v0) (unlike the identical coupling), but only along
// paths of proposals hitting {X_v0, Y_v0} — rare at large q. Verify both
// facts statistically.
func TestPermutedPercolationIsRareButPossible(t *testing.T) {
	g := graph.Path(30)
	q := 6
	r := rng.New(17)
	x := make([]int, g.N())
	for i := range x {
		x[i] = i % 3 // proper 3-coloring pattern of the path, within [q]
	}
	v0 := 15
	escaped, trials := 0, 20000
	for trial := 0; trial < trials; trial++ {
		y := append([]int(nil), x...)
		y[v0] = (x[v0] + 1 + r.Intn(q-1)) % q
		xp, yp := OneStep(g, q, x, y, v0, Permuted, r)
		for v := range xp {
			if xp[v] != yp[v] && v != v0 && !g.HasEdge(v, v0) {
				escaped++
				break
			}
		}
	}
	rate := float64(escaped) / float64(trials)
	// Escapes require a length-2 path of disagreement: probability O(1/q²)
	// per neighbor pair — small but positive.
	if rate > 0.1 {
		t.Fatalf("disagreement escapes too often under permuted coupling: %v", rate)
	}
}

// Phi must weight disagreements by degree (Definition 4.1): recoloring a
// hub counts more than recoloring a leaf.
func TestPhiDegreeWeighting(t *testing.T) {
	g := graph.Star(5)
	x := []int{0, 1, 1, 1, 1}
	yHub := []int{2, 1, 1, 1, 1}
	yLeaf := []int{0, 2, 1, 1, 1}
	if Phi(g, x, yHub) <= Phi(g, x, yLeaf) {
		t.Fatal("hub disagreement should outweigh leaf disagreement")
	}
}
