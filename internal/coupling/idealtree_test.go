package coupling

import (
	"math"
	"testing"
)

// The simulated §4.2.1 ideal coupling must respect the paper's closed-form
// bounds: the root disagreement probability is at most
// 1 − (1−Δ/q)(1−2/q)^Δ, and depth-ℓ disagreement at most
// (1/2)(1−2/q)^(Δ−1)(2/q)^ℓ (both up to Monte-Carlo error).
func TestIdealTreeCouplingBounds(t *testing.T) {
	const (
		q      = 24 // α = 4 at Δ = 6
		delta  = 6
		depth  = 3
		trials = 150000
	)
	out := SimulateIdealTreeCoupling(q, delta, depth, trials, 33)

	rootBound := IdealTreeBoundRoot(q, delta)
	if out.RootDisagree > rootBound+0.01 {
		t.Fatalf("root disagreement %v exceeds bound %v", out.RootDisagree, rootBound)
	}
	// The bound should not be wildly loose either: the ideal analysis is
	// tight in this setting up to lower-order terms.
	if out.RootDisagree < rootBound/3 {
		t.Fatalf("root disagreement %v far below bound %v — wrong coupling?", out.RootDisagree, rootBound)
	}

	for l := 1; l <= depth; l++ {
		bound := IdealTreeBoundLevel(q, delta, l)
		// Monte-Carlo error per level shrinks with the level population;
		// allow 3 standard errors plus the bound.
		if out.LevelDisagree[l] > bound+0.005 {
			t.Fatalf("level %d disagreement %v exceeds bound %v", l, out.LevelDisagree[l], bound)
		}
	}
	// Disagreement decays geometrically with depth.
	if out.LevelDisagree[2] > out.LevelDisagree[1] {
		t.Fatalf("level disagreement not decaying: %v", out.LevelDisagree)
	}
}

// Above the 2+√2 threshold the expected disagreement count after one step
// must drop below 1 (the path-coupling contraction condition); below the
// threshold the ideal-coupling expectation formula exceeds 1.
func TestIdealTreeContractionThreshold(t *testing.T) {
	const delta, depth, trials = 6, 3, 80000
	// α = 4 > 2+√2: contraction.
	qHigh := 4 * delta
	outHigh := SimulateIdealTreeCoupling(qHigh, delta, depth, trials, 7)
	if outHigh.ExpectedPhi >= 1 {
		t.Fatalf("E[#disagreements] = %v at α=4, want < 1", outHigh.ExpectedPhi)
	}
	// α = 2.5 < 2+√2: the formula predicts expansion; the simulation on a
	// finite tree should show clearly more disagreement than at α = 4.
	qLow := 5 * delta / 2
	outLow := SimulateIdealTreeCoupling(qLow, delta, depth, trials, 8)
	if outLow.ExpectedPhi <= outHigh.ExpectedPhi {
		t.Fatalf("disagreement should grow as q shrinks: %v (α=2.5) vs %v (α=4)",
			outLow.ExpectedPhi, outHigh.ExpectedPhi)
	}
}

// The analytic ideal-coupling expectation of §4.2.1 equals
// 1 − (1−Δ/q)(1−2/q)^Δ + Δ/(q−2Δ)(1−2/q)^(Δ−1) in the large-depth limit;
// the root and level bounds must be consistent with it: root bound +
// Σ_ℓ Δℓ·level bound(ℓ) telescopes to the expectation.
func TestIdealTreeFormulaConsistency(t *testing.T) {
	q, delta := 40, 8
	sum := IdealTreeBoundRoot(q, delta)
	for l := 1; l <= 60; l++ {
		perVertex := IdealTreeBoundLevel(q, delta, l)
		vertices := math.Pow(float64(delta), float64(l))
		sum += perVertex * vertices
	}
	want := IdealCouplingExpectation(q, delta)
	if math.Abs(sum-want) > 1e-6 {
		t.Fatalf("telescoped bound %v vs closed form %v", sum, want)
	}
}
