package coupling

import (
	"math"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

// IdealTreeOutcome summarizes a Monte-Carlo run of the §4.2.1 ideal
// coupling on a rooted tree.
type IdealTreeOutcome struct {
	// RootDisagree estimates Pr[X'_v0 ≠ Y'_v0].
	RootDisagree float64
	// LevelDisagree[ℓ] estimates the per-vertex disagreement probability at
	// depth ℓ (ℓ ≥ 1).
	LevelDisagree []float64
	// ExpectedPhi estimates E[#disagreeing vertices] after one step.
	ExpectedPhi float64
}

// IdealTreeBoundRoot is the paper's bound for the root:
// Pr[X'_v0 ≠ Y'_v0] ≤ 1 − (1 − Δ/q)(1 − 2/q)^Δ.
func IdealTreeBoundRoot(q, delta int) float64 {
	qf, df := float64(q), float64(delta)
	return 1 - (1-df/qf)*math.Pow(1-2/qf, df)
}

// IdealTreeBoundLevel is the paper's bound for a depth-ℓ vertex:
// Pr[X'_u ≠ Y'_u] ≤ (1/2)(1 − 2/q)^(Δ−1)(2/q)^ℓ.
func IdealTreeBoundLevel(q, delta, level int) float64 {
	qf, df := float64(q), float64(delta)
	return 0.5 * math.Pow(1-2/qf, df-1) * math.Pow(2/qf, float64(level))
}

// SimulateIdealTreeCoupling reproduces the §4.2.1 setting by Monte Carlo:
// a rooted complete tree in which the root has delta children and every
// internal vertex delta−1 children (so internal degrees are Δ = delta,
// matching the Δ-regular tree locally), initial colorings X, Y that agree
// everywhere except the root, with all non-root vertices colored by a
// common color c∗ ∉ {X_root, Y_root}, and the breadth-first permuted
// proposal coupling:
//
//  1. the root proposes the same color in both chains;
//  2. a child of the root proposes the same color unless it drew one of
//     {X_root, Y_root}, in which case the two colors switch roles in Y;
//  3. any deeper vertex switches the roles of {X_root, Y_root} iff its
//     parent proposed differently in the two chains.
//
// Both chains then apply the LocalMetropolis coloring filter. The outcome
// estimates are compared against the paper's closed-form bounds in tests.
func SimulateIdealTreeCoupling(q, delta, depth, trials int, seed uint64) IdealTreeOutcome {
	// Build the tree: root 0 with delta children; deeper internal vertices
	// have delta−1 children each.
	b := treeBuilder{deltaRoot: delta, deltaInner: delta - 1, depth: depth}
	g, levels := b.build()
	n := g.N()

	a0, b0 := 0, 1 // X_root = a0, Y_root = b0
	cStar := 2     // common color elsewhere; q >= 3 required
	if q < 3 {
		panic("coupling: ideal tree needs q >= 3")
	}

	x := make([]int, n)
	y := make([]int, n)
	cx := make([]int, n)
	cy := make([]int, n)
	xp := make([]int, n)
	yp := make([]int, n)

	r := rng.New(seed)
	var rootDis float64
	levelDis := make([]float64, depth+1)
	var phi float64

	for trial := 0; trial < trials; trial++ {
		for v := 0; v < n; v++ {
			x[v] = cStar
			y[v] = cStar
		}
		x[0], y[0] = a0, b0

		// X-side proposals are i.i.d. uniform; Y-side follows the coupling
		// rules, resolved top-down (level-order numbering guarantees
		// parents precede children).
		cx[0] = r.Intn(q)
		cy[0] = cx[0]
		for v := 1; v < n; v++ {
			cx[v] = r.Intn(q)
		}
		for v := 1; v < n; v++ {
			p := b.parent(v)
			switchRoles := false
			if p == 0 {
				// Child of the root: switch iff it proposed a special color.
				switchRoles = cx[v] == a0 || cx[v] == b0
			} else {
				switchRoles = cx[p] != cy[p]
			}
			if switchRoles {
				cy[v] = transpose(cx[v], a0, b0)
			} else {
				cy[v] = cx[v]
			}
		}

		lmApply(g, x, cx, xp)
		lmApply(g, y, cy, yp)

		if xp[0] != yp[0] {
			rootDis++
		}
		for v := 1; v < n; v++ {
			if xp[v] != yp[v] {
				levelDis[levels[v]]++
				phi++
			}
		}
		if xp[0] != yp[0] {
			phi++
		}
	}

	out := IdealTreeOutcome{
		RootDisagree:  rootDis / float64(trials),
		LevelDisagree: make([]float64, depth+1),
		ExpectedPhi:   phi / float64(trials),
	}
	counts := make([]float64, depth+1)
	for v := 1; v < n; v++ {
		counts[levels[v]]++
	}
	for l := 1; l <= depth; l++ {
		if counts[l] > 0 {
			out.LevelDisagree[l] = levelDis[l] / (float64(trials) * counts[l])
		}
	}
	return out
}

func transpose(c, a, b int) int {
	switch c {
	case a:
		return b
	case b:
		return a
	default:
		return c
	}
}

// treeBuilder constructs the root-delta / inner-(delta−1) tree with
// level-order numbering and O(1) parent lookup.
type treeBuilder struct {
	deltaRoot, deltaInner, depth int
	parents                      []int32
}

func (t *treeBuilder) build() (*graph.Graph, []int) {
	// Level sizes: 1, deltaRoot, deltaRoot·deltaInner, …
	sizes := []int{1}
	for l := 1; l <= t.depth; l++ {
		prev := sizes[l-1]
		if l == 1 {
			sizes = append(sizes, t.deltaRoot)
		} else {
			sizes = append(sizes, prev*t.deltaInner)
		}
	}
	n := 0
	for _, s := range sizes {
		n += s
	}
	b := graph.NewBuilder(n)
	t.parents = make([]int32, n)
	levels := make([]int, n)
	next := 1
	frontier := []int{0}
	for l := 1; l <= t.depth; l++ {
		var newFrontier []int
		kids := t.deltaInner
		if l == 1 {
			kids = t.deltaRoot
		}
		for _, p := range frontier {
			for c := 0; c < kids; c++ {
				b.AddEdge(p, next)
				t.parents[next] = int32(p)
				levels[next] = l
				newFrontier = append(newFrontier, next)
				next++
			}
		}
		frontier = newFrontier
	}
	return b.Build(), levels
}

func (t *treeBuilder) parent(v int) int { return int(t.parents[v]) }
