package coupling

import (
	"testing"

	"locsample/internal/chains"
	"locsample/internal/exact"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// The permutation-coupled LubyGlauber must follow the same chain law: its
// long-run distribution on a tiny coloring instance must match exact Gibbs.
func TestPermutationCouplingPreservesLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g := graph.Cycle(4)
	q := 3
	m := mrf.Coloring(g, q)
	mu, err := exact.Enumerate(4, q, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Drive a single chain with the permutation update (reusing the coupled
	// round via two identical copies) and record thinned samples.
	init, _ := chains.GreedyFeasible(m)
	x := append([]int(nil), init...)
	n := g.N()
	beta := make([]float64, n)
	perm := make([]int, q)
	counts := make([]float64, len(mu.P))
	const burn, thin, samples = 500, 8, 60000
	seed := uint64(99)
	round := 0
	step := func() {
		for v := 0; v < n; v++ {
			beta[v] = rng.PRFFloat64(seed, chains.TagBeta, uint64(v), uint64(round))
		}
		for v := 0; v < n; v++ {
			isMax := true
			for _, u := range g.Adj(v) {
				if beta[u] >= beta[v] {
					isMax = false
					break
				}
			}
			if !isMax {
				continue
			}
			r := rng.Derive(seed, TagPermute, uint64(v), uint64(round))
			for i := range perm {
				perm[i] = i
			}
			r.Shuffle(perm)
			x[v] = firstAvailable(g, q, x, v, perm)
		}
		round++
	}
	for i := 0; i < burn; i++ {
		step()
	}
	for s := 0; s < samples; s++ {
		for i := 0; i < thin; i++ {
			step()
		}
		counts[exact.Index(q, x)]++
	}
	for i := range counts {
		counts[i] /= samples
	}
	if tv := exact.TV(counts, mu.P); tv > 0.03 {
		t.Fatalf("permutation-update chain long-run TV from Gibbs: %v", tv)
	}
}

func TestColoringCoalescenceHighDegree(t *testing.T) {
	// The motivating case: Δ = 12 with q = 2.5Δ must coalesce quickly under
	// the permutation coupling (the inverse-CDF coupling stalls here).
	g, err := graph.RandomRegular(48, 12, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	q := 31
	m := mrf.Coloring(g, q)
	init1, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	s := chains.NewSampler(m, init1, 5, chains.LubyGlauber, chains.Options{})
	s.Run(20)
	c := CoalescenceTime(m, chains.LubyGlauber, init1, s.X, 77, 100000)
	if c <= 0 {
		t.Fatal("no coalescence at Δ=12 under the permutation coupling")
	}
	if c > 20000 {
		t.Fatalf("coalescence suspiciously slow: %d rounds", c)
	}
}

func TestFirstAvailableKeepsValueWhenSaturated(t *testing.T) {
	// q = 2 on a star center with both colors among neighbors: keep value.
	g := graph.Star(3)
	x := []int{0, 0, 1}
	perm := []int{0, 1}
	if got := firstAvailable(g, 2, x, 0, perm); got != 0 {
		t.Fatalf("saturated vertex changed to %d", got)
	}
}
