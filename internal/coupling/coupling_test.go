package coupling

import (
	"math"
	"testing"

	"locsample/internal/chains"
	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

func TestCoalescenceIdenticalStarts(t *testing.T) {
	m := mrf.Coloring(graph.Cycle(6), 5)
	init, _ := chains.GreedyFeasible(m)
	if c := CoalescenceTime(m, chains.LubyGlauber, init, init, 1, 100); c != 0 {
		t.Fatalf("identical starts coalesce at %d, want 0", c)
	}
}

func TestCoalescenceHappens(t *testing.T) {
	m := mrf.Coloring(graph.Cycle(8), 6)
	init1, _ := chains.GreedyFeasible(m)
	s := chains.NewSampler(m, init1, 99, chains.LocalMetropolis, chains.Options{})
	s.Run(30)
	init2 := s.X
	for _, alg := range []chains.Algorithm{chains.LubyGlauber, chains.LocalMetropolis} {
		c := CoalescenceTime(m, alg, init1, init2, 7, 5000)
		if c <= 0 {
			t.Fatalf("%v: no coalescence within budget", alg)
		}
	}
}

func TestCoalescenceBudget(t *testing.T) {
	// With maxT = 0 and different starts, coalescence must report failure.
	m := mrf.Coloring(graph.Cycle(6), 5)
	init1, _ := chains.GreedyFeasible(m)
	init2 := append([]int(nil), init1...)
	init2[0] = (init2[0] + 1) % 5
	if c := CoalescenceTime(m, chains.LubyGlauber, init1, init2, 3, 0); c != -1 {
		t.Fatalf("budget 0 returned %d", c)
	}
}

func TestMixingEstimateOrdering(t *testing.T) {
	// LubyGlauber needs more rounds on higher-degree graphs at fixed q/Δ;
	// LocalMetropolis should not. Here we only check the estimator returns
	// something sane and monotone in ε-free terms.
	m := mrf.Coloring(graph.Torus(4, 4), 12) // Δ=4, q=3Δ
	med, times := MixingEstimate(m, chains.LocalMetropolis, 8, 10000, 5)
	if med < 0 || len(times) != 8 {
		t.Fatalf("mixing estimate failed: med=%d times=%v", med, times)
	}
	for _, x := range times {
		if x < 0 || x > 10000 {
			t.Fatalf("weird coalescence time %d", x)
		}
	}
}

func TestPhi(t *testing.T) {
	g := graph.Star(4)
	x := []int{0, 1, 2, 3}
	y := []int{1, 1, 2, 0}
	// Disagreements at center (deg 3) and leaf 3 (deg 1): Φ = 4.
	if p := Phi(g, x, y); p != 4 {
		t.Fatalf("Phi = %v, want 4", p)
	}
	if p := Phi(g, x, x); p != 0 {
		t.Fatalf("Phi(x,x) = %v", p)
	}
}

func TestLMApplyMatchesChainStep(t *testing.T) {
	// lmApply with the chain's own proposals must equal the chain round.
	r := rng.New(42)
	g := graph.Gnp(10, 0.35, r)
	q := 3*g.MaxDeg() + 1
	m := mrf.Coloring(g, q)
	init, err := chains.GreedyFeasible(m)
	if err != nil {
		t.Fatal(err)
	}
	x := append([]int(nil), init...)
	sc := chains.NewScratch(m)
	// One chain round via the package under test: replicate proposals
	// from the same PRF keys used by ColoringLocalMetropolisRound.
	prop := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		u := rng.PRFFloat64(7, chains.TagUpdate, uint64(v), 0)
		prop[v] = int(u * float64(q))
	}
	out := make([]int, g.N())
	lmApply(g, x, prop, out)
	chains.ColoringLocalMetropolisRound(m, x, 7, 0, false, sc)
	for v := range x {
		if out[v] != x[v] {
			t.Fatalf("lmApply disagrees with chain round at %d", v)
		}
	}
}

func TestOneStepIdenticalConfinesDisagreement(t *testing.T) {
	// Lemma 4.4's key structural fact: under the identical-proposal
	// coupling, X' and Y' may differ only inside Γ⁺(v0).
	r := rng.New(3)
	g := graph.Grid(4, 4)
	q := 14
	m := mrf.Coloring(g, q)
	init, _ := chains.GreedyFeasible(m)
	for trial := 0; trial < 200; trial++ {
		x := append([]int(nil), init...)
		v0 := r.Intn(g.N())
		y := append([]int(nil), x...)
		y[v0] = (y[v0] + 1 + r.Intn(q-1)) % q
		xp, yp := OneStep(g, q, x, y, v0, Identical, r)
		for v := range xp {
			if xp[v] != yp[v] {
				if v != v0 && !g.HasEdge(v, v0) {
					t.Fatalf("disagreement escaped Γ⁺(%d) to %d under identical coupling", v0, v)
				}
			}
		}
	}
}

func TestOneStepPreservesMarginalLaw(t *testing.T) {
	// Each side of the coupling must individually follow the chain law: the
	// X-side of OneStep must have the same one-step distribution as the
	// plain chain. We compare empirical next-state distributions on a tiny
	// graph.
	g := graph.Path(3)
	q := 4
	m := mrf.Coloring(g, q)
	x0 := []int{0, 1, 2}
	y0 := []int{1, 1, 2} // differs at v0 = 0
	const trials = 100000
	countCoupled := map[[3]int]int{}
	countPlain := map[[3]int]int{}
	r := rng.New(11)
	sc := chains.NewScratch(m)
	for i := 0; i < trials; i++ {
		xp, _ := OneStep(g, q, x0, y0, 0, Permuted, r)
		var kc [3]int
		copy(kc[:], xp)
		countCoupled[kc]++

		x := append([]int(nil), x0...)
		chains.ColoringLocalMetropolisRound(m, x, uint64(i)+1, 0, false, sc)
		var kp [3]int
		copy(kp[:], x)
		countPlain[kp]++
	}
	// Compare the two empirical distributions in TV.
	keys := map[[3]int]bool{}
	for k := range countCoupled {
		keys[k] = true
	}
	for k := range countPlain {
		keys[k] = true
	}
	tv := 0.0
	for k := range keys {
		tv += math.Abs(float64(countCoupled[k])-float64(countPlain[k])) / trials
	}
	tv /= 2
	if tv > 0.01 {
		t.Fatalf("X-marginal of permuted coupling deviates from chain law: TV = %v", tv)
	}
}

func TestPermutedCouplingYMarginal(t *testing.T) {
	// Symmetrically, the Y side must follow the chain law started from Y.
	g := graph.Path(3)
	q := 4
	m := mrf.Coloring(g, q)
	x0 := []int{0, 1, 2}
	y0 := []int{3, 1, 2}
	const trials = 100000
	countCoupled := map[[3]int]int{}
	countPlain := map[[3]int]int{}
	r := rng.New(13)
	sc := chains.NewScratch(m)
	for i := 0; i < trials; i++ {
		_, yp := OneStep(g, q, x0, y0, 0, Permuted, r)
		var kc [3]int
		copy(kc[:], yp)
		countCoupled[kc]++

		y := append([]int(nil), y0...)
		chains.ColoringLocalMetropolisRound(m, y, uint64(i)+0xabcdef, 0, false, sc)
		var kp [3]int
		copy(kp[:], y)
		countPlain[kp]++
	}
	keys := map[[3]int]bool{}
	for k := range countCoupled {
		keys[k] = true
	}
	for k := range countPlain {
		keys[k] = true
	}
	tv := 0.0
	for k := range keys {
		tv += math.Abs(float64(countCoupled[k])-float64(countPlain[k])) / trials
	}
	tv /= 2
	if tv > 0.01 {
		t.Fatalf("Y-marginal of permuted coupling deviates from chain law: TV = %v", tv)
	}
}

func TestContractionHighQ(t *testing.T) {
	// At very large q (deep in the contraction regime) both couplings must
	// contract clearly.
	r := rng.New(5)
	g, err := graph.RandomRegular(40, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{Identical, Permuted} {
		ratio := ContractionEstimate(g, 6*8, kind, 2000, 30, 17)
		if math.IsNaN(ratio) || ratio >= 0.9 {
			t.Fatalf("kind %v: contraction ratio %v at q=8Δ, want < 0.9", kind, ratio)
		}
	}
}

func TestAnalyticThresholds(t *testing.T) {
	// α* solves α = 2e^{1/α}+1.
	as := AlphaStar()
	if math.Abs(as-2*math.Exp(1/as)-1) > 1e-9 {
		t.Fatalf("AlphaStar() = %v does not solve the fixpoint", as)
	}
	if math.Abs(as-3.634) > 5e-3 {
		t.Fatalf("AlphaStar() = %v, want ≈ 3.634", as)
	}
	if math.Abs(AlphaIdeal()-3.41421356) > 1e-6 {
		t.Fatalf("AlphaIdeal() = %v", AlphaIdeal())
	}

	// The (13) margin flips sign near α* as Δ grows (q = αΔ + 3).
	const delta = 500
	qBelow := int(3.5*delta) + 3
	qAbove := int(3.8*delta) + 3
	if Analytic13(qBelow, delta) >= 0 {
		t.Fatalf("Analytic13 positive below α*: %v", Analytic13(qBelow, delta))
	}
	if Analytic13(qAbove, delta) <= 0 {
		t.Fatalf("Analytic13 negative above α*: %v", Analytic13(qAbove, delta))
	}

	// The (26) margin flips near 2+√2.
	qBelow26 := int(3.30 * delta)
	qAbove26 := int(3.55 * delta)
	if Analytic26(qBelow26, delta) >= 0 {
		t.Fatalf("Analytic26 positive below 2+√2: %v", Analytic26(qBelow26, delta))
	}
	if Analytic26(qAbove26, delta) <= 0 {
		t.Fatalf("Analytic26 negative above 2+√2: %v", Analytic26(qAbove26, delta))
	}

	// The permuted threshold strictly improves on the identical one: at
	// α = 3.5 (between 2+√2 and α*), (26) contracts while (13) does not.
	q35 := int(3.5 * delta)
	if !(Analytic26(q35, delta) > 0 && Analytic13(q35, delta) < 0) {
		t.Fatalf("thresholds not ordered: 13=%v 26=%v",
			Analytic13(q35, delta), Analytic26(q35, delta))
	}
}

func TestIdealCouplingExpectation(t *testing.T) {
	// §4.2.1: for q = α⋆Δ with α⋆ slightly above 2+√2 the expectation dips
	// below 1 for large Δ; below the threshold it exceeds 1.
	const delta = 2000
	above := IdealCouplingExpectation(int(3.55*delta), delta)
	below := IdealCouplingExpectation(int(3.30*delta), delta)
	if above >= 1 {
		t.Fatalf("ideal coupling expectation %v at α=3.55, want < 1", above)
	}
	if below <= 1 {
		t.Fatalf("ideal coupling expectation %v at α=3.30, want > 1", below)
	}
}
