// CSP plans: the constraint-scope generalization of the graph partition.
// The halo band of a shard is the hypergraph neighborhood of its owned
// vertices — every vertex sharing a constraint with an owned vertex — which
// is exactly the radius-1 state a shard needs to evaluate its owned
// vertices' conditional marginals and every constraint containing them.
// Constraints are replicated onto every shard whose owned set their scope
// intersects (cut-scope checks are evaluated redundantly from shared PRF
// coins, like cut edges in the MRF runtime); for accounting purposes a
// constraint is OWNED by the shard owning its minimum scope vertex, so
// CutConstraints counts each spanning scope once.
package partition

import (
	"fmt"
	"slices"
	"sort"

	"locsample/internal/csp"
)

// CSPShard is one worker's slice of a CSP. Local vertex indices come in two
// bands: [0, NOwned) are the owned vertices in ascending global order,
// [NOwned, len(Global)) are halo copies in ascending global order.
type CSPShard struct {
	// ID is the shard's index in the plan.
	ID int
	// NOwned is the number of vertices this shard owns.
	NOwned int
	// Global maps local vertex indices to global vertex IDs.
	Global []int32

	// NbrPtr/Nbr is the hypergraph-neighborhood CSR of the owned rows:
	// owned vertex v's Γ(v) occupies Nbr[NbrPtr[v]:NbrPtr[v+1]] as local
	// indices, in the global Γ order (ascending global ID).
	NbrPtr []int32
	Nbr    []int32

	// ConID lists every constraint whose scope touches an owned vertex,
	// ascending by global constraint index; ConID[slot] keys the shared PRF
	// coin and the compiled table. ConPtr/ConScope hold the scopes as local
	// vertex indices, in the constraint's own scope order.
	ConID    []int32
	ConPtr   []int32
	ConScope []int32

	// VconPtr/Vcon is the owned-vertex → local-constraint-slot CSR, in
	// ascending global constraint order — the multiplication order of the
	// centralized conditional marginal.
	VconPtr []int32
	Vcon    []int32

	// SendTo[j] lists the owned local indices whose post-round values this
	// shard sends to shard j; RecvFrom[j] lists the halo local indices this
	// shard overwrites with shard j's message. The maps are symmetric and
	// aligned exactly as in the MRF Plan.
	SendTo   [][]int32
	RecvFrom [][]int32
	// Neighbors lists the shards this shard exchanges with, ascending.
	Neighbors []int
}

// NLocal returns the number of local vertices (owned + halo).
func (s *CSPShard) NLocal() int { return len(s.Global) }

// NHalo returns the number of halo copies this shard holds.
func (s *CSPShard) NHalo() int { return len(s.Global) - s.NOwned }

// CSPPlan is a compiled partition of a CSP's vertices into k shards.
type CSPPlan struct {
	// K is the shard count.
	K int
	// Strategy and Seed are the inputs the ownership assignment was grown
	// from (Seed only matters for BFS).
	Strategy Strategy
	Seed     uint64
	// N is the partitioned CSP's vertex count.
	N int
	// Owner[v] is the shard owning global vertex v.
	Owner []int32
	// Shards are the per-worker slices.
	Shards []*CSPShard
	// CutConstraints counts constraints whose scope spans several owners
	// (each is checked redundantly on every incident shard).
	CutConstraints int
	// HaloCopies is the total number of halo slots across all shards — the
	// number of vertex states crossing shard boundaries per exchange.
	HaloCopies int
}

// BuildCSP compiles a k-way partition of CSP c over its constraint
// hypergraph. It requires 1 <= k <= c.N, so every shard owns at least one
// vertex. The result is a pure function of the arguments; like the MRF
// planner, which partition a chain runs on never affects its output, only
// its boundary traffic.
func BuildCSP(c *csp.CSP, k int, strat Strategy, seed uint64) (*CSPPlan, error) {
	n := c.N
	if k < 1 || k > n {
		return nil, fmt.Errorf("partition: need 1 <= shards <= %d vertices, got %d", n, k)
	}
	owner := make([]int32, n)
	switch strat {
	case Range:
		for v := 0; v < n; v++ {
			owner[v] = int32(v * k / n)
		}
	case BFS:
		growBFS(n, func(v int32) []int32 { return c.Neighborhood(int(v)) }, k, seed, owner)
	default:
		return nil, fmt.Errorf("partition: unknown strategy %v", strat)
	}
	p := &CSPPlan{K: k, Strategy: strat, Seed: seed, N: n, Owner: owner}
	p.assemble(c)
	return p, nil
}

// NeighborLists returns the plan's shard adjacency in the shape the
// transport constructors take; the rows alias the shards' neighbor
// slices and must not be mutated.
func (p *CSPPlan) NeighborLists() [][]int {
	out := make([][]int, p.K)
	for s, sh := range p.Shards {
		out[s] = sh.Neighbors
	}
	return out
}

// assemble builds the per-shard slices, halo bands, and exchange maps from
// the ownership assignment.
func (p *CSPPlan) assemble(c *csp.CSP) {
	n, k := p.N, p.K
	ownedOf := make([][]int32, k)
	counts := make([]int, k)
	for _, o := range p.Owner {
		counts[o]++
	}
	for s := 0; s < k; s++ {
		ownedOf[s] = make([]int32, 0, counts[s])
	}
	for v := 0; v < n; v++ {
		ownedOf[p.Owner[v]] = append(ownedOf[p.Owner[v]], int32(v)) // ascending
	}

	// Scratch shared across shards: localOf is only read at indices set
	// while building the current shard; constraint stamps carry a shard
	// epoch so no per-shard reset is needed.
	localOf := make([]int32, n)
	conStamp := make([]int32, len(c.Cons))
	conSlot := make([]int32, len(c.Cons))
	for i := range conStamp {
		conStamp[i] = -1
	}

	p.Shards = make([]*CSPShard, k)
	for s := 0; s < k; s++ {
		owned := ownedOf[s]
		sh := &CSPShard{ID: s, NOwned: len(owned)}

		// Halo: out-of-shard hypergraph neighbors of owned vertices,
		// sort+dedupe over the Γ incidence (the same allocation-light
		// construction as csp.buildIndexes).
		var halo []int32
		for _, v := range owned {
			for _, u := range c.Neighborhood(int(v)) {
				if p.Owner[u] != int32(s) {
					halo = append(halo, u)
				}
			}
		}
		slices.Sort(halo)
		halo = slices.Compact(halo)

		sh.Global = make([]int32, 0, len(owned)+len(halo))
		sh.Global = append(sh.Global, owned...)
		sh.Global = append(sh.Global, halo...)
		for i, v := range owned {
			localOf[v] = int32(i)
		}
		for i, u := range halo {
			localOf[u] = int32(len(owned) + i)
		}

		// Hypergraph-neighborhood CSR over owned rows.
		sh.NbrPtr = make([]int32, len(owned)+1)
		for i, v := range owned {
			sh.NbrPtr[i+1] = sh.NbrPtr[i] + int32(len(c.Neighborhood(int(v))))
		}
		sh.Nbr = make([]int32, sh.NbrPtr[len(owned)])
		pos := 0
		for _, v := range owned {
			for _, u := range c.Neighborhood(int(v)) {
				sh.Nbr[pos] = localOf[u]
				pos++
			}
		}

		// Local constraint set: every constraint touching an owned vertex,
		// ascending by global index (all scope members are local — a scope
		// member of a constraint with an owned member is in Γ(owned) ∪
		// owned).
		var cons []int32
		for _, v := range owned {
			for _, ci := range c.ConstraintsOf(int(v)) {
				if conStamp[ci] != int32(s) {
					conStamp[ci] = int32(s)
					cons = append(cons, ci)
				}
			}
		}
		sort.Slice(cons, func(i, j int) bool { return cons[i] < cons[j] })
		sh.ConID = cons
		sh.ConPtr = make([]int32, len(cons)+1)
		for slot, ci := range cons {
			conSlot[ci] = int32(slot)
			sh.ConPtr[slot+1] = sh.ConPtr[slot] + int32(len(c.Cons[ci].Scope))
		}
		sh.ConScope = make([]int32, sh.ConPtr[len(cons)])
		pos = 0
		for _, ci := range cons {
			for _, u := range c.Cons[ci].Scope {
				sh.ConScope[pos] = localOf[u]
				pos++
			}
		}

		// Owned-vertex incidence, ascending global constraint order (the
		// global ConstraintsOf order, mapped through the slot table).
		sh.VconPtr = make([]int32, len(owned)+1)
		for i, v := range owned {
			sh.VconPtr[i+1] = sh.VconPtr[i] + int32(len(c.ConstraintsOf(int(v))))
		}
		sh.Vcon = make([]int32, sh.VconPtr[len(owned)])
		pos = 0
		for _, v := range owned {
			for _, ci := range c.ConstraintsOf(int(v)) {
				sh.Vcon[pos] = conSlot[ci]
				pos++
			}
		}

		p.Shards[s] = sh
		p.HaloCopies += len(halo)
	}

	// Exchange maps: identical lockstep construction to the MRF plan —
	// iterating receivers in shard order and halo slots in ascending global
	// order appends to SendTo and RecvFrom in matching positions.
	for s := 0; s < k; s++ {
		sh := p.Shards[s]
		sh.SendTo = make([][]int32, k)
		sh.RecvFrom = make([][]int32, k)
	}
	for s := 0; s < k; s++ {
		sh := p.Shards[s]
		for h := sh.NOwned; h < len(sh.Global); h++ {
			u := sh.Global[h]
			j := p.Owner[u]
			js := p.Shards[j]
			lu := int32(sort.Search(js.NOwned, func(i int) bool { return js.Global[i] >= u }))
			js.SendTo[s] = append(js.SendTo[s], lu)
			sh.RecvFrom[j] = append(sh.RecvFrom[j], int32(h))
		}
	}
	for s := 0; s < k; s++ {
		sh := p.Shards[s]
		for j := 0; j < k; j++ {
			if len(sh.SendTo[j]) > 0 || len(sh.RecvFrom[j]) > 0 {
				sh.Neighbors = append(sh.Neighbors, j)
			}
		}
	}
	for i := range c.Cons {
		scope := c.Cons[i].Scope
		first := p.Owner[scope[0]]
		for _, u := range scope[1:] {
			if p.Owner[u] != first {
				p.CutConstraints++
				break
			}
		}
	}
}
