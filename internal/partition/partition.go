// Package partition splits a graph into k vertex-disjoint shards for the
// sharded single-chain runtime (internal/cluster). A Plan is a compiled,
// immutable description of the split:
//
//   - every vertex is owned by exactly one shard;
//   - each shard carries a CSR subgraph over its owned vertices whose
//     per-vertex slot order is exactly the global graph's adjacency order
//     (so shard-local products of edge activities multiply in the same
//     floating-point order as the centralized chains — a prerequisite for
//     bit-identical trajectories);
//   - halo vertices — out-of-shard neighbors of owned vertices — get local
//     copies, and symmetric exchange maps say which owned values each shard
//     sends to, and which halo slots it receives from, every other shard.
//
// Plans are pure functions of (graph, k, strategy, seed): building the same
// partition twice yields identical plans, so a compiled sampler's shard
// layout is as reproducible as its chains. Which partition a chain runs on
// never affects its output (the cluster engine keys all randomness by
// global vertex/edge IDs); strategy and seed only steer how much boundary
// traffic the run pays.
package partition

import (
	"fmt"
	"sort"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

// TagGrow keys the PRF that orders BFS growth seeds. It is disjoint from
// the chain/batch tag spaces, so partition randomness never collides with
// any variate a chain consumes.
const TagGrow = 0x5001

// Strategy selects how vertices are assigned to shards.
type Strategy int

const (
	// Range assigns contiguous, balanced vertex-ID blocks: shard s owns
	// [s·n/k, (s+1)·n/k). On generators that number vertices coherently
	// (grids row-major, paths in order) this yields small boundaries with
	// zero preprocessing.
	Range Strategy = iota
	// BFS grows shards by seeded breadth-first search: growth seeds are
	// drawn in PRF order, each shard claims a balanced share of the
	// remaining vertices by BFS from its seed (restarting on exhausted
	// components), producing connected, low-cut regions on graphs whose
	// vertex numbering carries no locality.
	BFS
)

// String returns the strategy's wire name.
func (s Strategy) String() string {
	switch s {
	case Range:
		return "range"
	case BFS:
		return "bfs"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy maps a wire name to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "range", "":
		return Range, nil
	case "bfs":
		return BFS, nil
	default:
		return 0, fmt.Errorf("partition: unknown strategy %q", s)
	}
}

// Edge is one edge of a shard subgraph: local endpoint indices in the
// global edge's U/V orientation (the LocalMetropolis filter is not
// symmetric in its endpoints), plus the global edge ID that keys the
// shared PRF coin and the activity matrix. Cut edges appear in both
// incident shards with the same ID, so both evaluate the same filter.
type Edge struct {
	U, V int32
	ID   int32
}

// Shard is one worker's slice of the graph. Local vertex indices come in
// two bands: [0, NOwned) are the owned vertices in ascending global order,
// [NOwned, len(Global)) are halo copies in ascending global order.
type Shard struct {
	// ID is the shard's index in the plan.
	ID int
	// NOwned is the number of vertices this shard owns.
	NOwned int
	// Global maps local vertex indices to global vertex IDs.
	Global []int32

	// RowPtr/Nbr/EdgeSlot is the CSR adjacency of the owned vertices
	// (owned rows only): owned vertex v's slots are [RowPtr[v],
	// RowPtr[v+1]), listing neighbors as local indices and incident edges
	// as indices into Edges, in the global graph's per-vertex slot order.
	RowPtr   []int32
	Nbr      []int32
	EdgeSlot []int32
	// Edges lists every edge with at least one owned endpoint, once.
	Edges []Edge

	// SendTo[j] lists the owned local indices whose post-round values this
	// shard sends to shard j; RecvFrom[j] lists the halo local indices this
	// shard overwrites with shard j's message. The maps are symmetric and
	// aligned: plan.Shards[j].SendTo[i][t] and plan.Shards[i].RecvFrom[j][t]
	// name the same global vertex.
	SendTo   [][]int32
	RecvFrom [][]int32
	// Neighbors lists the shards this shard exchanges with, ascending.
	Neighbors []int
}

// NLocal returns the number of local vertices (owned + halo).
func (s *Shard) NLocal() int { return len(s.Global) }

// NHalo returns the number of halo copies this shard holds.
func (s *Shard) NHalo() int { return len(s.Global) - s.NOwned }

// Plan is a compiled partition of a graph into k shards.
type Plan struct {
	// K is the shard count.
	K int
	// Strategy and Seed are the inputs the ownership assignment was grown
	// from (Seed only matters for BFS).
	Strategy Strategy
	Seed     uint64
	// N is the partitioned graph's vertex count.
	N int
	// Owner[v] is the shard owning global vertex v.
	Owner []int32
	// Shards are the per-worker subgraphs.
	Shards []*Shard
	// CutEdges counts edges whose endpoints live on different shards.
	CutEdges int
	// HaloCopies is the total number of halo slots across all shards — the
	// number of vertex states crossing shard boundaries per exchange.
	HaloCopies int
}

// Build compiles a k-way partition of g. It requires 1 <= k <= g.N(), so
// every shard owns at least one vertex. The result is a pure function of
// the arguments.
func Build(g *graph.Graph, k int, strat Strategy, seed uint64) (*Plan, error) {
	n := g.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("partition: need 1 <= shards <= %d vertices, got %d", n, k)
	}
	owner := make([]int32, n)
	switch strat {
	case Range:
		for v := 0; v < n; v++ {
			owner[v] = int32(v * k / n)
		}
	case BFS:
		growBFS(n, func(v int32) []int32 { return g.Adj(int(v)) }, k, seed, owner)
	default:
		return nil, fmt.Errorf("partition: unknown strategy %v", strat)
	}
	p := &Plan{K: k, Strategy: strat, Seed: seed, N: n, Owner: owner}
	p.assemble(g)
	return p, nil
}

// growBFS assigns owners by seeded breadth-first growth over an arbitrary
// adjacency (graph edges for MRF plans, hypergraph neighborhoods Γ(v) for
// CSP plans). Vertices are ranked once by PRF(seed, TagGrow, v) (ties by
// ID); each shard starts from the best-ranked unassigned vertex and claims
// its balanced share of the remaining vertices by BFS, restarting from the
// next-ranked unassigned vertex whenever its frontier exhausts a component.
// Deterministic: the rank order, the FIFO frontier, and the adjacency order
// leave no choice to scheduling.
func growBFS(n int, adj func(int32) []int32, k int, seed uint64, owner []int32) {
	for v := range owner {
		owner[v] = -1
	}
	ranked := make([]int32, n)
	key := make([]uint64, n)
	for v := 0; v < n; v++ {
		ranked[v] = int32(v)
		key[v] = rng.PRF(seed, TagGrow, uint64(v))
	}
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if key[a] != key[b] {
			return key[a] < key[b]
		}
		return a < b
	})
	cursor := 0 // next candidate growth seed in ranked order
	assigned := 0
	queue := make([]int32, 0, n)
	for s := 0; s < k; s++ {
		target := (n - assigned + (k - s) - 1) / (k - s) // balanced share
		claimed := 0
		for claimed < target {
			for owner[ranked[cursor]] != -1 {
				cursor++
			}
			start := ranked[cursor]
			owner[start] = int32(s)
			claimed++
			queue = append(queue[:0], start)
			for len(queue) > 0 && claimed < target {
				v := queue[0]
				queue = queue[1:]
				for _, u := range adj(v) {
					if owner[u] != -1 {
						continue
					}
					owner[u] = int32(s)
					claimed++
					queue = append(queue, u)
					if claimed >= target {
						break
					}
				}
			}
		}
		assigned += claimed
	}
}

// NeighborLists returns the plan's shard adjacency (NeighborLists()[s]
// lists the shards s exchanges boundary states with) in the shape the
// transport constructors take. The rows alias the shards' neighbor
// slices; callers must not mutate them.
func (p *Plan) NeighborLists() [][]int {
	out := make([][]int, p.K)
	for s, sh := range p.Shards {
		out[s] = sh.Neighbors
	}
	return out
}

// AssignShards places k shards on w worker processes contiguously and
// balanced: shard s goes to process s*w/k, so every process hosts a
// consecutive run of ⌊k/w⌋ or ⌈k/w⌉ shards and (for w ≤ k) no process
// is empty. Contiguity matters for the Range strategy, where
// consecutive shards own consecutive vertex bands and are each other's
// likeliest neighbors.
func AssignShards(k, w int) []int {
	assign := make([]int, k)
	for s := range assign {
		assign[s] = s * w / k
	}
	return assign
}

// assemble builds the per-shard subgraphs, halo bands, and exchange maps
// from the ownership assignment.
func (p *Plan) assemble(g *graph.Graph) {
	n, k := p.N, p.K
	ownedOf := make([][]int32, k)
	counts := make([]int, k)
	for _, o := range p.Owner {
		counts[o]++
	}
	for s := 0; s < k; s++ {
		ownedOf[s] = make([]int32, 0, counts[s])
	}
	for v := 0; v < n; v++ {
		s := p.Owner[v]
		ownedOf[s] = append(ownedOf[s], int32(v)) // ascending global order
	}

	// Scratch shared across shards: localOf is only read at indices set
	// while building the current shard (every referenced endpoint is owned
	// or halo there); edge stamps carry a shard epoch so no per-shard reset
	// is needed.
	localOf := make([]int32, n)
	edgeStamp := make([]int32, g.M())
	edgeLocal := make([]int32, g.M())
	for i := range edgeStamp {
		edgeStamp[i] = -1
	}

	p.Shards = make([]*Shard, k)
	for s := 0; s < k; s++ {
		owned := ownedOf[s]
		sh := &Shard{ID: s, NOwned: len(owned)}

		// Halo: out-of-shard neighbors of owned vertices, deduplicated and
		// sorted ascending.
		var halo []int32
		seen := make(map[int32]struct{})
		for _, v := range owned {
			for _, u := range g.Adj(int(v)) {
				if p.Owner[u] == int32(s) {
					continue
				}
				if _, ok := seen[u]; !ok {
					seen[u] = struct{}{}
					halo = append(halo, u)
				}
			}
		}
		sort.Slice(halo, func(i, j int) bool { return halo[i] < halo[j] })

		sh.Global = make([]int32, 0, len(owned)+len(halo))
		sh.Global = append(sh.Global, owned...)
		sh.Global = append(sh.Global, halo...)
		for i, v := range owned {
			localOf[v] = int32(i)
		}
		for i, u := range halo {
			localOf[u] = int32(len(owned) + i)
		}

		// CSR over owned rows in the global slot order.
		sh.RowPtr = make([]int32, len(owned)+1)
		for i, v := range owned {
			sh.RowPtr[i+1] = sh.RowPtr[i] + int32(g.Deg(int(v)))
		}
		sh.Nbr = make([]int32, sh.RowPtr[len(owned)])
		sh.EdgeSlot = make([]int32, sh.RowPtr[len(owned)])
		pos := 0
		for _, v := range owned {
			adj, inc := g.Adj(int(v)), g.Inc(int(v))
			for t := range adj {
				id := inc[t]
				if edgeStamp[id] != int32(s) {
					edgeStamp[id] = int32(s)
					edgeLocal[id] = int32(len(sh.Edges))
					ge := g.Edge(int(id))
					sh.Edges = append(sh.Edges, Edge{U: localOf[ge.U], V: localOf[ge.V], ID: id})
				}
				sh.Nbr[pos] = localOf[adj[t]]
				sh.EdgeSlot[pos] = edgeLocal[id]
				pos++
			}
		}
		p.Shards[s] = sh
		p.HaloCopies += len(halo)
	}

	// Exchange maps. Iterating receivers in shard order and halo slots in
	// ascending global order appends to SendTo and RecvFrom in lockstep, so
	// the two sides of every channel agree position-by-position.
	for s := 0; s < k; s++ {
		sh := p.Shards[s]
		sh.SendTo = make([][]int32, k)
		sh.RecvFrom = make([][]int32, k)
	}
	for s := 0; s < k; s++ {
		sh := p.Shards[s]
		for h := sh.NOwned; h < len(sh.Global); h++ {
			u := sh.Global[h]
			j := p.Owner[u]
			js := p.Shards[j]
			lu := int32(sort.Search(js.NOwned, func(i int) bool { return js.Global[i] >= u }))
			js.SendTo[s] = append(js.SendTo[s], lu)
			sh.RecvFrom[j] = append(sh.RecvFrom[j], int32(h))
		}
	}
	for s := 0; s < k; s++ {
		sh := p.Shards[s]
		for j := 0; j < k; j++ {
			if len(sh.SendTo[j]) > 0 || len(sh.RecvFrom[j]) > 0 {
				sh.Neighbors = append(sh.Neighbors, j)
			}
		}
	}
	for _, e := range g.Edges() {
		if p.Owner[e.U] != p.Owner[e.V] {
			p.CutEdges++
		}
	}
}
