package partition

import (
	"reflect"
	"testing"

	"locsample/internal/graph"
	"locsample/internal/rng"
)

// testGraphs returns a spread of topologies: coherent numbering (grid,
// path), none (gnp), multigraph-free regulars, hubs, and a singleton.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	reg, err := graph.RandomRegular(60, 4, rng.New(5))
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	return map[string]*graph.Graph{
		"grid13x17":  graph.Grid(13, 17),
		"gnp200":     graph.Gnp(200, 0.05, rng.New(7)),
		"cycle31":    graph.Cycle(31),
		"star40":     graph.Star(40),
		"regular60":  reg,
		"path1":      graph.Path(1),
		"hypercube6": graph.Hypercube(6),
	}
}

var strategies = []Strategy{Range, BFS}

func shardCounts(n int) []int {
	ks := []int{1}
	for _, k := range []int{2, 3, 7, 16} {
		if k <= n {
			ks = append(ks, k)
		}
	}
	if n > 1 {
		ks = append(ks, n) // every shard owns exactly one vertex
	}
	return ks
}

// TestPartitionOwnership: every vertex is owned by exactly one shard, the
// owned bands are ascending and consistent with Owner, and no shard is
// empty.
func TestPartitionOwnership(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, strat := range strategies {
			for _, k := range shardCounts(g.N()) {
				p, err := Build(g, k, strat, 11)
				if err != nil {
					t.Fatalf("%s %v k=%d: %v", name, strat, k, err)
				}
				seen := make([]int, g.N())
				for s, sh := range p.Shards {
					if sh.NOwned == 0 {
						t.Fatalf("%s %v k=%d: shard %d owns no vertices", name, strat, k, s)
					}
					for i := 0; i < sh.NOwned; i++ {
						v := sh.Global[i]
						if i > 0 && sh.Global[i-1] >= v {
							t.Fatalf("%s %v k=%d: shard %d owned band not ascending", name, strat, k, s)
						}
						if p.Owner[v] != int32(s) {
							t.Fatalf("%s %v k=%d: shard %d owns %d but Owner says %d", name, strat, k, s, v, p.Owner[v])
						}
						seen[v]++
					}
				}
				for v, c := range seen {
					if c != 1 {
						t.Fatalf("%s %v k=%d: vertex %d owned %d times", name, strat, k, v, c)
					}
				}
			}
		}
	}
}

// TestPartitionHaloSymmetric: the halo band is exactly the out-of-shard
// neighborhood, and SendTo/RecvFrom agree position-by-position across
// every shard pair.
func TestPartitionHaloSymmetric(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, strat := range strategies {
			for _, k := range shardCounts(g.N()) {
				p, err := Build(g, k, strat, 3)
				if err != nil {
					t.Fatalf("%s %v k=%d: %v", name, strat, k, err)
				}
				for s, sh := range p.Shards {
					// Halo band = out-of-shard neighbors of owned vertices.
					want := map[int32]bool{}
					for i := 0; i < sh.NOwned; i++ {
						for _, u := range g.Adj(int(sh.Global[i])) {
							if p.Owner[u] != int32(s) {
								want[u] = true
							}
						}
					}
					got := map[int32]bool{}
					for h := sh.NOwned; h < sh.NLocal(); h++ {
						got[sh.Global[h]] = true
					}
					if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
						t.Fatalf("%s %v k=%d shard %d: halo band mismatch", name, strat, k, s)
					}
					// Exchange symmetry.
					for j, js := range p.Shards {
						if len(sh.RecvFrom[j]) != len(js.SendTo[s]) {
							t.Fatalf("%s %v k=%d: |%d.RecvFrom[%d]| != |%d.SendTo[%d]|", name, strat, k, s, j, j, s)
						}
						for t2 := range sh.RecvFrom[j] {
							gu := sh.Global[sh.RecvFrom[j][t2]]
							gv := js.Global[js.SendTo[s][t2]]
							if gu != gv {
								t.Fatalf("%s %v k=%d: exchange slot %d: shard %d receives %d, shard %d sends %d",
									name, strat, k, t2, s, gu, j, gv)
							}
						}
					}
				}
			}
		}
	}
}

// TestPartitionReassembles: shard subgraphs reassemble to the input CSR —
// each global edge appears in exactly the shards owning its endpoints, and
// each owned vertex's slot sequence (neighbor, edge ID) equals the global
// graph's.
func TestPartitionReassembles(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, strat := range strategies {
			for _, k := range shardCounts(g.N()) {
				p, err := Build(g, k, strat, 9)
				if err != nil {
					t.Fatalf("%s %v k=%d: %v", name, strat, k, err)
				}
				edgeSeen := make([]int, g.M())
				cut := 0
				for _, sh := range p.Shards {
					for _, e := range sh.Edges {
						edgeSeen[e.ID]++
						gu, gv := sh.Global[e.U], sh.Global[e.V]
						ge := g.Edge(int(e.ID))
						if gu != ge.U || gv != ge.V {
							t.Fatalf("%s %v k=%d: edge %d maps to (%d,%d), want (%d,%d)",
								name, strat, k, e.ID, gu, gv, ge.U, ge.V)
						}
					}
					for v := 0; v < sh.NOwned; v++ {
						gv := int(sh.Global[v])
						adj, inc := g.Adj(gv), g.Inc(gv)
						lo, hi := sh.RowPtr[v], sh.RowPtr[v+1]
						if int(hi-lo) != len(adj) {
							t.Fatalf("%s %v k=%d: vertex %d degree %d, shard row %d", name, strat, k, gv, len(adj), hi-lo)
						}
						for i := 0; i < len(adj); i++ {
							slot := lo + int32(i)
							if sh.Global[sh.Nbr[slot]] != adj[i] {
								t.Fatalf("%s %v k=%d: vertex %d slot %d neighbor mismatch", name, strat, k, gv, i)
							}
							if sh.Edges[sh.EdgeSlot[slot]].ID != inc[i] {
								t.Fatalf("%s %v k=%d: vertex %d slot %d edge-ID mismatch", name, strat, k, gv, i)
							}
						}
					}
				}
				for id, e := range g.Edges() {
					want := 1
					if p.Owner[e.U] != p.Owner[e.V] {
						want = 2
						cut++
					}
					if edgeSeen[id] != want {
						t.Fatalf("%s %v k=%d: edge %d appears in %d shards, want %d", name, strat, k, id, edgeSeen[id], want)
					}
				}
				if cut != p.CutEdges {
					t.Fatalf("%s %v k=%d: CutEdges=%d, recount=%d", name, strat, k, p.CutEdges, cut)
				}
			}
		}
	}
}

// TestPartitionDeterministic: identical inputs give deeply identical
// plans, for both strategies.
func TestPartitionDeterministic(t *testing.T) {
	g := graph.Gnp(150, 0.06, rng.New(2))
	for _, strat := range strategies {
		a, err := Build(g, 5, strat, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(g, 5, strat, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: two builds with identical inputs differ", strat)
		}
	}
	// BFS growth actually reads its seed.
	a, _ := Build(g, 5, BFS, 1)
	b, _ := Build(g, 5, BFS, 2)
	if reflect.DeepEqual(a.Owner, b.Owner) {
		t.Fatal("BFS ownership identical across different seeds (suspicious)")
	}
}

// TestPartitionBounds: shard counts outside [1, n] are rejected.
func TestPartitionBounds(t *testing.T) {
	g := graph.Cycle(10)
	if _, err := Build(g, 0, Range, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Build(g, 11, Range, 0); err == nil {
		t.Fatal("k=n+1 accepted")
	}
	if _, err := Build(g, 10, BFS, 0); err != nil {
		t.Fatalf("k=n rejected: %v", err)
	}
}

// TestParseStrategy pins the wire names.
func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
	}{{"range", Range}, {"", Range}, {"bfs", BFS}} {
		got, err := ParseStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseStrategy("metis"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if Range.String() != "range" || BFS.String() != "bfs" {
		t.Fatal("strategy String() drifted from wire names")
	}
}

// TestBFSBalance: BFS shard sizes are within one of the balanced share on
// connected graphs.
func TestBFSBalance(t *testing.T) {
	g := graph.Grid(20, 20)
	p, err := Build(g, 7, BFS, 13)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.N(), 0
	for _, sh := range p.Shards {
		if sh.NOwned < lo {
			lo = sh.NOwned
		}
		if sh.NOwned > hi {
			hi = sh.NOwned
		}
	}
	if hi-lo > 1 {
		t.Fatalf("BFS shard sizes [%d,%d] not balanced", lo, hi)
	}
}
