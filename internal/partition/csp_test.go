package partition

import (
	"reflect"
	"testing"

	"locsample/internal/csp"
	"locsample/internal/graph"
)

func testCSPs(t *testing.T) map[string]*csp.CSP {
	t.Helper()
	scopes := make([][]int32, 24)
	for i := range scopes {
		scopes[i] = []int32{int32(i), int32((i + 1) % 24), int32((i + 2) % 24)}
	}
	return map[string]*csp.CSP{
		"domset-grid5x6":  csp.DominatingSet(graph.Grid(5, 6)),
		"domset-cycle17":  csp.DominatingSet(graph.Cycle(17)),
		"nae24-q3":        csp.NotAllEqual(24, 3, scopes),
		"wdomset-star9":   csp.WeightedDominatingSet(graph.Star(9), 0.5),
		"domset-complete": csp.DominatingSet(graph.Complete(7)),
	}
}

// TestCSPPlanOwnership: every vertex is owned exactly once, bands are
// ascending, and every halo slot is a hypergraph neighbor of the owned
// band.
func TestCSPPlanOwnership(t *testing.T) {
	for name, c := range testCSPs(t) {
		for _, strat := range []Strategy{Range, BFS} {
			for _, k := range []int{1, 2, 3, 5} {
				plan, err := BuildCSP(c, k, strat, 11)
				if err != nil {
					t.Fatalf("%s k=%d %v: %v", name, k, strat, err)
				}
				owned := make([]int, c.N)
				for _, sh := range plan.Shards {
					if sh.NOwned < 1 {
						t.Fatalf("%s k=%d %v: shard %d owns no vertex", name, k, strat, sh.ID)
					}
					for l := 0; l < len(sh.Global); l++ {
						if l > 0 && l != sh.NOwned && sh.Global[l-1] >= sh.Global[l] {
							t.Fatalf("%s: shard %d band not ascending at slot %d", name, sh.ID, l)
						}
					}
					for l := 0; l < sh.NOwned; l++ {
						gv := sh.Global[l]
						owned[gv]++
						if plan.Owner[gv] != int32(sh.ID) {
							t.Fatalf("%s: Owner[%d] = %d but shard %d lists it owned", name, gv, plan.Owner[gv], sh.ID)
						}
					}
					for h := sh.NOwned; h < len(sh.Global); h++ {
						u := sh.Global[h]
						if plan.Owner[u] == int32(sh.ID) {
							t.Fatalf("%s: shard %d halo slot %d is its own vertex %d", name, sh.ID, h, u)
						}
					}
				}
				for v, cnt := range owned {
					if cnt != 1 {
						t.Fatalf("%s k=%d %v: vertex %d owned %d times", name, k, strat, v, cnt)
					}
				}
			}
		}
	}
}

// TestCSPPlanScopesLocal: every shard carries every constraint incident to
// its owned vertices, with fully local scopes that name the same global
// vertices as the constraint's own scope, and Vcon rows reproduce
// ConstraintsOf in ascending global order.
func TestCSPPlanScopesLocal(t *testing.T) {
	for name, c := range testCSPs(t) {
		plan, err := BuildCSP(c, 3, BFS, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range plan.Shards {
			slotOf := map[int32]int{}
			for slot, ci := range sh.ConID {
				if slot > 0 && sh.ConID[slot-1] >= ci {
					t.Fatalf("%s: shard %d ConID not ascending", name, sh.ID)
				}
				slotOf[ci] = slot
				scope := sh.ConScope[sh.ConPtr[slot]:sh.ConPtr[slot+1]]
				want := c.Cons[ci].Scope
				if len(scope) != len(want) {
					t.Fatalf("%s: shard %d constraint %d scope length %d, want %d", name, sh.ID, ci, len(scope), len(want))
				}
				for j, l := range scope {
					if int(l) >= sh.NLocal() {
						t.Fatalf("%s: shard %d constraint %d scope slot %d out of local range", name, sh.ID, ci, j)
					}
					if sh.Global[l] != want[j] {
						t.Fatalf("%s: shard %d constraint %d scope slot %d is global %d, want %d",
							name, sh.ID, ci, j, sh.Global[l], want[j])
					}
				}
			}
			for v := 0; v < sh.NOwned; v++ {
				gv := int(sh.Global[v])
				want := c.ConstraintsOf(gv)
				row := sh.Vcon[sh.VconPtr[v]:sh.VconPtr[v+1]]
				if len(row) != len(want) {
					t.Fatalf("%s: shard %d vertex %d has %d constraint slots, want %d", name, sh.ID, gv, len(row), len(want))
				}
				for j, slot := range row {
					if sh.ConID[slot] != want[j] {
						t.Fatalf("%s: shard %d vertex %d Vcon[%d] names constraint %d, want %d",
							name, sh.ID, gv, j, sh.ConID[slot], want[j])
					}
				}
			}
		}
	}
}

// TestCSPPlanExchangeSymmetry: the SendTo/RecvFrom maps are aligned — the
// t-th value shard j sends to shard s lands exactly in the t-th halo slot
// shard s expects from j, for the same global vertex.
func TestCSPPlanExchangeSymmetry(t *testing.T) {
	for name, c := range testCSPs(t) {
		for _, k := range []int{2, 3, 5} {
			plan, err := BuildCSP(c, k, Range, 0)
			if err != nil {
				t.Fatal(err)
			}
			for s, sh := range plan.Shards {
				for j := 0; j < k; j++ {
					js := plan.Shards[j]
					if len(js.SendTo[s]) != len(sh.RecvFrom[j]) {
						t.Fatalf("%s k=%d: send/recv length mismatch %d→%d", name, k, j, s)
					}
					for tt := range js.SendTo[s] {
						sent := js.Global[js.SendTo[s][tt]]
						recv := sh.Global[sh.RecvFrom[j][tt]]
						if sent != recv {
							t.Fatalf("%s k=%d: slot %d of %d→%d carries %d into a slot for %d",
								name, k, tt, j, s, sent, recv)
						}
					}
				}
			}
		}
	}
}

// TestCSPPlanDeterministic: building the same partition twice yields
// identical plans.
func TestCSPPlanDeterministic(t *testing.T) {
	c := csp.DominatingSet(graph.Grid(6, 6))
	for _, strat := range []Strategy{Range, BFS} {
		a, err := BuildCSP(c, 4, strat, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildCSP(c, 4, strat, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: plans differ between identical builds", strat)
		}
	}
}

// TestCSPPlanErrors: invalid shard counts are rejected.
func TestCSPPlanErrors(t *testing.T) {
	c := csp.DominatingSet(graph.Path(4))
	if _, err := BuildCSP(c, 0, Range, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := BuildCSP(c, 5, Range, 0); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := BuildCSP(c, 2, Strategy(99), 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
