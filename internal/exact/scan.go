package exact

import (
	"fmt"
	"math"

	"locsample/internal/mrf"
)

// SingleSiteMatrix builds the transition matrix of the deterministic-site
// heat-bath update at vertex v: resample X_v from µ_v(·|X_Γ(v)), all other
// vertices unchanged. These are the factors of systematic scan and of the
// chromatic scheduler.
func SingleSiteMatrix(model *mrf.MRF, v int, budget int) (*Matrix, error) {
	n, q := model.G.N(), model.Q
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	P := NewMatrix(states)
	sigma := make([]int, n)
	marg := make([]float64, q)
	for x := 0; x < states; x++ {
		DecodeInto(x, q, sigma)
		if !model.MarginalInto(v, sigma, marg) {
			P.Add(x, x, 1)
			continue
		}
		saved := sigma[v]
		for c := 0; c < q; c++ {
			if marg[c] == 0 {
				continue
			}
			sigma[v] = c
			P.Add(x, Index(q, sigma), marg[c])
		}
		sigma[v] = saved
	}
	return P, nil
}

// Compose returns a×b (apply a, then b) for transition matrices.
func Compose(a, b *Matrix) *Matrix {
	if a.S != b.S {
		panic("exact: composing matrices of different sizes")
	}
	out := NewMatrix(a.S)
	for x := 0; x < a.S; x++ {
		arow := a.Row(x)
		orow := out.Row(x)
		for k, p := range arow {
			if p == 0 {
				continue
			}
			brow := b.Row(k)
			for y, pb := range brow {
				orow[y] += p * pb
			}
		}
	}
	return out
}

// SystematicScanMatrix builds one full scan sweep: the composition of
// single-site updates at vertices 0, 1, …, n−1 (§3's systematic scan
// [17, 18]). The sweep matrix is generally NOT reversible, but µ remains
// stationary — each factor preserves µ.
func SystematicScanMatrix(model *mrf.MRF, budget int) (*Matrix, error) {
	n := model.G.N()
	var sweep *Matrix
	for v := 0; v < n; v++ {
		pv, err := SingleSiteMatrix(model, v, budget)
		if err != nil {
			return nil, err
		}
		if sweep == nil {
			sweep = pv
		} else {
			sweep = Compose(sweep, pv)
		}
	}
	if sweep == nil {
		return nil, fmt.Errorf("exact: empty graph")
	}
	return sweep, nil
}

// ChromaticSweepMatrix builds one sweep of the chromatic scheduler [28]:
// greedily color the graph, then compose the parallel update of each color
// class (within a class vertices are non-adjacent, so the parallel update
// is the composition of its single-site updates in any order).
func ChromaticSweepMatrix(model *mrf.MRF, budget int) (*Matrix, error) {
	colors, used := model.G.GreedyColoring()
	classes := make([][]int, used)
	for v, c := range colors {
		classes[c] = append(classes[c], v)
	}
	var sweep *Matrix
	for _, class := range classes {
		for _, v := range class {
			pv, err := SingleSiteMatrix(model, v, budget)
			if err != nil {
				return nil, err
			}
			if sweep == nil {
				sweep = pv
			} else {
				sweep = Compose(sweep, pv)
			}
		}
	}
	if sweep == nil {
		return nil, fmt.Errorf("exact: empty graph")
	}
	return sweep, nil
}

// SpectralGap estimates the absolute spectral gap 1 − |λ₂| of a transition
// matrix reversible with respect to pi, by power iteration on the chain
// deflated by its stationary component. For reversible chains the relaxation
// time is 1/gap and τ(ε) ≤ (1/gap)·ln(1/(ε·min π)).
func SpectralGap(P *Matrix, pi []float64, iters int) float64 {
	s := P.S
	// Work in the π-weighted inner product: v ⟂ π means Σ π_x v_x = 0.
	v := make([]float64, s)
	for i := range v {
		v[i] = float64((i%7)-3) + 0.5 // arbitrary deterministic start
	}
	deflate := func(v []float64) {
		dot := 0.0
		for x := 0; x < s; x++ {
			dot += pi[x] * v[x]
		}
		for x := 0; x < s; x++ {
			v[x] -= dot
		}
	}
	norm := func(v []float64) float64 {
		acc := 0.0
		for x := 0; x < s; x++ {
			acc += pi[x] * v[x] * v[x]
		}
		return math.Sqrt(acc)
	}
	deflate(v)
	if n := norm(v); n > 0 {
		for i := range v {
			v[i] /= n
		}
	}
	next := make([]float64, s)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		// next = P v (action on functions: (Pf)(x) = Σ_y P(x,y) f(y)).
		for x := 0; x < s; x++ {
			acc := 0.0
			row := P.Row(x)
			for y, p := range row {
				if p != 0 {
					acc += p * v[y]
				}
			}
			next[x] = acc
		}
		deflate(next)
		n := norm(next)
		if n == 0 {
			return 1
		}
		lambda = n
		for i := range next {
			next[i] /= n
		}
		v, next = next, v
	}
	return 1 - lambda
}
