package exact

import (
	"math"
	"testing"

	"locsample/internal/graph"
	"locsample/internal/mrf"
)

func TestSingleSiteMatrixStationary(t *testing.T) {
	m := mrf.Coloring(graph.Cycle(4), 3)
	mu, _ := Enumerate(4, 3, m.Weight, 1<<20)
	for v := 0; v < 4; v++ {
		P, err := SingleSiteMatrix(m, v, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if e := P.RowStochasticErr(); e > 1e-12 {
			t.Fatalf("v=%d rows off by %v", v, e)
		}
		// Each single-site heat-bath factor is reversible w.r.t. µ.
		if e := P.DetailedBalanceErr(mu.P); e > 1e-12 {
			t.Fatalf("v=%d detailed balance violated by %v", v, e)
		}
	}
}

func TestScanStationaryButNotReversible(t *testing.T) {
	// The scan sweep preserves µ (composition of µ-preserving factors) but
	// is NOT reversible — the classical contrast with Glauber (§3, [17,18]).
	m := mrf.Coloring(graph.Path(3), 3)
	mu, _ := Enumerate(3, 3, m.Weight, 1<<20)
	P, err := SystematicScanMatrix(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e := P.RowStochasticErr(); e > 1e-12 {
		t.Fatalf("rows off by %v", e)
	}
	if e := P.StationaryErr(mu.P); e > 1e-10 {
		t.Fatalf("µ not stationary for scan: %v", e)
	}
	if e := P.DetailedBalanceErr(mu.P); e < 1e-6 {
		t.Fatalf("scan sweep unexpectedly reversible (residual %v)", e)
	}
}

func TestChromaticSweepStationary(t *testing.T) {
	m := mrf.Hardcore(graph.Cycle(4), 1.5)
	mu, _ := Enumerate(4, 2, m.Weight, 1<<20)
	P, err := ChromaticSweepMatrix(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e := P.StationaryErr(mu.P); e > 1e-10 {
		t.Fatalf("µ not stationary for chromatic sweep: %v", e)
	}
	// Long-run distribution from a point mass reaches µ.
	d := TV(P.DistributionAfter(0, 200), mu.P)
	if d > 1e-6 {
		t.Fatalf("chromatic sweep not converged: TV %v", d)
	}
}

func TestComposeAgainstDistribution(t *testing.T) {
	// Composing Glauber with itself equals two steps of DistributionAfter.
	m := mrf.Hardcore(graph.Path(3), 1.0)
	P, _ := GlauberMatrix(m, 1<<20)
	P2 := Compose(P, P)
	from := 3
	viaCompose := P2.Row(from)
	viaIterate := P.DistributionAfter(from, 2)
	for y := range viaIterate {
		if math.Abs(viaCompose[y]-viaIterate[y]) > 1e-12 {
			t.Fatalf("compose mismatch at %d: %v vs %v", y, viaCompose[y], viaIterate[y])
		}
	}
}

func TestComposePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	Compose(NewMatrix(2), NewMatrix(3))
}

func TestSpectralGapMatchesMixing(t *testing.T) {
	// For a reversible chain, τ(ε) ≈ ln(1/(ε·πmin))/gap. Check the gap
	// estimate brackets the exact mixing time within a loose factor.
	m := mrf.Coloring(graph.Cycle(4), 3)
	mu, _ := Enumerate(4, 3, m.Weight, 1<<20)
	P, _ := GlauberMatrix(m, 1<<20)
	gap := SpectralGap(P, mu.P, 3000)
	if gap <= 0 || gap >= 1 {
		t.Fatalf("gap %v out of range", gap)
	}
	tmix, _ := P.MixingTime(mu.P, 0.25, 5000)
	if tmix <= 0 {
		t.Fatal("no mixing")
	}
	// Relaxation-time sandwich: (1/gap − 1)·ln 2 ≤ τ(1/4) ≤ ln(4/πmin)/gap.
	piMin := math.Inf(1)
	for _, p := range mu.P {
		if p > 0 && p < piMin {
			piMin = p
		}
	}
	upper := math.Log(4/piMin) / gap
	lower := (1/gap - 1) * math.Log(2)
	if float64(tmix) > upper+1 {
		t.Fatalf("τ(1/4)=%d exceeds spectral upper bound %v", tmix, upper)
	}
	if float64(tmix) < lower-1 {
		t.Fatalf("τ(1/4)=%d below spectral lower bound %v", tmix, lower)
	}
}

func TestSpectralGapOrdering(t *testing.T) {
	// More colors ⇒ faster chain ⇒ larger gap.
	g := graph.Cycle(4)
	mu3, _ := Enumerate(4, 3, mrf.Coloring(g, 3).Weight, 1<<20)
	P3, _ := GlauberMatrix(mrf.Coloring(g, 3), 1<<20)
	mu4, _ := Enumerate(4, 4, mrf.Coloring(g, 4).Weight, 1<<20)
	P4, _ := GlauberMatrix(mrf.Coloring(g, 4), 1<<20)
	g3 := SpectralGap(P3, mu3.P, 600)
	g4 := SpectralGap(P4, mu4.P, 600)
	if g4 <= g3 {
		t.Fatalf("gap should grow with q: %v (q=3) vs %v (q=4)", g3, g4)
	}
}

func TestLubyGlauberGapBeatsGlauber(t *testing.T) {
	// Parallel updates make strictly faster progress per step: the
	// LubyGlauber sweep gap exceeds the single-site Glauber gap (Θ(n/Δ)
	// speedup, Theorem 3.2).
	m := mrf.Coloring(graph.Cycle(4), 4)
	mu, _ := Enumerate(4, 4, m.Weight, 1<<20)
	Pg, _ := GlauberMatrix(m, 1<<20)
	Pl, _ := LubyGlauberMatrix(m, 1<<20)
	gg := SpectralGap(Pg, mu.P, 600)
	gl := SpectralGap(Pl, mu.P, 600)
	if gl <= gg {
		t.Fatalf("LubyGlauber gap %v should exceed Glauber gap %v", gl, gg)
	}
}
