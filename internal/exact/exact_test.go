package exact

import (
	"math"
	"testing"

	"locsample/internal/csp"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

// cspDomSet returns a small dominating-set CSP shared by tests.
func cspDomSet(t *testing.T) *csp.CSP {
	t.Helper()
	return csp.DominatingSet(graph.Cycle(5))
}

func TestEnumerateColoringCounts(t *testing.T) {
	// Proper 3-colorings of C4: chromatic polynomial (q-1)^n + (q-1)(-1)^n
	// = 2^4 + 2 = 18.
	g := graph.Cycle(4)
	m := mrf.Coloring(g, 3)
	d, err := Enumerate(4, 3, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Z-18) > 1e-9 {
		t.Fatalf("Z = %v, want 18", d.Z)
	}
	// All feasible states equally likely.
	for s, p := range d.P {
		if p != 0 && math.Abs(p-1.0/18) > 1e-12 {
			t.Fatalf("state %d probability %v, want 1/18", s, p)
		}
	}
}

func TestEnumerateHardcoreZ(t *testing.T) {
	// Independent sets of P3 (path 0-1-2): {}, {0}, {1}, {2}, {0,2} → 5.
	// With λ=2: 1 + 2 + 2 + 2 + 4 = 11.
	g := graph.Path(3)
	m := mrf.Hardcore(g, 2)
	d, err := Enumerate(3, 2, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Z-11) > 1e-9 {
		t.Fatalf("Z = %v, want 11", d.Z)
	}
}

func TestIndexDecodeRoundTrip(t *testing.T) {
	sigma := make([]int, 5)
	for idx := 0; idx < 243; idx++ {
		DecodeInto(idx, 3, sigma)
		if got := Index(3, sigma); got != idx {
			t.Fatalf("round trip %d → %v → %d", idx, sigma, got)
		}
	}
}

func TestMarginalUniformColoring(t *testing.T) {
	// By color symmetry every vertex's marginal is uniform.
	g := graph.Path(4)
	m := mrf.Coloring(g, 3)
	d, err := Enumerate(4, 3, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		marg := d.Marginal(v)
		for c, p := range marg {
			if math.Abs(p-1.0/3) > 1e-12 {
				t.Fatalf("vertex %d color %d marginal %v", v, c, p)
			}
		}
	}
}

func TestConditionalMarginal(t *testing.T) {
	// Path 0-1-2, q=3, condition on σ_0 = 0: vertex 1 is uniform on {1,2}.
	g := graph.Path(3)
	m := mrf.Coloring(g, 3)
	d, err := Enumerate(3, 3, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	cond, err := d.ConditionalMarginal(1, map[int]int{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 0.5}
	for c := range want {
		if math.Abs(cond[c]-want[c]) > 1e-12 {
			t.Fatalf("conditional %v, want %v", cond, want)
		}
	}
	if _, err := d.ConditionalMarginal(1, map[int]int{0: 0, 1: 0}); err == nil {
		t.Fatal("zero-probability conditioning accepted")
	}
}

func TestJointMarginalProductForDistantVertices(t *testing.T) {
	// Endpoints of a long path are nearly independent; same vertex joint is
	// diagonal. Just verify JointMarginal sums to 1 and matches Marginal.
	g := graph.Path(4)
	m := mrf.Coloring(g, 3)
	d, _ := Enumerate(4, 3, m.Weight, 1<<20)
	joint := d.JointMarginal([]int{0, 3})
	sum := 0.0
	for _, p := range joint {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("joint sums to %v", sum)
	}
	// Marginalize out vertex 3.
	m0 := make([]float64, 3)
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			m0[i] += joint[j*3+i]
		}
	}
	want := d.Marginal(0)
	for c := range want {
		if math.Abs(m0[c]-want[c]) > 1e-12 {
			t.Fatalf("joint marginalization mismatch: %v vs %v", m0, want)
		}
	}
}

func TestTVBasics(t *testing.T) {
	if tv := TV([]float64{1, 0}, []float64{0, 1}); tv != 1 {
		t.Fatalf("TV of disjoint point masses %v, want 1", tv)
	}
	if tv := TV([]float64{0.5, 0.5}, []float64{0.5, 0.5}); tv != 0 {
		t.Fatalf("TV of equal dists %v, want 0", tv)
	}
	if tv := TV([]float64{0.75, 0.25}, []float64{0.25, 0.75}); math.Abs(tv-0.5) > 1e-15 {
		t.Fatalf("TV %v, want 0.5", tv)
	}
}

func TestProduct(t *testing.T) {
	p := []float64{0.3, 0.7}
	q := []float64{0.4, 0.6}
	pr := Product(p, q)
	if math.Abs(pr[0]-0.12) > 1e-15 || math.Abs(pr[3]-0.42) > 1e-15 {
		t.Fatalf("product %v", pr)
	}
}

// --- Transition matrices -------------------------------------------------

func TestGlauberMatrixReversible(t *testing.T) {
	g := graph.Cycle(4)
	m := mrf.Coloring(g, 3)
	mu, _ := Enumerate(4, 3, m.Weight, 1<<20)
	P, err := GlauberMatrix(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e := P.RowStochasticErr(); e > 1e-12 {
		t.Fatalf("row sums off by %v", e)
	}
	if e := P.DetailedBalanceErr(mu.P); e > 1e-12 {
		t.Fatalf("detailed balance violated by %v", e)
	}
	if e := P.StationaryErr(mu.P); e > 1e-10 {
		t.Fatalf("µ not stationary: residual %v", e)
	}
}

func TestGlauberMatrixHardcore(t *testing.T) {
	g := graph.Star(4)
	m := mrf.Hardcore(g, 1.7)
	mu, _ := Enumerate(4, 2, m.Weight, 1<<20)
	P, err := GlauberMatrix(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e := P.DetailedBalanceErr(mu.P); e > 1e-12 {
		t.Fatalf("detailed balance violated by %v", e)
	}
}

func TestLubyISDistribution(t *testing.T) {
	// On P2 (single edge): I = {argmax β}, so {0} and {1} each with
	// probability 1/2; the empty set and {0,1} are impossible.
	g := graph.Path(2)
	dist, err := LubyISDistribution(2, func(v int) []int32 { return g.Adj(v) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist[1]-0.5) > 1e-12 || math.Abs(dist[2]-0.5) > 1e-12 {
		t.Fatalf("Luby IS dist on edge: %v", dist)
	}
	if dist[0] != 0 || dist[3] != 0 {
		t.Fatalf("impossible sets have mass: %v", dist)
	}

	// On P3: orderings of {β0,β1,β2}. I always contains the global max.
	// Possible sets: {1}, {0,2}, {0}, {2}... vertex 1 in I iff β1 > β0,β2
	// (prob 1/3). {0,2} iff β0>β1 and β2>β1 (prob 1/3). {0} alone iff
	// β0>β1>β2... then 2 not max (β1>β2 blocks): {0} has prob 1/6; {2} 1/6.
	g3 := graph.Path(3)
	dist3, err := LubyISDistribution(3, func(v int) []int32 { return g3.Adj(v) })
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint32]float64{
		0b010: 1.0 / 3, // {1}
		0b101: 1.0 / 3, // {0,2}
		0b001: 1.0 / 6, // {0}
		0b100: 1.0 / 6, // {2}
	}
	for mask, w := range want {
		if math.Abs(dist3[mask]-w) > 1e-12 {
			t.Fatalf("Luby IS dist on P3: mask %03b = %v, want %v", mask, dist3[mask], w)
		}
	}
	// Every sampled set must be independent and the probabilities sum to 1.
	total := 0.0
	for mask, w := range dist3 {
		total += w
		sigma := []int{int(mask) & 1, int(mask >> 1 & 1), int(mask >> 2 & 1)}
		if !g3.IsIndependentSet(sigma) {
			t.Fatalf("Luby step produced dependent set %03b", mask)
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("Luby IS distribution sums to %v", total)
	}
}

func TestLubyGlauberMatrixReversible(t *testing.T) {
	// Proposition 3.1, exactly: reversible w.r.t. µ for several models.
	cases := []struct {
		name string
		m    *mrf.MRF
	}{
		{"coloring-C4-q3", mrf.Coloring(graph.Cycle(4), 3)},
		{"coloring-P4-q3", mrf.Coloring(graph.Path(4), 3)},
		{"hardcore-star-1.5", mrf.Hardcore(graph.Star(4), 1.5)},
		{"ising-P3", mrf.Ising(graph.Path(3), 2.0, 0.8)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, q := tc.m.G.N(), tc.m.Q
			mu, err := Enumerate(n, q, tc.m.Weight, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			P, err := LubyGlauberMatrix(tc.m, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			if e := P.RowStochasticErr(); e > 1e-10 {
				t.Fatalf("row sums off by %v", e)
			}
			if e := P.DetailedBalanceErr(mu.P); e > 1e-10 {
				t.Fatalf("detailed balance violated by %v", e)
			}
		})
	}
}

func TestLocalMetropolisMatrixReversible(t *testing.T) {
	// Theorem 4.1, exactly: reversible w.r.t. µ.
	cases := []struct {
		name string
		m    *mrf.MRF
	}{
		{"coloring-P3-q4", mrf.Coloring(graph.Path(3), 4)},
		{"coloring-C4-q4", mrf.Coloring(graph.Cycle(4), 4)},
		{"hardcore-P4-2.0", mrf.Hardcore(graph.Path(4), 2.0)},
		{"ising-C4", mrf.Ising(graph.Cycle(4), 1.6, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, q := tc.m.G.N(), tc.m.Q
			mu, err := Enumerate(n, q, tc.m.Weight, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			P, err := LocalMetropolisMatrix(tc.m, false, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			if e := P.RowStochasticErr(); e > 1e-10 {
				t.Fatalf("row sums off by %v", e)
			}
			if e := P.DetailedBalanceErr(mu.P); e > 1e-10 {
				t.Fatalf("detailed balance violated by %v", e)
			}
			if e := P.StationaryErr(mu.P); e > 1e-9 {
				t.Fatalf("µ not stationary: residual %v", e)
			}
		})
	}
}

func TestLocalMetropolisRule3Ablation(t *testing.T) {
	// E4: dropping filter rule 3 breaks detailed balance and biases the
	// stationary distribution measurably.
	m := mrf.Coloring(graph.Path(3), 4)
	mu, _ := Enumerate(3, 4, m.Weight, 1<<20)
	P, err := LocalMetropolisMatrix(m, true, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e := P.RowStochasticErr(); e > 1e-10 {
		t.Fatalf("ablated chain rows off by %v", e)
	}
	if e := P.DetailedBalanceErr(mu.P); e < 1e-6 {
		t.Fatalf("ablated chain still satisfies detailed balance (err %v)", e)
	}
	pi := P.Stationary(100000, 1e-14)
	if tv := TV(pi, mu.P); tv < 1e-3 {
		t.Fatalf("ablated stationary distribution too close to µ: TV = %v", tv)
	}
}

func TestMixingTimeGlauberPath(t *testing.T) {
	m := mrf.Coloring(graph.Path(3), 3)
	mu, _ := Enumerate(3, 3, m.Weight, 1<<20)
	P, _ := GlauberMatrix(m, 1<<20)
	tmix, d := P.MixingTime(mu.P, 0.25, 2000)
	if tmix <= 0 {
		t.Fatalf("Glauber on P3 did not mix within budget (final TV %v)", d)
	}
	// Tighter ε needs more steps.
	tmix2, _ := P.MixingTime(mu.P, 0.01, 5000)
	if tmix2 <= tmix {
		t.Fatalf("τ(0.01)=%d should exceed τ(0.25)=%d", tmix2, tmix)
	}
}

func TestDistributionAfterConverges(t *testing.T) {
	m := mrf.Coloring(graph.Cycle(4), 4)
	mu, _ := Enumerate(4, 4, m.Weight, 1<<22)
	P, err := LocalMetropolisMatrix(m, false, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// Start from a proper coloring and iterate; TV must shrink geometrically.
	// q = 2Δ here is below the 2+√2 threshold, so convergence is guaranteed
	// (Theorem 4.1) but not fast — allow a generous horizon.
	x0 := Index(4, []int{0, 1, 0, 1})
	d5 := TV(P.DistributionAfter(x0, 5), mu.P)
	d40 := TV(P.DistributionAfter(x0, 40), mu.P)
	d160 := TV(P.DistributionAfter(x0, 160), mu.P)
	if d40 > d5 || d160 > d40 {
		t.Fatalf("TV not decreasing: %v → %v → %v", d5, d40, d160)
	}
	if d160 > 1e-3 {
		t.Fatalf("LocalMetropolis on C4 not converged after 160 rounds: TV %v", d160)
	}
}

func TestStationaryMatchesEnumeration(t *testing.T) {
	m := mrf.Hardcore(graph.Path(4), 1.3)
	mu, _ := Enumerate(4, 2, m.Weight, 1<<20)
	P, _ := GlauberMatrix(m, 1<<20)
	pi := P.Stationary(100000, 1e-14)
	if tv := TV(pi, mu.P); tv > 1e-8 {
		t.Fatalf("power-iteration stationary differs from µ by %v", tv)
	}
}

// --- Influence -----------------------------------------------------------

func TestInfluenceMatrixColoring(t *testing.T) {
	g := graph.Path(3)
	m := mrf.Coloring(g, 3)
	rho, err := InfluenceMatrix(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// MRF conditional independence: non-neighbors have zero influence.
	if w := MaxOffNeighborInfluence(m, rho); w > 0 {
		t.Fatalf("non-neighbor influence %v", w)
	}
	// Influence is bounded by the paper's formula.
	alpha := TotalInfluence(rho)
	bound := ColoringInfluenceBound(m, []int{3, 3, 3})
	if alpha > bound+1e-12 {
		t.Fatalf("exact influence %v exceeds bound %v", alpha, bound)
	}
	if alpha <= 0 {
		t.Fatal("influence should be positive for q=3 on a path")
	}
}

func TestInfluenceShrinksWithQ(t *testing.T) {
	g := graph.Cycle(4)
	a3 := mustAlpha(t, mrf.Coloring(g, 3))
	a5 := mustAlpha(t, mrf.Coloring(g, 5))
	a8 := mustAlpha(t, mrf.Coloring(g, 8))
	if !(a8 < a5 && a5 < a3) {
		t.Fatalf("influence not decreasing in q: %v %v %v", a3, a5, a8)
	}
	// Dobrushin holds comfortably at q = 2Δ+1 = 5.
	if a5 >= 1 {
		t.Fatalf("alpha(q=5) = %v, want < 1", a5)
	}
}

func mustAlpha(t *testing.T, m *mrf.MRF) float64 {
	t.Helper()
	rho, err := InfluenceMatrix(m, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	return TotalInfluence(rho)
}

func TestCSPGlauberMatrixReversible(t *testing.T) {
	c := cspDomSet(t)
	mu, err := Enumerate(c.N, c.Q, c.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	P, err := CSPGlauberMatrix(c, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e := P.RowStochasticErr(); e > 1e-12 {
		t.Fatalf("rows off by %v", e)
	}
	if e := P.DetailedBalanceErr(mu.P); e > 1e-12 {
		t.Fatalf("CSP Glauber detailed balance violated by %v", e)
	}
}

func TestInfluenceIsingSingleEdge(t *testing.T) {
	// On a single edge, the Ising influence has the closed form
	// ρ = |β−1|/(β+1): the marginal at one endpoint is (β, 1)/(β+1) or
	// (1, β)/(β+1) depending on the neighbor's spin.
	for _, beta := range []float64{0.5, 1.0, 2.0, 4.0} {
		m := mrf.Ising(graph.Path(2), beta, 1)
		rho, err := InfluenceMatrix(m, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Abs(beta-1) / (beta + 1)
		if math.Abs(rho[0][1]-want) > 1e-12 || math.Abs(rho[1][0]-want) > 1e-12 {
			t.Fatalf("β=%v: ρ = %v/%v, want %v", beta, rho[0][1], rho[1][0], want)
		}
	}
}

func TestBudgets(t *testing.T) {
	big := mrf.Coloring(graph.Cycle(30), 3)
	if _, err := Enumerate(30, 3, big.Weight, 1000); err == nil {
		t.Fatal("budget not enforced in Enumerate")
	}
	if _, err := GlauberMatrix(big, 1000); err == nil {
		t.Fatal("budget not enforced in GlauberMatrix")
	}
	if _, err := LubyGlauberMatrix(big, 1000); err == nil {
		t.Fatal("budget not enforced in LubyGlauberMatrix")
	}
	if _, err := LocalMetropolisMatrix(big, false, 1000); err == nil {
		t.Fatal("budget not enforced in LocalMetropolisMatrix")
	}
	if _, err := LubyISDistribution(12, nil); err == nil {
		t.Fatal("LubyISDistribution accepted n > 10")
	}
}
