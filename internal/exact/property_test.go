package exact

import (
	"math"
	"testing"
	"testing/quick"

	"locsample/internal/graph"
	"locsample/internal/mrf"
	"locsample/internal/rng"
)

// Index/Decode round-trip over random (n, q, index) triples.
func TestIndexDecodeQuick(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, qRaw uint8) bool {
		n := int(nRaw%6) + 1
		q := int(qRaw%4) + 2
		states := 1
		for i := 0; i < n; i++ {
			states *= q
		}
		idx := int(rng.Derive(seed).Intn(states))
		sigma := make([]int, n)
		DecodeInto(idx, q, sigma)
		return Index(q, sigma) == idx
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// Enumerate normalizes any valid weight function.
func TestEnumerateNormalizesQuick(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.Derive(seed)
		g := graph.Gnp(4, 0.5, r)
		lambda := 0.2 + 2*r.Float64()
		m := mrf.Hardcore(g, lambda)
		d, err := Enumerate(4, 2, m.Weight, 1<<20)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range d.P {
			sum += p
		}
		return math.Abs(sum-1) < 1e-12
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TV is a metric: symmetric, zero iff equal, triangle inequality.
func TestTVMetricQuick(t *testing.T) {
	randDist := func(r *rng.Source, k int) []float64 {
		d := make([]float64, k)
		total := 0.0
		for i := range d {
			d[i] = r.Float64()
			total += d[i]
		}
		for i := range d {
			d[i] /= total
		}
		return d
	}
	err := quick.Check(func(seed uint64) bool {
		r := rng.Derive(seed)
		const k = 6
		p, q, s := randDist(r, k), randDist(r, k), randDist(r, k)
		if math.Abs(TV(p, q)-TV(q, p)) > 1e-12 {
			return false
		}
		if TV(p, p) != 0 {
			return false
		}
		if TV(p, q) > TV(p, s)+TV(s, q)+1e-12 {
			return false
		}
		return TV(p, q) >= 0 && TV(p, q) <= 1
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// All exact transition matrices are row-stochastic for random small models.
func TestMatricesRowStochasticQuick(t *testing.T) {
	err := quick.Check(func(seed uint64, which uint8) bool {
		r := rng.Derive(seed)
		g := graph.Gnp(3, 0.6, r)
		beta := 0.3 + 2*r.Float64()
		m := mrf.Ising(g, beta, 0.5+r.Float64())
		var P *Matrix
		var err error
		switch which % 3 {
		case 0:
			P, err = GlauberMatrix(m, 1<<16)
		case 1:
			P, err = LubyGlauberMatrix(m, 1<<16)
		default:
			P, err = LocalMetropolisMatrix(m, false, 1<<16)
		}
		if err != nil {
			return false
		}
		return P.RowStochasticErr() < 1e-10
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// Soft models (everywhere-positive activities) give reversible
// LocalMetropolis for arbitrary parameters — the general Theorem 4.1,
// by random instance.
func TestSoftModelReversibilityQuick(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.Derive(seed)
		g := graph.Cycle(3)
		// Random symmetric positive activity, random positive fields.
		a := mrf.NewMat(2)
		x00, x01, x11 := 0.2+r.Float64(), 0.2+r.Float64(), 0.2+r.Float64()
		a.Set(0, 0, x00)
		a.Set(0, 1, x01)
		a.Set(1, 0, x01)
		a.Set(1, 1, x11)
		acts := []*mrf.Mat{a, a, a}
		b := [][]float64{
			{0.5 + r.Float64(), 0.5 + r.Float64()},
			{0.5 + r.Float64(), 0.5 + r.Float64()},
			{0.5 + r.Float64(), 0.5 + r.Float64()},
		}
		m, err := mrf.New(g, 2, acts, b)
		if err != nil {
			return false
		}
		mu, err := Enumerate(3, 2, m.Weight, 1<<16)
		if err != nil {
			return false
		}
		P, err := LocalMetropolisMatrix(m, false, 1<<16)
		if err != nil {
			return false
		}
		return P.DetailedBalanceErr(mu.P) < 1e-12
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// Marginals of the enumerated distribution sum to 1 and match conditional
// reconstruction: µ(σ_v = c) = Σ_{c'} µ(σ_u = c') µ(σ_v = c | σ_u = c').
func TestMarginalConsistency(t *testing.T) {
	g := graph.Path(4)
	m := mrf.Coloring(g, 3)
	d, err := Enumerate(4, 3, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	mv := d.Marginal(2)
	mu := d.Marginal(0)
	recon := make([]float64, 3)
	for cu := 0; cu < 3; cu++ {
		if mu[cu] == 0 {
			continue
		}
		cond, err := d.ConditionalMarginal(2, map[int]int{0: cu})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 3; c++ {
			recon[c] += mu[cu] * cond[c]
		}
	}
	for c := 0; c < 3; c++ {
		if math.Abs(recon[c]-mv[c]) > 1e-12 {
			t.Fatalf("law of total probability violated: %v vs %v", recon, mv)
		}
	}
}
