package exact

import (
	"math"

	"locsample/internal/mrf"
)

// InfluenceMatrix computes the exact Dobrushin influence matrix of
// Definition 3.1: ρ_{i,j} is the maximum total variation distance between
// the conditional marginals µ_i^σ and µ_i^τ over all pairs of *feasible*
// configurations σ, τ that agree everywhere except at j. The computation
// enumerates all feasible configurations; exponential in n.
func InfluenceMatrix(model *mrf.MRF, budget int) ([][]float64, error) {
	n, q := model.G.N(), model.Q
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	rho := make([][]float64, n)
	for i := range rho {
		rho[i] = make([]float64, n)
	}
	sigma := make([]int, n)
	tau := make([]int, n)
	mi := make([]float64, q)
	mj := make([]float64, q)
	for s := 0; s < states; s++ {
		DecodeInto(s, q, sigma)
		if !model.Feasible(sigma) {
			continue
		}
		for j := 0; j < n; j++ {
			copy(tau, sigma)
			for a := sigma[j] + 1; a < q; a++ {
				// Consider each unordered pair {σ, τ} once (a > σ_j).
				tau[j] = a
				if !model.Feasible(tau) {
					continue
				}
				for i := 0; i < n; i++ {
					if i == j {
						continue
					}
					okS := model.MarginalInto(i, sigma, mi)
					okT := model.MarginalInto(i, tau, mj)
					if !okS || !okT {
						continue
					}
					d := TV(mi, mj)
					if d > rho[i][j] {
						rho[i][j] = d
					}
				}
			}
		}
	}
	return rho, nil
}

// TotalInfluence returns α = max_i Σ_j ρ_{i,j} (Definition 3.2). The
// Dobrushin condition is α < 1.
func TotalInfluence(rho [][]float64) float64 {
	alpha := 0.0
	for _, row := range rho {
		sum := 0.0
		for _, x := range row {
			sum += x
		}
		if sum > alpha {
			alpha = sum
		}
	}
	return alpha
}

// MaxOffNeighborInfluence returns the largest ρ_{i,j} over pairs i, j that
// are NOT adjacent in the model's graph. For an MRF this must be zero
// (conditional independence) — a structural sanity check used in tests.
func MaxOffNeighborInfluence(model *mrf.MRF, rho [][]float64) float64 {
	worst := 0.0
	n := model.G.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || model.G.HasEdge(i, j) {
				continue
			}
			if rho[i][j] > worst {
				worst = rho[i][j]
			}
		}
	}
	return worst
}

// ColoringInfluenceBound returns the paper's §3.2 bound on the total
// influence for (list) colorings, max_v d_v/(q_v − d_v), given list sizes
// qs. (+Inf when q_v ≤ d_v.)
func ColoringInfluenceBound(model *mrf.MRF, qs []int) float64 {
	alpha := 0.0
	for v := 0; v < model.G.N(); v++ {
		d := model.G.Deg(v)
		if d == 0 {
			continue
		}
		if qs[v] <= d {
			return math.Inf(1)
		}
		if a := float64(d) / float64(qs[v]-d); a > alpha {
			alpha = a
		}
	}
	return alpha
}
