package exact

import (
	"testing"

	"locsample/internal/graph"
	"locsample/internal/mrf"
)

// Lemma 3.3 of the paper: for any random pair (X, Y) of feasible
// configurations and any vertex i,
//
//	E[d_TV(µ_i^X, µ_i^Y)] ≤ Σ_k ρ_{i,k} · Pr[X_k ≠ Y_k].
//
// We verify it exactly for a concrete coupling: X ~ µ and Y obtained from X
// by resampling a uniformly random vertex from its conditional marginal
// (one Glauber step), enumerating the full joint law.
func TestLemma33Exact(t *testing.T) {
	models := []*mrf.MRF{
		mrf.Coloring(graph.Cycle(4), 3),
		mrf.Hardcore(graph.Path(4), 1.5),
		mrf.Ising(graph.Cycle(4), 1.7, 0.8),
	}
	for mi, m := range models {
		n, q := m.G.N(), m.Q
		mu, err := Enumerate(n, q, m.Weight, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		rho, err := InfluenceMatrix(m, 1<<20)
		if err != nil {
			t.Fatal(err)
		}

		// Enumerate the joint law of (X, Y).
		lhs := make([]float64, n)      // E[d_TV(µ_i^X, µ_i^Y)] per i
		disagree := make([]float64, n) // Pr[X_k ≠ Y_k] per k
		x := make([]int, n)
		y := make([]int, n)
		margJ := make([]float64, q)
		mi1 := make([]float64, q)
		mi2 := make([]float64, q)
		for s, px := range mu.P {
			if px == 0 {
				continue
			}
			DecodeInto(s, q, x)
			for j := 0; j < n; j++ {
				if !m.MarginalInto(j, x, margJ) {
					continue
				}
				for c := 0; c < q; c++ {
					pj := margJ[c]
					if pj == 0 {
						continue
					}
					copy(y, x)
					y[j] = c
					pPair := px * pj / float64(n)
					if c != x[j] {
						disagree[j] += pPair
					}
					for i := 0; i < n; i++ {
						ok1 := m.MarginalInto(i, x, mi1)
						ok2 := m.MarginalInto(i, y, mi2)
						if ok1 && ok2 {
							lhs[i] += pPair * TV(mi1, mi2)
						}
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			rhs := 0.0
			for k := 0; k < n; k++ {
				rhs += rho[i][k] * disagree[k]
			}
			if lhs[i] > rhs+1e-12 {
				t.Fatalf("model %d vertex %d: Lemma 3.3 violated: %v > %v", mi, i, lhs[i], rhs)
			}
		}
	}
}

// Global Markov property (the Hammersley–Clifford direction the paper's
// conditional-independence arguments rely on): on a path, conditioning on a
// middle vertex makes the two sides independent.
func TestGlobalMarkovPropertyOnPath(t *testing.T) {
	m := mrf.Hardcore(graph.Path(5), 1.7)
	mu, err := Enumerate(5, 2, m.Weight, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Condition on σ_2 = a; then (σ_0, σ_4) must factorize.
	for a := 0; a < 2; a++ {
		cond := map[int]int{2: a}
		c0, err := mu.ConditionalMarginal(0, cond)
		if err != nil {
			t.Fatal(err)
		}
		c4, err := mu.ConditionalMarginal(4, cond)
		if err != nil {
			t.Fatal(err)
		}
		// Joint conditional of (σ_0, σ_4) by direct summation.
		joint := make([]float64, 4)
		total := 0.0
		sigma := make([]int, 5)
		for s, p := range mu.P {
			if p == 0 {
				continue
			}
			DecodeInto(s, 2, sigma)
			if sigma[2] != a {
				continue
			}
			joint[sigma[4]*2+sigma[0]] += p
			total += p
		}
		for i := range joint {
			joint[i] /= total
		}
		prod := Product(c0, c4)
		if tv := TV(joint, prod); tv > 1e-12 {
			t.Fatalf("conditioned sides not independent (a=%d): TV %v", a, tv)
		}
	}
	// Control: WITHOUT conditioning the sides are dependent (at this size).
	m0 := mu.Marginal(0)
	m4 := mu.Marginal(4)
	joint := mu.JointMarginal([]int{0, 4})
	if tv := TV(joint, Product(m0, m4)); tv < 1e-6 {
		t.Fatalf("unconditioned endpoints look independent (TV %v) — control broken", tv)
	}
}

// The influence matrix of a DISCONNECTED model is block-diagonal: vertices
// in different components never influence each other.
func TestInfluenceRespectsComponents(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	m := mrf.Ising(g, 2.5, 1)
	rho, err := InfluenceMatrix(m, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		if rho[pair[0]][pair[1]] != 0 || rho[pair[1]][pair[0]] != 0 {
			t.Fatalf("cross-component influence ρ[%d][%d] = %v", pair[0], pair[1], rho[pair[0]][pair[1]])
		}
	}
	if rho[0][1] <= 0 {
		t.Fatal("within-component influence should be positive for β=2.5")
	}
}
