package exact

import (
	"fmt"
	"math"

	"locsample/internal/csp"
	"locsample/internal/mrf"
)

// Matrix is a dense row-stochastic transition matrix over S states.
type Matrix struct {
	S int
	P []float64 // row-major, length S*S
}

// NewMatrix returns a zero S×S matrix.
func NewMatrix(s int) *Matrix {
	return &Matrix{S: s, P: make([]float64, s*s)}
}

// At returns P(x → y).
func (m *Matrix) At(x, y int) float64 { return m.P[x*m.S+y] }

// Add accumulates p into entry (x, y).
func (m *Matrix) Add(x, y int, p float64) { m.P[x*m.S+y] += p }

// Row returns the x-th row (a view, not a copy).
func (m *Matrix) Row(x int) []float64 { return m.P[x*m.S : (x+1)*m.S] }

// RowStochasticErr returns max_x |Σ_y P(x,y) − 1|.
func (m *Matrix) RowStochasticErr() float64 {
	worst := 0.0
	for x := 0; x < m.S; x++ {
		sum := 0.0
		for _, p := range m.Row(x) {
			sum += p
		}
		if e := math.Abs(sum - 1); e > worst {
			worst = e
		}
	}
	return worst
}

// DetailedBalanceErr returns max_{x,y} |π_x P(x,y) − π_y P(y,x)| — zero for
// a chain reversible with respect to π.
func (m *Matrix) DetailedBalanceErr(pi []float64) float64 {
	worst := 0.0
	for x := 0; x < m.S; x++ {
		for y := x + 1; y < m.S; y++ {
			if e := math.Abs(pi[x]*m.At(x, y) - pi[y]*m.At(y, x)); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// StationaryErr returns the L1 residual ‖πP − π‖₁, zero when π is
// stationary.
func (m *Matrix) StationaryErr(pi []float64) float64 {
	res := 0.0
	for y := 0; y < m.S; y++ {
		acc := 0.0
		for x := 0; x < m.S; x++ {
			acc += pi[x] * m.At(x, y)
		}
		res += math.Abs(acc - pi[y])
	}
	return res
}

// Stationary computes the stationary distribution by power iteration from
// the uniform distribution, stopping when successive iterates differ by at
// most tol in L1 or after maxIter steps.
func (m *Matrix) Stationary(maxIter int, tol float64) []float64 {
	cur := make([]float64, m.S)
	next := make([]float64, m.S)
	for i := range cur {
		cur[i] = 1 / float64(m.S)
	}
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for x := 0; x < m.S; x++ {
			px := cur[x]
			if px == 0 {
				continue
			}
			row := m.Row(x)
			for y, p := range row {
				next[y] += px * p
			}
		}
		diff := 0.0
		for i := range cur {
			diff += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if diff <= tol {
			break
		}
	}
	return cur
}

// MixingTime returns the exact mixing time τ(ε) = min{t : max_x
// TV(P^t(x,·), π) ≤ ε}, computed by iterating the full matrix power. It
// returns -1 if the bound is not reached within tmax steps, together with
// the final worst-case TV distance.
func (m *Matrix) MixingTime(pi []float64, eps float64, tmax int) (int, float64) {
	// cur = P^t, advanced one multiplication per step.
	cur := make([]float64, len(m.P))
	copy(cur, m.P)
	next := make([]float64, len(m.P))
	worst := func(mat []float64) float64 {
		w := 0.0
		for x := 0; x < m.S; x++ {
			row := mat[x*m.S : (x+1)*m.S]
			d := 0.0
			for y := 0; y < m.S; y++ {
				d += math.Abs(row[y] - pi[y])
			}
			if d/2 > w {
				w = d / 2
			}
		}
		return w
	}
	d := worst(cur)
	if d <= eps {
		return 1, d
	}
	for t := 2; t <= tmax; t++ {
		// next = cur × P.
		for i := range next {
			next[i] = 0
		}
		for x := 0; x < m.S; x++ {
			curRow := cur[x*m.S : (x+1)*m.S]
			nextRow := next[x*m.S : (x+1)*m.S]
			for k := 0; k < m.S; k++ {
				c := curRow[k]
				if c == 0 {
					continue
				}
				pRow := m.Row(k)
				for y := 0; y < m.S; y++ {
					nextRow[y] += c * pRow[y]
				}
			}
		}
		cur, next = next, cur
		d = worst(cur)
		if d <= eps {
			return t, d
		}
	}
	return -1, d
}

// DistributionAfter returns the distribution of X^(t) started from the
// deterministic state x0.
func (m *Matrix) DistributionAfter(x0, t int) []float64 {
	cur := make([]float64, m.S)
	next := make([]float64, m.S)
	cur[x0] = 1
	for step := 0; step < t; step++ {
		for i := range next {
			next[i] = 0
		}
		for x := 0; x < m.S; x++ {
			px := cur[x]
			if px == 0 {
				continue
			}
			row := m.Row(x)
			for y, p := range row {
				next[y] += px * p
			}
		}
		cur, next = next, cur
	}
	return cur
}

// --- Glauber -----------------------------------------------------------

// GlauberMatrix builds the exact transition matrix of the single-site
// heat-bath Glauber dynamics on m (uniform vertex choice, conditional
// resampling per Eq. (2)). States where a chosen vertex's marginal is
// undefined keep their value (matching internal/chains).
func GlauberMatrix(model *mrf.MRF, budget int) (*Matrix, error) {
	n, q := model.G.N(), model.Q
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	P := NewMatrix(states)
	sigma := make([]int, n)
	marg := make([]float64, q)
	pv := 1 / float64(n)
	for x := 0; x < states; x++ {
		DecodeInto(x, q, sigma)
		for v := 0; v < n; v++ {
			if !model.MarginalInto(v, sigma, marg) {
				P.Add(x, x, pv)
				continue
			}
			saved := sigma[v]
			for c := 0; c < q; c++ {
				if marg[c] == 0 {
					continue
				}
				sigma[v] = c
				P.Add(x, Index(q, sigma), pv*marg[c])
			}
			sigma[v] = saved
		}
	}
	return P, nil
}

// --- LubyGlauber ---------------------------------------------------------

// LubyISDistribution enumerates the distribution of the Luby-step
// independent set: each vertex draws an i.i.d. uniform ID and joins I iff it
// is the strict maximum over its inclusive neighborhood. Since only the
// relative order matters, the distribution is computed exactly by
// enumerating all n! orderings. neighbors[v] lists the (hyper)graph
// neighborhood of v. Requires n <= 10.
func LubyISDistribution(n int, neighbors func(v int) []int32) (map[uint32]float64, error) {
	if n > 10 {
		return nil, fmt.Errorf("exact: LubyISDistribution needs n <= 10, got %d", n)
	}
	dist := map[uint32]float64{}
	perm := make([]int, n)
	rank := make([]int, n)
	var rec func(depth int, count *int)
	total := 0
	rec = func(depth int, count *int) {
		if depth == n {
			for v := 0; v < n; v++ {
				rank[perm[v]] = v
			}
			var mask uint32
			for v := 0; v < n; v++ {
				isMax := true
				for _, u := range neighbors(v) {
					if rank[u] > rank[v] {
						isMax = false
						break
					}
				}
				if isMax {
					mask |= 1 << v
				}
			}
			dist[mask]++
			*count++
			return
		}
		for i := depth; i < n; i++ {
			perm[depth], perm[i] = perm[i], perm[depth]
			rec(depth+1, count)
			perm[depth], perm[i] = perm[i], perm[depth]
		}
	}
	for i := range perm {
		perm[i] = i
	}
	rec(0, &total)
	inv := 1 / float64(total)
	for k := range dist {
		dist[k] *= inv
	}
	return dist, nil
}

// LubyGlauberMatrix builds the exact transition matrix of Algorithm 1:
// average over the Luby independent-set distribution of the product of
// per-vertex heat-bath updates.
func LubyGlauberMatrix(model *mrf.MRF, budget int) (*Matrix, error) {
	n, q := model.G.N(), model.Q
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	isDist, err := LubyISDistribution(n, func(v int) []int32 { return model.G.Adj(v) })
	if err != nil {
		return nil, err
	}
	P := NewMatrix(states)
	sigma := make([]int, n)
	work := make([]int, n)
	margs := make([][]float64, n)
	for x := 0; x < states; x++ {
		DecodeInto(x, q, sigma)
		for mask, pmask := range isDist {
			// Vertices in I resample independently given X (I is
			// independent, so each uses only old neighbor values).
			var members []int
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					members = append(members, v)
				}
			}
			copy(work, sigma)
			for _, v := range members {
				if margs[v] == nil {
					margs[v] = make([]float64, q)
				}
				if !model.MarginalInto(v, sigma, margs[v]) {
					// Undefined marginal: v keeps its value.
					for i := range margs[v] {
						margs[v][i] = 0
					}
					margs[v][sigma[v]] = 1
				}
			}
			// Enumerate joint outcomes over members.
			var rec func(i int, p float64)
			rec = func(i int, p float64) {
				if p == 0 {
					return
				}
				if i == len(members) {
					P.Add(x, Index(q, work), pmask*p)
					return
				}
				v := members[i]
				for c := 0; c < q; c++ {
					if margs[v][c] == 0 {
						continue
					}
					work[v] = c
					rec(i+1, p*margs[v][c])
				}
				work[v] = sigma[v]
			}
			rec(0, 1)
		}
	}
	return P, nil
}

// --- LocalMetropolis -----------------------------------------------------

// LocalMetropolisMatrix builds the exact transition matrix of Algorithm 2 by
// enumerating all proposal vectors σ ∈ [q]^V and all edge-coin outcomes
// C ∈ {0,1}^E. dropRule3 reproduces the E4 ablation (omit the Ã_e(σ_u, X_v)
// factor).
func LocalMetropolisMatrix(model *mrf.MRF, dropRule3 bool, budget int) (*Matrix, error) {
	g := model.G
	n, q, mEdges := g.N(), model.Q, g.M()
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	if mEdges > 20 {
		return nil, fmt.Errorf("exact: LocalMetropolisMatrix needs m <= 20 edges, got %d", mEdges)
	}
	P := NewMatrix(states)
	sigma := make([]int, n)
	prop := make([]int, n)
	out := make([]int, n)
	propDist := make([][]float64, n)
	for v := 0; v < n; v++ {
		propDist[v] = make([]float64, q)
		model.ProposalDistInto(v, propDist[v])
	}
	passP := make([]float64, mEdges)
	for x := 0; x < states; x++ {
		DecodeInto(x, q, sigma)
		// Enumerate proposals.
		propStates := states // same [q]^n space
		for ps := 0; ps < propStates; ps++ {
			DecodeInto(ps, q, prop)
			pProp := 1.0
			for v := 0; v < n; v++ {
				pProp *= propDist[v][prop[v]]
				if pProp == 0 {
					break
				}
			}
			if pProp == 0 {
				continue
			}
			for id, e := range g.Edges() {
				a := model.NormalizedEdge(id)
				p := a.At(prop[e.U], prop[e.V]) * a.At(sigma[e.U], prop[e.V])
				if !dropRule3 {
					p *= a.At(prop[e.U], sigma[e.V])
				}
				passP[id] = p
			}
			// Enumerate coin outcomes.
			for cmask := 0; cmask < 1<<mEdges; cmask++ {
				pC := pProp
				for id := 0; id < mEdges; id++ {
					if cmask&(1<<id) != 0 {
						pC *= passP[id]
					} else {
						pC *= 1 - passP[id]
					}
					if pC == 0 {
						break
					}
				}
				if pC == 0 {
					continue
				}
				for v := 0; v < n; v++ {
					accept := true
					for _, id := range g.Inc(v) {
						if cmask&(1<<uint(id)) == 0 {
							accept = false
							break
						}
					}
					if accept {
						out[v] = prop[v]
					} else {
						out[v] = sigma[v]
					}
				}
				P.Add(x, Index(q, out), pC)
			}
		}
	}
	return P, nil
}

// SynchronousGlauberMatrix builds the transition matrix of the NAIVE fully
// synchronous heat-bath dynamics: every vertex simultaneously resamples from
// its conditional marginal given the previous round,
//
//	P(X, Y) = Π_v µ_v(Y_v | X_{Γ(v)}).
//
// This is the "update all variables simultaneously" strawman behind the
// paper's motivating question in §1.1: it is generally NOT reversible and
// its stationary distribution is NOT µ (experiment E14 quantifies the
// bias); LubyGlauber avoids it by scheduling an independent set, and
// LocalMetropolis by filtering proposals.
func SynchronousGlauberMatrix(model *mrf.MRF, budget int) (*Matrix, error) {
	n, q := model.G.N(), model.Q
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	P := NewMatrix(states)
	sigma := make([]int, n)
	out := make([]int, n)
	margs := make([][]float64, n)
	for v := range margs {
		margs[v] = make([]float64, q)
	}
	for x := 0; x < states; x++ {
		DecodeInto(x, q, sigma)
		for v := 0; v < n; v++ {
			if !model.MarginalInto(v, sigma, margs[v]) {
				for c := range margs[v] {
					margs[v][c] = 0
				}
				margs[v][sigma[v]] = 1
			}
		}
		var rec func(v int, p float64)
		rec = func(v int, p float64) {
			if p == 0 {
				return
			}
			if v == n {
				P.Add(x, Index(q, out), p)
				return
			}
			for c := 0; c < q; c++ {
				if margs[v][c] == 0 {
					continue
				}
				out[v] = c
				rec(v+1, p*margs[v][c])
			}
		}
		rec(0, 1)
	}
	return P, nil
}

// --- CSP chains ----------------------------------------------------------

// CSPGlauberMatrix builds the exact transition matrix of single-site
// Glauber dynamics on a CSP (uniform vertex choice, heat-bath resampling
// from the CSP conditional marginal).
func CSPGlauberMatrix(c *csp.CSP, budget int) (*Matrix, error) {
	n, q := c.N, c.Q
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	P := NewMatrix(states)
	sigma := make([]int, n)
	marg := make([]float64, q)
	pv := 1 / float64(n)
	for x := 0; x < states; x++ {
		DecodeInto(x, q, sigma)
		for v := 0; v < n; v++ {
			if !c.MarginalInto(v, sigma, marg) {
				P.Add(x, x, pv)
				continue
			}
			saved := sigma[v]
			for a := 0; a < q; a++ {
				if marg[a] == 0 {
					continue
				}
				sigma[v] = a
				P.Add(x, Index(q, sigma), pv*marg[a])
			}
			sigma[v] = saved
		}
	}
	return P, nil
}

// CSPLubyGlauberMatrix builds the exact transition matrix of the hypergraph
// LubyGlauber chain on a CSP (Luby step over hypergraph neighborhoods,
// heat-bath resampling from CSP conditional marginals).
func CSPLubyGlauberMatrix(c *csp.CSP, budget int) (*Matrix, error) {
	n, q := c.N, c.Q
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	isDist, err := LubyISDistribution(n, c.Neighborhood)
	if err != nil {
		return nil, err
	}
	P := NewMatrix(states)
	sigma := make([]int, n)
	work := make([]int, n)
	margs := make([][]float64, n)
	for x := 0; x < states; x++ {
		DecodeInto(x, q, sigma)
		for mask, pmask := range isDist {
			var members []int
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					members = append(members, v)
				}
			}
			for _, v := range members {
				if margs[v] == nil {
					margs[v] = make([]float64, q)
				}
				if !c.MarginalInto(v, sigma, margs[v]) {
					for i := range margs[v] {
						margs[v][i] = 0
					}
					margs[v][sigma[v]] = 1
				}
			}
			copy(work, sigma)
			var rec func(i int, p float64)
			rec = func(i int, p float64) {
				if p == 0 {
					return
				}
				if i == len(members) {
					P.Add(x, Index(q, work), pmask*p)
					return
				}
				v := members[i]
				for a := 0; a < q; a++ {
					if margs[v][a] == 0 {
						continue
					}
					work[v] = a
					rec(i+1, p*margs[v][a])
				}
				work[v] = sigma[v]
			}
			rec(0, 1)
		}
	}
	return P, nil
}

// CSPLocalMetropolisMatrix builds the exact transition matrix of the CSP
// LocalMetropolis chain (2^k−1-mixing filter per constraint).
func CSPLocalMetropolisMatrix(c *csp.CSP, budget int) (*Matrix, error) {
	n, q := c.N, c.Q
	nCons := len(c.Cons)
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	if nCons > 20 {
		return nil, fmt.Errorf("exact: CSPLocalMetropolisMatrix needs <= 20 constraints, got %d", nCons)
	}
	P := NewMatrix(states)
	sigma := make([]int, n)
	prop := make([]int, n)
	out := make([]int, n)
	propDist := make([][]float64, n)
	for v := 0; v < n; v++ {
		propDist[v] = make([]float64, q)
		c.ProposalDistInto(v, propDist[v])
	}
	passP := make([]float64, nCons)
	for x := 0; x < states; x++ {
		DecodeInto(x, q, sigma)
		for ps := 0; ps < states; ps++ {
			DecodeInto(ps, q, prop)
			pProp := 1.0
			for v := 0; v < n; v++ {
				pProp *= propDist[v][prop[v]]
				if pProp == 0 {
					break
				}
			}
			if pProp == 0 {
				continue
			}
			for ci := 0; ci < nCons; ci++ {
				passP[ci] = c.CheckProb(ci, sigma, prop)
			}
			for cmask := 0; cmask < 1<<nCons; cmask++ {
				pC := pProp
				for ci := 0; ci < nCons; ci++ {
					if cmask&(1<<ci) != 0 {
						pC *= passP[ci]
					} else {
						pC *= 1 - passP[ci]
					}
					if pC == 0 {
						break
					}
				}
				if pC == 0 {
					continue
				}
				for v := 0; v < n; v++ {
					accept := true
					for _, ci := range c.ConstraintsOf(v) {
						if cmask&(1<<uint(ci)) == 0 {
							accept = false
							break
						}
					}
					if accept {
						out[v] = prop[v]
					} else {
						out[v] = sigma[v]
					}
				}
				P.Add(x, Index(q, out), pC)
			}
		}
	}
	return P, nil
}
