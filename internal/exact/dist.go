// Package exact provides brute-force inference for small instances: full
// enumeration of Gibbs distributions, exact transition matrices for every
// chain in this repository, detailed-balance residuals, stationary
// distributions and exact mixing times.
//
// These tools are the ground truth against which the samplers are verified:
// Proposition 3.1 and Theorem 4.1 (reversibility and stationarity) are
// checked to floating-point accuracy rather than statistically, and the E4
// ablation (removing LocalMetropolis filter rule 3) is shown to break both.
// Everything here is exponential in n by design; budgets guard against
// accidental blow-ups.
package exact

import (
	"fmt"
	"math"
)

// WeightFn assigns a non-negative weight to a configuration in [q]^n.
type WeightFn func(sigma []int) float64

// Dist is a probability distribution over [q]^n, indexed by the base-q
// encoding of configurations (vertex 0 is the least significant digit).
type Dist struct {
	N, Q int
	P    []float64 // length Q^N, sums to 1
	Z    float64   // partition function of the weights it was built from
}

// States returns q^n, or an error if it exceeds budget.
func States(n, q, budget int) (int, error) {
	states := 1
	for i := 0; i < n; i++ {
		states *= q
		if states > budget {
			return 0, fmt.Errorf("exact: q^n = %d^%d exceeds budget %d", q, n, budget)
		}
	}
	return states, nil
}

// Enumerate computes the Gibbs distribution of the weight function by full
// enumeration. It returns an error if q^n exceeds budget or the partition
// function is not positive and finite.
func Enumerate(n, q int, w WeightFn, budget int) (*Dist, error) {
	states, err := States(n, q, budget)
	if err != nil {
		return nil, err
	}
	d := &Dist{N: n, Q: q, P: make([]float64, states)}
	sigma := make([]int, n)
	for s := 0; s < states; s++ {
		DecodeInto(s, q, sigma)
		x := w(sigma)
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("exact: invalid weight %v at state %d", x, s)
		}
		d.P[s] = x
		d.Z += x
	}
	if d.Z <= 0 {
		return nil, fmt.Errorf("exact: partition function is zero")
	}
	inv := 1 / d.Z
	for s := range d.P {
		d.P[s] *= inv
	}
	return d, nil
}

// Index returns the base-q encoding of sigma.
func Index(q int, sigma []int) int {
	idx := 0
	for i := len(sigma) - 1; i >= 0; i-- {
		idx = idx*q + sigma[i]
	}
	return idx
}

// DecodeInto writes the configuration encoded by idx into sigma.
func DecodeInto(idx, q int, sigma []int) {
	for i := range sigma {
		sigma[i] = idx % q
		idx /= q
	}
}

// Marginal returns the marginal distribution of vertex v.
func (d *Dist) Marginal(v int) []float64 {
	out := make([]float64, d.Q)
	sigma := make([]int, d.N)
	for s, p := range d.P {
		if p == 0 {
			continue
		}
		DecodeInto(s, d.Q, sigma)
		out[sigma[v]] += p
	}
	return out
}

// JointMarginal returns the joint marginal of the listed vertices as a
// distribution over [q]^len(vs), indexed with vs[0] least significant.
func (d *Dist) JointMarginal(vs []int) []float64 {
	size := 1
	for range vs {
		size *= d.Q
	}
	out := make([]float64, size)
	sigma := make([]int, d.N)
	for s, p := range d.P {
		if p == 0 {
			continue
		}
		DecodeInto(s, d.Q, sigma)
		idx := 0
		for i := len(vs) - 1; i >= 0; i-- {
			idx = idx*d.Q + sigma[vs[i]]
		}
		out[idx] += p
	}
	return out
}

// ConditionalMarginal returns the marginal of vertex v conditioned on the
// assignment cond (vertex → value), or an error if the event has zero mass.
func (d *Dist) ConditionalMarginal(v int, cond map[int]int) ([]float64, error) {
	out := make([]float64, d.Q)
	total := 0.0
	sigma := make([]int, d.N)
	for s, p := range d.P {
		if p == 0 {
			continue
		}
		DecodeInto(s, d.Q, sigma)
		ok := true
		for u, val := range cond {
			if sigma[u] != val {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out[sigma[v]] += p
		total += p
	}
	if total <= 0 {
		return nil, fmt.Errorf("exact: conditioning event has zero probability")
	}
	inv := 1 / total
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// TV returns the total variation distance ½·Σ|p_i − q_i| between two
// distributions given as aligned slices.
func TV(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("exact: TV over different supports")
	}
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2
}

// Product returns the product distribution p⊗q (indexed with p's coordinate
// least significant).
func Product(p, q []float64) []float64 {
	out := make([]float64, len(p)*len(q))
	for j, qj := range q {
		for i, pi := range p {
			out[j*len(p)+i] = pi * qj
		}
	}
	return out
}
