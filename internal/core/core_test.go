package core

import (
	"math"
	"testing"

	"locsample/internal/chains"
	"locsample/internal/graph"
	"locsample/internal/mrf"
)

func TestLubyGlauberRounds(t *testing.T) {
	r1, err := LubyGlauberRounds(100, 4, 0.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if r1 <= 0 {
		t.Fatalf("budget %d", r1)
	}
	// Budget grows with Δ (linearly up to rounding) and with 1/(1−α).
	r2, _ := LubyGlauberRounds(100, 8, 0.5, 0.01)
	if r2 <= r1 {
		t.Fatalf("budget not increasing in Δ: %d vs %d", r1, r2)
	}
	r3, _ := LubyGlauberRounds(100, 4, 0.9, 0.01)
	if r3 <= r1 {
		t.Fatalf("budget not increasing in α: %d vs %d", r1, r3)
	}
	// Grows logarithmically in n: doubling n adds ~(1/γ)ln2.
	r4, _ := LubyGlauberRounds(200, 4, 0.5, 0.01)
	if r4 <= r1 || r4 > r1+40 {
		t.Fatalf("n-scaling looks wrong: %d vs %d", r1, r4)
	}
	if _, err := LubyGlauberRounds(10, 3, 1.0, 0.1); err == nil {
		t.Fatal("α = 1 accepted")
	}
	if _, err := LubyGlauberRounds(10, 3, 0.5, 0); err == nil {
		t.Fatal("ε = 0 accepted")
	}
}

func TestLocalMetropolisRoundsColoring(t *testing.T) {
	// q = 4Δ is deep in the proved regime for large Δ.
	r1, err := LocalMetropolisRoundsColoring(1000, 50, 200, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The budget is Δ-free: the same q/Δ ratio at double Δ gives a similar
	// budget (only the log n·Δ term moves).
	r2, err := LocalMetropolisRoundsColoring(1000, 100, 400, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if float64(r2) > 1.3*float64(r1) {
		t.Fatalf("LocalMetropolis budget grew with Δ: %d vs %d", r1, r2)
	}
	// q below the threshold errors.
	if _, err := LocalMetropolisRoundsColoring(1000, 50, 120, 0.01); err == nil {
		t.Fatal("q = 2.4Δ accepted")
	}
	// Isolated-vertex graph works.
	if r, err := LocalMetropolisRoundsColoring(10, 0, 3, 0.1); err != nil || r != 1 {
		t.Fatalf("Δ=0: %d, %v", r, err)
	}
}

func TestAutoRoundsColoring(t *testing.T) {
	g := graph.Torus(5, 5)
	m := mrf.Coloring(g, 16) // q = 4Δ
	lm, err := AutoRounds(m, chains.LocalMetropolis, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := AutoRounds(m, chains.LubyGlauber, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if lm <= 0 || lg <= 0 || lm >= lg {
		t.Fatalf("budgets lm=%d lg=%d", lm, lg)
	}
}

func TestAutoRoundsHardcoreFallsBackToInfluence(t *testing.T) {
	// Small hardcore model in the uniqueness regime: the exact influence
	// matrix is computable and α < 1, so the Dobrushin budget applies.
	g := graph.Cycle(6)
	m := mrf.Hardcore(g, 0.5)
	r, err := AutoRounds(m, chains.LubyGlauber, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 {
		t.Fatalf("budget %d", r)
	}
}

func TestIsColoringModel(t *testing.T) {
	g := graph.Path(3)
	if !mrf.Coloring(g, 3).IsColoringModel() {
		t.Fatal("coloring not recognized")
	}
	if mrf.Hardcore(g, 1).IsColoringModel() {
		t.Fatal("hardcore recognized as coloring")
	}
	if mrf.Potts(g, 3, 0.5).IsColoringModel() {
		t.Fatal("soft Potts recognized as coloring")
	}
}

func TestAutoRoundsHeuristicFallback(t *testing.T) {
	// A large non-coloring model outside the exact-influence budget must
	// fall back to the heuristic: finite, positive, and LocalMetropolis's
	// heuristic is Δ-free while LubyGlauber's grows with Δ.
	g := graph.Star(300) // Δ = 299, too many states for exact influence
	m := mrf.Hardcore(g, 3.0)
	lm, err := AutoRounds(m, chains.LocalMetropolis, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := AutoRounds(m, chains.LubyGlauber, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if lm <= 0 || lg <= 0 {
		t.Fatalf("budgets %d, %d", lm, lg)
	}
	if lg <= lm {
		t.Fatalf("heuristic LubyGlauber budget %d should exceed LocalMetropolis %d at Δ=299", lg, lm)
	}
}

func TestSampleErrors(t *testing.T) {
	m := mrf.Coloring(graph.Cycle(3), 2) // infeasible model
	if _, err := Sample(m, Config{Rounds: 10}); err == nil {
		t.Fatal("impossible model accepted")
	}
	m2 := mrf.Coloring(graph.Cycle(6), 5)
	if _, err := Sample(m2, Config{Rounds: 5, Init: []int{0}}); err == nil {
		t.Fatal("short init accepted")
	}
	if _, err := Sample(m2, Config{Rounds: 5, Algorithm: chains.Glauber, Distributed: true}); err == nil {
		t.Fatal("distributed Glauber accepted")
	}
}

func TestSampleDefaultEpsilon(t *testing.T) {
	g := graph.Cycle(10)
	m := mrf.Coloring(g, 8) // q = 4Δ: proved regime
	res, err := Sample(m, Config{Algorithm: chains.LocalMetropolis, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TheoryRounds <= 0 {
		t.Fatal("no theory budget recorded")
	}
	want, err := LocalMetropolisRoundsColoring(10, 2, 8, math.Exp(-2))
	if err != nil {
		t.Fatal(err)
	}
	if res.TheoryRounds != want {
		t.Fatalf("budget %d, want %d", res.TheoryRounds, want)
	}
}
