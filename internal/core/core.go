// Package core is the facade of the library: it ties a model, an algorithm
// choice, and theory-derived round budgets into a single Sample call.
//
// The round budgets come from the paper's theorems:
//
//   - LubyGlauber (Theorem 3.2): with Luby-step selection probability
//     γ = 1/(Δ+1) and total influence α < 1, choosing
//     T₁ = ⌈(1/γ)·ln(4n/ε)⌉ and T₂ = ⌈1/((1−α)γ)·ln(2n/ε)⌉ gives
//     d_TV ≤ ε after T₁+T₂ rounds.
//   - LocalMetropolis for colorings (Theorem 4.2 via Lemma 4.3): with
//     one-step contraction margin δ (the LHS of (13) or (26), whichever is
//     positive and larger), τ(ε) ≤ ln(nΔ/ε)/δ since diam(Ω) ≤ nΔ in the
//     degree-weighted path-coupling metric.
package core

import (
	"fmt"
	"log/slog"
	"math"
	"time"

	"locsample/internal/chains"
	"locsample/internal/cluster"
	"locsample/internal/coupling"
	"locsample/internal/csp"
	"locsample/internal/dist"
	"locsample/internal/exact"
	"locsample/internal/localmodel"
	"locsample/internal/mrf"
	"locsample/internal/obs"
	"locsample/internal/partition"
	"locsample/internal/rng"
	"locsample/internal/spec"
	"locsample/internal/transport"
)

// Config selects an algorithm and its parameters for Sample.
type Config struct {
	// Algorithm picks the chain (default LocalMetropolis).
	Algorithm chains.Algorithm
	// Epsilon is the total-variation target used by the automatic round
	// budget (default 1/e² ≈ 0.135; any value in (0,1)).
	Epsilon float64
	// Rounds overrides the automatic budget when positive.
	Rounds int
	// RoundsAuto replaces the worst-case round budget with a measured one:
	// at compile time the engine runs a grand coupling (Coupling chains,
	// shared PRF coins, adversarial starts — internal/diag) under the
	// compiled seed, capped at the budget the other fields resolve to
	// (explicit Rounds, or the theory/heuristic budget), and every draw
	// then runs the measured round count. Draws stay bit-identical to a
	// fixed-budget sampler pinned to the same round count. Only compiled
	// samplers honor it; the package-level Sample routes through one.
	RoundsAuto bool
	// Coupling is the coupled-chain count diagnosed draws and RoundsAuto
	// measurements run with (default 4; must be ≥ 2 when set).
	Coupling int
	// Seed drives all randomness. Two runs with equal seeds coincide.
	Seed uint64
	// Distributed executes the protocol on the LOCAL-model runtime instead
	// of the (trajectory-identical) centralized replay, and reports
	// communication statistics. Only LubyGlauber and LocalMetropolis have
	// distributed implementations.
	Distributed bool
	// DropRule3 enables the E4 ablation for LocalMetropolis.
	DropRule3 bool
	// Init supplies the starting configuration; when nil a greedy feasible
	// configuration is constructed.
	Init []int
	// Workers bounds the goroutine pool a batch Sampler uses for SampleN
	// (default: GOMAXPROCS; when sharding, GOMAXPROCS/Shards). Single
	// Sample calls ignore it.
	Workers int
	// Shards > 1 splits every single chain across that many lockstep shard
	// workers exchanging only boundary states (internal/cluster) — the
	// within-chain parallelism the paper's O(log n)-round locality buys.
	// Output is bit-identical to the centralized chain at the same seed,
	// invariant to shard count and partition strategy. Only LubyGlauber
	// and LocalMetropolis shard; Distributed and Shards are mutually
	// exclusive (they are two different runtimes for the same protocol).
	Shards int
	// Parallel > 1 runs each centralized round's phases across that many
	// goroutines over contiguous CSR ranges (chains.Options.Parallel) — the
	// lightweight in-chain parallelism that needs no partition plan.
	// Trajectories are bit-identical to sequential rounds at every worker
	// count. Only LubyGlauber and LocalMetropolis support it, and it is
	// mutually exclusive with Shards and Distributed (three runtimes for
	// the same round).
	Parallel int
	// ShardStrategy selects the graph partitioner for Shards > 1
	// (default partition.Range).
	ShardStrategy partition.Strategy
	// BatchWidth steers the SoA multi-chain batch engine compiled samplers
	// use for SampleN / SampleCSPN: 0 (default) auto-picks the lane width
	// from the batch size and GOMAXPROCS, 1 forces the per-chain reference
	// path, and 2..64 pins the block width (used whenever the batch has at
	// least that many chains). Purely a throughput knob: SoA chain i is
	// bit-identical to the per-chain path at seed ChainSeed(s, i) at every
	// width. Only centralized batches batch — shards, Parallel, Distributed,
	// and remote draws ignore it.
	BatchWidth int
	// WorkerAddrs lists lsharded worker addresses; when non-empty (and
	// Shards > 1) a compiled sampler places the shards across those
	// processes and runs the lockstep rounds over TCP instead of
	// in-process. Draws remain bit-identical to the centralized chain.
	// Requires len(WorkerAddrs) <= Shards, and only compiled samplers
	// (the batch engines) support it — not one-shot core.Sample.
	WorkerAddrs []string
	// Transport, when non-nil, supplies the boundary fabric sharded
	// in-process draws run on instead of the default channel transport.
	// neighbors is the plan's shard adjacency. The primary consumer is
	// fault-injection testing; it is mutually exclusive with WorkerAddrs,
	// Parallel, and Distributed.
	Transport func(neighbors [][]int) transport.Transport
	// StandbyAddrs lists spare lsharded workers for WorkerAddrs draws.
	// When a draw fails on a worker, the coordinator swaps the next
	// standby into that worker's slot in the address list and redraws —
	// shard state is a pure function of (spec, plan, seed), so the
	// recovered draw is bit-identical to a fault-free one. Requires
	// WorkerAddrs.
	StandbyAddrs []string
	// Retry tunes the coordinator's failure handling for WorkerAddrs
	// draws: attempt budget, jittered exponential backoff between
	// attempts, per-stage deadlines, and the heartbeat interval. Nil
	// means DefaultRetryPolicy (two attempts — the historical
	// retry-once).
	Retry *RetryPolicy
	// ModelSpec optionally carries the model's wire spec for WorkerAddrs
	// draws, sparing the sampler the export step (the serving layer
	// already holds the canonical spec). Remote workers rebuild the
	// model from this spec.
	ModelSpec *spec.Spec
	// Obs, when non-nil, is the registry compiled samplers publish their
	// runtime metrics into (WithMetrics): draw counts and latency
	// histograms, per-round compute/barrier series, and — for remote
	// draws — worker up/down gauges and per-stage WorkerError counters.
	// Nil disables metrics at zero hot-path cost.
	Obs *obs.Registry
	// Log, when non-nil, receives the samplers' structured logs
	// (WithLogger); nil means silent.
	Log *slog.Logger
}

// RetryPolicy tunes how the cross-process coordinator treats worker
// failures: how many times a draw is attempted, how the coordinator
// backs off between attempts, the per-stage control deadlines, and the
// heartbeat cadence of the worker supervisor. The zero value of any
// field means "use the default"; Jitter < 0 disables jitter. None of
// these knobs touch sampling randomness — backoff jitter comes from a
// throwaway PRNG, never from the chain's PRF — so retried draws remain
// bit-identical to fault-free ones.
type RetryPolicy struct {
	// Attempts is the total draw attempts before the typed WorkerError
	// surfaces (default 2: the original try plus one retry).
	Attempts int
	// Backoff is the pause before the second attempt; it doubles per
	// subsequent attempt up to MaxBackoff (default 100ms).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// Jitter is the uniformly random fraction of the backoff added to
	// each pause, decorrelating retry storms (default 0.2; negative
	// disables).
	Jitter float64
	// DialTimeout bounds each worker control dial, retries included
	// (default 10s).
	DialTimeout time.Duration
	// WriteTimeout bounds each control write (default 30s).
	WriteTimeout time.Duration
	// ReadyTimeout bounds the wait for a worker's ready after the job is
	// shipped — it covers the workers' mutual mesh dialing (default 60s).
	ReadyTimeout time.Duration
	// ResultTimeout bounds the wait for a draw result — a full draw's
	// rounds (default 120s). This is the deadline that turns a stalled
	// (SIGSTOPped, wedged) worker into a typed error and a replacement.
	ResultTimeout time.Duration
	// Heartbeat, when positive, runs a supervisor that pings every
	// worker address at this interval over short-lived control
	// connections, keeping the locsample_worker_up gauges live between
	// draws (default 0: no heartbeat).
	Heartbeat time.Duration
}

// DefaultRetryPolicy is the policy a nil Config.Retry resolves to.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{}.WithDefaults() }

// WithDefaults fills every unset field with its default.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 2
	}
	if p.Backoff <= 0 {
		p.Backoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = 10 * time.Second
	}
	if p.WriteTimeout <= 0 {
		p.WriteTimeout = 30 * time.Second
	}
	if p.ReadyTimeout <= 0 {
		p.ReadyTimeout = 60 * time.Second
	}
	if p.ResultTimeout <= 0 {
		p.ResultTimeout = 120 * time.Second
	}
	return p
}

// Delay returns the backoff before attempt `attempt` (1-based count of
// failures so far): Backoff · 2^(attempt-1), capped at MaxBackoff.
// Jitter is applied by the caller.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	d := p.Backoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// TagChain keys the seed-splitting PRF of the batch engine: chain i of a
// k-chain batch runs with seed ChainSeed(s, i). The tag is disjoint from the
// chains/csp/dist tag spaces, so batch seeds never collide with any variate
// a single chain consumes.
const TagChain = 0x4001

// ChainSeed derives the seed of chain `chain` in a batch run with master
// seed `seed`. Batch chain i is bit-identical to a single Sample run with
// this derived seed — the determinism contract of the batch engine.
func ChainSeed(seed uint64, chain uint64) uint64 {
	return rng.PRF(seed, TagChain, chain)
}

// Result is a sample plus its provenance.
type Result struct {
	// Sample is the output configuration, one spin per vertex.
	Sample []int
	// Rounds is the number of chain iterations executed.
	Rounds int
	// TheoryRounds is the bound the automatic budget used (0 when the
	// caller supplied Rounds explicitly).
	TheoryRounds int
	// Stats reports communication costs for distributed runs.
	Stats localmodel.Stats
	// Shard reports the sharded runtime's profile (nil for unsharded
	// draws).
	Shard *cluster.Stats
}

// LubyGlauberRounds returns the Theorem 3.2 round budget T₁+T₂ for total
// influence alpha < 1 on a graph with n vertices and maximum degree maxDeg.
func LubyGlauberRounds(n, maxDeg int, alpha, eps float64) (int, error) {
	if alpha >= 1 || alpha < 0 {
		return 0, fmt.Errorf("core: Dobrushin condition needs 0 <= α < 1, got %v", alpha)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("core: need 0 < ε < 1, got %v", eps)
	}
	gamma := 1 / float64(maxDeg+1)
	t1 := math.Ceil(math.Log(4*float64(n)/eps) / gamma)
	t2 := math.Ceil(math.Log(2*float64(n)/eps) / ((1 - alpha) * gamma))
	return int(t1 + t2), nil
}

// LocalMetropolisRoundsColoring returns the Theorem 4.2 / Lemma 4.3 round
// budget for proper q-colorings: ln(nΔ/ε)/δ with δ the best positive
// contraction margin among (13) and (26). It errors when neither margin is
// positive (q too small for the proved regime).
func LocalMetropolisRoundsColoring(n, maxDeg, q int, eps float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("core: need 0 < ε < 1, got %v", eps)
	}
	if maxDeg == 0 {
		return 1, nil
	}
	delta := math.Max(coupling.Analytic13(q, maxDeg), coupling.Analytic26(q, maxDeg))
	if delta <= 0 {
		return 0, fmt.Errorf("core: no proved contraction for q=%d, Δ=%d (need q ⪆ (2+√2)Δ)", q, maxDeg)
	}
	t := math.Ceil(math.Log(float64(n)*float64(maxDeg)/eps) / delta)
	return int(t), nil
}

// AutoRounds picks a round budget for the given model and algorithm. For
// colorings it uses the paper's bounds; for other models it falls back to a
// Dobrushin-style estimate from the exact influence matrix when the model
// is small enough, and otherwise to a generous heuristic Θ(Δ log(n/ε)) (for
// LubyGlauber) or Θ(log(n/ε)) (for LocalMetropolis) budget.
func AutoRounds(m *mrf.MRF, alg chains.Algorithm, eps float64) (int, error) {
	n, maxDeg := m.G.N(), m.G.MaxDeg()
	if m.IsColoringModel() {
		switch alg {
		case chains.LocalMetropolis:
			if t, err := LocalMetropolisRoundsColoring(n, maxDeg, m.Q, eps); err == nil {
				return t, nil
			}
			// Outside the proved regime: fall through to the heuristic.
		default:
			alpha := mrf.DobrushinAlphaColoring(m.G, mrf.UniformQs(n, m.Q))
			if alpha < 1 {
				return LubyGlauberRounds(n, maxDeg, alpha, eps)
			}
		}
	}
	// Exact influence for small models.
	if rho, err := exact.InfluenceMatrix(m, 1<<16); err == nil {
		if alpha := exact.TotalInfluence(rho); alpha < 1 {
			return LubyGlauberRounds(n, maxDeg, alpha, eps)
		}
	}
	// Heuristic budget, clearly flagged as such by not being a theorem.
	logTerm := math.Log(float64(n)/eps) + 1
	switch alg {
	case chains.LocalMetropolis:
		return int(math.Ceil(20 * logTerm)), nil
	default:
		return int(math.Ceil(4 * float64(maxDeg+1) * logTerm)), nil
	}
}

// validateFabric checks the boundary-fabric knobs (WorkerAddrs,
// Transport) against the rest of the config; both only make sense for
// sharded draws and exclude the other runtimes.
func validateFabric(cfg Config) error {
	if len(cfg.WorkerAddrs) > 0 {
		if cfg.Shards <= 1 {
			return fmt.Errorf("core: WorkerAddrs needs Shards > 1 (remote placement is a property of sharded draws)")
		}
		if len(cfg.WorkerAddrs) > cfg.Shards {
			return fmt.Errorf("core: %d worker addresses for %d shards (every worker must host at least one shard)", len(cfg.WorkerAddrs), cfg.Shards)
		}
		if cfg.Transport != nil {
			return fmt.Errorf("core: WorkerAddrs and Transport are mutually exclusive (remote draws own their TCP fabric)")
		}
		if cfg.Distributed {
			return fmt.Errorf("core: Distributed and WorkerAddrs are mutually exclusive")
		}
		if cfg.Parallel > 1 {
			return fmt.Errorf("core: Parallel and WorkerAddrs are mutually exclusive")
		}
	}
	if len(cfg.StandbyAddrs) > 0 && len(cfg.WorkerAddrs) == 0 {
		return fmt.Errorf("core: StandbyAddrs without WorkerAddrs (standbys are spares for a remote worker fleet)")
	}
	if cfg.Transport != nil {
		if cfg.Shards <= 1 {
			return fmt.Errorf("core: Transport needs Shards > 1 (it is the sharded boundary fabric)")
		}
		if cfg.Distributed {
			return fmt.Errorf("core: Distributed and Transport are mutually exclusive")
		}
		if cfg.Parallel > 1 {
			return fmt.Errorf("core: Parallel and Transport are mutually exclusive")
		}
	}
	// BatchWidth rides along here because both Compile paths funnel
	// through validateFabric: lane sets are uint64 bitmasks, so 64 is the
	// hard ceiling (chains.MaxBatchWidth / csp.MaxBatchWidth).
	if cfg.BatchWidth < 0 || cfg.BatchWidth > 64 {
		return fmt.Errorf("core: BatchWidth must be in [0, 64], got %d", cfg.BatchWidth)
	}
	return nil
}

// Compile resolves the run parameters a Sample call derives from its
// Config: the effective round budget (plus the theory budget when it was
// automatic, else 0) and the initial configuration. Sample and the batch
// engine both go through it, so their resolutions can never drift apart —
// which is what makes batch chain i bit-identical to a derived-seed Sample.
func Compile(m *mrf.MRF, cfg Config) (rounds, theory int, init []int, err error) {
	if err := validateFabric(cfg); err != nil {
		return 0, 0, nil, err
	}
	if cfg.Parallel > 1 {
		if cfg.Algorithm != chains.LubyGlauber && cfg.Algorithm != chains.LocalMetropolis {
			return 0, 0, nil, fmt.Errorf("core: %v has no vertex-parallel rounds (only LubyGlauber and LocalMetropolis decompose into barrier-separated phases)", cfg.Algorithm)
		}
		if cfg.Shards > 1 {
			return 0, 0, nil, fmt.Errorf("core: Shards and Parallel are mutually exclusive (pick one in-chain runtime)")
		}
		if cfg.Distributed {
			return 0, 0, nil, fmt.Errorf("core: Distributed and Parallel are mutually exclusive")
		}
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = math.Exp(-2)
	}
	rounds = cfg.Rounds
	if rounds <= 0 {
		t, err := AutoRounds(m, cfg.Algorithm, eps)
		if err != nil {
			return 0, 0, nil, err
		}
		rounds, theory = t, t
	}
	init = cfg.Init
	if init == nil {
		init, err = chains.GreedyFeasible(m)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("core: no feasible initial configuration: %w", err)
		}
	} else if len(init) != m.G.N() {
		return 0, 0, nil, fmt.Errorf("core: init length %d for %d vertices", len(init), m.G.N())
	}
	return rounds, theory, init, nil
}

// CompileCSP resolves and validates the run parameters of a CSP draw from
// its Config — the CSP counterpart of Compile, shared by the one-shot
// SampleCSP path and the compiled CSP batch sampler so their resolutions
// cannot drift. CSP workloads run the hypergraph LubyGlauber chain (§3
// remark) and have no theory round budget, so Rounds must be explicit; the
// in-chain runtimes (Shards, Parallel, Distributed) are mutually exclusive
// exactly as for MRFs.
func CompileCSP(c *csp.CSP, cfg Config) (rounds int, err error) {
	if err := validateFabric(cfg); err != nil {
		return 0, err
	}
	if cfg.Algorithm != chains.LubyGlauber {
		return 0, fmt.Errorf("core: CSP draws run the hypergraph LubyGlauber chain, not %v", cfg.Algorithm)
	}
	if cfg.Rounds <= 0 {
		return 0, fmt.Errorf("core: CSP draws need an explicit rounds > 0 (no general theory budget exists for arbitrary CSPs)")
	}
	if cfg.Shards > 1 && cfg.Parallel > 1 {
		return 0, fmt.Errorf("core: Shards and Parallel are mutually exclusive (pick one in-chain runtime)")
	}
	if cfg.Distributed && cfg.Shards > 1 {
		return 0, fmt.Errorf("core: Distributed and Shards are mutually exclusive")
	}
	if cfg.Distributed && cfg.Parallel > 1 {
		return 0, fmt.Errorf("core: Distributed and Parallel are mutually exclusive")
	}
	if len(cfg.Init) != c.N {
		return 0, fmt.Errorf("core: init length %d for %d vertices", len(cfg.Init), c.N)
	}
	if !c.Feasible(cfg.Init) {
		return 0, fmt.Errorf("core: initial configuration is infeasible")
	}
	return cfg.Rounds, nil
}

// Sample draws one configuration whose distribution is within the
// configured ε of the Gibbs distribution (when the model is in a proved
// regime; see AutoRounds).
func Sample(m *mrf.MRF, cfg Config) (*Result, error) {
	rounds, theory, init, err := Compile(m, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{TheoryRounds: theory}

	if cfg.Shards > 1 {
		if cfg.Distributed {
			return nil, fmt.Errorf("core: Distributed and Shards are mutually exclusive")
		}
		if len(cfg.WorkerAddrs) > 0 {
			return nil, fmt.Errorf("core: remote workers need a compiled sampler (NewSampler/NewCSPSampler), not one-shot Sample")
		}
		plan, err := partition.Build(m.G, cfg.Shards, cfg.ShardStrategy, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var eng *cluster.Engine
		if cfg.Transport != nil {
			local := make([]int, plan.K)
			for s := range local {
				local[s] = s
			}
			eng, err = cluster.NewWithTransport(m, plan, cfg.Algorithm, cfg.DropRule3, local, cfg.Transport(plan.NeighborLists()))
		} else {
			eng, err = cluster.New(m, plan, cfg.Algorithm, cfg.DropRule3)
		}
		if err != nil {
			return nil, err
		}
		out := make([]int, m.G.N())
		st, err := eng.Run(init, cfg.Seed, rounds, out)
		if err != nil {
			return nil, err
		}
		res.Sample, res.Rounds, res.Shard = out, rounds, &st
		return res, nil
	}

	if cfg.Distributed {
		switch cfg.Algorithm {
		case chains.LubyGlauber:
			out, stats, err := dist.RunLubyGlauber(m, init, cfg.Seed, rounds)
			if err != nil {
				return nil, err
			}
			res.Sample, res.Rounds, res.Stats = out, rounds, stats
			return res, nil
		case chains.LocalMetropolis:
			r := localmodel.New(m.G, localmodel.Config{SharedSeed: cfg.Seed},
				dist.NewLocalMetropolisFactory(m, init, cfg.Seed, rounds, cfg.DropRule3))
			out, stats, err := r.Run(rounds + 1)
			if err != nil {
				return nil, err
			}
			res.Sample, res.Rounds, res.Stats = out, rounds, stats
			return res, nil
		default:
			return nil, fmt.Errorf("core: %v has no distributed implementation", cfg.Algorithm)
		}
	}

	s := chains.NewSampler(m, init, cfg.Seed, cfg.Algorithm,
		chains.Options{DropRule3: cfg.DropRule3, Parallel: cfg.Parallel})
	s.Run(rounds)
	res.Sample = append([]int(nil), s.X...)
	res.Rounds = rounds
	return res, nil
}
