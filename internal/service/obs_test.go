package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"locsample"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// TestTracedDrawOverHTTP drives the full tracing loop through the HTTP
// surface: a sample request with trace:true returns a trace ID, the
// recorded trace is fetchable as Chrome trace-event JSON from
// /debug/trace/{id}, and the traced draw is bit-identical to the
// untraced one at the same seed.
func TestTracedDrawOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t)

	var reg RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", coloringSpec, &reg); code != http.StatusCreated {
		t.Fatalf("register: code %d body %s", code, body)
	}

	const seed = 4242
	var bare SampleResponse
	if code, body := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		fmt.Sprintf(`{"seed":%d}`, seed), &bare); code != http.StatusOK {
		t.Fatalf("bare sample: code %d body %s", code, body)
	}
	if bare.TraceID != "" {
		t.Fatalf("untraced draw carries trace ID %q", bare.TraceID)
	}

	var traced SampleResponse
	if code, body := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		fmt.Sprintf(`{"seed":%d,"trace":true}`, seed), &traced); code != http.StatusOK {
		t.Fatalf("traced sample: code %d body %s", code, body)
	}
	if len(traced.TraceID) != 16 {
		t.Fatalf("traced draw returned ID %q, want 16 hex chars", traced.TraceID)
	}
	if !reflect.DeepEqual(bare.Samples, traced.Samples) {
		t.Fatal("traced draw diverged from untraced draw at the same seed")
	}

	code, body := getBody(t, ts.URL+"/debug/trace/"+traced.TraceID)
	if code != http.StatusOK {
		t.Fatalf("/debug/trace/{id}: code %d body %s", code, body)
	}
	for _, want := range []string{`"traceEvents"`, "round.compute", `"draw"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("trace JSON missing %s:\n%.400s", want, body)
		}
	}

	code, body = getBody(t, ts.URL+"/debug/traces")
	if code != http.StatusOK || !strings.Contains(body, traced.TraceID) {
		t.Fatalf("/debug/traces missing %s: code %d body %s", traced.TraceID, code, body)
	}

	if code, _ := getBody(t, ts.URL+"/debug/trace/ffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown trace: code %d", code)
	}

	// Tracing is single-draw only: a k>1 traced request is rejected.
	if code, _ := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		`{"k":3,"trace":true}`, nil); code != http.StatusBadRequest {
		t.Fatal("k>1 traced draw not rejected")
	}
}

// TestMetricsEndpoint scrapes GET /metrics after serving traffic and
// checks the registry- and model-level series are published in
// Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	var reg RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", coloringSpec, &reg); code != http.StatusCreated {
		t.Fatalf("register: code %d body %s", code, body)
	}
	for i := 0; i < 3; i++ {
		if code, body := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
			fmt.Sprintf(`{"k":2,"seed":%d}`, i), nil); code != http.StatusOK {
			t.Fatalf("draw %d: code %d body %s", i, code, body)
		}
	}
	if code, _ := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		`{"seed":9,"trace":true}`, nil); code != http.StatusOK {
		t.Fatal("traced draw failed")
	}

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: code %d", code)
	}
	model := fmt.Sprintf("model=%q", reg.ID)
	for _, want := range []string{
		"# TYPE locserved_requests_total counter",
		fmt.Sprintf("locserved_requests_total{%s} 4", model),
		fmt.Sprintf("locserved_samples_total{%s} 7", model),
		fmt.Sprintf("locserved_draw_seconds_count{%s} 4", model),
		fmt.Sprintf("locserved_errors_total{%s} 0", model),
		"locserved_models 1",
		"locserved_traced_draws_total 1",
		"locserved_compiles_total",
		"locserved_inflight_draws 0",
		"# TYPE locserved_draw_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestModelLatencyStats pins the /statsz latency fix: per-model stats
// report a draw count, mean, and ordered quantiles from the latency
// histogram, while the deprecated LatencyMS field keeps its historical
// cumulative-total meaning.
func TestModelLatencyStats(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	const draws = 6
	for i := 0; i < draws; i++ {
		if _, err := reg.Draw(m, DrawOptions{K: 1, Seed: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.DrawCount != draws {
		t.Fatalf("DrawCount = %d, want %d", st.DrawCount, draws)
	}
	if st.LatencyMeanMS <= 0 {
		t.Fatalf("LatencyMeanMS = %v", st.LatencyMeanMS)
	}
	if st.LatencyP50MS <= 0 || st.LatencyP50MS > st.LatencyP95MS || st.LatencyP95MS > st.LatencyP99MS {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v",
			st.LatencyP50MS, st.LatencyP95MS, st.LatencyP99MS)
	}
	// The deprecated field is the cumulative total, so it must sit at
	// mean*count (modulo float rounding).
	wantTotal := st.LatencyMeanMS * draws
	if st.LatencyMS < wantTotal*0.99 || st.LatencyMS > wantTotal*1.01 {
		t.Fatalf("LatencyMS = %v, want cumulative ~%v", st.LatencyMS, wantTotal)
	}
}

// TestWorkerDrain covers the graceful-shutdown contract: a draining
// worker rejects new jobs but keeps serving draws on jobs it already
// hosts, and ActiveJobs tracks the hosted count.
func TestWorkerDrain(t *testing.T) {
	w, err := NewWorker("127.0.0.1:0", WorkerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	g := locsample.GridGraph(6, 6)
	m := locsample.NewColoring(g, 3*g.MaxDeg())
	s, err := locsample.NewSampler(m,
		locsample.WithRounds(8), locsample.WithSeed(1),
		locsample.WithShards(2), locsample.WithRemoteWorkers(w.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Sample(); err != nil {
		t.Fatal(err)
	}
	if got := w.ActiveJobs(); got != 1 {
		t.Fatalf("ActiveJobs = %d, want 1", got)
	}

	w.Drain()
	if !w.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	// The existing job keeps serving.
	if _, err := s.Sample(); err != nil {
		t.Fatalf("draw on existing job after drain: %v", err)
	}
	// New jobs are rejected: the coordinator connects lazily, so the
	// rejection surfaces on the first draw.
	s2, err := locsample.NewSampler(m,
		locsample.WithRounds(8), locsample.WithSeed(2),
		locsample.WithShards(2), locsample.WithRemoteWorkers(w.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Sample(); err == nil {
		t.Fatal("draining worker accepted a new job")
	} else if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("rejection error %q does not mention draining", err)
	}

	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for w.ActiveJobs() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := w.ActiveJobs(); got != 0 {
		t.Fatalf("ActiveJobs = %d after teardown, want 0", got)
	}
}
