package service

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"locsample"
	"locsample/internal/transport"
)

// startWorkers spins up n in-process lsharded workers on loopback.
func startWorkers(t *testing.T, n int, cfg WorkerConfig) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w, err := NewWorker("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

// Remote MRF draws must be byte-identical to centralized draws of the
// same model and seed, across worker counts and batch chains.
func TestRemoteMRFBitIdentical(t *testing.T) {
	g := locsample.GridGraph(8, 8)
	m := locsample.NewColoring(g, 3*g.MaxDeg())
	const rounds, seed, k = 10, 414, 3

	central, err := locsample.NewSampler(m,
		locsample.WithRounds(rounds), locsample.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	want, err := central.SampleNFrom(seed, k)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3} {
		addrs := startWorkers(t, workers, WorkerConfig{})
		s, err := locsample.NewSampler(m,
			locsample.WithRounds(rounds), locsample.WithSeed(seed),
			locsample.WithShards(4), locsample.WithRemoteWorkers(addrs...))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := s.SampleNFrom(seed, k)
		if err != nil {
			s.Close()
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want.Samples {
			for v := range want.Samples[i] {
				if got.Samples[i][v] != want.Samples[i][v] {
					t.Fatalf("workers=%d chain %d: diverges at vertex %d", workers, i, v)
				}
			}
		}
		if workers > 1 && got.Shard.WireFrames == 0 {
			t.Fatalf("workers=%d: no frames crossed the wire", workers)
		}
		s.Close()
	}
}

// Remote CSP draws share the bit-identity contract.
func TestRemoteCSPBitIdentical(t *testing.T) {
	g := locsample.GridGraph(6, 6)
	c := locsample.NewDominatingSet(g)
	init := make([]int, c.N)
	for i := range init {
		init[i] = 1
	}
	const rounds, seed = 12, 99

	central, err := locsample.NewCSPSampler(g, c, init,
		locsample.WithRounds(rounds), locsample.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := central.Sample()
	if err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, 2, WorkerConfig{})
	s, err := locsample.NewCSPSampler(g, c, init,
		locsample.WithRounds(rounds), locsample.WithSeed(seed),
		locsample.WithShards(3), locsample.WithRemoteWorkers(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, st, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("remote CSP draw diverges at vertex %d", v)
		}
	}
	if st.WireFrames == 0 {
		t.Fatal("no frames crossed the wire")
	}
}

// faultOnce wraps the first job's transport in a drop injector and
// passes later jobs through untouched.
type faultOnce struct {
	used atomic.Bool
}

func (f *faultOnce) wrap(tr transport.Transport) transport.Transport {
	if f.used.CompareAndSwap(false, true) {
		return transport.NewFault(tr, map[int]transport.Injection{
			3: {Op: transport.FaultDrop},
		})
	}
	return tr
}

// When a worker's fabric eats a frame mid-draw, the coordinator must
// retry with a fresh session and still return the correct (bit-exact)
// configuration — the draw is a pure function of the seed.
func TestRemoteCoordinatorRetriesAfterFault(t *testing.T) {
	g := locsample.GridGraph(6, 6)
	m := locsample.NewColoring(g, 3*g.MaxDeg())
	const rounds, seed = 8, 7

	central, err := locsample.NewSampler(m,
		locsample.WithRounds(rounds), locsample.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	want, err := central.Sample()
	if err != nil {
		t.Fatal(err)
	}

	var f faultOnce
	addrs := startWorkers(t, 2, WorkerConfig{
		RecvTimeout:   2 * time.Second,
		WrapTransport: f.wrap,
	})
	s, err := locsample.NewSampler(m,
		locsample.WithRounds(rounds), locsample.WithSeed(seed),
		locsample.WithShards(2), locsample.WithRemoteWorkers(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Sample()
	if err != nil {
		t.Fatalf("coordinator did not recover from a single faulted session: %v", err)
	}
	if !f.used.Load() {
		t.Fatal("fault injector never armed")
	}
	for v := range want.Sample {
		if res.Sample[v] != want.Sample[v] {
			t.Fatalf("post-retry draw diverges at vertex %d", v)
		}
	}
}

// faultAll drops a frame in every session: the coordinator's single
// retry must then abort with a typed WorkerError, never hang.
func TestRemoteCoordinatorAbortsCleanly(t *testing.T) {
	g := locsample.GridGraph(6, 6)
	m := locsample.NewColoring(g, 3*g.MaxDeg())

	addrs := startWorkers(t, 2, WorkerConfig{
		RecvTimeout: 1 * time.Second,
		WrapTransport: func(tr transport.Transport) transport.Transport {
			return transport.NewFault(tr, map[int]transport.Injection{
				2: {Op: transport.FaultDrop},
			})
		},
	})
	s, err := locsample.NewSampler(m,
		locsample.WithRounds(8), locsample.WithSeed(7),
		locsample.WithShards(2), locsample.WithRemoteWorkers(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan error, 1)
	go func() {
		_, err := s.Sample()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("every session faulted, yet the draw succeeded")
		}
		var we *locsample.WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("error %v is not a WorkerError", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator hung instead of aborting")
	}
}

// A server configured with -workers serves sharded draws through the
// fleet, still bit-identical to a centralized server.
func TestRegistryRemoteWorkers(t *testing.T) {
	specJSON := []byte(`{
		"version": "locsample/v1",
		"graph": {"family": "grid", "rows": 8, "cols": 8},
		"model": {"kind": "coloring", "q": 12}
	}`)
	central := NewRegistry(Config{})
	mc, _, err := central.Register(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	want, err := central.Draw(mc, DrawOptions{K: 2, Seed: 5, Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, 2, WorkerConfig{})
	remote := NewRegistry(Config{WorkerAddrs: addrs, DefaultShards: 3})
	mr, _, err := remote.Register(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.Draw(mr, DrawOptions{K: 2, Seed: 5, Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 3 {
		t.Fatalf("served draw ran %d shards, want 3", got.Shards)
	}
	for i := range want.Samples {
		for v := range want.Samples[i] {
			if got.Samples[i][v] != want.Samples[i][v] {
				t.Fatalf("served remote chain %d diverges at vertex %d", i, v)
			}
		}
	}
	if got.Shard.WireFrames == 0 {
		t.Fatal("served draw crossed no process boundary")
	}
}
