package service

import (
	"sync"
	"time"

	"locsample/internal/obs"
)

// Breaker states, exported as the locserved_breaker_state gauge and, by
// name, in /statsz.
const (
	breakerClosed   = 0 // coordinator draws flow normally
	breakerHalfOpen = 1 // one probe draw is trying the coordinator
	breakerOpen     = 2 // coordinator skipped; draws serve locally
)

// breaker is a per-model circuit breaker over the coordinator path.
// The coordinator already retries and replaces workers inside one draw;
// the breaker handles the regime where that budget keeps losing — after
// threshold CONSECUTIVE draw-level worker failures it opens, and draws
// serve the bit-identical local fallback without paying the
// coordinator's timeout ladder first. After cooldown one probe draw is
// let through: success closes the circuit, failure re-opens it for
// another cooldown.
//
// Determinism makes this degradation safe: a local draw of (spec, seed)
// is bit-identical to the coordinator's, so flipping paths mid-traffic
// is invisible to clients except in latency.
type breaker struct {
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open → half-open wait
	now       func() time.Time

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	gauge    *obs.Gauge
}

func newBreaker(threshold int, cooldown time.Duration, gauge *obs.Gauge) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, gauge: gauge}
}

// allow reports whether this draw may try the coordinator. In the open
// state it trips to half-open once the cooldown has elapsed and admits
// exactly one probe; concurrent draws keep serving locally until that
// probe resolves via success or failure.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return false
	default: // open
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(breakerHalfOpen)
		return true
	}
}

// success records a coordinator draw that completed: the failure streak
// resets and the circuit closes (a successful half-open probe heals it).
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.setState(breakerClosed)
}

// failure records a coordinator draw that died on a worker fault.
func (b *breaker) failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		// The probe failed: straight back to open, fresh cooldown.
		b.openedAt = b.now()
		b.setState(breakerOpen)
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.openedAt = b.now()
		b.setState(breakerOpen)
	}
}

func (b *breaker) setState(s int) {
	b.state = s
	if b.gauge != nil {
		b.gauge.Set(int64(s))
	}
}

// name returns the state's /statsz spelling.
func (b *breaker) name() string {
	if b == nil {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
