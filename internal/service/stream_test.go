package service

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"locsample/internal/obs"
)

// q=16 at Δ=4 keeps the grid coloring inside the LocalMetropolis proved
// regime, so auto budgets and couplings actually coalesce fast.
const provedColoringSpec = `{
	"version": "locsample/v1",
	"name": "grid-coloring-16",
	"graph": {"family": "grid", "rows": 6, "cols": 6},
	"model": {"kind": "coloring", "q": 16}
}`

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, block := range strings.Split(body, "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			if v, ok := strings.CutPrefix(line, "event: "); ok {
				ev.event = v
			}
			if v, ok := strings.CutPrefix(line, "data: "); ok {
				ev.data = v
			}
		}
		if ev.event == "" && ev.data == "" {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// TestSampleStreamSSE drives POST /v1/models/{id}/sample/stream and pins
// the stream's shape and determinism: ≥1 round event, exactly one final
// draw event, the streamed sample bit-identical to a plain draw with the
// same options, and the mixing summary retained at /debug/mixing/{id}.
func TestSampleStreamSSE(t *testing.T) {
	ts, reg := newTestServer(t)
	var rr RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", provedColoringSpec, &rr); code != http.StatusCreated {
		t.Fatalf("register: code %d, body %s", code, body)
	}

	resp, err := http.Post(ts.URL+"/v1/models/"+rr.ID+"/sample/stream",
		"application/json", strings.NewReader(`{"seed":42,"rounds":120,"every":8}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: code %d, body %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := parseSSE(t, string(raw))
	var rounds int
	var draws []StreamDrawEvent
	for _, ev := range events {
		switch ev.event {
		case "round":
			var re RoundEvent
			if err := json.Unmarshal([]byte(ev.data), &re); err != nil {
				t.Fatalf("round event %q: %v", ev.data, err)
			}
			if re.Round%8 != 0 {
				t.Fatalf("round event off cadence: %+v", re)
			}
			rounds++
		case "draw":
			var de StreamDrawEvent
			if err := json.Unmarshal([]byte(ev.data), &de); err != nil {
				t.Fatalf("draw event %q: %v", ev.data, err)
			}
			draws = append(draws, de)
		default:
			t.Fatalf("unexpected event %q", ev.event)
		}
	}
	if rounds < 1 {
		t.Fatalf("no round events in stream:\n%s", raw)
	}
	if len(draws) != 1 {
		t.Fatalf("got %d draw events, want exactly 1", len(draws))
	}
	draw := draws[0]
	if draw.Diagnosis == nil || draw.Diagnosis.Rounds != 120 || draw.Diagnosis.Chains < 2 {
		t.Fatalf("draw diagnosis: %+v", draw.Diagnosis)
	}
	if draw.Rounds != 120 || draw.Seed != 42 || len(draw.Samples) != 1 {
		t.Fatalf("draw event shape: %+v", draw.SampleResponse)
	}

	// Bit-identity: the streamed sample is the plain draw.
	var plain SampleResponse
	if code, body := postJSON(t, ts.URL+"/v1/models/"+rr.ID+"/sample", `{"seed":42,"rounds":120}`, &plain); code != http.StatusOK {
		t.Fatalf("plain sample: code %d, body %s", code, body)
	}
	if !reflect.DeepEqual(plain.Samples[0], draw.Samples[0]) {
		t.Fatal("streamed draw diverged from plain draw at the same seed")
	}

	// The mixing summary is retained and served.
	var sum obs.MixingSummary
	if code := getJSON(t, ts.URL+"/debug/mixing/"+rr.ID, &sum); code != http.StatusOK {
		t.Fatalf("debug/mixing: code %d", code)
	}
	if sum.ID != rr.ID || sum.Chains != draw.Diagnosis.Chains || sum.Rounds != 120 {
		t.Fatalf("mixing summary: %+v", sum)
	}
	if sum.Coalesced != draw.Diagnosis.Coalesced || sum.MeasuredRounds != draw.Diagnosis.MeasuredRounds {
		t.Fatalf("mixing summary disagrees with diagnosis: %+v vs %+v", sum, draw.Diagnosis)
	}
	if reg.diagnosedDraws.Value() != 1 {
		t.Fatalf("diagnosed draws counter = %d, want 1", reg.diagnosedDraws.Value())
	}

	// Invalid options fail before the stream commits (proper status).
	resp2, err := http.Post(ts.URL+"/v1/models/"+rr.ID+"/sample/stream",
		"application/json", strings.NewReader(`{"algorithm":"bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus algorithm over stream: code %d, want 400", resp2.StatusCode)
	}

	// Out-of-range knobs hit the same pre-commit validation the plain
	// endpoint applies (a negative round count must not stream).
	resp3, err := http.Post(ts.URL+"/v1/models/"+rr.ID+"/sample/stream",
		"application/json", strings.NewReader(`{"seed":3,"rounds":-5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative rounds over stream: code %d, want 400", resp3.StatusCode)
	}
}

// TestRoundsAutoOverWire pins the wire spelling rounds:"auto": the
// response reports the measured budget plus its cap, and the draw is
// bit-identical to an explicit-rounds draw at the measured count.
func TestRoundsAutoOverWire(t *testing.T) {
	ts, _ := newTestServer(t)
	var rr RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", provedColoringSpec, &rr); code != http.StatusCreated {
		t.Fatalf("register: code %d, body %s", code, body)
	}
	var auto SampleResponse
	if code, body := postJSON(t, ts.URL+"/v1/models/"+rr.ID+"/sample", `{"seed":7,"rounds":"auto"}`, &auto); code != http.StatusOK {
		t.Fatalf("auto sample: code %d, body %s", code, body)
	}
	if auto.CapRounds <= 0 || auto.Rounds <= 0 || auto.Rounds > auto.CapRounds {
		t.Fatalf("auto budget: rounds %d, cap %d", auto.Rounds, auto.CapRounds)
	}
	if auto.Rounds == auto.CapRounds {
		t.Fatalf("measured budget %d did not beat the cap in the proved regime", auto.Rounds)
	}
	var fixed SampleResponse
	body := `{"seed":7,"rounds":` + jsonInt(auto.Rounds) + `}`
	if code, b := postJSON(t, ts.URL+"/v1/models/"+rr.ID+"/sample", body, &fixed); code != http.StatusOK {
		t.Fatalf("fixed sample: code %d, body %s", code, b)
	}
	if fixed.CapRounds != 0 {
		t.Fatalf("fixed draw reports capRounds %d, want 0", fixed.CapRounds)
	}
	if !reflect.DeepEqual(auto.Samples, fixed.Samples) {
		t.Fatal("auto draw diverged from fixed-budget draw at the measured count")
	}
}

func jsonInt(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestSampleRequestRoundsSpellings covers the custom unmarshal.
func TestSampleRequestRoundsSpellings(t *testing.T) {
	var sr SampleRequest
	if err := json.Unmarshal([]byte(`{"rounds":40,"k":2}`), &sr); err != nil || sr.Rounds != 40 || sr.RoundsAuto || sr.K != 2 {
		t.Fatalf("numeric rounds: %+v, err %v", sr, err)
	}
	sr = SampleRequest{}
	if err := json.Unmarshal([]byte(`{"rounds":"auto"}`), &sr); err != nil || !sr.RoundsAuto || sr.Rounds != 0 {
		t.Fatalf("auto rounds: %+v, err %v", sr, err)
	}
	sr = SampleRequest{}
	if err := json.Unmarshal([]byte(`{"rounds":"fast"}`), &sr); err == nil {
		t.Fatal("bogus rounds string must be rejected")
	}
	sr = SampleRequest{}
	if err := json.Unmarshal([]byte(`{"k":1}`), &sr); err != nil || sr.Rounds != 0 || sr.RoundsAuto {
		t.Fatalf("omitted rounds: %+v, err %v", sr, err)
	}
}
