package service

// Serving-layer tests for the CSP in-chain runtimes (PR 5): sharded and
// vertex-parallel CSP draws over the wire, bit-identical to centralized
// draws, with the same default-resolution and cache-keying behavior as MRF
// models.

import (
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// TestServerCSPShardedDrawBitIdentical pins wire-level determinism across
// the sharded CSP runtime: draws with shards overrides return exactly the
// centralized draw's samples while reporting shard stats.
func TestServerCSPShardedDrawBitIdentical(t *testing.T) {
	ts, _ := newTestServer(t)
	var reg RegisterResponse
	code, body := postJSON(t, ts.URL+"/v1/models", cspSpec, &reg)
	if code != http.StatusCreated {
		t.Fatalf("register: code %d, body %s", code, body)
	}
	var central SampleResponse
	code, body = postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", `{"k":3,"seed":42}`, &central)
	if code != http.StatusOK {
		t.Fatalf("central sample: code %d, body %s", code, body)
	}
	if central.Shards != 0 || central.ShardStats != nil {
		t.Fatalf("centralized csp draw reports shard fields: %+v", central)
	}
	for _, k := range []int{2, 3, 5} {
		var sharded SampleResponse
		req := fmt.Sprintf(`{"k":3,"seed":42,"shards":%d}`, k)
		code, body = postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", req, &sharded)
		if code != http.StatusOK {
			t.Fatalf("sharded csp sample (k=%d): code %d, body %s", k, code, body)
		}
		if !reflect.DeepEqual(sharded.Samples, central.Samples) {
			t.Fatalf("shards=%d: served csp samples diverge from centralized draw", k)
		}
		if sharded.Shards != k || sharded.ShardStats == nil || sharded.ShardStats.BoundaryMessages == 0 {
			t.Fatalf("shards=%d: missing shard stats: %+v", k, sharded)
		}
	}
}

// TestServerCSPParallelDrawBitIdentical pins wire-level determinism across
// the vertex-parallel CSP runtime.
func TestServerCSPParallelDrawBitIdentical(t *testing.T) {
	ts, _ := newTestServer(t)
	var reg RegisterResponse
	code, body := postJSON(t, ts.URL+"/v1/models", cspSpec, &reg)
	if code != http.StatusCreated {
		t.Fatalf("register: code %d, body %s", code, body)
	}
	var sequential SampleResponse
	code, body = postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", `{"k":3,"seed":42}`, &sequential)
	if code != http.StatusOK {
		t.Fatalf("sequential sample: code %d, body %s", code, body)
	}
	for _, par := range []int{2, 4} {
		var parallel SampleResponse
		req := fmt.Sprintf(`{"k":3,"seed":42,"parallel":%d}`, par)
		code, body = postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", req, &parallel)
		if code != http.StatusOK {
			t.Fatalf("parallel csp sample (par=%d): code %d, body %s", par, code, body)
		}
		if !reflect.DeepEqual(parallel.Samples, sequential.Samples) {
			t.Fatalf("parallel=%d: served csp samples diverge from sequential draw", par)
		}
		if parallel.Parallel != par {
			t.Fatalf("parallel=%d: response reports %d", par, parallel.Parallel)
		}
	}
}

// TestCSPSpecShardsDefault: a CSP spec's model.shards field becomes the
// draw's default, an explicit request override wins, and the samples never
// change.
func TestCSPSpecShardsDefault(t *testing.T) {
	sharded := strings.Replace(cspSpec, `"rounds": 60, `, `"rounds": 60, "shards": 2, `, 1)
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(sharded))
	if err != nil {
		t.Fatal(err)
	}
	if m.Built.Shards != 2 {
		t.Fatalf("built csp spec shards = %d, want 2", m.Built.Shards)
	}
	res, err := reg.Draw(m, DrawOptions{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 2 {
		t.Fatalf("default csp draw ran %d shards, want the spec's 2", res.Shards)
	}
	over, err := reg.Draw(m, DrawOptions{K: 2, Seed: 7, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if over.Shards != 3 {
		t.Fatalf("override csp draw ran %d shards, want 3", over.Shards)
	}
	if !reflect.DeepEqual(over.Samples, res.Samples) {
		t.Fatal("shard counts changed the served csp samples")
	}
	// Per-model /statsz counters picked up the sharded draws.
	st := m.Stats()
	if st.ShardDraws != 4 || st.BoundaryMessages == 0 {
		t.Fatalf("csp model shard counters: %+v", st)
	}
}

// TestCSPShardCacheKeying: repeat CSP draws with the same runtime never
// recompile, distinct counts compile distinct samplers, and 0/1 share the
// centralized entry.
func TestCSPShardCacheKeying(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(cspSpec))
	if err != nil {
		t.Fatal(err)
	}
	base := reg.Compiles() // registration compiled the default sampler
	for i := 0; i < 3; i++ {
		if _, err := reg.Draw(m, DrawOptions{K: 1, Seed: uint64(i), Shards: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Compiles() - base; got != 1 {
		t.Fatalf("3 sharded csp draws compiled %d times, want 1", got)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Compiles() - base; got != 2 {
		t.Fatalf("distinct runtime did not compile its own sampler (compiles=%d)", got)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Compiles() - base; got != 2 {
		t.Fatalf("shards=1 csp draw recompiled (compiles=%d): 0 and 1 must share the centralized entry", got)
	}
}
