package service

import (
	"testing"
)

// BenchmarkServiceSample measures the serving hot path — registry lookup,
// compiled-sampler cache hit, batch draw — with the compile paid once
// outside the loop. This is the number the "repeat request never
// recompiles" contract is worth.
func BenchmarkServiceSample(b *testing.B) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Draw(m, DrawOptions{K: 8, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceRegisterCached measures idempotent re-registration —
// the decode + hash + registry-hit path a client retry pays.
func BenchmarkServiceRegisterCached(b *testing.B) {
	reg := NewRegistry(Config{})
	if _, _, err := reg.Register([]byte(coloringSpec)); err != nil {
		b.Fatal(err)
	}
	data := []byte(coloringSpec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, cached, err := reg.Register(data); err != nil || !cached {
			b.Fatalf("cached=%v err=%v", cached, err)
		}
	}
}
