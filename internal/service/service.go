// Package service is the serving layer between the wire codec
// (internal/spec) and the batch engine: a model registry keyed by spec
// content hash, an LRU cache of compiled samplers, per-model request
// counters, and concurrent draw execution.
//
// The registry guarantees two things the HTTP layer and its tests pin:
//
//   - Compile-once: a model is compiled (round budget, feasible init,
//     proposal tables — core.Compile via locsample.NewSampler) at most once
//     per (spec hash, algorithm, rounds, epsilon) while the entry stays in
//     the LRU; re-registering an identical spec or re-requesting the same
//     options never recompiles.
//   - Determinism over the wire: a draw for (spec, seed) returns chain i
//     bit-identical to a local Sample with seed ChainSeed(seed, i) (for
//     MRFs, via Sampler.SampleNFrom) or a local SampleCSP with the same
//     derived seed (for CSPs). The server adds no randomness of its own
//     when the client supplies a seed.
package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"locsample"
	"locsample/internal/obs"
	"locsample/internal/spec"
	"locsample/internal/transport"
)

// Config bounds the registry.
type Config struct {
	// CacheSize is the compiled-sampler LRU capacity (default 64).
	CacheSize int
	// MaxModels bounds the number of registered specs (default 1024).
	MaxModels int
	// MaxK bounds the samples a single draw may request (default 4096).
	MaxK int
	// DefaultShards is the shard count draws run with when neither the
	// request nor the model's spec names one (default 0 = centralized).
	DefaultShards int
	// MaxShards bounds the per-request shard count (default 1024).
	MaxShards int
	// DefaultParallel is the vertex-parallel worker count centralized draws
	// run with when neither the request nor the model's spec names one
	// (default 0 = sequential rounds).
	DefaultParallel int
	// MaxParallel bounds the per-request vertex-parallel worker count
	// (default 1024).
	MaxParallel int
	// WorkerAddrs lists lsharded worker addresses. When non-empty, every
	// sharded draw places its shards across these processes instead of
	// in-process goroutines (the coordinator truncates the list to the
	// shard count so each worker hosts at least one shard). Empty means
	// all sharding stays in-process.
	WorkerAddrs []string
	// StandbyAddrs lists spare lsharded workers the coordinator may swap
	// into a failed worker's shard band mid-session (see
	// locsample.WithStandbyWorkers). Ignored without WorkerAddrs.
	StandbyAddrs []string
	// Retry overrides the retry/deadline/backoff policy coordinator draws
	// run with (nil means the locsample defaults).
	Retry *locsample.RetryPolicy
	// BreakerThreshold is the number of CONSECUTIVE coordinator draw
	// failures after which a model's circuit breaker opens and its draws
	// serve the bit-identical local fallback without trying the workers
	// (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a single probe draw back onto the coordinator (default 30s).
	BreakerCooldown time.Duration
	// Obs is the metrics registry the serving counters live in. Nil
	// means a private registry: the counters still run (they back
	// /statsz), they are just not shared with an exposition endpoint.
	Obs *obs.Registry
	// Traces retains completed draw traces for /debug/trace/{id}
	// (default: a fresh store holding the last 32).
	Traces *obs.TraceStore
	// Mixing retains the latest diagnosed-draw mixing summary per model
	// for /debug/mixing/{id} (default: a fresh store).
	Mixing *obs.MixingStore
	// Log receives the registry's structured logs (default: discard).
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 1024
	}
	if c.MaxK <= 0 {
		c.MaxK = 4096
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 1024
	}
	if c.MaxParallel <= 0 {
		c.MaxParallel = 1024
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	return c
}

// Model is one registered spec plus its serving counters.
type Model struct {
	// Hash is the spec's canonical content address — the model ID.
	Hash string
	// Spec is the validated spec.
	Spec *locsample.Spec
	// Built is the realized workload.
	Built *locsample.BuiltSpec
	// Registered is the first registration time.
	Registered time.Time

	// Per-model serving series, labeled model=<hash> in the registry's
	// metrics registry. /statsz snapshots read these same series (see
	// Stats), so the JSON counters and the /metrics exposition can
	// never drift apart.
	requests *obs.Counter
	samples  *obs.Counter
	errors   *obs.Counter
	drawNS   *obs.Histogram // end-to-end Draw latency, ns

	// Sharded-runtime counters: shardDraws counts chains that ran
	// shard-parallel; boundaryMsgs and boundaryVals total their exchange
	// traffic; barrierNS totals their round-barrier waits.
	shardDraws   *obs.Counter
	boundaryMsgs *obs.Counter
	boundaryVals *obs.Counter
	barrierNS    *obs.Counter

	// soaChains counts chains served through the SoA batch engine —
	// coalesced same-spec draws land there when the batch is wide enough,
	// so this series is how operators confirm the fast path is actually
	// taken.
	soaChains *obs.Counter

	// Degradation machinery: remote marks a model whose sharded draws
	// may run on the server's lsharded workers, breaker gates that path,
	// degraded counts draws the local fallback served instead.
	remote   bool
	breaker  *breaker
	degraded *obs.Counter
}

// ModelStats is a point-in-time snapshot of a model's counters.
type ModelStats struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Kind     string `json:"kind"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	Q        int    `json:"q"`
	Requests int64  `json:"requests"`
	Samples  int64  `json:"samples"`
	Errors   int64  `json:"errors"`
	// LatencyMS is the CUMULATIVE draw wall-clock in milliseconds.
	//
	// Deprecated: the name long suggested a per-draw latency while the
	// value has always been the running total — use LatencyMeanMS and
	// the quantile fields for latency, and DrawCount to recover the
	// total (mean × count). The field stays populated with the old
	// cumulative semantics so existing scrapers keep working.
	LatencyMS float64 `json:"latencyMs"`
	// DrawCount is the number of successful draws behind the latency
	// figures below.
	DrawCount int64 `json:"drawCount"`
	// LatencyMeanMS and the quantiles describe per-draw latency; the
	// quantiles come from a log-bucket histogram, so they carry at most
	// ~2× relative error.
	LatencyMeanMS float64 `json:"latencyMeanMs"`
	LatencyP50MS  float64 `json:"latencyP50Ms"`
	LatencyP95MS  float64 `json:"latencyP95Ms"`
	LatencyP99MS  float64 `json:"latencyP99Ms"`
	// ShardDraws counts chains drawn shard-parallel; the boundary and
	// barrier fields total their exchange traffic and round-barrier waits.
	ShardDraws       int64   `json:"shardDraws,omitempty"`
	BoundaryMessages int64   `json:"boundaryMessages,omitempty"`
	BoundaryValues   int64   `json:"boundaryValues,omitempty"`
	BarrierWaitMS    float64 `json:"barrierWaitMs,omitempty"`
	// SoAChains counts chains served through the SoA multi-chain batch
	// engine (batched draws wide enough for the lane kernels).
	SoAChains int64 `json:"soaChains,omitempty"`
	// DegradedDraws counts draws served by the bit-identical local
	// fallback after a coordinator failure (or while the breaker held
	// the coordinator path open-circuited).
	DegradedDraws int64 `json:"degradedDraws,omitempty"`
	// Breaker is the coordinator circuit state ("closed", "half-open",
	// "open"); empty when the server has no remote workers.
	Breaker string `json:"breaker,omitempty"`
}

// Stats reports the model's counters.
func (m *Model) Stats() ModelStats {
	q := 0
	if m.Built.Model != nil {
		q = m.Built.Model.Q
	} else if m.Built.CSP != nil {
		q = m.Built.CSP.Q
	}
	st := ModelStats{
		ID:               m.Hash,
		Name:             m.Spec.Name,
		Kind:             m.Spec.Model.Kind,
		N:                m.Built.Graph.N(),
		M:                m.Built.Graph.M(),
		Q:                q,
		Requests:         m.requests.Value(),
		Samples:          m.samples.Value(),
		Errors:           m.errors.Value(),
		LatencyMS:        float64(m.drawNS.Sum()) / 1e6,
		DrawCount:        m.drawNS.Count(),
		ShardDraws:       m.shardDraws.Value(),
		BoundaryMessages: m.boundaryMsgs.Value(),
		BoundaryValues:   m.boundaryVals.Value(),
		BarrierWaitMS:    float64(m.barrierNS.Value()) / 1e6,
		SoAChains:        m.soaChains.Value(),
		DegradedDraws:    m.degraded.Value(),
	}
	if m.remote {
		st.Breaker = m.breaker.name()
	}
	if st.DrawCount > 0 {
		st.LatencyMeanMS = m.drawNS.Mean() / 1e6
		st.LatencyP50MS = m.drawNS.Quantile(0.50) / 1e6
		st.LatencyP95MS = m.drawNS.Quantile(0.95) / 1e6
		st.LatencyP99MS = m.drawNS.Quantile(0.99) / 1e6
	}
	return st
}

// compileKey identifies one compiled sampler: everything that feeds
// core.Compile. Seeds are deliberately absent — SampleNFrom reseeds a
// compiled sampler per request.
type compileKey struct {
	hash      string
	algorithm locsample.Algorithm
	rounds    int
	epsBits   uint64
	// shards is the resolved shard count, canonicalized so 0 and 1 (both
	// centralized) never split one workload across two cache entries.
	shards int
	// parallel is the resolved vertex-parallel worker count, canonicalized
	// the same way (0 and 1 both mean sequential rounds).
	parallel int
	// auto marks a measured-budget (rounds:"auto") compile — a distinct
	// workload from the same options with a fixed budget.
	auto bool
	// local forces a sharded compile to stay in-process even when the
	// server has remote workers — the degraded-fallback variant. The
	// samples are bit-identical either way; the flag only keys a second
	// cache entry so a broken coordinator never poisons the healthy one.
	local bool
}

// compiled is one cache entry: a reusable MRF batch sampler or a reusable
// CSP batch sampler.
type compiled struct {
	sampler    *locsample.Sampler
	cspSampler *locsample.CSPSampler
}

// close releases a compiled sampler's external resources (remote worker
// sessions). Closing is idempotent and safe while a draw still borrows
// the entry — a later draw simply reconnects.
func (c *compiled) close() {
	if c.sampler != nil {
		c.sampler.Close()
	}
	if c.cspSampler != nil {
		c.cspSampler.Close()
	}
}

// Registry is the model store and compiled-sampler cache. All methods are
// safe for concurrent use; draws themselves run outside the registry lock.
type Registry struct {
	cfg   Config
	start time.Time

	obs    *obs.Registry
	traces *obs.TraceStore
	mixing *obs.MixingStore
	log    *slog.Logger

	mu       sync.Mutex
	models   map[string]*Model
	order    []string // registration order, for stable listings
	lru      *list.List
	byKey    map[compileKey]*list.Element
	inflight map[compileKey]*compileCall
	// workers is the last ProbeWorkers result (nil before any probe).
	workers []WorkerStatus

	compiles    *obs.Counter
	cacheHits   *obs.Counter
	cacheMiss   *obs.Counter
	compileNS   *obs.Histogram
	modelsGauge *obs.Gauge
	// inflightDraws is the queue-depth signal: draws currently executing
	// (including time spent waiting on a cold compile's singleflight).
	inflightDraws  *obs.Gauge
	tracedDraws    *obs.Counter
	diagnosedDraws *obs.Counter
}

type lruEntry struct {
	key compileKey
	c   *compiled
}

// compileCall is an in-flight compilation other requests for the same key
// wait on instead of compiling again (per-key singleflight). The fields
// are written before done is closed and read only after.
type compileCall struct {
	done chan struct{}
	c    *compiled
	err  error
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	o := cfg.Obs
	if o == nil {
		// The serving counters always run (they back /statsz); an
		// unconfigured registry just keeps them private.
		o = obs.NewRegistry()
	}
	traces := cfg.Traces
	if traces == nil {
		traces = obs.NewTraceStore(0)
	}
	mixing := cfg.Mixing
	if mixing == nil {
		mixing = obs.NewMixingStore(0)
	}
	log := cfg.Log
	if log == nil {
		log = obs.NopLogger()
	}
	r := &Registry{
		cfg:      cfg,
		start:    time.Now(),
		obs:      o,
		traces:   traces,
		mixing:   mixing,
		log:      log,
		models:   make(map[string]*Model),
		lru:      list.New(),
		byKey:    make(map[compileKey]*list.Element),
		inflight: make(map[compileKey]*compileCall),
	}
	r.compiles = o.Counter("locserved_compiles_total", "sampler compilations (cold compile-cache keys)")
	r.cacheHits = o.Counter("locserved_cache_hits_total", "compiled-sampler cache hits")
	r.cacheMiss = o.Counter("locserved_cache_misses_total", "compiled-sampler cache misses")
	r.compileNS = o.Histogram("locserved_compile_seconds", "sampler compile time", 1e-9)
	r.modelsGauge = o.Gauge("locserved_models", "registered models")
	r.inflightDraws = o.Gauge("locserved_inflight_draws", "draws currently executing")
	r.tracedDraws = o.Counter("locserved_traced_draws_total", "draws served with tracing enabled")
	r.diagnosedDraws = o.Counter("locserved_diagnosed_draws_total", "draws served with coupling diagnostics")
	return r
}

// Obs returns the registry's metrics registry (for mounting /metrics).
func (r *Registry) Obs() *obs.Registry { return r.obs }

// Traces returns the completed-trace store (for /debug/trace/{id}).
func (r *Registry) Traces() *obs.TraceStore { return r.traces }

// Mixing returns the mixing-summary store (for /debug/mixing/{id}).
func (r *Registry) Mixing() *obs.MixingStore { return r.mixing }

// Logger returns the registry's logger.
func (r *Registry) Logger() *slog.Logger { return r.log }

// Compiles returns the number of sampler compilations performed so far —
// the observable the cache tests pin to zero across repeat registrations
// and repeat draws.
func (r *Registry) Compiles() int64 { return r.compiles.Value() }

// newModelMetrics wires a model's serving series into the registry's
// metrics registry. Re-registrations of the same hash get the same
// underlying series (the registry deduplicates by name+labels), so a
// lost registration race never forks a model's counters.
func (r *Registry) newModelMetrics(m *Model) {
	o := r.obs
	m.requests = o.Counter("locserved_requests_total", "draw requests", "model", m.Hash)
	m.samples = o.Counter("locserved_samples_total", "samples served", "model", m.Hash)
	m.errors = o.Counter("locserved_errors_total", "failed draw requests", "model", m.Hash)
	m.drawNS = o.Histogram("locserved_draw_seconds", "end-to-end draw latency", 1e-9, "model", m.Hash)
	m.shardDraws = o.Counter("locserved_shard_draws_total", "chains drawn shard-parallel", "model", m.Hash)
	m.boundaryMsgs = o.Counter("locserved_boundary_messages_total", "sharded boundary messages", "model", m.Hash)
	m.boundaryVals = o.Counter("locserved_boundary_values_total", "sharded boundary vertex states", "model", m.Hash)
	m.barrierNS = o.Counter("locserved_barrier_wait_ns_total", "sharded round-barrier wait, ns", "model", m.Hash)
	m.soaChains = o.Counter("locserved_soa_chains_total", "chains served through the SoA batch engine", "model", m.Hash)
	// The degradation series exist from registration (at 0, closed) so
	// dashboards and the CI smoke can always find them.
	m.remote = len(r.cfg.WorkerAddrs) > 0
	m.degraded = o.Counter("locserved_degraded_draws_total", "draws served by the local fallback after a coordinator failure", "model", m.Hash)
	m.breaker = newBreaker(r.cfg.BreakerThreshold, r.cfg.BreakerCooldown,
		o.Gauge("locserved_breaker_state", "coordinator circuit state (0 closed, 1 half-open, 2 open)", "model", m.Hash))
}

// Register decodes, validates, builds, and stores a spec, eagerly
// compiling its default sampler so the first draw pays no compile either.
// The model becomes visible only after that compile succeeds: a spec the
// default options cannot serve fails registration and is never observable
// (no success-then-404 window for concurrent duplicate registrations).
// Registering a spec whose hash is already present is a cheap no-op that
// returns the existing model with cached = true.
func (r *Registry) Register(data []byte) (m *Model, cached bool, err error) {
	s, err := spec.Decode(data)
	if err != nil {
		return nil, false, err
	}
	h, err := spec.Hash(s)
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	if m, ok := r.models[h]; ok {
		r.mu.Unlock()
		return m, true, nil
	}
	if len(r.models) >= r.cfg.MaxModels {
		r.mu.Unlock()
		return nil, false, fmt.Errorf("service: model registry full (%d models)", r.cfg.MaxModels)
	}
	r.mu.Unlock()

	// Build and eagerly compile outside the lock — graph generation and
	// core.Compile can be heavy. Concurrent duplicate registrations
	// deduplicate the compile via the cache's singleflight.
	built, err := locsample.BuildSpec(s)
	if err != nil {
		return nil, false, err
	}
	m = &Model{Hash: h, Spec: s, Built: built, Registered: time.Now()}
	r.newModelMetrics(m)
	// A CSP spec may leave the round budget entirely to requests; there is
	// nothing to compile for it until a request supplies rounds.
	if built.CSP == nil || built.Rounds > 0 {
		if _, err := r.getCompiled(m, defaultDrawOptions(m)); err != nil {
			return nil, false, err
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.models[h]; ok { // lost a registration race
		return prior, true, nil
	}
	if len(r.models) >= r.cfg.MaxModels {
		// The compiled entry stays in the LRU; it is keyed by hash and
		// ages out naturally.
		return nil, false, fmt.Errorf("service: model registry full (%d models)", r.cfg.MaxModels)
	}
	r.models[h] = m
	r.order = append(r.order, h)
	r.modelsGauge.Set(int64(len(r.models)))
	r.log.Info("model registered", "model", h, "kind", s.Model.Kind, "n", built.Graph.N())
	return m, false, nil
}

// Lookup returns the model with the given ID (spec hash).
func (r *Registry) Lookup(id string) (*Model, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[id]
	return m, ok
}

// List returns all registered models in registration order.
func (r *Registry) List() []*Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Model, 0, len(r.order))
	for _, h := range r.order {
		out = append(out, r.models[h])
	}
	return out
}

// DrawOptions parameterize one draw request. Zero values mean "use the
// model's defaults".
type DrawOptions struct {
	// K is the number of independent samples (default 1).
	K int
	// Seed is the master seed; chain i runs with ChainSeed(Seed, i).
	Seed uint64
	// Algorithm overrides the chain ("glauber", "lubyglauber",
	// "localmetropolis", "scan", "chromatic"; MRF models only — CSPs accept
	// only spellings of lubyglauber).
	Algorithm string
	// Rounds overrides the round budget when positive.
	Rounds int
	// Epsilon overrides the total-variation target of the automatic round
	// budget when positive (MRF models only).
	Epsilon float64
	// Shards overrides the shard count every chain of the draw runs with
	// (0 falls back to the spec's default, then the server's). Sharding
	// never changes the samples — only how fast one chain advances. MRF
	// chains shard over graph partitions, CSP chains over constraint-scope
	// halos.
	Shards int
	// Parallel overrides the vertex-parallel worker count every chain's
	// rounds run with (0 falls back to the spec's default, then the
	// server's). Like Shards it never changes the samples, and the two are
	// mutually exclusive per draw.
	Parallel int
	// RoundsAuto replaces the worst-case round budget with one measured
	// by a grand coupling at compile time, capped by the budget the
	// options would otherwise resolve (the wire spelling is
	// rounds:"auto"). Draws under the measured budget are bit-identical
	// to explicit-rounds draws at the same seed and round count.
	RoundsAuto bool
}

// DrawResult is one served batch.
type DrawResult struct {
	// Samples[i] is chain i's configuration.
	Samples [][]int
	// Rounds is the per-chain round budget that ran.
	Rounds int
	// TheoryRounds is the automatic budget (0 when rounds were pinned).
	TheoryRounds int
	// Algorithm is the chain that ran.
	Algorithm string
	// Shards is the shard count each chain ran with (1 = centralized).
	Shards int
	// Parallel is the vertex-parallel worker count each chain's rounds ran
	// with (1 = sequential rounds).
	Parallel int
	// Shard aggregates the sharded runtime's profile across the batch
	// (zero when centralized).
	Shard locsample.ShardStats
	// Elapsed is the draw's wall-clock time.
	Elapsed time.Duration
	// TraceID identifies the recorded trace of a traced draw
	// (DrawTraced), fetchable at /debug/trace/{id}; empty otherwise.
	TraceID string
	// CapRounds is the worst-case budget a rounds:"auto" compile was
	// capped by (0 for fixed-budget draws).
	CapRounds int
	// SoAWidth is the lane width of the SoA batch engine the draw ran
	// through (0 when chains ran the per-chain reference path). The
	// samples are bit-identical either way.
	SoAWidth int
}

func defaultDrawOptions(m *Model) DrawOptions {
	opts := DrawOptions{K: 1}
	if m.Built.CSP != nil {
		opts.Rounds = m.Built.Rounds
	}
	return opts
}

// ParseAlgorithm maps a wire algorithm name to a chain.
func ParseAlgorithm(s string) (locsample.Algorithm, error) {
	switch strings.ToLower(s) {
	case "glauber":
		return locsample.Glauber, nil
	case "lubyglauber", "luby":
		return locsample.LubyGlauber, nil
	case "localmetropolis", "lm", "":
		return locsample.LocalMetropolis, nil
	case "scan", "systematicscan":
		return locsample.SystematicScan, nil
	case "chromatic", "chromaticglauber":
		return locsample.ChromaticGlauber, nil
	default:
		return 0, fmt.Errorf("service: unknown algorithm %q", s)
	}
}

// Draw serves one batch from m, compiling at most once per option set and
// counting request, sample, latency, and error metrics.
func (r *Registry) Draw(m *Model, opts DrawOptions) (*DrawResult, error) {
	return r.DrawContext(context.Background(), m, opts)
}

// DrawContext is Draw under a context: a canceled ctx (client
// disconnect, server drain) aborts the in-flight draw — local chains
// stop at the next round boundary, sharded engines are torn down, and
// coordinator sessions are closed — and the request fails with
// ctx.Err(). Cancellation never produces a partial batch.
func (r *Registry) DrawContext(ctx context.Context, m *Model, opts DrawOptions) (*DrawResult, error) {
	r.inflightDraws.Add(1)
	res, err := r.draw(ctx, m, opts, nil)
	r.inflightDraws.Add(-1)
	return r.finishDraw(m, res, err)
}

// DrawTraced is Draw with per-round trace recording: the draw runs
// sequentially (k must be 1), its trace is retained in the registry's
// trace store, and the result carries the trace ID. The sample is
// bit-identical to an untraced draw with the same options.
func (r *Registry) DrawTraced(m *Model, opts DrawOptions) (*DrawResult, *obs.Trace, error) {
	return r.DrawTracedContext(context.Background(), m, opts)
}

// DrawTracedContext is DrawTraced under a context; cancellation behaves
// as in DrawContext.
func (r *Registry) DrawTracedContext(ctx context.Context, m *Model, opts DrawOptions) (*DrawResult, *obs.Trace, error) {
	if opts.K > 1 {
		err := fmt.Errorf("service: traced draws record one chain; k must be 1, got %d", opts.K)
		m.requests.Inc()
		m.errors.Inc()
		return nil, nil, err
	}
	var tr trace
	r.inflightDraws.Add(1)
	res, err := r.draw(ctx, m, opts, &tr)
	r.inflightDraws.Add(-1)
	res, err = r.finishDraw(m, res, err)
	if err != nil {
		return nil, nil, err
	}
	r.traces.Put(tr.t)
	r.tracedDraws.Inc()
	res.TraceID = tr.t.ID
	r.log.Info("traced draw", "model", m.Hash, "trace", tr.t.ID, "elapsed", res.Elapsed)
	return res, tr.t, nil
}

// DrawDiagnosed is Draw with a grand coupling running alongside the
// chain: the draw runs sequentially (k must be 1) and comes back with a
// mixing Diagnosis, whose summary is retained for /debug/mixing/{id}.
// The sample is bit-identical to an undiagnosed draw with the same
// options — chain 0 of the coupling, seeded ChainSeed(seed, 0), IS the
// draw. A non-nil probe observes the coupling live, one call per round
// (the SSE streaming endpoint passes one).
func (r *Registry) DrawDiagnosed(m *Model, opts DrawOptions, probe locsample.CouplingProbe) (*DrawResult, *locsample.Diagnosis, error) {
	return r.DrawDiagnosedContext(context.Background(), m, opts, probe)
}

// DrawDiagnosedContext is DrawDiagnosed under a context. The coupling
// itself runs to completion once started (it is centralized and
// in-process); the context is checked before the draw begins, so a
// disconnected client never starts one.
func (r *Registry) DrawDiagnosedContext(ctx context.Context, m *Model, opts DrawOptions, probe locsample.CouplingProbe) (*DrawResult, *locsample.Diagnosis, error) {
	if opts.K > 1 {
		err := fmt.Errorf("service: diagnosed draws run one chain; k must be 1, got %d", opts.K)
		m.requests.Inc()
		m.errors.Inc()
		return nil, nil, err
	}
	if err := ctxDone(ctx); err != nil {
		m.requests.Inc()
		m.errors.Inc()
		return nil, nil, err
	}
	r.inflightDraws.Add(1)
	res, diag, err := r.drawDiagnosed(m, opts, probe)
	r.inflightDraws.Add(-1)
	res, err = r.finishDraw(m, res, err)
	if err != nil {
		return nil, nil, err
	}
	r.diagnosedDraws.Inc()
	r.mixing.Put(obs.MixingSummary{
		ID:               m.Hash,
		Seed:             opts.Seed,
		Chains:           diag.Chains,
		Rounds:           diag.Rounds,
		MaxRounds:        diag.MaxRounds,
		Coalesced:        diag.Coalesced,
		CoalescenceRound: diag.CoalescenceRound,
		MeasuredRounds:   diag.MeasuredRounds,
		TheoryRounds:     res.TheoryRounds,
		FinalDisagree:    lastDisagree(diag),
	})
	r.log.Info("diagnosed draw", "model", m.Hash,
		"coalesced", diag.Coalesced, "measured", diag.MeasuredRounds,
		"rounds", diag.Rounds, "elapsed", res.Elapsed)
	return res, diag, nil
}

func lastDisagree(d *locsample.Diagnosis) int {
	if n := len(d.Series.Disagree); n > 0 {
		return d.Series.Disagree[n-1]
	}
	return 0
}

// drawDiagnosed runs the diagnosed draw proper (validation and metrics
// live in DrawDiagnosed).
func (r *Registry) drawDiagnosed(m *Model, opts DrawOptions, probe locsample.CouplingProbe) (*DrawResult, *locsample.Diagnosis, error) {
	if opts.K == 0 {
		opts.K = 1
	}
	if err := r.validateDrawOptions(opts); err != nil {
		return nil, nil, err
	}
	c, err := r.getCompiled(m, opts)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	// Chain 0 of an untraced k-batch runs with ChainSeed(seed, 0); the
	// diagnosed single chain must match it bit-for-bit.
	seed := locsample.ChainSeed(opts.Seed, 0)
	if c.sampler != nil {
		res, diag, err := c.sampler.SampleDiagnosedObserved(seed, probe)
		if err != nil {
			return nil, nil, err
		}
		return &DrawResult{
			Samples:      [][]int{res.Sample},
			Rounds:       res.Rounds,
			TheoryRounds: res.TheoryRounds,
			Algorithm:    algorithmName(m, opts),
			Shards:       1, // diagnosed draws run the coupling centralized
			Parallel:     1,
			Elapsed:      time.Since(start),
			CapRounds:    c.sampler.CapRounds(),
		}, diag, nil
	}
	sample, diag, err := c.cspSampler.SampleDiagnosedObserved(seed, probe)
	if err != nil {
		return nil, nil, err
	}
	return &DrawResult{
		Samples:   [][]int{sample},
		Rounds:    c.cspSampler.Rounds(),
		Algorithm: "lubyglauber",
		Shards:    1,
		Parallel:  1,
		Elapsed:   time.Since(start),
		CapRounds: c.cspSampler.CapRounds(),
	}, diag, nil
}

// finishDraw books one finished draw into the model's serving series.
func (r *Registry) finishDraw(m *Model, res *DrawResult, err error) (*DrawResult, error) {
	m.requests.Inc()
	if err != nil {
		m.errors.Inc()
		r.log.Warn("draw failed", "model", m.Hash, "err", err)
		return nil, err
	}
	m.samples.Add(int64(len(res.Samples)))
	m.drawNS.Observe(res.Elapsed.Nanoseconds())
	if res.Shards > 1 {
		m.shardDraws.Add(int64(len(res.Samples)))
		m.boundaryMsgs.Add(res.Shard.BoundaryMessages)
		m.boundaryVals.Add(res.Shard.BoundaryValues)
		m.barrierNS.Add(res.Shard.BarrierWaitNS)
	}
	if res.SoAWidth > 0 {
		m.soaChains.Add(int64(len(res.Samples)))
	}
	return res, nil
}

// trace is an out-parameter for draw: non-nil asks for a traced draw,
// and the recorded trace comes back in t.
type trace struct{ t *obs.Trace }

// validateDrawOptions range-checks the request-level knobs shared by
// every draw flavor (plain, traced, diagnosed, streamed).
func (r *Registry) validateDrawOptions(opts DrawOptions) error {
	if opts.K < 1 || opts.K > r.cfg.MaxK {
		return fmt.Errorf("service: k must be in [1,%d], got %d", r.cfg.MaxK, opts.K)
	}
	if opts.Rounds < 0 {
		return fmt.Errorf("service: rounds must be >= 0, got %d", opts.Rounds)
	}
	if opts.Epsilon < 0 || opts.Epsilon >= 1 || math.IsNaN(opts.Epsilon) {
		return fmt.Errorf("service: epsilon must be in [0,1), got %v", opts.Epsilon)
	}
	if opts.Shards < 0 || opts.Shards > r.cfg.MaxShards {
		return fmt.Errorf("service: shards must be in [0,%d], got %d", r.cfg.MaxShards, opts.Shards)
	}
	if opts.Parallel < 0 || opts.Parallel > r.cfg.MaxParallel {
		return fmt.Errorf("service: parallel must be in [0,%d], got %d", r.cfg.MaxParallel, opts.Parallel)
	}
	return nil
}

// ctxDone returns ctx.Err for possibly-nil contexts.
func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// remoteKey reports whether a compile key places its shards on the
// server's lsharded workers.
func (r *Registry) remoteKey(key compileKey) bool {
	return key.shards > 1 && !key.local && len(r.cfg.WorkerAddrs) > 0
}

func (r *Registry) draw(ctx context.Context, m *Model, opts DrawOptions, tr *trace) (*DrawResult, error) {
	if opts.K == 0 {
		opts.K = 1
	}
	if err := r.validateDrawOptions(opts); err != nil {
		return nil, err
	}
	key, err := r.compileKeyFor(m, opts)
	if err != nil {
		return nil, err
	}
	if !r.remoteKey(key) {
		return r.drawCompiled(ctx, m, key, opts, tr)
	}
	// Coordinator-backed draw. The coordinator retries and replaces
	// workers inside the draw; the service layer handles the regime
	// where that budget loses anyway: a draw that still dies on a
	// worker fault degrades to the bit-identical local fallback instead
	// of failing the request, and the per-model breaker stops sending
	// draws into a known-broken fleet at all.
	if !m.breaker.allow() {
		return r.drawDegraded(ctx, m, key, opts, tr, nil)
	}
	res, err := r.drawCompiled(ctx, m, key, opts, tr)
	if err == nil {
		m.breaker.success()
		return res, nil
	}
	var we *locsample.WorkerError
	if !errors.As(err, &we) || ctxDone(ctx) != nil {
		// Not a worker fault (or the client is gone): the breaker has
		// no opinion and there is nothing to degrade to.
		return nil, err
	}
	m.breaker.failure()
	return r.drawDegraded(ctx, m, key, opts, tr, err)
}

// drawDegraded serves a coordinator-keyed draw from the in-process
// fallback sampler — same spec, same seeds, bit-identical samples.
// cause is the worker fault that forced the detour (nil when the
// breaker short-circuited before trying).
func (r *Registry) drawDegraded(ctx context.Context, m *Model, key compileKey, opts DrawOptions, tr *trace, cause error) (*DrawResult, error) {
	local := key
	local.local = true
	res, err := r.drawCompiled(ctx, m, local, opts, tr)
	if err != nil {
		return nil, err
	}
	m.degraded.Inc()
	r.log.Warn("degraded draw: coordinator unavailable, served locally",
		"model", m.Hash, "breaker", m.breaker.name(), "cause", cause)
	return res, nil
}

// drawCompiled runs one validated draw on the sampler the key names.
func (r *Registry) drawCompiled(ctx context.Context, m *Model, key compileKey, opts DrawOptions, tr *trace) (*DrawResult, error) {
	c, err := r.getCompiledKey(m, key, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if c.sampler != nil {
		if tr != nil {
			// Chain 0 of an untraced k-batch runs with ChainSeed(seed, 0);
			// the traced single chain must match it bit-for-bit.
			res, t, err := c.sampler.SampleTracedContext(ctx, locsample.ChainSeed(opts.Seed, 0))
			if err != nil {
				return nil, err
			}
			tr.t = t
			out := &DrawResult{
				Samples:      [][]int{res.Sample},
				Rounds:       res.Rounds,
				TheoryRounds: res.TheoryRounds,
				Algorithm:    algorithmName(m, opts),
				Shards:       c.sampler.Shards(),
				Parallel:     c.sampler.ParallelRounds(),
				Elapsed:      time.Since(start),
				CapRounds:    c.sampler.CapRounds(),
			}
			if res.Shard != nil {
				out.Shard = *res.Shard
			}
			return out, nil
		}
		batch, err := c.sampler.SampleNContext(ctx, opts.Seed, opts.K)
		if err != nil {
			return nil, err
		}
		return &DrawResult{
			Samples:      batch.Samples,
			Rounds:       batch.Rounds,
			TheoryRounds: batch.TheoryRounds,
			Algorithm:    algorithmName(m, opts),
			Shards:       c.sampler.Shards(),
			Parallel:     c.sampler.ParallelRounds(),
			Shard:        batch.Shard,
			Elapsed:      time.Since(start),
			CapRounds:    c.sampler.CapRounds(),
			SoAWidth:     batch.SoAWidth,
		}, nil
	}
	if tr != nil {
		sample, st, t, err := c.cspSampler.SampleTracedContext(ctx, locsample.ChainSeed(opts.Seed, 0))
		if err != nil {
			return nil, err
		}
		tr.t = t
		out := &DrawResult{
			Samples:   [][]int{sample},
			Rounds:    c.cspSampler.Rounds(),
			Algorithm: "lubyglauber",
			Shards:    c.cspSampler.Shards(),
			Parallel:  c.cspSampler.ParallelRounds(),
			Elapsed:   time.Since(start),
			CapRounds: c.cspSampler.CapRounds(),
		}
		if st != nil {
			out.Shard = *st
		}
		return out, nil
	}
	batch, err := c.cspSampler.SampleNContext(ctx, opts.Seed, opts.K)
	if err != nil {
		return nil, err
	}
	return &DrawResult{
		Samples:   batch.Samples,
		Rounds:    batch.Rounds,
		Algorithm: "lubyglauber",
		Shards:    c.cspSampler.Shards(),
		Parallel:  c.cspSampler.ParallelRounds(),
		Shard:     batch.Shard,
		Elapsed:   time.Since(start),
		CapRounds: c.cspSampler.CapRounds(),
		SoAWidth:  batch.SoAWidth,
	}, nil
}

func algorithmName(m *Model, opts DrawOptions) string {
	a, err := ParseAlgorithm(opts.Algorithm)
	if err != nil {
		return opts.Algorithm
	}
	return strings.ToLower(a.String())
}

// getCompiled returns the cached compiled sampler for (model, options),
// compiling and inserting it on a miss. The compile itself runs outside
// the registry lock so a cold key on one model never stalls cache hits,
// lookups, or stats for the rest of the server; concurrent requests for
// the same cold key wait on a per-key singleflight instead of compiling
// again.
func (r *Registry) getCompiled(m *Model, opts DrawOptions) (*compiled, error) {
	key, err := r.compileKeyFor(m, opts)
	if err != nil {
		return nil, err
	}
	return r.getCompiledKey(m, key, opts)
}

// getCompiledKey is getCompiled for an already-resolved key (the draw
// path resolves keys itself to route between the coordinator and the
// degraded-fallback variants).
func (r *Registry) getCompiledKey(m *Model, key compileKey, opts DrawOptions) (*compiled, error) {
	r.mu.Lock()
	if el, ok := r.byKey[key]; ok {
		r.lru.MoveToFront(el)
		r.cacheHits.Inc()
		r.mu.Unlock()
		return el.Value.(*lruEntry).c, nil
	}
	if call, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		<-call.done
		if call.err == nil {
			r.cacheHits.Inc()
		}
		return call.c, call.err
	}
	call := &compileCall{done: make(chan struct{})}
	r.inflight[key] = call
	r.cacheMiss.Inc()
	r.mu.Unlock()

	compileStart := time.Now()
	c, err := r.compile(m, key, opts)
	if err == nil {
		r.compileNS.Observe(time.Since(compileStart).Nanoseconds())
		r.log.Debug("sampler compiled", "model", m.Hash, "elapsed", time.Since(compileStart))
	}

	r.mu.Lock()
	delete(r.inflight, key)
	if err == nil {
		el := r.lru.PushFront(&lruEntry{key: key, c: c})
		r.byKey[key] = el
		for r.lru.Len() > r.cfg.CacheSize {
			oldest := r.lru.Back()
			r.lru.Remove(oldest)
			entry := oldest.Value.(*lruEntry)
			delete(r.byKey, entry.key)
			entry.c.close()
		}
	}
	r.mu.Unlock()
	call.c, call.err = c, err
	close(call.done)
	return c, err
}

func (r *Registry) compileKeyFor(m *Model, opts DrawOptions) (compileKey, error) {
	key := compileKey{hash: m.Hash, rounds: opts.Rounds, epsBits: math.Float64bits(opts.Epsilon), auto: opts.RoundsAuto}
	if m.Built.CSP != nil {
		if opts.Algorithm != "" {
			// Accept any spelling of the one chain CSPs run.
			if a, err := ParseAlgorithm(opts.Algorithm); err != nil || a != locsample.LubyGlauber {
				return key, fmt.Errorf("service: csp models only support the lubyglauber chain, got %q", opts.Algorithm)
			}
		}
		if opts.Epsilon != 0 {
			// No theory budget exists for CSPs, so epsilon has no effect;
			// accepting it would silently split one workload across cache
			// entries.
			return key, fmt.Errorf("service: csp models have no epsilon budget; supply rounds instead")
		}
		if opts.Rounds == 0 {
			key.rounds = m.Built.Rounds
		}
		if key.rounds <= 0 {
			return key, fmt.Errorf("service: csp model has no default round budget; supply rounds")
		}
		key.algorithm = locsample.LubyGlauber
		key.shards, key.parallel = r.resolveRuntime(m, opts)
		return key, nil
	}
	a, err := ParseAlgorithm(opts.Algorithm)
	if err != nil {
		return key, err
	}
	key.algorithm = a
	key.shards, key.parallel = r.resolveRuntime(m, opts)
	return key, nil
}

// resolveRuntime resolves the in-chain runtime of a draw — shard count and
// vertex-parallel worker count — as request > spec serving default > server
// default, identically for MRF and CSP models. 1 and 0 both mean
// centralized; canonicalizing to 0 keeps one workload on one cache entry.
// The server-wide default is clamped to the model's vertex count (a blanket
// -shards 8 must not make every draw of a 4-vertex model fail); explicit
// request values are not — the client asked for something impossible and
// should hear so.
//
// The two runtimes are mutually exclusive per draw, and the request
// outranks every default: a request that explicitly picks one runtime
// suppresses the DEFAULTS of the other (a parallel request on a spec whose
// serving default is shards runs parallel, and vice versa). Only a request
// naming both reaches the engine's mutual-exclusion error.
func (r *Registry) resolveRuntime(m *Model, opts DrawOptions) (shards, parallel int) {
	shards = opts.Shards
	if shards == 0 && opts.Parallel <= 1 {
		shards = m.Built.Shards
		if shards == 0 {
			shards = r.cfg.DefaultShards
			if n := m.Built.Graph.N(); shards > n {
				shards = n
			}
		}
	}
	if shards <= 1 {
		shards = 0
	}
	parallel = opts.Parallel
	if parallel == 0 && shards == 0 {
		parallel = m.Built.Parallel
		if parallel == 0 {
			parallel = r.cfg.DefaultParallel
		}
	}
	if parallel <= 1 {
		parallel = 0
	}
	return shards, parallel
}

// compile does the actual compilation work; it is called without r.mu
// held (the caller serializes same-key compiles via the singleflight).
func (r *Registry) compile(m *Model, key compileKey, opts DrawOptions) (*compiled, error) {
	if m.Built.CSP != nil {
		sopts := append(r.commonOptions(), locsample.WithRounds(key.rounds))
		if key.shards > 1 {
			sopts = append(sopts, locsample.WithShards(key.shards))
			if !key.local {
				sopts = append(sopts, r.remoteOptions(m, key.shards)...)
			}
		}
		if key.parallel > 1 {
			sopts = append(sopts, locsample.WithParallelRounds(key.parallel))
		}
		if key.auto {
			// The coupling measures under the sampler's compile seed (the
			// service leaves it at 0), so the measured budget depends only
			// on (model, options) — per-request seeds still reseed draws.
			sopts = append(sopts, locsample.WithRoundsAuto())
		}
		r.compiles.Inc()
		cs, err := locsample.NewCSPSampler(m.Built.Graph, m.Built.CSP, m.Built.Init, sopts...)
		if err != nil {
			return nil, err
		}
		return &compiled{cspSampler: cs}, nil
	}
	sopts := append(r.commonOptions(), locsample.WithAlgorithm(key.algorithm))
	if key.rounds > 0 {
		sopts = append(sopts, locsample.WithRounds(key.rounds))
	}
	if opts.Epsilon > 0 {
		sopts = append(sopts, locsample.WithEpsilon(opts.Epsilon))
	}
	if key.shards > 1 {
		sopts = append(sopts, locsample.WithShards(key.shards))
		if !key.local {
			sopts = append(sopts, r.remoteOptions(m, key.shards)...)
		}
	}
	if key.parallel > 1 {
		sopts = append(sopts, locsample.WithParallelRounds(key.parallel))
	}
	if key.auto {
		sopts = append(sopts, locsample.WithRoundsAuto())
	}
	r.compiles.Inc()
	sampler, err := locsample.NewSampler(m.Built.Model, sopts...)
	if err != nil {
		return nil, err
	}
	return &compiled{sampler: sampler}, nil
}

// commonOptions are the observability options every compiled sampler
// gets: the registry's logger always, and — when the server was
// configured with a shared metrics registry — the sampler-level
// metric series (draw/round histograms, worker gauges).
func (r *Registry) commonOptions() []locsample.Option {
	opts := []locsample.Option{locsample.WithLogger(r.log)}
	if r.cfg.Obs != nil {
		opts = append(opts, locsample.WithMetrics(r.obs))
	}
	return opts
}

// remoteOptions places a sharded compile on the server's lsharded
// workers when any are configured. The worker list is truncated to the
// shard count (every worker must host at least one shard); the model
// ships as its registered spec, so the workers rebuild exactly the
// registered workload.
func (r *Registry) remoteOptions(m *Model, shards int) []locsample.Option {
	addrs := r.cfg.WorkerAddrs
	if len(addrs) == 0 {
		return nil
	}
	if len(addrs) > shards {
		addrs = addrs[:shards]
	}
	opts := []locsample.Option{
		locsample.WithRemoteWorkers(addrs...),
		locsample.WithModelSpec(m.Spec),
	}
	if len(r.cfg.StandbyAddrs) > 0 {
		opts = append(opts, locsample.WithStandbyWorkers(r.cfg.StandbyAddrs...))
	}
	if r.cfg.Retry != nil {
		opts = append(opts, locsample.WithRetryPolicy(*r.cfg.Retry))
	}
	return opts
}

// WorkerStatus is one worker-probe result; see ProbeWorkers.
type WorkerStatus struct {
	Addr     string `json:"addr"`
	Standby  bool   `json:"standby,omitempty"`
	Up       bool   `json:"up"`
	Draining bool   `json:"draining,omitempty"`
	Error    string `json:"error,omitempty"`
}

// ProbeWorkers pings every configured lsharded worker — live and
// standby — over the control protocol and records the result: the
// locserved_worker_up{addr} gauge flips per address, unreachable
// workers are logged immediately, and the probe snapshot is exposed in
// Stats (/statsz). lserved runs one probe at startup so a mistyped or
// down worker is visible before the first draw discovers it; callers
// may re-probe at any time. A server with no workers returns nil.
func (r *Registry) ProbeWorkers(timeout time.Duration) []WorkerStatus {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	probe := func(addr string, standby bool) WorkerStatus {
		st := WorkerStatus{Addr: addr, Standby: standby}
		pong, err := transport.Ping(addr, timeout)
		if err != nil {
			st.Error = err.Error()
			r.log.Warn("worker unreachable", "addr", addr, "standby", standby, "err", err)
		} else {
			st.Up = true
			st.Draining = pong.Draining
			r.log.Info("worker up", "addr", addr, "standby", standby, "draining", pong.Draining)
		}
		up := int64(0)
		if st.Up {
			up = 1
		}
		r.obs.Gauge("locserved_worker_up", "1 while the worker answers control pings", "addr", addr).Set(up)
		return st
	}
	var out []WorkerStatus
	for _, a := range r.cfg.WorkerAddrs {
		out = append(out, probe(a, false))
	}
	for _, a := range r.cfg.StandbyAddrs {
		out = append(out, probe(a, true))
	}
	r.mu.Lock()
	r.workers = out
	r.mu.Unlock()
	return out
}

// RegistryStats is the /statsz payload.
type RegistryStats struct {
	UptimeSeconds float64      `json:"uptimeSeconds"`
	Models        int          `json:"models"`
	Cache         CacheStats   `json:"cache"`
	PerModel      []ModelStats `json:"perModel"`
	// Workers is the latest worker-probe snapshot (absent when the
	// server has no remote workers or no probe has run).
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// CacheStats reports the compiled-sampler cache counters.
type CacheStats struct {
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Compiles int64 `json:"compiles"`
}

// Stats snapshots the registry.
func (r *Registry) Stats() RegistryStats {
	models := r.List()
	r.mu.Lock()
	size := r.lru.Len()
	workers := append([]WorkerStatus(nil), r.workers...)
	r.mu.Unlock()
	st := RegistryStats{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Models:        len(models),
		Cache: CacheStats{
			Size:     size,
			Capacity: r.cfg.CacheSize,
			Hits:     r.cacheHits.Value(),
			Misses:   r.cacheMiss.Value(),
			Compiles: r.compiles.Value(),
		},
		Workers: workers,
	}
	for _, m := range models {
		st.PerModel = append(st.PerModel, m.Stats())
	}
	sort.Slice(st.PerModel, func(i, j int) bool { return st.PerModel[i].ID < st.PerModel[j].ID })
	return st
}
