package service

// The lsharded worker: one process hosting a slice of a sharded chain's
// plan. A coordinator (locsample.WithRemoteWorkers, typically inside
// lserved) sends each worker a job — the model's wire spec plus the
// plan parameters — over a control connection; the worker rebuilds the
// model and plan deterministically, meshes up with its peer workers
// over TCP, and then serves lockstep draws until the control connection
// closes. Both reconstructions are pure functions of the job message,
// which is what makes a cross-process draw byte-identical to the
// centralized chain: the shards compute exactly the PRF-keyed updates
// the local engine would, only placed on other machines.

import (
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"locsample"
	"locsample/internal/chains"
	"locsample/internal/cluster"
	"locsample/internal/obs"
	"locsample/internal/partition"
	"locsample/internal/spec"
	"locsample/internal/transport"
)

// WorkerConfig tunes an lsharded worker.
type WorkerConfig struct {
	// ReadyTimeout bounds job setup — model build, mesh dial, peer
	// attach (default 30s).
	ReadyTimeout time.Duration
	// RecvTimeout bounds each boundary Recv once rounds run (default
	// 60s); it is the deadline that turns a lost frame or dead peer
	// into a typed error instead of a hang.
	RecvTimeout time.Duration
	// WrapTransport, when non-nil, wraps each job's boundary fabric
	// before the engine sees it — the fault-injection hook.
	WrapTransport func(transport.Transport) transport.Transport
	// Log sinks worker logs (nil discards them).
	Log *slog.Logger
	// Obs receives the worker's metrics (jobs, draws, round timing).
	// Nil disables metering — the obs metric types treat a nil registry
	// as a no-op sink, so the worker code never branches on it.
	Obs *obs.Registry
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 30 * time.Second
	}
	if c.RecvTimeout <= 0 {
		c.RecvTimeout = 60 * time.Second
	}
	if c.Log == nil {
		c.Log = obs.NopLogger()
	}
	return c
}

// workerMetrics is the lsharded metric family set. With a nil registry
// every field is a typed nil whose methods are no-ops.
type workerMetrics struct {
	jobsActive   *obs.Gauge
	jobsTotal    *obs.Counter
	jobsRejected *obs.Counter
	draws        *obs.Counter
	drawErrors   *obs.Counter
	drawSeconds  *obs.Histogram
	rounds       *obs.RoundMetrics
}

func newWorkerMetrics(r *obs.Registry) workerMetrics {
	return workerMetrics{
		jobsActive:   r.Gauge("lsharded_jobs_active", "jobs currently hosted"),
		jobsTotal:    r.Counter("lsharded_jobs_total", "jobs accepted since start"),
		jobsRejected: r.Counter("lsharded_jobs_rejected_total", "jobs rejected (bad spec, mesh failure, draining)"),
		draws:        r.Counter("lsharded_draws_total", "draws served"),
		drawErrors:   r.Counter("lsharded_draw_errors_total", "draws that failed"),
		drawSeconds:  r.Histogram("lsharded_draw_seconds", "per-draw wall time", 1e-9),
		rounds: &obs.RoundMetrics{
			ComputeNS: r.Histogram("lsharded_round_compute_seconds", "per-shard per-round kernel time", 1e-9),
			BarrierNS: r.Histogram("lsharded_round_barrier_seconds", "per-shard per-round barrier wait", 1e-9),
			Flips:     r.Counter("lsharded_round_flips_total", "accepted vertex updates"),
			Rounds:    r.Counter("lsharded_rounds_total", "shard-rounds executed"),
		},
	}
}

// Worker is a running lsharded process: an accept loop demultiplexing
// coordinator control connections and peer frame streams by their
// opening magic.
type Worker struct {
	cfg     WorkerConfig
	ln      net.Listener
	metrics workerMetrics

	// draining refuses new jobs while letting hosted ones finish — the
	// SIGTERM half of graceful shutdown; Close is the other half.
	draining atomic.Bool

	mu      sync.Mutex
	jobs    map[uint64]*workerJob
	pending map[uint64][]pendingPeer
	conns   map[net.Conn]struct{} // every accepted conn still inside a handler
	closed  bool
	wg      sync.WaitGroup
}

// pendingPeer is an inbound peer connection whose job has not arrived
// yet (peer workers may dial before our own JobMsg lands).
type pendingPeer struct {
	from int
	c    net.Conn
	at   time.Time
}

// workerJob is one hosted job: the engine over this process's shards
// and the mesh it exchanges boundaries through.
type workerJob struct {
	id     uint64
	tcp    *transport.TCP
	eng    shardEngine
	init   []int
	out    []int
	owned  []int // global vertex IDs in result order
	local  []int // shard IDs this process hosts, ascending
	shards int   // total shard count of the plan

	// metricsObs stays attached to the engine between draws; traced
	// draws tee a per-draw recorder onto it.
	metricsObs *obs.RoundMetrics

	prevFrames, prevBytes int64
}

// shardEngine is the slice of the cluster engines a job needs.
type shardEngine interface {
	Run(init []int, seed uint64, rounds int, out []int) (cluster.Stats, error)
	SetObserver(chains.RoundObserver)
	Close() error
}

// NewWorker listens on addr and starts serving jobs. Use Addr to learn
// the bound address (addr may end in ":0").
func NewWorker(addr string, cfg WorkerConfig) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	w := &Worker{
		cfg:     cfg,
		ln:      ln,
		metrics: newWorkerMetrics(cfg.Obs),
		jobs:    make(map[uint64]*workerJob),
		pending: make(map[uint64][]pendingPeer),
		conns:   make(map[net.Conn]struct{}),
	}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the address the worker accepts connections on.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Drain puts the worker into draining mode: new jobs are rejected while
// hosted jobs keep serving draws until their coordinators hang up. Call
// Close once ActiveJobs reaches zero (or a drain deadline expires).
func (w *Worker) Drain() { w.draining.Store(true) }

// Draining reports whether Drain has been called.
func (w *Worker) Draining() bool { return w.draining.Load() }

// ActiveJobs returns the number of jobs currently hosted.
func (w *Worker) ActiveJobs() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.jobs)
}

// Close stops the accept loop and tears down every hosted job.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	jobs := make([]*workerJob, 0, len(w.jobs))
	for _, j := range w.jobs {
		jobs = append(jobs, j)
	}
	var stray []net.Conn
	for _, ps := range w.pending {
		for _, p := range ps {
			stray = append(stray, p.c)
		}
	}
	w.pending = map[uint64][]pendingPeer{}
	// Close active handler conns too — an idle control session blocks in
	// a deadline-free ReadControl and would park wg.Wait until its
	// coordinator hung up.
	for c := range w.conns {
		stray = append(stray, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	for _, j := range jobs {
		j.eng.Close()
	}
	for _, c := range stray {
		c.Close()
	}
	w.wg.Wait()
	return err
}

// track registers an accepted conn so Close can interrupt its handler;
// it refuses conns that race a shutdown.
func (w *Worker) track(c net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[c] = struct{}{}
	return true
}

func (w *Worker) untrack(c net.Conn) {
	w.mu.Lock()
	delete(w.conns, c)
	w.mu.Unlock()
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		c, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !w.track(c) {
			c.Close()
			return
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer w.untrack(c)
			w.handleConn(c)
		}()
	}
}

func (w *Worker) handleConn(c net.Conn) {
	magic, err := transport.ReadMagic(c, w.cfg.ReadyTimeout)
	if err != nil {
		c.Close()
		return
	}
	switch magic {
	case transport.MagicControl:
		w.handleControl(c)
	case transport.MagicPeer:
		jobID, from, err := transport.ReadPeerHello(c, w.cfg.ReadyTimeout)
		if err != nil {
			c.Close()
			return
		}
		c.SetReadDeadline(time.Time{})
		w.deliverPeer(jobID, from, c)
	default:
		w.cfg.Log.Warn("connection with unknown magic", "magic", fmt.Sprintf("%q", magic[:]), "remote", c.RemoteAddr().String())
		c.Close()
	}
}

// deliverPeer attaches an inbound peer stream to its job's mesh, or
// parks it until the JobMsg arrives (peer workers race our coordinator).
func (w *Worker) deliverPeer(jobID uint64, from int, c net.Conn) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		c.Close()
		return
	}
	if j, ok := w.jobs[jobID]; ok {
		w.mu.Unlock()
		if err := j.tcp.AddConn(from, c); err != nil {
			w.cfg.Log.Warn("attach peer failed", "job", fmt.Sprintf("%x", jobID), "peer", from, "err", err)
			c.Close()
		}
		return
	}
	// Prune parked peers nobody claimed (their coordinator died between
	// meshing and job delivery).
	cutoff := time.Now().Add(-w.cfg.ReadyTimeout)
	for id, ps := range w.pending {
		kept := ps[:0]
		for _, p := range ps {
			if p.at.Before(cutoff) {
				p.c.Close()
			} else {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(w.pending, id)
		} else {
			w.pending[id] = kept
		}
	}
	w.pending[jobID] = append(w.pending[jobID], pendingPeer{from: from, c: c, at: time.Now()})
	w.mu.Unlock()
}

// pong answers a liveness probe. Draining workers still answer — a
// draining worker is alive, it just won't take jobs — and report the
// drain bit so supervisors can steer new work elsewhere.
func (w *Worker) pong(c net.Conn) error {
	return transport.WriteControl(c, &transport.ControlMsg{
		Kind: "pong", Pong: &transport.PongMsg{Draining: w.Draining(), ActiveJobs: w.ActiveJobs()},
	}, w.cfg.ReadyTimeout)
}

// handleControl runs one coordinator session: job, ready, then a run
// loop until the connection drops (which tears the job down — a
// coordinator teardown is how jobs end). A session may also be a bare
// liveness probe: "ping" messages get a "pong" both before a job lands
// (heartbeat connections) and between draws.
func (w *Worker) handleControl(c net.Conn) {
	defer c.Close()
	m, err := transport.ReadControl(c, w.cfg.ReadyTimeout)
	if err != nil {
		return
	}
	for m.Kind == "ping" {
		if err := w.pong(c); err != nil {
			return
		}
		if m, err = transport.ReadControl(c, w.cfg.ReadyTimeout); err != nil {
			return
		}
	}
	if m.Kind != "job" || m.Job == nil {
		return
	}
	job := m.Job
	jobID := fmt.Sprintf("%x", job.JobID)
	reject := func(err error) {
		w.cfg.Log.Warn("job rejected", "job", jobID, "err", err)
		w.metrics.jobsRejected.Inc()
		transport.WriteControl(c, &transport.ControlMsg{
			Kind: "ready", Ready: &transport.ReadyMsg{OK: false, Error: err.Error()},
		}, w.cfg.ReadyTimeout)
	}
	if w.Draining() {
		reject(fmt.Errorf("worker: draining"))
		return
	}
	js, err := w.buildJob(job)
	if err != nil {
		reject(err)
		return
	}
	defer w.dropJob(js)
	if err := w.mesh(js); err != nil {
		reject(err)
		return
	}
	if err := transport.WriteControl(c, &transport.ControlMsg{
		Kind: "ready", Ready: &transport.ReadyMsg{OK: true},
	}, w.cfg.ReadyTimeout); err != nil {
		return
	}
	w.metrics.jobsTotal.Inc()
	w.metrics.jobsActive.Add(1)
	defer w.metrics.jobsActive.Add(-1)
	w.cfg.Log.Info("job ready", "job", jobID, "kind", job.Kind,
		"shards", job.Shards, "local", len(js.local), "owned", len(js.owned))
	for {
		m, err := transport.ReadControl(c, 0) // idle between draws
		if err != nil {
			return
		}
		if m.Kind == "ping" {
			if err := w.pong(c); err != nil {
				return
			}
			continue
		}
		if m.Kind != "run" || m.Run == nil {
			return
		}
		t0 := time.Now()
		res := js.run(m.Run.Seed, m.Run.Rounds, m.Run.Trace)
		elapsed := time.Since(t0)
		w.metrics.draws.Inc()
		w.metrics.drawSeconds.Observe(elapsed.Nanoseconds())
		if !res.OK {
			w.metrics.drawErrors.Inc()
			w.cfg.Log.Error("draw failed", "job", jobID, "err", res.Error)
		} else {
			w.cfg.Log.Debug("draw served", "job", jobID, "rounds", m.Run.Rounds,
				"traced", m.Run.Trace, "dur", elapsed)
		}
		if err := transport.WriteControl(c, &transport.ControlMsg{Kind: "result", Result: res}, w.cfg.ReadyTimeout); err != nil {
			return
		}
		if !res.OK {
			// The engine's transport is poisoned; the session cannot
			// serve another draw. The coordinator reconnects with a
			// fresh job.
			return
		}
	}
}

// buildJob rebuilds the model, plan, and engine a JobMsg describes.
// Everything here is deterministic in the message's fields.
func (w *Worker) buildJob(job *transport.JobMsg) (*workerJob, error) {
	if job.Proto != transport.ControlProtoVersion {
		return nil, fmt.Errorf("worker: control protocol %d, want %d", job.Proto, transport.ControlProtoVersion)
	}
	if job.Self < 0 || job.Self >= len(job.Workers) {
		return nil, fmt.Errorf("worker: self index %d out of range (%d workers)", job.Self, len(job.Workers))
	}
	if job.Shards < len(job.Workers) || job.Shards < 2 {
		return nil, fmt.Errorf("worker: %d shards across %d workers", job.Shards, len(job.Workers))
	}
	sp, err := spec.Decode(job.Spec)
	if err != nil {
		return nil, err
	}
	built, err := spec.Build(sp)
	if err != nil {
		return nil, err
	}
	strat, err := partition.ParseStrategy(job.Strategy)
	if err != nil {
		return nil, err
	}
	assign := partition.AssignShards(job.Shards, len(job.Workers))
	var local []int
	for s, p := range assign {
		if p == job.Self {
			local = append(local, s)
		}
	}

	js := &workerJob{
		id:         job.JobID,
		init:       append([]int(nil), job.Init...),
		local:      local,
		shards:     job.Shards,
		metricsObs: w.metrics.rounds,
	}
	var neighbors [][]int
	var mkEngine func(tr transport.Transport) (shardEngine, error)
	switch job.Kind {
	case "mrf":
		if built.MRF == nil {
			return nil, fmt.Errorf("worker: job kind mrf but spec kind %q", sp.Model.Kind)
		}
		alg, err := ParseAlgorithm(job.Algorithm)
		if err != nil {
			return nil, err
		}
		plan, err := partition.Build(built.MRF.G, job.Shards, strat, job.PlanSeed)
		if err != nil {
			return nil, err
		}
		neighbors = plan.NeighborLists()
		for _, s := range local {
			sh := plan.Shards[s]
			for _, g := range sh.Global[:sh.NOwned] {
				js.owned = append(js.owned, int(g))
			}
		}
		js.out = make([]int, built.MRF.G.N())
		mkEngine = func(tr transport.Transport) (shardEngine, error) {
			return cluster.NewWithTransport(built.MRF, plan, alg, job.DropRule3, local, tr)
		}
	case "csp":
		if built.CSP == nil {
			return nil, fmt.Errorf("worker: job kind csp but spec kind %q", sp.Model.Kind)
		}
		plan, err := partition.BuildCSP(built.CSP, job.Shards, strat, job.PlanSeed)
		if err != nil {
			return nil, err
		}
		neighbors = plan.NeighborLists()
		for _, s := range local {
			sh := plan.Shards[s]
			for _, g := range sh.Global[:sh.NOwned] {
				js.owned = append(js.owned, int(g))
			}
		}
		js.out = make([]int, built.CSP.N)
		mkEngine = func(tr transport.Transport) (shardEngine, error) {
			return cluster.NewCSPWithTransport(built.CSP, plan, locsample.LubyGlauber, local, tr)
		}
	default:
		return nil, fmt.Errorf("worker: unknown job kind %q", job.Kind)
	}
	if len(js.init) != len(js.out) {
		return nil, fmt.Errorf("worker: init carries %d states for %d vertices", len(js.init), len(js.out))
	}

	tcp, err := transport.NewTCP(transport.TCPConfig{
		JobID:       job.JobID,
		Self:        job.Self,
		Addrs:       job.Workers,
		Assign:      assign,
		Neighbors:   neighbors,
		DialTimeout: w.cfg.ReadyTimeout,
		RecvTimeout: w.cfg.RecvTimeout,
	})
	if err != nil {
		return nil, err
	}
	js.tcp = tcp
	var tr transport.Transport = transport.NewRouter(assign,
		transport.NewChan(neighbors, w.cfg.RecvTimeout), tcp)
	if w.cfg.WrapTransport != nil {
		tr = w.cfg.WrapTransport(tr)
	}
	eng, err := mkEngine(tr)
	if err != nil {
		tr.Close()
		return nil, err
	}
	js.eng = eng
	// Round metrics stay attached for the job's lifetime; traced draws
	// tee a per-draw recorder onto them in run.
	eng.SetObserver(js.metricsObs)
	return js, nil
}

// mesh registers the job (adopting peers that dialed in early), dials
// the lower-index peers, and waits for the full mesh.
func (w *Worker) mesh(js *workerJob) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("worker: shutting down")
	}
	if _, ok := w.jobs[js.id]; ok {
		w.mu.Unlock()
		return fmt.Errorf("worker: job %x already hosted", js.id)
	}
	w.jobs[js.id] = js
	parked := w.pending[js.id]
	delete(w.pending, js.id)
	w.mu.Unlock()
	for _, p := range parked {
		if err := js.tcp.AddConn(p.from, p.c); err != nil {
			p.c.Close()
			return err
		}
	}
	if err := js.tcp.Dial(); err != nil {
		return err
	}
	return js.tcp.Ready(w.cfg.ReadyTimeout)
}

func (w *Worker) dropJob(js *workerJob) {
	w.mu.Lock()
	delete(w.jobs, js.id)
	w.mu.Unlock()
	js.eng.Close() // closes the router, closing Chan and TCP with it
}

// run executes one draw and packages this process's owned states (local
// shards ascending, owned bands in ascending global order — the slot
// order the coordinator reassembles by). With trace set it additionally
// records per-shard round timing and ships the series back so the
// coordinator can graft this process's spans into the draw's trace.
func (j *workerJob) run(seed uint64, rounds int, trace bool) *transport.ResultMsg {
	var rec *obs.RoundRecorder
	if trace {
		// The recorder is indexed by global shard ID; only this
		// process's rows get written. Swapped in for this draw only —
		// draws on one control session are serial, so this races
		// nothing.
		rec = obs.NewRoundRecorder(j.shards, rounds)
		j.eng.SetObserver(&obs.TeeRounds{A: rec, B: j.metricsObs})
		defer j.eng.SetObserver(j.metricsObs)
	}
	st, err := j.eng.Run(j.init, seed, rounds, j.out)
	if err != nil {
		return &transport.ResultMsg{Error: err.Error()}
	}
	states := make([]int, len(j.owned))
	for i, g := range j.owned {
		states[i] = j.out[g]
	}
	ctr := j.tcp.Stats()
	res := &transport.ResultMsg{
		OK:         true,
		States:     states,
		Msgs:       st.BoundaryMessages,
		Vals:       st.BoundaryValues,
		WaitNS:     st.BarrierWaitNS,
		WireFrames: ctr.FramesSent - j.prevFrames,
		WireBytes:  ctr.BytesSent - j.prevBytes,
	}
	j.prevFrames, j.prevBytes = ctr.FramesSent, ctr.BytesSent
	if rec != nil {
		tm := &transport.TraceMsg{Shards: make([]transport.ShardTraceMsg, 0, len(j.local))}
		for _, s := range j.local {
			compute, barrier, flips, end := rec.ShardRounds(s)
			tm.Shards = append(tm.Shards, transport.ShardTraceMsg{
				Shard:     s,
				ComputeNS: compute,
				BarrierNS: barrier,
				Flips:     flips,
				EndNS:     end,
			})
		}
		res.Trace = tm
	}
	return res
}
