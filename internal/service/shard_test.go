package service

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"locsample"
)

// shardedSpec is a grid coloring whose spec pins a serving default of 2
// shards.
const shardedSpec = `{
	"version": "locsample/v1",
	"name": "grid-coloring-sharded",
	"graph": {"family": "grid", "rows": 8, "cols": 8},
	"model": {"kind": "coloring", "q": 13, "shards": 2}
}`

// TestServerShardedDrawBitIdentical pins wire-level determinism across the
// sharded runtime: a draw with a shards override returns exactly the
// centralized draw's samples (and exactly the local Sample at the derived
// chain seed), while reporting shard stats.
func TestServerShardedDrawBitIdentical(t *testing.T) {
	ts, _ := newTestServer(t)
	var reg RegisterResponse
	code, body := postJSON(t, ts.URL+"/v1/models", coloringSpec, &reg)
	if code != http.StatusCreated {
		t.Fatalf("register: code %d, body %s", code, body)
	}
	var central SampleResponse
	code, body = postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", `{"k":3,"seed":42}`, &central)
	if code != http.StatusOK {
		t.Fatalf("central sample: code %d, body %s", code, body)
	}
	if central.Shards != 0 || central.ShardStats != nil {
		t.Fatalf("centralized draw reports shard fields: %+v", central)
	}
	for _, k := range []int{2, 4, 7} {
		var sharded SampleResponse
		req := fmt.Sprintf(`{"k":3,"seed":42,"shards":%d}`, k)
		code, body = postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", req, &sharded)
		if code != http.StatusOK {
			t.Fatalf("sharded sample (k=%d): code %d, body %s", k, code, body)
		}
		if !reflect.DeepEqual(sharded.Samples, central.Samples) {
			t.Fatalf("shards=%d: served samples diverge from centralized draw", k)
		}
		if sharded.Shards != k || sharded.ShardStats == nil || sharded.ShardStats.BoundaryMessages == 0 {
			t.Fatalf("shards=%d: missing shard stats: %+v", k, sharded)
		}
	}
	// Chain 0 equals a local Sample at the derived seed (the PR-2 contract,
	// now through the sharded path).
	s, err := locsample.ParseSpec([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	built, err := locsample.BuildSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	local, err := locsample.Sample(built.Model, locsample.WithSeed(locsample.ChainSeed(42, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(central.Samples[0], local.Sample) {
		t.Fatal("served chain 0 diverges from local derived-seed Sample")
	}
}

// TestSpecShardsDefault: a spec's model.shards field becomes the draw's
// default shard count, and an explicit request override wins.
func TestSpecShardsDefault(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(shardedSpec))
	if err != nil {
		t.Fatal(err)
	}
	if m.Built.Shards != 2 {
		t.Fatalf("built spec shards = %d, want 2", m.Built.Shards)
	}
	res, err := reg.Draw(m, DrawOptions{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 2 {
		t.Fatalf("default draw ran %d shards, want the spec's 2", res.Shards)
	}
	over, err := reg.Draw(m, DrawOptions{K: 2, Seed: 7, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if over.Shards != 4 {
		t.Fatalf("override draw ran %d shards, want 4", over.Shards)
	}
	if !reflect.DeepEqual(over.Samples, res.Samples) {
		t.Fatal("shard counts changed the served samples")
	}
	// Per-model /statsz counters picked up the sharded draws.
	st := m.Stats()
	if st.ShardDraws != 4 || st.BoundaryMessages == 0 {
		t.Fatalf("model shard counters: %+v", st)
	}
}

// TestServerShardsDefault: the registry-level default (lserved -shards)
// applies when neither request nor spec name a count.
func TestServerShardsDefault(t *testing.T) {
	reg := NewRegistry(Config{DefaultShards: 3})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := reg.Draw(m, DrawOptions{K: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 3 {
		t.Fatalf("draw ran %d shards, want server default 3", res.Shards)
	}
	// shards=1 explicitly requests a centralized draw despite the default.
	res, err = reg.Draw(m, DrawOptions{K: 1, Seed: 5, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1 {
		t.Fatalf("shards=1 request ran %d shards", res.Shards)
	}
}

// TestServerShardsDefaultClamped: a blanket server default larger than a
// model's vertex count is clamped instead of failing every draw; an
// explicit request for the impossible count still errors.
func TestServerShardsDefaultClamped(t *testing.T) {
	tiny := `{
		"version": "locsample/v1",
		"graph": {"family": "path", "n": 4},
		"model": {"kind": "coloring", "q": 5}
	}`
	reg := NewRegistry(Config{DefaultShards: 8})
	m, _, err := reg.Register([]byte(tiny))
	if err != nil {
		t.Fatal(err)
	}
	res, err := reg.Draw(m, DrawOptions{K: 1, Seed: 2})
	if err != nil {
		t.Fatalf("default draw on 4-vertex model: %v", err)
	}
	if res.Shards != 4 {
		t.Fatalf("default clamped to %d shards, want 4", res.Shards)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Seed: 2, Shards: 8}); err == nil {
		t.Fatal("explicit impossible shard count accepted")
	}
}

// TestCSPShardsOneIsCentralized: shards:1 (and 0) mean centralized for
// CSPs too, matching the MRF canonicalization.
func TestCSPShardsOneIsCentralized(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(cspSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := reg.Draw(m, DrawOptions{K: 1, Seed: 3, Shards: 1})
	if err != nil {
		t.Fatalf("csp draw with shards=1: %v", err)
	}
	if res.Shards != 1 {
		t.Fatalf("csp draw reports %d shards", res.Shards)
	}
}

// TestShardOptionRejections: negative and oversized counts and sequential
// algorithms reject sharded draws with clear errors.
func TestShardOptionRejections(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Shards: -1}); err == nil {
		t.Fatal("negative shards accepted")
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Shards: 4096}); err == nil {
		t.Fatal("shards above MaxShards accepted")
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Shards: 2, Algorithm: "glauber"}); err == nil {
		t.Fatal("glauber sharded draw accepted")
	}
}

// TestShardCacheKeying: repeat draws with the same shard count never
// recompile, distinct counts compile distinct samplers, and 0/1 share the
// centralized entry.
func TestShardCacheKeying(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	base := reg.Compiles() // registration compiled the default sampler
	for i := 0; i < 3; i++ {
		if _, err := reg.Draw(m, DrawOptions{K: 1, Seed: uint64(i), Shards: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Compiles() - base; got != 1 {
		t.Fatalf("3 sharded draws compiled %d times, want 1", got)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Compiles() - base; got != 2 {
		t.Fatalf("distinct shard count did not compile its own sampler (compiles=%d)", got)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Compiles() - base; got != 2 {
		t.Fatalf("shards=1 draw recompiled (compiles=%d): 0 and 1 must share the centralized entry", got)
	}
}
