package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"locsample"
)

const coloringSpec = `{
	"version": "locsample/v1",
	"name": "grid-coloring",
	"graph": {"family": "grid", "rows": 6, "cols": 6},
	"model": {"kind": "coloring", "q": 12}
}`

const cspSpec = `{
	"version": "locsample/v1",
	"name": "cycle-domset",
	"graph": {"family": "cycle", "n": 12},
	"model": {"kind": "csp", "q": 2, "rounds": 60, "constraints": [
		{"kind": "cover", "scope": [0, 1, 11]},
		{"kind": "cover", "scope": [1, 2, 0]},
		{"kind": "cover", "scope": [2, 3, 1]},
		{"kind": "cover", "scope": [3, 4, 2]},
		{"kind": "cover", "scope": [4, 5, 3]},
		{"kind": "cover", "scope": [5, 6, 4]},
		{"kind": "cover", "scope": [6, 7, 5]},
		{"kind": "cover", "scope": [7, 8, 6]},
		{"kind": "cover", "scope": [8, 9, 7]},
		{"kind": "cover", "scope": [9, 10, 8]},
		{"kind": "cover", "scope": [10, 11, 9]},
		{"kind": "cover", "scope": [11, 0, 10]}
	]}
}`

func newTestServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry(Config{})
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(ts.Close)
	return ts, reg
}

func postJSON(t *testing.T, url, body string, out any) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestServerEndToEnd drives the full HTTP surface: register, list, fetch,
// sample, health, stats.
func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: code %d, body %v", code, health)
	}

	var reg RegisterResponse
	code, body := postJSON(t, ts.URL+"/v1/models", coloringSpec, &reg)
	if code != http.StatusCreated {
		t.Fatalf("register: code %d, body %s", code, body)
	}
	if !strings.HasPrefix(reg.ID, "sha256:") || reg.Kind != "coloring" || reg.N != 36 || reg.Q != 12 {
		t.Fatalf("register response: %+v", reg)
	}

	var list ModelListResponse
	if code := getJSON(t, ts.URL+"/v1/models", &list); code != http.StatusOK {
		t.Fatalf("list: code %d", code)
	}
	if len(list.Models) != 1 || list.Models[0].ID != reg.ID {
		t.Fatalf("list: %+v", list)
	}

	var one ModelResponse
	if code := getJSON(t, ts.URL+"/v1/models/"+reg.ID, &one); code != http.StatusOK {
		t.Fatalf("get model: code %d", code)
	}
	if one.Spec == nil || one.Spec.Name != "grid-coloring" {
		t.Fatalf("get model: %+v", one)
	}

	var sample SampleResponse
	code, body = postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", `{"k":3,"seed":42}`, &sample)
	if code != http.StatusOK {
		t.Fatalf("sample: code %d, body %s", code, body)
	}
	if sample.K != 3 || len(sample.Samples) != 3 || sample.Seed != 42 {
		t.Fatalf("sample response shape: %+v", sample)
	}
	if sample.Algorithm != "localmetropolis" || sample.Rounds <= 0 {
		t.Fatalf("sample provenance: %+v", sample)
	}
	for i, cfg := range sample.Samples {
		if len(cfg) != 36 {
			t.Fatalf("sample %d has %d spins", i, len(cfg))
		}
	}

	var stats RegistryStats
	if code := getJSON(t, ts.URL+"/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz: code %d", code)
	}
	if stats.Models != 1 || len(stats.PerModel) != 1 {
		t.Fatalf("statsz models: %+v", stats)
	}
	pm := stats.PerModel[0]
	if pm.Requests != 1 || pm.Samples != 3 || pm.Errors != 0 {
		t.Fatalf("statsz counters: %+v", pm)
	}
	if stats.Cache.Compiles < 1 {
		t.Fatalf("statsz cache: %+v", stats.Cache)
	}
}

// TestServerErrors covers the rejection paths.
func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	if code, _ := postJSON(t, ts.URL+"/v1/models", `{"version":"bogus"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid spec: code %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/models/sha256:nope/sample", `{}`, nil); code != http.StatusNotFound {
		t.Fatalf("unknown model: code %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/models/sha256:nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model get: code %d", resp.StatusCode)
	}

	var reg RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", coloringSpec, &reg); code != http.StatusCreated {
		t.Fatalf("register: code %d body %s", code, body)
	}
	for name, body := range map[string]string{
		"bad k":         `{"k":-1}`,
		"k over limit":  `{"k":1000000}`,
		"bad algorithm": `{"algorithm":"quantum"}`,
		"bad epsilon":   `{"epsilon":2}`,
		"bad json":      `{`,
	} {
		if code, b := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: code %d body %s", name, code, b)
		}
	}

	// Method mismatches.
	resp, err = http.Get(ts.URL + "/v1/models/" + reg.ID + "/sample")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET sample: code %d", resp.StatusCode)
	}
}

// TestRegisterCacheHit pins the compile-once contract: re-registering an
// identical spec (modulo whitespace and key order) and re-drawing with the
// same options never re-runs core.Compile.
func TestRegisterCacheHit(t *testing.T) {
	ts, reg := newTestServer(t)

	var first RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", coloringSpec, &first); code != http.StatusCreated {
		t.Fatalf("register: code %d body %s", code, body)
	}
	if first.Cached {
		t.Fatal("first registration reported cached")
	}
	compiles := reg.Compiles()
	if compiles < 1 {
		t.Fatalf("eager compile did not run: %d", compiles)
	}

	// Same workload, different bytes: key order shuffled, whitespace
	// stripped. Content addressing must land on the same entry.
	reordered := `{"model":{"q":12,"kind":"coloring"},"name":"grid-coloring",` +
		`"graph":{"cols":6,"family":"grid","rows":6},"version":"locsample/v1"}`
	var second RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", reordered, &second); code != http.StatusOK {
		t.Fatalf("re-register: code %d body %s", code, body)
	}
	if !second.Cached || second.ID != first.ID {
		t.Fatalf("re-registration missed the cache: %+v vs %+v", second, first)
	}
	if got := reg.Compiles(); got != compiles {
		t.Fatalf("re-registration recompiled: %d -> %d", compiles, got)
	}

	// Repeated draws with default options reuse the eagerly compiled
	// sampler; only a new option set compiles again.
	for i := 0; i < 3; i++ {
		if code, body := postJSON(t, ts.URL+"/v1/models/"+first.ID+"/sample",
			fmt.Sprintf(`{"k":2,"seed":%d}`, i), nil); code != http.StatusOK {
			t.Fatalf("draw %d: code %d body %s", i, code, body)
		}
	}
	if got := reg.Compiles(); got != compiles {
		t.Fatalf("default-option draws recompiled: %d -> %d", compiles, got)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/models/"+first.ID+"/sample",
		`{"k":1,"algorithm":"lubyglauber"}`, nil); code != http.StatusOK {
		t.Fatal("lubyglauber draw failed")
	}
	if got := reg.Compiles(); got != compiles+1 {
		t.Fatalf("new option set should compile exactly once more: %d -> %d", compiles, got)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/models/"+first.ID+"/sample",
		`{"k":1,"algorithm":"lubyglauber"}`, nil); code != http.StatusOK {
		t.Fatal("repeat lubyglauber draw failed")
	}
	if got := reg.Compiles(); got != compiles+1 {
		t.Fatalf("repeat option set recompiled: %d", got)
	}
}

// TestServerDrawBitIdentical pins determinism over the wire: a server draw
// for (spec, seed) returns chain i bit-identical to a local Sample with
// seed ChainSeed(seed, i) on the locally built spec.
func TestServerDrawBitIdentical(t *testing.T) {
	ts, _ := newTestServer(t)

	var reg RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", coloringSpec, &reg); code != http.StatusCreated {
		t.Fatalf("register: code %d body %s", code, body)
	}
	const seed, k = 1234, 5
	var resp SampleResponse
	if code, body := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		fmt.Sprintf(`{"k":%d,"seed":%d}`, k, seed), &resp); code != http.StatusOK {
		t.Fatalf("sample: code %d body %s", code, body)
	}

	s, err := locsample.ParseSpec([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	built, err := locsample.BuildSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if built.Hash != reg.ID {
		t.Fatalf("hash mismatch: local %s, server %s", built.Hash, reg.ID)
	}
	for i := 0; i < k; i++ {
		local, err := locsample.Sample(built.Model,
			locsample.WithAlgorithm(locsample.LocalMetropolis),
			locsample.WithSeed(locsample.ChainSeed(seed, i)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(local.Sample, resp.Samples[i]) {
			t.Fatalf("served chain %d diverges from local ChainSeed sample", i)
		}
		if local.Rounds != resp.Rounds {
			t.Fatalf("round budget diverges: local %d, served %d", local.Rounds, resp.Rounds)
		}
	}
}

// TestServerCSPDraw: CSP specs serve through the hypergraph chain with the
// same per-chain seed derivation.
func TestServerCSPDraw(t *testing.T) {
	ts, _ := newTestServer(t)

	var reg RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", cspSpec, &reg); code != http.StatusCreated {
		t.Fatalf("register: code %d body %s", code, body)
	}
	const seed, k = 99, 4
	var resp SampleResponse
	if code, body := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		fmt.Sprintf(`{"k":%d,"seed":%d}`, k, seed), &resp); code != http.StatusOK {
		t.Fatalf("sample: code %d body %s", code, body)
	}
	if resp.Rounds != 60 || resp.Algorithm != "lubyglauber" {
		t.Fatalf("csp provenance: %+v", resp)
	}

	s, err := locsample.ParseSpec([]byte(cspSpec))
	if err != nil {
		t.Fatal(err)
	}
	built, err := locsample.BuildSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		local, _, err := locsample.SampleCSP(built.Graph, built.CSP, built.Init,
			built.Rounds, locsample.ChainSeed(seed, i), false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(local, resp.Samples[i]) {
			t.Fatalf("served CSP chain %d diverges from local ChainSeed sample", i)
		}
		if !built.CSP.Feasible(resp.Samples[i]) {
			t.Fatalf("served CSP sample %d infeasible", i)
		}
	}

	// Overriding the algorithm on a CSP model is rejected — but any
	// spelling of the one chain CSPs run is fine.
	if code, _ := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		`{"algorithm":"glauber"}`, nil); code != http.StatusBadRequest {
		t.Fatal("csp algorithm override not rejected")
	}
	if code, body := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		`{"algorithm":"luby","seed":1}`, nil); code != http.StatusOK {
		t.Fatalf("lubyglauber alias rejected on csp: %d %s", code, body)
	}
	// Epsilon has no meaning for CSPs; silently accepting it would split
	// the cache.
	if code, _ := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		`{"epsilon":0.1}`, nil); code != http.StatusBadRequest {
		t.Fatal("csp epsilon override not rejected")
	}
}

// TestCSPWithoutDefaultRounds: a CSP spec may leave the round budget to
// requests; registration succeeds, rounds-less draws are rejected, and a
// request-supplied budget serves.
func TestCSPWithoutDefaultRounds(t *testing.T) {
	ts, _ := newTestServer(t)
	noRounds := strings.Replace(cspSpec, `"rounds": 60, `, ``, 1)
	var reg RegisterResponse
	if code, body := postJSON(t, ts.URL+"/v1/models", noRounds, &reg); code != http.StatusCreated {
		t.Fatalf("register without rounds: code %d body %s", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", `{"seed":1}`, nil); code != http.StatusBadRequest {
		t.Fatal("rounds-less csp draw not rejected")
	}
	var resp SampleResponse
	if code, body := postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample",
		`{"seed":1,"rounds":40}`, &resp); code != http.StatusOK {
		t.Fatalf("csp draw with request rounds: code %d body %s", code, body)
	}
	if resp.Rounds != 40 {
		t.Fatalf("rounds: %d", resp.Rounds)
	}
}

// TestLRUEviction: the compiled cache stays bounded and recompiles after
// eviction.
func TestLRUEviction(t *testing.T) {
	reg := NewRegistry(Config{CacheSize: 2})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	base := reg.Compiles()
	// Three distinct option sets through a 2-entry cache.
	for _, rounds := range []int{10, 20, 30} {
		if _, err := reg.Draw(m, DrawOptions{K: 1, Rounds: rounds}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Compiles(); got != base+3 {
		t.Fatalf("expected 3 compiles, got %d", got-base)
	}
	// rounds=10 was evicted (LRU capacity 2 holds 20, 30): drawing it again
	// must recompile exactly once.
	if _, err := reg.Draw(m, DrawOptions{K: 1, Rounds: 10}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Compiles(); got != base+4 {
		t.Fatalf("evicted entry did not recompile: %d", got-base)
	}
	st := reg.Stats()
	if st.Cache.Size > 2 {
		t.Fatalf("cache exceeded capacity: %+v", st.Cache)
	}
}

// TestColdKeySingleflight: concurrent draws on a never-compiled option
// set produce exactly one compile — the others wait on the in-flight one
// instead of stampeding or stalling behind the registry lock.
func TestColdKeySingleflight(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	base := reg.Compiles()
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			_, err := reg.Draw(m, DrawOptions{K: 1, Seed: uint64(w), Rounds: 77})
			errc <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Compiles(); got != base+1 {
		t.Fatalf("cold key compiled %d times, want 1", got-base)
	}
}

// TestConcurrentDraws exercises the registry under parallel requests with
// distinct seeds (run with -race in CI).
func TestConcurrentDraws(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 5; i++ {
				if _, err := reg.Draw(m, DrawOptions{K: 2, Seed: uint64(w*100 + i)}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Stats().Requests; got != workers*5 {
		t.Fatalf("request counter: %d", got)
	}
	if got := m.Stats().Samples; got != workers*5*2 {
		t.Fatalf("sample counter: %d", got)
	}
}
