package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"locsample"
	"locsample/internal/obs"
	"locsample/internal/spec"
)

// HTTP API of cmd/lserved, all JSON:
//
//	POST /v1/models              register a spec; body = Spec JSON
//	GET  /v1/models              list registered models
//	GET  /v1/models/{id}         one model's spec + counters
//	POST /v1/models/{id}/sample  draw k samples
//	POST /v1/models/{id}/sample/stream  draw one sample, streaming mixing
//	                             telemetry as SSE round events (final
//	                             event carries the draw)
//	GET  /healthz                liveness
//	GET  /statsz                 registry + cache + per-model counters
//	GET  /metrics                Prometheus text exposition
//	GET  /debug/trace/{id}       one draw's Chrome trace-event JSON
//	GET  /debug/traces           stored trace listing
//	GET  /debug/mixing/{id}      one model's latest mixing summary
//	GET  /debug/pprof/...        runtime profiles
//
// Model IDs are spec content hashes ("sha256:" + 64 hex digits), so
// registration is idempotent and clients may pre-compute IDs offline.

// RegisterResponse answers POST /v1/models.
type RegisterResponse struct {
	ID string `json:"id"`
	// Cached reports that the spec was already registered (and its
	// compiled sampler reused).
	Cached bool   `json:"cached"`
	Kind   string `json:"kind"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Q      int    `json:"q"`
}

// SampleRequest is the body of POST /v1/models/{id}/sample. All fields are
// optional.
type SampleRequest struct {
	// K is the number of independent samples (default 1).
	K int `json:"k,omitempty"`
	// Seed pins the draw: chain i of the response is bit-identical to a
	// local sample with seed ChainSeed(seed, i). When omitted the server
	// picks a random seed and echoes it.
	Seed *uint64 `json:"seed,omitempty"`
	// Algorithm overrides the chain (MRF models only).
	Algorithm string `json:"algorithm,omitempty"`
	// Rounds overrides the round budget. On the wire it also accepts the
	// string "auto" (see RoundsAuto); the typed field stays an int so
	// literal SampleRequest values keep working.
	Rounds int `json:"rounds,omitempty"`
	// RoundsAuto is the parsed form of rounds:"auto": the budget is
	// measured by a grand coupling at compile time instead of taken from
	// worst-case theory, capped by the budget the other options resolve.
	RoundsAuto bool `json:"-"`
	// Every is the round-event cadence of the streaming endpoint: one SSE
	// round event per Every rounds (default 16; ignored by plain sample).
	Every int `json:"every,omitempty"`
	// Epsilon overrides the total-variation target of the automatic
	// budget.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Shards overrides the shard count every chain runs with (MRF models
	// only; default: the spec's "shards" field, then the server's
	// -shards flag). Purely a latency knob: samples are bit-identical at
	// every shard count.
	Shards int `json:"shards,omitempty"`
	// Parallel overrides the vertex-parallel worker count every chain's
	// rounds run with (MRF models only; default: the spec's "parallel"
	// field, then the server's -parallel flag). Also purely a latency
	// knob — samples are bit-identical at every worker count — and
	// mutually exclusive with Shards.
	Parallel int `json:"parallel,omitempty"`
	// Trace records a per-round timing trace of the draw (k must be 1).
	// The response carries the trace ID; fetch the Chrome trace-event
	// JSON at /debug/trace/{id}. The sample is bit-identical to an
	// untraced draw with the same options.
	Trace bool `json:"trace,omitempty"`
}

// UnmarshalJSON accepts both spellings of rounds — a number, or the
// string "auto" for a coupling-measured budget.
func (sr *SampleRequest) UnmarshalJSON(data []byte) error {
	type alias SampleRequest
	aux := struct {
		*alias
		Rounds json.RawMessage `json:"rounds,omitempty"`
	}{alias: (*alias)(sr)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	raw := strings.TrimSpace(string(aux.Rounds))
	if raw == "" || raw == "null" {
		return nil
	}
	if strings.HasPrefix(raw, `"`) {
		var s string
		if err := json.Unmarshal(aux.Rounds, &s); err != nil {
			return err
		}
		if s != "auto" {
			return fmt.Errorf("rounds must be a number or \"auto\", got %q", s)
		}
		sr.RoundsAuto = true
		return nil
	}
	return json.Unmarshal(aux.Rounds, &sr.Rounds)
}

// SampleResponse answers POST /v1/models/{id}/sample.
type SampleResponse struct {
	ID           string `json:"id"`
	Seed         uint64 `json:"seed"`
	K            int    `json:"k"`
	Algorithm    string `json:"algorithm"`
	Rounds       int    `json:"rounds"`
	TheoryRounds int    `json:"theoryRounds,omitempty"`
	// CapRounds is the worst-case budget a rounds:"auto" draw was capped
	// by (omitted for fixed-budget draws).
	CapRounds int `json:"capRounds,omitempty"`
	// Shards is the shard count each chain ran with; ShardStats profiles
	// the sharded runtime (both omitted for centralized draws).
	Shards     int                   `json:"shards,omitempty"`
	ShardStats *locsample.ShardStats `json:"shardStats,omitempty"`
	// Parallel is the vertex-parallel worker count each chain's rounds ran
	// with (omitted for sequential rounds).
	Parallel  int     `json:"parallel,omitempty"`
	ElapsedMS float64 `json:"elapsedMs"`
	// TraceID identifies the recorded trace of a traced draw; GET
	// /debug/trace/{id} returns it as Chrome trace-event JSON.
	TraceID string  `json:"traceId,omitempty"`
	Samples [][]int `json:"samples"`
}

// ModelListResponse answers GET /v1/models.
type ModelListResponse struct {
	Models []ModelStats `json:"models"`
}

// ModelResponse answers GET /v1/models/{id}.
type ModelResponse struct {
	ModelStats
	Spec *spec.Spec `json:"spec"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewServer returns the HTTP handler serving reg. Routing is hand-rolled
// on the standard library only. The handler includes the debug surface
// (/metrics, /debug/trace/{id}, /debug/pprof) over the registry's
// metrics registry and trace store, and wraps everything in a
// request-ID logging middleware over the registry's logger.
func NewServer(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	obs.RegisterDebug(mux, reg.obs, reg.traces, reg.mixing)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if !allowMethod(w, req, http.MethodGet) {
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, req *http.Request) {
		if !allowMethod(w, req, http.MethodGet) {
			return
		}
		writeJSON(w, http.StatusOK, reg.Stats())
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			resp := ModelListResponse{Models: []ModelStats{}}
			for _, m := range reg.List() {
				resp.Models = append(resp.Models, m.Stats())
			}
			writeJSON(w, http.StatusOK, resp)
		case http.MethodPost:
			handleRegister(reg, w, req)
		default:
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", req.Method))
		}
	})
	mux.HandleFunc("/v1/models/", func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(req.URL.Path, "/v1/models/")
		id, sub, _ := strings.Cut(rest, "/")
		m, ok := reg.Lookup(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", id))
			return
		}
		switch sub {
		case "":
			if !allowMethod(w, req, http.MethodGet) {
				return
			}
			writeJSON(w, http.StatusOK, ModelResponse{ModelStats: m.Stats(), Spec: m.Spec})
		case "sample":
			if !allowMethod(w, req, http.MethodPost) {
				return
			}
			handleSample(reg, m, w, req)
		case "sample/stream":
			if !allowMethod(w, req, http.MethodPost) {
				return
			}
			handleSampleStream(reg, m, w, req)
		default:
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown endpoint %q", req.URL.Path))
		}
	})
	return requestLog(reg, mux)
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the logging middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestLog assigns every request a random ID (echoed as
// X-Request-Id) and logs method, path, status, and duration at debug
// level — info for mutating calls. The debug/scrape surface
// (/metrics, /healthz, /debug/...) is never logged above debug, so a
// scraper's poll loop does not flood the log.
func requestLog(reg *Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := obs.NewTraceID()
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, req)
		attrs := []any{
			"request", id,
			"method", req.Method,
			"path", req.URL.Path,
			"status", sw.status,
			"elapsed", time.Since(start),
		}
		if req.Method == http.MethodPost && !strings.HasPrefix(req.URL.Path, "/debug/") {
			reg.log.Info("request", attrs...)
		} else {
			reg.log.Debug("request", attrs...)
		}
	})
}

func handleRegister(reg *Registry, w http.ResponseWriter, req *http.Request) {
	body, err := readBody(w, req, spec.MaxSpecBytes)
	if err != nil {
		return
	}
	m, cached, err := reg.Register(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st := m.Stats()
	status := http.StatusCreated
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, RegisterResponse{
		ID: m.Hash, Cached: cached, Kind: st.Kind, N: st.N, M: st.M, Q: st.Q,
	})
}

func handleSample(reg *Registry, m *Model, w http.ResponseWriter, req *http.Request) {
	var sr SampleRequest
	body, err := readBody(w, req, 1<<20)
	if err != nil {
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &sr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid sample request: %w", err))
			return
		}
	}
	seed := rand.Uint64()
	if sr.Seed != nil {
		seed = *sr.Seed
	}
	opts := DrawOptions{
		K:          sr.K,
		Seed:       seed,
		Algorithm:  sr.Algorithm,
		Rounds:     sr.Rounds,
		Epsilon:    sr.Epsilon,
		Shards:     sr.Shards,
		Parallel:   sr.Parallel,
		RoundsAuto: sr.RoundsAuto,
	}
	var res *DrawResult
	// The request context cancels in-flight work when the client
	// disconnects or the server drains — local chains stop at the next
	// round boundary, coordinator sessions are torn down.
	if sr.Trace {
		res, _, err = reg.DrawTracedContext(req.Context(), m, opts)
	} else {
		res, err = reg.DrawContext(req.Context(), m, opts)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sampleResponseFor(m, seed, res))
}

// sampleResponseFor shapes a DrawResult into the wire response.
func sampleResponseFor(m *Model, seed uint64, res *DrawResult) SampleResponse {
	resp := SampleResponse{
		ID:           m.Hash,
		Seed:         seed,
		K:            len(res.Samples),
		Algorithm:    res.Algorithm,
		Rounds:       res.Rounds,
		TheoryRounds: res.TheoryRounds,
		CapRounds:    res.CapRounds,
		ElapsedMS:    float64(res.Elapsed.Nanoseconds()) / 1e6,
		TraceID:      res.TraceID,
		Samples:      res.Samples,
	}
	if res.Shards > 1 {
		resp.Shards = res.Shards
		st := res.Shard
		resp.ShardStats = &st
	}
	if res.Parallel > 1 {
		resp.Parallel = res.Parallel
	}
	return resp
}

// RoundEvent is the data of one SSE "round" event on the streaming
// endpoint: the coupling's live mixing signal at that round.
type RoundEvent struct {
	Round    int     `json:"round"`
	Disagree int     `json:"disagree"`
	Flips    int     `json:"flips"`
	FlipEWMA float64 `json:"flipEwma"`
}

// StreamDrawEvent is the data of the final SSE "draw" event: the full
// sample response plus the coupling's diagnosis.
type StreamDrawEvent struct {
	SampleResponse
	Diagnosis *locsample.Diagnosis `json:"diagnosis"`
}

// writeSSE emits one server-sent event and flushes it to the client.
func writeSSE(w io.Writer, fl http.Flusher, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	fl.Flush()
}

// sseProbe streams round events over an open SSE connection. It
// implements locsample.CouplingProbe; unlike metric probes it
// deliberately does IO on the round path — live telemetry is the point
// of the streaming endpoint, and the cadence bounds the cost.
type sseProbe struct {
	w     http.ResponseWriter
	fl    http.Flusher
	every int
}

func (p *sseProbe) CouplingRound(round, disagree, flips int, flipEWMA float64) {
	if round%p.every != 0 {
		return
	}
	writeSSE(p.w, p.fl, "round", RoundEvent{Round: round, Disagree: disagree, Flips: flips, FlipEWMA: flipEWMA})
}

// handleSampleStream serves POST /v1/models/{id}/sample/stream: a
// diagnosed single draw streamed as SSE — one "round" event per Every
// rounds (round 0 always fires, so every stream carries at least one),
// then a final "draw" event with the sample and its diagnosis. The
// sample is bit-identical to a plain draw with the same options.
func handleSampleStream(reg *Registry, m *Model, w http.ResponseWriter, req *http.Request) {
	var sr SampleRequest
	body, err := readBody(w, req, 1<<20)
	if err != nil {
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &sr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid sample request: %w", err))
			return
		}
	}
	if sr.K > 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("streaming draws run one chain; k must be 1, got %d", sr.K))
		return
	}
	if sr.Trace {
		writeError(w, http.StatusBadRequest, fmt.Errorf("streaming draws cannot also be traced"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	seed := rand.Uint64()
	if sr.Seed != nil {
		seed = *sr.Seed
	}
	every := sr.Every
	if every <= 0 {
		every = 16
	}
	opts := DrawOptions{
		K:          1,
		Seed:       seed,
		Algorithm:  sr.Algorithm,
		Rounds:     sr.Rounds,
		Epsilon:    sr.Epsilon,
		Shards:     sr.Shards,
		Parallel:   sr.Parallel,
		RoundsAuto: sr.RoundsAuto,
	}
	// Validate and compile before committing to the stream so invalid
	// options still get a proper HTTP error status instead of a broken
	// event stream.
	if err := reg.validateDrawOptions(opts); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := reg.getCompiled(m, opts); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	res, diag, err := reg.DrawDiagnosedContext(req.Context(), m, opts, &sseProbe{w: w, fl: fl, every: every})
	if err != nil {
		// The stream is already open (status sent); report in-band.
		writeSSE(w, fl, "error", errorResponse{Error: err.Error()})
		return
	}
	writeSSE(w, fl, "draw", StreamDrawEvent{SampleResponse: sampleResponseFor(m, seed, res), Diagnosis: diag})
}

func readBody(w http.ResponseWriter, req *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, limit))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		}
		return nil, err
	}
	return body, nil
}

func allowMethod(w http.ResponseWriter, req *http.Request, method string) bool {
	if req.Method != method {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", req.Method))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
