package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"locsample"
	"locsample/internal/obs"
	"locsample/internal/spec"
)

// HTTP API of cmd/lserved, all JSON:
//
//	POST /v1/models              register a spec; body = Spec JSON
//	GET  /v1/models              list registered models
//	GET  /v1/models/{id}         one model's spec + counters
//	POST /v1/models/{id}/sample  draw k samples
//	GET  /healthz                liveness
//	GET  /statsz                 registry + cache + per-model counters
//	GET  /metrics                Prometheus text exposition
//	GET  /debug/trace/{id}       one draw's Chrome trace-event JSON
//	GET  /debug/traces           stored trace listing
//	GET  /debug/pprof/...        runtime profiles
//
// Model IDs are spec content hashes ("sha256:" + 64 hex digits), so
// registration is idempotent and clients may pre-compute IDs offline.

// RegisterResponse answers POST /v1/models.
type RegisterResponse struct {
	ID string `json:"id"`
	// Cached reports that the spec was already registered (and its
	// compiled sampler reused).
	Cached bool   `json:"cached"`
	Kind   string `json:"kind"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Q      int    `json:"q"`
}

// SampleRequest is the body of POST /v1/models/{id}/sample. All fields are
// optional.
type SampleRequest struct {
	// K is the number of independent samples (default 1).
	K int `json:"k,omitempty"`
	// Seed pins the draw: chain i of the response is bit-identical to a
	// local sample with seed ChainSeed(seed, i). When omitted the server
	// picks a random seed and echoes it.
	Seed *uint64 `json:"seed,omitempty"`
	// Algorithm overrides the chain (MRF models only).
	Algorithm string `json:"algorithm,omitempty"`
	// Rounds overrides the round budget.
	Rounds int `json:"rounds,omitempty"`
	// Epsilon overrides the total-variation target of the automatic
	// budget.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Shards overrides the shard count every chain runs with (MRF models
	// only; default: the spec's "shards" field, then the server's
	// -shards flag). Purely a latency knob: samples are bit-identical at
	// every shard count.
	Shards int `json:"shards,omitempty"`
	// Parallel overrides the vertex-parallel worker count every chain's
	// rounds run with (MRF models only; default: the spec's "parallel"
	// field, then the server's -parallel flag). Also purely a latency
	// knob — samples are bit-identical at every worker count — and
	// mutually exclusive with Shards.
	Parallel int `json:"parallel,omitempty"`
	// Trace records a per-round timing trace of the draw (k must be 1).
	// The response carries the trace ID; fetch the Chrome trace-event
	// JSON at /debug/trace/{id}. The sample is bit-identical to an
	// untraced draw with the same options.
	Trace bool `json:"trace,omitempty"`
}

// SampleResponse answers POST /v1/models/{id}/sample.
type SampleResponse struct {
	ID           string `json:"id"`
	Seed         uint64 `json:"seed"`
	K            int    `json:"k"`
	Algorithm    string `json:"algorithm"`
	Rounds       int    `json:"rounds"`
	TheoryRounds int    `json:"theoryRounds,omitempty"`
	// Shards is the shard count each chain ran with; ShardStats profiles
	// the sharded runtime (both omitted for centralized draws).
	Shards     int                   `json:"shards,omitempty"`
	ShardStats *locsample.ShardStats `json:"shardStats,omitempty"`
	// Parallel is the vertex-parallel worker count each chain's rounds ran
	// with (omitted for sequential rounds).
	Parallel  int     `json:"parallel,omitempty"`
	ElapsedMS float64 `json:"elapsedMs"`
	// TraceID identifies the recorded trace of a traced draw; GET
	// /debug/trace/{id} returns it as Chrome trace-event JSON.
	TraceID string  `json:"traceId,omitempty"`
	Samples [][]int `json:"samples"`
}

// ModelListResponse answers GET /v1/models.
type ModelListResponse struct {
	Models []ModelStats `json:"models"`
}

// ModelResponse answers GET /v1/models/{id}.
type ModelResponse struct {
	ModelStats
	Spec *spec.Spec `json:"spec"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewServer returns the HTTP handler serving reg. Routing is hand-rolled
// on the standard library only. The handler includes the debug surface
// (/metrics, /debug/trace/{id}, /debug/pprof) over the registry's
// metrics registry and trace store, and wraps everything in a
// request-ID logging middleware over the registry's logger.
func NewServer(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	obs.RegisterDebug(mux, reg.obs, reg.traces)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if !allowMethod(w, req, http.MethodGet) {
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, req *http.Request) {
		if !allowMethod(w, req, http.MethodGet) {
			return
		}
		writeJSON(w, http.StatusOK, reg.Stats())
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			resp := ModelListResponse{Models: []ModelStats{}}
			for _, m := range reg.List() {
				resp.Models = append(resp.Models, m.Stats())
			}
			writeJSON(w, http.StatusOK, resp)
		case http.MethodPost:
			handleRegister(reg, w, req)
		default:
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", req.Method))
		}
	})
	mux.HandleFunc("/v1/models/", func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(req.URL.Path, "/v1/models/")
		id, sub, _ := strings.Cut(rest, "/")
		m, ok := reg.Lookup(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", id))
			return
		}
		switch sub {
		case "":
			if !allowMethod(w, req, http.MethodGet) {
				return
			}
			writeJSON(w, http.StatusOK, ModelResponse{ModelStats: m.Stats(), Spec: m.Spec})
		case "sample":
			if !allowMethod(w, req, http.MethodPost) {
				return
			}
			handleSample(reg, m, w, req)
		default:
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown endpoint %q", req.URL.Path))
		}
	})
	return requestLog(reg, mux)
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// requestLog assigns every request a random ID (echoed as
// X-Request-Id) and logs method, path, status, and duration at debug
// level — info for mutating calls. The debug/scrape surface
// (/metrics, /healthz, /debug/...) is never logged above debug, so a
// scraper's poll loop does not flood the log.
func requestLog(reg *Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := obs.NewTraceID()
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, req)
		attrs := []any{
			"request", id,
			"method", req.Method,
			"path", req.URL.Path,
			"status", sw.status,
			"elapsed", time.Since(start),
		}
		if req.Method == http.MethodPost && !strings.HasPrefix(req.URL.Path, "/debug/") {
			reg.log.Info("request", attrs...)
		} else {
			reg.log.Debug("request", attrs...)
		}
	})
}

func handleRegister(reg *Registry, w http.ResponseWriter, req *http.Request) {
	body, err := readBody(w, req, spec.MaxSpecBytes)
	if err != nil {
		return
	}
	m, cached, err := reg.Register(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st := m.Stats()
	status := http.StatusCreated
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, RegisterResponse{
		ID: m.Hash, Cached: cached, Kind: st.Kind, N: st.N, M: st.M, Q: st.Q,
	})
}

func handleSample(reg *Registry, m *Model, w http.ResponseWriter, req *http.Request) {
	var sr SampleRequest
	body, err := readBody(w, req, 1<<20)
	if err != nil {
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &sr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid sample request: %w", err))
			return
		}
	}
	seed := rand.Uint64()
	if sr.Seed != nil {
		seed = *sr.Seed
	}
	opts := DrawOptions{
		K:         sr.K,
		Seed:      seed,
		Algorithm: sr.Algorithm,
		Rounds:    sr.Rounds,
		Epsilon:   sr.Epsilon,
		Shards:    sr.Shards,
		Parallel:  sr.Parallel,
	}
	var res *DrawResult
	if sr.Trace {
		res, _, err = reg.DrawTraced(m, opts)
	} else {
		res, err = reg.Draw(m, opts)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := SampleResponse{
		ID:           m.Hash,
		Seed:         seed,
		K:            len(res.Samples),
		Algorithm:    res.Algorithm,
		Rounds:       res.Rounds,
		TheoryRounds: res.TheoryRounds,
		ElapsedMS:    float64(res.Elapsed.Nanoseconds()) / 1e6,
		TraceID:      res.TraceID,
		Samples:      res.Samples,
	}
	if res.Shards > 1 {
		resp.Shards = res.Shards
		st := res.Shard
		resp.ShardStats = &st
	}
	if res.Parallel > 1 {
		resp.Parallel = res.Parallel
	}
	writeJSON(w, http.StatusOK, resp)
}

func readBody(w http.ResponseWriter, req *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, limit))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		}
		return nil, err
	}
	return body, nil
}

func allowMethod(w http.ResponseWriter, req *http.Request, method string) bool {
	if req.Method != method {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", req.Method))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
