package service

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"
)

// parallelSpec is a grid coloring whose spec pins a serving default of 3
// vertex-parallel workers.
const parallelSpec = `{
	"version": "locsample/v1",
	"name": "grid-coloring-parallel",
	"graph": {"family": "grid", "rows": 8, "cols": 8},
	"model": {"kind": "coloring", "q": 13, "parallel": 3}
}`

// TestServerParallelDrawBitIdentical pins wire-level determinism across the
// vertex-parallel runtime: a draw with a parallel override returns exactly
// the sequential draw's samples while reporting the worker count.
func TestServerParallelDrawBitIdentical(t *testing.T) {
	ts, _ := newTestServer(t)
	var reg RegisterResponse
	code, body := postJSON(t, ts.URL+"/v1/models", coloringSpec, &reg)
	if code != http.StatusCreated {
		t.Fatalf("register: code %d, body %s", code, body)
	}
	var sequential SampleResponse
	code, body = postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", `{"k":3,"seed":42}`, &sequential)
	if code != http.StatusOK {
		t.Fatalf("sequential sample: code %d, body %s", code, body)
	}
	if sequential.Parallel != 0 {
		t.Fatalf("sequential draw reports parallel = %d", sequential.Parallel)
	}
	for _, par := range []int{2, 4, 9} {
		var parallel SampleResponse
		req := fmt.Sprintf(`{"k":3,"seed":42,"parallel":%d}`, par)
		code, body = postJSON(t, ts.URL+"/v1/models/"+reg.ID+"/sample", req, &parallel)
		if code != http.StatusOK {
			t.Fatalf("parallel sample (par=%d): code %d, body %s", par, code, body)
		}
		if !reflect.DeepEqual(parallel.Samples, sequential.Samples) {
			t.Fatalf("parallel=%d: served samples diverge from sequential draw", par)
		}
		if parallel.Parallel != par {
			t.Fatalf("parallel=%d: response reports %d", par, parallel.Parallel)
		}
	}
}

// TestSpecParallelDefault: a spec's model.parallel field becomes the draw's
// default worker count, and an explicit request override wins.
func TestSpecParallelDefault(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(parallelSpec))
	if err != nil {
		t.Fatal(err)
	}
	if m.Built.Parallel != 3 {
		t.Fatalf("built spec parallel = %d, want 3", m.Built.Parallel)
	}
	res, err := reg.Draw(m, DrawOptions{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parallel != 3 {
		t.Fatalf("default draw ran %d parallel workers, want the spec's 3", res.Parallel)
	}
	over, err := reg.Draw(m, DrawOptions{K: 2, Seed: 7, Parallel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if over.Parallel != 5 {
		t.Fatalf("override draw ran %d parallel workers, want 5", over.Parallel)
	}
	if !reflect.DeepEqual(over.Samples, res.Samples) {
		t.Fatal("parallel worker counts changed the served samples")
	}
}

// TestServerParallelDefault: the registry-level default (lserved -parallel)
// applies only when the draw is centralized and nothing else names a count.
func TestServerParallelDefault(t *testing.T) {
	reg := NewRegistry(Config{DefaultParallel: 2})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := reg.Draw(m, DrawOptions{K: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parallel != 2 {
		t.Fatalf("draw ran %d parallel workers, want the server default 2", res.Parallel)
	}
	// A sharded draw ignores the parallel default instead of erroring.
	sharded, err := reg.Draw(m, DrawOptions{K: 1, Seed: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Parallel > 1 {
		t.Fatalf("sharded draw also ran parallel rounds: %+v", sharded)
	}
	if !reflect.DeepEqual(sharded.Samples, res.Samples) {
		t.Fatal("runtime choice changed the served samples")
	}
}

// TestRequestOverridesOtherRuntimeDefault: an explicit request for one
// in-chain runtime suppresses the other's serving defaults instead of
// colliding with them — a parallel request on a spec whose default is
// shards runs parallel, and a shards request on a parallel-default spec
// runs sharded.
func TestRequestOverridesOtherRuntimeDefault(t *testing.T) {
	reg := NewRegistry(Config{})
	shardedM, _, err := reg.Register([]byte(shardedSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := reg.Draw(shardedM, DrawOptions{K: 1, Seed: 9, Parallel: 4})
	if err != nil {
		t.Fatalf("parallel request on shards-default spec: %v", err)
	}
	if res.Parallel != 4 || res.Shards > 1 {
		t.Fatalf("parallel request on shards-default spec ran shards=%d parallel=%d", res.Shards, res.Parallel)
	}
	parallelM, _, err := reg.Register([]byte(parallelSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err = reg.Draw(parallelM, DrawOptions{K: 1, Seed: 9, Shards: 2})
	if err != nil {
		t.Fatalf("shards request on parallel-default spec: %v", err)
	}
	if res.Shards != 2 || res.Parallel > 1 {
		t.Fatalf("shards request on parallel-default spec ran shards=%d parallel=%d", res.Shards, res.Parallel)
	}
}

// TestParallelOptionRejections: negative counts, out-of-range counts, and
// an explicit shards+parallel conflict are all rejected (for CSP models
// too).
func TestParallelOptionRejections(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Parallel: -1}); err == nil {
		t.Fatal("negative parallel accepted")
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Parallel: 1 << 20}); err == nil {
		t.Fatal("oversized parallel accepted")
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Shards: 2, Parallel: 2}); err == nil {
		t.Fatal("explicit shards+parallel conflict accepted")
	}
	csp, _, err := reg.Register([]byte(cspSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Draw(csp, DrawOptions{K: 1, Rounds: 10, Shards: 2, Parallel: 2}); err == nil {
		t.Fatal("csp shards+parallel conflict accepted")
	}
}

// TestParallelCacheKeying: parallel participates in the compile key with
// 0/1 canonicalized, so sequential spellings share one entry and each real
// worker count gets its own.
func TestParallelCacheKeying(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	base := reg.Compiles()
	if _, err := reg.Draw(m, DrawOptions{K: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Compiles(); got != base {
		t.Fatalf("parallel=0/1 split the cache: %d compiles after registration's %d", got, base)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Compiles(); got != base+1 {
		t.Fatalf("parallel=4 compile count = %d, want %d", got, base+1)
	}
	if _, err := reg.Draw(m, DrawOptions{K: 1, Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Compiles(); got != base+1 {
		t.Fatalf("repeat parallel=4 draw recompiled: %d", got)
	}
}
