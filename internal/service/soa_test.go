package service

import (
	"reflect"
	"testing"
)

// TestServedBatchTakesSoAPath: a coalesced same-spec batch wide enough
// for the lane kernels runs through the SoA engine — the result reports
// its width, the per-model soaChains counter advances, and the samples
// stay bit-identical to a forced per-chain draw (K=1 draws at the
// derived seeds).
func TestServedBatchTakesSoAPath(t *testing.T) {
	reg := NewRegistry(Config{})
	m, _, err := reg.Register([]byte(coloringSpec))
	if err != nil {
		t.Fatal(err)
	}
	const k, seed = 16, 31
	res, err := reg.Draw(m, DrawOptions{K: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoAWidth == 0 {
		t.Fatalf("a %d-chain served batch did not take the SoA path", k)
	}
	if st := m.Stats(); st.SoAChains != k {
		t.Fatalf("soaChains = %d after one %d-chain SoA batch", st.SoAChains, k)
	}
	// Narrow draws stay per-chain and leave the counter alone.
	single, err := reg.Draw(m, DrawOptions{K: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if single.SoAWidth != 0 {
		t.Fatalf("single-chain draw reported SoAWidth %d", single.SoAWidth)
	}
	if st := m.Stats(); st.SoAChains != k {
		t.Fatalf("soaChains = %d after a per-chain draw, want %d", st.SoAChains, k)
	}
	// CSP draws batch the same way.
	cm, _, err := reg.Register([]byte(cspSpec))
	if err != nil {
		t.Fatal(err)
	}
	cres, err := reg.Draw(cm, DrawOptions{K: k, Seed: seed, Rounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	if cres.SoAWidth == 0 {
		t.Fatal("served CSP batch did not take the SoA path")
	}
	csingle, err := reg.Draw(cm, DrawOptions{K: 1, Seed: seed, Rounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cres.Samples[0], csingle.Samples[0]) {
		t.Fatal("SoA-batched CSP chain 0 diverges from the per-chain draw")
	}
	if !reflect.DeepEqual(res.Samples[0], mustDrawChain(t, reg, m, seed)) {
		t.Fatal("SoA-batched chain 0 diverges from the per-chain draw")
	}
}

func mustDrawChain(t *testing.T, reg *Registry, m *Model, seed uint64) []int {
	t.Helper()
	res, err := reg.Draw(m, DrawOptions{K: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res.Samples[0]
}
